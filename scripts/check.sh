#!/usr/bin/env bash
# Three-configuration test gate, run before merging:
#
#   1. Release     — the full tier-1 suite (the seed gate).
#   2. ASan + UBSan — the relation substrate and the parallel engine
#                     (`-L relation`, `-L engine`), catching index
#                     arithmetic and lifetime bugs in the encoded
#                     columnar layer and the discovery drivers.
#   3. TSan        — the parallel engine differential/property tests
#                     (`-L engine`), catching data races across the
#                     thread-count {1, 2, 8} matrix.
#
# The out-of-core ingestion suite (`-L ingest`) runs in all three
# configurations: the spill/pread layer does manual buffer arithmetic
# (ASan) and shard residency moves concurrently with reads (TSan).
#
# The sanitizer configs intentionally skip the large-instance tier-1-only
# binaries (e.g. tests/hybrid_scale_test.cc): sanitizers multiply runtime
# and memory, and the same logic is covered at small scale by the
# `engine`-labeled differential suites.
#
# Usage: scripts/check.sh [build-dir-prefix]
#   Build trees are created as <prefix>, <prefix>-asan, <prefix>-tsan
#   (default prefix: build).

set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build}"
JOBS="$(nproc)"

run() {
  echo "== $*" >&2
  "$@"
}

echo "=== [0/3] lint: no raw single-word attribute masks ==="
# Attribute-index bit arithmetic lives in the multi-word AttrSet; a raw
# `1ULL << n` over an attribute count reintroduces the pre-widening UB the
# moment n reaches 64. The allowlist is the AttrSet implementation itself
# plus the evidence kernel, whose shifts pack facet bits into a 64-bit
# word (a per-pair budget checked via EvidenceWordBits, not an attribute
# index). Comment-only lines are ignored.
LINT_ALLOW='^src/(common/attr_set\.(h|cc)|engine/evidence\.(h|cc)):'
LINT_HITS="$(grep -rnE '1ULL? <<|1ull <<|uint64_t[{(]1[})] <<' src \
  | grep -vE "$LINT_ALLOW" \
  | grep -vE ':[0-9]+:[[:space:]]*(//|\*)' || true)"
if [ -n "$LINT_HITS" ]; then
  echo "lint: raw 64-bit mask shift on a potential attribute index;" >&2
  echo "use AttrSet (common/attr_set.h) or extend the allowlist:" >&2
  echo "$LINT_HITS" >&2
  exit 1
fi

echo "=== [1/3] Release: ctest -L tier1 ==="
run cmake -B "$PREFIX" >/dev/null
run cmake --build "$PREFIX" -j "$JOBS"
run ctest --test-dir "$PREFIX" -L tier1 -j "$JOBS" --output-on-failure

echo "=== [2/3] ASan+UBSan: ctest -L relation, -L engine, -L ingest ==="
run cmake -B "$PREFIX-asan" -DFAMTREE_ASAN=ON >/dev/null
run cmake --build "$PREFIX-asan" -j "$JOBS"
run ctest --test-dir "$PREFIX-asan" -L relation -j "$JOBS" --output-on-failure
run ctest --test-dir "$PREFIX-asan" -L engine -j "$JOBS" --output-on-failure
run ctest --test-dir "$PREFIX-asan" -L ingest -j "$JOBS" --output-on-failure

echo "=== [3/3] TSan: ctest -L engine, -L ingest ==="
run cmake -B "$PREFIX-tsan" -DFAMTREE_TSAN=ON >/dev/null
run cmake --build "$PREFIX-tsan" -j "$JOBS"
run ctest --test-dir "$PREFIX-tsan" -L engine -j "$JOBS" --output-on-failure
run ctest --test-dir "$PREFIX-tsan" -L ingest -j "$JOBS" --output-on-failure

echo "=== all three configurations passed ==="
