#ifndef FAMTREE_QUALITY_STATS_H_
#define FAMTREE_QUALITY_STATS_H_

#include <vector>

#include "common/status.h"
#include "discovery/cords.h"
#include "relation/relation.h"

namespace famtree {

/// Selectivity estimate for a conjunctive equality predicate a = va AND
/// b = vb, with and without the correlation correction.
struct SelectivityEstimate {
  /// Attribute-value-independence estimate 1/(|dom a| * |dom b|).
  double independence = 0.0;
  /// CORDS-style corrected estimate 1/|dom(a, b)| using the joint
  /// distinct count collected for correlated pairs (Section 2.1.4).
  double corrected = 0.0;
  /// True selectivity measured on the relation (for evaluation).
  double actual = 0.0;
};

/// One index recommendation: when lhs soft-determines rhs, an index on
/// lhs answers rhs-correlated scans cheaply (Kimura et al. [60]).
struct IndexRecommendation {
  int lhs = 0;
  int rhs = 0;
  double strength = 0.0;
};

/// The query-optimization application of SFDs (Table 3): joint statistics
/// for correlated column pairs discovered by CORDS, improving selectivity
/// estimates and recommending secondary indexes.
class CorrelationAdvisor {
 public:
  static Result<CorrelationAdvisor> Build(const Relation& relation,
                                          const CordsOptions& options = {});

  const std::vector<DiscoveredSfd>& findings() const { return findings_; }

  /// Selectivity of (a = va AND b = vb).
  Result<SelectivityEstimate> EstimateConjunction(const Relation& relation,
                                                  int a, const Value& va,
                                                  int b,
                                                  const Value& vb) const;

  /// Pairs whose strength passes the SFD bar, strongest first.
  std::vector<IndexRecommendation> RecommendIndexes() const;

 private:
  explicit CorrelationAdvisor(std::vector<DiscoveredSfd> findings)
      : findings_(std::move(findings)) {}

  std::vector<DiscoveredSfd> findings_;
};

}  // namespace famtree

#endif  // FAMTREE_QUALITY_STATS_H_
