#include "quality/monitor.h"

#include "common/hash.h"
#include "deps/cd.h"
#include "deps/cdd.h"
#include "deps/cmd.h"
#include "deps/dc.h"
#include "deps/dd.h"
#include "deps/fd.h"
#include "deps/ffd.h"
#include "deps/md.h"
#include "deps/mfd.h"
#include "deps/ned.h"
#include "deps/od.h"
#include "deps/ofd.h"
#include "deps/pac.h"

namespace famtree {

namespace {

size_t ProjectionKey(const Relation& r, int row, AttrSet attrs) {
  size_t h = 0xfeedULL;
  for (int a : attrs.ToVector()) h = HashCombine(h, r.Get(row, a).Hash());
  return h;
}

}  // namespace

Result<MonitorAlert> StreamMonitor::Append(std::vector<Value> row) {
  FAMTREE_RETURN_NOT_OK(relation_.AppendRow(std::move(row)));
  int new_row = relation_.num_rows() - 1;
  MonitorAlert alert;
  alert.row = new_row;

  for (size_t rule_idx = 0; rule_idx < rules_.size(); ++rule_idx) {
    const DependencyPtr& rule = rules_[rule_idx];
    std::vector<Violation> findings;

    if (const auto* fd = dynamic_cast<const Fd*>(rule.get())) {
      // O(1) amortized: bucket rows by LHS projection; compare the new
      // row against its bucket's representatives.
      FdIndex& index = fd_indexes_[rule_idx];
      size_t key = ProjectionKey(relation_, new_row, fd->lhs());
      auto& bucket = index.buckets[key];
      for (int other : bucket) {
        if (relation_.AgreeOn(other, new_row, fd->lhs()) &&
            !relation_.AgreeOn(other, new_row, fd->rhs())) {
          findings.push_back(Violation{{other, new_row},
                                       "equal on LHS but differ on RHS"});
        }
      }
      bucket.push_back(new_row);
    } else if (dynamic_cast<const Mfd*>(rule.get()) != nullptr ||
               dynamic_cast<const Ned*>(rule.get()) != nullptr ||
               dynamic_cast<const Dd*>(rule.get()) != nullptr ||
               dynamic_cast<const Cdd*>(rule.get()) != nullptr ||
               dynamic_cast<const Cd*>(rule.get()) != nullptr ||
               dynamic_cast<const Ffd*>(rule.get()) != nullptr ||
               dynamic_cast<const Md*>(rule.get()) != nullptr ||
               dynamic_cast<const Cmd*>(rule.get()) != nullptr ||
               dynamic_cast<const Od*>(rule.get()) != nullptr ||
               dynamic_cast<const Ofd*>(rule.get()) != nullptr) {
      // Pairwise: compare the new tuple against every stored tuple.
      for (int other = 0; other < new_row; ++other) {
        Relation pair = relation_.Select({other, new_row});
        FAMTREE_ASSIGN_OR_RETURN(ValidationReport report,
                                 rule->Validate(pair, 4));
        for (Violation v : report.violations) {
          for (int& r : v.rows) r = r == 0 ? other : new_row;
          findings.push_back(std::move(v));
        }
      }
    } else if (const auto* dc = dynamic_cast<const Dc*>(rule.get())) {
      if (dc->IsSingleTuple()) {
        Relation single = relation_.Select({new_row});
        FAMTREE_ASSIGN_OR_RETURN(ValidationReport report,
                                 dc->Validate(single, 1));
        if (!report.holds) {
          findings.push_back(
              Violation{{new_row}, "tuple satisfies all denied predicates"});
        }
      } else {
        for (int other = 0; other < new_row; ++other) {
          Relation pair = relation_.Select({other, new_row});
          FAMTREE_ASSIGN_OR_RETURN(ValidationReport report,
                                   dc->Validate(pair, 4));
          for (Violation v : report.violations) {
            for (int& r : v.rows) r = r == 0 ? other : new_row;
            findings.push_back(std::move(v));
          }
        }
      }
    } else {
      // Fallback: full validation; keep only reports mentioning the row.
      FAMTREE_ASSIGN_OR_RETURN(ValidationReport report,
                               rule->Validate(relation_, 256));
      if (!report.holds) {
        for (const Violation& v : report.violations) {
          for (int r : v.rows) {
            if (r == new_row) {
              findings.push_back(v);
              break;
            }
          }
        }
        if (findings.empty() && !report.violations.empty()) {
          // A threshold rule tipped over without a row-local witness:
          // report the rule-level alarm on the new row.
          findings.push_back(
              Violation{{new_row}, "rule no longer meets its threshold"});
        }
      }
    }

    if (!findings.empty()) {
      alert.findings.push_back({rule, std::move(findings)});
    }
  }
  return alert;
}

}  // namespace famtree
