#include "quality/saturate.h"

#include <set>
#include <utility>

namespace famtree {

Result<SaturationResult> SaturateMvd(const Relation& relation,
                                     const Mvd& mvd) {
  int nc = relation.num_columns();
  if (!AttrSet::Full(nc).ContainsAll(mvd.lhs().Union(mvd.rhs()))) {
    return Status::Invalid("MVD refers to attributes outside the schema");
  }
  if (mvd.lhs().Intersects(mvd.rhs())) {
    return Status::Invalid("MVD LHS and RHS must be disjoint");
  }
  AttrSet z = AttrSet::Full(nc).Minus(mvd.lhs()).Minus(mvd.rhs());
  SaturationResult result;
  result.saturated = relation;

  for (const auto& group : relation.GroupBy(mvd.lhs())) {
    // Representative row per distinct Y / Z projection in the group.
    std::vector<int> y_reps, z_reps;
    std::vector<int> y_of(group.size()), z_of(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      int row = group[i];
      int found = -1;
      for (size_t h = 0; h < y_reps.size(); ++h) {
        if (relation.AgreeOn(y_reps[h], row, mvd.rhs())) {
          found = static_cast<int>(h);
          break;
        }
      }
      if (found < 0) {
        found = static_cast<int>(y_reps.size());
        y_reps.push_back(row);
      }
      y_of[i] = found;
      found = -1;
      for (size_t h = 0; h < z_reps.size(); ++h) {
        if (relation.AgreeOn(z_reps[h], row, z)) {
          found = static_cast<int>(h);
          break;
        }
      }
      if (found < 0) {
        found = static_cast<int>(z_reps.size());
        z_reps.push_back(row);
      }
      z_of[i] = found;
    }
    std::set<std::pair<int, int>> present;
    for (size_t i = 0; i < group.size(); ++i) {
      present.insert({y_of[i], z_of[i]});
    }
    // Insert each missing combination: X from the group, Y from the Y
    // representative, Z from the Z representative.
    for (size_t yi = 0; yi < y_reps.size(); ++yi) {
      for (size_t zi = 0; zi < z_reps.size(); ++zi) {
        if (present.count({static_cast<int>(yi), static_cast<int>(zi)})) {
          continue;
        }
        std::vector<Value> row(nc);
        for (int a : mvd.lhs().ToVector()) row[a] = relation.Get(group[0], a);
        for (int a : mvd.rhs().ToVector()) row[a] = relation.Get(y_reps[yi], a);
        for (int a : z.ToVector()) row[a] = relation.Get(z_reps[zi], a);
        FAMTREE_RETURN_NOT_OK(result.saturated.AppendRow(std::move(row)));
        ++result.inserted;
      }
    }
  }
  return result;
}

}  // namespace famtree
