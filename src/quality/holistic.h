#ifndef FAMTREE_QUALITY_HOLISTIC_H_
#define FAMTREE_QUALITY_HOLISTIC_H_

#include <vector>

#include "common/status.h"
#include "deps/dc.h"
#include "quality/repair.h"

namespace famtree {

/// Holistic DC repair (Chu et al. [20], simplified): instead of fixing
/// violations one pair at a time, collect *all* violations of *all* DCs,
/// build the conflict hypergraph over cells (a cell participates in a
/// violation when it feeds a satisfied predicate), and repeatedly repair
/// the cell appearing in the most violations — choosing the new value
/// that falsifies the most of its predicates at once. Compared with the
/// greedy pairwise `RepairWithDcs`, the holistic strategy needs fewer
/// cell changes on overlapping violations (measured in
/// bench/ablation_repair).
Result<RepairResult> RepairWithDcsHolistic(const Relation& relation,
                                           const std::vector<Dc>& dcs,
                                           int max_changes = 1000);

/// Fast-path overload: the violation collection (one read-only Validate
/// per DC, the dominant cost per round) fans out on the pool with the
/// per-DC lists concatenated in DC order; the conflict-hypergraph ranking
/// and the greedy cell repairs stay serial (each pick depends on the
/// last). Identical to the oracle at any thread count.
Result<RepairResult> RepairWithDcsHolistic(const Relation& relation,
                                           const std::vector<Dc>& dcs,
                                           int max_changes,
                                           const QualityOptions& options);

}  // namespace famtree

#endif  // FAMTREE_QUALITY_HOLISTIC_H_
