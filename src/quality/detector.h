#ifndef FAMTREE_QUALITY_DETECTOR_H_
#define FAMTREE_QUALITY_DETECTOR_H_

#include <vector>

#include "common/status.h"
#include "deps/dependency.h"
#include "gen/generators.h"
#include "relation/relation.h"

namespace famtree {

class PliCache;
class RunContext;
class ThreadPool;

/// Violations of one dependency on one relation.
struct DetectionResult {
  DependencyPtr dependency;
  ValidationReport report;
};

/// Aggregate outcome of a detection run.
struct DetectionSummary {
  std::vector<DetectionResult> results;
  /// Union of all rows appearing in any violation.
  std::vector<int> flagged_rows;
};

/// The violation-detection application (Table 3): runs a rule set against
/// a relation and aggregates the violating tuples. Works with *any* mix of
/// dependency classes — that is the point of the common interface.
class ViolationDetector {
 public:
  explicit ViolationDetector(std::vector<DependencyPtr> rules)
      : rules_(std::move(rules)) {}

  const std::vector<DependencyPtr>& rules() const { return rules_; }

  /// Validates every rule against `relation`. With a `pool`, rules are
  /// validated concurrently (each rule's report lands in its own slot, so
  /// the summary is identical for any thread count). With a `cache`, FD
  /// rules are first checked against the shared PLI store — a holding FD
  /// is confirmed from two cached partitions without re-grouping the
  /// relation; violated FDs fall back to the full witness-collecting
  /// validation, keeping reports bit-identical to the serial path.
  ///
  /// With a `context`, the run check-points between rule batches: when a
  /// deadline, cancellation, or budget fires, the summary covers the
  /// deterministic prefix of rules completed so far and the context's
  /// RunReport records the cutoff (exhausted flag, rules done / total).
  Result<DetectionSummary> Detect(const Relation& relation,
                                  int max_violations_per_rule = 1000,
                                  ThreadPool* pool = nullptr,
                                  PliCache* cache = nullptr,
                                  RunContext* context = nullptr) const;

 private:
  std::vector<DependencyPtr> rules_;
};

/// Precision/recall of flagged rows against planted errors — the
/// Section 2.7 discussion quantified: statistical extensions raise recall
/// and drag precision; conditional extensions keep precision high at
/// bounded recall.
struct PrecisionRecall {
  double precision = 1.0;
  double recall = 1.0;
  int true_positives = 0;
  int false_positives = 0;
  int false_negatives = 0;
};

PrecisionRecall ScoreDetection(const DetectionSummary& summary,
                               const std::vector<PlantedError>& errors);

/// Human-readable rendering of one violation with the involved tuples'
/// cell values — what a steward sees in a report:
///   violation of address -> region:
///     row 2: (St. Regis Hotel, #3 West Lake Rd., Boston, ...)
///     row 3: (St. Regis, #3 West Lake Rd., Chicago MA, ...)
///   equal on LHS but differ on RHS
std::string FormatViolation(const Relation& relation,
                            const Dependency& dependency,
                            const Violation& violation);

}  // namespace famtree

#endif  // FAMTREE_QUALITY_DETECTOR_H_
