#ifndef FAMTREE_QUALITY_REPAIR_H_
#define FAMTREE_QUALITY_REPAIR_H_

#include <vector>

#include "common/status.h"
#include "deps/cfd.h"
#include "deps/dc.h"
#include "deps/fd.h"
#include "relation/relation.h"

namespace famtree {

/// One cell change made by a repair.
struct CellChange {
  int row = 0;
  int col = 0;
  Value old_value;
  Value new_value;
};

/// Outcome of a repair run: the repaired relation plus the change log
/// (the repair cost in the Bohannon et al. [12] sense is changes.size()).
struct RepairResult {
  Relation repaired;
  std::vector<CellChange> changes;
  /// Rules still violated after the pass limit (0 for FD/CFD repair).
  int remaining_violations = 0;
};

/// Equivalence-class FD/CFD repair (Cong et al. [25]): within each LHS
/// group, reassign dependent attributes to the group plurality value —
/// the minimum-change repair when the LHS is trusted. Handles multiple
/// FDs by iterating to a fixpoint (bounded passes).
Result<RepairResult> RepairWithFds(const Relation& relation,
                                   const std::vector<Fd>& fds,
                                   int max_passes = 4);

/// CFD repair: like FD repair inside each condition group; constant RHS
/// patterns force the constant.
Result<RepairResult> RepairWithCfds(const Relation& relation,
                                    const std::vector<Cfd>& cfds,
                                    int max_passes = 4);

/// Holistic-style DC repair (Chu et al. [20], simplified): repeatedly
/// finds a violated DC, picks one predicate of the violating pair and
/// falsifies it by a minimal cell change (equality predicates copy the
/// other side; order predicates nudge the numeric value). Terminates at a
/// pass budget; reports remaining violations.
Result<RepairResult> RepairWithDcs(const Relation& relation,
                                   const std::vector<Dc>& dcs,
                                   int max_changes = 1000);

}  // namespace famtree

#endif  // FAMTREE_QUALITY_REPAIR_H_
