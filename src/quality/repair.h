#ifndef FAMTREE_QUALITY_REPAIR_H_
#define FAMTREE_QUALITY_REPAIR_H_

#include <vector>

#include "common/status.h"
#include "deps/cfd.h"
#include "deps/dc.h"
#include "deps/fd.h"
#include "quality/quality_options.h"
#include "relation/relation.h"

namespace famtree {

/// One cell change made by a repair.
struct CellChange {
  int row = 0;
  int col = 0;
  Value old_value;
  Value new_value;
};

/// Outcome of a repair run: the repaired relation plus the change log
/// (the repair cost in the Bohannon et al. [12] sense is changes.size()).
struct RepairResult {
  Relation repaired;
  std::vector<CellChange> changes;
  /// Rules still violated after the pass limit (0 for FD/CFD repair).
  int remaining_violations = 0;
};

/// Equivalence-class FD/CFD repair (Cong et al. [25]): within each LHS
/// group, reassign dependent attributes to the group plurality value —
/// the minimum-change repair when the LHS is trusted. Handles multiple
/// FDs by iterating to a fixpoint (bounded passes).
Result<RepairResult> RepairWithFds(const Relation& relation,
                                   const std::vector<Fd>& fds,
                                   int max_passes = 4);

/// Fast-path overload: per pass the LHS groups come from the encoded
/// GroupBy and the per-(group, column) plurality targets are counted over
/// integer codes in parallel; the cell changes are applied serially in the
/// oracle's group/column/row order, so the repair (changes and repaired
/// relation) is identical at any thread count. The working copy is
/// re-encoded only after a pass that changed cells; `options.cache` lends
/// the initial encoding.
Result<RepairResult> RepairWithFds(const Relation& relation,
                                   const std::vector<Fd>& fds, int max_passes,
                                   const QualityOptions& options);

/// CFD repair: like FD repair inside each condition group; constant RHS
/// patterns force the constant.
Result<RepairResult> RepairWithCfds(const Relation& relation,
                                    const std::vector<Cfd>& cfds,
                                    int max_passes = 4);

/// Fast-path overload: the per-rule LHS-pattern matching scan (the
/// dominant cost, O(rows x rules) per pass) fans out on the pool; the
/// constant forcing and plurality reassignment replay serially in the
/// oracle's order. Patterns may compare with any operator, so matching
/// stays on Values.
Result<RepairResult> RepairWithCfds(const Relation& relation,
                                    const std::vector<Cfd>& cfds,
                                    int max_passes,
                                    const QualityOptions& options);

/// Holistic-style DC repair (Chu et al. [20], simplified): repeatedly
/// finds a violated DC, picks one predicate of the violating pair and
/// falsifies it by a minimal cell change (equality predicates copy the
/// other side; order predicates nudge the numeric value). Terminates at a
/// pass budget; reports remaining violations.
Result<RepairResult> RepairWithDcs(const Relation& relation,
                                   const std::vector<Dc>& dcs,
                                   int max_changes = 1000);

}  // namespace famtree

#endif  // FAMTREE_QUALITY_REPAIR_H_
