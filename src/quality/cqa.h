#ifndef FAMTREE_QUALITY_CQA_H_
#define FAMTREE_QUALITY_CQA_H_

#include "common/status.h"
#include "deps/fd.h"
#include "deps/pattern.h"
#include "quality/quality_options.h"
#include "relation/relation.h"

namespace famtree {

/// A selection-projection query: sigma_{attr op constant}, pi_projection.
struct SelectionQuery {
  int attr = 0;
  CmpOp op = CmpOp::kEq;
  Value constant;
  AttrSet projection;
};

/// Consistent query answering under FD violations with subset repairs
/// (Arenas et al. [3], Table 3): a repair keeps, within each LHS group,
/// exactly the tuples of one RHS subgroup.
///
/// A projected tuple is a *certain* answer when it appears in the query
/// answer over every repair; it is a *possible* answer when it appears in
/// at least one.
Result<Relation> CertainAnswers(const Relation& relation, const Fd& fd,
                                const SelectionQuery& query);

Result<Relation> PossibleAnswers(const Relation& relation, const Fd& fd,
                                 const SelectionQuery& query);

/// Fast-path overloads: LHS groups, RHS subgroup splits and projection
/// comparisons run over dense row keys from the encoded backend, and the
/// per-group certain-answer checks fan out on the pool; the answers append
/// serially in group/row order, so the answer relation is identical to the
/// oracle at any thread count. `cache` lends its encoding.
Result<Relation> CertainAnswers(const Relation& relation, const Fd& fd,
                                const SelectionQuery& query,
                                const QualityOptions& options);

Result<Relation> PossibleAnswers(const Relation& relation, const Fd& fd,
                                 const SelectionQuery& query,
                                 const QualityOptions& options);

}  // namespace famtree

#endif  // FAMTREE_QUALITY_CQA_H_
