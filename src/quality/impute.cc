#include "quality/impute.h"

namespace famtree {

Result<ImputeResult> ImputeWithNed(const Relation& relation,
                                   const Ned& rule) {
  if (rule.rhs().size() != 1) {
    return Status::Invalid("imputation takes a single-target NED");
  }
  int target = rule.rhs()[0].attr;
  int n = relation.num_rows();
  ImputeResult result;
  result.imputed = relation;
  for (int i = 0; i < n; ++i) {
    if (!relation.Get(i, target).is_null()) continue;
    // Neighbors: rows agreeing with i on every LHS predicate, with a
    // non-null target value.
    std::vector<int> neighbors;
    for (int j = 0; j < n; ++j) {
      if (j == i || relation.Get(j, target).is_null()) continue;
      bool close = true;
      for (const auto& p : rule.lhs()) {
        double d = p.metric->Distance(relation.Get(i, p.attr),
                                      relation.Get(j, p.attr));
        if (d > p.threshold) {
          close = false;
          break;
        }
      }
      if (close) neighbors.push_back(j);
    }
    if (neighbors.empty()) {
      ++result.unfilled;
      continue;
    }
    // Numeric targets: mean; otherwise plurality.
    bool all_numeric = true;
    for (int j : neighbors) {
      if (!relation.Get(j, target).is_numeric()) {
        all_numeric = false;
        break;
      }
    }
    Value prediction;
    if (all_numeric) {
      double sum = 0;
      for (int j : neighbors) sum += relation.Get(j, target).AsNumeric();
      prediction = Value(sum / neighbors.size());
    } else {
      std::vector<std::pair<Value, int>> counts;
      for (int j : neighbors) {
        const Value& v = relation.Get(j, target);
        bool found = false;
        for (auto& [val, cnt] : counts) {
          if (val == v) {
            ++cnt;
            found = true;
            break;
          }
        }
        if (!found) counts.push_back({v, 1});
      }
      int best = 0;
      for (const auto& [val, cnt] : counts) {
        if (cnt > best) {
          best = cnt;
          prediction = val;
        }
      }
    }
    result.imputed.Set(i, target, prediction);
    ++result.filled;
  }
  return result;
}

}  // namespace famtree
