#include "quality/impute.h"

#include <memory>
#include <vector>

#include "common/run_context.h"
#include "common/thread_pool.h"
#include "discovery/discovery_util.h"
#include "metric/code_distance.h"

namespace famtree {

Result<ImputeResult> ImputeWithNed(const Relation& relation,
                                   const Ned& rule) {
  if (rule.rhs().size() != 1) {
    return Status::Invalid("imputation takes a single-target NED");
  }
  int target = rule.rhs()[0].attr;
  int n = relation.num_rows();
  ImputeResult result;
  result.imputed = relation;
  for (int i = 0; i < n; ++i) {
    if (!relation.Get(i, target).is_null()) continue;
    // Neighbors: rows agreeing with i on every LHS predicate, with a
    // non-null target value.
    std::vector<int> neighbors;
    for (int j = 0; j < n; ++j) {
      if (j == i || relation.Get(j, target).is_null()) continue;
      bool close = true;
      for (const auto& p : rule.lhs()) {
        double d = p.metric->Distance(relation.Get(i, p.attr),
                                      relation.Get(j, p.attr));
        if (d > p.threshold) {
          close = false;
          break;
        }
      }
      if (close) neighbors.push_back(j);
    }
    if (neighbors.empty()) {
      ++result.unfilled;
      continue;
    }
    // Numeric targets: mean; otherwise plurality.
    bool all_numeric = true;
    for (int j : neighbors) {
      if (!relation.Get(j, target).is_numeric()) {
        all_numeric = false;
        break;
      }
    }
    Value prediction;
    if (all_numeric) {
      double sum = 0;
      for (int j : neighbors) sum += relation.Get(j, target).AsNumeric();
      prediction = Value(sum / neighbors.size());
    } else {
      std::vector<std::pair<Value, int>> counts;
      for (int j : neighbors) {
        const Value& v = relation.Get(j, target);
        bool found = false;
        for (auto& [val, cnt] : counts) {
          if (val == v) {
            ++cnt;
            found = true;
            break;
          }
        }
        if (!found) counts.push_back({v, 1});
      }
      int best = 0;
      for (const auto& [val, cnt] : counts) {
        if (cnt > best) {
          best = cnt;
          prediction = val;
        }
      }
    }
    result.imputed.Set(i, target, prediction);
    ++result.filled;
  }
  return result;
}

Result<ImputeResult> ImputeWithNed(const Relation& relation, const Ned& rule,
                                   const QualityOptions& options) {
  if (!options.use_encoding && options.pool == nullptr &&
      options.context == nullptr) {
    return ImputeWithNed(relation, rule);
  }
  if (rule.rhs().size() != 1) {
    return Status::Invalid("imputation takes a single-target NED");
  }
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "impute_ned");
  int target = rule.rhs()[0].attr;
  int n = relation.num_rows();
  std::unique_ptr<EncodedRelation> local_encoding;
  FAMTREE_ASSIGN_OR_RETURN(
      const EncodedRelation* encoded,
      ResolveEncoding(relation, options.use_encoding, options.cache,
                      &local_encoding));
  std::vector<std::unique_ptr<CodeDistanceTable>> tables;
  if (encoded != nullptr) {
    for (const auto& p : rule.lhs()) {
      tables.push_back(std::make_unique<CodeDistanceTable>(
          *encoded, p.attr, p.metric, options.pool));
    }
  }
  std::vector<char> target_null(n);
  for (int i = 0; i < n; ++i) {
    target_null[i] = relation.Get(i, target).is_null() ? 1 : 0;
  }
  // Every prediction reads only the (unmutated) input relation, so the
  // per-null-cell neighbor scans are independent; the fills apply in row
  // order below.
  struct Prediction {
    bool has_neighbors = false;
    Value value;
  };
  std::vector<Prediction> predictions(n);
  FAMTREE_ASSIGN_OR_RETURN(
      int64_t rows_done,
      AnytimeParallelFor(ctx, options.pool, n, [&](int64_t i) {
    if (!target_null[i]) return Status::OK();
    std::vector<int> neighbors;
    for (int j = 0; j < n; ++j) {
      if (j == i || target_null[j]) continue;
      bool close = true;
      if (encoded != nullptr) {
        for (size_t k = 0; k < rule.lhs().size(); ++k) {
          if (tables[k]->RowDistance(static_cast<int>(i), j) >
              rule.lhs()[k].threshold) {
            close = false;
            break;
          }
        }
      } else {
        for (const auto& p : rule.lhs()) {
          double d = p.metric->Distance(relation.Get(static_cast<int>(i), p.attr),
                                        relation.Get(j, p.attr));
          if (d > p.threshold) {
            close = false;
            break;
          }
        }
      }
      if (close) neighbors.push_back(j);
    }
    if (neighbors.empty()) return Status::OK();
    predictions[i].has_neighbors = true;
    bool all_numeric = true;
    for (int j : neighbors) {
      if (!relation.Get(j, target).is_numeric()) {
        all_numeric = false;
        break;
      }
    }
    if (all_numeric) {
      double sum = 0;
      for (int j : neighbors) sum += relation.Get(j, target).AsNumeric();
      predictions[i].value = Value(sum / neighbors.size());
    } else {
      std::vector<std::pair<Value, int>> counts;
      for (int j : neighbors) {
        const Value& v = relation.Get(j, target);
        bool found = false;
        for (auto& [val, cnt] : counts) {
          if (val == v) {
            ++cnt;
            found = true;
            break;
          }
        }
        if (!found) counts.push_back({v, 1});
      }
      int best = 0;
      for (const auto& [val, cnt] : counts) {
        if (cnt > best) {
          best = cnt;
          predictions[i].value = val;
        }
      }
    }
    return Status::OK();
      }));
  ImputeResult result;
  result.imputed = relation;
  // Only completed rows are filled or counted: a cut run's fills are the
  // full run's fills restricted to the completed row prefix.
  for (int i = 0; i < static_cast<int>(rows_done); ++i) {
    if (!target_null[i]) continue;
    if (!predictions[i].has_neighbors) {
      ++result.unfilled;
      continue;
    }
    result.imputed.Set(i, target, predictions[i].value);
    ++result.filled;
  }
  if (rows_done < n) {
    RunContext::MarkExhausted(ctx, RunContext::StopStatus(ctx), rows_done, n);
  } else {
    RunContext::MarkComplete(ctx, rows_done);
  }
  return result;
}

}  // namespace famtree
