#include "quality/dedup.h"

#include <cstdint>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "common/thread_pool.h"
#include "discovery/discovery_util.h"
#include "engine/evidence.h"
#include "metric/code_distance.h"

namespace famtree {

namespace {

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(int n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int Find(int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  bool Union(int a, int b) {
    int ra = Find(a), rb = Find(b);
    if (ra == rb) return false;
    parent[ra] = rb;
    return true;
  }
};

}  // namespace

Result<MatchResult> MdMatcher::Match(const Relation& relation) const {
  int n = relation.num_rows();
  UnionFind uf(n);
  MatchResult result;
  for (const Md& md : rules_) {
    for (int i = 0; i + 1 < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (md.LhsSimilar(relation, i, j)) {
          uf.Union(i, j);
          ++result.matched_pairs;
        }
      }
    }
  }
  // Dense cluster ids.
  std::map<int, int> root_to_id;
  result.cluster_ids.resize(n);
  for (int i = 0; i < n; ++i) {
    int root = uf.Find(i);
    auto [it, inserted] =
        root_to_id.emplace(root, static_cast<int>(root_to_id.size()));
    result.cluster_ids[i] = it->second;
  }
  result.num_clusters = static_cast<int>(root_to_id.size());
  return result;
}

Result<MatchResult> MdMatcher::Match(const Relation& relation,
                                     const QualityOptions& options) const {
  if (!options.use_encoding && options.pool == nullptr &&
      options.context == nullptr) {
    return Match(relation);
  }
  int n = relation.num_rows();
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "md_match");
  std::unique_ptr<EncodedRelation> local_encoding;
  FAMTREE_ASSIGN_OR_RETURN(
      const EncodedRelation* encoded,
      ResolveEncoding(relation, options.use_encoding, options.cache,
                      &local_encoding));
  // Kernel path: every (rule, predicate) compiles to one single-threshold
  // bucket facet of a PairComparator word — for edit distance that is a
  // byte-wide banded-Levenshtein bucket table instead of a full distance
  // table — and a rule matches a pair exactly when its predicates' bits
  // are all zero (bucket 0 = within threshold), one bitmask test per rule.
  // Rules can carry arbitrary caller metrics, so the path is gated to the
  // built-ins whose NaN behavior the non-finite-dictionary guard covers
  // (`d > threshold` keeps a NaN-distance pair; a bucket index drops it).
  std::unique_ptr<PairComparator> comparator;
  std::vector<uint64_t> rule_masks(rules_.size(), 0);
  if (encoded != nullptr && options.use_evidence) {
    std::vector<EvidenceColumn> config;
    bool supported = true;
    for (size_t r = 0; r < rules_.size() && supported; ++r) {
      for (const auto& p : rules_[r].lhs()) {
        const std::string& name = p.metric->name();
        if ((name != "edit" && name != "absdiff" && name != "discrete") ||
            DictHasNonFiniteDouble(*encoded, p.attr)) {
          supported = false;
          break;
        }
        EvidenceColumn col;
        col.attr = p.attr;
        col.cmp = EvidenceColumn::Cmp::kNone;
        col.metric = p.metric;
        col.thresholds = {p.threshold};
        config.push_back(std::move(col));
      }
    }
    if (supported && !config.empty() && EvidenceWordBits(config) <= 64) {
      FAMTREE_ASSIGN_OR_RETURN(
          comparator,
          PairComparator::Make(*encoded, std::move(config), options.pool));
      size_t col = 0;
      for (size_t r = 0; r < rules_.size(); ++r) {
        for (size_t k = 0; k < rules_[r].lhs().size(); ++k, ++col) {
          rule_masks[r] |= uint64_t{1}
                           << comparator->layout()[col].bucket_shift;
        }
      }
    }
  }
  // One distance table per (rule, predicate) — predicates carry their own
  // metrics, so tables cannot be shared across rules by attribute alone.
  std::vector<std::vector<std::unique_ptr<CodeDistanceTable>>> tables(
      rules_.size());
  if (encoded != nullptr && comparator == nullptr) {
    for (size_t r = 0; r < rules_.size(); ++r) {
      for (const auto& p : rules_[r].lhs()) {
        tables[r].push_back(std::make_unique<CodeDistanceTable>(
            *encoded, p.attr, p.metric, options.pool));
      }
    }
  }
  // Per-anchor-row scans are independent: row i collects its per-rule
  // match count and the partners to union. The union-find merges replay
  // serially below; the cluster partition is the same for any merge order
  // and ids densify in row order, so the result matches the oracle.
  std::vector<int64_t> counts(n, 0);
  std::vector<std::vector<int>> partners(n);
  FAMTREE_ASSIGN_OR_RETURN(
      int64_t anchors_done,
      AnytimeParallelFor(ctx, options.pool, n, [&](int64_t i) {
    for (int j = static_cast<int>(i) + 1; j < n; ++j) {
      bool any = false;
      if (comparator != nullptr) {
        uint64_t w = comparator->Word(static_cast<int>(i), j);
        for (size_t r = 0; r < rules_.size(); ++r) {
          if ((w & rule_masks[r]) == 0) {
            ++counts[i];
            any = true;
          }
        }
      } else {
        for (size_t r = 0; r < rules_.size(); ++r) {
          bool similar = true;
          if (encoded != nullptr) {
            const auto& lhs = rules_[r].lhs();
            for (size_t k = 0; k < lhs.size(); ++k) {
              if (tables[r][k]->RowDistance(static_cast<int>(i), j) >
                  lhs[k].threshold) {
                similar = false;
                break;
              }
            }
          } else {
            similar = rules_[r].LhsSimilar(relation, static_cast<int>(i), j);
          }
          if (similar) {
            ++counts[i];
            any = true;
          }
        }
      }
      if (any) partners[i].push_back(j);
    }
    return Status::OK();
      }));
  UnionFind uf(n);
  MatchResult result;
  // The merge replays only completed anchor rows, so a cut run clusters
  // exactly as the full run does after the same prefix of anchors.
  for (int i = 0; i < static_cast<int>(anchors_done); ++i) {
    result.matched_pairs += counts[i];
    for (int j : partners[i]) uf.Union(i, j);
  }
  std::map<int, int> root_to_id;
  result.cluster_ids.resize(n);
  for (int i = 0; i < n; ++i) {
    int root = uf.Find(i);
    auto [it, inserted] =
        root_to_id.emplace(root, static_cast<int>(root_to_id.size()));
    result.cluster_ids[i] = it->second;
  }
  result.num_clusters = static_cast<int>(root_to_id.size());
  if (anchors_done < n) {
    RunContext::MarkExhausted(ctx, RunContext::StopStatus(ctx), anchors_done,
                              n);
  } else {
    RunContext::MarkComplete(ctx, anchors_done);
  }
  return result;
}

Result<Relation> MdMatcher::Apply(const Relation& relation,
                                  const MatchResult& match) const {
  if (static_cast<int>(match.cluster_ids.size()) != relation.num_rows()) {
    return Status::Invalid("match result does not fit the relation");
  }
  Relation out = relation;
  // Rows per cluster.
  std::map<int, std::vector<int>> clusters;
  for (int i = 0; i < relation.num_rows(); ++i) {
    clusters[match.cluster_ids[i]].push_back(i);
  }
  AttrSet identify;
  for (const Md& md : rules_) identify = identify.Union(md.rhs());
  for (const auto& [id, rows] : clusters) {
    if (rows.size() < 2) continue;
    for (int col : identify.ToVector()) {
      // Plurality value within the cluster.
      std::vector<std::pair<Value, int>> counts;
      for (int r : rows) {
        const Value& v = out.Get(r, col);
        bool found = false;
        for (auto& [val, cnt] : counts) {
          if (val == v) {
            ++cnt;
            found = true;
            break;
          }
        }
        if (!found) counts.push_back({v, 1});
      }
      Value target;
      int best = 0;
      for (const auto& [val, cnt] : counts) {
        if (cnt > best) {
          best = cnt;
          target = val;
        }
      }
      for (int r : rows) out.Set(r, col, target);
    }
  }
  return out;
}

ClusterScore ScoreClusters(const std::vector<int>& predicted,
                           const std::vector<int>& truth) {
  ClusterScore score;
  if (predicted.size() != truth.size() || predicted.empty()) return score;
  int n = static_cast<int>(predicted.size());
  int64_t tp = 0, fp = 0, fn = 0;
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      bool same_pred = predicted[i] == predicted[j];
      bool same_true = truth[i] == truth[j];
      if (same_pred && same_true) ++tp;
      if (same_pred && !same_true) ++fp;
      if (!same_pred && same_true) ++fn;
    }
  }
  score.pairwise_precision =
      (tp + fp) == 0 ? 1.0 : static_cast<double>(tp) / (tp + fp);
  score.pairwise_recall =
      (tp + fn) == 0 ? 1.0 : static_cast<double>(tp) / (tp + fn);
  double p = score.pairwise_precision, r = score.pairwise_recall;
  score.f1 = (p + r) == 0 ? 0.0 : 2 * p * r / (p + r);
  return score;
}

}  // namespace famtree
