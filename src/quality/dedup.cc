#include "quality/dedup.h"

#include <map>
#include <numeric>

namespace famtree {

namespace {

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(int n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int Find(int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  bool Union(int a, int b) {
    int ra = Find(a), rb = Find(b);
    if (ra == rb) return false;
    parent[ra] = rb;
    return true;
  }
};

}  // namespace

Result<MatchResult> MdMatcher::Match(const Relation& relation) const {
  int n = relation.num_rows();
  UnionFind uf(n);
  MatchResult result;
  for (const Md& md : rules_) {
    for (int i = 0; i + 1 < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (md.LhsSimilar(relation, i, j)) {
          uf.Union(i, j);
          ++result.matched_pairs;
        }
      }
    }
  }
  // Dense cluster ids.
  std::map<int, int> root_to_id;
  result.cluster_ids.resize(n);
  for (int i = 0; i < n; ++i) {
    int root = uf.Find(i);
    auto [it, inserted] =
        root_to_id.emplace(root, static_cast<int>(root_to_id.size()));
    result.cluster_ids[i] = it->second;
  }
  result.num_clusters = static_cast<int>(root_to_id.size());
  return result;
}

Result<Relation> MdMatcher::Apply(const Relation& relation,
                                  const MatchResult& match) const {
  if (static_cast<int>(match.cluster_ids.size()) != relation.num_rows()) {
    return Status::Invalid("match result does not fit the relation");
  }
  Relation out = relation;
  // Rows per cluster.
  std::map<int, std::vector<int>> clusters;
  for (int i = 0; i < relation.num_rows(); ++i) {
    clusters[match.cluster_ids[i]].push_back(i);
  }
  AttrSet identify;
  for (const Md& md : rules_) identify = identify.Union(md.rhs());
  for (const auto& [id, rows] : clusters) {
    if (rows.size() < 2) continue;
    for (int col : identify.ToVector()) {
      // Plurality value within the cluster.
      std::vector<std::pair<Value, int>> counts;
      for (int r : rows) {
        const Value& v = out.Get(r, col);
        bool found = false;
        for (auto& [val, cnt] : counts) {
          if (val == v) {
            ++cnt;
            found = true;
            break;
          }
        }
        if (!found) counts.push_back({v, 1});
      }
      Value target;
      int best = 0;
      for (const auto& [val, cnt] : counts) {
        if (cnt > best) {
          best = cnt;
          target = val;
        }
      }
      for (int r : rows) out.Set(r, col, target);
    }
  }
  return out;
}

ClusterScore ScoreClusters(const std::vector<int>& predicted,
                           const std::vector<int>& truth) {
  ClusterScore score;
  if (predicted.size() != truth.size() || predicted.empty()) return score;
  int n = static_cast<int>(predicted.size());
  int64_t tp = 0, fp = 0, fn = 0;
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      bool same_pred = predicted[i] == predicted[j];
      bool same_true = truth[i] == truth[j];
      if (same_pred && same_true) ++tp;
      if (same_pred && !same_true) ++fp;
      if (!same_pred && same_true) ++fn;
    }
  }
  score.pairwise_precision =
      (tp + fp) == 0 ? 1.0 : static_cast<double>(tp) / (tp + fp);
  score.pairwise_recall =
      (tp + fn) == 0 ? 1.0 : static_cast<double>(tp) / (tp + fn);
  double p = score.pairwise_precision, r = score.pairwise_recall;
  score.f1 = (p + r) == 0 ? 0.0 : 2 * p * r / (p + r);
  return score;
}

}  // namespace famtree
