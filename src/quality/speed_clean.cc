#include "quality/speed_clean.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/run_context.h"
#include "common/strings.h"
#include "deps/sd.h"
#include "discovery/discovery_util.h"

namespace famtree {

namespace {

Status CheckArgs(const Relation& relation, int time_attr, int value_attr,
                 const SpeedConstraint& constraint) {
  int nc = relation.num_columns();
  if (time_attr < 0 || time_attr >= nc || value_attr < 0 ||
      value_attr >= nc || time_attr == value_attr) {
    return Status::Invalid("invalid time/value attributes");
  }
  if (constraint.min_speed > constraint.max_speed) {
    return Status::Invalid("empty speed band");
  }
  return Status::OK();
}

/// Numeric view of a column, decoded once per dictionary code. Codes hold
/// the exact column Values, so num[code(row)] == Get(row).AsNumeric().
std::vector<double> CodeNumerics(const EncodedRelation& enc, int col) {
  int k = enc.dict_size(col);
  std::vector<double> num(k);
  for (int c = 0; c < k; ++c) num[c] = enc.Decode(col, c).AsNumeric();
  return num;
}

}  // namespace

Result<std::vector<Violation>> DetectSpeedViolations(
    const Relation& relation, int time_attr, int value_attr,
    const SpeedConstraint& constraint) {
  FAMTREE_RETURN_NOT_OK(
      CheckArgs(relation, time_attr, value_attr, constraint));
  std::vector<int> order = Sd::SortedOrder(relation, time_attr);
  std::vector<Violation> out;
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    double t1 = relation.Get(order[i], time_attr).AsNumeric();
    double t2 = relation.Get(order[i + 1], time_attr).AsNumeric();
    double v1 = relation.Get(order[i], value_attr).AsNumeric();
    double v2 = relation.Get(order[i + 1], value_attr).AsNumeric();
    double dt = t2 - t1;
    if (!std::isfinite(dt) || dt <= 0) continue;  // ties or bad stamps
    double speed = (v2 - v1) / dt;
    // Tolerance: repairs clamp exactly onto the band boundary, and the
    // recomputed (v2 - v1) / dt can land an ulp outside it.
    double eps = 1e-9 * std::max({1.0, std::fabs(constraint.min_speed),
                                  std::fabs(constraint.max_speed),
                                  std::fabs(v1), std::fabs(v2)});
    if (!std::isfinite(speed) || speed < constraint.min_speed - eps ||
        speed > constraint.max_speed + eps) {
      out.push_back(Violation{
          {order[i], order[i + 1]},
          "rate of change " + FormatDouble(speed) + " outside [" +
              FormatDouble(constraint.min_speed) + ", " +
              FormatDouble(constraint.max_speed) + "]"});
    }
  }
  return out;
}

Result<RepairResult> RepairWithSpeedConstraint(
    const Relation& relation, int time_attr, int value_attr,
    const SpeedConstraint& constraint) {
  FAMTREE_RETURN_NOT_OK(
      CheckArgs(relation, time_attr, value_attr, constraint));
  RepairResult result;
  result.repaired = relation;
  std::vector<int> order = Sd::SortedOrder(relation, time_attr);
  if (order.empty()) return result;
  double prev_t =
      result.repaired.Get(order[0], time_attr).AsNumeric();
  double prev_v =
      result.repaired.Get(order[0], value_attr).AsNumeric();
  for (size_t i = 1; i < order.size(); ++i) {
    int row = order[i];
    double t = result.repaired.Get(row, time_attr).AsNumeric();
    double v = result.repaired.Get(row, value_attr).AsNumeric();
    double dt = t - prev_t;
    if (!std::isfinite(dt) || dt <= 0 || !std::isfinite(v)) {
      prev_t = std::isfinite(t) ? t : prev_t;
      prev_v = std::isfinite(v) ? v : prev_v;
      continue;
    }
    double lo = prev_v + constraint.min_speed * dt;
    double hi = prev_v + constraint.max_speed * dt;
    double clamped = std::clamp(v, lo, hi);
    if (clamped != v) {
      result.changes.push_back(CellChange{
          row, value_attr, result.repaired.Get(row, value_attr),
          Value(clamped)});
      result.repaired.Set(row, value_attr, Value(clamped));
    }
    prev_t = t;
    prev_v = clamped;
  }
  auto remaining = DetectSpeedViolations(result.repaired, time_attr,
                                         value_attr, constraint);
  result.remaining_violations =
      remaining.ok() ? static_cast<int>(remaining->size()) : -1;
  return result;
}

Result<std::vector<Violation>> DetectSpeedViolations(
    const Relation& relation, int time_attr, int value_attr,
    const SpeedConstraint& constraint, const QualityOptions& options) {
  if (!options.use_encoding) {
    return DetectSpeedViolations(relation, time_attr, value_attr, constraint);
  }
  FAMTREE_RETURN_NOT_OK(
      CheckArgs(relation, time_attr, value_attr, constraint));
  std::unique_ptr<EncodedRelation> local_encoding;
  FAMTREE_ASSIGN_OR_RETURN(
      const EncodedRelation* encoded,
      ResolveEncoding(relation, /*use_encoding=*/true, options.cache,
                      &local_encoding));
  std::vector<int> order =
      SortedRowOrder(*encoded, time_attr, CodeRanks(*encoded, time_attr));
  std::vector<double> time_num = CodeNumerics(*encoded, time_attr);
  std::vector<double> value_num = CodeNumerics(*encoded, value_attr);
  const std::vector<uint32_t>& tcodes = encoded->codes(time_attr);
  const std::vector<uint32_t>& vcodes = encoded->codes(value_attr);
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "speed_detect");
  const int64_t total_gaps =
      order.empty() ? 0 : static_cast<int64_t>(order.size()) - 1;
  std::vector<Violation> out;
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    // Serial scan over time-sorted gaps: a stop here leaves the violation
    // prefix the full run would have emitted by gap i.
    Status poll = RunContext::Poll(ctx);
    if (RunContext::IsStop(poll)) {
      RunContext::MarkExhausted(ctx, poll, i, total_gaps);
      return out;
    }
    double t1 = time_num[tcodes[order[i]]];
    double t2 = time_num[tcodes[order[i + 1]]];
    double v1 = value_num[vcodes[order[i]]];
    double v2 = value_num[vcodes[order[i + 1]]];
    double dt = t2 - t1;
    if (!std::isfinite(dt) || dt <= 0) continue;  // ties or bad stamps
    double speed = (v2 - v1) / dt;
    double eps = 1e-9 * std::max({1.0, std::fabs(constraint.min_speed),
                                  std::fabs(constraint.max_speed),
                                  std::fabs(v1), std::fabs(v2)});
    if (!std::isfinite(speed) || speed < constraint.min_speed - eps ||
        speed > constraint.max_speed + eps) {
      out.push_back(Violation{
          {order[i], order[i + 1]},
          "rate of change " + FormatDouble(speed) + " outside [" +
              FormatDouble(constraint.min_speed) + ", " +
              FormatDouble(constraint.max_speed) + "]"});
    }
  }
  RunContext::MarkComplete(ctx, total_gaps);
  return out;
}

Result<RepairResult> RepairWithSpeedConstraint(
    const Relation& relation, int time_attr, int value_attr,
    const SpeedConstraint& constraint, const QualityOptions& options) {
  if (!options.use_encoding) {
    return RepairWithSpeedConstraint(relation, time_attr, value_attr,
                                     constraint);
  }
  FAMTREE_RETURN_NOT_OK(
      CheckArgs(relation, time_attr, value_attr, constraint));
  std::unique_ptr<EncodedRelation> local_encoding;
  FAMTREE_ASSIGN_OR_RETURN(
      const EncodedRelation* encoded,
      ResolveEncoding(relation, /*use_encoding=*/true, options.cache,
                      &local_encoding));
  std::vector<int> order =
      SortedRowOrder(*encoded, time_attr, CodeRanks(*encoded, time_attr));
  // The scan visits each row exactly once and only ever writes the row it
  // is visiting, so the pre-decoded numerics (which reflect the *input*)
  // stay valid for every read.
  std::vector<double> time_num = CodeNumerics(*encoded, time_attr);
  std::vector<double> value_num = CodeNumerics(*encoded, value_attr);
  const std::vector<uint32_t>& tcodes = encoded->codes(time_attr);
  const std::vector<uint32_t>& vcodes = encoded->codes(value_attr);
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "speed_repair");
  RepairResult result;
  result.repaired = relation;
  if (order.empty()) {
    RunContext::MarkComplete(ctx, 0);
    return result;
  }
  const int64_t total_steps = static_cast<int64_t>(order.size()) - 1;
  bool stopped = false;
  double prev_t = time_num[tcodes[order[0]]];
  double prev_v = value_num[vcodes[order[0]]];
  for (size_t i = 1; i < order.size(); ++i) {
    // The clamp scan is serial in time order, so a stop leaves the exact
    // repair prefix of the full run.
    Status poll = RunContext::Poll(ctx);
    if (RunContext::IsStop(poll)) {
      RunContext::MarkExhausted(ctx, poll, i - 1, total_steps);
      stopped = true;
      break;
    }
    int row = order[i];
    double t = time_num[tcodes[row]];
    double v = value_num[vcodes[row]];
    double dt = t - prev_t;
    if (!std::isfinite(dt) || dt <= 0 || !std::isfinite(v)) {
      prev_t = std::isfinite(t) ? t : prev_t;
      prev_v = std::isfinite(v) ? v : prev_v;
      continue;
    }
    double lo = prev_v + constraint.min_speed * dt;
    double hi = prev_v + constraint.max_speed * dt;
    double clamped = std::clamp(v, lo, hi);
    if (clamped != v) {
      result.changes.push_back(CellChange{
          row, value_attr, result.repaired.Get(row, value_attr),
          Value(clamped)});
      result.repaired.Set(row, value_attr, Value(clamped));
    }
    prev_t = t;
    prev_v = clamped;
  }
  if (!stopped) RunContext::MarkComplete(ctx, total_steps);
  auto remaining = DetectSpeedViolations(result.repaired, time_attr,
                                         value_attr, constraint);
  result.remaining_violations =
      remaining.ok() ? static_cast<int>(remaining->size()) : -1;
  return result;
}

}  // namespace famtree
