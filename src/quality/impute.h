#ifndef FAMTREE_QUALITY_IMPUTE_H_
#define FAMTREE_QUALITY_IMPUTE_H_

#include <vector>

#include "common/status.h"
#include "deps/ned.h"
#include "relation/relation.h"

namespace famtree {

/// Outcome of missing-value imputation.
struct ImputeResult {
  Relation imputed;
  /// Cells that were null and got a value.
  int filled = 0;
  /// Null cells with no qualifying neighbor.
  int unfilled = 0;
};

/// The P-neighborhood prediction method of NEDs (Section 3.2.4, [4]) /
/// the similarity-rule imputation of DDs ([95], [96]): a tuple's missing
/// target value is predicted from the tuples agreeing with it on the LHS
/// neighborhood predicate — unlike kNN, the neighborhood radius comes from
/// the declared rule, not a tuned k. Prediction is the neighbor plurality
/// (categorical) or mean (numeric).
Result<ImputeResult> ImputeWithNed(const Relation& relation, const Ned& rule);

}  // namespace famtree

#endif  // FAMTREE_QUALITY_IMPUTE_H_
