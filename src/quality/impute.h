#ifndef FAMTREE_QUALITY_IMPUTE_H_
#define FAMTREE_QUALITY_IMPUTE_H_

#include <vector>

#include "common/status.h"
#include "deps/ned.h"
#include "quality/quality_options.h"
#include "relation/relation.h"

namespace famtree {

/// Outcome of missing-value imputation.
struct ImputeResult {
  Relation imputed;
  /// Cells that were null and got a value.
  int filled = 0;
  /// Null cells with no qualifying neighbor.
  int unfilled = 0;
};

/// The P-neighborhood prediction method of NEDs (Section 3.2.4, [4]) /
/// the similarity-rule imputation of DDs ([95], [96]): a tuple's missing
/// target value is predicted from the tuples agreeing with it on the LHS
/// neighborhood predicate — unlike kNN, the neighborhood radius comes from
/// the declared rule, not a tuned k. Prediction is the neighbor plurality
/// (categorical) or mean (numeric).
Result<ImputeResult> ImputeWithNed(const Relation& relation, const Ned& rule);

/// Fast-path overload: each null cell's neighbor scan reads only the
/// original relation, so the per-cell predictions fan out on the pool with
/// distances looked up in per-predicate code tables; the fills apply
/// serially in row order. Identical to the oracle at any thread count.
Result<ImputeResult> ImputeWithNed(const Relation& relation, const Ned& rule,
                                   const QualityOptions& options);

}  // namespace famtree

#endif  // FAMTREE_QUALITY_IMPUTE_H_
