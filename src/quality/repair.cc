#include "quality/repair.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/run_context.h"
#include "common/thread_pool.h"
#include "engine/pli_cache.h"
#include "relation/encoded_relation.h"

namespace famtree {

namespace {

/// Plurality value of `col` among `rows`; ties break to first occurrence.
Value PluralityValue(const Relation& relation, const std::vector<int>& rows,
                     int col) {
  std::vector<std::pair<Value, int>> counts;
  for (int r : rows) {
    const Value& v = relation.Get(r, col);
    bool found = false;
    for (auto& [val, count] : counts) {
      if (val == v) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) counts.push_back({v, 1});
  }
  int best = 0;
  Value best_value;
  for (const auto& [val, count] : counts) {
    if (count > best) {
      best = count;
      best_value = val;
    }
  }
  return best_value;
}

/// One FD-repair pass over every LHS group; returns number of changes.
int FdRepairPass(Relation* relation, const Fd& fd,
                 std::vector<CellChange>* changes) {
  int made = 0;
  for (const auto& group : relation->GroupBy(fd.lhs())) {
    if (group.size() < 2) continue;
    for (int col : fd.rhs().ToVector()) {
      Value target = PluralityValue(*relation, group, col);
      for (int r : group) {
        if (!(relation->Get(r, col) == target)) {
          changes->push_back(
              CellChange{r, col, relation->Get(r, col), target});
          relation->Set(r, col, target);
          ++made;
        }
      }
    }
  }
  return made;
}

/// Plurality over integer codes: counts per code, then picks the first
/// row (in group order) whose code reaches the strict maximum — exactly
/// the serial algorithm's first-occurrence tie-break. Returns that row, so
/// the caller reads both the target Value and its code from it (even the
/// representation matches the oracle). LHS groups are typically tiny, so
/// a flat first-occurrence-ordered count vector (the oracle's own shape,
/// minus the Value comparisons) beats hash containers.
int PluralityRowEncoded(const EncodedRelation& enc,
                        const std::vector<int>& rows, int col) {
  std::vector<std::pair<uint32_t, int>> counts;
  counts.reserve(rows.size());
  for (int r : rows) {
    uint32_t c = enc.code(r, col);
    bool found = false;
    for (auto& [code, count] : counts) {
      if (code == c) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) counts.push_back({c, 1});
  }
  int best = 0;
  uint32_t best_code = counts[0].first;
  for (const auto& [code, count] : counts) {
    if (count > best) {
      best = count;
      best_code = code;
    }
  }
  for (int r : rows) {
    if (enc.code(r, col) == best_code) return r;
  }
  return rows[0];
}

/// One FD-repair pass with the plurality targets precomputed in parallel.
/// All (group, column) targets depend only on the pass-start state (groups
/// are disjoint row sets and a column's plurality is untouched by writes
/// to other columns), so they can fan out; the writes replay the oracle's
/// group/column/row order. On the encoded path the writes also rebind the
/// changed cells' codes — targets are values that already occur in the
/// column, so the encoding stays valid for the next pass with no
/// re-encode.
Result<int> FdRepairPassFast(Relation* relation, const Fd& fd,
                             EncodedRelation* enc, ThreadPool* pool,
                             std::vector<CellChange>* changes) {
  std::vector<std::vector<int>> groups =
      enc != nullptr ? enc->GroupBy(fd.lhs()) : relation->GroupBy(fd.lhs());
  std::vector<int> rhs_cols = fd.rhs().ToVector();
  // On the encoded path a target is remembered as its plurality row (the
  // Value is read back lazily at write time): groups are disjoint and a
  // group's writes never touch its own plurality row for that column, so
  // the row still holds the target when the replay reaches it. This keeps
  // the fan-out free of per-group Value copies.
  std::vector<std::vector<Value>> targets(enc == nullptr ? groups.size() : 0);
  std::vector<std::vector<int>> target_rows(enc != nullptr ? groups.size()
                                                           : 0);
  FAMTREE_RETURN_NOT_OK(ParallelFor(
      pool, static_cast<int64_t>(groups.size()), [&](int64_t g) {
        if (groups[g].size() < 2) return Status::OK();
        if (enc != nullptr) {
          target_rows[g].resize(rhs_cols.size());
          for (size_t k = 0; k < rhs_cols.size(); ++k) {
            target_rows[g][k] =
                PluralityRowEncoded(*enc, groups[g], rhs_cols[k]);
          }
        } else {
          targets[g].resize(rhs_cols.size());
          for (size_t k = 0; k < rhs_cols.size(); ++k) {
            targets[g][k] = PluralityValue(*relation, groups[g], rhs_cols[k]);
          }
        }
        return Status::OK();
      }));
  int made = 0;
  for (size_t g = 0; g < groups.size(); ++g) {
    if (groups[g].size() < 2) continue;
    for (size_t k = 0; k < rhs_cols.size(); ++k) {
      int col = rhs_cols[k];
      if (enc != nullptr) {
        uint32_t target_code = enc->code(target_rows[g][k], col);
        Value target = relation->Get(target_rows[g][k], col);
        for (int r : groups[g]) {
          // Code inequality ⇔ Value inequality on the encoded path.
          if (enc->code(r, col) == target_code) continue;
          changes->push_back(
              CellChange{r, col, relation->Get(r, col), target});
          relation->Set(r, col, target);
          enc->SetCode(r, col, target_code);
          ++made;
        }
      } else {
        const Value& target = targets[g][k];
        for (int r : groups[g]) {
          if (relation->Get(r, col) == target) continue;
          changes->push_back(
              CellChange{r, col, relation->Get(r, col), target});
          relation->Set(r, col, target);
          ++made;
        }
      }
    }
  }
  return made;
}

}  // namespace

Result<RepairResult> RepairWithFds(const Relation& relation,
                                   const std::vector<Fd>& fds,
                                   int max_passes) {
  RepairResult result;
  result.repaired = relation;
  for (int pass = 0; pass < max_passes; ++pass) {
    int made = 0;
    for (const Fd& fd : fds) {
      made += FdRepairPass(&result.repaired, fd, &result.changes);
    }
    if (made == 0) break;
  }
  for (const Fd& fd : fds) {
    if (!fd.Holds(result.repaired)) ++result.remaining_violations;
  }
  return result;
}

Result<RepairResult> RepairWithFds(const Relation& relation,
                                   const std::vector<Fd>& fds, int max_passes,
                                   const QualityOptions& options) {
  if (!options.use_encoding && options.pool == nullptr &&
      options.context == nullptr) {
    return RepairWithFds(relation, fds, max_passes);
  }
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "repair_fds");
  RepairResult result;
  result.repaired = relation;
  // One encoding for the whole repair: every FD-repair write copies a
  // value that already occurs in the same column, so each pass rebinds the
  // changed cells' codes in place (SetCode) instead of re-encoding the
  // working copy after every pass that changed cells. The cache's encoding
  // is copied (flat integer arrays), never mutated. A locally built
  // encoding covers only the columns some FD reads or writes — the passes
  // never touch the others.
  std::unique_ptr<EncodedRelation> local;
  EncodedRelation* enc = nullptr;
  if (options.use_encoding) {
    if (options.cache != nullptr &&
        options.cache->relation_or_null() == &relation) {
      local = std::make_unique<EncodedRelation>(options.cache->encoded());
    } else {
      AttrSet needed;
      for (const Fd& fd : fds) {
        for (int a : fd.lhs().ToVector()) needed = needed.With(a);
        for (int a : fd.rhs().ToVector()) needed = needed.With(a);
      }
      local = std::make_unique<EncodedRelation>(result.repaired, needed);
    }
    enc = local.get();
  }
  // Each (pass, fd) step is a deterministic serial-replay unit; a limit
  // firing between steps leaves the working copy exactly as the full run
  // had it after the same prefix of steps — the partial repair.
  const int64_t total_steps = static_cast<int64_t>(max_passes) * fds.size();
  int64_t steps_done = 0;
  for (int pass = 0; pass < max_passes; ++pass) {
    int made = 0;
    for (const Fd& fd : fds) {
      Status gate = RunContext::Checkpoint(ctx);
      if (RunContext::IsStop(gate)) {
        RunContext::MarkExhausted(ctx, gate, steps_done, total_steps);
        for (const Fd& f : fds) {
          if (!f.Holds(result.repaired)) ++result.remaining_violations;
        }
        return result;
      }
      FAMTREE_ASSIGN_OR_RETURN(
          int m, FdRepairPassFast(&result.repaired, fd, enc, options.pool,
                                  &result.changes));
      made += m;
      ++steps_done;
    }
    if (made == 0) break;
  }
  RunContext::MarkComplete(ctx, steps_done);
  for (const Fd& fd : fds) {
    if (!fd.Holds(result.repaired)) ++result.remaining_violations;
  }
  return result;
}

Result<RepairResult> RepairWithCfds(const Relation& relation,
                                    const std::vector<Cfd>& cfds,
                                    int max_passes) {
  RepairResult result;
  result.repaired = relation;
  for (int pass = 0; pass < max_passes; ++pass) {
    int made = 0;
    for (const Cfd& cfd : cfds) {
      // Tuples matching the LHS pattern.
      std::vector<int> matching;
      for (int r = 0; r < result.repaired.num_rows(); ++r) {
        if (cfd.pattern().Matches(result.repaired, r, cfd.lhs())) {
          matching.push_back(r);
        }
      }
      // Constant RHS: force the constant.
      for (int col : cfd.rhs().ToVector()) {
        const PatternItem* it = cfd.pattern().Find(col);
        if (it != nullptr && !it->is_wildcard) {
          for (int r : matching) {
            if (!(result.repaired.Get(r, col) == it->constant)) {
              result.changes.push_back(CellChange{
                  r, col, result.repaired.Get(r, col), it->constant});
              result.repaired.Set(r, col, it->constant);
              ++made;
            }
          }
        }
      }
      // Variable RHS: plurality within each LHS group of matching tuples.
      Relation subset = result.repaired.Select(matching);
      for (const auto& local_group : subset.GroupBy(cfd.lhs())) {
        if (local_group.size() < 2) continue;
        std::vector<int> group;
        for (int local : local_group) group.push_back(matching[local]);
        for (int col : cfd.rhs().ToVector()) {
          const PatternItem* it = cfd.pattern().Find(col);
          if (it != nullptr && !it->is_wildcard) continue;  // done above
          Value target = PluralityValue(result.repaired, group, col);
          for (int r : group) {
            if (!(result.repaired.Get(r, col) == target)) {
              result.changes.push_back(
                  CellChange{r, col, result.repaired.Get(r, col), target});
              result.repaired.Set(r, col, target);
              ++made;
            }
          }
        }
      }
    }
    if (made == 0) break;
  }
  for (const Cfd& cfd : cfds) {
    if (!cfd.Holds(result.repaired)) ++result.remaining_violations;
  }
  return result;
}

Result<RepairResult> RepairWithCfds(const Relation& relation,
                                    const std::vector<Cfd>& cfds,
                                    int max_passes,
                                    const QualityOptions& options) {
  if (options.pool == nullptr && options.context == nullptr) {
    return RepairWithCfds(relation, cfds, max_passes);
  }
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "repair_cfds");
  RepairResult result;
  result.repaired = relation;
  // Same anytime contract as the FD repair: units are (pass, cfd) steps.
  const int64_t total_steps = static_cast<int64_t>(max_passes) * cfds.size();
  int64_t steps_done = 0;
  for (int pass = 0; pass < max_passes; ++pass) {
    int made = 0;
    for (const Cfd& cfd : cfds) {
      Status gate = RunContext::Checkpoint(ctx);
      if (RunContext::IsStop(gate)) {
        RunContext::MarkExhausted(ctx, gate, steps_done, total_steps);
        for (const Cfd& c : cfds) {
          if (!c.Holds(result.repaired)) ++result.remaining_violations;
        }
        return result;
      }
      // The LHS-pattern matching scan is read-only on the current state;
      // each row's flag is independent, so it fans out. The serial
      // collection below preserves row order.
      int n = result.repaired.num_rows();
      std::vector<char> matches(n, 0);
      FAMTREE_RETURN_NOT_OK(ParallelFor(options.pool, n, [&](int64_t r) {
        matches[r] = cfd.pattern().Matches(result.repaired,
                                           static_cast<int>(r), cfd.lhs())
                         ? 1
                         : 0;
        return Status::OK();
      }));
      std::vector<int> matching;
      for (int r = 0; r < n; ++r) {
        if (matches[r]) matching.push_back(r);
      }
      // Constant RHS: force the constant.
      for (int col : cfd.rhs().ToVector()) {
        const PatternItem* it = cfd.pattern().Find(col);
        if (it != nullptr && !it->is_wildcard) {
          for (int r : matching) {
            if (!(result.repaired.Get(r, col) == it->constant)) {
              result.changes.push_back(CellChange{
                  r, col, result.repaired.Get(r, col), it->constant});
              result.repaired.Set(r, col, it->constant);
              ++made;
            }
          }
        }
      }
      // Variable RHS: plurality within each LHS group of matching tuples.
      Relation subset = result.repaired.Select(matching);
      for (const auto& local_group : subset.GroupBy(cfd.lhs())) {
        if (local_group.size() < 2) continue;
        std::vector<int> group;
        for (int local : local_group) group.push_back(matching[local]);
        for (int col : cfd.rhs().ToVector()) {
          const PatternItem* it = cfd.pattern().Find(col);
          if (it != nullptr && !it->is_wildcard) continue;  // done above
          Value target = PluralityValue(result.repaired, group, col);
          for (int r : group) {
            if (!(result.repaired.Get(r, col) == target)) {
              result.changes.push_back(
                  CellChange{r, col, result.repaired.Get(r, col), target});
              result.repaired.Set(r, col, target);
              ++made;
            }
          }
        }
      }
      ++steps_done;
    }
    if (made == 0) break;
  }
  RunContext::MarkComplete(ctx, steps_done);
  for (const Cfd& cfd : cfds) {
    if (!cfd.Holds(result.repaired)) ++result.remaining_violations;
  }
  return result;
}

Result<RepairResult> RepairWithDcs(const Relation& relation,
                                   const std::vector<Dc>& dcs,
                                   int max_changes) {
  RepairResult result;
  result.repaired = relation;
  int changes_made = 0;
  bool progress = true;
  while (progress && changes_made < max_changes) {
    progress = false;
    for (const Dc& dc : dcs) {
      auto rep = dc.Validate(result.repaired, 1);
      if (!rep.ok()) return rep.status();
      if (rep->holds || rep->violations.empty()) continue;
      const Violation& v = rep->violations[0];
      // Falsify one predicate of the violating pair/tuple: prefer an
      // equality predicate between the tuples (copy one side), else nudge
      // a numeric order predicate, else blank a constant predicate cell.
      int row_a = v.rows[0];
      int row_b = v.rows.size() > 1 ? v.rows[1] : v.rows[0];
      bool fixed = false;
      // Pass 1: equality between tuple cells -> make RHS-side differ by
      // preferring to change the *second* tuple's cell to a fresh value is
      // wrong (values must come from the domain); instead, for predicates
      // of the form ta.A != tb.A (the FD-violation shape), copy a's value.
      for (const DcPredicate& p : dc.predicates()) {
        if (p.op == CmpOp::kNeq &&
            p.lhs.kind == DcOperand::Kind::kTupleA &&
            p.rhs.kind == DcOperand::Kind::kTupleB &&
            p.lhs.attr == p.rhs.attr) {
          int col = p.lhs.attr;
          result.changes.push_back(CellChange{
              row_b, col, result.repaired.Get(row_b, col),
              result.repaired.Get(row_a, col)});
          result.repaired.Set(row_b, col, result.repaired.Get(row_a, col));
          fixed = true;
          break;
        }
      }
      if (!fixed) {
        // Pass 2: order predicate between numeric cells -> set the two
        // cells equal when that falsifies a strict comparison, else nudge.
        for (const DcPredicate& p : dc.predicates()) {
          bool two_tuple = p.lhs.kind == DcOperand::Kind::kTupleA &&
                           p.rhs.kind == DcOperand::Kind::kTupleB;
          if (!two_tuple) continue;
          if (p.op == CmpOp::kLt || p.op == CmpOp::kGt) {
            int col = p.rhs.attr;
            result.changes.push_back(CellChange{
                row_b, col, result.repaired.Get(row_b, col),
                result.repaired.Get(row_a, p.lhs.attr)});
            result.repaired.Set(row_b, col,
                                result.repaired.Get(row_a, p.lhs.attr));
            fixed = true;
            break;
          }
        }
      }
      if (!fixed) {
        // Pass 3: constant predicate -> move the cell just past the
        // boundary so the comparison flips.
        for (const DcPredicate& p : dc.predicates()) {
          if (p.lhs.kind != DcOperand::Kind::kTupleA ||
              p.rhs.kind != DcOperand::Kind::kConst) {
            continue;
          }
          int col = p.lhs.attr;
          const Value& c = p.rhs.constant;
          Value target;
          switch (p.op) {
            case CmpOp::kLt:
            case CmpOp::kGt:
              target = c;  // v = c falsifies strict comparisons
              break;
            case CmpOp::kLe:
              if (!c.is_numeric()) continue;
              target = Value(c.AsNumeric() + 1);
              break;
            case CmpOp::kGe:
              if (!c.is_numeric()) continue;
              target = Value(c.AsNumeric() - 1);
              break;
            default:
              continue;  // equality against constants: no safe local fix
          }
          result.changes.push_back(CellChange{
              row_a, col, result.repaired.Get(row_a, col), target});
          result.repaired.Set(row_a, col, target);
          fixed = true;
          break;
        }
      }
      if (fixed) {
        ++changes_made;
        progress = true;
      }
    }
  }
  for (const Dc& dc : dcs) {
    auto rep = dc.Validate(result.repaired, 0);
    if (rep.ok() && !rep->holds) ++result.remaining_violations;
  }
  return result;
}

}  // namespace famtree
