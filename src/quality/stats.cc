#include "quality/stats.h"

#include <algorithm>

namespace famtree {

Result<CorrelationAdvisor> CorrelationAdvisor::Build(
    const Relation& relation, const CordsOptions& options) {
  FAMTREE_ASSIGN_OR_RETURN(std::vector<DiscoveredSfd> findings,
                           DiscoverSfdsCords(relation, options));
  return CorrelationAdvisor(std::move(findings));
}

Result<SelectivityEstimate> CorrelationAdvisor::EstimateConjunction(
    const Relation& relation, int a, const Value& va, int b,
    const Value& vb) const {
  int nc = relation.num_columns();
  if (a < 0 || a >= nc || b < 0 || b >= nc || a == b) {
    return Status::Invalid("invalid column pair");
  }
  SelectivityEstimate est;
  int n = relation.num_rows();
  if (n == 0) return est;
  int dom_a = relation.CountDistinct(AttrSet::Single(a));
  int dom_b = relation.CountDistinct(AttrSet::Single(b));
  int dom_ab = relation.CountDistinct(AttrSet::Of({a, b}));
  est.independence =
      1.0 / (static_cast<double>(std::max(1, dom_a)) * std::max(1, dom_b));
  est.corrected = 1.0 / std::max(1, dom_ab);
  int matches = 0;
  for (int r = 0; r < n; ++r) {
    if (relation.Get(r, a) == va && relation.Get(r, b) == vb) ++matches;
  }
  est.actual = static_cast<double>(matches) / n;
  return est;
}

std::vector<IndexRecommendation> CorrelationAdvisor::RecommendIndexes()
    const {
  std::vector<IndexRecommendation> out;
  for (const DiscoveredSfd& f : findings_) {
    if (f.is_soft_fd) {
      out.push_back(IndexRecommendation{f.lhs, f.rhs, f.strength});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const IndexRecommendation& x, const IndexRecommendation& y) {
              return x.strength > y.strength;
            });
  return out;
}

}  // namespace famtree
