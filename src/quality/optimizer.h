#ifndef FAMTREE_QUALITY_OPTIMIZER_H_
#define FAMTREE_QUALITY_OPTIMIZER_H_

#include <vector>

#include "common/status.h"
#include "deps/nud.h"
#include "deps/od.h"
#include "relation/relation.h"

namespace famtree {

/// Order propagation with ODs (Section 4.2.4, [28], [100]): data sorted
/// on `sorted_attr` is implicitly ordered on every attribute an OD chain
/// reaches — "if the database is sorted by rank and rank -> salary, the
/// data is also ordered by salary", so the sort (or index) on salary can
/// be skipped. Returns every attribute whose ascending or descending
/// order follows from `sorted_attr` ascending, with the direction.
struct PropagatedOrder {
  int attr = 0;
  /// True: ascending follows; false: descending follows.
  bool ascending = true;
};

std::vector<PropagatedOrder> PropagateOrders(int sorted_attr,
                                             const std::vector<Od>& ods,
                                             int num_attrs);

/// True when a sort on `target` can be skipped given data sorted on
/// `sorted_attr` (in either direction) under the OD set.
bool CanSkipSort(int sorted_attr, int target, const std::vector<Od>& ods,
                 int num_attrs);

/// NUD-based projection-size bound (Section 2.4.3, [22]): an upper bound
/// on the number of distinct `target` values, derived by chaining NUD
/// weights from attribute sets with known distinct counts:
///   |pi_Y(r)| <= |pi_X(r)| * k   for every NUD X ->_k Y.
/// `known` supplies measured distinct counts for some attribute sets
/// (e.g. from catalog statistics). Returns the tightest derivable bound,
/// or the row count when nothing applies.
struct KnownCardinality {
  AttrSet attrs;
  long long distinct = 0;
};

long long BoundProjectionSize(const Relation& relation, AttrSet target,
                              const std::vector<Nud>& nuds,
                              const std::vector<KnownCardinality>& known);

}  // namespace famtree

#endif  // FAMTREE_QUALITY_OPTIMIZER_H_
