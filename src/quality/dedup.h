#ifndef FAMTREE_QUALITY_DEDUP_H_
#define FAMTREE_QUALITY_DEDUP_H_

#include <vector>

#include "common/status.h"
#include "deps/md.h"
#include "quality/quality_options.h"
#include "relation/relation.h"

namespace famtree {

/// Result of record matching: a cluster id per row (rows believed to
/// denote the same real-world entity share an id).
struct MatchResult {
  std::vector<int> cluster_ids;
  int num_clusters = 0;
  /// Pairs merged by the MD rules.
  int64_t matched_pairs = 0;
};

/// The record-matching / deduplication application of MDs (Section 3.7.4,
/// Table 3): tuples similar on the LHS of any given MD are identified;
/// identification is closed transitively (union-find).
class MdMatcher {
 public:
  explicit MdMatcher(std::vector<Md> rules) : rules_(std::move(rules)) {}

  Result<MatchResult> Match(const Relation& relation) const;

  /// Fast-path overload: the O(rows^2 x rules) similarity scan runs over
  /// per-predicate code-pair distance tables and fans out per anchor row;
  /// the union-find merges replay serially. The cluster partition is
  /// order-independent and ids are densified in row order, so the result
  /// is identical to the oracle at any thread count.
  Result<MatchResult> Match(const Relation& relation,
                            const QualityOptions& options) const;

  /// Applies the matching: for each cluster, RHS attributes of every MD
  /// are normalized to the cluster plurality value (the "identify" step).
  Result<Relation> Apply(const Relation& relation,
                         const MatchResult& match) const;

 private:
  std::vector<Md> rules_;
};

/// Pairwise clustering quality against ground-truth entity ids.
struct ClusterScore {
  double pairwise_precision = 1.0;
  double pairwise_recall = 1.0;
  double f1 = 1.0;
};

ClusterScore ScoreClusters(const std::vector<int>& predicted,
                           const std::vector<int>& truth);

}  // namespace famtree

#endif  // FAMTREE_QUALITY_DEDUP_H_
