#include "quality/holistic.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/run_context.h"
#include "common/thread_pool.h"

namespace famtree {

namespace {

struct CollectedViolation {
  int dc_index;
  std::vector<int> rows;
};

/// Cells feeding a violation: operand cells of every predicate.
std::vector<std::pair<int, int>> CellsOf(const Dc& dc,
                                         const CollectedViolation& v) {
  std::vector<std::pair<int, int>> cells;
  int row_a = v.rows[0];
  int row_b = v.rows.size() > 1 ? v.rows[1] : v.rows[0];
  for (const DcPredicate& p : dc.predicates()) {
    for (const DcOperand* o : {&p.lhs, &p.rhs}) {
      if (o->kind == DcOperand::Kind::kTupleA) {
        cells.push_back({row_a, o->attr});
      } else if (o->kind == DcOperand::Kind::kTupleB) {
        cells.push_back({row_b, o->attr});
      }
    }
  }
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  return cells;
}

/// Shared body: `pool == nullptr` is the serial oracle; with a pool the
/// per-DC violation collection fans out and is merged in DC order.
Result<RepairResult> RepairHolisticImpl(const Relation& relation,
                                        const std::vector<Dc>& dcs,
                                        int max_changes, ThreadPool* pool,
                                        RunContext* ctx) {
  RunContext::BeginRun(ctx, "repair_holistic");
  RepairResult result;
  result.repaired = relation;
  Relation& r = result.repaired;
  int changes = 0;
  const int kPerDcCap = 512;

  while (changes < max_changes) {
    // One applied cell change per iteration: a serial, deterministic unit,
    // so a limit firing here leaves a prefix of the full run's repair.
    Status gate = RunContext::Checkpoint(ctx);
    if (RunContext::IsStop(gate)) {
      RunContext::MarkExhausted(ctx, gate, changes, max_changes);
      for (const Dc& dc : dcs) {
        auto report = dc.Validate(r, 0);
        if (report.ok() && !report->holds) ++result.remaining_violations;
      }
      return result;
    }
    // 1. Collect violations across all DCs (read-only per DC, so the
    // Validates run concurrently; concatenation preserves DC order).
    std::vector<std::vector<CollectedViolation>> per_dc(dcs.size());
    FAMTREE_RETURN_NOT_OK(ParallelFor(
        pool, static_cast<int64_t>(dcs.size()), [&](int64_t d) {
          FAMTREE_ASSIGN_OR_RETURN(ValidationReport report,
                                   dcs[d].Validate(r, kPerDcCap));
          for (const Violation& v : report.violations) {
            per_dc[d].push_back(
                CollectedViolation{static_cast<int>(d), v.rows});
          }
          return Status::OK();
        }));
    std::vector<CollectedViolation> violations;
    for (const auto& list : per_dc) {
      violations.insert(violations.end(), list.begin(), list.end());
    }
    if (violations.empty()) break;

    // 2. Cells ranked by how many violations they feed.
    std::map<std::pair<int, int>, int> cell_count;
    for (const CollectedViolation& v : violations) {
      for (const auto& cell : CellsOf(dcs[v.dc_index], v)) {
        ++cell_count[cell];
      }
    }
    std::vector<std::pair<int, std::pair<int, int>>> ranked;
    for (const auto& [cell, count] : cell_count) {
      ranked.push_back({count, cell});
    }
    std::sort(ranked.rbegin(), ranked.rend());

    // Total violations a given row participates in, across all DCs —
    // the *global* objective a candidate value must improve (counting
    // only the cell's local violations lets an LHS change push the
    // conflict into another group instead of resolving it).
    auto row_violations = [&](int row) {
      int total = 0;
      for (const Dc& dc : dcs) {
        if (dc.IsSingleTuple()) {
          bool bad = true;
          for (const DcPredicate& p : dc.predicates()) {
            if (!p.Eval(r, row, row)) {
              bad = false;
              break;
            }
          }
          total += bad ? 1 : 0;
          continue;
        }
        for (int j = 0; j < r.num_rows(); ++j) {
          if (j == row) continue;
          bool ab = true, ba = true;
          for (const DcPredicate& p : dc.predicates()) {
            if (ab && !p.Eval(r, row, j)) ab = false;
            if (ba && !p.Eval(r, j, row)) ba = false;
            if (!ab && !ba) break;
          }
          total += (ab ? 1 : 0) + (ba ? 1 : 0);
        }
      }
      return total;
    };

    // 3./4. Walk cells by conflict count; apply the first strict global
    // improvement. Stop when no cell can be improved (termination).
    bool applied = false;
    for (const auto& [count, cell] : ranked) {
      auto [row, col] = cell;
      Value original = r.Get(row, col);
      int before = row_violations(row);
      if (before == 0) continue;

      // Candidate values: column domain (sampled) plus constant-predicate
      // boundaries on this column.
      std::vector<Value> candidates;
      std::set<std::string> seen;
      auto add_candidate = [&](const Value& v) {
        std::string key = std::string(ValueTypeName(v.type())) + v.ToString();
        if (seen.insert(key).second) candidates.push_back(v);
      };
      // Conflict partners first: for FD-shaped denials the partner's
      // value is usually the right repair.
      for (const CollectedViolation& v : violations) {
        bool involves = false;
        for (int vr : v.rows) involves |= vr == row;
        if (!involves) continue;
        for (int vr : v.rows) {
          if (vr != row) add_candidate(r.Get(vr, col));
        }
        if (candidates.size() >= 16) break;
      }
      for (int i = 0; i < r.num_rows() && candidates.size() < 24; ++i) {
        add_candidate(r.Get(i, col));
      }
      for (const Dc& dc : dcs) {
        for (const DcPredicate& p : dc.predicates()) {
          if (p.rhs.kind == DcOperand::Kind::kConst &&
              p.lhs.kind != DcOperand::Kind::kConst && p.lhs.attr == col) {
            add_candidate(p.rhs.constant);
            if (p.rhs.constant.is_numeric()) {
              add_candidate(Value(p.rhs.constant.AsNumeric() + 1));
              add_candidate(Value(p.rhs.constant.AsNumeric() - 1));
            }
          }
        }
      }

      int best_after = before;
      Value best_value = original;
      for (const Value& cand : candidates) {
        if (cand == original) continue;
        r.Set(row, col, cand);
        int after = row_violations(row);
        if (after < best_after) {
          best_after = after;
          best_value = cand;
        }
      }
      r.Set(row, col, original);
      if (best_after < before) {
        result.changes.push_back(CellChange{row, col, original, best_value});
        r.Set(row, col, best_value);
        ++changes;
        applied = true;
        break;
      }
    }
    if (!applied) break;
  }
  RunContext::MarkComplete(ctx, changes);

  for (const Dc& dc : dcs) {
    auto report = dc.Validate(r, 0);
    if (report.ok() && !report->holds) ++result.remaining_violations;
  }
  return result;
}

}  // namespace

Result<RepairResult> RepairWithDcsHolistic(const Relation& relation,
                                           const std::vector<Dc>& dcs,
                                           int max_changes) {
  return RepairHolisticImpl(relation, dcs, max_changes, nullptr, nullptr);
}

Result<RepairResult> RepairWithDcsHolistic(const Relation& relation,
                                           const std::vector<Dc>& dcs,
                                           int max_changes,
                                           const QualityOptions& options) {
  return RepairHolisticImpl(relation, dcs, max_changes, options.pool,
                            options.context);
}

}  // namespace famtree
