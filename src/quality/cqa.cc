#include "quality/cqa.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/run_context.h"
#include "common/thread_pool.h"
#include "discovery/discovery_util.h"

namespace famtree {

namespace {

Status CheckQuery(const Relation& relation, const SelectionQuery& query) {
  int nc = relation.num_columns();
  FAMTREE_RETURN_NOT_OK(CheckAttrCapacity(nc, "consistent query answering"));
  if (query.attr < 0 || query.attr >= nc) {
    return Status::Invalid("selection attribute outside the schema");
  }
  if (!AttrSet::Full(nc).ContainsAll(query.projection) ||
      query.projection.empty()) {
    return Status::Invalid("projection outside the schema or empty");
  }
  return Status::OK();
}

bool Selected(const Relation& relation, int row,
              const SelectionQuery& query) {
  return EvalCmp(relation.Get(row, query.attr), query.op, query.constant);
}

/// Splits an LHS group into RHS subgroups (each a candidate repair keep).
std::vector<std::vector<int>> Subgroups(const Relation& relation,
                                        const std::vector<int>& group,
                                        AttrSet rhs) {
  std::vector<std::vector<int>> sub;
  for (int row : group) {
    bool placed = false;
    for (auto& s : sub) {
      if (relation.AgreeOn(s[0], row, rhs)) {
        s.push_back(row);
        placed = true;
        break;
      }
    }
    if (!placed) sub.push_back({row});
  }
  return sub;
}

/// Deduplicated projection append.
void AppendProjection(const Relation& relation, int row, AttrSet projection,
                      std::set<std::vector<std::string>>* seen,
                      Relation* out) {
  std::vector<Value> proj = relation.Project(row, projection);
  std::vector<std::string> key;
  for (const Value& v : proj) {
    key.push_back(std::string(ValueTypeName(v.type())) + ":" + v.ToString());
  }
  if (seen->insert(key).second) {
    out->AppendRow(std::move(proj)).ok();
  }
}

}  // namespace

Result<Relation> CertainAnswers(const Relation& relation, const Fd& fd,
                                const SelectionQuery& query) {
  FAMTREE_RETURN_NOT_OK(CheckQuery(relation, query));
  Relation out{Schema(relation.ProjectColumns(query.projection).schema())};
  std::set<std::vector<std::string>> seen;
  for (const auto& group : relation.GroupBy(fd.lhs())) {
    auto sub = Subgroups(relation, group, fd.rhs());
    if (sub.size() == 1) {
      // Consistent group: every selected tuple's projection is certain.
      for (int row : group) {
        if (Selected(relation, row, query)) {
          AppendProjection(relation, row, query.projection, &seen, &out);
        }
      }
      continue;
    }
    // Conflicting group: a projection from this group is certain iff
    // every subgroup (i.e., every repair choice) contributes a selected
    // row with that projection.
    for (int row : group) {
      if (!Selected(relation, row, query)) continue;
      std::vector<Value> proj = relation.Project(row, query.projection);
      bool in_all = true;
      for (const auto& s : sub) {
        bool found = false;
        for (int other : s) {
          if (Selected(relation, other, query) &&
              relation.Project(other, query.projection) == proj) {
            found = true;
            break;
          }
        }
        if (!found) {
          in_all = false;
          break;
        }
      }
      if (in_all) {
        AppendProjection(relation, row, query.projection, &seen, &out);
      }
    }
  }
  return out;
}

Result<Relation> CertainAnswers(const Relation& relation, const Fd& fd,
                                const SelectionQuery& query,
                                const QualityOptions& options) {
  if (!options.use_encoding && options.pool == nullptr &&
      options.context == nullptr) {
    return CertainAnswers(relation, fd, query);
  }
  FAMTREE_RETURN_NOT_OK(CheckQuery(relation, query));
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "certain_answers");
  std::unique_ptr<EncodedRelation> local_encoding;
  FAMTREE_ASSIGN_OR_RETURN(
      const EncodedRelation* encoded,
      ResolveEncoding(relation, options.use_encoding, options.cache,
                      &local_encoding));
  std::vector<std::vector<int>> groups =
      encoded != nullptr ? encoded->GroupBy(fd.lhs())
                         : relation.GroupBy(fd.lhs());
  // Dense keys: projection equality and RHS agreement become integer
  // compares (key equality <=> value-tuple equality).
  std::vector<uint32_t> rhs_keys, proj_keys;
  if (encoded != nullptr) {
    encoded->RowKeys(fd.rhs(), &rhs_keys);
    encoded->RowKeys(query.projection, &proj_keys);
  }
  // Per-group certain rows (in group-row order) are independent; the
  // dedup + append below replays group order serially.
  std::vector<std::vector<int>> certain(groups.size());
  FAMTREE_ASSIGN_OR_RETURN(
      int64_t groups_done,
      AnytimeParallelFor(
          ctx, options.pool, static_cast<int64_t>(groups.size()),
          [&](int64_t g) {
        const std::vector<int>& group = groups[g];
        std::vector<std::vector<int>> sub;
        if (encoded != nullptr) {
          for (int row : group) {
            bool placed = false;
            for (auto& s : sub) {
              if (rhs_keys[s[0]] == rhs_keys[row]) {
                s.push_back(row);
                placed = true;
                break;
              }
            }
            if (!placed) sub.push_back({row});
          }
        } else {
          sub = Subgroups(relation, group, fd.rhs());
        }
        if (sub.size() == 1) {
          for (int row : group) {
            if (Selected(relation, row, query)) certain[g].push_back(row);
          }
          return Status::OK();
        }
        for (int row : group) {
          if (!Selected(relation, row, query)) continue;
          std::vector<Value> proj;
          if (encoded == nullptr) {
            proj = relation.Project(row, query.projection);
          }
          bool in_all = true;
          for (const auto& s : sub) {
            bool found = false;
            for (int other : s) {
              if (!Selected(relation, other, query)) continue;
              bool same_proj =
                  encoded != nullptr
                      ? proj_keys[other] == proj_keys[row]
                      : relation.Project(other, query.projection) == proj;
              if (same_proj) {
                found = true;
                break;
              }
            }
            if (!found) {
              in_all = false;
              break;
            }
          }
          if (in_all) certain[g].push_back(row);
        }
        return Status::OK();
          }));
  Relation out{Schema(relation.ProjectColumns(query.projection).schema())};
  std::set<std::vector<std::string>> seen;
  // Replaying the completed group prefix keeps a cut run's answer set a
  // deterministic subset of the full answers at any thread count.
  for (size_t g = 0; g < static_cast<size_t>(groups_done); ++g) {
    for (int row : certain[g]) {
      AppendProjection(relation, row, query.projection, &seen, &out);
    }
  }
  if (groups_done < static_cast<int64_t>(groups.size())) {
    RunContext::MarkExhausted(ctx, RunContext::StopStatus(ctx), groups_done,
                              groups.size());
  } else {
    RunContext::MarkComplete(ctx, groups_done);
  }
  return out;
}

Result<Relation> PossibleAnswers(const Relation& relation, const Fd& fd,
                                 const SelectionQuery& query,
                                 const QualityOptions& options) {
  if (options.pool == nullptr && options.context == nullptr) {
    return PossibleAnswers(relation, fd, query);
  }
  FAMTREE_RETURN_NOT_OK(CheckQuery(relation, query));
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "possible_answers");
  int n = relation.num_rows();
  std::vector<char> selected(n, 0);
  FAMTREE_ASSIGN_OR_RETURN(
      int64_t rows_done,
      AnytimeParallelFor(ctx, options.pool, n, [&](int64_t row) {
        selected[row] =
            Selected(relation, static_cast<int>(row), query) ? 1 : 0;
        return Status::OK();
      }));
  Relation out{Schema(relation.ProjectColumns(query.projection).schema())};
  std::set<std::vector<std::string>> seen;
  for (int row = 0; row < static_cast<int>(rows_done); ++row) {
    if (selected[row]) {
      AppendProjection(relation, row, query.projection, &seen, &out);
    }
  }
  if (rows_done < n) {
    RunContext::MarkExhausted(ctx, RunContext::StopStatus(ctx), rows_done, n);
  } else {
    RunContext::MarkComplete(ctx, rows_done);
  }
  (void)fd;  // every tuple survives in some subset repair
  return out;
}

Result<Relation> PossibleAnswers(const Relation& relation, const Fd& fd,
                                 const SelectionQuery& query) {
  FAMTREE_RETURN_NOT_OK(CheckQuery(relation, query));
  // Every selected tuple appears in the repair keeping its own subgroup.
  Relation out{Schema(relation.ProjectColumns(query.projection).schema())};
  std::set<std::vector<std::string>> seen;
  for (int row = 0; row < relation.num_rows(); ++row) {
    if (Selected(relation, row, query)) {
      AppendProjection(relation, row, query.projection, &seen, &out);
    }
  }
  (void)fd;  // every tuple survives in some subset repair
  return out;
}

}  // namespace famtree
