#ifndef FAMTREE_QUALITY_SPEED_CLEAN_H_
#define FAMTREE_QUALITY_SPEED_CLEAN_H_

#include <vector>

#include "common/status.h"
#include "deps/dependency.h"
#include "quality/quality_options.h"
#include "quality/repair.h"
#include "relation/relation.h"

namespace famtree {

/// A speed constraint on a timestamped value series (Section 5.3 future
/// work; SCREEN [97]): between consecutive observations, the value may
/// change at a rate within [min_speed, max_speed] per unit of time.
/// Speed constraints are the temporal cousins of SDs: an SD bounds the
/// *gap* between consecutive tuples, a speed constraint bounds the gap
/// normalized by elapsed time.
struct SpeedConstraint {
  double min_speed = -std::numeric_limits<double>::infinity();
  double max_speed = std::numeric_limits<double>::infinity();
};

/// Violations of the speed constraint: consecutive (by time) observation
/// pairs whose rate of change leaves the band.
Result<std::vector<Violation>> DetectSpeedViolations(
    const Relation& relation, int time_attr, int value_attr,
    const SpeedConstraint& constraint);

/// Fast-path overload: the time sort becomes a stable counting sort over
/// code ranks and the numerics decode once per dictionary code (in
/// parallel on the pool); the scan itself is a linear pass. Identical to
/// the oracle.
Result<std::vector<Violation>> DetectSpeedViolations(
    const Relation& relation, int time_attr, int value_attr,
    const SpeedConstraint& constraint, const QualityOptions& options);

/// Streaming repair in the spirit of SCREEN's local mode: scan in time
/// order and clamp each value into the feasible window implied by the
/// previous (already repaired) observation:
///   [prev + min_speed * dt, prev + max_speed * dt].
/// Minimal-change per step; the repaired series satisfies the constraint.
Result<RepairResult> RepairWithSpeedConstraint(
    const Relation& relation, int time_attr, int value_attr,
    const SpeedConstraint& constraint);

/// Fast-path overload: same clamping scan (inherently sequential — each
/// window depends on the previous repaired value) on top of the encoded
/// sort and per-code numerics. Identical to the oracle.
Result<RepairResult> RepairWithSpeedConstraint(
    const Relation& relation, int time_attr, int value_attr,
    const SpeedConstraint& constraint, const QualityOptions& options);

}  // namespace famtree

#endif  // FAMTREE_QUALITY_SPEED_CLEAN_H_
