#include "quality/optimizer.h"

#include <algorithm>

namespace famtree {

std::vector<PropagatedOrder> PropagateOrders(int sorted_attr,
                                             const std::vector<Od>& ods,
                                             int num_attrs) {
  // direction[a]: -1 unknown, 0 ascending, 1 descending. BFS over unary
  // ODs: lhs mark on a known-direction attribute propagates to the RHS
  // marks (flipping when the LHS mark runs against the known direction).
  std::vector<int> direction(num_attrs, -1);
  direction[sorted_attr] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Od& od : ods) {
      if (od.lhs().size() != 1) continue;  // composite LHS: skip
      const MarkedAttr& x = od.lhs()[0];
      if (x.attr >= num_attrs || direction[x.attr] < 0) continue;
      // Does the known order of x.attr satisfy the LHS mark for every
      // adjacent pair? Ascending data satisfies <= / <-ish scans, and the
      // mark direction composes with the data direction:
      bool mark_ascending =
          x.mark == OrderMark::kLeq || x.mark == OrderMark::kLt;
      // Scanning the data in its sorted direction makes consecutive
      // pairs satisfy an ascending mark iff the data is ascending; a
      // descending mark iff descending. Otherwise scan backwards — either
      // way the implication transfers, with the RHS direction flipped
      // when we scan backwards.
      bool flipped = (direction[x.attr] == 1) == mark_ascending;
      for (const MarkedAttr& y : od.rhs()) {
        if (y.attr >= num_attrs) continue;
        bool y_ascending =
            y.mark == OrderMark::kLeq || y.mark == OrderMark::kLt;
        int dir = (y_ascending != flipped) ? 0 : 1;
        if (direction[y.attr] < 0) {
          direction[y.attr] = dir;
          changed = true;
        }
      }
    }
  }
  std::vector<PropagatedOrder> out;
  for (int a = 0; a < num_attrs; ++a) {
    if (a != sorted_attr && direction[a] >= 0) {
      out.push_back(PropagatedOrder{a, direction[a] == 0});
    }
  }
  return out;
}

bool CanSkipSort(int sorted_attr, int target, const std::vector<Od>& ods,
                 int num_attrs) {
  if (sorted_attr == target) return true;
  for (const PropagatedOrder& p :
       PropagateOrders(sorted_attr, ods, num_attrs)) {
    if (p.attr == target) return true;
  }
  return false;
}

long long BoundProjectionSize(const Relation& relation, AttrSet target,
                              const std::vector<Nud>& nuds,
                              const std::vector<KnownCardinality>& known) {
  long long best = relation.num_rows();
  // Direct knowledge.
  for (const KnownCardinality& k : known) {
    if (k.attrs == target) best = std::min(best, k.distinct);
  }
  // One chaining step per pass, to a fixpoint: |Y| <= |X| * k.
  std::vector<KnownCardinality> facts = known;
  for (int pass = 0; pass < 8; ++pass) {
    bool changed = false;
    for (const Nud& nud : nuds) {
      long long lhs_bound = -1;
      for (const KnownCardinality& k : facts) {
        if (k.attrs == nud.lhs()) {
          lhs_bound = lhs_bound < 0 ? k.distinct
                                    : std::min(lhs_bound, k.distinct);
        }
      }
      if (lhs_bound < 0) continue;
      long long derived = lhs_bound * nud.weight();
      bool found = false;
      for (KnownCardinality& k : facts) {
        if (k.attrs == nud.rhs()) {
          found = true;
          if (derived < k.distinct) {
            k.distinct = derived;
            changed = true;
          }
        }
      }
      if (!found) {
        facts.push_back(KnownCardinality{nud.rhs(), derived});
        changed = true;
      }
      if (nud.rhs() == target) best = std::min(best, derived);
    }
    if (!changed) break;
  }
  for (const KnownCardinality& k : facts) {
    if (k.attrs == target) best = std::min(best, k.distinct);
  }
  return std::max<long long>(best, 0);
}

}  // namespace famtree
