#include "quality/detector.h"

#include <set>

#include "common/run_context.h"
#include "common/thread_pool.h"
#include "deps/fd.h"
#include "engine/pli_cache.h"

namespace famtree {

namespace {

/// Confirms an exact FD rule straight from the shared PLI store (whose
/// partitions are counting-sorted off the cache's dictionary-encoded
/// backend): X -> Y holds iff pi(X) and pi(X u Y) have equal refinement
/// cost. Returns true
/// (and fills a clean report matching Fd::Validate's holding output) only
/// when the FD holds; violated FDs return false so the caller collects
/// witnesses through the regular path.
bool TryConfirmFdFromCache(const Relation& relation, const Dependency& rule,
                           PliCache* cache, RunContext* context,
                           ValidationReport* report) {
  if (cache == nullptr || cache->relation_or_null() != &relation) return false;
  const auto* fd = dynamic_cast<const Fd*>(&rule);
  if (fd == nullptr || fd->lhs().empty()) return false;
  AttrSet all = fd->lhs().Union(fd->rhs());
  if (!AttrSet::Full(relation.num_columns()).ContainsAll(all)) return false;
  std::shared_ptr<const StrippedPartition> x = cache->Get(fd->lhs(), context);
  std::shared_ptr<const StrippedPartition> xy = cache->Get(all, context);
  if (x == nullptr || xy == nullptr) return false;
  if (!StrippedPartition::FdHolds(*x, *xy)) return false;
  report->holds = true;
  report->violation_count = 0;
  report->violations.clear();
  report->measure = 1.0;
  return true;
}

}  // namespace

Result<DetectionSummary> ViolationDetector::Detect(
    const Relation& relation, int max_violations_per_rule, ThreadPool* pool,
    PliCache* cache, RunContext* context) const {
  RunContext::BeginRun(context, "detect");
  int num_rules = static_cast<int>(rules_.size());
  std::vector<ValidationReport> reports(num_rules);
  FAMTREE_ASSIGN_OR_RETURN(
      int64_t done,
      AnytimeParallelFor(context, pool, num_rules, [&](int64_t i) {
        if (TryConfirmFdFromCache(relation, *rules_[i], cache, context,
                                  &reports[i])) {
          return Status::OK();
        }
        FAMTREE_ASSIGN_OR_RETURN(
            reports[i], rules_[i]->Validate(relation, max_violations_per_rule));
        return Status::OK();
      }));
  // The summary covers the completed rule prefix only; an interrupted
  // batch's reports are discarded whole so the prefix is the same at any
  // thread count.
  DetectionSummary summary;
  std::set<int> flagged;
  for (int i = 0; i < done; ++i) {
    for (const Violation& v : reports[i].violations) {
      for (int row : v.rows) flagged.insert(row);
    }
    summary.results.push_back(
        DetectionResult{rules_[i], std::move(reports[i])});
  }
  summary.flagged_rows.assign(flagged.begin(), flagged.end());
  if (done < num_rules) {
    RunContext::MarkExhausted(context, RunContext::StopStatus(context), done,
                              num_rules);
  } else {
    RunContext::MarkComplete(context, num_rules);
  }
  return summary;
}

std::string FormatViolation(const Relation& relation,
                            const Dependency& dependency,
                            const Violation& violation) {
  std::string out =
      "violation of " + dependency.ToString(&relation.schema()) + ":\n";
  for (int row : violation.rows) {
    out += "  row " + std::to_string(row) + ": (";
    for (int c = 0; c < relation.num_columns(); ++c) {
      if (c) out += ", ";
      out += relation.Get(row, c).ToString();
    }
    out += ")\n";
  }
  out += "  " + violation.description + "\n";
  return out;
}

PrecisionRecall ScoreDetection(const DetectionSummary& summary,
                               const std::vector<PlantedError>& errors) {
  std::set<int> dirty_rows;
  for (const PlantedError& e : errors) dirty_rows.insert(e.row);
  PrecisionRecall pr;
  std::set<int> flagged(summary.flagged_rows.begin(),
                        summary.flagged_rows.end());
  for (int row : flagged) {
    if (dirty_rows.count(row)) {
      ++pr.true_positives;
    } else {
      ++pr.false_positives;
    }
  }
  for (int row : dirty_rows) {
    if (!flagged.count(row)) ++pr.false_negatives;
  }
  int denom_p = pr.true_positives + pr.false_positives;
  int denom_r = pr.true_positives + pr.false_negatives;
  pr.precision = denom_p == 0 ? 1.0
                              : static_cast<double>(pr.true_positives) /
                                    denom_p;
  pr.recall = denom_r == 0
                  ? 1.0
                  : static_cast<double>(pr.true_positives) / denom_r;
  return pr;
}

}  // namespace famtree
