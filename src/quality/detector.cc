#include "quality/detector.h"

#include <set>

namespace famtree {

Result<DetectionSummary> ViolationDetector::Detect(
    const Relation& relation, int max_violations_per_rule) const {
  DetectionSummary summary;
  std::set<int> flagged;
  for (const DependencyPtr& rule : rules_) {
    FAMTREE_ASSIGN_OR_RETURN(
        ValidationReport report,
        rule->Validate(relation, max_violations_per_rule));
    for (const Violation& v : report.violations) {
      for (int row : v.rows) flagged.insert(row);
    }
    summary.results.push_back(DetectionResult{rule, std::move(report)});
  }
  summary.flagged_rows.assign(flagged.begin(), flagged.end());
  return summary;
}

std::string FormatViolation(const Relation& relation,
                            const Dependency& dependency,
                            const Violation& violation) {
  std::string out =
      "violation of " + dependency.ToString(&relation.schema()) + ":\n";
  for (int row : violation.rows) {
    out += "  row " + std::to_string(row) + ": (";
    for (int c = 0; c < relation.num_columns(); ++c) {
      if (c) out += ", ";
      out += relation.Get(row, c).ToString();
    }
    out += ")\n";
  }
  out += "  " + violation.description + "\n";
  return out;
}

PrecisionRecall ScoreDetection(const DetectionSummary& summary,
                               const std::vector<PlantedError>& errors) {
  std::set<int> dirty_rows;
  for (const PlantedError& e : errors) dirty_rows.insert(e.row);
  PrecisionRecall pr;
  std::set<int> flagged(summary.flagged_rows.begin(),
                        summary.flagged_rows.end());
  for (int row : flagged) {
    if (dirty_rows.count(row)) {
      ++pr.true_positives;
    } else {
      ++pr.false_positives;
    }
  }
  for (int row : dirty_rows) {
    if (!flagged.count(row)) ++pr.false_negatives;
  }
  int denom_p = pr.true_positives + pr.false_positives;
  int denom_r = pr.true_positives + pr.false_negatives;
  pr.precision = denom_p == 0 ? 1.0
                              : static_cast<double>(pr.true_positives) /
                                    denom_p;
  pr.recall = denom_r == 0
                  ? 1.0
                  : static_cast<double>(pr.true_positives) / denom_r;
  return pr;
}

}  // namespace famtree
