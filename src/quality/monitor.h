#ifndef FAMTREE_QUALITY_MONITOR_H_
#define FAMTREE_QUALITY_MONITOR_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "deps/dependency.h"
#include "relation/relation.h"

namespace famtree {

/// Violations triggered by one appended tuple.
struct MonitorAlert {
  /// Index the new row received in the monitored relation.
  int row = 0;
  /// One entry per violated rule: the rule and the witnesses involving
  /// the new row.
  std::vector<std::pair<DependencyPtr, std::vector<Violation>>> findings;
  bool clean() const { return findings.empty(); }
};

/// Streaming data-quality monitor in the spirit of PAC-Man ([63],
/// Section 3.5.4: "keeps on monitoring the new data overtime and alarms
/// when violations are detected") and of incremental FFD checking [108]:
/// tuples arrive one at a time and each is checked against the data seen
/// so far.
///
/// Incremental strategies per class:
///   - FDs: hash map from LHS projection to the first row's RHS values —
///     O(1) per arrival;
///   - pairwise classes (MFDs, NEDs, DDs, CDDs, CDs, PACs, FFDs, MDs,
///     CMDs, ODs, OFDs, two-tuple DCs): the new tuple is compared against
///     every stored tuple — O(n) per arrival instead of O(n^2) re-runs;
///   - single-tuple DCs: O(1);
///   - anything else (MVD-family, SDs/CSDs, statistical thresholds whose
///     measure is global): full revalidation restricted to reports that
///     mention the new row — correct but O(full validate); documented
///     fallback.
///
/// Note for threshold classes (SFD/PFD/AFD/PAC confidences): an arrival
/// is flagged when the rule, evaluated on the data seen so far, no longer
/// meets its threshold *and* the new row participates in a witness.
class StreamMonitor {
 public:
  explicit StreamMonitor(Schema schema, std::vector<DependencyPtr> rules)
      : relation_(std::move(schema)), rules_(std::move(rules)) {}

  const Relation& relation() const { return relation_; }

  /// Appends one tuple and reports the violations it introduces.
  Result<MonitorAlert> Append(std::vector<Value> row);

 private:
  Relation relation_;
  std::vector<DependencyPtr> rules_;
  /// FD fast path: per FD rule index, LHS-projection key -> witness row.
  struct FdIndex {
    std::unordered_map<size_t, std::vector<int>> buckets;
  };
  std::unordered_map<size_t, FdIndex> fd_indexes_;
};

}  // namespace famtree

#endif  // FAMTREE_QUALITY_MONITOR_H_
