#ifndef FAMTREE_QUALITY_SATURATE_H_
#define FAMTREE_QUALITY_SATURATE_H_

#include "common/status.h"
#include "deps/mvd.h"
#include "quality/repair.h"
#include "relation/relation.h"

namespace famtree {

/// Outcome of tuple-generating repair.
struct SaturationResult {
  Relation saturated;
  /// Number of tuples inserted.
  int inserted = 0;
};

/// Tuple-generating repair for MVDs — the Section 2.6.4 application
/// ([80]: model fairness reduces to a database repair enforcing the
/// conditional independence X ->> Y): for every X-group, inserts the
/// missing (Y, Z) combinations so the group becomes the full product and
/// the MVD holds exactly. This is the *insertion* dual of the
/// deletion/modification repairs elsewhere in quality/ (MVDs are
/// tuple-generating dependencies, Section 2.6).
Result<SaturationResult> SaturateMvd(const Relation& relation,
                                     const Mvd& mvd);

}  // namespace famtree

#endif  // FAMTREE_QUALITY_SATURATE_H_
