#ifndef FAMTREE_QUALITY_QUALITY_OPTIONS_H_
#define FAMTREE_QUALITY_QUALITY_OPTIONS_H_

namespace famtree {

class EvidenceCache;
class PliCache;
class RunContext;
class ThreadPool;

/// Fast-path knobs shared by the quality applications, following the same
/// convention as the discovery miners: `use_encoding == false` with a null
/// `pool` is the Value-based oracle; the default runs on the
/// dictionary-encoded columnar backend, fanning the read-only scans onto
/// the engine thread pool with all order-sensitive merges replayed
/// serially — results are identical at any thread count. `cache` lends its
/// encoding when the application reads the relation it serves (appliers
/// that mutate a working copy re-encode that copy instead).
struct QualityOptions {
  bool use_encoding = true;
  ThreadPool* pool = nullptr;
  PliCache* cache = nullptr;
  /// Route pairwise scans through the shared comparison kernel
  /// (engine/evidence.h): similarity predicates compile to per-pair
  /// threshold-bucket bits (byte-wide banded-edit bucket tables instead of
  /// full distance tables), decoded by bitmask per rule. Applications fall
  /// back to their per-predicate scans (identical output) for configs the
  /// kernel cannot mirror exactly. Requires use_encoding.
  bool use_evidence = true;
  /// Optional shared store for kernel-built evidence multisets.
  EvidenceCache* evidence = nullptr;
  /// Optional run limits (common/run_context.h): applications check-point
  /// at pass/rule boundaries and degrade to a partial result (with
  /// RunReport.exhausted set) when a limit fires.
  RunContext* context = nullptr;
};

}  // namespace famtree

#endif  // FAMTREE_QUALITY_QUALITY_OPTIONS_H_
