#ifndef FAMTREE_QUALITY_QUALITY_OPTIONS_H_
#define FAMTREE_QUALITY_QUALITY_OPTIONS_H_

namespace famtree {

class PliCache;
class ThreadPool;

/// Fast-path knobs shared by the quality applications, following the same
/// convention as the discovery miners: `use_encoding == false` with a null
/// `pool` is the Value-based oracle; the default runs on the
/// dictionary-encoded columnar backend, fanning the read-only scans onto
/// the engine thread pool with all order-sensitive merges replayed
/// serially — results are identical at any thread count. `cache` lends its
/// encoding when the application reads the relation it serves (appliers
/// that mutate a working copy re-encode that copy instead).
struct QualityOptions {
  bool use_encoding = true;
  ThreadPool* pool = nullptr;
  PliCache* cache = nullptr;
};

}  // namespace famtree

#endif  // FAMTREE_QUALITY_QUALITY_OPTIONS_H_
