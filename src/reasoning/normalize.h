#ifndef FAMTREE_REASONING_NORMALIZE_H_
#define FAMTREE_REASONING_NORMALIZE_H_

#include <string>
#include <vector>

#include "deps/fd.h"
#include "deps/mvd.h"
#include "reasoning/closure.h"
#include "relation/schema.h"

namespace famtree {

/// One FD violating a normal form, with the reason.
struct NormalFormViolation {
  Fd fd;
  std::string reason;
};

/// BCNF (Section 1 background, [24]): every non-trivial FD's LHS is a
/// superkey. Returns the violating FDs (empty == in BCNF).
std::vector<NormalFormViolation> BcnfViolations(int num_attrs,
                                                const std::vector<Fd>& fds);

/// 3NF [23]: every non-trivial FD has a superkey LHS or a prime RHS
/// attribute (member of some candidate key).
std::vector<NormalFormViolation> ThirdNfViolations(
    int num_attrs, const std::vector<Fd>& fds);

/// 4NF [30]: every non-trivial MVD's LHS is a superkey (under the FDs).
/// This is where MVDs earn their place in the family tree (Section 2.6.4).
std::vector<NormalFormViolation> FourthNfViolations(
    int num_attrs, const std::vector<Fd>& fds,
    const std::vector<Mvd>& mvds);

/// One decomposed fragment: the attributes it keeps.
struct Fragment {
  AttrSet attrs;
};

/// Lossless-join BCNF decomposition (textbook algorithm): repeatedly split
/// a fragment on a violating FD X -> Y into (X u Y) and (fragment - Y).
/// Terminates with fragments whose projected FDs are in BCNF.
std::vector<Fragment> DecomposeBcnf(int num_attrs,
                                    const std::vector<Fd>& fds);

/// Projects the FDs onto a fragment (closure-based; exponential in the
/// fragment size, fine for schema-design workloads).
std::vector<Fd> ProjectFds(AttrSet fragment, const std::vector<Fd>& fds);

/// Lossless 4NF decomposition step ([30]): splits the full schema on each
/// violating MVD X ->> Y into (X u Y) and (R - Y), recursing until no
/// given MVD with a non-superkey LHS applies inside a fragment. Only the
/// provided FDs/MVDs are considered (dependency projection for MVDs is
/// undecidable in general).
std::vector<Fragment> DecomposeFourthNf(int num_attrs,
                                        const std::vector<Fd>& fds,
                                        const std::vector<Mvd>& mvds);

}  // namespace famtree

#endif  // FAMTREE_REASONING_NORMALIZE_H_
