#include "reasoning/closure.h"

#include <algorithm>

namespace famtree {

AttrSet Closure(AttrSet attrs, const std::vector<Fd>& fds) {
  AttrSet closure = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fd& fd : fds) {
      if (closure.ContainsAll(fd.lhs()) && !closure.ContainsAll(fd.rhs())) {
        closure = closure.Union(fd.rhs());
        changed = true;
      }
    }
  }
  return closure;
}

bool Implies(const std::vector<Fd>& fds, const Fd& candidate) {
  return Closure(candidate.lhs(), fds).ContainsAll(candidate.rhs());
}

std::vector<Fd> MinimalCover(const std::vector<Fd>& fds) {
  // 1. Singleton right-hand sides.
  std::vector<Fd> cover;
  for (const Fd& fd : fds) {
    for (int a : fd.rhs().ToVector()) {
      if (fd.lhs().Contains(a)) continue;  // trivial
      cover.push_back(Fd(fd.lhs(), AttrSet::Single(a)));
    }
  }
  // 2. Remove extraneous LHS attributes: A is extraneous in X -> B when
  // (X \ A) -> B is already implied.
  for (Fd& fd : cover) {
    bool shrunk = true;
    while (shrunk && fd.lhs().size() > 1) {
      shrunk = false;
      for (int a : fd.lhs().ToVector()) {
        Fd reduced(fd.lhs().Without(a), fd.rhs());
        if (Implies(cover, reduced)) {
          fd = reduced;
          shrunk = true;
          break;
        }
      }
    }
  }
  // 3. Remove redundant FDs.
  for (size_t i = 0; i < cover.size();) {
    std::vector<Fd> rest;
    for (size_t j = 0; j < cover.size(); ++j) {
      if (j != i) rest.push_back(cover[j]);
    }
    if (Implies(rest, cover[i])) {
      cover.erase(cover.begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }
  // Deduplicate.
  std::sort(cover.begin(), cover.end());
  cover.erase(std::unique(cover.begin(), cover.end()), cover.end());
  return cover;
}

std::vector<AttrSet> CandidateKeys(int num_attrs, const std::vector<Fd>& fds,
                                   int max_keys) {
  AttrSet full = AttrSet::Full(num_attrs);
  std::vector<AttrSet> keys;
  // Level-wise from small sets; a superset of a key is never minimal.
  for (int size = 1; size <= num_attrs; ++size) {
    for (AttrSet cand : AllSubsetsOfSize(num_attrs, size)) {
      bool has_subkey = false;
      for (const AttrSet& k : keys) {
        if (cand.ContainsAll(k)) {
          has_subkey = true;
          break;
        }
      }
      if (has_subkey) continue;
      if (Closure(cand, fds) == full) {
        keys.push_back(cand);
        if (static_cast<int>(keys.size()) >= max_keys) return keys;
      }
    }
  }
  return keys;
}

bool MdImplies(const Md& a, const Md& b) {
  if (!a.rhs().ContainsAll(b.rhs())) return false;
  for (const SimilarityPredicate& pa : a.lhs()) {
    bool matched = false;
    for (const SimilarityPredicate& pb : b.lhs()) {
      if (pa.attr == pb.attr && pa.metric == pb.metric &&
          pb.threshold <= pa.threshold) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

std::vector<Md> MinimizeMds(const std::vector<Md>& mds) {
  std::vector<Md> out;
  for (size_t i = 0; i < mds.size(); ++i) {
    bool implied = false;
    for (size_t j = 0; j < mds.size(); ++j) {
      if (i == j) continue;
      if (MdImplies(mds[j], mds[i])) {
        // Tie-break so mutually-implying duplicates keep exactly one.
        if (!MdImplies(mds[i], mds[j]) || j < i) {
          implied = true;
          break;
        }
      }
    }
    if (!implied) out.push_back(mds[i]);
  }
  return out;
}

}  // namespace famtree
