#ifndef FAMTREE_REASONING_CLOSURE_H_
#define FAMTREE_REASONING_CLOSURE_H_

#include <vector>

#include "common/attr_set.h"
#include "deps/fd.h"
#include "deps/md.h"

namespace famtree {

/// Attribute-set closure X+ under a set of FDs (Armstrong's axioms,
/// Section 1.1 background [24]): the largest set X determines.
AttrSet Closure(AttrSet attrs, const std::vector<Fd>& fds);

/// Logical implication: does `fds` entail `candidate`? (X -> Y iff
/// Y subset-of X+.)
bool Implies(const std::vector<Fd>& fds, const Fd& candidate);

/// A canonical (minimal) cover: singleton RHSs, no extraneous LHS
/// attributes, no redundant FDs. The textbook normalization preprocessor.
std::vector<Fd> MinimalCover(const std::vector<Fd>& fds);

/// All candidate keys of a schema with `num_attrs` attributes under `fds`
/// (minimal sets whose closure is everything). Exponential in the worst
/// case — the NP-complete key-of-size-k problem [5] (Section 1.4.2) —
/// bounded by `max_keys`.
std::vector<AttrSet> CandidateKeys(int num_attrs, const std::vector<Fd>& fds,
                                   int max_keys = 64);

/// MD implication (Section 3.7.4 [37], simplified to one relation): md `a`
/// implies md `b` when b's LHS predicates are at least as *tight* (every
/// predicate of a has a counterpart in b on the same attribute and metric
/// with threshold <= a's) and b identifies no more than a does
/// (b.rhs subset-of a.rhs). Pairs matching b's LHS then match a's, so a's
/// identification applies.
bool MdImplies(const Md& a, const Md& b);

/// Removes MDs implied by another MD in the set — the concise
/// matching-key sets of [90] in spirit.
std::vector<Md> MinimizeMds(const std::vector<Md>& mds);

}  // namespace famtree

#endif  // FAMTREE_REASONING_CLOSURE_H_
