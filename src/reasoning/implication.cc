#include "reasoning/implication.h"

namespace famtree {

namespace {

bool SameOperand(const DcOperand& a, const DcOperand& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == DcOperand::Kind::kConst) return a.constant == b.constant;
  return a.attr == b.attr;
}

bool SamePredicate(const DcPredicate& a, const DcPredicate& b) {
  return a.op == b.op && SameOperand(a.lhs, b.lhs) &&
         SameOperand(a.rhs, b.rhs);
}

bool RangeContains(const DistRange& outer, const DistRange& inner) {
  return outer.min <= inner.min && outer.max >= inner.max;
}

}  // namespace

bool DcImplies(const Dc& a, const Dc& b) {
  for (const DcPredicate& pa : a.predicates()) {
    bool found = false;
    for (const DcPredicate& pb : b.predicates()) {
      if (SamePredicate(pa, pb)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::vector<Dc> MinimizeDcs(const std::vector<Dc>& dcs) {
  std::vector<Dc> out;
  for (size_t i = 0; i < dcs.size(); ++i) {
    bool implied = false;
    for (size_t j = 0; j < dcs.size(); ++j) {
      if (i == j) continue;
      if (DcImplies(dcs[j], dcs[i])) {
        if (!DcImplies(dcs[i], dcs[j]) || j < i) {
          implied = true;
          break;
        }
      }
    }
    if (!implied) out.push_back(dcs[i]);
  }
  return out;
}

bool DdImplies(const Dd& a, const Dd& b) {
  // b's LHS must restrict at least as much as a's on a's attributes.
  for (const DifferentialFunction& fa : a.lhs()) {
    bool found = false;
    for (const DifferentialFunction& fb : b.lhs()) {
      if (fa.attr == fb.attr && fa.metric == fb.metric &&
          RangeContains(fa.range, fb.range)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  // a's RHS must promise at least what b's RHS asks.
  for (const DifferentialFunction& fb : b.rhs()) {
    bool found = false;
    for (const DifferentialFunction& fa : a.rhs()) {
      if (fa.attr == fb.attr && fa.metric == fb.metric &&
          RangeContains(fb.range, fa.range)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace famtree
