#include "reasoning/normalize.h"

#include <algorithm>

namespace famtree {

namespace {

bool IsSuperkey(AttrSet attrs, int num_attrs, const std::vector<Fd>& fds) {
  return Closure(attrs, fds) == AttrSet::Full(num_attrs);
}

bool IsTrivialFd(const Fd& fd) { return fd.lhs().ContainsAll(fd.rhs()); }

}  // namespace

std::vector<NormalFormViolation> BcnfViolations(int num_attrs,
                                                const std::vector<Fd>& fds) {
  std::vector<NormalFormViolation> out;
  for (const Fd& fd : fds) {
    if (IsTrivialFd(fd)) continue;
    if (!IsSuperkey(fd.lhs(), num_attrs, fds)) {
      out.push_back(NormalFormViolation{fd, "LHS is not a superkey"});
    }
  }
  return out;
}

std::vector<NormalFormViolation> ThirdNfViolations(
    int num_attrs, const std::vector<Fd>& fds) {
  std::vector<NormalFormViolation> out;
  AttrSet prime;
  for (const AttrSet& key : CandidateKeys(num_attrs, fds)) {
    prime = prime.Union(key);
  }
  for (const Fd& fd : fds) {
    if (IsTrivialFd(fd)) continue;
    if (IsSuperkey(fd.lhs(), num_attrs, fds)) continue;
    // Every RHS attribute outside the LHS must be prime.
    AttrSet nonprime = fd.rhs().Minus(fd.lhs()).Minus(prime);
    if (!nonprime.empty()) {
      out.push_back(NormalFormViolation{
          fd, "LHS is not a superkey and RHS has non-prime attributes"});
    }
  }
  return out;
}

std::vector<NormalFormViolation> FourthNfViolations(
    int num_attrs, const std::vector<Fd>& fds,
    const std::vector<Mvd>& mvds) {
  std::vector<NormalFormViolation> out;
  for (const Mvd& mvd : mvds) {
    AttrSet rest =
        AttrSet::Full(num_attrs).Minus(mvd.lhs()).Minus(mvd.rhs());
    // Trivial MVD: Y empty or Y u X = R.
    if (mvd.rhs().empty() || rest.empty()) continue;
    if (!IsSuperkey(mvd.lhs(), num_attrs, fds)) {
      out.push_back(NormalFormViolation{
          Fd(mvd.lhs(), mvd.rhs()),
          "MVD " + mvd.ToString() + " with non-superkey LHS"});
    }
  }
  return out;
}

std::vector<Fd> ProjectFds(AttrSet fragment, const std::vector<Fd>& fds) {
  std::vector<Fd> projected;
  // For every non-empty subset X of the fragment (increasing mask order,
  // the historical enumeration order), X -> (X+ intersect fragment) \ X.
  // The width-safe subset helper replaces the old `1ULL << size` loop,
  // which was undefined for fragments of 64+ attributes.
  std::vector<AttrSet> subsets = ProperNonEmptySubsets(fragment);
  std::reverse(subsets.begin(), subsets.end());
  if (!fragment.empty()) subsets.push_back(fragment);
  for (const AttrSet& x : subsets) {
    AttrSet rhs = Closure(x, fds).Intersect(fragment).Minus(x);
    if (!rhs.empty()) projected.push_back(Fd(x, rhs));
  }
  return MinimalCover(projected);
}

std::vector<Fragment> DecomposeBcnf(int num_attrs,
                                    const std::vector<Fd>& fds) {
  std::vector<Fragment> done;
  std::vector<Fragment> todo{Fragment{AttrSet::Full(num_attrs)}};
  while (!todo.empty()) {
    Fragment frag = todo.back();
    todo.pop_back();
    if (frag.attrs.size() > 16) {
      // ProjectFds enumerates subsets; keep fragments tractable by
      // splitting on the original violating FDs first.
      std::vector<NormalFormViolation> violations =
          BcnfViolations(num_attrs, fds);
      bool split = false;
      for (const auto& v : violations) {
        if (frag.attrs.ContainsAll(v.fd.lhs()) &&
            frag.attrs.Intersects(v.fd.rhs().Minus(v.fd.lhs()))) {
          AttrSet y = Closure(v.fd.lhs(), fds)
                          .Intersect(frag.attrs)
                          .Minus(v.fd.lhs());
          todo.push_back(Fragment{v.fd.lhs().Union(y)});
          todo.push_back(Fragment{frag.attrs.Minus(y)});
          split = true;
          break;
        }
      }
      if (!split) done.push_back(frag);
      continue;
    }
    std::vector<Fd> local = ProjectFds(frag.attrs, fds);
    bool split = false;
    for (const Fd& fd : local) {
      if (fd.lhs().ContainsAll(fd.rhs())) continue;
      // Superkey within the fragment?
      if (Closure(fd.lhs(), local).ContainsAll(frag.attrs)) continue;
      AttrSet y = fd.rhs().Minus(fd.lhs());
      todo.push_back(Fragment{fd.lhs().Union(y)});
      todo.push_back(Fragment{frag.attrs.Minus(y)});
      split = true;
      break;
    }
    if (!split) done.push_back(frag);
  }
  // Drop fragments subsumed by others.
  std::vector<Fragment> out;
  for (const Fragment& f : done) {
    bool subsumed = false;
    for (const Fragment& g : done) {
      if (f.attrs != g.attrs && g.attrs.ContainsAll(f.attrs)) {
        subsumed = true;
        break;
      }
    }
    bool duplicate = false;
    for (const Fragment& g : out) {
      if (g.attrs == f.attrs) {
        duplicate = true;
        break;
      }
    }
    if (!subsumed && !duplicate) out.push_back(f);
  }
  return out;
}

std::vector<Fragment> DecomposeFourthNf(int num_attrs,
                                        const std::vector<Fd>& fds,
                                        const std::vector<Mvd>& mvds) {
  std::vector<Fragment> done;
  std::vector<Fragment> todo{Fragment{AttrSet::Full(num_attrs)}};
  while (!todo.empty()) {
    Fragment frag = todo.back();
    todo.pop_back();
    bool split = false;
    for (const Mvd& mvd : mvds) {
      if (!frag.attrs.ContainsAll(mvd.lhs())) continue;
      AttrSet y = mvd.rhs().Intersect(frag.attrs).Minus(mvd.lhs());
      AttrSet z = frag.attrs.Minus(mvd.lhs()).Minus(y);
      if (y.empty() || z.empty()) continue;  // trivial inside the fragment
      if (IsSuperkey(mvd.lhs(), num_attrs, fds)) continue;
      todo.push_back(Fragment{mvd.lhs().Union(y)});
      todo.push_back(Fragment{frag.attrs.Minus(y)});
      split = true;
      break;
    }
    if (!split) done.push_back(frag);
  }
  // Deduplicate / drop subsumed fragments.
  std::vector<Fragment> out;
  for (const Fragment& f : done) {
    bool subsumed = false;
    for (const Fragment& g : done) {
      if (f.attrs != g.attrs && g.attrs.ContainsAll(f.attrs)) {
        subsumed = true;
        break;
      }
    }
    bool duplicate = false;
    for (const Fragment& g : out) {
      if (g.attrs == f.attrs) duplicate = true;
    }
    if (!subsumed && !duplicate) out.push_back(f);
  }
  return out;
}

}  // namespace famtree
