#ifndef FAMTREE_REASONING_IMPLICATION_H_
#define FAMTREE_REASONING_IMPLICATION_H_

#include <vector>

#include "deps/dc.h"
#include "deps/dd.h"

namespace famtree {

/// Syntactic one-rule DC implication: a DC not(P) implies not(Q) whenever
/// P is a sub-conjunction of Q (any pair satisfying all of Q satisfies all
/// of P, so Q can never be fully satisfied either). This is the subset
/// axiom FASTDC uses for branch pruning [19]; full DC implication is
/// co-NP-hard and out of scope.
bool DcImplies(const Dc& a, const Dc& b);

/// Removes DCs implied by another DC in the set (keeps the strongest,
/// i.e. smallest, predicate sets).
std::vector<Dc> MinimizeDcs(const std::vector<Dc>& dcs);

/// Syntactic one-rule DD implication (Section 3.3.3 [86], the sound
/// subsumption fragment): dd `a` implies dd `b` when
///   - every LHS function of a has a counterpart in b on the same
///     attribute whose range is contained in a's (b's LHS selects fewer
///     pairs), and
///   - every RHS function of b has a counterpart in a whose range is
///     contained in b's (a's RHS promises more).
/// The full DD implication problem is co-NP-complete [86].
bool DdImplies(const Dd& a, const Dd& b);

}  // namespace famtree

#endif  // FAMTREE_REASONING_IMPLICATION_H_
