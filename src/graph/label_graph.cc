#include "graph/label_graph.h"

#include <algorithm>

namespace famtree {

int LabelGraph::AddVertex(std::string label) {
  labels_.push_back(std::move(label));
  adjacency_.emplace_back();
  return static_cast<int>(labels_.size()) - 1;
}

Status LabelGraph::AddEdge(int u, int v) {
  if (u < 0 || v < 0 || u >= num_vertices() || v >= num_vertices()) {
    return Status::Invalid("edge endpoint outside the graph");
  }
  if (u == v) return Status::Invalid("self-loops are not supported");
  for (int w : adjacency_[u]) {
    if (w == v) return Status::AlreadyExists("duplicate edge");
  }
  edges_.push_back({u, v});
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  return Status::OK();
}

void NeighborhoodConstraint::Allow(const std::string& a,
                                   const std::string& b) {
  allowed_.insert({std::min(a, b), std::max(a, b)});
}

bool NeighborhoodConstraint::Allowed(const std::string& a,
                                     const std::string& b) const {
  return allowed_.count({std::min(a, b), std::max(a, b)}) > 0;
}

std::vector<std::pair<int, int>> NeighborhoodConstraint::Violations(
    const LabelGraph& graph) const {
  std::vector<std::pair<int, int>> out;
  for (const auto& [u, v] : graph.edges()) {
    if (!Allowed(graph.label(u), graph.label(v))) out.push_back({u, v});
  }
  return out;
}

Result<GraphRepairResult> RepairLabels(
    const LabelGraph& graph, const NeighborhoodConstraint& nc,
    const std::vector<std::string>& alphabet, int max_changes) {
  if (alphabet.empty()) {
    return Status::Invalid("repair needs a candidate label alphabet");
  }
  GraphRepairResult result;
  result.repaired = graph;
  LabelGraph& g = result.repaired;

  auto incident_violations = [&](int v) {
    int count = 0;
    for (int w : g.neighbors(v)) {
      if (!nc.Allowed(g.label(v), g.label(w))) ++count;
    }
    return count;
  };

  int changes = 0;
  while (changes < max_changes) {
    // Vertices ranked by incident violations; relabel the first one that
    // a candidate label strictly improves (the single worst vertex may be
    // unfixable while its neighbor is the actual culprit).
    std::vector<std::pair<int, int>> ranked;  // (count, vertex)
    for (int v = 0; v < g.num_vertices(); ++v) {
      int count = incident_violations(v);
      if (count > 0) ranked.push_back({count, v});
    }
    if (ranked.empty()) break;  // consistent
    std::sort(ranked.rbegin(), ranked.rend());
    bool applied = false;
    for (const auto& [count, vertex] : ranked) {
      std::string original = g.label(vertex);
      std::string best_label = original;
      int best_count = count;
      for (const std::string& cand : alphabet) {
        if (cand == original) continue;
        g.set_label(vertex, cand);
        int c = incident_violations(vertex);
        if (c < best_count) {
          best_count = c;
          best_label = cand;
        }
      }
      g.set_label(vertex, original);
      if (best_label != original) {
        result.changes.push_back(LabelChange{vertex, original, best_label});
        g.set_label(vertex, best_label);
        ++changes;
        applied = true;
        break;
      }
    }
    if (!applied) break;  // no vertex improves: fixpoint
  }
  result.remaining_violations = static_cast<int>(nc.Violations(g).size());
  return result;
}

}  // namespace famtree
