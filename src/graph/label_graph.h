#ifndef FAMTREE_GRAPH_LABEL_GRAPH_H_
#define FAMTREE_GRAPH_LABEL_GRAPH_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace famtree {

/// A vertex-labeled undirected graph — the Section 5.2 outlook made
/// concrete: graph data (workflow networks, protein interactions) has no
/// relational schema, so constraints attach to the *neighborhood*
/// structure instead ([93], [103]).
class LabelGraph {
 public:
  /// Adds a vertex; returns its id.
  int AddVertex(std::string label);

  /// Adds an undirected edge (self-loops and duplicates rejected).
  Status AddEdge(int u, int v);

  int num_vertices() const { return static_cast<int>(labels_.size()); }
  const std::string& label(int v) const { return labels_[v]; }
  void set_label(int v, std::string label) { labels_[v] = std::move(label); }
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }
  const std::vector<int>& neighbors(int v) const { return adjacency_[v]; }

 private:
  std::vector<std::string> labels_;
  std::vector<std::pair<int, int>> edges_;
  std::vector<std::vector<int>> adjacency_;
};

/// A neighborhood constraint ([93]): the set of label pairs allowed on
/// adjacent vertices (symmetric). An edge whose endpoint labels form a
/// pair outside the set is a violation — e.g. in a workflow graph,
/// "ship" may never neighbor "refund-before-payment".
class NeighborhoodConstraint {
 public:
  /// Allows {a, b} adjacency (order-insensitive; {a, a} permits same-label
  /// neighbors).
  void Allow(const std::string& a, const std::string& b);

  bool Allowed(const std::string& a, const std::string& b) const;

  /// Edges of `graph` whose endpoint labels are not allowed.
  std::vector<std::pair<int, int>> Violations(const LabelGraph& graph) const;

 private:
  std::set<std::pair<std::string, std::string>> allowed_;
};

/// One relabeling performed by the repair.
struct LabelChange {
  int vertex = 0;
  std::string old_label;
  std::string new_label;
};

/// Outcome of a graph repair.
struct GraphRepairResult {
  LabelGraph repaired;
  std::vector<LabelChange> changes;
  int remaining_violations = 0;
};

/// Greedy vertex-label repair under a neighborhood constraint ([93], the
/// vertex-label repair problem, simplified): repeatedly take the vertex
/// incident to the most violating edges and relabel it (candidates =
/// `alphabet`) to the label minimizing its incident violations; stop at a
/// fixpoint or the change budget.
Result<GraphRepairResult> RepairLabels(const LabelGraph& graph,
                                       const NeighborhoodConstraint& nc,
                                       const std::vector<std::string>& alphabet,
                                       int max_changes = 1000);

}  // namespace famtree

#endif  // FAMTREE_GRAPH_LABEL_GRAPH_H_
