#include "metric/code_distance.h"

#include <cmath>
#include <limits>
#include <string>
#include <utility>

namespace famtree {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-code forms for the edit-distance fast path: null flag + string form.
struct EditForms {
  std::vector<uint8_t> is_null;
  std::vector<std::string> text;
};

EditForms BuildEditForms(const EncodedRelation& encoded, int attr) {
  int k = encoded.dict_size(attr);
  EditForms forms;
  forms.is_null.resize(k);
  forms.text.resize(k);
  for (int c = 0; c < k; ++c) {
    const Value& v = encoded.Decode(attr, static_cast<uint32_t>(c));
    forms.is_null[c] = v.is_null() ? 1 : 0;
    if (!v.is_null()) forms.text[c] = v.ToString();
  }
  return forms;
}

}  // namespace

CodeDistanceTable::CodeDistanceTable(const EncodedRelation& encoded, int attr,
                                     MetricPtr metric, ThreadPool* pool,
                                     int64_t max_entries)
    : encoded_(&encoded), attr_(attr), metric_(std::move(metric)) {
  int64_t k = encoded.dict_size(attr);
  int64_t entries = k * (k + 1) / 2;
  if (k == 0 || entries > max_entries) return;
  table_.resize(static_cast<size_t>(entries));
  // Edit distance dominates the string workloads; memoizing the string
  // forms once avoids a ToString allocation pair per entry. The DP itself
  // is the same as EditDistanceMetric::Distance, so entries stay
  // bit-identical to the generic fill below.
  if (metric_->name() == "edit") {
    EditForms forms = BuildEditForms(encoded, attr);
    Status st = ParallelFor(pool, k, [&](int64_t b) {
      size_t base = TriIndex(0, static_cast<uint32_t>(b));
      for (int64_t a = 0; a <= b; ++a) {
        double d;
        if (forms.is_null[a] || forms.is_null[b]) {
          d = (forms.is_null[a] && forms.is_null[b]) ? 0.0 : kInf;
        } else {
          d = LevenshteinDistance(forms.text[a], forms.text[b]);
        }
        table_[base + a] = d;
      }
      return Status::OK();
    });
    (void)st;
    memoized_ = true;
    return;
  }
  // Each iteration fills one row of the triangle; entries are pure
  // functions of their code pair, so parallel fill is deterministic.
  Status st = ParallelFor(pool, k, [&](int64_t b) {
    const Value& vb = encoded_->Decode(attr_, static_cast<uint32_t>(b));
    size_t base = TriIndex(0, static_cast<uint32_t>(b));
    for (int64_t a = 0; a <= b; ++a) {
      table_[base + a] =
          metric_->Distance(encoded_->Decode(attr_, static_cast<uint32_t>(a)),
                            vb);
    }
    return Status::OK();
  });
  // ParallelFor only propagates statuses from the body, which is
  // infallible here.
  (void)st;
  memoized_ = true;
}

CodeBucketTable::CodeBucketTable(const EncodedRelation& encoded, int attr,
                                 MetricPtr metric,
                                 std::vector<double> thresholds,
                                 ThreadPool* pool, int64_t max_entries)
    : encoded_(&encoded),
      attr_(attr),
      metric_(std::move(metric)),
      thresholds_(std::move(thresholds)) {
  int64_t k = encoded.dict_size(attr);
  int64_t entries = k * (k + 1) / 2;
  if (k == 0 || entries > max_entries ||
      thresholds_.size() > 254) {
    return;
  }
  table_.resize(static_cast<size_t>(entries));
  // Edit-distance fast path: distances are non-negative integers, so a
  // banded DP bounded by the largest finite threshold decides every bucket
  // exactly. A bounded result beyond the band means the (always finite)
  // distance exceeds every finite threshold, which lands in the first
  // +inf threshold's bucket if there is one.
  bool edit = metric_->name() == "edit";
  int limit = -1;
  for (double t : thresholds_) {
    if (std::isfinite(t) && t >= 0) {
      limit = std::max(limit, static_cast<int>(std::floor(t)));
    }
  }
  uint8_t overflow = static_cast<uint8_t>(thresholds_.size());
  for (size_t j = 0; j < thresholds_.size(); ++j) {
    if (thresholds_[j] == kInf) {
      overflow = static_cast<uint8_t>(j);
      break;
    }
  }
  if (edit && limit <= 64) {
    EditForms forms = BuildEditForms(encoded, attr);
    Status st = ParallelFor(pool, k, [&](int64_t b) {
      size_t base = TriIndex(0, static_cast<uint32_t>(b));
      for (int64_t a = 0; a <= b; ++a) {
        uint8_t bucket;
        if (forms.is_null[a] || forms.is_null[b]) {
          bucket = BucketOf((forms.is_null[a] && forms.is_null[b]) ? 0.0
                                                                   : kInf);
        } else {
          int d = LevenshteinDistanceBounded(forms.text[a], forms.text[b],
                                             limit);
          bucket = d <= limit ? BucketOf(d) : overflow;
        }
        table_[base + a] = bucket;
      }
      return Status::OK();
    });
    (void)st;
    memoized_ = true;
    return;
  }
  Status st = ParallelFor(pool, k, [&](int64_t b) {
    const Value& vb = encoded_->Decode(attr_, static_cast<uint32_t>(b));
    size_t base = TriIndex(0, static_cast<uint32_t>(b));
    for (int64_t a = 0; a <= b; ++a) {
      table_[base + a] = BucketOf(metric_->Distance(
          encoded_->Decode(attr_, static_cast<uint32_t>(a)), vb));
    }
    return Status::OK();
  });
  (void)st;
  memoized_ = true;
}

}  // namespace famtree
