#include "metric/code_distance.h"

namespace famtree {

CodeDistanceTable::CodeDistanceTable(const EncodedRelation& encoded, int attr,
                                     MetricPtr metric, ThreadPool* pool,
                                     int64_t max_entries)
    : encoded_(&encoded), attr_(attr), metric_(std::move(metric)) {
  int64_t k = encoded.dict_size(attr);
  int64_t entries = k * (k + 1) / 2;
  if (k == 0 || entries > max_entries) return;
  table_.resize(static_cast<size_t>(entries));
  // Each iteration fills one row of the triangle; entries are pure
  // functions of their code pair, so parallel fill is deterministic.
  Status st = ParallelFor(pool, k, [&](int64_t b) {
    const Value& vb = encoded_->Decode(attr_, static_cast<uint32_t>(b));
    size_t base = TriIndex(0, static_cast<uint32_t>(b));
    for (int64_t a = 0; a <= b; ++a) {
      table_[base + a] =
          metric_->Distance(encoded_->Decode(attr_, static_cast<uint32_t>(a)),
                            vb);
    }
    return Status::OK();
  });
  // ParallelFor only propagates statuses from the body, which is
  // infallible here.
  (void)st;
  memoized_ = true;
}

}  // namespace famtree
