#ifndef FAMTREE_METRIC_FUZZY_H_
#define FAMTREE_METRIC_FUZZY_H_

#include <functional>
#include <memory>
#include <string>

#include "relation/value.h"

namespace famtree {

/// A fuzzy resemblance relation EQUAL in the sense of FFDs (Section 3.6):
/// mu_EQ(a, b) in [0, 1], 1 meaning "fully equal". Must be reflexive
/// (mu(a,a) == 1) and symmetric.
class Resemblance {
 public:
  virtual ~Resemblance() = default;
  virtual double Equal(const Value& a, const Value& b) const = 0;
  virtual std::string name() const = 0;
};

using ResemblancePtr = std::shared_ptr<const Resemblance>;

/// Crisp equality: 1 if a == b else 0. With this resemblance an FFD
/// degenerates to a classical FD — the family-tree edge FD -> FFD.
class CrispResemblance : public Resemblance {
 public:
  double Equal(const Value& a, const Value& b) const override;
  std::string name() const override { return "crisp"; }
};

/// The paper's Section 3.6.1 recipe: mu(a,b) = 1 / (1 + beta * |a - b|)
/// on numeric values; crisp on everything else.
class ReciprocalResemblance : public Resemblance {
 public:
  explicit ReciprocalResemblance(double beta) : beta_(beta) {}
  double Equal(const Value& a, const Value& b) const override;
  std::string name() const override;

 private:
  double beta_;
};

/// mu(a,b) = max(0, 1 - edit(a,b)/scale) on string forms.
class EditResemblance : public Resemblance {
 public:
  explicit EditResemblance(double scale) : scale_(scale) {}
  double Equal(const Value& a, const Value& b) const override;
  std::string name() const override;

 private:
  double scale_;
};

ResemblancePtr GetCrispResemblance();
ResemblancePtr MakeReciprocalResemblance(double beta);
ResemblancePtr MakeEditResemblance(double scale);

}  // namespace famtree

#endif  // FAMTREE_METRIC_FUZZY_H_
