#include "metric/fuzzy.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "metric/metric.h"

namespace famtree {

double CrispResemblance::Equal(const Value& a, const Value& b) const {
  return a == b ? 1.0 : 0.0;
}

double ReciprocalResemblance::Equal(const Value& a, const Value& b) const {
  if (a.is_numeric() && b.is_numeric()) {
    return 1.0 / (1.0 + beta_ * std::fabs(a.AsNumeric() - b.AsNumeric()));
  }
  return a == b ? 1.0 : 0.0;
}

std::string ReciprocalResemblance::name() const {
  return "reciprocal(beta=" + FormatDouble(beta_) + ")";
}

double EditResemblance::Equal(const Value& a, const Value& b) const {
  if (a.is_null() || b.is_null()) {
    return (a.is_null() && b.is_null()) ? 1.0 : 0.0;
  }
  double d = LevenshteinDistance(a.ToString(), b.ToString());
  return std::max(0.0, 1.0 - d / scale_);
}

std::string EditResemblance::name() const {
  return "edit(scale=" + FormatDouble(scale_) + ")";
}

ResemblancePtr GetCrispResemblance() {
  static const ResemblancePtr& r = *new ResemblancePtr(new CrispResemblance());
  return r;
}

ResemblancePtr MakeReciprocalResemblance(double beta) {
  return ResemblancePtr(new ReciprocalResemblance(beta));
}

ResemblancePtr MakeEditResemblance(double scale) {
  return ResemblancePtr(new EditResemblance(scale));
}

}  // namespace famtree
