#ifndef FAMTREE_METRIC_METRIC_H_
#define FAMTREE_METRIC_METRIC_H_

#include <memory>
#include <string>

#include "relation/value.h"

namespace famtree {

/// A distance metric on attribute values, as required by the heterogeneous
/// data dependencies of Section 3 (MFDs, NEDs, DDs, CDs, PACs, MDs). A
/// metric must satisfy non-negativity, identity of indiscernibles and
/// symmetry (the paper does not require the triangle inequality, and
/// e.g. the discrete metric composed with value normalization may not
/// satisfy it); the property tests in tests/metric_test.cc check the axioms.
class Metric {
 public:
  virtual ~Metric() = default;

  /// Distance between two values. Nulls are at infinite distance from
  /// everything except another null (distance 0), mirroring SQL-style
  /// missing data semantics used by the imputation application.
  virtual double Distance(const Value& a, const Value& b) const = 0;

  virtual std::string name() const = 0;
};

using MetricPtr = std::shared_ptr<const Metric>;

/// Levenshtein edit distance on the string forms of the values.
/// The paper's running examples on heterogeneous data (Section 3) all use
/// edit distance [74].
class EditDistanceMetric : public Metric {
 public:
  double Distance(const Value& a, const Value& b) const override;
  std::string name() const override { return "edit"; }
};

/// |a - b| on numeric values; strings are at distance 0 when equal and
/// +inf otherwise (so the metric is total on mixed columns).
class AbsDiffMetric : public Metric {
 public:
  double Distance(const Value& a, const Value& b) const override;
  std::string name() const override { return "absdiff"; }
};

/// Discrete (identity) metric: 0 when equal, 1 otherwise. Embeds equality
/// dependencies into the metric framework — this is exactly how FDs become
/// special MFDs/DDs in the family tree.
class DiscreteMetric : public Metric {
 public:
  double Distance(const Value& a, const Value& b) const override;
  std::string name() const override { return "discrete"; }
};

/// Jaccard distance (1 - Jaccard similarity) over the q-gram multisets of
/// the string forms. Useful for token-level heterogeneity where edit
/// distance over-penalizes reordering.
class JaccardQGramMetric : public Metric {
 public:
  explicit JaccardQGramMetric(int q = 2) : q_(q) {}
  double Distance(const Value& a, const Value& b) const override;
  std::string name() const override {
    return "jaccard" + std::to_string(q_) + "gram";
  }

 private:
  int q_;
};

/// Raw Levenshtein distance between two strings.
int LevenshteinDistance(const std::string& a, const std::string& b);

/// Banded Levenshtein (Ukkonen): returns the exact distance when it is
/// <= limit, and any value > limit otherwise. With a small limit this is
/// O(max(n,m) * limit) instead of O(n*m) — the bucket tables use it when a
/// consumer only needs to know which threshold band a distance falls in.
int LevenshteinDistanceBounded(const std::string& a, const std::string& b,
                               int limit);

/// Shared default instances (metrics are stateless).
MetricPtr GetEditDistanceMetric();
MetricPtr GetAbsDiffMetric();
MetricPtr GetDiscreteMetric();
MetricPtr GetJaccardQGramMetric(int q = 2);

/// Picks a sensible default metric for a column type: absolute difference
/// for numerics, edit distance for strings, discrete otherwise.
MetricPtr DefaultMetricFor(ValueType type);

}  // namespace famtree

#endif  // FAMTREE_METRIC_METRIC_H_
