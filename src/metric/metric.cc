#include "metric/metric.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

namespace famtree {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Nulls: distance 0 to null, +inf to anything else. Returns true when the
/// null rule applies and sets *out.
bool NullRule(const Value& a, const Value& b, double* out) {
  if (a.is_null() || b.is_null()) {
    *out = (a.is_null() && b.is_null()) ? 0.0 : kInf;
    return true;
  }
  return false;
}
}  // namespace

int LevenshteinDistance(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);
  std::vector<int> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      int cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

int LevenshteinDistanceBounded(const std::string& a, const std::string& b,
                               int limit) {
  const int n = static_cast<int>(a.size()), m = static_cast<int>(b.size());
  if (limit < 0) return 1;  // anything positive is "> limit"
  if ((n > m ? n - m : m - n) > limit) return limit + 1;
  if (n == 0) return m;
  if (m == 0) return n;
  // One DP row, restricted to the diagonal band [j-limit, j+limit]; cells
  // outside the band can never reach a distance <= limit.
  const int kBig = limit + 1;
  std::vector<int> prev(m + 1, kBig), cur(m + 1, kBig);
  for (int j = 0; j <= std::min(m, limit); ++j) prev[j] = j;
  for (int i = 1; i <= n; ++i) {
    int lo = std::max(1, i - limit), hi = std::min(m, i + limit);
    cur[lo - 1] = (i - (lo - 1) <= limit && lo == 1) ? i : kBig;
    int best = cur[lo - 1];
    for (int j = lo; j <= hi; ++j) {
      int cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      int d = prev[j - 1] + cost;
      if (prev[j] + 1 < d) d = prev[j] + 1;
      if (cur[j - 1] + 1 < d) d = cur[j - 1] + 1;
      cur[j] = d > kBig ? kBig : d;
      if (cur[j] < best) best = cur[j];
    }
    if (best > limit) return limit + 1;  // band exhausted: early abandon
    if (hi < m) cur[hi + 1] = kBig;
    std::swap(prev, cur);
  }
  return prev[m];
}

double EditDistanceMetric::Distance(const Value& a, const Value& b) const {
  double nd;
  if (NullRule(a, b, &nd)) return nd;
  return LevenshteinDistance(a.ToString(), b.ToString());
}

double AbsDiffMetric::Distance(const Value& a, const Value& b) const {
  double nd;
  if (NullRule(a, b, &nd)) return nd;
  if (a.is_numeric() && b.is_numeric()) {
    return std::fabs(a.AsNumeric() - b.AsNumeric());
  }
  return a == b ? 0.0 : kInf;
}

double DiscreteMetric::Distance(const Value& a, const Value& b) const {
  double nd;
  if (NullRule(a, b, &nd)) return nd == 0.0 ? 0.0 : 1.0;
  return a == b ? 0.0 : 1.0;
}

double JaccardQGramMetric::Distance(const Value& a, const Value& b) const {
  double nd;
  if (NullRule(a, b, &nd)) return nd == 0.0 ? 0.0 : 1.0;
  std::string sa = a.ToString(), sb = b.ToString();
  if (sa == sb) return 0.0;
  auto grams = [this](const std::string& s) {
    std::map<std::string, int> g;
    if (static_cast<int>(s.size()) < q_) {
      if (!s.empty()) g[s] = 1;
      return g;
    }
    for (size_t i = 0; i + q_ <= s.size(); ++i) ++g[s.substr(i, q_)];
    return g;
  };
  std::map<std::string, int> ga = grams(sa), gb = grams(sb);
  int inter = 0, uni = 0;
  auto ia = ga.begin();
  auto ib = gb.begin();
  while (ia != ga.end() && ib != gb.end()) {
    if (ia->first == ib->first) {
      inter += std::min(ia->second, ib->second);
      uni += std::max(ia->second, ib->second);
      ++ia;
      ++ib;
    } else if (ia->first < ib->first) {
      uni += ia->second;
      ++ia;
    } else {
      uni += ib->second;
      ++ib;
    }
  }
  for (; ia != ga.end(); ++ia) uni += ia->second;
  for (; ib != gb.end(); ++ib) uni += ib->second;
  if (uni == 0) return 0.0;
  return 1.0 - static_cast<double>(inter) / uni;
}

MetricPtr GetEditDistanceMetric() {
  static const MetricPtr& m = *new MetricPtr(new EditDistanceMetric());
  return m;
}

MetricPtr GetAbsDiffMetric() {
  static const MetricPtr& m = *new MetricPtr(new AbsDiffMetric());
  return m;
}

MetricPtr GetDiscreteMetric() {
  static const MetricPtr& m = *new MetricPtr(new DiscreteMetric());
  return m;
}

MetricPtr GetJaccardQGramMetric(int q) {
  return MetricPtr(new JaccardQGramMetric(q));
}

MetricPtr DefaultMetricFor(ValueType type) {
  switch (type) {
    case ValueType::kInt:
    case ValueType::kDouble:
      return GetAbsDiffMetric();
    case ValueType::kString:
      return GetEditDistanceMetric();
    case ValueType::kNull:
      return GetDiscreteMetric();
  }
  return GetDiscreteMetric();
}

}  // namespace famtree
