#ifndef FAMTREE_METRIC_CODE_DISTANCE_H_
#define FAMTREE_METRIC_CODE_DISTANCE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "metric/metric.h"
#include "relation/encoded_relation.h"

namespace famtree {

/// Memoized metric distances over one column's dictionary codes.
///
/// The pairwise miners (DD, MD, NED, MFD) evaluate the same metric on the
/// same value pairs over and over — once per candidate dependency per row
/// pair. Because the encoded backend guarantees code equality ⇔ value
/// equality, every distance is a pure function of the (code, code) pair, so
/// a k×k table (k = dictionary size) computed once replaces millions of
/// Levenshtein calls with array lookups. Distances are stored as the exact
/// doubles the metric returned, so encoded results stay bit-identical to
/// the Value-path oracle.
///
/// The table is eagerly filled (optionally in parallel — entries are pure,
/// so the fill order cannot affect the result). When the triangular size
/// k*(k+1)/2 exceeds `max_entries` the table is skipped and Distance()
/// falls back to calling the metric directly on the decoded values.
class CodeDistanceTable {
 public:
  static constexpr int64_t kDefaultMaxEntries = int64_t{1} << 23;

  /// The encoding (and the metric) must outlive the table.
  CodeDistanceTable(const EncodedRelation& encoded, int attr, MetricPtr metric,
                    ThreadPool* pool = nullptr,
                    int64_t max_entries = kDefaultMaxEntries);

  /// Distance between the values behind two codes of this column; equal to
  /// metric->Distance(Decode(attr, a), Decode(attr, b)) bit for bit.
  double Distance(uint32_t a, uint32_t b) const {
    if (memoized_) {
      if (a > b) std::swap(a, b);
      return table_[TriIndex(a, b)];
    }
    return metric_->Distance(encoded_->Decode(attr_, a),
                             encoded_->Decode(attr_, b));
  }

  /// Row-level convenience: distance between two rows' values in this
  /// column.
  double RowDistance(int row_a, int row_b) const {
    return Distance(encoded_->code(row_a, attr_),
                    encoded_->code(row_b, attr_));
  }

  bool memoized() const { return memoized_; }
  int attr() const { return attr_; }
  const Metric& metric() const { return *metric_; }

 private:
  // Upper-triangle index for a <= b (symmetry halves the storage).
  static size_t TriIndex(uint32_t a, uint32_t b) {
    return static_cast<size_t>(b) * (b + 1) / 2 + a;
  }

  const EncodedRelation* encoded_;
  int attr_;
  MetricPtr metric_;
  bool memoized_ = false;
  std::vector<double> table_;
};

/// Memoized threshold-bucket indices over one column's dictionary codes.
///
/// Consumers that only test `distance <= threshold` (MD/NED similarity
/// predicates, dedup rules, the evidence kernel's distance-bucket facets)
/// never need the distance itself — only which band of a sorted threshold
/// list it falls in. Storing one byte per code pair instead of a double
/// quarters the footprint, and for edit distance the fill runs the banded
/// Levenshtein bounded by the largest threshold, which is several times
/// cheaper than the full DP on long strings.
///
/// Bucket(a, b) returns the smallest index j with distance <= thresholds[j],
/// or thresholds.size() when the distance (finite or not) exceeds every
/// threshold. The comparisons use the exact doubles the metric would
/// return, so buckets are bit-identical to the Value-path oracle's
/// threshold tests.
class CodeBucketTable {
 public:
  /// `thresholds` must be sorted ascending; at most 254 thresholds.
  /// The encoding (and the metric) must outlive the table.
  CodeBucketTable(const EncodedRelation& encoded, int attr, MetricPtr metric,
                  std::vector<double> thresholds, ThreadPool* pool = nullptr,
                  int64_t max_entries = CodeDistanceTable::kDefaultMaxEntries);

  uint8_t Bucket(uint32_t a, uint32_t b) const {
    if (memoized_) {
      if (a > b) std::swap(a, b);
      return table_[TriIndex(a, b)];
    }
    return BucketOf(metric_->Distance(encoded_->Decode(attr_, a),
                                      encoded_->Decode(attr_, b)));
  }

  uint8_t RowBucket(int row_a, int row_b) const {
    return Bucket(encoded_->code(row_a, attr_), encoded_->code(row_b, attr_));
  }

  /// Band of one raw distance under this table's thresholds.
  uint8_t BucketOf(double d) const {
    uint8_t j = 0;
    for (double t : thresholds_) {
      if (d <= t) return j;
      ++j;
    }
    return j;
  }

  int num_thresholds() const { return static_cast<int>(thresholds_.size()); }
  bool memoized() const { return memoized_; }
  size_t footprint_bytes() const { return table_.capacity(); }

 private:
  static size_t TriIndex(uint32_t a, uint32_t b) {
    return static_cast<size_t>(b) * (b + 1) / 2 + a;
  }

  const EncodedRelation* encoded_;
  int attr_;
  MetricPtr metric_;
  std::vector<double> thresholds_;
  bool memoized_ = false;
  std::vector<uint8_t> table_;
};

}  // namespace famtree

#endif  // FAMTREE_METRIC_CODE_DISTANCE_H_
