#ifndef FAMTREE_GEN_ARMSTRONG_H_
#define FAMTREE_GEN_ARMSTRONG_H_

#include <vector>

#include "common/status.h"
#include "deps/fd.h"
#include "relation/relation.h"

namespace famtree {

/// Builds an Armstrong relation for `fds` over `num_attrs` attributes
/// ([5], Section 1.4.2): an instance that satisfies an FD X -> Y *iff*
/// the FD is implied by `fds`. Construction: one base row, plus one row
/// per closed attribute set C (C = C+ under fds), agreeing with the base
/// row exactly on C and holding globally fresh values elsewhere.
///
/// Closed sets are enumerated as closures of all attribute subsets —
/// exponential in num_attrs (Armstrong relations can be exponentially
/// large [5]); capped at 20 attributes.
///
/// Armstrong relations are the sharpest possible test input for FD
/// discovery: an algorithm is exactly correct iff it returns the minimal
/// cover of `fds` on this instance.
Result<Relation> BuildArmstrongRelation(int num_attrs,
                                        const std::vector<Fd>& fds);

}  // namespace famtree

#endif  // FAMTREE_GEN_ARMSTRONG_H_
