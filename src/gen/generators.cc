#include "gen/generators.h"

#include <algorithm>
#include <string>

#include "common/rng.h"

namespace famtree {

namespace {

/// Pronounceable pseudo-word for names/streets, deterministic in rng.
std::string MakeWord(Rng& rng, int syllables) {
  static const char* kOnsets[] = {"b",  "ch", "d",  "f", "g",  "h",
                                  "j",  "k",  "l",  "m", "n",  "p",
                                  "r",  "s",  "st", "t", "tr", "w"};
  static const char* kVowels[] = {"a", "e", "i", "o", "u", "ay", "ee", "oo"};
  std::string word;
  for (int s = 0; s < syllables; ++s) {
    word += kOnsets[rng.Uniform(0, 17)];
    word += kVowels[rng.Uniform(0, 7)];
  }
  if (!word.empty()) word[0] = static_cast<char>(word[0] - 'a' + 'A');
  return word;
}

/// One random character edit (substitute, delete or insert).
std::string ApplyTypo(Rng& rng, const std::string& s) {
  if (s.empty()) return s;
  std::string out = s;
  int pos = static_cast<int>(rng.Uniform(0, static_cast<int>(s.size()) - 1));
  char c = static_cast<char>('a' + rng.Uniform(0, 25));
  switch (rng.Uniform(0, 2)) {
    case 0: out[pos] = c; break;
    case 1: out.erase(out.begin() + pos); break;
    default: out.insert(out.begin() + pos, c); break;
  }
  return out;
}

}  // namespace

GeneratedData GenerateCategorical(const CategoricalConfig& config) {
  Rng rng(config.seed);
  GeneratedData data;
  int chain = std::max(2, config.chain_length);
  std::vector<std::string> names;
  for (int i = 0; i < chain; ++i) names.push_back("a" + std::to_string(i));
  for (int i = 0; i < config.noise_attrs; ++i) {
    names.push_back("n" + std::to_string(i));
  }
  RelationBuilder builder(names);

  // Chain link i maps dom(A_{i-1}) onto a domain of half the size, so
  // A_{i-1} -> A_i holds and transitively A_0 determines everything.
  std::vector<int> domain_sizes(chain);
  domain_sizes[0] = std::max(1, config.head_domain);
  for (int i = 1; i < chain; ++i) {
    domain_sizes[i] = std::max(1, domain_sizes[i - 1] / 2);
  }
  std::vector<std::vector<int>> link(chain);  // link[i][v_{i-1}] = v_i
  for (int i = 1; i < chain; ++i) {
    link[i].resize(domain_sizes[i - 1]);
    for (int v = 0; v < domain_sizes[i - 1]; ++v) {
      // Surjective by construction for v < domain_sizes[i].
      link[i][v] = v < domain_sizes[i]
                       ? v
                       : static_cast<int>(rng.Uniform(0, domain_sizes[i] - 1));
    }
  }

  std::vector<std::vector<Value>> rows;
  rows.reserve(config.num_rows);
  for (int r = 0; r < config.num_rows; ++r) {
    std::vector<Value> row;
    int v = config.zipf_theta > 0
                ? static_cast<int>(rng.Zipf(domain_sizes[0],
                                            config.zipf_theta))
                : static_cast<int>(rng.Uniform(0, domain_sizes[0] - 1));
    row.push_back(Value("v" + std::to_string(v)));
    for (int i = 1; i < chain; ++i) {
      v = link[i][v];
      row.push_back(Value("w" + std::to_string(i) + "_" + std::to_string(v)));
    }
    for (int i = 0; i < config.noise_attrs; ++i) {
      row.push_back(Value(rng.Uniform(0, 9)));
    }
    rows.push_back(std::move(row));
  }
  // Corrupt dependent cells.
  for (int r = 0; r < config.num_rows; ++r) {
    if (!rng.Bernoulli(config.error_rate)) continue;
    int col = chain >= 2 ? static_cast<int>(rng.Uniform(1, chain - 1)) : 1;
    Value original = rows[r][col];
    rows[r][col] =
        Value("bad" + std::to_string(rng.Uniform(0, 1 << 20)));
    data.errors.push_back(PlantedError{r, col, std::move(original)});
  }
  for (auto& row : rows) builder.AddRow(std::move(row));
  data.relation = std::move(builder.Build()).value();
  return data;
}

GeneratedData GenerateHeterogeneous(const HeterogeneousConfig& config) {
  Rng rng(config.seed);
  GeneratedData data;
  RelationBuilder builder(
      {"source", "name", "street", "city", "zip", "price"});

  static const char* kStates[] = {"CA", "NY", "TX", "IL", "MA", "WA"};
  struct Entity {
    std::string name, street, city, state;
    int zip, price;
  };
  std::vector<Entity> entities;
  for (int e = 0; e < config.num_entities; ++e) {
    Entity ent;
    ent.name = MakeWord(rng, 2) + " Hotel";
    ent.street = std::to_string(rng.Uniform(1, 99)) + " " + MakeWord(rng, 2) +
                 " Street";
    ent.city = MakeWord(rng, 2);
    ent.state = kStates[rng.Uniform(0, 5)];
    ent.zip = static_cast<int>(rng.Uniform(10000, 99999));
    ent.price = static_cast<int>(rng.Uniform(80, 600));
    entities.push_back(std::move(ent));
  }

  int row = 0;
  for (int e = 0; e < config.num_entities; ++e) {
    const Entity& ent = entities[e];
    int copies = static_cast<int>(rng.Uniform(1, config.max_duplicates));
    for (int c = 0; c < copies; ++c) {
      std::string name = ent.name;
      std::string street = ent.street;
      std::string city = ent.city;
      if (c > 0 && rng.Bernoulli(config.variation_rate)) {
        // Alternative formats, mirroring "Chicago" vs "Chicago, IL" and
        // "12th St." vs "12th Str".
        if (rng.Bernoulli(0.5)) {
          size_t pos = street.rfind(" Street");
          if (pos != std::string::npos) street = street.substr(0, pos) + " St.";
        }
        if (rng.Bernoulli(0.5)) city += ", " + ent.state;
        if (rng.Bernoulli(0.3)) {
          size_t pos = name.rfind(" Hotel");
          if (pos != std::string::npos) name = name.substr(0, pos);
        }
      }
      std::vector<Value> vals = {
          Value(c % 2 == 0 ? "s1" : "s2"), Value(name), Value(street),
          Value(city), Value(static_cast<int64_t>(ent.zip)),
          Value(static_cast<int64_t>(ent.price))};
      // Typos are planted errors.
      for (int col : {1, 2, 3}) {
        if (rng.Bernoulli(config.typo_rate)) {
          Value original = vals[col];
          vals[col] = Value(ApplyTypo(rng, vals[col].as_string()));
          data.errors.push_back(PlantedError{row, col, std::move(original)});
        }
      }
      builder.AddRow(std::move(vals));
      data.entity_ids.push_back(e);
      ++row;
    }
  }
  data.relation = std::move(builder.Build()).value();
  return data;
}

GeneratedData GenerateNumerical(const NumericalConfig& config) {
  Rng rng(config.seed);
  GeneratedData data;
  RelationBuilder builder({"nights", "avg/night", "subtotal", "taxes"});
  std::vector<std::vector<Value>> rows;
  for (int r = 0; r < config.num_rows; ++r) {
    int nights = static_cast<int>(rng.Uniform(1, config.max_nights));
    double rate = config.base_rate - config.discount_per_night * nights;
    if (config.noise_stddev > 0) {
      // Bound the noise so the declining-rate OD keeps holding.
      double noise = rng.Normal(0.0, config.noise_stddev);
      noise = std::clamp(noise, -config.discount_per_night / 2.01,
                         config.discount_per_night / 2.01);
      rate += noise;
    }
    double subtotal = nights * rate;
    double taxes = 0.2 * subtotal;
    rows.push_back({Value(nights), Value(rate), Value(subtotal),
                    Value(taxes)});
  }
  for (int r = 0; r < config.num_rows; ++r) {
    if (!rng.Bernoulli(config.outlier_rate)) continue;
    Value original = rows[r][1];
    // An order-breaking surge rate.
    rows[r][1] = Value(config.base_rate * 3 + rng.NextDouble() * 100);
    rows[r][2] = Value(rows[r][0].as_int() * rows[r][1].as_double());
    rows[r][3] = Value(0.2 * rows[r][2].as_double());
    data.errors.push_back(PlantedError{r, 1, std::move(original)});
  }
  for (auto& row : rows) builder.AddRow(std::move(row));
  data.relation = std::move(builder.Build()).value();
  return data;
}

GeneratedData GenerateHotels(const HotelConfig& config) {
  Rng rng(config.seed);
  GeneratedData data;
  RelationBuilder builder({"name", "address", "region", "star", "price"});
  static const char* kStates[] = {"CA", "NY", "TX", "IL", "MA", "WA"};
  int row = 0;
  for (int h = 0; h < config.num_hotels; ++h) {
    std::string name = MakeWord(rng, 2) + " Hotel";
    std::string address = "No." + std::to_string(rng.Uniform(1, 99)) + ", " +
                          MakeWord(rng, 2) + " Park";
    std::string region = MakeWord(rng, 2);
    std::string state = kStates[rng.Uniform(0, 5)];
    int star = static_cast<int>(rng.Uniform(1, 5));
    int price = star * 100 + static_cast<int>(rng.Uniform(0, 99));
    for (int c = 0; c < config.rows_per_hotel; ++c) {
      std::string r_region = region;
      std::string r_name = name;
      if (c > 0 && rng.Bernoulli(config.variation_rate)) {
        r_region += ", " + state;  // format variation, not an error
      }
      if (c > 0 && rng.Bernoulli(0.4)) {
        size_t pos = r_name.rfind(" Hotel");
        if (pos != std::string::npos) r_name = r_name.substr(0, pos);
      }
      std::vector<Value> vals = {Value(r_name), Value(address),
                                 Value(r_region), Value(star), Value(price)};
      if (rng.Bernoulli(config.error_rate)) {
        Value original = vals[2];
        vals[2] = Value(MakeWord(rng, 2));  // a genuinely wrong region
        data.errors.push_back(PlantedError{row, 2, std::move(original)});
      }
      builder.AddRow(std::move(vals));
      data.entity_ids.push_back(h);
      ++row;
    }
  }
  data.relation = std::move(builder.Build()).value();
  return data;
}

}  // namespace famtree
