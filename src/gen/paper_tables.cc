#include "gen/paper_tables.h"

namespace famtree {
namespace paper {

namespace {
Value S(const char* s) { return Value(s); }
Value I(int v) { return Value(v); }
}  // namespace

Relation R1() {
  RelationBuilder b({"name", "address", "region", "star", "price"});
  b.AddRow({S("New Center"), S("No.5, Central Park"), S("New York"), I(3),
            I(299)});
  b.AddRow({S("New Center Hotel"), S("No.5, Central Park"), S("New York"),
            I(3), I(299)});
  b.AddRow({S("St. Regis Hotel"), S("#3, West Lake Rd."), S("Boston"), I(3),
            I(319)});
  b.AddRow({S("St. Regis"), S("#3, West Lake Rd."), S("Chicago, MA"), I(3),
            I(319)});
  b.AddRow({S("West Wood Hotel"), S("Fifth Avenue, 61st Street"),
            S("Chicago"), I(4), I(499)});
  b.AddRow({S("West Wood"), S("Fifth Avenue, 61st Street"), S("Chicago, IL"),
            I(4), I(499)});
  b.AddRow({S("Christina Hotel"), S("No.7, West Lake Rd."), S("Boston, MA"),
            I(5), I(599)});
  b.AddRow({S("Christina"), S("#7, West Lake Rd."), S("San Francisco"), I(5),
            I(0)});
  return std::move(b.Build()).value();
}

Relation R5() {
  RelationBuilder b({"name", "address", "region", "rate"});
  b.AddRow({S("Hyatt"), S("175 North Jackson Street"), S("Jackson"), I(230)});
  b.AddRow({S("Hyatt"), S("175 North Jackson Street"), S("Jackson"), I(250)});
  b.AddRow({S("Hyatt"), S("6030 Gateway Boulevard E"), S("El Paso"), I(189)});
  b.AddRow(
      {S("Hyatt"), S("6030 Gateway Boulevard E"), S("El Paso, TX"), I(189)});
  return std::move(b.Build()).value();
}

Relation R6() {
  RelationBuilder b({"source", "name", "street", "address", "region", "zip",
                     "price", "tax"});
  b.AddRow({S("s1"), S("NC"), S("CPark"), S("#5, Central Park"),
            S("New York"), I(10041), I(299), I(29)});
  b.AddRow({S("s2"), S("NC"), S("12th St."), S("#2 Ave, 12th St."),
            S("San Jose"), I(95102), I(300), I(20)});
  b.AddRow({S("s1"), S("Regis"), S("CPark"), S("#9, Central Park"),
            S("New York"), I(10041), I(319), I(31)});
  b.AddRow({S("s2"), S("Chris"), S("61st St."), S("#5 Ave, 61st St."),
            S("Chicago"), I(60601), I(499), I(49)});
  b.AddRow({S("s2"), S("WD"), S("12th St."), S("#6 Ave, 12th St."),
            S("San Jose"), I(95102), I(399), I(27)});
  b.AddRow({S("s1"), S("NC"), S("12th Str"), S("#2 Aven, 12th St."),
            S("San Jose"), I(95102), I(300), I(20)});
  return std::move(b.Build()).value();
}

Relation R7() {
  RelationBuilder b({"nights", "avg/night", "subtotal", "taxes"});
  b.AddRow({I(1), I(190), I(190), I(38)});
  b.AddRow({I(2), I(185), I(370), I(74)});
  b.AddRow({I(3), I(180), I(540), I(108)});
  b.AddRow({I(4), I(175), I(700), I(140)});
  return std::move(b.Build()).value();
}

Relation DataspaceExample() {
  RelationBuilder b({"name", "region", "city", "addr", "post"});
  b.AddRow({S("Alice"), S("Petersburg"), Value::Null(), S("#7 T Avenue"),
            Value::Null()});
  b.AddRow({S("Alice"), Value::Null(), S("St Petersburg"), Value::Null(),
            S("#7 T Avenue")});
  b.AddRow({S("Alex"), S("St Petersburg"), Value::Null(), Value::Null(),
            S("No 7 T Ave")});
  return std::move(b.Build()).value();
}

}  // namespace paper
}  // namespace famtree
