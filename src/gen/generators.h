#ifndef FAMTREE_GEN_GENERATORS_H_
#define FAMTREE_GEN_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "relation/relation.h"

namespace famtree {

/// A cell corrupted by a generator, with its clean value — the ground
/// truth that precision/recall experiments and repair benchmarks score
/// against.
struct PlantedError {
  int row = 0;
  int col = 0;
  Value original;
};

/// Output of every generator: the (possibly dirtied) relation, the planted
/// cell errors, and — for the heterogeneous generator — per-row entity ids
/// for deduplication ground truth.
struct GeneratedData {
  Relation relation;
  std::vector<PlantedError> errors;
  std::vector<int> entity_ids;
};

/// Categorical workload: a chain of planted FDs A0 -> A1 -> ... -> Ad
/// realized by composing surjections over shrinking domains, plus
/// independent noise attributes. With error_rate > 0, dependent cells are
/// corrupted (breaking the FDs for those rows), which turns exact FDs into
/// AFDs/PFDs/SFDs with measurable strength — the Section 2 workload.
struct CategoricalConfig {
  int num_rows = 1000;
  /// Number of attributes in the FD chain, including the head (>= 2).
  int chain_length = 4;
  /// Independent random attributes appended after the chain.
  int noise_attrs = 1;
  /// Distinct values of the chain head A0.
  int head_domain = 100;
  /// Fraction of rows whose chain cells get corrupted.
  double error_rate = 0.0;
  /// Zipf skew for head values (0 = uniform).
  double zipf_theta = 0.0;
  uint64_t seed = 42;
};
GeneratedData GenerateCategorical(const CategoricalConfig& config);

/// Heterogeneous workload: hotel-like entities rendered multiple times with
/// format variation (abbreviations, ", ST" region suffixes, typos) — the
/// Section 3 workload. entity_ids holds the dedup ground truth; errors
/// lists typo cells.
struct HeterogeneousConfig {
  int num_entities = 200;
  /// Each entity appears 1..max_duplicates times.
  int max_duplicates = 3;
  /// Probability a duplicate renders with an alternative format.
  double variation_rate = 0.5;
  /// Probability of a random one-edit typo in a string cell.
  double typo_rate = 0.05;
  uint64_t seed = 42;
};
GeneratedData GenerateHeterogeneous(const HeterogeneousConfig& config);

/// Numerical workload mirroring Table 7: per-row nights in [1, max_nights],
/// a declining avg/night rate, subtotal = nights * avg, taxes = 20% — so
/// the paper's OFDs/ODs/DCs/SDs hold by construction. outlier_rate breaks
/// monotonicity for selected rows (recorded in errors).
struct NumericalConfig {
  int num_rows = 1000;
  int max_nights = 30;
  double base_rate = 200.0;
  /// Rate decrease per extra night.
  double discount_per_night = 2.0;
  /// Gaussian noise on the rate (kept small enough to preserve order).
  double noise_stddev = 0.0;
  /// Fraction of rows with order-breaking corrupted rates.
  double outlier_rate = 0.0;
  uint64_t seed = 42;
};
GeneratedData GenerateNumerical(const NumericalConfig& config);

/// Hotel workload scaling the paper's Table 1 pattern: (name, address,
/// region, star, price) with address -> region holding up to format
/// variation and planted errors.
struct HotelConfig {
  int num_hotels = 100;
  int rows_per_hotel = 3;
  double variation_rate = 0.3;
  double error_rate = 0.02;
  uint64_t seed = 42;
};
GeneratedData GenerateHotels(const HotelConfig& config);

}  // namespace famtree

#endif  // FAMTREE_GEN_GENERATORS_H_
