#ifndef FAMTREE_GEN_PAPER_TABLES_H_
#define FAMTREE_GEN_PAPER_TABLES_H_

#include "relation/relation.h"

namespace famtree {

/// Exact replicas of the running-example instances in the paper. Every
/// worked measure value in EXPERIMENTS.md is recomputed against these.
namespace paper {

/// Table 1: hotel relation r1 (name, address, region, star, price);
/// 8 tuples; fd1: address -> region has a true violation at (t3, t4), a
/// format-variation false positive at (t5, t6), and an undetectable error
/// at (t7, t8).
Relation R1();

/// Table 5: hotel relation r5 (name, address, region, rate); 4 tuples;
/// address -> region almost holds (S = 2/3, P = 3/4, g3 = 1/4) while
/// name -> address does not (S = 1/2, P = 1/2, g3 = 1/2).
Relation R5();

/// Table 6: heterogeneous relation r6 (source, name, street, address,
/// region, zip, price, tax); 6 tuples from sources s1/s2 with format
/// variation ("12th St." vs "12th Str").
Relation R6();

/// Table 7: numerical relation r7 (nights, avg/night, subtotal, taxes);
/// 4 tuples with monotone rate structure.
Relation R7();

/// The 3-tuple dataspace of Section 3.4.1 (name, region, city, addr,
/// post) with absent attributes as nulls.
Relation DataspaceExample();

/// Attribute indices of R1 in declaration order.
struct R1Attrs {
  static constexpr int kName = 0;
  static constexpr int kAddress = 1;
  static constexpr int kRegion = 2;
  static constexpr int kStar = 3;
  static constexpr int kPrice = 4;
};

/// Attribute indices of R5.
struct R5Attrs {
  static constexpr int kName = 0;
  static constexpr int kAddress = 1;
  static constexpr int kRegion = 2;
  static constexpr int kRate = 3;
};

/// Attribute indices of R6.
struct R6Attrs {
  static constexpr int kSource = 0;
  static constexpr int kName = 1;
  static constexpr int kStreet = 2;
  static constexpr int kAddress = 3;
  static constexpr int kRegion = 4;
  static constexpr int kZip = 5;
  static constexpr int kPrice = 6;
  static constexpr int kTax = 7;
};

/// Attribute indices of R7.
struct R7Attrs {
  static constexpr int kNights = 0;
  static constexpr int kAvgNight = 1;
  static constexpr int kSubtotal = 2;
  static constexpr int kTaxes = 3;
};

}  // namespace paper
}  // namespace famtree

#endif  // FAMTREE_GEN_PAPER_TABLES_H_
