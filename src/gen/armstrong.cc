#include "gen/armstrong.h"

#include <set>

#include "reasoning/closure.h"

namespace famtree {

Result<Relation> BuildArmstrongRelation(int num_attrs,
                                        const std::vector<Fd>& fds) {
  if (num_attrs < 1 || num_attrs > 20) {
    return Status::Invalid("Armstrong construction supports 1..20 attributes");
  }
  for (const Fd& fd : fds) {
    if (!AttrSet::Full(num_attrs).ContainsAll(fd.lhs().Union(fd.rhs()))) {
      return Status::Invalid("FD refers to attributes outside the schema");
    }
  }
  // Closed sets: closures of every subset, deduplicated. The full set is
  // always closed; skip it (a row agreeing everywhere is a duplicate).
  // Subset order (empty, then ProperNonEmptySubsets descending) only
  // affects insertion order into the std::set, not its contents.
  std::set<AttrSet> closed;
  const AttrSet full = AttrSet::Full(num_attrs);
  closed.insert(Closure(AttrSet(), fds));
  closed.insert(Closure(full, fds));
  for (AttrSet sub : ProperNonEmptySubsets(full)) {
    closed.insert(Closure(sub, fds));
  }
  closed.erase(full);

  std::vector<std::string> names;
  for (int a = 0; a < num_attrs; ++a) names.push_back("a" + std::to_string(a));
  RelationBuilder builder(names);
  // Base row: value 0 everywhere.
  std::vector<Value> base(num_attrs, Value(0));
  builder.AddRow(base);
  // One row per closed set, with globally fresh disagreement values so
  // rows for different closed sets never accidentally agree.
  int64_t fresh = 1;
  for (const AttrSet& agree : closed) {
    std::vector<Value> row(num_attrs);
    for (int a = 0; a < num_attrs; ++a) {
      row[a] = agree.Contains(a) ? Value(0) : Value(fresh++);
    }
    builder.AddRow(std::move(row));
  }
  return builder.Build();
}

}  // namespace famtree
