#include "gen/armstrong.h"

#include <set>

#include "reasoning/closure.h"

namespace famtree {

Result<Relation> BuildArmstrongRelation(int num_attrs,
                                        const std::vector<Fd>& fds) {
  if (num_attrs < 1 || num_attrs > 20) {
    return Status::Invalid("Armstrong construction supports 1..20 attributes");
  }
  for (const Fd& fd : fds) {
    if (!AttrSet::Full(num_attrs).ContainsAll(fd.lhs().Union(fd.rhs()))) {
      return Status::Invalid("FD refers to attributes outside the schema");
    }
  }
  // Closed sets: closures of every subset, deduplicated. The full set is
  // always closed; skip it (a row agreeing everywhere is a duplicate).
  std::set<uint64_t> closed;
  uint64_t limit = 1ULL << num_attrs;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    closed.insert(Closure(AttrSet(mask), fds).mask());
  }
  closed.erase(AttrSet::Full(num_attrs).mask());

  std::vector<std::string> names;
  for (int a = 0; a < num_attrs; ++a) names.push_back("a" + std::to_string(a));
  RelationBuilder builder(names);
  // Base row: value 0 everywhere.
  std::vector<Value> base(num_attrs, Value(0));
  builder.AddRow(base);
  // One row per closed set, with globally fresh disagreement values so
  // rows for different closed sets never accidentally agree.
  int64_t fresh = 1;
  for (uint64_t mask : closed) {
    AttrSet agree(mask);
    std::vector<Value> row(num_attrs);
    for (int a = 0; a < num_attrs; ++a) {
      row[a] = agree.Contains(a) ? Value(0) : Value(fresh++);
    }
    builder.AddRow(std::move(row));
  }
  return builder.Build();
}

}  // namespace famtree
