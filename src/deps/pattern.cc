#include "deps/pattern.h"

#include "deps/dependency.h"

namespace famtree {

const char* CmpOpSymbol(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNeq: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

CmpOp NegateOp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return CmpOp::kNeq;
    case CmpOp::kNeq: return CmpOp::kEq;
    case CmpOp::kLt: return CmpOp::kGe;
    case CmpOp::kLe: return CmpOp::kGt;
    case CmpOp::kGt: return CmpOp::kLe;
    case CmpOp::kGe: return CmpOp::kLt;
  }
  return CmpOp::kEq;
}

bool EvalCmp(const Value& a, CmpOp op, const Value& b) {
  switch (op) {
    case CmpOp::kEq: return a == b;
    case CmpOp::kNeq: return a != b;
    case CmpOp::kLt: return a < b;
    case CmpOp::kLe: return a <= b;
    case CmpOp::kGt: return a > b;
    case CmpOp::kGe: return a >= b;
  }
  return false;
}

bool PatternTuple::AllWildcards() const {
  for (const auto& it : items_) {
    if (!it.is_wildcard) return false;
  }
  return true;
}

bool PatternTuple::Matches(const Relation& relation, int row,
                           AttrSet attrs) const {
  for (const auto& it : items_) {
    if (it.is_wildcard || !attrs.Contains(it.attr)) continue;
    if (!EvalCmp(relation.Get(row, it.attr), it.op, it.constant)) return false;
  }
  return true;
}

const PatternItem* PatternTuple::Find(int attr) const {
  for (const auto& it : items_) {
    if (it.attr == attr) return &it;
  }
  return nullptr;
}

std::string PatternTuple::ToString(const Schema* schema, AttrSet attrs) const {
  std::string out = "(";
  bool first = true;
  for (int a : attrs.ToVector()) {
    if (!first) out += ", ";
    first = false;
    out += internal::AttrName(schema, a);
    const PatternItem* it = Find(a);
    if (it == nullptr || it->is_wildcard) {
      out += "=_";
    } else {
      out += CmpOpSymbol(it->op);
      out += "'" + it->constant.ToString() + "'";
    }
  }
  out += ")";
  return out;
}

}  // namespace famtree
