#include "deps/mfd.h"

#include <algorithm>

#include "common/strings.h"

namespace famtree {

double Mfd::MaxGroupDiameter(const Relation& relation, AttrSet lhs, int attr,
                             const Metric& metric) {
  double diameter = 0.0;
  for (const auto& group : relation.GroupBy(lhs)) {
    for (size_t i = 0; i + 1 < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        diameter = std::max(
            diameter, metric.Distance(relation.Get(group[i], attr),
                                      relation.Get(group[j], attr)));
      }
    }
  }
  return diameter;
}

double Mfd::MaxGroupDiameter(const EncodedRelation& encoded, AttrSet lhs,
                             const CodeDistanceTable& table) {
  double diameter = 0.0;
  for (const auto& group : encoded.GroupBy(lhs)) {
    for (size_t i = 0; i + 1 < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        diameter = std::max(diameter, table.RowDistance(group[i], group[j]));
      }
    }
  }
  return diameter;
}

std::string Mfd::ToString(const Schema* schema) const {
  std::string out = internal::AttrNames(schema, lhs_) + " ->^d ";
  for (size_t i = 0; i < rhs_.size(); ++i) {
    if (i) out += ", ";
    out += internal::AttrName(schema, rhs_[i].attr) + "(<=" +
           FormatDouble(rhs_[i].delta) + ")";
  }
  return out;
}

Result<ValidationReport> Mfd::Validate(const Relation& relation,
                                       int max_violations) const {
  int nc = relation.num_columns();
  if (!AttrSet::Full(nc).ContainsAll(lhs_)) {
    return Status::Invalid("MFD refers to attributes outside the schema");
  }
  if (rhs_.empty()) return Status::Invalid("MFD needs dependent constraints");
  for (const auto& mc : rhs_) {
    if (mc.attr < 0 || mc.attr >= nc) {
      return Status::Invalid("MFD refers to attributes outside the schema");
    }
    if (mc.metric == nullptr) return Status::Invalid("MFD metric missing");
    if (mc.delta < 0) return Status::Invalid("MFD delta must be >= 0");
  }
  ValidationReport report;
  double worst = 0.0;
  for (const auto& group : relation.GroupBy(lhs_)) {
    if (group.size() < 2) continue;
    for (size_t i = 0; i + 1 < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        for (const auto& mc : rhs_) {
          double d = mc.metric->Distance(relation.Get(group[i], mc.attr),
                                         relation.Get(group[j], mc.attr));
          worst = std::max(worst, d);
          if (d > mc.delta) {
            internal::RecordViolation(
                &report, max_violations,
                Violation{{group[i], group[j]},
                          "equal on LHS but Y distance " + FormatDouble(d) +
                              " exceeds delta " + FormatDouble(mc.delta)});
            break;  // one violation per pair
          }
        }
      }
    }
  }
  report.holds = report.violation_count == 0;
  report.measure = worst;  // observed diameter
  return report;
}

}  // namespace famtree
