#ifndef FAMTREE_DEPS_PFD_H_
#define FAMTREE_DEPS_PFD_H_

#include <string>

#include "deps/dependency.h"
#include "relation/encoded_relation.h"

namespace famtree {

/// A probabilistic functional dependency X ->_p Y (Section 2.2, [104]):
/// per distinct X-value V, P(X -> Y, V) is the fraction of V's tuples that
/// carry the plurality Y-value; the PFD probability is the average over
/// distinct X-values and must reach p. An FD is exactly a PFD with p = 1.
class Pfd : public Dependency {
 public:
  Pfd(AttrSet lhs, AttrSet rhs, double min_probability)
      : lhs_(lhs), rhs_(rhs), min_probability_(min_probability) {}

  AttrSet lhs() const { return lhs_; }
  AttrSet rhs() const { return rhs_; }
  double min_probability() const { return min_probability_; }

  /// P(X -> Y, r): average per-value plurality fraction.
  static double Probability(const Relation& relation, AttrSet lhs,
                            AttrSet rhs);

  /// Encoded fast path: plurality counting over dense row keys instead of
  /// pairwise AgreeOn scans. Groups are visited in the same
  /// first-occurrence order as Relation::GroupBy, so the floating-point
  /// summation order — and therefore the result — is bit-identical to the
  /// Value-based overload.
  static double Probability(const EncodedRelation& encoded, AttrSet lhs,
                            AttrSet rhs);

  DependencyClass cls() const override { return DependencyClass::kPfd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  AttrSet lhs_;
  AttrSet rhs_;
  double min_probability_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_PFD_H_
