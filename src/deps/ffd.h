#ifndef FAMTREE_DEPS_FFD_H_
#define FAMTREE_DEPS_FFD_H_

#include <string>
#include <vector>

#include "deps/dependency.h"
#include "metric/fuzzy.h"

namespace famtree {

/// A fuzzy functional dependency X ~> Y (Section 3.6, [79]): for all tuple
/// pairs, mu_EQ(t1[X], t2[X]) <= mu_EQ(t1[Y], t2[Y]) where the resemblance
/// of a tuple pair on an attribute set is the minimum over the attributes.
/// With crisp resemblances on every attribute, an FFD is exactly an FD.
class Ffd : public Dependency {
 public:
  struct FuzzyAttr {
    int attr = 0;
    ResemblancePtr resemblance;
  };

  Ffd(std::vector<FuzzyAttr> lhs, std::vector<FuzzyAttr> rhs)
      : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  const std::vector<FuzzyAttr>& lhs() const { return lhs_; }
  const std::vector<FuzzyAttr>& rhs() const { return rhs_; }

  /// mu_EQ of a pair on one side: min over attributes.
  static double PairResemblance(const std::vector<FuzzyAttr>& side,
                                const Relation& relation, int i, int j);

  DependencyClass cls() const override { return DependencyClass::kFfd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  std::vector<FuzzyAttr> lhs_;
  std::vector<FuzzyAttr> rhs_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_FFD_H_
