#ifndef FAMTREE_DEPS_NED_H_
#define FAMTREE_DEPS_NED_H_

#include <string>
#include <vector>

#include "deps/dependency.h"
#include "deps/differential.h"

namespace famtree {

/// A neighborhood dependency A1^a1...An^an -> B1^b1...Bm^bm (Section 3.2,
/// [4]): any pair of tuples within distance a_i on every LHS attribute must
/// be within distance b_j on every RHS attribute. NEDs only express the
/// "similar" semantics ([0, threshold] ranges); DDs generalize them to
/// arbitrary distance ranges.
class Ned : public Dependency {
 public:
  /// Thresholds are upper bounds on distance ("closeness" predicates).
  struct Predicate {
    int attr = 0;
    MetricPtr metric;
    double threshold = 0.0;
  };

  Ned(std::vector<Predicate> lhs, std::vector<Predicate> rhs)
      : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  const std::vector<Predicate>& lhs() const { return lhs_; }
  const std::vector<Predicate>& rhs() const { return rhs_; }

  /// Support/confidence of the rule over all tuple pairs: support = #pairs
  /// agreeing on the LHS predicate, confidence = fraction of those that
  /// satisfy the RHS (the discovery objective of [4]).
  struct PairStats {
    int64_t total_pairs = 0;
    int64_t lhs_pairs = 0;
    int64_t satisfying_pairs = 0;
    double confidence() const {
      return lhs_pairs == 0
                 ? 1.0
                 : static_cast<double>(satisfying_pairs) / lhs_pairs;
    }
  };
  PairStats ComputePairStats(const Relation& relation) const;

  DependencyClass cls() const override { return DependencyClass::kNed; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  std::vector<Predicate> lhs_;
  std::vector<Predicate> rhs_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_NED_H_
