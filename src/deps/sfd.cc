#include "deps/sfd.h"

#include "common/strings.h"
#include "relation/encoded_relation.h"

namespace famtree {

double Sfd::Strength(const Relation& relation, AttrSet lhs, AttrSet rhs) {
  if (relation.num_rows() == 0) return 1.0;
  int dom_x = relation.CountDistinct(lhs);
  int dom_xy = relation.CountDistinct(lhs.Union(rhs));
  if (dom_xy == 0) return 1.0;
  return static_cast<double>(dom_x) / dom_xy;
}

double Sfd::Strength(const EncodedRelation& relation, AttrSet lhs,
                     AttrSet rhs) {
  if (relation.num_rows() == 0) return 1.0;
  int dom_x = relation.CountDistinct(lhs);
  int dom_xy = relation.CountDistinct(lhs.Union(rhs));
  if (dom_xy == 0) return 1.0;
  return static_cast<double>(dom_x) / dom_xy;
}

std::string Sfd::ToString(const Schema* schema) const {
  return internal::AttrNames(schema, lhs_) + " ->_" +
         FormatDouble(min_strength_) + " " + internal::AttrNames(schema, rhs_);
}

Result<ValidationReport> Sfd::Validate(const Relation& relation,
                                       int max_violations) const {
  int nc = relation.num_columns();
  if (!AttrSet::Full(nc).ContainsAll(lhs_.Union(rhs_))) {
    return Status::Invalid("SFD refers to attributes outside the schema");
  }
  if (min_strength_ < 0.0 || min_strength_ > 1.0) {
    return Status::Invalid("SFD strength threshold must be in [0, 1]");
  }
  ValidationReport report;
  report.measure = Strength(relation, lhs_, rhs_);
  report.holds = report.measure >= min_strength_;
  if (!report.holds) {
    // Witnesses: one X-group that maps to multiple XY-combinations.
    for (const auto& group : relation.GroupBy(lhs_)) {
      if (group.size() < 2) continue;
      for (size_t j = 1; j < group.size(); ++j) {
        if (!relation.AgreeOn(group[0], group[j], rhs_)) {
          internal::RecordViolation(
              &report, max_violations,
              Violation{{group[0], group[j]},
                        "same LHS value maps to multiple RHS values"});
          break;
        }
      }
    }
    report.holds = false;
  }
  return report;
}

}  // namespace famtree
