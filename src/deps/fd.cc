#include "deps/fd.h"

namespace famtree {

std::string Fd::ToString(const Schema* schema) const {
  return internal::AttrNames(schema, lhs_) + " -> " +
         internal::AttrNames(schema, rhs_);
}

Result<ValidationReport> Fd::Validate(const Relation& relation,
                                      int max_violations) const {
  int nc = relation.num_columns();
  if (!AttrSet::Full(nc).ContainsAll(lhs_.Union(rhs_))) {
    return Status::Invalid("FD refers to attributes outside the schema");
  }
  ValidationReport report;
  for (const auto& group : relation.GroupBy(lhs_)) {
    if (group.size() < 2) continue;
    // Sub-group by Y; every cross-subgroup pair is a violation.
    std::vector<std::vector<int>> sub;
    for (int row : group) {
      bool placed = false;
      for (auto& s : sub) {
        if (relation.AgreeOn(s[0], row, rhs_)) {
          s.push_back(row);
          placed = true;
          break;
        }
      }
      if (!placed) sub.push_back({row});
    }
    if (sub.size() <= 1) continue;
    // Count violating pairs exactly; materialize witnesses up to the cap.
    int64_t pairs = 0;
    int64_t total = static_cast<int64_t>(group.size());
    int64_t same = 0;
    for (const auto& s : sub) {
      same += static_cast<int64_t>(s.size()) * (s.size() - 1) / 2;
    }
    pairs = total * (total - 1) / 2 - same;
    report.holds = false;
    report.violation_count += pairs;
    for (size_t i = 0; i + 1 < sub.size(); ++i) {
      for (size_t j = i + 1; j < sub.size(); ++j) {
        if (static_cast<int>(report.violations.size()) >= max_violations) {
          break;
        }
        report.violations.push_back(Violation{
            {sub[i][0], sub[j][0]},
            "equal on LHS but differ on RHS"});
      }
    }
  }
  report.measure = report.holds ? 1.0 : 0.0;
  return report;
}

}  // namespace famtree
