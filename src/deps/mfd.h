#ifndef FAMTREE_DEPS_MFD_H_
#define FAMTREE_DEPS_MFD_H_

#include <string>
#include <vector>

#include "deps/dependency.h"
#include "deps/differential.h"
#include "metric/code_distance.h"
#include "relation/encoded_relation.h"

namespace famtree {

/// One dependent-side constraint of an MFD: attribute + metric + delta.
struct MetricConstraint {
  int attr = 0;
  MetricPtr metric;
  double delta = 0.0;
};

/// A metric functional dependency X ->^delta Y (Section 3.1, [64]): tuples
/// equal on X must be within metric distance delta on each Y attribute.
/// An FD is exactly an MFD with delta = 0 (under any metric satisfying
/// identity of indiscernibles).
class Mfd : public Dependency {
 public:
  Mfd(AttrSet lhs, std::vector<MetricConstraint> rhs)
      : lhs_(lhs), rhs_(std::move(rhs)) {}

  AttrSet lhs() const { return lhs_; }
  const std::vector<MetricConstraint>& rhs() const { return rhs_; }

  /// Largest within-group diameter on `attr` under `metric` — the smallest
  /// delta for which the MFD holds (the verification primitive of [64]).
  static double MaxGroupDiameter(const Relation& relation, AttrSet lhs,
                                 int attr, const Metric& metric);

  /// Encoded fast path: the same diameter over dictionary-encoded groups
  /// with the metric memoized per code pair; bit-identical to the Value
  /// overload (max is order-insensitive and the table stores the exact
  /// doubles the metric returned).
  static double MaxGroupDiameter(const EncodedRelation& encoded, AttrSet lhs,
                                 const CodeDistanceTable& table);

  DependencyClass cls() const override { return DependencyClass::kMfd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  AttrSet lhs_;
  std::vector<MetricConstraint> rhs_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_MFD_H_
