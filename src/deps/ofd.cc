#include "deps/ofd.h"

namespace famtree {

namespace {

/// Is t_i[attrs] <= t_j[attrs] under the given ordering kind?
bool LeqOn(const Relation& relation, int i, int j, AttrSet attrs,
           OrderingKind kind) {
  if (kind == OrderingKind::kPointwise) {
    for (int a : attrs.ToVector()) {
      if (!(relation.Get(i, a) <= relation.Get(j, a))) return false;
    }
    return true;
  }
  // Lexicographic.
  for (int a : attrs.ToVector()) {
    const Value& vi = relation.Get(i, a);
    const Value& vj = relation.Get(j, a);
    if (vi < vj) return true;
    if (vj < vi) return false;
  }
  return true;  // equal
}

}  // namespace

std::string Ofd::ToString(const Schema* schema) const {
  const char* marker = kind_ == OrderingKind::kPointwise ? "->^P" : "->^L";
  return internal::AttrNames(schema, lhs_) + " " + marker + " " +
         internal::AttrNames(schema, rhs_);
}

Result<ValidationReport> Ofd::Validate(const Relation& relation,
                                       int max_violations) const {
  int nc = relation.num_columns();
  if (!AttrSet::Full(nc).ContainsAll(lhs_.Union(rhs_))) {
    return Status::Invalid("OFD refers to attributes outside the schema");
  }
  if (lhs_.empty() || rhs_.empty()) {
    return Status::Invalid("OFD needs non-empty sides");
  }
  ValidationReport report;
  int n = relation.num_rows();
  // Ordered pairs: the implication is directional.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      if (LeqOn(relation, i, j, lhs_, kind_) &&
          !LeqOn(relation, i, j, rhs_, kind_)) {
        internal::RecordViolation(
            &report, max_violations,
            Violation{{i, j}, "ordered on X but not on Y"});
      }
    }
  }
  report.holds = report.violation_count == 0;
  return report;
}

}  // namespace famtree
