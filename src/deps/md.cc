#include "deps/md.h"

#include "common/strings.h"

namespace famtree {

bool Md::LhsSimilar(const Relation& relation, int i, int j) const {
  for (const auto& p : lhs_) {
    if (!p.Similar(relation, i, j)) return false;
  }
  return true;
}

Md::Stats Md::ComputeStats(const Relation& relation) const {
  Stats stats;
  int n = relation.num_rows();
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      ++stats.total_pairs;
      if (!LhsSimilar(relation, i, j)) continue;
      ++stats.similar_pairs;
      if (relation.AgreeOn(i, j, rhs_)) ++stats.identified_pairs;
    }
  }
  return stats;
}

std::string Md::ToString(const Schema* schema) const {
  std::string out;
  for (size_t i = 0; i < lhs_.size(); ++i) {
    if (i) out += ", ";
    out += internal::AttrName(schema, lhs_[i].attr) + "~" +
           FormatDouble(lhs_[i].threshold);
  }
  return out + " -> " + internal::AttrNames(schema, rhs_) + "<=>";
}

Result<ValidationReport> Md::Validate(const Relation& relation,
                                      int max_violations) const {
  int nc = relation.num_columns();
  for (const auto& p : lhs_) {
    if (p.attr < 0 || p.attr >= nc) {
      return Status::Invalid("MD refers to attributes outside the schema");
    }
    if (p.metric == nullptr) return Status::Invalid("MD metric missing");
    if (p.threshold < 0) return Status::Invalid("MD threshold must be >= 0");
  }
  if (!AttrSet::Full(nc).ContainsAll(rhs_)) {
    return Status::Invalid("MD refers to attributes outside the schema");
  }
  if (lhs_.empty() || rhs_.empty()) {
    return Status::Invalid("MD needs non-empty sides");
  }
  ValidationReport report;
  Stats stats;
  int n = relation.num_rows();
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      ++stats.total_pairs;
      if (!LhsSimilar(relation, i, j)) continue;
      ++stats.similar_pairs;
      if (relation.AgreeOn(i, j, rhs_)) {
        ++stats.identified_pairs;
      } else {
        internal::RecordViolation(
            &report, max_violations,
            Violation{{i, j}, "similar on LHS but not identified on RHS"});
      }
    }
  }
  report.holds = report.violation_count == 0;
  report.measure = stats.confidence();
  return report;
}

}  // namespace famtree
