#include "deps/pfd.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "common/strings.h"

namespace famtree {

namespace {

/// Size of the largest sub-group of `group` agreeing on `attrs`.
int PluralityCount(const Relation& relation, const std::vector<int>& group,
                   AttrSet attrs) {
  std::vector<std::pair<int, int>> heads;  // (representative row, count)
  int best = 0;
  for (int row : group) {
    bool placed = false;
    for (auto& [head, count] : heads) {
      if (relation.AgreeOn(head, row, attrs)) {
        best = std::max(best, ++count);
        placed = true;
        break;
      }
    }
    if (!placed) {
      heads.push_back({row, 1});
      best = std::max(best, 1);
    }
  }
  return best;
}

}  // namespace

double Pfd::Probability(const Relation& relation, AttrSet lhs, AttrSet rhs) {
  auto groups = relation.GroupBy(lhs);
  if (groups.empty()) return 1.0;
  double sum = 0.0;
  for (const auto& group : groups) {
    sum += static_cast<double>(PluralityCount(relation, group, rhs)) /
           group.size();
  }
  return sum / groups.size();
}

double Pfd::Probability(const EncodedRelation& encoded, AttrSet lhs,
                        AttrSet rhs) {
  std::vector<uint32_t> lhs_keys;
  int num_groups = encoded.RowKeys(lhs, &lhs_keys);
  if (num_groups == 0) return 1.0;
  std::vector<uint32_t> rhs_keys;
  uint64_t rhs_stride =
      static_cast<uint64_t>(encoded.RowKeys(rhs, &rhs_keys));
  // One scan: per-group sizes and the per-(group, RHS-value) counts whose
  // running maximum is the group's plurality count.
  std::vector<int> group_size(num_groups, 0);
  std::vector<int> plurality(num_groups, 0);
  std::unordered_map<uint64_t, int> counts;
  counts.reserve(encoded.num_rows() * 2);
  for (int row = 0; row < encoded.num_rows(); ++row) {
    uint32_t g = lhs_keys[row];
    ++group_size[g];
    int c = ++counts[static_cast<uint64_t>(g) * rhs_stride + rhs_keys[row]];
    plurality[g] = std::max(plurality[g], c);
  }
  // Group ids are assigned in first-occurrence order, so this sum matches
  // the Value path's GroupBy iteration term for term.
  double sum = 0.0;
  for (int g = 0; g < num_groups; ++g) {
    sum += static_cast<double>(plurality[g]) / group_size[g];
  }
  return sum / num_groups;
}

std::string Pfd::ToString(const Schema* schema) const {
  return internal::AttrNames(schema, lhs_) + " ->_p=" +
         FormatDouble(min_probability_) + " " +
         internal::AttrNames(schema, rhs_);
}

Result<ValidationReport> Pfd::Validate(const Relation& relation,
                                       int max_violations) const {
  int nc = relation.num_columns();
  if (!AttrSet::Full(nc).ContainsAll(lhs_.Union(rhs_))) {
    return Status::Invalid("PFD refers to attributes outside the schema");
  }
  if (min_probability_ < 0.0 || min_probability_ > 1.0) {
    return Status::Invalid("PFD probability threshold must be in [0, 1]");
  }
  ValidationReport report;
  report.measure = Probability(relation, lhs_, rhs_);
  report.holds = report.measure >= min_probability_;
  if (!report.holds) {
    for (const auto& group : relation.GroupBy(lhs_)) {
      for (size_t j = 1; j < group.size(); ++j) {
        if (!relation.AgreeOn(group[0], group[j], rhs_)) {
          internal::RecordViolation(
              &report, max_violations,
              Violation{{group[0], group[j]},
                        "minority RHS value under this LHS value"});
          break;
        }
      }
    }
    report.holds = false;
  }
  return report;
}

}  // namespace famtree
