#include "deps/pfd.h"

#include <algorithm>

#include "common/strings.h"

namespace famtree {

namespace {

/// Size of the largest sub-group of `group` agreeing on `attrs`.
int PluralityCount(const Relation& relation, const std::vector<int>& group,
                   AttrSet attrs) {
  std::vector<std::pair<int, int>> heads;  // (representative row, count)
  int best = 0;
  for (int row : group) {
    bool placed = false;
    for (auto& [head, count] : heads) {
      if (relation.AgreeOn(head, row, attrs)) {
        best = std::max(best, ++count);
        placed = true;
        break;
      }
    }
    if (!placed) {
      heads.push_back({row, 1});
      best = std::max(best, 1);
    }
  }
  return best;
}

}  // namespace

double Pfd::Probability(const Relation& relation, AttrSet lhs, AttrSet rhs) {
  auto groups = relation.GroupBy(lhs);
  if (groups.empty()) return 1.0;
  double sum = 0.0;
  for (const auto& group : groups) {
    sum += static_cast<double>(PluralityCount(relation, group, rhs)) /
           group.size();
  }
  return sum / groups.size();
}

std::string Pfd::ToString(const Schema* schema) const {
  return internal::AttrNames(schema, lhs_) + " ->_p=" +
         FormatDouble(min_probability_) + " " +
         internal::AttrNames(schema, rhs_);
}

Result<ValidationReport> Pfd::Validate(const Relation& relation,
                                       int max_violations) const {
  int nc = relation.num_columns();
  if (!AttrSet::Full(nc).ContainsAll(lhs_.Union(rhs_))) {
    return Status::Invalid("PFD refers to attributes outside the schema");
  }
  if (min_probability_ < 0.0 || min_probability_ > 1.0) {
    return Status::Invalid("PFD probability threshold must be in [0, 1]");
  }
  ValidationReport report;
  report.measure = Probability(relation, lhs_, rhs_);
  report.holds = report.measure >= min_probability_;
  if (!report.holds) {
    for (const auto& group : relation.GroupBy(lhs_)) {
      for (size_t j = 1; j < group.size(); ++j) {
        if (!relation.AgreeOn(group[0], group[j], rhs_)) {
          internal::RecordViolation(
              &report, max_violations,
              Violation{{group[0], group[j]},
                        "minority RHS value under this LHS value"});
          break;
        }
      }
    }
    report.holds = false;
  }
  return report;
}

}  // namespace famtree
