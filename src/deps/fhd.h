#ifndef FAMTREE_DEPS_FHD_H_
#define FAMTREE_DEPS_FHD_H_

#include <string>
#include <vector>

#include "deps/dependency.h"

namespace famtree {

/// A full hierarchical dependency X : {Y1, ..., Yk} (Section 2.6.5, [27]):
/// the relation decomposes losslessly into pi_{XY1}, ..., pi_{XYk} and
/// pi_{X(R - X Y1 ... Yk)}. Within each X-group the blocks Y1..Yk and the
/// remainder must vary mutually independently. With k = 1 this is exactly
/// the MVD X ->> Y1 — the family-tree edge MVD -> FHD.
class Fhd : public Dependency {
 public:
  Fhd(AttrSet lhs, std::vector<AttrSet> blocks)
      : lhs_(lhs), blocks_(std::move(blocks)) {}

  AttrSet lhs() const { return lhs_; }
  const std::vector<AttrSet>& blocks() const { return blocks_; }

  DependencyClass cls() const override { return DependencyClass::kFhd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  AttrSet lhs_;
  std::vector<AttrSet> blocks_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_FHD_H_
