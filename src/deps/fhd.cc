#include "deps/fhd.h"

#include <set>

namespace famtree {

std::string Fhd::ToString(const Schema* schema) const {
  std::string out = internal::AttrNames(schema, lhs_) + " : {";
  for (size_t i = 0; i < blocks_.size(); ++i) {
    if (i) out += "; ";
    out += internal::AttrNames(schema, blocks_[i]);
  }
  out += "}";
  return out;
}

Result<ValidationReport> Fhd::Validate(const Relation& relation,
                                       int max_violations) const {
  int nc = relation.num_columns();
  AttrSet used = lhs_;
  if (blocks_.empty()) return Status::Invalid("FHD needs at least one block");
  for (const AttrSet& b : blocks_) {
    if (b.empty()) return Status::Invalid("FHD block must be non-empty");
    if (used.Intersects(b)) {
      return Status::Invalid("FHD blocks and X must be pairwise disjoint");
    }
    used = used.Union(b);
  }
  if (!AttrSet::Full(nc).ContainsAll(used)) {
    return Status::Invalid("FHD refers to attributes outside the schema");
  }
  AttrSet remainder = AttrSet::Full(nc).Minus(used);
  std::vector<AttrSet> parts = blocks_;
  if (!remainder.empty()) parts.push_back(remainder);

  ValidationReport report;
  for (const auto& group : relation.GroupBy(lhs_)) {
    // Assign each row a per-part id; combos must fill the full product.
    std::vector<std::vector<int>> part_ids(parts.size());
    std::vector<std::vector<int>> part_heads(parts.size());
    for (size_t p = 0; p < parts.size(); ++p) {
      part_ids[p].resize(group.size());
      for (size_t i = 0; i < group.size(); ++i) {
        int row = group[i];
        int found = -1;
        for (size_t h = 0; h < part_heads[p].size(); ++h) {
          if (relation.AgreeOn(part_heads[p][h], row, parts[p])) {
            found = static_cast<int>(h);
            break;
          }
        }
        if (found < 0) {
          found = static_cast<int>(part_heads[p].size());
          part_heads[p].push_back(row);
        }
        part_ids[p][i] = found;
      }
    }
    long long product = 1;
    for (const auto& heads : part_heads) {
      product *= static_cast<long long>(heads.size());
    }
    std::set<std::vector<int>> combos;
    for (size_t i = 0; i < group.size(); ++i) {
      std::vector<int> combo(parts.size());
      for (size_t p = 0; p < parts.size(); ++p) combo[p] = part_ids[p][i];
      combos.insert(std::move(combo));
    }
    if (static_cast<long long>(combos.size()) == product) continue;
    int64_t count_before = report.violation_count;
    // Witness: a pair of rows whose blockwise mix is absent. Scan pairs.
    for (size_t i = 0; i < group.size() && report.violation_count < 1000;
         ++i) {
      for (size_t j = 0; j < group.size(); ++j) {
        if (i == j) continue;
        // Mix: part 0 from row i, the rest from row j.
        std::vector<int> combo(parts.size());
        combo[0] = part_ids[0][i];
        for (size_t p = 1; p < parts.size(); ++p) combo[p] = part_ids[p][j];
        if (!combos.count(combo)) {
          internal::RecordViolation(
              &report, max_violations,
              Violation{{group[i], group[j]},
                        "block combination missing under this X value"});
        }
      }
    }
    if (report.violation_count == count_before) {
      // Combination shortfall exists but not witnessed by a 2-row mix of
      // the first block; record a group-level violation.
      internal::RecordViolation(&report, max_violations,
                                Violation{{group[0]},
                                          "X-group is not a full product of "
                                          "its block projections"});
    }
  }
  report.holds = report.violation_count == 0;
  return report;
}

}  // namespace famtree
