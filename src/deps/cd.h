#ifndef FAMTREE_DEPS_CD_H_
#define FAMTREE_DEPS_CD_H_

#include <string>
#include <vector>

#include "deps/dependency.h"
#include "metric/metric.h"

namespace famtree {

/// A similarity function theta(Ai, Aj) over two (often synonym) attributes
/// in a dataspace (Section 3.4.1): two tuples are similar w.r.t. theta when
/// at least one of the three comparisons Ai~Ai, Ai~Aj, Aj~Aj is within its
/// threshold. Absent (null) attribute values fail their comparisons, which
/// is what makes the disjunction valuable on heterogeneous sources.
struct SimilarityFunction {
  int attr_i = 0;
  int attr_j = 0;
  MetricPtr metric;
  double max_dist_ii = 0.0;
  double max_dist_ij = 0.0;
  double max_dist_jj = 0.0;

  /// Is the pair (row1, row2) similar w.r.t. this function?
  bool Similar(const Relation& relation, int row1, int row2) const;

  std::string ToString(const Schema* schema) const;
};

/// A comparable dependency /\ theta(Ai, Aj) -> theta(Bi, Bj)
/// (Section 3.4, [91], [92]): pairs similar under every LHS similarity
/// function must be similar under the RHS one. NEDs are the special case
/// where every function compares an attribute with itself.
class Cd : public Dependency {
 public:
  Cd(std::vector<SimilarityFunction> lhs, SimilarityFunction rhs)
      : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  const std::vector<SimilarityFunction>& lhs() const { return lhs_; }
  const SimilarityFunction& rhs() const { return rhs_; }

  DependencyClass cls() const override { return DependencyClass::kCd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  std::vector<SimilarityFunction> lhs_;
  SimilarityFunction rhs_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_CD_H_
