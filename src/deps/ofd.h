#ifndef FAMTREE_DEPS_OFD_H_
#define FAMTREE_DEPS_OFD_H_

#include <string>

#include "deps/dependency.h"

namespace famtree {

/// How tuple projections are compared by an OFD.
enum class OrderingKind {
  /// t1[X] <= t2[X] componentwise on every attribute.
  kPointwise,
  /// Lexicographic comparison in attribute-index order ([76], [77] footnote).
  kLexicographic,
};

/// An ordered functional dependency X ->^P Y (Section 4.1, [76], [77]):
/// whenever t1[X] <= t2[X] (pointwise or lexicographically), then
/// t1[Y] <= t2[Y] likewise. "Higher subtotal leads to higher taxes."
class Ofd : public Dependency {
 public:
  Ofd(AttrSet lhs, AttrSet rhs, OrderingKind kind = OrderingKind::kPointwise)
      : lhs_(lhs), rhs_(rhs), kind_(kind) {}

  AttrSet lhs() const { return lhs_; }
  AttrSet rhs() const { return rhs_; }
  OrderingKind kind() const { return kind_; }

  DependencyClass cls() const override { return DependencyClass::kOfd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  AttrSet lhs_;
  AttrSet rhs_;
  OrderingKind kind_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_OFD_H_
