#ifndef FAMTREE_DEPS_PAC_H_
#define FAMTREE_DEPS_PAC_H_

#include <string>
#include <vector>

#include "deps/dependency.h"
#include "metric/metric.h"

namespace famtree {

/// A probabilistic approximate constraint X_Delta ->^delta Y_eps
/// (Section 3.5, [63]): among tuple pairs within tolerance Delta_l on every
/// LHS attribute, the fraction within tolerance eps_l on each RHS attribute
/// must reach the confidence delta. NEDs are PACs with delta = 1.
class Pac : public Dependency {
 public:
  struct Tolerance {
    int attr = 0;
    MetricPtr metric;
    double tolerance = 0.0;
  };

  Pac(std::vector<Tolerance> lhs, std::vector<Tolerance> rhs,
      double confidence)
      : lhs_(std::move(lhs)), rhs_(std::move(rhs)), confidence_(confidence) {}

  const std::vector<Tolerance>& lhs() const { return lhs_; }
  const std::vector<Tolerance>& rhs() const { return rhs_; }
  double confidence() const { return confidence_; }

  /// Empirical Pr(|t_i[B] - t_j[B]| <= eps_B) over LHS-close pairs for the
  /// RHS attribute with the lowest probability (the binding constraint).
  static double MinRhsProbability(const Relation& relation,
                                  const std::vector<Tolerance>& lhs,
                                  const std::vector<Tolerance>& rhs);

  DependencyClass cls() const override { return DependencyClass::kPac; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  std::vector<Tolerance> lhs_;
  std::vector<Tolerance> rhs_;
  double confidence_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_PAC_H_
