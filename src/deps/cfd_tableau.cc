#include "deps/cfd_tableau.h"

namespace famtree {

Result<CfdTableau> CfdTableau::FromCfds(const std::vector<Cfd>& rows) {
  if (rows.empty()) {
    return Status::Invalid("tableau needs at least one pattern row");
  }
  AttrSet lhs = rows[0].lhs();
  AttrSet rhs = rows[0].rhs();
  std::vector<PatternTuple> tableau;
  for (const Cfd& cfd : rows) {
    if (cfd.lhs() != lhs || cfd.rhs() != rhs) {
      return Status::Invalid("tableau rows must share one embedded FD");
    }
    tableau.push_back(cfd.pattern());
  }
  return CfdTableau(lhs, rhs, std::move(tableau));
}

int CfdTableau::Coverage(const Relation& relation) const {
  int covered = 0;
  for (int row = 0; row < relation.num_rows(); ++row) {
    for (const PatternTuple& pattern : tableau_) {
      if (pattern.Matches(relation, row, lhs_)) {
        ++covered;
        break;
      }
    }
  }
  return covered;
}

std::string CfdTableau::ToString(const Schema* schema) const {
  std::string out = internal::AttrNames(schema, lhs_) + " -> " +
                    internal::AttrNames(schema, rhs_) + ", T = {";
  for (size_t i = 0; i < tableau_.size(); ++i) {
    if (i) out += "; ";
    out += tableau_[i].ToString(schema, lhs_.Union(rhs_));
  }
  out += "}";
  return out;
}

Result<ValidationReport> CfdTableau::Validate(const Relation& relation,
                                              int max_violations) const {
  if (tableau_.empty()) {
    return Status::Invalid("tableau needs at least one pattern row");
  }
  ValidationReport combined;
  combined.measure = Coverage(relation);
  for (const PatternTuple& pattern : tableau_) {
    Cfd row_cfd(lhs_, rhs_, pattern);
    FAMTREE_ASSIGN_OR_RETURN(
        ValidationReport report,
        row_cfd.Validate(relation,
                         max_violations -
                             static_cast<int>(combined.violations.size())));
    combined.violation_count += report.violation_count;
    for (Violation& v : report.violations) {
      if (static_cast<int>(combined.violations.size()) < max_violations) {
        combined.violations.push_back(std::move(v));
      }
    }
  }
  combined.holds = combined.violation_count == 0;
  return combined;
}

}  // namespace famtree
