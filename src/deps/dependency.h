#ifndef FAMTREE_DEPS_DEPENDENCY_H_
#define FAMTREE_DEPS_DEPENDENCY_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relation/relation.h"

namespace famtree {

/// The 24 dependency notations surveyed by the paper, grouped by the data
/// type they were designed for (Table 2).
enum class DependencyClass {
  // Categorical data (Section 2).
  kFd,
  kSfd,
  kPfd,
  kAfd,
  kNud,
  kCfd,
  kEcfd,
  kMvd,
  kFhd,
  kAmvd,
  // Heterogeneous data (Section 3).
  kMfd,
  kNed,
  kDd,
  kCdd,
  kCd,
  kPac,
  kFfd,
  kMd,
  kCmd,
  // Numerical data (Section 4).
  kOfd,
  kOd,
  kDc,
  kSd,
  kCsd,
};

/// "FDs", "CFDs", ... — the acronyms used throughout the paper.
const char* DependencyClassAcronym(DependencyClass cls);
/// "Functional Dependencies", ... — the full names of Table 2.
const char* DependencyClassFullName(DependencyClass cls);
/// All 24 classes in Table 2 order.
const std::vector<DependencyClass>& AllDependencyClasses();

/// One witness that a dependency does not hold: the involved rows (usually
/// a pair; a single row for constant-pattern violations) plus a description.
struct Violation {
  std::vector<int> rows;
  std::string description;

  friend bool operator==(const Violation& a, const Violation& b) {
    return a.rows == b.rows && a.description == b.description;
  }
};

/// Result of validating a dependency against a relation instance.
struct ValidationReport {
  /// True iff the dependency holds on the instance (for statistical
  /// notations: the measure meets the declared threshold).
  bool holds = true;
  /// Witness violations, capped at the caller's limit.
  std::vector<Violation> violations;
  /// Total number of violations found (>= violations.size()).
  int64_t violation_count = 0;
  /// The notation's own quality measure where one exists (SFD strength,
  /// PFD probability, AFD g3, PAC confidence, SD confidence, ...); NaN
  /// when the notation has no scalar measure.
  double measure = std::numeric_limits<double>::quiet_NaN();
};

/// Abstract base for every dependency notation in the family tree. Concrete
/// classes expose their full typed structure (thresholds, patterns, metric
/// choices); this interface is what generic machinery — the violation
/// detector, the family-tree property checks, the discovery result
/// containers — programs against.
class Dependency {
 public:
  virtual ~Dependency() = default;

  virtual DependencyClass cls() const = 0;

  /// Paper-style rendering, e.g. "address -> region" or
  /// "name(<=1), street(<=5) -> address(<=5)". Uses attribute names when
  /// `schema` is provided, positional names (#i) otherwise.
  virtual std::string ToString(const Schema* schema = nullptr) const = 0;

  /// Checks the dependency against `relation`, collecting up to
  /// `max_violations` witnesses.
  virtual Result<ValidationReport> Validate(const Relation& relation,
                                            int max_violations = 64) const = 0;

  /// Convenience: does the dependency hold? (false on validation error —
  /// callers needing to distinguish use Validate()).
  bool Holds(const Relation& relation) const {
    auto r = Validate(relation, 0);
    return r.ok() && r->holds;
  }
};

using DependencyPtr = std::shared_ptr<const Dependency>;

namespace internal {
/// Helper shared by pairwise validators: record a violation respecting the
/// cap while always counting.
inline void RecordViolation(ValidationReport* report, int max_violations,
                            Violation v) {
  report->holds = false;
  ++report->violation_count;
  if (static_cast<int>(report->violations.size()) < max_violations) {
    report->violations.push_back(std::move(v));
  }
}

/// Renders attribute `a` via the schema when present.
std::string AttrName(const Schema* schema, int a);
/// Renders an attribute set.
std::string AttrNames(const Schema* schema, AttrSet attrs);
}  // namespace internal

}  // namespace famtree

#endif  // FAMTREE_DEPS_DEPENDENCY_H_
