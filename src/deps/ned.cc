#include "deps/ned.h"

#include "common/strings.h"

namespace famtree {

namespace {

bool PairAgrees(const std::vector<Ned::Predicate>& preds,
                const Relation& relation, int i, int j) {
  for (const auto& p : preds) {
    double d =
        p.metric->Distance(relation.Get(i, p.attr), relation.Get(j, p.attr));
    if (d > p.threshold) return false;
  }
  return true;
}

Status CheckPredicates(const std::vector<Ned::Predicate>& preds,
                       const Relation& relation) {
  for (const auto& p : preds) {
    if (p.attr < 0 || p.attr >= relation.num_columns()) {
      return Status::Invalid("NED refers to attributes outside the schema");
    }
    if (p.metric == nullptr) return Status::Invalid("NED metric missing");
    if (p.threshold < 0) return Status::Invalid("NED threshold must be >= 0");
  }
  return Status::OK();
}

std::string PredsToString(const std::vector<Ned::Predicate>& preds,
                          const Schema* schema) {
  std::string out;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i) out += " ";
    out += internal::AttrName(schema, preds[i].attr) + "^" +
           FormatDouble(preds[i].threshold);
  }
  return out;
}

}  // namespace

Ned::PairStats Ned::ComputePairStats(const Relation& relation) const {
  PairStats stats;
  int n = relation.num_rows();
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      ++stats.total_pairs;
      if (!PairAgrees(lhs_, relation, i, j)) continue;
      ++stats.lhs_pairs;
      if (PairAgrees(rhs_, relation, i, j)) ++stats.satisfying_pairs;
    }
  }
  return stats;
}

std::string Ned::ToString(const Schema* schema) const {
  return PredsToString(lhs_, schema) + " -> " + PredsToString(rhs_, schema);
}

Result<ValidationReport> Ned::Validate(const Relation& relation,
                                       int max_violations) const {
  FAMTREE_RETURN_NOT_OK(CheckPredicates(lhs_, relation));
  FAMTREE_RETURN_NOT_OK(CheckPredicates(rhs_, relation));
  ValidationReport report;
  int n = relation.num_rows();
  int64_t lhs_pairs = 0, ok_pairs = 0;
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (!PairAgrees(lhs_, relation, i, j)) continue;
      ++lhs_pairs;
      if (PairAgrees(rhs_, relation, i, j)) {
        ++ok_pairs;
      } else {
        internal::RecordViolation(
            &report, max_violations,
            Violation{{i, j}, "neighbors on LHS but not on RHS"});
      }
    }
  }
  report.holds = report.violation_count == 0;
  report.measure =
      lhs_pairs == 0 ? 1.0 : static_cast<double>(ok_pairs) / lhs_pairs;
  return report;
}

}  // namespace famtree
