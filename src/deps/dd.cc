#include "deps/dd.h"

namespace famtree {

int64_t Dd::Support(const Relation& relation) const {
  int64_t support = 0;
  int n = relation.num_rows();
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (AllSatisfied(lhs_, relation, i, j)) ++support;
    }
  }
  return support;
}

std::string Dd::ToString(const Schema* schema) const {
  return DifferentialFunctionsToString(lhs_, schema) + " -> " +
         DifferentialFunctionsToString(rhs_, schema);
}

Result<ValidationReport> Dd::Validate(const Relation& relation,
                                      int max_violations) const {
  FAMTREE_RETURN_NOT_OK(CheckDifferentialFunctions(lhs_, relation, "DD"));
  FAMTREE_RETURN_NOT_OK(CheckDifferentialFunctions(rhs_, relation, "DD"));
  if (rhs_.empty()) return Status::Invalid("DD needs a dependent function");
  ValidationReport report;
  int n = relation.num_rows();
  int64_t lhs_pairs = 0, ok_pairs = 0;
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (!AllSatisfied(lhs_, relation, i, j)) continue;
      ++lhs_pairs;
      if (AllSatisfied(rhs_, relation, i, j)) {
        ++ok_pairs;
      } else {
        internal::RecordViolation(
            &report, max_violations,
            Violation{{i, j},
                      "pair satisfies LHS distance ranges but not RHS"});
      }
    }
  }
  report.holds = report.violation_count == 0;
  report.measure =
      lhs_pairs == 0 ? 1.0 : static_cast<double>(ok_pairs) / lhs_pairs;
  return report;
}

}  // namespace famtree
