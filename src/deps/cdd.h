#ifndef FAMTREE_DEPS_CDD_H_
#define FAMTREE_DEPS_CDD_H_

#include <string>
#include <vector>

#include "deps/dd.h"
#include "deps/dependency.h"
#include "deps/pattern.h"

namespace famtree {

/// A conditional differential dependency (Section 3.3.5, [66]): a DD that
/// only applies to the tuples matching a categorical condition pattern,
/// e.g. "in region 'Chicago', similar name implies similar address". CDDs
/// extend both DDs (condition = all wildcards) and CFDs (differential
/// functions with discrete-metric zero ranges, condition pattern on X).
class Cdd : public Dependency {
 public:
  Cdd(PatternTuple condition, std::vector<DifferentialFunction> lhs,
      std::vector<DifferentialFunction> rhs)
      : condition_(std::move(condition)),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  const PatternTuple& condition() const { return condition_; }
  const std::vector<DifferentialFunction>& lhs() const { return lhs_; }
  const std::vector<DifferentialFunction>& rhs() const { return rhs_; }

  DependencyClass cls() const override { return DependencyClass::kCdd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  PatternTuple condition_;
  std::vector<DifferentialFunction> lhs_;
  std::vector<DifferentialFunction> rhs_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_CDD_H_
