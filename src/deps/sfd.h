#ifndef FAMTREE_DEPS_SFD_H_
#define FAMTREE_DEPS_SFD_H_

#include <string>

#include "deps/dependency.h"

namespace famtree {

class EncodedRelation;

/// A soft functional dependency X ->_s Y (Section 2.1, CORDS [55]): the
/// strength measure S(X -> Y, r) = |dom(X)|_r / |dom(X,Y)|_r must reach the
/// threshold s. An FD is exactly an SFD with strength 1.
class Sfd : public Dependency {
 public:
  Sfd(AttrSet lhs, AttrSet rhs, double min_strength)
      : lhs_(lhs), rhs_(rhs), min_strength_(min_strength) {}

  AttrSet lhs() const { return lhs_; }
  AttrSet rhs() const { return rhs_; }
  double min_strength() const { return min_strength_; }

  /// The paper's strength measure on an instance.
  static double Strength(const Relation& relation, AttrSet lhs, AttrSet rhs);
  /// Same measure on a dictionary-encoded instance: the distinct counts come
  /// from code arrays (no Value hashing) and both are exact integers, so the
  /// ratio is bit-identical to the Value-based overload.
  static double Strength(const EncodedRelation& relation, AttrSet lhs,
                         AttrSet rhs);

  DependencyClass cls() const override { return DependencyClass::kSfd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  AttrSet lhs_;
  AttrSet rhs_;
  double min_strength_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_SFD_H_
