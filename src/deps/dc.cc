#include "deps/dc.h"

namespace famtree {

const Value& DcOperand::Eval(const Relation& relation, int row_a,
                             int row_b) const {
  switch (kind) {
    case Kind::kTupleA: return relation.Get(row_a, attr);
    case Kind::kTupleB: return relation.Get(row_b, attr);
    case Kind::kConst: return constant;
  }
  return constant;
}

std::string DcOperand::ToString(const Schema* schema) const {
  switch (kind) {
    case Kind::kTupleA: return "ta." + internal::AttrName(schema, attr);
    case Kind::kTupleB: return "tb." + internal::AttrName(schema, attr);
    case Kind::kConst: return "'" + constant.ToString() + "'";
  }
  return "?";
}

std::string DcPredicate::ToString(const Schema* schema) const {
  return lhs.ToString(schema) + " " + CmpOpSymbol(op) + " " +
         rhs.ToString(schema);
}

bool Dc::IsSingleTuple() const {
  for (const auto& p : predicates_) {
    if (p.UsesTupleB()) return false;
  }
  return true;
}

std::string Dc::ToString(const Schema* schema) const {
  std::string out = "not(";
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (i) out += " /\\ ";
    out += predicates_[i].ToString(schema);
  }
  out += ")";
  return out;
}

Result<ValidationReport> Dc::Validate(const Relation& relation,
                                      int max_violations) const {
  if (predicates_.empty()) {
    return Status::Invalid("DC needs at least one predicate");
  }
  int nc = relation.num_columns();
  for (const auto& p : predicates_) {
    for (const DcOperand* o : {&p.lhs, &p.rhs}) {
      if (o->kind != DcOperand::Kind::kConst &&
          (o->attr < 0 || o->attr >= nc)) {
        return Status::Invalid("DC refers to attributes outside the schema");
      }
    }
  }
  ValidationReport report;
  int n = relation.num_rows();
  auto all_hold = [&](int a, int b) {
    for (const auto& p : predicates_) {
      if (!p.Eval(relation, a, b)) return false;
    }
    return true;
  };
  if (IsSingleTuple()) {
    for (int i = 0; i < n; ++i) {
      if (all_hold(i, i)) {
        internal::RecordViolation(
            &report, max_violations,
            Violation{{i}, "tuple satisfies all denied predicates"});
      }
    }
  } else {
    // Ordered pairs of distinct tuples (the standard two-tuple semantics).
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        if (all_hold(i, j)) {
          internal::RecordViolation(
              &report, max_violations,
              Violation{{i, j}, "pair satisfies all denied predicates"});
        }
      }
    }
  }
  report.holds = report.violation_count == 0;
  return report;
}

}  // namespace famtree
