#include "deps/ffd.h"

#include <algorithm>

#include "common/strings.h"

namespace famtree {

double Ffd::PairResemblance(const std::vector<FuzzyAttr>& side,
                            const Relation& relation, int i, int j) {
  double mu = 1.0;
  for (const auto& fa : side) {
    mu = std::min(mu, fa.resemblance->Equal(relation.Get(i, fa.attr),
                                            relation.Get(j, fa.attr)));
  }
  return mu;
}

std::string Ffd::ToString(const Schema* schema) const {
  auto side = [schema](const std::vector<FuzzyAttr>& fas) {
    std::string out;
    for (size_t i = 0; i < fas.size(); ++i) {
      if (i) out += ", ";
      out += internal::AttrName(schema, fas[i].attr);
    }
    return out;
  };
  return side(lhs_) + " ~> " + side(rhs_);
}

Result<ValidationReport> Ffd::Validate(const Relation& relation,
                                       int max_violations) const {
  int nc = relation.num_columns();
  auto check = [nc](const std::vector<FuzzyAttr>& fas) {
    for (const auto& fa : fas) {
      if (fa.attr < 0 || fa.attr >= nc) {
        return Status::Invalid("FFD refers to attributes outside the schema");
      }
      if (fa.resemblance == nullptr) {
        return Status::Invalid("FFD resemblance relation missing");
      }
    }
    return Status::OK();
  };
  FAMTREE_RETURN_NOT_OK(check(lhs_));
  FAMTREE_RETURN_NOT_OK(check(rhs_));
  if (lhs_.empty() || rhs_.empty()) {
    return Status::Invalid("FFD needs non-empty sides");
  }
  ValidationReport report;
  int n = relation.num_rows();
  double min_slack = 1.0;  // min over pairs of mu(Y) - mu(X); >= 0 iff holds
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double mx = PairResemblance(lhs_, relation, i, j);
      double my = PairResemblance(rhs_, relation, i, j);
      min_slack = std::min(min_slack, my - mx);
      if (mx > my) {
        internal::RecordViolation(
            &report, max_violations,
            Violation{{i, j}, "mu_EQ on X (" + FormatDouble(mx) +
                                  ") exceeds mu_EQ on Y (" +
                                  FormatDouble(my) + ")"});
      }
    }
  }
  report.holds = report.violation_count == 0;
  report.measure = min_slack;
  return report;
}

}  // namespace famtree
