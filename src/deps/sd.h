#ifndef FAMTREE_DEPS_SD_H_
#define FAMTREE_DEPS_SD_H_

#include <string>
#include <vector>

#include "deps/dependency.h"
#include "deps/differential.h"

namespace famtree {

/// A sequential dependency X ->_g Y (Section 4.4, [48]): sort the tuples on
/// X; the (signed) increase of Y between consecutive tuples must lie in the
/// interval g. Gaps use the numeric difference t_{i+1}[Y] - t_i[Y], so
/// g = [0, inf) expresses "Y increases with X" (the OD special case) and
/// g = (-inf, 0] "Y decreases".
struct Interval {
  double lo;
  double hi;

  static Interval Between(double lo, double hi) { return {lo, hi}; }
  static Interval AtLeast(double lo) {
    return {lo, std::numeric_limits<double>::infinity()};
  }
  static Interval AtMost(double hi) {
    return {-std::numeric_limits<double>::infinity(), hi};
  }
  bool Contains(double v) const { return v >= lo && v <= hi; }
  std::string ToString() const;
};

class Sd : public Dependency {
 public:
  /// `order_attr`: X (ties broken by row order); `target_attr`: Y.
  Sd(int order_attr, int target_attr, Interval gap)
      : order_attr_(order_attr), target_attr_(target_attr), gap_(gap) {}

  int order_attr() const { return order_attr_; }
  int target_attr() const { return target_attr_; }
  const Interval& gap() const { return gap_; }

  /// Confidence in the sense of [48] (simplified to deletions): 1 minus the
  /// fraction of rows that must be removed so every consecutive gap falls
  /// in the interval. Computed exactly by longest-valid-subsequence DP.
  static double Confidence(const Relation& relation, int order_attr,
                           int target_attr, const Interval& gap);

  /// Rows sorted by the order attribute (ties by row index) — the sequence
  /// the SD speaks about. Exposed for the discovery module.
  static std::vector<int> SortedOrder(const Relation& relation,
                                      int order_attr);

  DependencyClass cls() const override { return DependencyClass::kSd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  int order_attr_;
  int target_attr_;
  Interval gap_;
};

/// A conditional sequential dependency (Section 4.4.5, [48]): a tableau of
/// intervals over the order attribute, each row carrying an embedded SD gap
/// that holds within that X-range. The pattern tableau is what the
/// polynomial-time discovery of Fig. 3 constructs.
class Csd : public Dependency {
 public:
  struct TableauRow {
    /// Condition: tuples whose X value lies in [x_lo, x_hi].
    double x_lo;
    double x_hi;
    /// Embedded gap constraint for consecutive tuples in that range.
    Interval gap;
  };

  Csd(int order_attr, int target_attr, std::vector<TableauRow> tableau)
      : order_attr_(order_attr),
        target_attr_(target_attr),
        tableau_(std::move(tableau)) {}

  int order_attr() const { return order_attr_; }
  int target_attr() const { return target_attr_; }
  const std::vector<TableauRow>& tableau() const { return tableau_; }

  DependencyClass cls() const override { return DependencyClass::kCsd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  int order_attr_;
  int target_attr_;
  std::vector<TableauRow> tableau_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_SD_H_
