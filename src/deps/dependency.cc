#include "deps/dependency.h"

namespace famtree {

const char* DependencyClassAcronym(DependencyClass cls) {
  switch (cls) {
    case DependencyClass::kFd: return "FDs";
    case DependencyClass::kSfd: return "SFDs";
    case DependencyClass::kPfd: return "PFDs";
    case DependencyClass::kAfd: return "AFDs";
    case DependencyClass::kNud: return "NUDs";
    case DependencyClass::kCfd: return "CFDs";
    case DependencyClass::kEcfd: return "eCFDs";
    case DependencyClass::kMvd: return "MVDs";
    case DependencyClass::kFhd: return "FHDs";
    case DependencyClass::kAmvd: return "AMVDs";
    case DependencyClass::kMfd: return "MFDs";
    case DependencyClass::kNed: return "NEDs";
    case DependencyClass::kDd: return "DDs";
    case DependencyClass::kCdd: return "CDDs";
    case DependencyClass::kCd: return "CDs";
    case DependencyClass::kPac: return "PACs";
    case DependencyClass::kFfd: return "FFDs";
    case DependencyClass::kMd: return "MDs";
    case DependencyClass::kCmd: return "CMDs";
    case DependencyClass::kOfd: return "OFDs";
    case DependencyClass::kOd: return "ODs";
    case DependencyClass::kDc: return "DCs";
    case DependencyClass::kSd: return "SDs";
    case DependencyClass::kCsd: return "CSDs";
  }
  return "?";
}

const char* DependencyClassFullName(DependencyClass cls) {
  switch (cls) {
    case DependencyClass::kFd: return "Functional Dependencies";
    case DependencyClass::kSfd: return "Soft Functional Dependencies";
    case DependencyClass::kPfd: return "Probabilistic Functional Dependencies";
    case DependencyClass::kAfd: return "Approximate Functional Dependencies";
    case DependencyClass::kNud: return "Numerical Dependencies";
    case DependencyClass::kCfd: return "Conditional Functional Dependencies";
    case DependencyClass::kEcfd: return "extended CFDs";
    case DependencyClass::kMvd: return "Multivalued Dependencies";
    case DependencyClass::kFhd: return "Full Hierarchical Dependencies";
    case DependencyClass::kAmvd: return "Approximate MVDs";
    case DependencyClass::kMfd: return "Metric Functional Dependencies";
    case DependencyClass::kNed: return "Neighborhood Dependencies";
    case DependencyClass::kDd: return "Differential Dependencies";
    case DependencyClass::kCdd: return "Conditional Differential Dependencies";
    case DependencyClass::kCd: return "Comparable Dependencies";
    case DependencyClass::kPac: return "Probabilistic Approximate Constraints";
    case DependencyClass::kFfd: return "Fuzzy Functional Dependencies";
    case DependencyClass::kMd: return "Matching Dependencies";
    case DependencyClass::kCmd: return "Conditional Matching Dependencies";
    case DependencyClass::kOfd: return "Ordered Functional Dependencies";
    case DependencyClass::kOd: return "Order Dependencies";
    case DependencyClass::kDc: return "Denial Constraints";
    case DependencyClass::kSd: return "Sequential Dependencies";
    case DependencyClass::kCsd: return "Conditional Sequential Dependencies";
  }
  return "?";
}

const std::vector<DependencyClass>& AllDependencyClasses() {
  static const std::vector<DependencyClass>& all =
      *new std::vector<DependencyClass>{
          DependencyClass::kSfd,  DependencyClass::kPfd,
          DependencyClass::kAfd,  DependencyClass::kNud,
          DependencyClass::kCfd,  DependencyClass::kEcfd,
          DependencyClass::kMvd,  DependencyClass::kFhd,
          DependencyClass::kAmvd, DependencyClass::kMfd,
          DependencyClass::kNed,  DependencyClass::kDd,
          DependencyClass::kCdd,  DependencyClass::kCd,
          DependencyClass::kPac,  DependencyClass::kFfd,
          DependencyClass::kMd,   DependencyClass::kCmd,
          DependencyClass::kOfd,  DependencyClass::kOd,
          DependencyClass::kDc,   DependencyClass::kSd,
          DependencyClass::kCsd,  DependencyClass::kFd,
      };
  return all;
}

namespace internal {

std::string AttrName(const Schema* schema, int a) {
  if (schema != nullptr && a < schema->num_columns()) return schema->name(a);
  return "#" + std::to_string(a);
}

std::string AttrNames(const Schema* schema, AttrSet attrs) {
  std::string out;
  bool first = true;
  for (int a : attrs.ToVector()) {
    if (!first) out += ", ";
    out += AttrName(schema, a);
    first = false;
  }
  return out;
}

}  // namespace internal

}  // namespace famtree
