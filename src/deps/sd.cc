#include "deps/sd.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace famtree {

std::string Interval::ToString() const {
  auto fmt = [](double v) {
    if (v == std::numeric_limits<double>::infinity()) return std::string("inf");
    if (v == -std::numeric_limits<double>::infinity()) {
      return std::string("-inf");
    }
    return FormatDouble(v);
  };
  return "[" + fmt(lo) + "," + fmt(hi) + "]";
}

std::vector<int> Sd::SortedOrder(const Relation& relation, int order_attr) {
  std::vector<int> order(relation.num_rows());
  for (int i = 0; i < relation.num_rows(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return relation.Get(a, order_attr) < relation.Get(b, order_attr);
  });
  return order;
}

double Sd::Confidence(const Relation& relation, int order_attr,
                      int target_attr, const Interval& gap) {
  int n = relation.num_rows();
  if (n <= 1) return 1.0;
  std::vector<int> order = SortedOrder(relation, order_attr);
  // Longest subsequence (of the X-sorted sequence) whose consecutive Y-gaps
  // all fall into the interval; confidence = |longest| / n. O(n^2) DP.
  std::vector<int> best(n, 1);
  int longest = 1;
  for (int i = 1; i < n; ++i) {
    double yi = relation.Get(order[i], target_attr).AsNumeric();
    for (int j = 0; j < i; ++j) {
      double yj = relation.Get(order[j], target_attr).AsNumeric();
      if (gap.Contains(yi - yj)) {
        best[i] = std::max(best[i], best[j] + 1);
      }
    }
    longest = std::max(longest, best[i]);
  }
  return static_cast<double>(longest) / n;
}

std::string Sd::ToString(const Schema* schema) const {
  return internal::AttrName(schema, order_attr_) + " ->_" + gap_.ToString() +
         " " + internal::AttrName(schema, target_attr_);
}

Result<ValidationReport> Sd::Validate(const Relation& relation,
                                      int max_violations) const {
  int nc = relation.num_columns();
  if (order_attr_ < 0 || order_attr_ >= nc || target_attr_ < 0 ||
      target_attr_ >= nc) {
    return Status::Invalid("SD refers to attributes outside the schema");
  }
  if (gap_.lo > gap_.hi) return Status::Invalid("SD interval is empty");
  ValidationReport report;
  std::vector<int> order = SortedOrder(relation, order_attr_);
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    double y1 = relation.Get(order[i], target_attr_).AsNumeric();
    double y2 = relation.Get(order[i + 1], target_attr_).AsNumeric();
    double delta = y2 - y1;
    if (std::isnan(delta) || !gap_.Contains(delta)) {
      internal::RecordViolation(
          &report, max_violations,
          Violation{{order[i], order[i + 1]},
                    "consecutive gap " + FormatDouble(delta) +
                        " outside " + gap_.ToString()});
    }
  }
  report.holds = report.violation_count == 0;
  report.measure = Confidence(relation, order_attr_, target_attr_, gap_);
  return report;
}

std::string Csd::ToString(const Schema* schema) const {
  std::string out = internal::AttrName(schema, order_attr_) + " ->_tableau " +
                    internal::AttrName(schema, target_attr_) + " {";
  for (size_t i = 0; i < tableau_.size(); ++i) {
    if (i) out += "; ";
    out += "X in [" + FormatDouble(tableau_[i].x_lo) + "," +
           FormatDouble(tableau_[i].x_hi) + "]: gap " +
           tableau_[i].gap.ToString();
  }
  out += "}";
  return out;
}

Result<ValidationReport> Csd::Validate(const Relation& relation,
                                       int max_violations) const {
  int nc = relation.num_columns();
  if (order_attr_ < 0 || order_attr_ >= nc || target_attr_ < 0 ||
      target_attr_ >= nc) {
    return Status::Invalid("CSD refers to attributes outside the schema");
  }
  if (tableau_.empty()) return Status::Invalid("CSD tableau is empty");
  ValidationReport report;
  std::vector<int> order = Sd::SortedOrder(relation, order_attr_);
  for (const auto& row : tableau_) {
    if (row.x_lo > row.x_hi) return Status::Invalid("CSD range is empty");
    // Consecutive pairs *within* the condition range.
    int prev = -1;
    for (int idx : order) {
      double x = relation.Get(idx, order_attr_).AsNumeric();
      if (std::isnan(x) || x < row.x_lo || x > row.x_hi) continue;
      if (prev >= 0) {
        double delta = relation.Get(idx, target_attr_).AsNumeric() -
                       relation.Get(prev, target_attr_).AsNumeric();
        if (std::isnan(delta) || !row.gap.Contains(delta)) {
          internal::RecordViolation(
              &report, max_violations,
              Violation{{prev, idx}, "gap " + FormatDouble(delta) +
                                         " outside " + row.gap.ToString() +
                                         " within condition range"});
        }
      }
      prev = idx;
    }
  }
  report.holds = report.violation_count == 0;
  return report;
}

}  // namespace famtree
