#include "deps/cmd.h"

namespace famtree {

std::string Cmd::ToString(const Schema* schema) const {
  AttrSet cond_attrs;
  for (const auto& it : condition_.items()) cond_attrs.Add(it.attr);
  std::string cond = condition_.empty()
                         ? "(true)"
                         : condition_.ToString(schema, cond_attrs);
  return cond + " : " + md_.ToString(schema);
}

Result<ValidationReport> Cmd::Validate(const Relation& relation,
                                       int max_violations) const {
  for (const auto& it : condition_.items()) {
    if (it.attr < 0 || it.attr >= relation.num_columns()) {
      return Status::Invalid("CMD condition outside the schema");
    }
  }
  AttrSet all = AttrSet::Full(relation.num_columns());
  std::vector<int> matching;
  for (int row = 0; row < relation.num_rows(); ++row) {
    if (condition_.Matches(relation, row, all)) matching.push_back(row);
  }
  Relation subset = relation.Select(matching);
  FAMTREE_ASSIGN_OR_RETURN(ValidationReport report,
                           md_.Validate(subset, max_violations));
  // Re-map row indices from the subset back to the original relation.
  for (auto& v : report.violations) {
    for (int& row : v.rows) row = matching[row];
  }
  return report;
}

}  // namespace famtree
