#ifndef FAMTREE_DEPS_OD_H_
#define FAMTREE_DEPS_OD_H_

#include <string>
#include <vector>

#include "deps/dependency.h"

namespace famtree {

/// The orderings a marked attribute can carry (Section 4.2.1: A^<=, A^<,
/// A^>=, A^>).
enum class OrderMark { kLeq, kLt, kGeq, kGt };

const char* OrderMarkSymbol(OrderMark mark);

/// A marked attribute A^op.
struct MarkedAttr {
  int attr = 0;
  OrderMark mark = OrderMark::kLeq;

  /// Does the pair (i, j) satisfy t_i[A] op t_j[A]?
  bool Holds(const Relation& relation, int i, int j) const;

  std::string ToString(const Schema* schema) const;
};

/// An order dependency X -> Y over marked attributes (Section 4.2, [28]):
/// for all tuple pairs, if every LHS marked attribute holds then every RHS
/// marked attribute holds. OFDs are ODs whose marks are all `<=`; e.g.
/// "nights^<= -> avg/night^>=" expresses the longer-stay-cheaper-rate rule.
class Od : public Dependency {
 public:
  Od(std::vector<MarkedAttr> lhs, std::vector<MarkedAttr> rhs)
      : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  const std::vector<MarkedAttr>& lhs() const { return lhs_; }
  const std::vector<MarkedAttr>& rhs() const { return rhs_; }

  DependencyClass cls() const override { return DependencyClass::kOd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  std::vector<MarkedAttr> lhs_;
  std::vector<MarkedAttr> rhs_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_OD_H_
