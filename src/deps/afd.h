#ifndef FAMTREE_DEPS_AFD_H_
#define FAMTREE_DEPS_AFD_H_

#include <string>

#include "deps/dependency.h"

namespace famtree {

/// An approximate functional dependency X ->_eps Y (Section 2.3, [61]):
/// the g3 error — the minimum fraction of tuples to delete so that X -> Y
/// holds — must stay within eps. An FD is exactly an AFD with eps = 0.
class Afd : public Dependency {
 public:
  Afd(AttrSet lhs, AttrSet rhs, double max_error)
      : lhs_(lhs), rhs_(rhs), max_error_(max_error) {}

  AttrSet lhs() const { return lhs_; }
  AttrSet rhs() const { return rhs_; }
  double max_error() const { return max_error_; }

  /// g3(X -> Y, r): per X-group keep the plurality Y value; count the rest.
  static double G3Error(const Relation& relation, AttrSet lhs, AttrSet rhs);

  DependencyClass cls() const override { return DependencyClass::kAfd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  AttrSet lhs_;
  AttrSet rhs_;
  double max_error_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_AFD_H_
