#ifndef FAMTREE_DEPS_PATTERN_H_
#define FAMTREE_DEPS_PATTERN_H_

#include <string>
#include <vector>

#include "common/attr_set.h"
#include "relation/relation.h"

namespace famtree {

/// Comparison operators available in eCFD / DC predicates
/// ({=, !=, <, <=, >, >=} — the negation-closed operator set of Section 4.3).
enum class CmpOp { kEq, kNeq, kLt, kLe, kGt, kGe };

const char* CmpOpSymbol(CmpOp op);
/// The negation within the closed operator set (= <-> !=, < <-> >=, ...).
CmpOp NegateOp(CmpOp op);
/// Evaluates `a op b` with Value ordering semantics.
bool EvalCmp(const Value& a, CmpOp op, const Value& b);

/// One cell of a pattern tuple t_p: either the unnamed variable '_' or a
/// comparison against a constant. Plain CFDs only use kEq constants;
/// eCFDs allow the full operator set (Section 2.5.5).
struct PatternItem {
  int attr = 0;
  bool is_wildcard = true;
  CmpOp op = CmpOp::kEq;
  Value constant;

  static PatternItem Wildcard(int attr) {
    PatternItem it;
    it.attr = attr;
    return it;
  }
  static PatternItem Const(int attr, Value v, CmpOp op = CmpOp::kEq) {
    PatternItem it;
    it.attr = attr;
    it.is_wildcard = false;
    it.op = op;
    it.constant = std::move(v);
    return it;
  }
};

/// A pattern tuple over a subset of attributes. A row "matches" when every
/// non-wildcard item's comparison holds.
class PatternTuple {
 public:
  PatternTuple() = default;
  explicit PatternTuple(std::vector<PatternItem> items)
      : items_(std::move(items)) {}

  const std::vector<PatternItem>& items() const { return items_; }
  bool empty() const { return items_.empty(); }

  /// True iff no item is a constant (the pure-FD special case).
  bool AllWildcards() const;

  /// Does `row` of `relation` satisfy every constant item restricted to
  /// attributes in `attrs` (pass the full set to test all items)?
  bool Matches(const Relation& relation, int row, AttrSet attrs) const;

  /// Item for `attr`, or nullptr when the pattern leaves it unconstrained.
  const PatternItem* Find(int attr) const;

  /// Renders "(region='Jackson', name=_)" style.
  std::string ToString(const Schema* schema, AttrSet attrs) const;

 private:
  std::vector<PatternItem> items_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_PATTERN_H_
