#ifndef FAMTREE_DEPS_MD_H_
#define FAMTREE_DEPS_MD_H_

#include <string>
#include <vector>

#include "deps/dependency.h"
#include "metric/metric.h"

namespace famtree {

/// One similarity predicate of a matching dependency: values of `attr`
/// within `threshold` under `metric` count as similar (~~).
struct SimilarityPredicate {
  int attr = 0;
  MetricPtr metric;
  double threshold = 0.0;

  bool Similar(const Relation& relation, int i, int j) const {
    return metric->Distance(relation.Get(i, attr), relation.Get(j, attr)) <=
           threshold;
  }
};

/// A matching dependency X~ -> Y<=> (Section 3.7, [33], [37]): tuples
/// similar on every X predicate must be *identified* (made equal) on Y.
/// On a given instance a violation is a pair similar on X but unequal on Y;
/// the record-matching application instead *applies* the rule to merge Y.
/// An FD is exactly an MD whose predicates demand identity (threshold 0).
class Md : public Dependency {
 public:
  Md(std::vector<SimilarityPredicate> lhs, AttrSet rhs)
      : lhs_(std::move(lhs)), rhs_(rhs) {}

  const std::vector<SimilarityPredicate>& lhs() const { return lhs_; }
  AttrSet rhs() const { return rhs_; }

  /// True iff the pair is similar under every LHS predicate.
  bool LhsSimilar(const Relation& relation, int i, int j) const;

  /// Support = fraction of tuple pairs similar on the LHS; confidence =
  /// fraction of those already identified on the RHS (the discovery
  /// objectives of [85], [87]).
  struct Stats {
    int64_t total_pairs = 0;
    int64_t similar_pairs = 0;
    int64_t identified_pairs = 0;
    double support() const {
      return total_pairs == 0
                 ? 0.0
                 : static_cast<double>(similar_pairs) / total_pairs;
    }
    double confidence() const {
      return similar_pairs == 0
                 ? 1.0
                 : static_cast<double>(identified_pairs) / similar_pairs;
    }
  };
  Stats ComputeStats(const Relation& relation) const;

  DependencyClass cls() const override { return DependencyClass::kMd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  std::vector<SimilarityPredicate> lhs_;
  AttrSet rhs_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_MD_H_
