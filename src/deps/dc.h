#ifndef FAMTREE_DEPS_DC_H_
#define FAMTREE_DEPS_DC_H_

#include <string>
#include <vector>

#include "deps/dependency.h"
#include "deps/pattern.h"

namespace famtree {

/// One side of a DC predicate: a cell of tuple alpha, a cell of tuple
/// beta, or a constant.
struct DcOperand {
  enum class Kind { kTupleA, kTupleB, kConst };
  Kind kind = Kind::kTupleA;
  int attr = 0;
  Value constant;

  static DcOperand TupleA(int attr) { return {Kind::kTupleA, attr, Value()}; }
  static DcOperand TupleB(int attr) { return {Kind::kTupleB, attr, Value()}; }
  static DcOperand Const(Value v) {
    return {Kind::kConst, 0, std::move(v)};
  }

  const Value& Eval(const Relation& relation, int row_a, int row_b) const;
  std::string ToString(const Schema* schema) const;
};

/// A predicate v1 op v2 inside a denial constraint.
struct DcPredicate {
  DcOperand lhs;
  CmpOp op = CmpOp::kEq;
  DcOperand rhs;

  bool Eval(const Relation& relation, int row_a, int row_b) const {
    return EvalCmp(lhs.Eval(relation, row_a, row_b), op,
                   rhs.Eval(relation, row_a, row_b));
  }
  bool UsesTupleB() const {
    return lhs.kind == DcOperand::Kind::kTupleB ||
           rhs.kind == DcOperand::Kind::kTupleB;
  }
  std::string ToString(const Schema* schema) const;

  /// The negated predicate (the operator set is negation-closed).
  DcPredicate Negated() const { return {lhs, NegateOp(op), rhs}; }
};

/// A denial constraint forall t_a, t_b: NOT(P1 /\ ... /\ Pm)
/// (Section 4.3, [8], [9]): no tuple pair may satisfy all predicates
/// simultaneously. Single-tuple DCs (no reference to t_b) are checked per
/// tuple. DCs subsume ODs (order predicates) and eCFDs (equality plus
/// constant predicates) — the two family-tree edges into DCs.
class Dc : public Dependency {
 public:
  explicit Dc(std::vector<DcPredicate> predicates)
      : predicates_(std::move(predicates)) {}

  const std::vector<DcPredicate>& predicates() const { return predicates_; }

  /// True when no predicate mentions tuple beta.
  bool IsSingleTuple() const;

  DependencyClass cls() const override { return DependencyClass::kDc; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  std::vector<DcPredicate> predicates_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_DC_H_
