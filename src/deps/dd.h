#ifndef FAMTREE_DEPS_DD_H_
#define FAMTREE_DEPS_DD_H_

#include <string>
#include <vector>

#include "deps/dependency.h"
#include "deps/differential.h"

namespace famtree {

/// A differential dependency phi[X] -> phi[Y] (Section 3.3, [86]): any pair
/// of tuples whose distances satisfy every LHS differential function must
/// also satisfy every RHS differential function. Ranges may express both
/// "similar" ([0, d]) and "dissimilar" ([d, inf)) semantics; NEDs are the
/// special case of all-"similar" ranges.
class Dd : public Dependency {
 public:
  Dd(std::vector<DifferentialFunction> lhs,
     std::vector<DifferentialFunction> rhs)
      : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  const std::vector<DifferentialFunction>& lhs() const { return lhs_; }
  const std::vector<DifferentialFunction>& rhs() const { return rhs_; }

  /// Support: number of tuple pairs satisfying the LHS pattern (used by
  /// DD discovery to prune uninteresting rules).
  int64_t Support(const Relation& relation) const;

  DependencyClass cls() const override { return DependencyClass::kDd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  std::vector<DifferentialFunction> lhs_;
  std::vector<DifferentialFunction> rhs_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_DD_H_
