#include "deps/cfd.h"

namespace famtree {

bool Cfd::IsConstant() const {
  for (int a : lhs_.Union(rhs_).ToVector()) {
    const PatternItem* it = pattern_.Find(a);
    if (it == nullptr || it->is_wildcard) return false;
  }
  return true;
}

int Cfd::Support(const Relation& relation) const {
  int support = 0;
  for (int row = 0; row < relation.num_rows(); ++row) {
    if (pattern_.Matches(relation, row, lhs_)) ++support;
  }
  return support;
}

std::string Cfd::ToString(const Schema* schema) const {
  return internal::AttrNames(schema, lhs_) + " -> " +
         internal::AttrNames(schema, rhs_) + ", " +
         pattern_.ToString(schema, lhs_.Union(rhs_));
}

Result<ValidationReport> Cfd::Validate(const Relation& relation,
                                       int max_violations) const {
  int nc = relation.num_columns();
  if (!AttrSet::Full(nc).ContainsAll(lhs_.Union(rhs_))) {
    return Status::Invalid("CFD refers to attributes outside the schema");
  }
  for (const auto& it : pattern_.items()) {
    if (!it.is_wildcard && it.op != CmpOp::kEq) {
      return Status::Invalid(
          "CFD patterns only support '=' constants; use an eCFD");
    }
    if (!lhs_.Union(rhs_).Contains(it.attr)) {
      return Status::Invalid("CFD pattern item outside LHS/RHS attributes");
    }
  }
  ValidationReport report;
  // Tuples matching the LHS pattern.
  std::vector<int> matching;
  for (int row = 0; row < relation.num_rows(); ++row) {
    if (pattern_.Matches(relation, row, lhs_)) matching.push_back(row);
  }
  report.measure = static_cast<double>(matching.size());  // support

  // Single-tuple violations against constant RHS items.
  for (int row : matching) {
    if (!pattern_.Matches(relation, row, rhs_)) {
      internal::RecordViolation(
          &report, max_violations,
          Violation{{row}, "matches LHS pattern but breaks RHS constant"});
    }
  }
  // Pairwise violations of the embedded FD within matching tuples.
  Relation subset = relation.Select(matching);
  for (const auto& group : subset.GroupBy(lhs_)) {
    if (group.size() < 2) continue;
    std::vector<int> heads;
    for (int local : group) {
      bool placed = false;
      for (int head : heads) {
        if (subset.AgreeOn(head, local, rhs_)) {
          placed = true;
          break;
        }
      }
      if (!placed) heads.push_back(local);
    }
    if (heads.size() > 1) {
      for (size_t i = 0; i + 1 < heads.size(); ++i) {
        for (size_t j = i + 1; j < heads.size(); ++j) {
          internal::RecordViolation(
              &report, max_violations,
              Violation{{matching[heads[i]], matching[heads[j]]},
                        "equal on LHS within condition but differ on RHS"});
        }
      }
    }
  }
  report.holds = report.violation_count == 0;
  return report;
}

}  // namespace famtree
