#include "deps/differential.h"

#include "common/strings.h"
#include "deps/dependency.h"

namespace famtree {

std::string DistRange::ToString() const {
  bool inf_max = max == std::numeric_limits<double>::infinity();
  if (min == 0.0 && inf_max) return "(any)";
  if (min == 0.0) return "(<=" + FormatDouble(max) + ")";
  if (inf_max) return "(>=" + FormatDouble(min) + ")";
  if (min == max) return "(=" + FormatDouble(min) + ")";
  return "[" + FormatDouble(min) + "," + FormatDouble(max) + "]";
}

std::string DifferentialFunction::ToString(const Schema* schema) const {
  return internal::AttrName(schema, attr) + range.ToString();
}

bool AllSatisfied(const std::vector<DifferentialFunction>& fns,
                  const Relation& relation, int i, int j) {
  for (const auto& fn : fns) {
    if (!fn.Satisfied(relation, i, j)) return false;
  }
  return true;
}

std::string DifferentialFunctionsToString(
    const std::vector<DifferentialFunction>& fns, const Schema* schema) {
  std::string out;
  for (size_t i = 0; i < fns.size(); ++i) {
    if (i) out += ", ";
    out += fns[i].ToString(schema);
  }
  return out;
}

Status CheckDifferentialFunctions(
    const std::vector<DifferentialFunction>& fns, const Relation& relation,
    const char* what) {
  for (const auto& fn : fns) {
    if (fn.attr < 0 || fn.attr >= relation.num_columns()) {
      return Status::Invalid(std::string(what) +
                             " refers to attributes outside the schema");
    }
    if (fn.metric == nullptr) {
      return Status::Invalid(std::string(what) +
                             " has a differential function without a metric");
    }
    if (fn.range.min > fn.range.max || fn.range.min < 0) {
      return Status::Invalid(std::string(what) +
                             " has an empty or negative distance range");
    }
  }
  return Status::OK();
}

}  // namespace famtree
