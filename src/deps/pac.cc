#include "deps/pac.h"

#include <algorithm>

#include "common/strings.h"

namespace famtree {

namespace {

bool WithinAll(const std::vector<Pac::Tolerance>& tols,
               const Relation& relation, int i, int j) {
  for (const auto& t : tols) {
    double d =
        t.metric->Distance(relation.Get(i, t.attr), relation.Get(j, t.attr));
    if (d > t.tolerance) return false;
  }
  return true;
}

std::string TolsToString(const std::vector<Pac::Tolerance>& tols,
                         const Schema* schema) {
  std::string out;
  for (size_t i = 0; i < tols.size(); ++i) {
    if (i) out += " ";
    out += internal::AttrName(schema, tols[i].attr) + "_" +
           FormatDouble(tols[i].tolerance);
  }
  return out;
}

}  // namespace

double Pac::MinRhsProbability(const Relation& relation,
                              const std::vector<Tolerance>& lhs,
                              const std::vector<Tolerance>& rhs) {
  int n = relation.num_rows();
  int64_t lhs_pairs = 0;
  std::vector<int64_t> ok(rhs.size(), 0);
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (!WithinAll(lhs, relation, i, j)) continue;
      ++lhs_pairs;
      for (size_t k = 0; k < rhs.size(); ++k) {
        const auto& t = rhs[k];
        double d = t.metric->Distance(relation.Get(i, t.attr),
                                      relation.Get(j, t.attr));
        if (d <= t.tolerance) ++ok[k];
      }
    }
  }
  if (lhs_pairs == 0) return 1.0;
  double min_p = 1.0;
  for (size_t k = 0; k < rhs.size(); ++k) {
    min_p = std::min(min_p, static_cast<double>(ok[k]) / lhs_pairs);
  }
  return min_p;
}

std::string Pac::ToString(const Schema* schema) const {
  return TolsToString(lhs_, schema) + " ->^" + FormatDouble(confidence_) +
         " " + TolsToString(rhs_, schema);
}

Result<ValidationReport> Pac::Validate(const Relation& relation,
                                       int max_violations) const {
  int nc = relation.num_columns();
  auto check = [nc](const std::vector<Tolerance>& tols) {
    for (const auto& t : tols) {
      if (t.attr < 0 || t.attr >= nc) {
        return Status::Invalid("PAC refers to attributes outside the schema");
      }
      if (t.metric == nullptr) return Status::Invalid("PAC metric missing");
      if (t.tolerance < 0) {
        return Status::Invalid("PAC tolerance must be >= 0");
      }
    }
    return Status::OK();
  };
  FAMTREE_RETURN_NOT_OK(check(lhs_));
  FAMTREE_RETURN_NOT_OK(check(rhs_));
  if (rhs_.empty()) return Status::Invalid("PAC needs RHS tolerances");
  if (confidence_ < 0.0 || confidence_ > 1.0) {
    return Status::Invalid("PAC confidence must be in [0, 1]");
  }

  ValidationReport report;
  report.measure = MinRhsProbability(relation, lhs_, rhs_);
  report.holds = report.measure >= confidence_;
  if (!report.holds && max_violations > 0) {
    int n = relation.num_rows();
    for (int i = 0; i + 1 < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (!WithinAll(lhs_, relation, i, j)) continue;
        if (!WithinAll(rhs_, relation, i, j)) {
          internal::RecordViolation(
              &report, max_violations,
              Violation{{i, j}, "pair within LHS tolerances breaks RHS"});
        }
      }
    }
    report.holds = false;
  }
  return report;
}

}  // namespace famtree
