#ifndef FAMTREE_DEPS_CFD_TABLEAU_H_
#define FAMTREE_DEPS_CFD_TABLEAU_H_

#include <string>
#include <vector>

#include "deps/cfd.h"
#include "deps/dependency.h"

namespace famtree {

/// A CFD with a pattern *tableau* — the form the literature actually
/// defines ([11], [34]): one embedded FD X -> Y plus a set of pattern
/// tuples T = {t_p1, ..., t_pk}; the instance must satisfy (X -> Y, t_p)
/// for every row of the tableau. Golab et al.'s tableau generation [49]
/// (BuildGreedyTableau) produces exactly this object's rows.
class CfdTableau : public Dependency {
 public:
  CfdTableau(AttrSet lhs, AttrSet rhs, std::vector<PatternTuple> tableau)
      : lhs_(lhs), rhs_(rhs), tableau_(std::move(tableau)) {}

  /// Builds from per-row CFDs sharing one embedded FD (e.g. the output of
  /// BuildGreedyTableau). Fails when the embedded FDs differ.
  static Result<CfdTableau> FromCfds(const std::vector<Cfd>& rows);

  AttrSet lhs() const { return lhs_; }
  AttrSet rhs() const { return rhs_; }
  const std::vector<PatternTuple>& tableau() const { return tableau_; }

  /// Tuples matching at least one tableau row's LHS pattern — the
  /// coverage measure tableau generation maximizes [49].
  int Coverage(const Relation& relation) const;

  DependencyClass cls() const override { return DependencyClass::kCfd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  AttrSet lhs_;
  AttrSet rhs_;
  std::vector<PatternTuple> tableau_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_CFD_TABLEAU_H_
