#ifndef FAMTREE_DEPS_ECFD_H_
#define FAMTREE_DEPS_ECFD_H_

#include <string>

#include "deps/dependency.h"
#include "deps/pattern.h"

namespace famtree {

/// An extended conditional functional dependency (Section 2.5.5, [14]):
/// like a CFD, but pattern items may use any operator from
/// {=, !=, <, <=, >, >=}, substantially widening the conditions that can
/// be expressed (e.g. "rate <= 200, name = _ -> address = _").
class Ecfd : public Dependency {
 public:
  Ecfd(AttrSet lhs, AttrSet rhs, PatternTuple pattern)
      : lhs_(lhs), rhs_(rhs), pattern_(std::move(pattern)) {}

  AttrSet lhs() const { return lhs_; }
  AttrSet rhs() const { return rhs_; }
  const PatternTuple& pattern() const { return pattern_; }

  /// Number of tuples matching the LHS pattern.
  int Support(const Relation& relation) const;

  DependencyClass cls() const override { return DependencyClass::kEcfd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  AttrSet lhs_;
  AttrSet rhs_;
  PatternTuple pattern_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_ECFD_H_
