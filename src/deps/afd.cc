#include "deps/afd.h"

#include "common/strings.h"
#include "relation/partition.h"

namespace famtree {

double Afd::G3Error(const Relation& relation, AttrSet lhs, AttrSet rhs) {
  StrippedPartition x = StrippedPartition::ForAttributeSet(relation, lhs);
  return x.FdError(relation, rhs);
}

std::string Afd::ToString(const Schema* schema) const {
  return internal::AttrNames(schema, lhs_) + " ->_eps=" +
         FormatDouble(max_error_) + " " + internal::AttrNames(schema, rhs_);
}

Result<ValidationReport> Afd::Validate(const Relation& relation,
                                       int max_violations) const {
  int nc = relation.num_columns();
  if (!AttrSet::Full(nc).ContainsAll(lhs_.Union(rhs_))) {
    return Status::Invalid("AFD refers to attributes outside the schema");
  }
  if (max_error_ < 0.0 || max_error_ > 1.0) {
    return Status::Invalid("AFD error threshold must be in [0, 1]");
  }
  ValidationReport report;
  report.measure = G3Error(relation, lhs_, rhs_);
  report.holds = report.measure <= max_error_;
  if (!report.holds) {
    // Witnesses: non-plurality rows per violating group.
    for (const auto& group : relation.GroupBy(lhs_)) {
      if (group.size() < 2) continue;
      for (size_t j = 1; j < group.size(); ++j) {
        if (!relation.AgreeOn(group[0], group[j], rhs_)) {
          internal::RecordViolation(
              &report, max_violations,
              Violation{{group[0], group[j]}, "exception tuple under g3"});
          break;
        }
      }
    }
    report.holds = false;
  }
  return report;
}

}  // namespace famtree
