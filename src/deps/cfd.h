#ifndef FAMTREE_DEPS_CFD_H_
#define FAMTREE_DEPS_CFD_H_

#include <string>

#include "deps/dependency.h"
#include "deps/pattern.h"

namespace famtree {

/// A conditional functional dependency (X -> Y, t_p) (Section 2.5, [11]):
/// the embedded FD X -> Y holds on the subset of tuples matching the
/// pattern tuple t_p. Pattern items on X select the subset; constant items
/// on Y additionally pin the dependent value. CFD pattern items only use
/// equality against constants (eCFDs lift this, see ecfd.h).
///
/// Semantics (standard, Fan et al. [34]): for all tuples t1, t2 matching
/// t_p[X], t1[X] = t2[X] implies t1[Y] = t2[Y] and t1[Y], t2[Y] match
/// t_p[Y]. Constant RHS patterns therefore yield single-tuple violations.
class Cfd : public Dependency {
 public:
  Cfd(AttrSet lhs, AttrSet rhs, PatternTuple pattern)
      : lhs_(lhs), rhs_(rhs), pattern_(std::move(pattern)) {}

  AttrSet lhs() const { return lhs_; }
  AttrSet rhs() const { return rhs_; }
  const PatternTuple& pattern() const { return pattern_; }

  /// A constant CFD has constants on every LHS and RHS attribute
  /// (CFDMiner's target class).
  bool IsConstant() const;

  /// Number of tuples matching the LHS pattern — the support used by CFD
  /// discovery (Section 2.5.3).
  int Support(const Relation& relation) const;

  DependencyClass cls() const override { return DependencyClass::kCfd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  AttrSet lhs_;
  AttrSet rhs_;
  PatternTuple pattern_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_CFD_H_
