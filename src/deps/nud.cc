#include "deps/nud.h"

#include <algorithm>

namespace famtree {

namespace {

/// Distinct count of `attrs` projections inside `group`.
int DistinctWithin(const Relation& relation, const std::vector<int>& group,
                   AttrSet attrs) {
  std::vector<int> heads;
  for (int row : group) {
    bool found = false;
    for (int head : heads) {
      if (relation.AgreeOn(head, row, attrs)) {
        found = true;
        break;
      }
    }
    if (!found) heads.push_back(row);
  }
  return static_cast<int>(heads.size());
}

}  // namespace

int Nud::MaxFanout(const Relation& relation, AttrSet lhs, AttrSet rhs) {
  int max_fanout = 0;
  for (const auto& group : relation.GroupBy(lhs)) {
    max_fanout =
        std::max(max_fanout, DistinctWithin(relation, group, rhs));
  }
  return max_fanout;
}

std::string Nud::ToString(const Schema* schema) const {
  return internal::AttrNames(schema, lhs_) + " ->_k=" +
         std::to_string(weight_) + " " + internal::AttrNames(schema, rhs_);
}

Result<ValidationReport> Nud::Validate(const Relation& relation,
                                       int max_violations) const {
  int nc = relation.num_columns();
  if (!AttrSet::Full(nc).ContainsAll(lhs_.Union(rhs_))) {
    return Status::Invalid("NUD refers to attributes outside the schema");
  }
  if (weight_ < 1) return Status::Invalid("NUD weight must be >= 1");
  ValidationReport report;
  int max_fanout = 0;
  for (const auto& group : relation.GroupBy(lhs_)) {
    std::vector<int> heads;
    for (int row : group) {
      bool found = false;
      for (int head : heads) {
        if (relation.AgreeOn(head, row, rhs_)) {
          found = true;
          break;
        }
      }
      if (!found) heads.push_back(row);
    }
    max_fanout = std::max(max_fanout, static_cast<int>(heads.size()));
    if (static_cast<int>(heads.size()) > weight_) {
      internal::RecordViolation(
          &report, max_violations,
          Violation{heads, "X value maps to " + std::to_string(heads.size()) +
                               " > k distinct Y values"});
    }
  }
  report.measure = max_fanout;
  report.holds = report.violation_count == 0;
  return report;
}

}  // namespace famtree
