#ifndef FAMTREE_DEPS_CMD_H_
#define FAMTREE_DEPS_CMD_H_

#include <string>
#include <vector>

#include "deps/dependency.h"
#include "deps/md.h"
#include "deps/pattern.h"

namespace famtree {

/// A conditional matching dependency (Section 3.7.5, [110]): a matching
/// rule that only applies to the tuples matching a condition pattern —
/// CMDs extend MDs exactly as CFDs extend FDs. The g3-style error of a CMD
/// (minimum tuples to remove so it holds) drives its NP-complete discovery
/// problem; we expose the measure for the discovery module.
class Cmd : public Dependency {
 public:
  Cmd(PatternTuple condition, std::vector<SimilarityPredicate> lhs,
      AttrSet rhs)
      : condition_(std::move(condition)), md_(std::move(lhs), rhs) {}

  const PatternTuple& condition() const { return condition_; }
  const Md& embedded_md() const { return md_; }

  DependencyClass cls() const override { return DependencyClass::kCmd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  PatternTuple condition_;
  Md md_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_CMD_H_
