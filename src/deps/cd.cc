#include "deps/cd.h"

#include "common/strings.h"
#include "deps/dependency.h"

namespace famtree {

bool SimilarityFunction::Similar(const Relation& relation, int row1,
                                 int row2) const {
  const Value& a1 = relation.Get(row1, attr_i);
  const Value& a2 = relation.Get(row2, attr_i);
  const Value& b1 = relation.Get(row1, attr_j);
  const Value& b2 = relation.Get(row2, attr_j);
  auto within = [this](const Value& x, const Value& y, double t) {
    if (x.is_null() || y.is_null()) return false;
    return metric->Distance(x, y) <= t;
  };
  if (within(a1, a2, max_dist_ii)) return true;
  if (attr_i == attr_j) return false;
  if (within(a1, b2, max_dist_ij) || within(b1, a2, max_dist_ij)) return true;
  if (within(b1, b2, max_dist_jj)) return true;
  return false;
}

std::string SimilarityFunction::ToString(const Schema* schema) const {
  std::string ai = internal::AttrName(schema, attr_i);
  if (attr_i == attr_j) {
    return "theta(" + ai + ")[<=" + FormatDouble(max_dist_ii) + "]";
  }
  std::string aj = internal::AttrName(schema, attr_j);
  return "theta(" + ai + "," + aj + ")[" + ai + "~" + ai + "<=" +
         FormatDouble(max_dist_ii) + ", " + ai + "~" + aj + "<=" +
         FormatDouble(max_dist_ij) + ", " + aj + "~" + aj + "<=" +
         FormatDouble(max_dist_jj) + "]";
}

std::string Cd::ToString(const Schema* schema) const {
  std::string out;
  for (size_t i = 0; i < lhs_.size(); ++i) {
    if (i) out += " /\\ ";
    out += lhs_[i].ToString(schema);
  }
  return out + " -> " + rhs_.ToString(schema);
}

Result<ValidationReport> Cd::Validate(const Relation& relation,
                                      int max_violations) const {
  int nc = relation.num_columns();
  auto check = [nc](const SimilarityFunction& f) {
    if (f.attr_i < 0 || f.attr_i >= nc || f.attr_j < 0 || f.attr_j >= nc) {
      return Status::Invalid("CD refers to attributes outside the schema");
    }
    if (f.metric == nullptr) return Status::Invalid("CD metric missing");
    return Status::OK();
  };
  for (const auto& f : lhs_) FAMTREE_RETURN_NOT_OK(check(f));
  FAMTREE_RETURN_NOT_OK(check(rhs_));
  if (lhs_.empty()) return Status::Invalid("CD needs LHS functions");

  ValidationReport report;
  int n = relation.num_rows();
  int64_t lhs_pairs = 0, ok_pairs = 0;
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      bool all = true;
      for (const auto& f : lhs_) {
        if (!f.Similar(relation, i, j)) {
          all = false;
          break;
        }
      }
      if (!all) continue;
      ++lhs_pairs;
      if (rhs_.Similar(relation, i, j)) {
        ++ok_pairs;
      } else {
        internal::RecordViolation(
            &report, max_violations,
            Violation{{i, j},
                      "comparable on LHS functions but not on RHS"});
      }
    }
  }
  report.holds = report.violation_count == 0;
  report.measure =
      lhs_pairs == 0 ? 1.0 : static_cast<double>(ok_pairs) / lhs_pairs;
  return report;
}

}  // namespace famtree
