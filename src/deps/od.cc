#include "deps/od.h"

namespace famtree {

const char* OrderMarkSymbol(OrderMark mark) {
  switch (mark) {
    case OrderMark::kLeq: return "<=";
    case OrderMark::kLt: return "<";
    case OrderMark::kGeq: return ">=";
    case OrderMark::kGt: return ">";
  }
  return "?";
}

bool MarkedAttr::Holds(const Relation& relation, int i, int j) const {
  const Value& a = relation.Get(i, attr);
  const Value& b = relation.Get(j, attr);
  switch (mark) {
    case OrderMark::kLeq: return a <= b;
    case OrderMark::kLt: return a < b;
    case OrderMark::kGeq: return a >= b;
    case OrderMark::kGt: return a > b;
  }
  return false;
}

std::string MarkedAttr::ToString(const Schema* schema) const {
  return internal::AttrName(schema, attr) + "^" + OrderMarkSymbol(mark);
}

std::string Od::ToString(const Schema* schema) const {
  auto side = [schema](const std::vector<MarkedAttr>& mas) {
    std::string out;
    for (size_t i = 0; i < mas.size(); ++i) {
      if (i) out += ", ";
      out += mas[i].ToString(schema);
    }
    return out;
  };
  return side(lhs_) + " -> " + side(rhs_);
}

Result<ValidationReport> Od::Validate(const Relation& relation,
                                      int max_violations) const {
  int nc = relation.num_columns();
  auto check = [nc](const std::vector<MarkedAttr>& mas) {
    for (const auto& ma : mas) {
      if (ma.attr < 0 || ma.attr >= nc) {
        return Status::Invalid("OD refers to attributes outside the schema");
      }
    }
    return Status::OK();
  };
  FAMTREE_RETURN_NOT_OK(check(lhs_));
  FAMTREE_RETURN_NOT_OK(check(rhs_));
  if (lhs_.empty() || rhs_.empty()) {
    return Status::Invalid("OD needs non-empty sides");
  }
  ValidationReport report;
  int n = relation.num_rows();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      bool lhs_holds = true;
      for (const auto& ma : lhs_) {
        if (!ma.Holds(relation, i, j)) {
          lhs_holds = false;
          break;
        }
      }
      if (!lhs_holds) continue;
      for (const auto& ma : rhs_) {
        if (!ma.Holds(relation, i, j)) {
          internal::RecordViolation(
              &report, max_violations,
              Violation{{i, j}, "LHS ordering holds but RHS ordering "
                                "broken on " + ma.ToString(nullptr)});
          break;
        }
      }
    }
  }
  report.holds = report.violation_count == 0;
  return report;
}

}  // namespace famtree
