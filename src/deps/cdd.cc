#include "deps/cdd.h"

namespace famtree {

std::string Cdd::ToString(const Schema* schema) const {
  AttrSet cond_attrs;
  for (const auto& it : condition_.items()) cond_attrs.Add(it.attr);
  std::string cond = condition_.empty()
                         ? "(true)"
                         : condition_.ToString(schema, cond_attrs);
  return cond + " : " + DifferentialFunctionsToString(lhs_, schema) + " -> " +
         DifferentialFunctionsToString(rhs_, schema);
}

Result<ValidationReport> Cdd::Validate(const Relation& relation,
                                       int max_violations) const {
  FAMTREE_RETURN_NOT_OK(CheckDifferentialFunctions(lhs_, relation, "CDD"));
  FAMTREE_RETURN_NOT_OK(CheckDifferentialFunctions(rhs_, relation, "CDD"));
  if (rhs_.empty()) return Status::Invalid("CDD needs a dependent function");
  for (const auto& it : condition_.items()) {
    if (it.attr < 0 || it.attr >= relation.num_columns()) {
      return Status::Invalid("CDD condition outside the schema");
    }
  }
  AttrSet all = AttrSet::Full(relation.num_columns());
  // Restrict to tuples matching the condition pattern, then run DD logic.
  std::vector<int> matching;
  for (int row = 0; row < relation.num_rows(); ++row) {
    if (condition_.Matches(relation, row, all)) matching.push_back(row);
  }
  ValidationReport report;
  int64_t lhs_pairs = 0, ok_pairs = 0;
  for (size_t a = 0; a + 1 < matching.size(); ++a) {
    for (size_t b = a + 1; b < matching.size(); ++b) {
      int i = matching[a], j = matching[b];
      if (!AllSatisfied(lhs_, relation, i, j)) continue;
      ++lhs_pairs;
      if (AllSatisfied(rhs_, relation, i, j)) {
        ++ok_pairs;
      } else {
        internal::RecordViolation(
            &report, max_violations,
            Violation{{i, j},
                      "pair under condition satisfies LHS ranges but not "
                      "RHS"});
      }
    }
  }
  report.holds = report.violation_count == 0;
  report.measure =
      lhs_pairs == 0 ? 1.0 : static_cast<double>(ok_pairs) / lhs_pairs;
  return report;
}

}  // namespace famtree
