#ifndef FAMTREE_DEPS_FD_H_
#define FAMTREE_DEPS_FD_H_

#include <string>

#include "deps/dependency.h"

namespace famtree {

/// A classical functional dependency X -> Y (Section 1.1): any two tuples
/// equal on X must be equal on Y. The root of the family tree.
class Fd : public Dependency {
 public:
  Fd(AttrSet lhs, AttrSet rhs) : lhs_(lhs), rhs_(rhs) {}

  AttrSet lhs() const { return lhs_; }
  AttrSet rhs() const { return rhs_; }

  DependencyClass cls() const override { return DependencyClass::kFd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

  friend bool operator==(const Fd& a, const Fd& b) {
    return a.lhs_ == b.lhs_ && a.rhs_ == b.rhs_;
  }
  friend bool operator<(const Fd& a, const Fd& b) {
    if (a.lhs_ != b.lhs_) return a.lhs_ < b.lhs_;
    return a.rhs_ < b.rhs_;
  }

 private:
  AttrSet lhs_;
  AttrSet rhs_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_FD_H_
