#ifndef FAMTREE_DEPS_DIFFERENTIAL_H_
#define FAMTREE_DEPS_DIFFERENTIAL_H_

#include <limits>
#include <string>
#include <vector>

#include "metric/metric.h"
#include "relation/relation.h"

namespace famtree {

/// A closed interval of metric distances. Differential dependencies
/// (Section 3.3) constrain tuple-pair distances to such ranges; "similar"
/// semantics use [0, d], "dissimilar" semantics use [d, +inf).
struct DistRange {
  double min = 0.0;
  double max = std::numeric_limits<double>::infinity();

  static DistRange AtMost(double d) { return DistRange{0.0, d}; }
  static DistRange AtLeast(double d) {
    return DistRange{d, std::numeric_limits<double>::infinity()};
  }
  static DistRange Exactly(double d) { return DistRange{d, d}; }
  static DistRange Between(double lo, double hi) { return DistRange{lo, hi}; }
  static DistRange Any() { return DistRange{}; }

  bool Contains(double d) const { return d >= min && d <= max; }

  /// "(<=5)", "(>=10)", "[2,7]" — the paper's differential function syntax.
  std::string ToString() const;

  friend bool operator==(const DistRange& a, const DistRange& b) {
    return a.min == b.min && a.max == b.max;
  }
};

/// A differential function phi[A] (Section 3.3.1): attribute + metric +
/// distance range. Two tuples are "compatible w.r.t. phi[A]" when their
/// metric distance on A falls inside the range.
struct DifferentialFunction {
  int attr = 0;
  MetricPtr metric;
  DistRange range;

  DifferentialFunction() = default;
  DifferentialFunction(int attr_in, MetricPtr metric_in, DistRange range_in)
      : attr(attr_in), metric(std::move(metric_in)), range(range_in) {}

  /// Convenience for the common "similar" case (distance <= threshold)
  /// with the column's default metric chosen at validation time.
  static DifferentialFunction Similar(int attr, MetricPtr metric,
                                      double threshold) {
    return DifferentialFunction(attr, std::move(metric),
                                DistRange::AtMost(threshold));
  }

  double DistanceBetween(const Relation& relation, int i, int j) const {
    return metric->Distance(relation.Get(i, attr), relation.Get(j, attr));
  }

  bool Satisfied(const Relation& relation, int i, int j) const {
    return range.Contains(DistanceBetween(relation, i, j));
  }

  std::string ToString(const Schema* schema) const;
};

/// True iff the pair (i, j) satisfies every differential function.
bool AllSatisfied(const std::vector<DifferentialFunction>& fns,
                  const Relation& relation, int i, int j);

/// Renders "name(<=1), street(<=5)".
std::string DifferentialFunctionsToString(
    const std::vector<DifferentialFunction>& fns, const Schema* schema);

/// Validates attrs are inside the schema and metrics are set.
Status CheckDifferentialFunctions(
    const std::vector<DifferentialFunction>& fns, const Relation& relation,
    const char* what);

}  // namespace famtree

#endif  // FAMTREE_DEPS_DIFFERENTIAL_H_
