#include "deps/mvd.h"

#include <cstdint>
#include <set>
#include <unordered_set>
#include <utility>

namespace famtree {

namespace {

/// Assigns each row of `group` an id for its projection onto `attrs`
/// (ids are dense, 0-based, in first-occurrence order). Returns the heads.
std::vector<int> AssignIds(const Relation& relation,
                           const std::vector<int>& group, AttrSet attrs,
                           std::vector<int>* ids) {
  std::vector<int> heads;
  ids->resize(group.size());
  for (size_t i = 0; i < group.size(); ++i) {
    int row = group[i];
    int found = -1;
    for (size_t h = 0; h < heads.size(); ++h) {
      if (relation.AgreeOn(heads[h], row, attrs)) {
        found = static_cast<int>(h);
        break;
      }
    }
    if (found < 0) {
      found = static_cast<int>(heads.size());
      heads.push_back(row);
    }
    (*ids)[i] = found;
  }
  return heads;
}

}  // namespace

double Mvd::SpuriousTupleRatio(const Relation& relation, AttrSet lhs,
                               AttrSet rhs) {
  AttrSet z = AttrSet::Full(relation.num_columns()).Minus(lhs).Minus(rhs);
  long long join_size = 0;
  long long actual = 0;
  for (const auto& group : relation.GroupBy(lhs)) {
    std::vector<int> y_ids, z_ids;
    std::vector<int> y_heads = AssignIds(relation, group, rhs, &y_ids);
    std::vector<int> z_heads = AssignIds(relation, group, z, &z_ids);
    std::set<std::pair<int, int>> combos;
    for (size_t i = 0; i < group.size(); ++i) {
      combos.insert({y_ids[i], z_ids[i]});
    }
    join_size += static_cast<long long>(y_heads.size()) * z_heads.size();
    actual += static_cast<long long>(combos.size());
  }
  if (join_size == 0) return 0.0;
  return static_cast<double>(join_size - actual) / join_size;
}

double Mvd::SpuriousTupleRatio(const EncodedRelation& encoded, AttrSet lhs,
                               AttrSet rhs) {
  AttrSet z = AttrSet::Full(encoded.num_columns()).Minus(lhs).Minus(rhs);
  std::vector<uint32_t> y_keys, z_keys;
  encoded.RowKeys(rhs, &y_keys);
  uint64_t z_stride = static_cast<uint64_t>(encoded.RowKeys(z, &z_keys));
  long long join_size = 0;
  long long actual = 0;
  std::unordered_set<uint32_t> ys, zs;
  std::unordered_set<uint64_t> combos;
  for (const auto& group : encoded.GroupBy(lhs)) {
    ys.clear();
    zs.clear();
    combos.clear();
    for (int row : group) {
      ys.insert(y_keys[row]);
      zs.insert(z_keys[row]);
      combos.insert(static_cast<uint64_t>(y_keys[row]) * z_stride +
                    z_keys[row]);
    }
    join_size += static_cast<long long>(ys.size()) * zs.size();
    actual += static_cast<long long>(combos.size());
  }
  if (join_size == 0) return 0.0;
  return static_cast<double>(join_size - actual) / join_size;
}

std::string Mvd::ToString(const Schema* schema) const {
  return internal::AttrNames(schema, lhs_) + " ->> " +
         internal::AttrNames(schema, rhs_);
}

Result<ValidationReport> Mvd::Validate(const Relation& relation,
                                       int max_violations) const {
  int nc = relation.num_columns();
  if (!AttrSet::Full(nc).ContainsAll(lhs_.Union(rhs_))) {
    return Status::Invalid("MVD refers to attributes outside the schema");
  }
  if (lhs_.Intersects(rhs_)) {
    return Status::Invalid("MVD LHS and RHS must be disjoint");
  }
  AttrSet z = AttrSet::Full(nc).Minus(lhs_).Minus(rhs_);
  ValidationReport report;
  for (const auto& group : relation.GroupBy(lhs_)) {
    std::vector<int> y_ids, z_ids;
    std::vector<int> y_heads = AssignIds(relation, group, rhs_, &y_ids);
    std::vector<int> z_heads = AssignIds(relation, group, z, &z_ids);
    if (y_heads.size() <= 1 || z_heads.size() <= 1) continue;
    std::set<std::pair<int, int>> combos;
    for (size_t i = 0; i < group.size(); ++i) {
      combos.insert({y_ids[i], z_ids[i]});
    }
    if (combos.size() ==
        y_heads.size() * z_heads.size()) {
      continue;
    }
    // Missing combos: find a witness pair for each.
    for (size_t yi = 0; yi < y_heads.size(); ++yi) {
      for (size_t zi = 0; zi < z_heads.size(); ++zi) {
        if (combos.count({static_cast<int>(yi), static_cast<int>(zi)})) {
          continue;
        }
        internal::RecordViolation(
            &report, max_violations,
            Violation{{y_heads[yi], z_heads[zi]},
                      "no tuple combines the first tuple's Y values with "
                      "the second tuple's Z values under this X value"});
      }
    }
  }
  report.holds = report.violation_count == 0;
  report.measure = SpuriousTupleRatio(relation, lhs_, rhs_);
  return report;
}

std::string Amvd::ToString(const Schema* schema) const {
  return internal::AttrNames(schema, lhs_) + " ->>_eps=" +
         std::to_string(epsilon_) + " " + internal::AttrNames(schema, rhs_);
}

Result<ValidationReport> Amvd::Validate(const Relation& relation,
                                        int max_violations) const {
  if (epsilon_ < 0.0 || epsilon_ > 1.0) {
    return Status::Invalid("AMVD epsilon must be in [0, 1]");
  }
  Mvd exact(lhs_, rhs_);
  FAMTREE_ASSIGN_OR_RETURN(ValidationReport report,
                           exact.Validate(relation, max_violations));
  // The AMVD tolerates spurious-tuple ratio up to epsilon.
  report.holds = report.measure <= epsilon_;
  return report;
}

}  // namespace famtree
