#ifndef FAMTREE_DEPS_MVD_H_
#define FAMTREE_DEPS_MVD_H_

#include <string>

#include "deps/dependency.h"
#include "relation/encoded_relation.h"

namespace famtree {

/// A multivalued dependency X ->> Y (Section 2.6, [30]); Z is the rest of
/// the schema. The instance satisfies the MVD iff r = pi_XY(r) |><| pi_XZ(r),
/// i.e. within each X-group the Y values and Z values vary independently.
/// MVDs are tuple-generating: a violation is a pair (t1, t2) in the same
/// X-group such that no tuple combines t1's Y values with t2's Z values.
class Mvd : public Dependency {
 public:
  /// `rhs` is Y; Z is implicitly schema minus X minus Y at validation time.
  Mvd(AttrSet lhs, AttrSet rhs) : lhs_(lhs), rhs_(rhs) {}

  AttrSet lhs() const { return lhs_; }
  AttrSet rhs() const { return rhs_; }

  /// Fraction of spurious tuples that joining pi_XY and pi_XZ would
  /// introduce: 0 iff the MVD holds exactly (the AMVD accuracy measure).
  static double SpuriousTupleRatio(const Relation& relation, AttrSet lhs,
                                   AttrSet rhs);

  /// Encoded fast path: distinct Y / Z / (Y, Z) projections are counted
  /// over dense row keys instead of quadratic AgreeOn scans. All
  /// accumulators are integers, so the ratio is bit-identical to the Value
  /// overload.
  static double SpuriousTupleRatio(const EncodedRelation& encoded,
                                   AttrSet lhs, AttrSet rhs);

  DependencyClass cls() const override { return DependencyClass::kMvd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  AttrSet lhs_;
  AttrSet rhs_;
};

/// An approximate MVD (Section 2.6.6, [59]): the MVD may introduce at most
/// an `epsilon` fraction of spurious tuples when the relation is decomposed
/// and re-joined. AMVDs with epsilon = 0 are exactly MVDs.
class Amvd : public Dependency {
 public:
  Amvd(AttrSet lhs, AttrSet rhs, double epsilon)
      : lhs_(lhs), rhs_(rhs), epsilon_(epsilon) {}

  AttrSet lhs() const { return lhs_; }
  AttrSet rhs() const { return rhs_; }
  double epsilon() const { return epsilon_; }

  DependencyClass cls() const override { return DependencyClass::kAmvd; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  AttrSet lhs_;
  AttrSet rhs_;
  double epsilon_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_MVD_H_
