#ifndef FAMTREE_DEPS_NUD_H_
#define FAMTREE_DEPS_NUD_H_

#include <string>

#include "deps/dependency.h"

namespace famtree {

/// A numerical dependency X ->_k Y (Section 2.4, [50]): every X value is
/// associated with at most k distinct Y values. An FD is exactly a NUD
/// with k = 1.
class Nud : public Dependency {
 public:
  Nud(AttrSet lhs, AttrSet rhs, int weight)
      : lhs_(lhs), rhs_(rhs), weight_(weight) {}

  AttrSet lhs() const { return lhs_; }
  AttrSet rhs() const { return rhs_; }
  int weight() const { return weight_; }

  /// The largest number of distinct Y values associated with one X value —
  /// the smallest k for which the NUD holds.
  static int MaxFanout(const Relation& relation, AttrSet lhs, AttrSet rhs);

  DependencyClass cls() const override { return DependencyClass::kNud; }
  std::string ToString(const Schema* schema = nullptr) const override;
  Result<ValidationReport> Validate(const Relation& relation,
                                    int max_violations) const override;

 private:
  AttrSet lhs_;
  AttrSet rhs_;
  int weight_;
};

}  // namespace famtree

#endif  // FAMTREE_DEPS_NUD_H_
