#ifndef FAMTREE_CORE_EMBEDDINGS_H_
#define FAMTREE_CORE_EMBEDDINGS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/family_tree.h"
#include "deps/afd.h"
#include "deps/cd.h"
#include "deps/cdd.h"
#include "deps/cfd.h"
#include "deps/cmd.h"
#include "deps/dc.h"
#include "deps/dd.h"
#include "deps/dependency.h"
#include "deps/ecfd.h"
#include "deps/fd.h"
#include "deps/ffd.h"
#include "deps/fhd.h"
#include "deps/md.h"
#include "deps/mfd.h"
#include "deps/mvd.h"
#include "deps/ned.h"
#include "deps/nud.h"
#include "deps/od.h"
#include "deps/ofd.h"
#include "deps/pac.h"
#include "deps/pfd.h"
#include "deps/sd.h"
#include "deps/sfd.h"

namespace famtree {

/// Typed special-case converters: each function realizes one arrow of
/// Fig. 1 by embedding a parent-class dependency into the child class at
/// the boundary setting the paper names (s = 1, eps = 0, empty condition,
/// ...). Converters returning Result reject inputs outside the special
/// case they implement.

Sfd SfdFromFd(const Fd& fd);                       // s = 1 (S2.1.2)
Pfd PfdFromFd(const Fd& fd);                       // p = 1 (S2.2.2)
Afd AfdFromFd(const Fd& fd);                       // eps = 0 (S2.3.2)
Nud NudFromFd(const Fd& fd);                       // k = 1 (S2.4.2)
Cfd CfdFromFd(const Fd& fd);                       // wildcard t_p (S2.5.2)
Ecfd EcfdFromCfd(const Cfd& cfd);                  // '=' ops only (S2.5.5)
/// Requires disjoint LHS/RHS. Implication, not equivalence (S2.6.2).
Result<Mvd> MvdFromFd(const Fd& fd);
Fhd FhdFromMvd(const Mvd& mvd);                    // one block (S2.6.5)
Amvd AmvdFromMvd(const Mvd& mvd);                  // eps = 0 (S2.6.6)
Mfd MfdFromFd(const Fd& fd);                       // delta = 0 (S3.1.2)
Ned NedFromMfd(const Mfd& mfd);                    // zero LHS thr (S3.2.2)
Dd DdFromNed(const Ned& ned);                      // [0, d] ranges (S3.3.2)
Cdd CddFromDd(const Dd& dd);                       // empty cond (S3.3.5)
/// Requires a wildcard RHS pattern (constant-RHS CFDs have single-tuple
/// semantics a CDD condition cannot express).
Result<Cdd> CddFromCfd(const Cfd& cfd);
/// Requires exactly one RHS predicate (a CD has a single RHS function).
Result<Cd> CdFromNed(const Ned& ned);
Pac PacFromNed(const Ned& ned);                    // delta = 1 (S3.5.2)
Ffd FfdFromFd(const Fd& fd);                       // crisp EQUAL (S3.6.2)
Md MdFromFd(const Fd& fd);                         // identity ~ (S3.7.2)
Cmd CmdFromMd(const Md& md);                       // empty cond (S3.7.5)
Od OdFromOfd(const Ofd& ofd);                      // all '<=' (S4.2.2)
/// Requires a single RHS marked attribute (one DC per RHS mark otherwise).
Result<Dc> DcFromOd(const Od& od);
/// Requires a single RHS attribute and wildcard RHS pattern.
Result<Dc> DcFromEcfd(const Ecfd& ecfd);
/// Requires lhs mark '<=' and a single RHS mark on another attribute;
/// exact on relations whose order attribute has distinct values (S4.4.2).
Result<Sd> SdFromOd(const Od& od);
Csd CsdFromSd(const Sd& sd);                       // full-range row (S4.4.5)

/// --- Property-test harness -------------------------------------------

/// What the equivalence check needs from test relations.
enum class EdgeDataNeed {
  /// Any mix of value types works.
  kAny,
  /// Numeric columns only (order/gap semantics).
  kNumeric,
  /// Numeric columns and distinct values in column 0 (consecutive-pair
  /// semantics of SDs vs all-pairs semantics of ODs).
  kUniqueNumericFirstColumn,
};

/// A randomly generated (parent, child) instance pair for one edge.
struct EmbeddedPair {
  DependencyPtr parent;
  DependencyPtr child;
};

/// Generates a random parent dependency over `relation`'s schema together
/// with its embedded child special case.
using EmbeddingGenerator =
    std::function<EmbeddedPair(Rng& rng, const Relation& relation)>;

/// One checkable edge of Fig. 1: for random relations (matching `need`)
/// and random instances, parent.Holds == child.Holds when `kind` is
/// equivalence, and parent.Holds implies child.Holds otherwise.
struct CheckableEdge {
  DependencyClass from;
  DependencyClass to;
  EdgeKind kind;
  EdgeDataNeed need;
  EmbeddingGenerator generate;
};

/// All 24 edges of the family tree with their generators. The fig1 bench
/// and tests/family_tree_property_test.cc iterate this.
const std::vector<CheckableEdge>& AllCheckableEdges();

}  // namespace famtree

#endif  // FAMTREE_CORE_EMBEDDINGS_H_
