#include "core/family_tree.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"

namespace famtree {

namespace {
using DC = DependencyClass;
}  // namespace

FamilyTree::FamilyTree() {
  auto eq = EdgeKind::kSpecialCaseEquivalence;
  auto impl = EdgeKind::kImplication;
  edges_ = {
      // Categorical branch (Section 2).
      {DC::kFd, DC::kSfd, eq, "FDs are SFDs with strength s = 1 (S2.1.2)"},
      {DC::kFd, DC::kPfd, eq, "FDs are PFDs with probability p = 1 (S2.2.2)"},
      {DC::kFd, DC::kAfd, eq, "FDs are AFDs with error eps = 0 (S2.3.2)"},
      {DC::kFd, DC::kNud, eq, "FDs are NUDs with weight k = 1 (S2.4.2)"},
      {DC::kFd, DC::kCfd, eq,
       "FDs are CFDs whose pattern tuple has no constants (S2.5.2)"},
      {DC::kCfd, DC::kEcfd, eq,
       "CFDs are eCFDs restricted to '=' pattern operators (S2.5.5)"},
      {DC::kFd, DC::kMvd, impl,
       "every FD X -> Y is an MVD X ->> Y; the converse fails (S2.6.2)"},
      {DC::kMvd, DC::kFhd, eq, "MVDs are FHDs with a single block (S2.6.5)"},
      {DC::kMvd, DC::kAmvd, eq,
       "MVDs are AMVDs with accuracy eps = 0 (S2.6.6)"},
      // Heterogeneous branch (Section 3).
      {DC::kFd, DC::kMfd, eq, "FDs are MFDs with delta = 0 (S3.1.2)"},
      {DC::kMfd, DC::kNed, eq,
       "MFDs are NEDs with zero LHS distance thresholds (S3.2.2)"},
      {DC::kNed, DC::kDd, eq,
       "NEDs are DDs with 'similar' ([0, d]) ranges only (S3.3.2)"},
      {DC::kDd, DC::kCdd, eq, "DDs are CDDs with an empty condition (S3.3.5)"},
      {DC::kCfd, DC::kCdd, eq,
       "CFDs are CDDs with discrete metrics and zero ranges (S3.3.5)"},
      {DC::kNed, DC::kCd, eq,
       "NEDs are CDs whose similarity functions compare an attribute with "
       "itself (S3.4.2)"},
      {DC::kNed, DC::kPac, eq,
       "NEDs are PACs with confidence delta = 1 (S3.5.2)"},
      {DC::kFd, DC::kFfd, eq,
       "FDs are FFDs under crisp resemblance relations (S3.6.2)"},
      {DC::kFd, DC::kMd, eq,
       "FDs are MDs whose similarity operators demand identity (S3.7.2)"},
      {DC::kMd, DC::kCmd, eq, "MDs are CMDs with an empty condition (S3.7.5)"},
      // Numerical branch (Section 4).
      {DC::kOfd, DC::kOd, eq,
       "OFDs are ODs with all marks '<=' (S4.2.2)"},
      {DC::kOd, DC::kDc, eq,
       "ODs rewrite as DCs denying the broken ordering (S4.3.2)"},
      {DC::kEcfd, DC::kDc, eq,
       "eCFDs rewrite as DCs with equality and constant predicates "
       "(S4.3.3)"},
      {DC::kOd, DC::kSd, eq,
       "ODs are SDs with one-sided gap intervals (S4.4.2)"},
      {DC::kSd, DC::kCsd, eq,
       "SDs are CSDs whose tableau holds the full range (S4.4.5)"},
  };
}

const FamilyTree& FamilyTree::Get() {
  static const FamilyTree& tree = *new FamilyTree();
  return tree;
}

std::vector<DependencyClass> FamilyTree::Parents(DependencyClass cls) const {
  std::vector<DependencyClass> out;
  for (const auto& e : edges_) {
    if (e.to == cls) out.push_back(e.from);
  }
  return out;
}

std::vector<DependencyClass> FamilyTree::Children(DependencyClass cls) const {
  std::vector<DependencyClass> out;
  for (const auto& e : edges_) {
    if (e.from == cls) out.push_back(e.to);
  }
  return out;
}

bool FamilyTree::Subsumes(DependencyClass descendant,
                          DependencyClass ancestor) const {
  if (descendant == ancestor) return true;
  // BFS over extension edges from ancestor towards descendants.
  std::set<DependencyClass> seen{ancestor};
  std::vector<DependencyClass> frontier{ancestor};
  while (!frontier.empty()) {
    std::vector<DependencyClass> next;
    for (DependencyClass c : frontier) {
      for (DependencyClass child : Children(c)) {
        if (child == descendant) return true;
        if (seen.insert(child).second) next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  return false;
}

std::vector<DependencyClass> FamilyTree::Generalizations(
    DependencyClass cls) const {
  std::vector<DependencyClass> out;
  for (DependencyClass c : AllDependencyClasses()) {
    if (c != cls && Subsumes(c, cls)) out.push_back(c);
  }
  return out;
}

std::vector<DependencyClass> FamilyTree::TimelineOrder() const {
  std::vector<DependencyClass> order = AllDependencyClasses();
  std::sort(order.begin(), order.end(), [](DependencyClass a,
                                           DependencyClass b) {
    const ClassInfo& ia = GetClassInfo(a);
    const ClassInfo& ib = GetClassInfo(b);
    if (ia.year != ib.year) return ia.year < ib.year;
    return std::string(DependencyClassAcronym(a)) <
           std::string(DependencyClassAcronym(b));
  });
  return order;
}

std::vector<DependencyClass> FamilyTree::Suggest(
    const std::vector<DataCategory>& categories, Application task) const {
  // A class qualifies when it (or a class it subsumes) is registered for
  // the task, and its own category — or a subsumed class's category —
  // covers every requested data category. Following the paper's intro
  // example, DCs qualify for repairing over categorical + numerical data
  // because they subsume eCFDs (categorical) and ODs (numerical).
  std::vector<DependencyClass> out;
  for (DependencyClass c : AllDependencyClasses()) {
    const ClassInfo& info = GetClassInfo(c);
    bool supports_task =
        std::find(info.applications.begin(), info.applications.end(), task) !=
        info.applications.end();
    if (!supports_task) continue;
    // Categories covered by c itself or anything c subsumes.
    std::set<DataCategory> covered{info.category};
    for (DependencyClass other : AllDependencyClasses()) {
      if (other != c && Subsumes(c, other)) {
        covered.insert(GetClassInfo(other).category);
      }
    }
    bool all = true;
    for (DataCategory want : categories) {
      if (!covered.count(want)) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(c);
  }
  return out;
}

std::string FamilyTree::RenderAscii() const {
  // Roots: classes that extend nothing.
  std::string out = "Family tree of data dependency extensions (Fig. 1A)\n";
  out += "an edge A --> B means: B extends/generalizes/subsumes A\n\n";
  // Render as indented forest via DFS from roots; nodes with multiple
  // parents appear under each parent (the tree is a DAG).
  std::vector<DependencyClass> roots;
  for (DependencyClass c : AllDependencyClasses()) {
    if (Parents(c).empty()) roots.push_back(c);
  }
  std::sort(roots.begin(), roots.end(), [](DependencyClass a,
                                           DependencyClass b) {
    return GetClassInfo(a).year < GetClassInfo(b).year;
  });
  struct Frame {
    DependencyClass cls;
    int depth;
  };
  for (DependencyClass root : roots) {
    std::vector<Frame> stack{{root, 0}};
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      const ClassInfo& info = GetClassInfo(f.cls);
      for (int i = 0; i < f.depth; ++i) out += "  ";
      if (f.depth > 0) out += "+-> ";
      out += DependencyClassAcronym(f.cls);
      out += "  (" + std::to_string(info.year) + ", " +
             DataCategoryName(info.category) + ", " +
             std::to_string(info.publications) + " pubs)\n";
      std::vector<DependencyClass> kids = Children(f.cls);
      std::sort(kids.rbegin(), kids.rend(), [](DependencyClass a,
                                               DependencyClass b) {
        return GetClassInfo(a).year < GetClassInfo(b).year;
      });
      for (DependencyClass k : kids) stack.push_back({k, f.depth + 1});
    }
    out += "\n";
  }
  return out;
}

std::string FamilyTree::RenderTimeline() const {
  std::string out = "Timeline of data dependency proposals (Fig. 2)\n\n";
  std::map<int, std::vector<DependencyClass>> by_year;
  for (DependencyClass c : AllDependencyClasses()) {
    by_year[GetClassInfo(c).year].push_back(c);
  }
  for (const auto& [year, classes] : by_year) {
    out += std::to_string(year) + "  ";
    std::vector<std::string> names;
    for (DependencyClass c : classes) {
      names.push_back(DependencyClassAcronym(c));
    }
    std::sort(names.begin(), names.end());
    out += Join(names, ", ");
    out += "\n";
  }
  return out;
}

}  // namespace famtree
