#include "core/rule_parser.h"

#include <cmath>

#include "common/strings.h"
#include "deps/afd.h"
#include "deps/cfd.h"
#include "deps/dc.h"
#include "deps/dd.h"
#include "deps/ecfd.h"
#include "deps/fd.h"
#include "deps/md.h"
#include "deps/mfd.h"
#include "deps/mvd.h"
#include "deps/ned.h"
#include "deps/nud.h"
#include "deps/od.h"
#include "deps/ofd.h"
#include "deps/pfd.h"
#include "deps/sd.h"
#include "deps/sfd.h"
#include "metric/metric.h"

namespace famtree {

namespace {

Status Bad(const std::string& what, const std::string& line) {
  return Status::Invalid(what + " in rule: " + line);
}

/// Column-default metric.
MetricPtr MetricFor(const Schema& schema, int attr) {
  return DefaultMetricFor(schema.column(attr).type);
}

Result<int> ResolveAttr(const Schema& schema, std::string_view name) {
  return schema.IndexOf(std::string(Trim(name)));
}

/// Splits "a, b, c" into attribute indices.
Result<AttrSet> ParseAttrList(const std::string& text, const Schema& schema) {
  AttrSet out;
  for (const std::string& part : Split(text, ',')) {
    if (Trim(part).empty()) return Status::Invalid("empty attribute name");
    FAMTREE_ASSIGN_OR_RETURN(int attr, ResolveAttr(schema, part));
    out.Add(attr);
  }
  if (out.empty()) return Status::Invalid("empty attribute list");
  return out;
}

/// Splits on `sep` at nesting depth zero w.r.t. (), [] and quotes.
std::vector<std::string> SplitTop(const std::string& text,
                                  const std::string& sep) {
  std::vector<std::string> out;
  int depth = 0;
  bool quoted = false;
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (quoted) {
      if (c == '\'') quoted = false;
      continue;
    }
    if (c == '\'') quoted = true;
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
    if (depth == 0 && text.compare(i, sep.size(), sep) == 0) {
      out.push_back(text.substr(start, i - start));
      start = i + sep.size();
      i += sep.size() - 1;
    }
  }
  out.push_back(text.substr(start));
  return out;
}

/// Parses "head(arg)" or "head[lo,hi]" returning head and the bracket
/// contents; arg empty when absent.
void SplitHead(const std::string& head, std::string* name, std::string* arg,
               char open = '(', char close = ')') {
  size_t pos = head.find(open);
  if (pos == std::string::npos || head.back() != close) {
    *name = std::string(Trim(head));
    arg->clear();
    return;
  }
  *name = std::string(Trim(head.substr(0, pos)));
  *arg = head.substr(pos + 1, head.size() - pos - 2);
}

Result<double> ParseNumber(const std::string& text) {
  std::string t(Trim(text));
  if (t == "inf") return std::numeric_limits<double>::infinity();
  if (t == "-inf") return -std::numeric_limits<double>::infinity();
  double v;
  if (!ParseDouble(t, &v)) return Status::Invalid("bad number '" + t + "'");
  return v;
}

/// "attr(<=5)" / "attr(>=2)" / "attr([1,3])" / "attr((=4))" — the
/// differential-function item of DDs.
Result<DifferentialFunction> ParseDiffFn(const std::string& text,
                                         const Schema& schema) {
  size_t open = text.find('(');
  if (open == std::string::npos || text.back() != ')') {
    return Status::Invalid("expected attr(range) in '" + text + "'");
  }
  FAMTREE_ASSIGN_OR_RETURN(int attr,
                           ResolveAttr(schema, text.substr(0, open)));
  std::string range(Trim(text.substr(open + 1, text.size() - open - 2)));
  DistRange r;
  if (StartsWith(range, "<=")) {
    FAMTREE_ASSIGN_OR_RETURN(double v, ParseNumber(range.substr(2)));
    r = DistRange::AtMost(v);
  } else if (StartsWith(range, ">=")) {
    FAMTREE_ASSIGN_OR_RETURN(double v, ParseNumber(range.substr(2)));
    r = DistRange::AtLeast(v);
  } else if (StartsWith(range, "=")) {
    FAMTREE_ASSIGN_OR_RETURN(double v, ParseNumber(range.substr(1)));
    r = DistRange::Exactly(v);
  } else if (StartsWith(range, "[") && EndsWith(range, "]")) {
    auto parts = Split(range.substr(1, range.size() - 2), ',');
    if (parts.size() != 2) return Status::Invalid("bad range " + range);
    FAMTREE_ASSIGN_OR_RETURN(double lo, ParseNumber(parts[0]));
    FAMTREE_ASSIGN_OR_RETURN(double hi, ParseNumber(parts[1]));
    r = DistRange::Between(lo, hi);
  } else {
    return Status::Invalid("bad range '" + range + "'");
  }
  return DifferentialFunction(attr, MetricFor(schema, attr), r);
}

/// Value literal: 'quoted string', integer, or double.
Result<Value> ParseValueLiteral(const std::string& text) {
  std::string t(Trim(text));
  if (t.size() >= 2 && t.front() == '\'' && t.back() == '\'') {
    return Value(t.substr(1, t.size() - 2));
  }
  long long iv;
  if (ParseInt64(t, &iv)) return Value(static_cast<int64_t>(iv));
  double dv;
  if (ParseDouble(t, &dv)) return Value(dv);
  return Status::Invalid("bad value literal '" + t + "'");
}

/// Finds the longest comparison operator at the current split point.
Result<CmpOp> ParseOp(const std::string& op) {
  if (op == "=") return CmpOp::kEq;
  if (op == "!=") return CmpOp::kNeq;
  if (op == "<") return CmpOp::kLt;
  if (op == "<=") return CmpOp::kLe;
  if (op == ">") return CmpOp::kGt;
  if (op == ">=") return CmpOp::kGe;
  return Status::Invalid("bad operator '" + op + "'");
}

/// One CFD/eCFD pattern item: "attr=_", "attr='v'", "attr<=200", ...
Result<PatternItem> ParsePatternItem(const std::string& text,
                                     const Schema& schema) {
  // Find the operator (longest match first).
  static const char* kOps[] = {"<=", ">=", "!=", "=", "<", ">"};
  for (const char* op : kOps) {
    size_t pos = text.find(op);
    if (pos == std::string::npos) continue;
    FAMTREE_ASSIGN_OR_RETURN(int attr,
                             ResolveAttr(schema, text.substr(0, pos)));
    std::string rhs(Trim(text.substr(pos + std::string(op).size())));
    if (rhs == "_") return PatternItem::Wildcard(attr);
    FAMTREE_ASSIGN_OR_RETURN(CmpOp cmp, ParseOp(op));
    FAMTREE_ASSIGN_OR_RETURN(Value v, ParseValueLiteral(rhs));
    return PatternItem::Const(attr, std::move(v), cmp);
  }
  return Status::Invalid("bad pattern item '" + text + "'");
}

/// "[item, item, ...]" -> items + the attribute set they cover.
Result<std::vector<PatternItem>> ParsePatternList(const std::string& text,
                                                  const Schema& schema,
                                                  AttrSet* attrs) {
  std::string t(Trim(text));
  if (t.size() < 2 || t.front() != '[' || t.back() != ']') {
    return Status::Invalid("expected [pattern items] in '" + text + "'");
  }
  std::vector<PatternItem> items;
  for (const std::string& part : SplitTop(t.substr(1, t.size() - 2), ",")) {
    FAMTREE_ASSIGN_OR_RETURN(PatternItem item,
                             ParsePatternItem(std::string(Trim(part)), schema));
    attrs->Add(item.attr);
    items.push_back(std::move(item));
  }
  return items;
}

/// DC operand: "ta.col", "tb.col" or a value literal.
Result<DcOperand> ParseDcOperand(const std::string& text,
                                 const Schema& schema) {
  std::string t(Trim(text));
  if (StartsWith(t, "ta.") || StartsWith(t, "tb.")) {
    FAMTREE_ASSIGN_OR_RETURN(int attr, ResolveAttr(schema, t.substr(3)));
    return StartsWith(t, "ta.") ? DcOperand::TupleA(attr)
                                : DcOperand::TupleB(attr);
  }
  FAMTREE_ASSIGN_OR_RETURN(Value v, ParseValueLiteral(t));
  return DcOperand::Const(std::move(v));
}

Result<DependencyPtr> ParseDc(const std::string& body, const Schema& schema,
                              const std::string& line) {
  std::string t(Trim(body));
  if (!StartsWith(t, "not(") || !EndsWith(t, ")")) {
    return Bad("expected not(...)", line);
  }
  std::string inner = t.substr(4, t.size() - 5);
  std::vector<DcPredicate> preds;
  for (const std::string& part : SplitTop(inner, " and ")) {
    // Find the comparison operator at top level.
    static const char* kOps[] = {"<=", ">=", "!=", "=", "<", ">"};
    bool done = false;
    for (const char* op : kOps) {
      size_t pos = part.find(op);
      if (pos == std::string::npos) continue;
      FAMTREE_ASSIGN_OR_RETURN(DcOperand lhs,
                               ParseDcOperand(part.substr(0, pos), schema));
      FAMTREE_ASSIGN_OR_RETURN(
          DcOperand rhs,
          ParseDcOperand(part.substr(pos + std::string(op).size()), schema));
      FAMTREE_ASSIGN_OR_RETURN(CmpOp cmp, ParseOp(op));
      preds.push_back(DcPredicate{std::move(lhs), cmp, std::move(rhs)});
      done = true;
      break;
    }
    if (!done) return Bad("bad predicate '" + part + "'", line);
  }
  if (preds.empty()) return Bad("empty DC", line);
  return DependencyPtr(new Dc(std::move(preds)));
}

}  // namespace

Result<DependencyPtr> ParseRule(const std::string& raw,
                                const Schema& schema) {
  std::string line(Trim(raw));
  size_t colon = line.find(':');
  if (colon == std::string::npos) {
    return Bad("expected 'kind: body'", line);
  }
  std::string head = line.substr(0, colon);
  std::string body(Trim(line.substr(colon + 1)));
  std::string kind, arg;
  SplitHead(head, &kind, &arg);
  // sd uses square-bracket head: sd[100,200].
  if (kind.find('[') != std::string::npos) {
    SplitHead(head, &kind, &arg, '[', ']');
  }
  kind = ToLower(kind);

  // DCs have their own shape.
  if (kind == "dc") return ParseDc(body, schema, line);

  // CFD/eCFD: [items] -> [items].
  if (kind == "cfd" || kind == "ecfd") {
    auto sides = SplitTop(body, "->");
    if (sides.size() != 2) return Bad("expected one '->'", line);
    AttrSet lhs_attrs, rhs_attrs;
    FAMTREE_ASSIGN_OR_RETURN(
        std::vector<PatternItem> lhs_items,
        ParsePatternList(std::string(Trim(sides[0])), schema, &lhs_attrs));
    FAMTREE_ASSIGN_OR_RETURN(
        std::vector<PatternItem> rhs_items,
        ParsePatternList(std::string(Trim(sides[1])), schema, &rhs_attrs));
    std::vector<PatternItem> items = lhs_items;
    for (auto& it : rhs_items) items.push_back(it);
    // Drop pure wildcards: they only declare membership.
    std::vector<PatternItem> constants;
    for (auto& it : items) {
      if (!it.is_wildcard) constants.push_back(it);
    }
    if (kind == "cfd") {
      return DependencyPtr(
          new Cfd(lhs_attrs, rhs_attrs, PatternTuple(std::move(constants))));
    }
    return DependencyPtr(
        new Ecfd(lhs_attrs, rhs_attrs, PatternTuple(std::move(constants))));
  }

  // Everything else splits on an arrow.
  const std::string arrow = kind == "mvd" || kind == "amvd" ? "->>" : "->";
  auto sides = SplitTop(body, arrow);
  if (sides.size() != 2) return Bad("expected one '" + arrow + "'", line);
  std::string lhs_text(Trim(sides[0]));
  std::string rhs_text(Trim(sides[1]));
  // ofd arrow variant "->P".
  if (kind == "ofd" && StartsWith(rhs_text, "P")) {
    rhs_text = std::string(Trim(rhs_text.substr(1)));
  }

  auto need_arg = [&](const char* what) -> Result<double> {
    if (arg.empty()) return Status::Invalid(std::string(what) + " missing");
    return ParseNumber(arg);
  };

  if (kind == "fd" || kind == "sfd" || kind == "pfd" || kind == "afd" ||
      kind == "nud" || kind == "mvd" || kind == "mfd" || kind == "ofd") {
    FAMTREE_ASSIGN_OR_RETURN(AttrSet lhs, ParseAttrList(lhs_text, schema));
    FAMTREE_ASSIGN_OR_RETURN(AttrSet rhs, ParseAttrList(rhs_text, schema));
    if (kind == "fd") return DependencyPtr(new Fd(lhs, rhs));
    if (kind == "mvd") return DependencyPtr(new Mvd(lhs, rhs));
    if (kind == "ofd") return DependencyPtr(new Ofd(lhs, rhs));
    FAMTREE_ASSIGN_OR_RETURN(double threshold, need_arg("threshold"));
    if (kind == "sfd") return DependencyPtr(new Sfd(lhs, rhs, threshold));
    if (kind == "pfd") return DependencyPtr(new Pfd(lhs, rhs, threshold));
    if (kind == "afd") return DependencyPtr(new Afd(lhs, rhs, threshold));
    if (kind == "nud") {
      return DependencyPtr(new Nud(lhs, rhs, static_cast<int>(threshold)));
    }
    // mfd: one constraint per RHS attribute, default metrics.
    std::vector<MetricConstraint> constraints;
    for (int a : rhs.ToVector()) {
      constraints.push_back(
          MetricConstraint{a, MetricFor(schema, a), threshold});
    }
    return DependencyPtr(new Mfd(lhs, std::move(constraints)));
  }

  if (kind == "ned") {
    auto parse_preds = [&](const std::string& text)
        -> Result<std::vector<Ned::Predicate>> {
      std::vector<Ned::Predicate> preds;
      for (const std::string& part : SplitTop(text, ",")) {
        auto bits = Split(std::string(Trim(part)), '^');
        if (bits.size() != 2) {
          return Status::Invalid("expected attr^threshold in '" + part + "'");
        }
        FAMTREE_ASSIGN_OR_RETURN(int attr, ResolveAttr(schema, bits[0]));
        FAMTREE_ASSIGN_OR_RETURN(double th, ParseNumber(bits[1]));
        preds.push_back(Ned::Predicate{attr, MetricFor(schema, attr), th});
      }
      return preds;
    };
    FAMTREE_ASSIGN_OR_RETURN(auto lhs, parse_preds(lhs_text));
    FAMTREE_ASSIGN_OR_RETURN(auto rhs, parse_preds(rhs_text));
    return DependencyPtr(new Ned(std::move(lhs), std::move(rhs)));
  }

  if (kind == "dd") {
    auto parse_fns = [&](const std::string& text)
        -> Result<std::vector<DifferentialFunction>> {
      std::vector<DifferentialFunction> fns;
      for (const std::string& part : SplitTop(text, ",")) {
        FAMTREE_ASSIGN_OR_RETURN(
            DifferentialFunction fn,
            ParseDiffFn(std::string(Trim(part)), schema));
        fns.push_back(std::move(fn));
      }
      return fns;
    };
    FAMTREE_ASSIGN_OR_RETURN(auto lhs, parse_fns(lhs_text));
    FAMTREE_ASSIGN_OR_RETURN(auto rhs, parse_fns(rhs_text));
    return DependencyPtr(new Dd(std::move(lhs), std::move(rhs)));
  }

  if (kind == "md") {
    std::vector<SimilarityPredicate> lhs;
    for (const std::string& part : SplitTop(lhs_text, ",")) {
      auto bits = Split(std::string(Trim(part)), '~');
      if (bits.size() != 2) {
        return Bad("expected attr~threshold in '" + part + "'", line);
      }
      FAMTREE_ASSIGN_OR_RETURN(int attr, ResolveAttr(schema, bits[0]));
      FAMTREE_ASSIGN_OR_RETURN(double th, ParseNumber(bits[1]));
      lhs.push_back(SimilarityPredicate{attr, MetricFor(schema, attr), th});
    }
    FAMTREE_ASSIGN_OR_RETURN(AttrSet rhs, ParseAttrList(rhs_text, schema));
    return DependencyPtr(new Md(std::move(lhs), rhs));
  }

  if (kind == "od") {
    auto parse_marks = [&](const std::string& text)
        -> Result<std::vector<MarkedAttr>> {
      std::vector<MarkedAttr> marks;
      for (const std::string& part : SplitTop(text, ",")) {
        std::string t(Trim(part));
        size_t caret = t.rfind('^');
        if (caret == std::string::npos) {
          return Status::Invalid("expected attr^mark in '" + t + "'");
        }
        FAMTREE_ASSIGN_OR_RETURN(int attr,
                                 ResolveAttr(schema, t.substr(0, caret)));
        std::string mark = t.substr(caret + 1);
        OrderMark m;
        if (mark == "<=") m = OrderMark::kLeq;
        else if (mark == "<") m = OrderMark::kLt;
        else if (mark == ">=") m = OrderMark::kGeq;
        else if (mark == ">") m = OrderMark::kGt;
        else return Status::Invalid("bad mark '^" + mark + "'");
        marks.push_back(MarkedAttr{attr, m});
      }
      return marks;
    };
    FAMTREE_ASSIGN_OR_RETURN(auto lhs, parse_marks(lhs_text));
    FAMTREE_ASSIGN_OR_RETURN(auto rhs, parse_marks(rhs_text));
    return DependencyPtr(new Od(std::move(lhs), std::move(rhs)));
  }

  if (kind == "sd") {
    if (arg.empty()) return Bad("sd needs [lo,hi]", line);
    auto parts = Split(arg, ',');
    if (parts.size() != 2) return Bad("sd needs [lo,hi]", line);
    FAMTREE_ASSIGN_OR_RETURN(double lo, ParseNumber(parts[0]));
    FAMTREE_ASSIGN_OR_RETURN(double hi, ParseNumber(parts[1]));
    FAMTREE_ASSIGN_OR_RETURN(AttrSet lhs, ParseAttrList(lhs_text, schema));
    FAMTREE_ASSIGN_OR_RETURN(AttrSet rhs, ParseAttrList(rhs_text, schema));
    if (lhs.size() != 1 || rhs.size() != 1) {
      return Bad("sd takes single attributes", line);
    }
    return DependencyPtr(new Sd(lhs.ToVector()[0], rhs.ToVector()[0],
                                Interval::Between(lo, hi)));
  }

  return Bad("unknown rule kind '" + kind + "'", line);
}

Result<std::vector<DependencyPtr>> ParseRules(const std::string& text,
                                              const Schema& schema) {
  std::vector<DependencyPtr> out;
  int line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string line(Trim(raw));
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = std::string(Trim(line.substr(0, hash)));
    if (line.empty()) continue;
    auto rule = ParseRule(line, schema);
    if (!rule.ok()) {
      return Status::Invalid("line " + std::to_string(line_no) + ": " +
                             rule.status().message());
    }
    out.push_back(std::move(rule).value());
  }
  return out;
}

}  // namespace famtree
