#ifndef FAMTREE_CORE_FAMILY_TREE_H_
#define FAMTREE_CORE_FAMILY_TREE_H_

#include <string>
#include <vector>

#include "core/class_info.h"
#include "deps/dependency.h"

namespace famtree {

/// How a family-tree edge relates parent and child semantics.
enum class EdgeKind {
  /// The parent class is *exactly* the child class at a boundary setting
  /// (FD == SFD with s = 1): the embedded special case holds iff the
  /// parent dependency holds, on every instance.
  kSpecialCaseEquivalence,
  /// The parent implies the embedded child but not conversely on a fixed
  /// LHS/RHS (FD X->Y implies MVD X->>Y; the MVD can hold without the FD).
  kImplication,
};

/// One extension arrow of Fig. 1: `to` extends/generalizes/subsumes `from`.
struct ExtensionEdge {
  DependencyClass from;
  DependencyClass to;
  EdgeKind kind;
  /// The paper's justification, e.g. "FDs are SFDs with strength 1 (S2.1.2)".
  std::string note;
};

/// The family tree of Fig. 1A: 24 nodes (dependency classes) and the
/// extension edges between them. The tree is a static registry; the
/// embedding generators in core/embeddings.h make every edge *checkable*
/// by property tests instead of a mere claim.
class FamilyTree {
 public:
  /// The singleton tree (immutable).
  static const FamilyTree& Get();

  const std::vector<ExtensionEdge>& edges() const { return edges_; }

  /// Classes directly extended by `cls` (its parents in the tree).
  std::vector<DependencyClass> Parents(DependencyClass cls) const;
  /// Classes that directly extend `cls` (its children).
  std::vector<DependencyClass> Children(DependencyClass cls) const;

  /// True iff `descendant` transitively extends `ancestor` (or equals it).
  bool Subsumes(DependencyClass descendant, DependencyClass ancestor) const;

  /// All classes that transitively subsume `cls`, i.e. have at least its
  /// expressive power.
  std::vector<DependencyClass> Generalizations(DependencyClass cls) const;

  /// Classes in Fig. 2 timeline order (by proposal year, ties by acronym).
  std::vector<DependencyClass> TimelineOrder() const;

  /// The paper's guidance query (Section 1): which dependency classes
  /// support application `task` over all the given data categories?
  /// E.g. repairing over {categorical, numerical} suggests DCs.
  std::vector<DependencyClass> Suggest(
      const std::vector<DataCategory>& categories, Application task) const;

  /// ASCII rendering of Fig. 1A (roots at the left, arrows to the right).
  std::string RenderAscii() const;

  /// ASCII rendering of Fig. 2 (timeline of proposals).
  std::string RenderTimeline() const;

 private:
  FamilyTree();

  std::vector<ExtensionEdge> edges_;
};

}  // namespace famtree

#endif  // FAMTREE_CORE_FAMILY_TREE_H_
