#include "core/class_info.h"

namespace famtree {

namespace {

using App = Application;
using DC = DependencyClass;
using Cat = DataCategory;
using Cx = DiscoveryComplexity;

std::vector<ClassInfo> BuildInfos() {
  std::vector<ClassInfo> infos;
  auto add = [&infos](DC id, Cat cat, int year, int pubs, std::string def,
                      std::string disc, std::string app, Cx cx,
                      std::string note, std::vector<App> apps) {
    infos.push_back(ClassInfo{id, cat, year, pubs, std::move(def),
                              std::move(disc), std::move(app), cx,
                              std::move(note), std::move(apps)});
  };

  // --- Categorical (Table 2, top block). Publication counts follow the
  // paper's Google Scholar census; the survey narrative pins CFDs as the
  // most-used categorical extension.
  add(DC::kSfd, Cat::kCategorical, 2004, 327, "[55]", "[55], [60]",
      "[55], [60]", Cx::kPolynomial,
      "CORDS samples column pairs; cost independent of table size (S2.1.3)",
      {App::kQueryOptimization});
  add(DC::kPfd, Cat::kCategorical, 2009, 55, "[104]", "[104]", "[104]",
      Cx::kExponentialOutput,
      "TANE-style lattice per source; counting per candidate is "
      "polynomial (S2.2.3)",
      {App::kViolationDetection, App::kSchemaNormalization});
  add(DC::kAfd, Cat::kCategorical, 1995, 248, "[61]", "[53], [54]", "[111]",
      Cx::kExponentialOutput,
      "TANE with g3 validity test; minimal cover can be exponential "
      "(S1.4.2, S2.3.3)",
      {App::kQueryOptimization});
  add(DC::kNud, Cat::kCategorical, 1981, 404, "[50]", "", "[22]",
      Cx::kPolynomial,
      "weight of a given NUD computes by grouping; derivation studied "
      "in [22] (S2.4)",
      {App::kQueryOptimization});
  add(DC::kCfd, Cat::kCategorical, 2007, 471, "[11], [34]",
      "[18], [35], [36], [49], [113]", "[25], [40]", Cx::kNpComplete,
      "optimal tableau generation for a given FD is NP-complete [49] "
      "(S2.5.3)",
      {App::kViolationDetection, App::kDataRepairing,
       App::kDataDeduplication});
  add(DC::kEcfd, Cat::kCategorical, 2008, 76, "[14]", "[114]", "[14]",
      Cx::kNpComplete,
      "implication co-NP-complete as CFDs; tableau problem inherited "
      "(S2.5.5)",
      {App::kViolationDetection, App::kDataRepairing});
  add(DC::kMvd, Cat::kCategorical, 1977, 191, "[30]", "[82]", "[80]",
      Cx::kExponentialOutput,
      "hypothesis-space search over generalization lattice [82] (S2.6.3)",
      {App::kDataRepairing, App::kSchemaNormalization, App::kModelFairness});
  add(DC::kFhd, Cat::kCategorical, 1978, 1, "[27], [52]", "", "",
      Cx::kExponentialOutput, "hierarchical decompositions extend the MVD "
      "search space (S2.6.5)",
      {App::kSchemaNormalization});
  add(DC::kAmvd, Cat::kCategorical, 2020, 0, "[59]", "[59]", "[59]",
      Cx::kExponentialOutput,
      "mining approximate acyclic schemes searches join trees (S2.6.6)",
      {App::kQueryOptimization});

  // --- Heterogeneous (Table 2, middle block).
  add(DC::kMfd, Cat::kHeterogeneous, 2009, 86, "[64]", "[64]", "[64]",
      Cx::kPolynomial,
      "verifying an MFD takes O(n^2); approximate verification faster "
      "[64] (S3.1.3)",
      {App::kViolationDetection});
  add(DC::kNed, Cat::kHeterogeneous, 2001, 15, "[4]", "[4]", "[4]",
      Cx::kNpHard,
      "finding an LHS predicate with support and confidence is NP-hard "
      "in #attributes (S3.2.3)",
      {App::kDataRepairing});
  add(DC::kDd, Cat::kHeterogeneous, 2011, 109, "[86]",
      "[65], [86], [88], [89]", "[86], [93], [94], [95], [96]",
      Cx::kExponentialOutput,
      "minimal DDs can be exponentially many; implication co-NP-complete "
      "[86] (S3.3.3)",
      {App::kDataRepairing, App::kQueryOptimization, App::kDataDeduplication,
       App::kDataPartition});
  add(DC::kCdd, Cat::kHeterogeneous, 2015, 3, "[66]", "[66]", "[66]",
      Cx::kNpComplete,
      "generalizes CFDs, hence no easier than CFD discovery (S3.3.5)",
      {App::kViolationDetection, App::kDataRepairing});
  add(DC::kCd, Cat::kHeterogeneous, 2011, 18, "[91], [92]", "[92]", "[92]",
      Cx::kNpComplete,
      "error (g3 <= e) and confidence (conf >= c) validation are "
      "NP-complete [91] (S3.4.3)",
      {App::kViolationDetection, App::kQueryOptimization,
       App::kDataDeduplication});
  add(DC::kPac, Cat::kHeterogeneous, 2003, 39, "[63]", "[63]", "[63]",
      Cx::kPolynomial,
      "PAC-Man instantiates Delta/eps/delta from rule templates and "
      "training data (S3.5.3)",
      {App::kViolationDetection, App::kQueryOptimization});
  add(DC::kFfd, Cat::kHeterogeneous, 1988, 496, "[79]", "[109], [108]",
      "[13], [56], [71]", Cx::kExponentialOutput,
      "TANE-style small-to-large search with pairwise EQUAL checks "
      "(S3.6.3)",
      {App::kQueryOptimization, App::kDataDeduplication});
  add(DC::kMd, Cat::kHeterogeneous, 2009, 197, "[33], [37]",
      "[85], [87], [90]", "[37], [38], [41]", Cx::kNpComplete,
      "bounded-size matching-key sets with supp/conf are NP-complete "
      "[90] (S3.7.3)",
      {App::kDataRepairing, App::kDataDeduplication, App::kDataPartition});
  add(DC::kCmd, Cat::kHeterogeneous, 2017, 15, "[110]", "[110]", "[110]",
      Cx::kNpComplete,
      "deciding g3 <= e for a CMD is NP-complete [110] (S3.7.5)",
      {App::kDataRepairing, App::kDataDeduplication});

  // --- Numerical (Table 2, bottom block).
  add(DC::kOfd, Cat::kNumerical, 1999, 27, "[76], [77]", "", "[75]",
      Cx::kExponentialOutput,
      "attribute-set lattice as for ODs (S4.1)",
      {App::kConsistentQueryAnswering});
  add(DC::kOd, Cat::kNumerical, 1982, 27, "[28]", "[67], [99]",
      "[28], [100]", Cx::kExponentialOutput,
      "lattice of marked attribute sets; implication co-NP-complete "
      "[101] (S4.2.3)",
      {App::kViolationDetection, App::kDataRepairing,
       App::kQueryOptimization});
  add(DC::kDc, Cat::kNumerical, 2005, 52, "[8], [9]",
      "[10], [19], [21], [78]", "[8], [9], [20], [70], [98]",
      Cx::kNpComplete,
      "FASTDC reduces discovery to minimal set covers of evidence sets "
      "[19] (S4.3.4)",
      {App::kViolationDetection, App::kDataRepairing,
       App::kConsistentQueryAnswering});
  add(DC::kSd, Cat::kNumerical, 2009, 97, "[48]", "[48]", "[48]",
      Cx::kPolynomial,
      "confidence of simple SDs computes efficiently [48] (S4.4.3)",
      {App::kViolationDetection});
  add(DC::kCsd, Cat::kNumerical, 2009, 97, "[48]", "[48]", "[48]",
      Cx::kPolynomial,
      "exact DP tableau construction, quadratic in candidate intervals "
      "[48] (S1.4.2, S4.4.5)",
      {App::kViolationDetection});

  // --- The root.
  add(DC::kFd, Cat::kCategorical, 1971, 0, "[24]", "[53], [54], [112]",
      "[7], [24]", Cx::kExponentialOutput,
      "minimal cover may be exponential [72], [73]; key-of-size-k "
      "NP-complete [5] (S1.4.2)",
      {App::kViolationDetection, App::kDataRepairing,
       App::kConsistentQueryAnswering, App::kSchemaNormalization});
  return infos;
}

}  // namespace

const char* DataCategoryName(DataCategory c) {
  switch (c) {
    case DataCategory::kCategorical: return "Categorical";
    case DataCategory::kHeterogeneous: return "Heterogeneous";
    case DataCategory::kNumerical: return "Numerical";
  }
  return "?";
}

const char* ApplicationName(Application a) {
  switch (a) {
    case Application::kViolationDetection: return "Violation detection";
    case Application::kDataRepairing: return "Data repairing";
    case Application::kQueryOptimization: return "Query optimization";
    case Application::kConsistentQueryAnswering:
      return "Consistent query answering";
    case Application::kDataDeduplication: return "Data deduplication";
    case Application::kDataPartition: return "Data partition";
    case Application::kSchemaNormalization: return "Schema normalization";
    case Application::kModelFairness: return "Model fairness";
  }
  return "?";
}

const std::vector<Application>& AllApplications() {
  static const std::vector<Application>& all = *new std::vector<Application>{
      Application::kViolationDetection,
      Application::kDataRepairing,
      Application::kQueryOptimization,
      Application::kConsistentQueryAnswering,
      Application::kDataDeduplication,
      Application::kDataPartition,
      Application::kSchemaNormalization,
      Application::kModelFairness,
  };
  return all;
}

const char* DiscoveryComplexityName(DiscoveryComplexity c) {
  switch (c) {
    case DiscoveryComplexity::kPolynomial: return "P";
    case DiscoveryComplexity::kNpComplete: return "NP-complete";
    case DiscoveryComplexity::kNpHard: return "NP-hard";
    case DiscoveryComplexity::kExponentialOutput:
      return "poly/candidate, exp. output";
  }
  return "?";
}

const std::vector<ClassInfo>& AllClassInfos() {
  static const std::vector<ClassInfo>& infos =
      *new std::vector<ClassInfo>(BuildInfos());
  return infos;
}

const ClassInfo& GetClassInfo(DependencyClass cls) {
  for (const ClassInfo& info : AllClassInfos()) {
    if (info.id == cls) return info;
  }
  // Unreachable: AllClassInfos covers the enum.
  return AllClassInfos().front();
}

}  // namespace famtree
