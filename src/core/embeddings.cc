#include "core/embeddings.h"

#include <memory>

#include "metric/fuzzy.h"
#include "metric/metric.h"

namespace famtree {

Sfd SfdFromFd(const Fd& fd) { return Sfd(fd.lhs(), fd.rhs(), 1.0); }

Pfd PfdFromFd(const Fd& fd) { return Pfd(fd.lhs(), fd.rhs(), 1.0); }

Afd AfdFromFd(const Fd& fd) { return Afd(fd.lhs(), fd.rhs(), 0.0); }

Nud NudFromFd(const Fd& fd) { return Nud(fd.lhs(), fd.rhs(), 1); }

Cfd CfdFromFd(const Fd& fd) {
  std::vector<PatternItem> items;
  for (int a : fd.lhs().Union(fd.rhs()).ToVector()) {
    items.push_back(PatternItem::Wildcard(a));
  }
  return Cfd(fd.lhs(), fd.rhs(), PatternTuple(std::move(items)));
}

Ecfd EcfdFromCfd(const Cfd& cfd) {
  return Ecfd(cfd.lhs(), cfd.rhs(), cfd.pattern());
}

Result<Mvd> MvdFromFd(const Fd& fd) {
  if (fd.lhs().Intersects(fd.rhs())) {
    return Status::Invalid(
        "MVD embedding requires disjoint LHS and RHS; drop trivial "
        "attributes from the FD first");
  }
  return Mvd(fd.lhs(), fd.rhs());
}

Fhd FhdFromMvd(const Mvd& mvd) {
  return Fhd(mvd.lhs(), {mvd.rhs()});
}

Amvd AmvdFromMvd(const Mvd& mvd) {
  return Amvd(mvd.lhs(), mvd.rhs(), 0.0);
}

Mfd MfdFromFd(const Fd& fd) {
  std::vector<MetricConstraint> rhs;
  for (int a : fd.rhs().ToVector()) {
    rhs.push_back(MetricConstraint{a, GetDiscreteMetric(), 0.0});
  }
  return Mfd(fd.lhs(), std::move(rhs));
}

Ned NedFromMfd(const Mfd& mfd) {
  std::vector<Ned::Predicate> lhs, rhs;
  for (int a : mfd.lhs().ToVector()) {
    lhs.push_back(Ned::Predicate{a, GetDiscreteMetric(), 0.0});
  }
  for (const auto& mc : mfd.rhs()) {
    rhs.push_back(Ned::Predicate{mc.attr, mc.metric, mc.delta});
  }
  return Ned(std::move(lhs), std::move(rhs));
}

Dd DdFromNed(const Ned& ned) {
  std::vector<DifferentialFunction> lhs, rhs;
  for (const auto& p : ned.lhs()) {
    lhs.push_back(
        DifferentialFunction(p.attr, p.metric, DistRange::AtMost(p.threshold)));
  }
  for (const auto& p : ned.rhs()) {
    rhs.push_back(
        DifferentialFunction(p.attr, p.metric, DistRange::AtMost(p.threshold)));
  }
  return Dd(std::move(lhs), std::move(rhs));
}

Cdd CddFromDd(const Dd& dd) {
  return Cdd(PatternTuple(), dd.lhs(), dd.rhs());
}

Result<Cdd> CddFromCfd(const Cfd& cfd) {
  for (int a : cfd.rhs().ToVector()) {
    const PatternItem* it = cfd.pattern().Find(a);
    if (it != nullptr && !it->is_wildcard) {
      return Status::Invalid(
          "CDD embedding requires a wildcard RHS pattern (constant-RHS "
          "CFDs have single-tuple semantics)");
    }
  }
  std::vector<PatternItem> cond;
  for (int a : cfd.lhs().ToVector()) {
    const PatternItem* it = cfd.pattern().Find(a);
    if (it != nullptr && !it->is_wildcard) cond.push_back(*it);
  }
  std::vector<DifferentialFunction> lhs, rhs;
  for (int a : cfd.lhs().ToVector()) {
    lhs.push_back(
        DifferentialFunction(a, GetDiscreteMetric(), DistRange::AtMost(0.0)));
  }
  for (int a : cfd.rhs().ToVector()) {
    rhs.push_back(
        DifferentialFunction(a, GetDiscreteMetric(), DistRange::AtMost(0.0)));
  }
  return Cdd(PatternTuple(std::move(cond)), std::move(lhs), std::move(rhs));
}

Result<Cd> CdFromNed(const Ned& ned) {
  if (ned.rhs().size() != 1) {
    return Status::Invalid(
        "CD embedding requires exactly one RHS predicate (a CD has one "
        "RHS similarity function)");
  }
  auto to_fn = [](const Ned::Predicate& p) {
    SimilarityFunction f;
    f.attr_i = p.attr;
    f.attr_j = p.attr;
    f.metric = p.metric;
    f.max_dist_ii = p.threshold;
    f.max_dist_ij = p.threshold;
    f.max_dist_jj = p.threshold;
    return f;
  };
  std::vector<SimilarityFunction> lhs;
  for (const auto& p : ned.lhs()) lhs.push_back(to_fn(p));
  return Cd(std::move(lhs), to_fn(ned.rhs()[0]));
}

Pac PacFromNed(const Ned& ned) {
  std::vector<Pac::Tolerance> lhs, rhs;
  for (const auto& p : ned.lhs()) {
    lhs.push_back(Pac::Tolerance{p.attr, p.metric, p.threshold});
  }
  for (const auto& p : ned.rhs()) {
    rhs.push_back(Pac::Tolerance{p.attr, p.metric, p.threshold});
  }
  return Pac(std::move(lhs), std::move(rhs), 1.0);
}

Ffd FfdFromFd(const Fd& fd) {
  std::vector<Ffd::FuzzyAttr> lhs, rhs;
  for (int a : fd.lhs().ToVector()) {
    lhs.push_back(Ffd::FuzzyAttr{a, GetCrispResemblance()});
  }
  for (int a : fd.rhs().ToVector()) {
    rhs.push_back(Ffd::FuzzyAttr{a, GetCrispResemblance()});
  }
  return Ffd(std::move(lhs), std::move(rhs));
}

Md MdFromFd(const Fd& fd) {
  std::vector<SimilarityPredicate> lhs;
  for (int a : fd.lhs().ToVector()) {
    lhs.push_back(SimilarityPredicate{a, GetDiscreteMetric(), 0.0});
  }
  return Md(std::move(lhs), fd.rhs());
}

Cmd CmdFromMd(const Md& md) {
  return Cmd(PatternTuple(), md.lhs(), md.rhs());
}

Od OdFromOfd(const Ofd& ofd) {
  std::vector<MarkedAttr> lhs, rhs;
  for (int a : ofd.lhs().ToVector()) {
    lhs.push_back(MarkedAttr{a, OrderMark::kLeq});
  }
  for (int a : ofd.rhs().ToVector()) {
    rhs.push_back(MarkedAttr{a, OrderMark::kLeq});
  }
  return Od(std::move(lhs), std::move(rhs));
}

namespace {

/// Translates a marked attribute into the DC predicate "ta.A op tb.A".
DcPredicate MarkToPredicate(const MarkedAttr& ma) {
  CmpOp op;
  switch (ma.mark) {
    case OrderMark::kLeq: op = CmpOp::kLe; break;
    case OrderMark::kLt: op = CmpOp::kLt; break;
    case OrderMark::kGeq: op = CmpOp::kGe; break;
    case OrderMark::kGt: op = CmpOp::kGt; break;
    default: op = CmpOp::kLe; break;
  }
  return DcPredicate{DcOperand::TupleA(ma.attr), op,
                     DcOperand::TupleB(ma.attr)};
}

}  // namespace

Result<Dc> DcFromOd(const Od& od) {
  if (od.rhs().size() != 1) {
    return Status::Invalid(
        "DC embedding takes one RHS mark; emit one DC per RHS mark");
  }
  std::vector<DcPredicate> preds;
  for (const auto& ma : od.lhs()) preds.push_back(MarkToPredicate(ma));
  preds.push_back(MarkToPredicate(od.rhs()[0]).Negated());
  return Dc(std::move(preds));
}

Result<Dc> DcFromEcfd(const Ecfd& ecfd) {
  std::vector<int> rhs_attrs = ecfd.rhs().ToVector();
  if (rhs_attrs.size() != 1) {
    return Status::Invalid("DC embedding takes a single-attribute RHS");
  }
  const PatternItem* rhs_item = ecfd.pattern().Find(rhs_attrs[0]);
  if (rhs_item != nullptr && !rhs_item->is_wildcard) {
    return Status::Invalid(
        "DC embedding requires a wildcard RHS pattern; constant-RHS "
        "eCFDs map to single-tuple DCs separately");
  }
  std::vector<DcPredicate> preds;
  for (int a : ecfd.lhs().ToVector()) {
    preds.push_back(DcPredicate{DcOperand::TupleA(a), CmpOp::kEq,
                                DcOperand::TupleB(a)});
    const PatternItem* it = ecfd.pattern().Find(a);
    if (it != nullptr && !it->is_wildcard) {
      preds.push_back(DcPredicate{DcOperand::TupleA(a), it->op,
                                  DcOperand::Const(it->constant)});
    }
  }
  preds.push_back(DcPredicate{DcOperand::TupleA(rhs_attrs[0]), CmpOp::kNeq,
                              DcOperand::TupleB(rhs_attrs[0])});
  return Dc(std::move(preds));
}

Result<Sd> SdFromOd(const Od& od) {
  if (od.lhs().size() != 1 || od.rhs().size() != 1) {
    return Status::Invalid("SD embedding takes unary ODs");
  }
  const MarkedAttr& x = od.lhs()[0];
  const MarkedAttr& y = od.rhs()[0];
  if (x.mark != OrderMark::kLeq) {
    return Status::Invalid(
        "SD embedding sorts ascending; normalize the OD to an '<=' LHS "
        "mark first");
  }
  if (x.attr == y.attr) {
    return Status::Invalid("SD embedding needs distinct order/target attrs");
  }
  Interval gap = (y.mark == OrderMark::kLeq || y.mark == OrderMark::kLt)
                     ? Interval::AtLeast(0.0)
                     : Interval::AtMost(0.0);
  return Sd(x.attr, y.attr, gap);
}

Csd CsdFromSd(const Sd& sd) {
  Csd::TableauRow row{-std::numeric_limits<double>::infinity(),
                      std::numeric_limits<double>::infinity(), sd.gap()};
  return Csd(sd.order_attr(), sd.target_attr(), {row});
}

// --------------------------------------------------------------------
// Random generators for the property-test harness.
namespace {

/// Random non-empty attribute set over nc columns, avoiding `avoid`.
AttrSet RandomAttrs(Rng& rng, int nc, AttrSet avoid = AttrSet(),
                    int max_size = 2) {
  AttrSet out;
  int attempts = 0;
  int want = static_cast<int>(rng.Uniform(1, max_size));
  while (out.size() < want && attempts < 64) {
    int a = static_cast<int>(rng.Uniform(0, nc - 1));
    if (!avoid.Contains(a)) out.Add(a);
    ++attempts;
  }
  if (out.empty()) {
    for (int a = 0; a < nc; ++a) {
      if (!avoid.Contains(a)) {
        out.Add(a);
        break;
      }
    }
  }
  return out;
}

Fd RandomFd(Rng& rng, const Relation& relation, bool disjoint = false) {
  int nc = relation.num_columns();
  AttrSet lhs = RandomAttrs(rng, nc);
  AttrSet rhs = RandomAttrs(rng, nc, disjoint ? lhs : AttrSet(), 1);
  return Fd(lhs, rhs);
}

Ned RandomNed(Rng& rng, const Relation& relation, int rhs_count) {
  int nc = relation.num_columns();
  std::vector<Ned::Predicate> lhs, rhs;
  int nl = static_cast<int>(rng.Uniform(1, 2));
  for (int i = 0; i < nl; ++i) {
    int a = static_cast<int>(rng.Uniform(0, nc - 1));
    MetricPtr m = DefaultMetricFor(relation.schema().column(a).type);
    lhs.push_back(Ned::Predicate{a, m, static_cast<double>(rng.Uniform(0, 5))});
  }
  for (int i = 0; i < rhs_count; ++i) {
    int a = static_cast<int>(rng.Uniform(0, nc - 1));
    MetricPtr m = DefaultMetricFor(relation.schema().column(a).type);
    rhs.push_back(Ned::Predicate{a, m, static_cast<double>(rng.Uniform(0, 5))});
  }
  return Ned(std::move(lhs), std::move(rhs));
}

Cfd RandomCfd(Rng& rng, const Relation& relation, bool wildcard_rhs) {
  // Disjoint sides: a pattern item must belong to exactly one side.
  Fd fd = RandomFd(rng, relation, /*disjoint=*/true);
  std::vector<PatternItem> items;
  for (int a : fd.lhs().ToVector()) {
    if (rng.Bernoulli(0.5) && relation.num_rows() > 0) {
      int row = static_cast<int>(rng.Uniform(0, relation.num_rows() - 1));
      items.push_back(PatternItem::Const(a, relation.Get(row, a)));
    } else {
      items.push_back(PatternItem::Wildcard(a));
    }
  }
  for (int a : fd.rhs().ToVector()) {
    if (!wildcard_rhs && rng.Bernoulli(0.3) && relation.num_rows() > 0) {
      int row = static_cast<int>(rng.Uniform(0, relation.num_rows() - 1));
      items.push_back(PatternItem::Const(a, relation.Get(row, a)));
    } else {
      items.push_back(PatternItem::Wildcard(a));
    }
  }
  return Cfd(fd.lhs(), fd.rhs(), PatternTuple(std::move(items)));
}

Od RandomUnaryOd(Rng& rng, const Relation& relation, bool lhs_leq_only) {
  int nc = relation.num_columns();
  int x = static_cast<int>(rng.Uniform(0, nc - 1));
  int y = static_cast<int>(rng.Uniform(0, nc - 1));
  if (y == x) y = (x + 1) % nc;
  auto mark = [&rng]() {
    switch (rng.Uniform(0, 3)) {
      case 0: return OrderMark::kLeq;
      case 1: return OrderMark::kLt;
      case 2: return OrderMark::kGeq;
      default: return OrderMark::kGt;
    }
  };
  OrderMark mx = lhs_leq_only ? OrderMark::kLeq : mark();
  OrderMark my = rng.Bernoulli(0.5) ? OrderMark::kLeq : OrderMark::kGeq;
  return Od({MarkedAttr{x, mx}}, {MarkedAttr{y, my}});
}

template <typename T>
DependencyPtr Ptr(T dep) {
  return std::make_shared<T>(std::move(dep));
}

}  // namespace

const std::vector<CheckableEdge>& AllCheckableEdges() {
  using DCl = DependencyClass;
  auto eq = EdgeKind::kSpecialCaseEquivalence;
  auto impl = EdgeKind::kImplication;
  static const std::vector<CheckableEdge>& edges = *new std::vector<
      CheckableEdge>{
      {DCl::kFd, DCl::kSfd, eq, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         Fd fd = RandomFd(rng, r);
         return EmbeddedPair{Ptr(fd), Ptr(SfdFromFd(fd))};
       }},
      {DCl::kFd, DCl::kPfd, eq, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         Fd fd = RandomFd(rng, r);
         return EmbeddedPair{Ptr(fd), Ptr(PfdFromFd(fd))};
       }},
      {DCl::kFd, DCl::kAfd, eq, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         Fd fd = RandomFd(rng, r);
         return EmbeddedPair{Ptr(fd), Ptr(AfdFromFd(fd))};
       }},
      {DCl::kFd, DCl::kNud, eq, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         Fd fd = RandomFd(rng, r);
         return EmbeddedPair{Ptr(fd), Ptr(NudFromFd(fd))};
       }},
      {DCl::kFd, DCl::kCfd, eq, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         Fd fd = RandomFd(rng, r);
         return EmbeddedPair{Ptr(fd), Ptr(CfdFromFd(fd))};
       }},
      {DCl::kCfd, DCl::kEcfd, eq, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         Cfd cfd = RandomCfd(rng, r, /*wildcard_rhs=*/false);
         return EmbeddedPair{Ptr(cfd), Ptr(EcfdFromCfd(cfd))};
       }},
      {DCl::kFd, DCl::kMvd, impl, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         Fd fd = RandomFd(rng, r, /*disjoint=*/true);
         return EmbeddedPair{Ptr(fd), Ptr(MvdFromFd(fd).value())};
       }},
      {DCl::kMvd, DCl::kFhd, eq, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         Fd fd = RandomFd(rng, r, /*disjoint=*/true);
         Mvd mvd = MvdFromFd(fd).value();
         return EmbeddedPair{Ptr(mvd), Ptr(FhdFromMvd(mvd))};
       }},
      {DCl::kMvd, DCl::kAmvd, eq, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         Fd fd = RandomFd(rng, r, /*disjoint=*/true);
         Mvd mvd = MvdFromFd(fd).value();
         return EmbeddedPair{Ptr(mvd), Ptr(AmvdFromMvd(mvd))};
       }},
      {DCl::kFd, DCl::kMfd, eq, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         Fd fd = RandomFd(rng, r);
         return EmbeddedPair{Ptr(fd), Ptr(MfdFromFd(fd))};
       }},
      {DCl::kMfd, DCl::kNed, eq, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         Mfd mfd = MfdFromFd(RandomFd(rng, r));
         return EmbeddedPair{Ptr(mfd), Ptr(NedFromMfd(mfd))};
       }},
      {DCl::kNed, DCl::kDd, eq, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         Ned ned = RandomNed(rng, r, /*rhs_count=*/1);
         return EmbeddedPair{Ptr(ned), Ptr(DdFromNed(ned))};
       }},
      {DCl::kDd, DCl::kCdd, eq, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         Dd dd = DdFromNed(RandomNed(rng, r, 1));
         return EmbeddedPair{Ptr(dd), Ptr(CddFromDd(dd))};
       }},
      {DCl::kCfd, DCl::kCdd, eq, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         Cfd cfd = RandomCfd(rng, r, /*wildcard_rhs=*/true);
         return EmbeddedPair{Ptr(cfd), Ptr(CddFromCfd(cfd).value())};
       }},
      {DCl::kNed, DCl::kCd, eq, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         Ned ned = RandomNed(rng, r, 1);
         return EmbeddedPair{Ptr(ned), Ptr(CdFromNed(ned).value())};
       }},
      {DCl::kNed, DCl::kPac, eq, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         Ned ned = RandomNed(rng, r, /*rhs_count=*/2);
         return EmbeddedPair{Ptr(ned), Ptr(PacFromNed(ned))};
       }},
      {DCl::kFd, DCl::kFfd, eq, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         Fd fd = RandomFd(rng, r);
         return EmbeddedPair{Ptr(fd), Ptr(FfdFromFd(fd))};
       }},
      {DCl::kFd, DCl::kMd, eq, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         Fd fd = RandomFd(rng, r);
         return EmbeddedPair{Ptr(fd), Ptr(MdFromFd(fd))};
       }},
      {DCl::kMd, DCl::kCmd, eq, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         Md md = MdFromFd(RandomFd(rng, r));
         return EmbeddedPair{Ptr(md), Ptr(CmdFromMd(md))};
       }},
      {DCl::kOfd, DCl::kOd, eq, EdgeDataNeed::kNumeric,
       [](Rng& rng, const Relation& r) {
         int nc = r.num_columns();
         AttrSet lhs = RandomAttrs(rng, nc);
         AttrSet rhs = RandomAttrs(rng, nc, AttrSet(), 1);
         Ofd ofd(lhs, rhs, OrderingKind::kPointwise);
         return EmbeddedPair{Ptr(ofd), Ptr(OdFromOfd(ofd))};
       }},
      {DCl::kOd, DCl::kDc, eq, EdgeDataNeed::kNumeric,
       [](Rng& rng, const Relation& r) {
         Od od = RandomUnaryOd(rng, r, /*lhs_leq_only=*/false);
         return EmbeddedPair{Ptr(od), Ptr(DcFromOd(od).value())};
       }},
      {DCl::kEcfd, DCl::kDc, eq, EdgeDataNeed::kAny,
       [](Rng& rng, const Relation& r) {
         // Single-attribute RHS, wildcard RHS pattern.
         Cfd base = RandomCfd(rng, r, /*wildcard_rhs=*/true);
         std::vector<int> rhs = base.rhs().ToVector();
         Ecfd ecfd(base.lhs(), AttrSet::Single(rhs[0]), base.pattern());
         return EmbeddedPair{Ptr(ecfd), Ptr(DcFromEcfd(ecfd).value())};
       }},
      {DCl::kOd, DCl::kSd, eq, EdgeDataNeed::kUniqueNumericFirstColumn,
       [](Rng& rng, const Relation& r) {
         int nc = r.num_columns();
         int y = static_cast<int>(rng.Uniform(1, nc - 1));
         OrderMark my = rng.Bernoulli(0.5) ? OrderMark::kLeq : OrderMark::kGeq;
         Od od({MarkedAttr{0, OrderMark::kLeq}}, {MarkedAttr{y, my}});
         return EmbeddedPair{Ptr(od), Ptr(SdFromOd(od).value())};
       }},
      {DCl::kSd, DCl::kCsd, eq, EdgeDataNeed::kNumeric,
       [](Rng& rng, const Relation& r) {
         int nc = r.num_columns();
         int y = static_cast<int>(rng.Uniform(1, nc - 1));
         double lo = static_cast<double>(rng.Uniform(-3, 0));
         double hi = static_cast<double>(rng.Uniform(0, 3));
         Sd sd(0, y, Interval::Between(lo, hi));
         return EmbeddedPair{Ptr(sd), Ptr(CsdFromSd(sd))};
       }},
  };
  return edges;
}

}  // namespace famtree
