#ifndef FAMTREE_CORE_CLASS_INFO_H_
#define FAMTREE_CORE_CLASS_INFO_H_

#include <string>
#include <vector>

#include "deps/dependency.h"

namespace famtree {

/// The data-type category a dependency class targets (Table 2 grouping).
enum class DataCategory { kCategorical, kHeterogeneous, kNumerical };

const char* DataCategoryName(DataCategory c);

/// Application tasks of Table 3.
enum class Application {
  kViolationDetection,
  kDataRepairing,
  kQueryOptimization,
  kConsistentQueryAnswering,
  kDataDeduplication,
  kDataPartition,
  kSchemaNormalization,
  kModelFairness,
};

const char* ApplicationName(Application a);
const std::vector<Application>& AllApplications();

/// Complexity of a class's discovery problem as classified by Fig. 3.
enum class DiscoveryComplexity {
  /// Discovery/tableau construction is polynomial-time (e.g. CSDs).
  kPolynomial,
  /// A core decision problem of discovery is NP-complete.
  kNpComplete,
  /// Discovery is NP-hard (in the number of attributes).
  kNpHard,
  /// Output (minimal cover) can be exponential in the attribute count,
  /// though each candidate validates in polynomial time.
  kExponentialOutput,
};

const char* DiscoveryComplexityName(DiscoveryComplexity c);

/// Everything Table 2 records about one dependency class, plus the Fig. 3
/// complexity classification and the Table 3 application tasks.
struct ClassInfo {
  DependencyClass id;
  DataCategory category;
  /// Year the notation was proposed (Table 2 / Fig. 2 timeline).
  int year;
  /// Number of publications using the dependency per the paper's Google
  /// Scholar count (Fig. 1B / Table 2). Zero where the paper leaves the
  /// cell blank (AMVDs, proposed 2020).
  int publications;
  /// Reference lists exactly as printed in Table 2.
  std::string refs_definition;
  std::string refs_discovery;
  std::string refs_application;
  DiscoveryComplexity discovery_complexity;
  /// Short justification for the complexity cell (paper section).
  std::string complexity_note;
  std::vector<Application> applications;
};

/// Metadata for one class.
const ClassInfo& GetClassInfo(DependencyClass cls);

/// All 24 classes in Table 2 row order.
const std::vector<ClassInfo>& AllClassInfos();

}  // namespace famtree

#endif  // FAMTREE_CORE_CLASS_INFO_H_
