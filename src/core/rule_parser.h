#ifndef FAMTREE_CORE_RULE_PARSER_H_
#define FAMTREE_CORE_RULE_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "deps/dependency.h"
#include "relation/schema.h"

namespace famtree {

/// Parses one textual rule against a schema. Attribute names are resolved
/// through the schema; thresholds/metrics use the column-type defaults
/// (edit distance for strings, |a-b| for numerics).
///
/// Supported syntax (one rule per line; '#' starts a comment):
///
///   fd:   address -> region
///   sfd(0.9):  address -> region          # strength threshold
///   pfd(0.75): address -> region          # probability threshold
///   afd(0.25): address -> region          # g3 error bound
///   nud(2):    address -> region          # fanout weight
///   mvd:  address, rate ->> region
///   mfd(500):  name, region -> price      # delta on every RHS attr
///   ned:  name^1, address^5 -> street^5   # distance thresholds
///   dd:   name(<=1), street(<=5) -> address(<=5)
///         # ranges: (<=x), (>=x), [lo,hi], (=x)
///   md:   street~5, region~2 -> zip       # similarity -> identify
///   od:   nights^<= -> avg/night^>=       # marks: ^<=, ^<, ^>=, ^>
///   ofd:  subtotal ->P taxes              # pointwise order
///   sd[100,200]: nights -> subtotal       # gap interval; inf/-inf ok
///   cfd:  [region='Jackson', name=_] -> [address=_]
///   ecfd: [rate<=200, name=_] -> [address=_]
///   dc:   not(ta.subtotal < tb.subtotal and ta.taxes > tb.taxes)
///         # operands: ta.col, tb.col, numbers, 'string constants'
///
/// The remaining classes (FHDs, AMVDs, CDDs, CDs, PACs, FFDs, CMDs, CSDs)
/// carry structure (blocks, resemblance relations, tableaux, similarity
/// functions) that does not fit a one-line syntax; construct those via the
/// typed API.
Result<DependencyPtr> ParseRule(const std::string& line,
                                const Schema& schema);

/// Parses a rule file / multi-line text: one rule per line, blank lines
/// and '#' comments ignored. Fails on the first bad line, reporting its
/// number.
Result<std::vector<DependencyPtr>> ParseRules(const std::string& text,
                                              const Schema& schema);

}  // namespace famtree

#endif  // FAMTREE_CORE_RULE_PARSER_H_
