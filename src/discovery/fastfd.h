#ifndef FAMTREE_DISCOVERY_FASTFD_H_
#define FAMTREE_DISCOVERY_FASTFD_H_

#include <vector>

#include "common/status.h"
#include "discovery/tane.h"
#include "relation/relation.h"

namespace famtree {

class RunContext;

struct FastFdOptions {
  /// Bound on emitted dependencies.
  int max_results = 100000;
  /// Bound on LHS size (covers larger than this are cut off).
  int max_lhs_size = 8;
  /// Build difference sets from dictionary codes (one uint32 compare per
  /// cell pair) instead of Value comparisons. Code equality is exactly
  /// Value equality, so the discovered FDs are bit-identical; `false`
  /// keeps the Value-based oracle path.
  bool use_encoding = true;
  /// When set, the quadratic difference-set construction is chunked over
  /// row ranges and the per-RHS cover searches run concurrently; results
  /// merge in attribute order, bit-identical to the serial search for any
  /// thread count (tests/engine_determinism_test.cc).
  ThreadPool* pool = nullptr;
  /// Optional run limits (common/run_context.h): the driver check-points
  /// between deterministic units of work and, when a limit fires, returns
  /// the prefix of its results completed so far with RunReport.exhausted
  /// set. Null means unlimited.
  RunContext* context = nullptr;
};

/// FastFDs [112]: computes the difference sets of all tuple pairs (the
/// attribute sets on which a pair disagrees), then for each RHS attribute
/// finds all minimal covers of the difference sets that contain it via a
/// depth-first search. Each minimal cover X yields a minimal FD X -> A.
/// Exact FDs only; complements TANE's levelwise strategy (Section 1.4.2).
Result<std::vector<DiscoveredFd>> DiscoverFdsFastFd(
    const Relation& relation, const FastFdOptions& options = {});

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_FASTFD_H_
