#include "discovery/cords.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <unordered_map>

#include "common/rng.h"
#include "common/run_context.h"
#include "common/thread_pool.h"
#include "deps/sfd.h"
#include "relation/encoded_relation.h"

namespace famtree {

namespace {

/// Category id of a value, bucketing the long tail into one id.
int CategoryOf(const Value& v,
               std::unordered_map<size_t, int>* ids,
               std::vector<Value>* reps, int cap) {
  size_t h = v.Hash();
  auto it = ids->find(h);
  if (it != ids->end()) return it->second;
  if (static_cast<int>(reps->size()) >= cap) return cap;  // "other" bucket
  int id = static_cast<int>(reps->size());
  ids->emplace(h, id);
  reps->push_back(v);
  return id;
}

}  // namespace

Result<std::vector<DiscoveredSfd>> DiscoverSfdsCords(
    const Relation& relation, const CordsOptions& options) {
  if (options.sample_size <= 0) {
    return Status::Invalid("sample_size must be positive");
  }
  int n = relation.num_rows();
  Rng rng(options.seed);
  std::vector<int> sample_rows;
  if (n <= options.sample_size) {
    sample_rows.resize(n);
    for (int i = 0; i < n; ++i) sample_rows[i] = i;
  } else {
    sample_rows = rng.SampleWithoutReplacement(n, options.sample_size);
  }
  Relation sample = relation.Select(sample_rows);
  // Encoded once per sweep; every pair analysis reads the shared code
  // arrays instead of re-hashing sample Values per pair.
  std::unique_ptr<EncodedRelation> encoded;
  if (options.use_encoding) {
    encoded = std::make_unique<EncodedRelation>(sample);
  }

  // The per-pair analyses only read the shared sample, so the sweep runs
  // one pair per ParallelFor iteration, each writing its pre-assigned slot.
  int nc = relation.num_columns();
  FAMTREE_RETURN_NOT_OK(CheckAttrCapacity(nc, "CORDS discovery"));
  std::vector<std::pair<int, int>> column_pairs;
  column_pairs.reserve(static_cast<size_t>(nc) * std::max(0, nc - 1));
  for (int a = 0; a < nc; ++a) {
    for (int b = 0; b < nc; ++b) {
      if (a != b) column_pairs.push_back({a, b});
    }
  }
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "cords");
  std::vector<DiscoveredSfd> out(column_pairs.size());
  FAMTREE_ASSIGN_OR_RETURN(
      int64_t done,
      AnytimeParallelFor(
          ctx, options.pool, static_cast<int64_t>(column_pairs.size()),
          [&](int64_t idx) {
      auto [a, b] = column_pairs[idx];
      DiscoveredSfd finding;
      finding.lhs = a;
      finding.rhs = b;
      finding.strength =
          encoded != nullptr
              ? Sfd::Strength(*encoded, AttrSet::Single(a), AttrSet::Single(b))
              : Sfd::Strength(sample, AttrSet::Single(a), AttrSet::Single(b));
      finding.is_soft_fd = finding.strength >= options.min_strength;

      int total = sample.num_rows();
      double chi2 = 0.0;
      if (encoded != nullptr) {
        // Contingency table over bucketed categories, columnar: the code of
        // a cell is its first-occurrence rank, so min(code, cap) reproduces
        // the id the hashing path below assigns, with codes >= cap folded
        // into the shared "other" bucket. Every id in [0, ka) occurs in the
        // sample (codes are dense), so the flat totals have no zero slots
        // and the ascending-id walk adds chi2 terms in the same order the
        // std::map-based path does.
        int cap = options.max_categories;
        int ka = total == 0 ? 0 : std::min(encoded->dict_size(a), cap + 1);
        int kb = total == 0 ? 0 : std::min(encoded->dict_size(b), cap + 1);
        const std::vector<uint32_t>& codes_a = encoded->codes(a);
        const std::vector<uint32_t>& codes_b = encoded->codes(b);
        std::vector<int> counts(static_cast<size_t>(ka) * kb, 0);
        std::vector<int> row_totals(ka, 0), col_totals(kb, 0);
        for (int r = 0; r < total; ++r) {
          int ca = std::min(static_cast<int>(codes_a[r]), cap);
          int cb = std::min(static_cast<int>(codes_b[r]), cap);
          ++counts[static_cast<size_t>(ca) * kb + cb];
          ++row_totals[ca];
          ++col_totals[cb];
        }
        if (total > 0 && ka > 1 && kb > 1) {
          for (int ra = 0; ra < ka; ++ra) {
            for (int cb = 0; cb < kb; ++cb) {
              double expected = static_cast<double>(row_totals[ra]) *
                                col_totals[cb] / total;
              double observed = counts[static_cast<size_t>(ra) * kb + cb];
              if (expected > 0) {
                chi2 += (observed - expected) * (observed - expected) /
                        expected;
              }
            }
          }
          int k = std::min(ka, kb);
          double v = std::sqrt(chi2 / (total * std::max(1, k - 1)));
          finding.cramers_v = std::min(1.0, v);
        }
      } else {
        // Value-based oracle path.
        std::unordered_map<size_t, int> ids_a, ids_b;
        std::vector<Value> reps_a, reps_b;
        std::map<std::pair<int, int>, int> counts;
        std::map<int, int> row_totals, col_totals;
        for (int r = 0; r < total; ++r) {
          int ca = CategoryOf(sample.Get(r, a), &ids_a, &reps_a,
                              options.max_categories);
          int cb = CategoryOf(sample.Get(r, b), &ids_b, &reps_b,
                              options.max_categories);
          ++counts[{ca, cb}];
          ++row_totals[ca];
          ++col_totals[cb];
        }
        if (total > 0 && row_totals.size() > 1 && col_totals.size() > 1) {
          for (const auto& [ra, ra_count] : row_totals) {
            for (const auto& [cb, cb_count] : col_totals) {
              double expected =
                  static_cast<double>(ra_count) * cb_count / total;
              auto it = counts.find({ra, cb});
              double observed = it == counts.end() ? 0.0 : it->second;
              if (expected > 0) {
                chi2 += (observed - expected) * (observed - expected) /
                        expected;
              }
            }
          }
          int k = static_cast<int>(
              std::min(row_totals.size(), col_totals.size()));
          double v = std::sqrt(chi2 / (total * std::max(1, k - 1)));
          finding.cramers_v = std::min(1.0, v);
        }
      }
      finding.chi2 = chi2;
      finding.is_correlated = finding.cramers_v >= options.min_cramers_v;
      out[idx] = finding;
      return Status::OK();
          }));
  // On a cutoff, keep the completed pair prefix — pairs are indexed in the
  // deterministic (a, b) enumeration order, so the prefix is the same at
  // any thread count.
  if (done < static_cast<int64_t>(column_pairs.size())) {
    out.resize(done);
    RunContext::MarkExhausted(ctx, RunContext::StopStatus(ctx), done,
                              static_cast<int64_t>(column_pairs.size()));
  } else {
    RunContext::MarkComplete(ctx, static_cast<int64_t>(column_pairs.size()));
  }
  return out;
}

}  // namespace famtree
