#include "discovery/cords.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "deps/sfd.h"

namespace famtree {

namespace {

/// Category id of a value, bucketing the long tail into one id.
int CategoryOf(const Value& v,
               std::unordered_map<size_t, int>* ids,
               std::vector<Value>* reps, int cap) {
  size_t h = v.Hash();
  auto it = ids->find(h);
  if (it != ids->end()) return it->second;
  if (static_cast<int>(reps->size()) >= cap) return cap;  // "other" bucket
  int id = static_cast<int>(reps->size());
  ids->emplace(h, id);
  reps->push_back(v);
  return id;
}

}  // namespace

Result<std::vector<DiscoveredSfd>> DiscoverSfdsCords(
    const Relation& relation, const CordsOptions& options) {
  if (options.sample_size <= 0) {
    return Status::Invalid("sample_size must be positive");
  }
  int n = relation.num_rows();
  Rng rng(options.seed);
  std::vector<int> sample_rows;
  if (n <= options.sample_size) {
    sample_rows.resize(n);
    for (int i = 0; i < n; ++i) sample_rows[i] = i;
  } else {
    sample_rows = rng.SampleWithoutReplacement(n, options.sample_size);
  }
  Relation sample = relation.Select(sample_rows);

  // The per-pair analyses only read the shared sample, so the sweep runs
  // one pair per ParallelFor iteration, each writing its pre-assigned slot.
  int nc = relation.num_columns();
  std::vector<std::pair<int, int>> column_pairs;
  column_pairs.reserve(static_cast<size_t>(nc) * std::max(0, nc - 1));
  for (int a = 0; a < nc; ++a) {
    for (int b = 0; b < nc; ++b) {
      if (a != b) column_pairs.push_back({a, b});
    }
  }
  std::vector<DiscoveredSfd> out(column_pairs.size());
  FAMTREE_RETURN_NOT_OK(ParallelFor(
      options.pool, static_cast<int64_t>(column_pairs.size()),
      [&](int64_t idx) {
      auto [a, b] = column_pairs[idx];
      DiscoveredSfd finding;
      finding.lhs = a;
      finding.rhs = b;
      finding.strength =
          Sfd::Strength(sample, AttrSet::Single(a), AttrSet::Single(b));
      finding.is_soft_fd = finding.strength >= options.min_strength;

      // Contingency table over bucketed categories.
      std::unordered_map<size_t, int> ids_a, ids_b;
      std::vector<Value> reps_a, reps_b;
      std::map<std::pair<int, int>, int> counts;
      std::map<int, int> row_totals, col_totals;
      int total = sample.num_rows();
      for (int r = 0; r < total; ++r) {
        int ca = CategoryOf(sample.Get(r, a), &ids_a, &reps_a,
                            options.max_categories);
        int cb = CategoryOf(sample.Get(r, b), &ids_b, &reps_b,
                            options.max_categories);
        ++counts[{ca, cb}];
        ++row_totals[ca];
        ++col_totals[cb];
      }
      double chi2 = 0.0;
      if (total > 0 && row_totals.size() > 1 && col_totals.size() > 1) {
        for (const auto& [ra, ra_count] : row_totals) {
          for (const auto& [cb, cb_count] : col_totals) {
            double expected =
                static_cast<double>(ra_count) * cb_count / total;
            auto it = counts.find({ra, cb});
            double observed = it == counts.end() ? 0.0 : it->second;
            if (expected > 0) {
              chi2 += (observed - expected) * (observed - expected) /
                      expected;
            }
          }
        }
        int k = static_cast<int>(
            std::min(row_totals.size(), col_totals.size()));
        double v = std::sqrt(chi2 / (total * std::max(1, k - 1)));
        finding.cramers_v = std::min(1.0, v);
      }
      finding.chi2 = chi2;
      finding.is_correlated = finding.cramers_v >= options.min_cramers_v;
      out[idx] = finding;
      return Status::OK();
      }));
  return out;
}

}  // namespace famtree
