#ifndef FAMTREE_DISCOVERY_CD_DISCOVERY_H_
#define FAMTREE_DISCOVERY_CD_DISCOVERY_H_

#include <vector>

#include "common/status.h"
#include "deps/cd.h"
#include "relation/relation.h"

namespace famtree {

struct CdDiscoveryOptions {
  /// Minimum tuple pairs similar under the LHS functions.
  int64_t min_support = 3;
  /// Minimum fraction of LHS-similar pairs similar under the RHS.
  double min_confidence = 0.9;
  /// LHS conjunction size cap.
  int max_lhs_functions = 2;
  int max_results = 10000;
};

struct DiscoveredCd {
  Cd cd;
  int64_t support = 0;
  double confidence = 0.0;
};

/// CD discovery over a dataspace ([92]): given the identified similarity
/// functions (typically built from AssembleDataspace's matched column
/// pairs), finds comparable dependencies /\ theta_i -> theta_r with
/// sufficient support and confidence.
Result<std::vector<DiscoveredCd>> DiscoverCds(
    const Relation& relation,
    const std::vector<SimilarityFunction>& functions,
    const CdDiscoveryOptions& options = {});

/// The pay-as-you-go step of [92]: given the functions already explored,
/// generates only the *new* dependencies that involve `fresh` (as an LHS
/// conjunct or as the RHS) — what a dataspace system runs when a new
/// attribute comparison is identified at query time.
Result<std::vector<DiscoveredCd>> ExtendCdsWithFunction(
    const Relation& relation,
    const std::vector<SimilarityFunction>& known,
    const SimilarityFunction& fresh, const CdDiscoveryOptions& options = {});

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_CD_DISCOVERY_H_
