#ifndef FAMTREE_DISCOVERY_CORDS_H_
#define FAMTREE_DISCOVERY_CORDS_H_

#include <vector>

#include "common/status.h"
#include "relation/relation.h"

namespace famtree {

class RunContext;
class ThreadPool;

struct CordsOptions {
  /// Sample size; CORDS' key property is that this is essentially
  /// independent of the table size (Section 2.1.3).
  int sample_size = 2000;
  /// Minimum strength |dom(X)| / |dom(X,Y)| for an SFD candidate.
  double min_strength = 0.9;
  /// Cramer's-V cutoff above which a column pair is flagged correlated.
  double min_cramers_v = 0.3;
  /// Contingency-table cap per dimension (infrequent values bucketed).
  int max_categories = 25;
  uint64_t seed = 42;
  /// Analyse the sample through the dictionary-encoded backend: category
  /// ids are `min(code, cap)` (codes are dense in first-occurrence order,
  /// exactly the id assignment the Value-hashing path makes) and the
  /// contingency tables are flat arrays walked in ascending id order — the
  /// same summation order as the Value path, so strength, chi2 and
  /// Cramer's V are bit-identical. `false` keeps the Value-based oracle.
  bool use_encoding = true;
  /// When set, the ordered column pairs are analysed in parallel. Every
  /// pair's finding is written into its own pre-assigned output slot, so
  /// the result vector is bit-identical to the serial sweep for any thread
  /// count (the sample itself is always drawn once, serially).
  ThreadPool* pool = nullptr;
  /// Optional run limits (common/run_context.h): the driver check-points
  /// between deterministic units of work and, when a limit fires, returns
  /// the prefix of its results completed so far with RunReport.exhausted
  /// set. Null means unlimited.
  RunContext* context = nullptr;
};

/// One CORDS finding for an ordered column pair (lhs -> rhs).
struct DiscoveredSfd {
  int lhs = 0;
  int rhs = 0;
  /// Strength measured on the sample.
  double strength = 0.0;
  /// Chi-square statistic of the contingency table.
  double chi2 = 0.0;
  /// Cramer's V (normalized association in [0, 1]).
  double cramers_v = 0.0;
  /// Flagged as a soft FD (strength above threshold)?
  bool is_soft_fd = false;
  /// Flagged as correlated (V above threshold)?
  bool is_correlated = false;
};

/// CORDS [55]: sample-based discovery of correlations and soft FDs between
/// column pairs, via distinct-count strength and a robust chi-square
/// analysis. Returns one entry per ordered column pair.
Result<std::vector<DiscoveredSfd>> DiscoverSfdsCords(
    const Relation& relation, const CordsOptions& options = {});

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_CORDS_H_
