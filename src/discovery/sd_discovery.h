#ifndef FAMTREE_DISCOVERY_SD_DISCOVERY_H_
#define FAMTREE_DISCOVERY_SD_DISCOVERY_H_

#include <vector>

#include "common/status.h"
#include "deps/sd.h"
#include "relation/relation.h"

namespace famtree {

class PliCache;
class RunContext;
class ThreadPool;

struct SdDiscoveryOptions {
  /// Quantiles of the observed consecutive-gap distribution that bound the
  /// discovered interval (robust against a few outliers).
  double lo_quantile = 0.05;
  double hi_quantile = 0.95;
  /// Minimum confidence for the SD to be reported.
  double min_confidence = 0.9;
  /// Run on the dictionary-encoded columnar backend (the default): the
  /// order-attribute sort becomes a stable counting sort over code ranks
  /// and the target numerics are decoded once per dictionary code.
  /// `false` keeps the Value-based oracle; the result is bit-identical
  /// either way.
  bool use_encoding = true;
  /// Optional engine hooks: `pool` parallelizes the per-code numeric
  /// decode; the confidence DP itself is loop-carried and stays serial.
  /// `cache` lends its encoding.
  ThreadPool* pool = nullptr;
  PliCache* cache = nullptr;
  /// Optional run limits (common/run_context.h): the driver check-points
  /// between deterministic units of work and, when a limit fires, returns
  /// the prefix of its results completed so far with RunReport.exhausted
  /// set. Null means unlimited.
  RunContext* context = nullptr;
};

struct DiscoveredSd {
  Sd sd;
  double confidence = 0.0;
};

/// Discovers an SD order_attr ->_g target_attr by fitting the gap interval
/// to the observed consecutive-difference distribution [48] and measuring
/// its confidence. Returns NotFound when confidence stays below the bound.
Result<DiscoveredSd> DiscoverSd(const Relation& relation, int order_attr,
                                int target_attr,
                                const SdDiscoveryOptions& options = {});

struct CsdDiscoveryOptions {
  /// Gap interval each tableau row must enforce.
  Interval gap = Interval::AtLeast(0.0);
  /// Minimum per-interval confidence for a candidate interval to be
  /// usable in the tableau.
  double min_confidence = 0.95;
  /// Minimum rows a candidate interval must span.
  int min_interval_rows = 3;
  /// Fast-path knobs, same convention as SdDiscoveryOptions: the sort and
  /// the numeric decode run encoded; the tableau DP (quadratic, exact)
  /// stays serial.
  bool use_encoding = true;
  ThreadPool* pool = nullptr;
  PliCache* cache = nullptr;
  /// Optional run limits (common/run_context.h): the driver check-points
  /// between deterministic units of work and, when a limit fires, returns
  /// the prefix of its results completed so far with RunReport.exhausted
  /// set. Null means unlimited.
  RunContext* context = nullptr;
};

struct DiscoveredCsd {
  Csd csd;
  /// Number of source rows covered by the tableau.
  int covered_rows = 0;
};

/// CSD tableau discovery (Section 4.4.5, [48]): candidate condition
/// intervals are the O(k^2) ranges between distinct order-attribute
/// values; an exact dynamic program picks the disjoint set of qualifying
/// intervals maximizing covered rows — the polynomial-time discovery
/// problem highlighted by Fig. 3 (quadratic in the candidate intervals).
Result<DiscoveredCsd> DiscoverCsdTableau(
    const Relation& relation, int order_attr, int target_attr,
    const CsdDiscoveryOptions& options = {});

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_SD_DISCOVERY_H_
