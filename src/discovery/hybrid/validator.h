#ifndef FAMTREE_DISCOVERY_HYBRID_VALIDATOR_H_
#define FAMTREE_DISCOVERY_HYBRID_VALIDATOR_H_

#include <cstdint>
#include <vector>

#include "common/attr_set.h"
#include "common/run_context.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "discovery/hybrid/fd_tree.h"
#include "engine/pli_cache.h"
#include "relation/encoded_relation.h"
#include "relation/partition.h"

namespace famtree {

/// Frontier validator of the hybrid FD engine: checks exactly the
/// positive-cover entries of one lattice level against PLIs — the HyFD
/// move that replaces level-wide candidate enumeration with the (usually
/// tiny) cover frontier. An entry X -> A is valid iff every stripped class
/// of PLI(X) is constant on A's codes; an invalid entry reports its first
/// violating pair (first non-constant class in partition order, the class
/// head against the first row disagreeing with it), which the driver feeds
/// back to the sampler/inductor as a new violating agree set.
///
/// Determinism: entries are validated in parallel into index-addressed
/// slots and the caller replays them in the collected (lhs.mask, rhs)
/// order; PLI class content is deterministic (PliCache's recipe), so the
/// violating pair of an invalid entry never depends on the thread count.
class FrontierValidator {
 public:
  struct Violation {
    int rhs = 0;
    int row_i = 0;
    int row_j = 0;
  };

  /// Per-entry outcome, rhs slots split into the valid set and the
  /// violations (ascending rhs within the entry).
  struct EntryResult {
    AttrSet valid_rhs;
    std::vector<Violation> violations;
  };

  struct LevelStats {
    int64_t checks = 0;      // (lhs, rhs) frontier validations
    int64_t violations = 0;  // invalid ones among them
  };

  /// Borrows everything; `cache` may be null (PLIs are then built locally
  /// per entry).
  FrontierValidator(const EncodedRelation& encoded, PliCache* cache,
                    ThreadPool* pool, RunContext* ctx)
      : encoded_(encoded), cache_(cache), pool_(pool), ctx_(ctx) {}

  /// Collects the level-`level` frontier of `tree` into `entries` (sorted
  /// by lhs.mask) and validates every entry, charging the level's scratch
  /// at the "hybrid_validate" site. On a stop the level's results are
  /// abandoned (the driver keeps only fully validated levels).
  Status ValidateLevel(const FdTree& tree, int level,
                       std::vector<FdTree::Entry>* entries,
                       std::vector<EntryResult>* results, LevelStats* stats);

 private:
  Status ValidateEntry(const FdTree::Entry& entry, EntryResult* result) const;

  const EncodedRelation& encoded_;
  PliCache* cache_;
  ThreadPool* pool_;
  RunContext* ctx_;
};

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_HYBRID_VALIDATOR_H_
