#include "discovery/hybrid/sampler.h"

#include <limits>
#include <utility>

namespace famtree {

Result<std::unique_ptr<HybridSampler>> HybridSampler::Make(
    const EncodedRelation& encoded, PliCache* cache, ThreadPool* pool,
    RunContext* ctx) {
  std::unique_ptr<HybridSampler> sampler(new HybridSampler(encoded, ctx));
  int nc = encoded.num_columns();
  std::vector<EvidenceColumn> columns(nc);
  for (int a = 0; a < nc; ++a) {
    columns[a].attr = a;
    columns[a].cmp = EvidenceColumn::Cmp::kEquality;
  }
  if (EvidenceWordBits(columns) <= 64) {
    FAMTREE_ASSIGN_OR_RETURN(sampler->comparator_,
                             PairComparator::Make(encoded, std::move(columns),
                                                  pool));
  }
  // else: wide schema — AgreeSetOf uses the column-by-column code path.
  sampler->plis_.resize(nc);
  for (int a = 0; a < nc; ++a) {
    if (cache != nullptr) {
      sampler->plis_[a] = cache->Get(AttrSet::Single(a), ctx);
      if (sampler->plis_[a] == nullptr) {
        Status stop = RunContext::StopStatus(ctx);
        return RunContext::IsStop(stop)
                   ? stop
                   : Status::Invalid("single-attribute PLI unavailable");
      }
    } else {
      sampler->plis_[a] = std::make_shared<StrippedPartition>(
          StrippedPartition::ForAttribute(encoded, a));
    }
  }
  sampler->window_.assign(nc, 0);
  sampler->efficiency_.assign(nc, std::numeric_limits<double>::infinity());
  return sampler;
}

AttrSet HybridSampler::AgreeFromWord(uint64_t word) const {
  AttrSet agree;
  const std::vector<EvidenceSet::ColumnLayout>& layout = comparator_->layout();
  for (const EvidenceSet::ColumnLayout& col : layout) {
    if (((word >> col.cmp_shift) & 1u) == 0) agree.Add(col.attr);
  }
  return agree;
}

AttrSet HybridSampler::AgreeSetOf(int i, int j) const {
  if (comparator_ != nullptr) {
    return AgreeFromWord(comparator_->Word(i, j));
  }
  AttrSet agree;
  // Wide schema: the packed word cannot carry one equality facet per
  // column, so compare the dictionary codes directly (bit-identical to the
  // comparator path — both test code equality per column).
  int nc = encoded_.num_columns();
  for (int a = 0; a < nc; ++a) {
    const std::vector<uint32_t>& codes = encoded_.codes(a);
    if (codes[i] == codes[j]) agree.Add(a);
  }
  return agree;
}

bool HybridSampler::MarkSeen(AttrSet agree) {
  return seen_.insert(agree).second;
}

Result<int64_t> HybridSampler::RunPass(int attr, int window,
                                       std::vector<AttrSet>* out) {
  const StrippedPartition& pli = *plis_[attr];
  int64_t pairs = 0;
  for (int c = 0; c < pli.num_classes(); ++c) {
    const int* rows = pli.class_begin(c);
    int size = pli.class_size(c);
    for (int k = 0; k + window < size; ++k) {
      if ((pairs & 0xFFF) == 0) {
        FAMTREE_RETURN_NOT_OK(RunContext::Poll(ctx_));
      }
      ++pairs;
      if (comparator_ != nullptr) {
        // Word-level prefilter: a word seen before decodes to an agree set
        // seen before, so only fresh words pay the unpack + set probe.
        uint64_t word = comparator_->Word(rows[k], rows[k + window]);
        if (!seen_words_.insert(word).second) continue;
        AttrSet agree = AgreeFromWord(word);
        if (MarkSeen(agree)) out->push_back(agree);
      } else {
        AttrSet agree = AgreeSetOf(rows[k], rows[k + window]);
        if (MarkSeen(agree)) out->push_back(agree);
      }
    }
  }
  return pairs;
}

Status HybridSampler::SampleRounds(double min_efficiency,
                                   std::vector<AttrSet>* out, Stats* stats) {
  int nc = encoded_.num_columns();
  while (true) {
    // Most efficient attribute next; ties break to the lowest index, so
    // round order is deterministic.
    int best = -1;
    for (int a = 0; a < nc; ++a) {
      if (best < 0 || efficiency_[a] > efficiency_[best]) best = a;
    }
    // A retired attribute (efficiency 0) never runs again even under a
    // zero floor; fresh attributes start at +inf and always get one pass.
    if (best < 0 || efficiency_[best] <= 0.0 ||
        efficiency_[best] < min_efficiency) {
      break;
    }
    FAMTREE_RETURN_NOT_OK(RunContext::Checkpoint(ctx_));
    size_t before = out->size();
    ++window_[best];
    FAMTREE_ASSIGN_OR_RETURN(int64_t pairs,
                             RunPass(best, window_[best], out));
    int64_t fresh = static_cast<int64_t>(out->size() - before);
    // The sampled agree sets are the pass's lasting allocation; charge them
    // before the pass is considered complete.
    Status charged = RunContext::ChargeAlloc(
        ctx_, static_cast<size_t>(fresh) * sizeof(AttrSet), "hybrid_sample");
    if (!charged.ok()) {
      out->resize(before);
      return charged;
    }
    efficiency_[best] =
        pairs == 0 ? 0.0 : static_cast<double>(fresh) / pairs;
    if (stats != nullptr) {
      ++stats->passes;
      stats->sampled_pairs += pairs;
      stats->new_agree_sets += fresh;
    }
  }
  return Status::OK();
}

}  // namespace famtree
