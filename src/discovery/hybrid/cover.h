#ifndef FAMTREE_DISCOVERY_HYBRID_COVER_H_
#define FAMTREE_DISCOVERY_HYBRID_COVER_H_

#include <functional>
#include <vector>

#include "common/attr_set.h"
#include "discovery/hybrid/fd_tree.h"

namespace famtree {

/// The negative cover of the hybrid engine: the maximal violating bit sets
/// observed so far (FDep's "negative cover", one rhs slot per consequent).
/// For FDs a violating set is the agree set of a tuple pair; for MDs it is
/// the satisfied-predicate set of a non-identified evidence word. Only
/// maximal sets matter — a subset of an already-processed violating set
/// yields no new positive-cover work (every generalization it would remove
/// was removed, and every specialization it would add was either added or
/// subsumed when the superset was processed) — so AddMaximal doubles as the
/// dedup gate in front of the Inductor.
class NegativeCover {
 public:
  explicit NegativeCover(int num_bits) : tree_(num_bits) {}

  /// Records `violating` under `rhs`; returns false (and changes nothing)
  /// when a stored superset-or-equal already subsumes it.
  bool AddMaximal(AttrSet violating, int rhs) {
    if (tree_.ContainsSpecialization(violating, rhs)) return false;
    tree_.RemoveGeneralizations(violating, rhs, nullptr);
    tree_.Add(violating, rhs);
    return true;
  }

  const FdTree& tree() const { return tree_; }
  int64_t size() const { return tree_.CountEntries(); }
  size_t footprint_bytes() const { return tree_.footprint_bytes(); }

 private:
  FdTree tree_;
};

/// Specializes a positive cover tree against violating sets (the FDep /
/// HyFD induction step), generically over what a "bit" means. The consumer
/// supplies, per violating set, the atomic extensions a removed lhs may
/// grow by — single attributes outside the agree set for FDs, per-attribute
/// upward-closed threshold closures for MDs — plus a size predicate, so the
/// same induction serves both dependency classes.
///
/// Invariant maintained (given extensions not contained in `violating`, so
/// every specialization strictly grows its removed lhs): after
/// every call, no stored lhs under `rhs` is a subset of any processed
/// violating set, and per rhs no stored lhs is a subset of another (the
/// strict cover invariant AddMinimal enforces).
class Inductor {
 public:
  /// Borrows the positive cover; the caller seeds it (typically with the
  /// empty lhs for every rhs slot in use).
  explicit Inductor(FdTree* positive) : positive_(positive) {}

  /// Removes every stored generalization of `violating` under `rhs` and
  /// re-inserts minimal specializations: each removed lhs extended by each
  /// extension, filtered through `keep` (the size cap). Returns the number
  /// of lhs sets removed.
  int SpecializeAgainst(AttrSet violating, int rhs,
                        const std::vector<AttrSet>& extensions,
                        const std::function<bool(AttrSet)>& keep) {
    removed_.clear();
    positive_->RemoveGeneralizations(violating, rhs, &removed_);
    for (AttrSet lhs : removed_) {
      for (AttrSet ext : extensions) {
        AttrSet specialized = lhs.Union(ext);
        if (!keep(specialized)) continue;
        positive_->AddMinimal(specialized, rhs);
      }
    }
    return static_cast<int>(removed_.size());
  }

  FdTree* positive_cover() { return positive_; }

 private:
  FdTree* positive_;
  std::vector<AttrSet> removed_;  // scratch, reused across calls
};

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_HYBRID_COVER_H_
