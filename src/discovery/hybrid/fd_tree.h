#ifndef FAMTREE_DISCOVERY_HYBRID_FD_TREE_H_
#define FAMTREE_DISCOVERY_HYBRID_FD_TREE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/attr_set.h"

namespace famtree {

/// Cover tree of the hybrid sampling + induction engine (the FDTreeElement
/// of FDep / HyFD): a prefix trie over bit indices in ascending order, where
/// every stored entry is a (lhs, rhs) pair — `lhs` an AttrSet of generic
/// bits and `rhs` one of up to kMaxAttrs consequent slots, kept as an
/// AttrSet per node so one tree holds the covers of every RHS at once.
///
/// The bits are *generic* on purpose: the FD consumer stores attribute
/// indices directly, while the MD consumer stores similarity-predicate bits
/// (one per (attribute, threshold) pair, upward-closed per attribute), so
/// the same subset/superset machinery answers generalization questions for
/// both dependency classes.
///
/// The induction loop (hybrid/inductor.h) maintains the *strict cover
/// invariant*: for any rhs, no stored lhs is a subset of another stored
/// lhs. AddMinimal is the invariant-preserving insert; the raw Add exists
/// for tests that want to stage arbitrary content.
///
/// Determinism: the trie structure is a pure function of the (multi)set of
/// entries, and every Collect* walk visits children in ascending bit order,
/// so collection order never depends on insertion order beyond the entry
/// set itself. Not thread-safe — the drivers mutate it only from the driver
/// thread.
class FdTree {
 public:
  /// An entry with every rhs slot it is stored under.
  struct Entry {
    AttrSet lhs;
    AttrSet rhs_bits;
  };

  /// `num_bits` generic bit slots (<= kMaxAttrs) for lhs sets; rhs slots
  /// are addressed 0..kMaxAttrs-1.
  explicit FdTree(int num_bits);

  int num_bits() const { return num_bits_; }

  /// Unconditional insert of lhs -> rhs (no invariant maintenance).
  void Add(AttrSet lhs, int rhs);

  /// Invariant-preserving insert: no-op (returns false) when a
  /// generalization lhs' ⊆ lhs with `rhs` is already stored; otherwise
  /// removes every stored specialization lhs'' ⊋ lhs of `rhs` and inserts.
  bool AddMinimal(AttrSet lhs, int rhs);

  /// Removes exactly (lhs, rhs) if present; returns whether it was.
  bool Remove(AttrSet lhs, int rhs);

  /// True when some stored lhs' ⊆ lhs carries `rhs` (subset-or-equal).
  bool ContainsGeneralization(AttrSet lhs, int rhs) const;

  /// True when some stored lhs' ⊇ lhs carries `rhs` (superset-or-equal).
  bool ContainsSpecialization(AttrSet lhs, int rhs) const;

  /// Removes every stored lhs' ⊆ lhs carrying `rhs`, appending the removed
  /// sets to `removed` (ascending-bit-path trie order) when non-null.
  void RemoveGeneralizations(AttrSet lhs, int rhs,
                             std::vector<AttrSet>* removed);

  /// Removes every stored lhs' ⊇ lhs carrying `rhs`.
  void RemoveSpecializations(AttrSet lhs, int rhs);

  /// All entries with |lhs| == `level`, sorted by (lhs mask order, then rhs
  /// bits ascending within the entry's rhs_bits set).
  void CollectLevel(int level, std::vector<Entry>* out) const;

  /// Every stored entry, sorted by lhs mask order.
  void CollectAll(std::vector<Entry>* out) const;

  /// Number of stored (lhs, rhs) pairs.
  int64_t CountEntries() const;

  /// Approximate heap footprint, for memory-budget charges.
  size_t footprint_bytes() const;

 private:
  struct Node {
    /// One child per bit index greater than this node's path bits; lazily
    /// allocated, so leaf-heavy covers stay compact.
    std::vector<std::unique_ptr<Node>> children;
    /// RHS slots for which the path bit set is a stored lhs.
    AttrSet entry_rhs;
    /// Union of entry_rhs over this node and its subtree (search pruning).
    AttrSet subtree_rhs;
  };

  Node* ChildOf(Node* node, int bit, bool create);

  bool ContainsGeneralizationAt(const Node* node, const AttrSet& lhs,
                                int rhs) const;
  bool ContainsSpecializationAt(const Node* node, AttrSet remaining,
                                int rhs) const;
  /// Returns the recomputed subtree_rhs of `node`.
  AttrSet RemoveGeneralizationsAt(Node* node, AttrSet path,
                                  const AttrSet& lhs, int rhs,
                                  std::vector<AttrSet>* removed);
  AttrSet RemoveSpecializationsAt(Node* node, AttrSet remaining, int rhs);
  AttrSet ClearRhsInSubtree(Node* node, int rhs);
  void CollectAt(const Node* node, AttrSet path, int level,
                 std::vector<Entry>* out) const;

  int num_bits_;
  std::unique_ptr<Node> root_;
  int64_t num_entries_ = 0;
  int64_t num_nodes_ = 1;
};

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_HYBRID_FD_TREE_H_
