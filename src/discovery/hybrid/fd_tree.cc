#include "discovery/hybrid/fd_tree.h"

#include <algorithm>
#include <cassert>

namespace famtree {

FdTree::FdTree(int num_bits)
    : num_bits_(num_bits), root_(std::make_unique<Node>()) {
  assert(num_bits >= 0 && num_bits <= kMaxAttrs);
}

FdTree::Node* FdTree::ChildOf(Node* node, int bit, bool create) {
  if (node->children.empty()) {
    if (!create) return nullptr;
    node->children.resize(num_bits_);
  }
  std::unique_ptr<Node>& slot = node->children[bit];
  if (slot == nullptr && create) {
    slot = std::make_unique<Node>();
    ++num_nodes_;
  }
  return slot.get();
}

void FdTree::Add(AttrSet lhs, int rhs) {
  Node* node = root_.get();
  node->subtree_rhs.Add(rhs);
  AttrSet remaining = lhs;
  int bit;
  while ((bit = remaining.PopLowestBit()) >= 0) {
    node = ChildOf(node, bit, /*create=*/true);
    node->subtree_rhs.Add(rhs);
  }
  if (!node->entry_rhs.Contains(rhs)) {
    node->entry_rhs.Add(rhs);
    ++num_entries_;
  }
}

bool FdTree::AddMinimal(AttrSet lhs, int rhs) {
  if (ContainsGeneralization(lhs, rhs)) return false;
  RemoveSpecializations(lhs, rhs);
  Add(lhs, rhs);
  return true;
}

bool FdTree::Remove(AttrSet lhs, int rhs) {
  // Walk the exact path, keeping it so subtree_rhs can be rebuilt upward.
  std::vector<Node*> path;
  path.push_back(root_.get());
  AttrSet remaining = lhs;
  Node* node = root_.get();
  int bit;
  while ((bit = remaining.PopLowestBit()) >= 0) {
    node = ChildOf(node, bit, /*create=*/false);
    if (node == nullptr) return false;
    path.push_back(node);
  }
  if (!node->entry_rhs.Contains(rhs)) return false;
  node->entry_rhs.Remove(rhs);
  --num_entries_;
  // Rebuild subtree_rhs bottom-up along the path (children elsewhere are
  // untouched, so only the visited chain can change).
  for (size_t i = path.size(); i-- > 0;) {
    Node* n = path[i];
    AttrSet bits = n->entry_rhs;
    for (const std::unique_ptr<Node>& c : n->children) {
      if (c != nullptr) bits = bits.Union(c->subtree_rhs);
    }
    n->subtree_rhs = bits;
  }
  return true;
}

bool FdTree::ContainsGeneralization(AttrSet lhs, int rhs) const {
  return ContainsGeneralizationAt(root_.get(), lhs, rhs);
}

bool FdTree::ContainsGeneralizationAt(const Node* node, const AttrSet& lhs,
                                      int rhs) const {
  if (node->entry_rhs.Contains(rhs)) return true;
  if (node->children.empty()) return false;
  for (int bit : lhs) {
    const Node* child = node->children[bit].get();
    if (child == nullptr || !child->subtree_rhs.Contains(rhs)) continue;
    // Children only hold bits greater than `bit`, so passing the full mask
    // down is safe — lower bits can never match again.
    if (ContainsGeneralizationAt(child, lhs, rhs)) return true;
  }
  return false;
}

bool FdTree::ContainsSpecialization(AttrSet lhs, int rhs) const {
  return ContainsSpecializationAt(root_.get(), lhs, rhs);
}

bool FdTree::ContainsSpecializationAt(const Node* node, AttrSet remaining,
                                      int rhs) const {
  if (!node->subtree_rhs.Contains(rhs)) return false;
  if (remaining.empty()) return true;  // anything below is a superset
  if (node->children.empty()) return false;
  const int need = remaining.LowestBit();
  // Paths grow in ascending bit order: a child above `need` can never pick
  // the needed bit up later.
  for (int bit = 0; bit <= need; ++bit) {
    const Node* child = node->children[bit].get();
    if (child == nullptr) continue;
    AttrSet rest = bit == need ? remaining.Without(need) : remaining;
    if (ContainsSpecializationAt(child, rest, rhs)) return true;
  }
  return false;
}

void FdTree::RemoveGeneralizations(AttrSet lhs, int rhs,
                                   std::vector<AttrSet>* removed) {
  RemoveGeneralizationsAt(root_.get(), AttrSet(), lhs, rhs, removed);
}

AttrSet FdTree::RemoveGeneralizationsAt(Node* node, AttrSet path,
                                        const AttrSet& lhs, int rhs,
                                        std::vector<AttrSet>* removed) {
  if (node->entry_rhs.Contains(rhs)) {
    node->entry_rhs.Remove(rhs);
    --num_entries_;
    if (removed != nullptr) removed->push_back(path);
  }
  AttrSet bits = node->entry_rhs;
  if (!node->children.empty()) {
    for (int bit : lhs) {
      Node* child = node->children[bit].get();
      if (child == nullptr) continue;
      if (child->subtree_rhs.Contains(rhs)) {
        child->subtree_rhs =
            RemoveGeneralizationsAt(child, path.With(bit), lhs, rhs, removed);
        if (child->subtree_rhs.empty()) {
          node->children[bit].reset();
          --num_nodes_;
          continue;
        }
      }
      bits = bits.Union(child->subtree_rhs);
    }
    // Children outside lhs were not visited; fold their bits back in.
    for (const std::unique_ptr<Node>& c : node->children) {
      if (c != nullptr) bits = bits.Union(c->subtree_rhs);
    }
  }
  node->subtree_rhs = bits;
  return bits;
}

void FdTree::RemoveSpecializations(AttrSet lhs, int rhs) {
  root_->subtree_rhs = RemoveSpecializationsAt(root_.get(), lhs, rhs);
}

AttrSet FdTree::RemoveSpecializationsAt(Node* node, AttrSet remaining,
                                        int rhs) {
  if (!node->subtree_rhs.Contains(rhs)) return node->subtree_rhs;
  if (remaining.empty()) return ClearRhsInSubtree(node, rhs);
  if (node->children.empty()) return node->subtree_rhs;
  const int need = remaining.LowestBit();
  for (int bit = 0; bit <= need; ++bit) {
    Node* child = node->children[bit].get();
    if (child == nullptr) continue;
    AttrSet rest = bit == need ? remaining.Without(need) : remaining;
    child->subtree_rhs = RemoveSpecializationsAt(child, rest, rhs);
    if (child->subtree_rhs.empty()) {
      node->children[bit].reset();
      --num_nodes_;
    }
  }
  AttrSet bits = node->entry_rhs;
  for (const std::unique_ptr<Node>& c : node->children) {
    if (c != nullptr) bits = bits.Union(c->subtree_rhs);
  }
  node->subtree_rhs = bits;
  return bits;
}

AttrSet FdTree::ClearRhsInSubtree(Node* node, int rhs) {
  if (node->entry_rhs.Contains(rhs)) {
    node->entry_rhs.Remove(rhs);
    --num_entries_;
  }
  AttrSet bits = node->entry_rhs;
  for (size_t i = 0; i < node->children.size(); ++i) {
    Node* child = node->children[i].get();
    if (child == nullptr) continue;
    if (child->subtree_rhs.Contains(rhs)) {
      child->subtree_rhs = ClearRhsInSubtree(child, rhs);
      if (child->subtree_rhs.empty()) {
        node->children[i].reset();
        --num_nodes_;
        continue;
      }
    }
    bits = bits.Union(child->subtree_rhs);
  }
  node->subtree_rhs = bits;
  return bits;
}

void FdTree::CollectLevel(int level, std::vector<Entry>* out) const {
  size_t start = out->size();
  CollectAt(root_.get(), AttrSet(), level, out);
  std::sort(out->begin() + start, out->end(),
            [](const Entry& a, const Entry& b) { return a.lhs < b.lhs; });
}

void FdTree::CollectAll(std::vector<Entry>* out) const {
  CollectLevel(-1, out);
}

void FdTree::CollectAt(const Node* node, AttrSet path, int level,
                       std::vector<Entry>* out) const {
  if (!node->entry_rhs.empty() && (level < 0 || path.size() == level)) {
    out->push_back(Entry{path, node->entry_rhs});
  }
  if (level >= 0 && path.size() >= level) return;  // paths only grow
  for (size_t bit = 0; bit < node->children.size(); ++bit) {
    const Node* child = node->children[bit].get();
    if (child == nullptr) continue;
    CollectAt(child, path.With(static_cast<int>(bit)), level, out);
  }
}

int64_t FdTree::CountEntries() const { return num_entries_; }

size_t FdTree::footprint_bytes() const {
  return static_cast<size_t>(num_nodes_) *
         (sizeof(Node) + sizeof(std::unique_ptr<Node>) * num_bits_);
}

}  // namespace famtree
