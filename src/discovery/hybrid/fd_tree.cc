#include "discovery/hybrid/fd_tree.h"

#include <algorithm>

namespace famtree {

namespace {

int LowestIndex(uint64_t mask) { return __builtin_ctzll(mask); }

}  // namespace

FdTree::FdTree(int num_bits)
    : num_bits_(num_bits), root_(std::make_unique<Node>()) {}

FdTree::Node* FdTree::ChildOf(Node* node, int bit, bool create) {
  if (node->children.empty()) {
    if (!create) return nullptr;
    node->children.resize(num_bits_);
  }
  std::unique_ptr<Node>& slot = node->children[bit];
  if (slot == nullptr && create) {
    slot = std::make_unique<Node>();
    ++num_nodes_;
  }
  return slot.get();
}

void FdTree::Add(AttrSet lhs, int rhs) {
  const uint64_t rhs_bit = uint64_t{1} << rhs;
  Node* node = root_.get();
  node->subtree_rhs |= rhs_bit;
  uint64_t remaining = lhs.mask();
  while (remaining != 0) {
    int bit = LowestIndex(remaining);
    remaining &= remaining - 1;
    node = ChildOf(node, bit, /*create=*/true);
    node->subtree_rhs |= rhs_bit;
  }
  if ((node->entry_rhs & rhs_bit) == 0) {
    node->entry_rhs |= rhs_bit;
    ++num_entries_;
  }
}

bool FdTree::AddMinimal(AttrSet lhs, int rhs) {
  if (ContainsGeneralization(lhs, rhs)) return false;
  RemoveSpecializations(lhs, rhs);
  Add(lhs, rhs);
  return true;
}

bool FdTree::Remove(AttrSet lhs, int rhs) {
  const uint64_t rhs_bit = uint64_t{1} << rhs;
  // Walk the exact path, keeping it so subtree_rhs can be rebuilt upward.
  std::vector<Node*> path;
  path.push_back(root_.get());
  uint64_t remaining = lhs.mask();
  Node* node = root_.get();
  while (remaining != 0) {
    int bit = LowestIndex(remaining);
    remaining &= remaining - 1;
    node = ChildOf(node, bit, /*create=*/false);
    if (node == nullptr) return false;
    path.push_back(node);
  }
  if ((node->entry_rhs & rhs_bit) == 0) return false;
  node->entry_rhs &= ~rhs_bit;
  --num_entries_;
  // Rebuild subtree_rhs bottom-up along the path (children elsewhere are
  // untouched, so only the visited chain can change).
  for (size_t i = path.size(); i-- > 0;) {
    Node* n = path[i];
    uint64_t bits = n->entry_rhs;
    for (const std::unique_ptr<Node>& c : n->children) {
      if (c != nullptr) bits |= c->subtree_rhs;
    }
    n->subtree_rhs = bits;
  }
  return true;
}

bool FdTree::ContainsGeneralization(AttrSet lhs, int rhs) const {
  return ContainsGeneralizationAt(root_.get(), lhs.mask(), uint64_t{1} << rhs);
}

bool FdTree::ContainsGeneralizationAt(const Node* node, uint64_t lhs_mask,
                                      uint64_t rhs_bit) const {
  if ((node->entry_rhs & rhs_bit) != 0) return true;
  if (node->children.empty()) return false;
  uint64_t m = lhs_mask;
  while (m != 0) {
    int bit = LowestIndex(m);
    m &= m - 1;
    const Node* child = node->children[bit].get();
    if (child == nullptr || (child->subtree_rhs & rhs_bit) == 0) continue;
    // Children only hold bits greater than `bit`, so passing the full mask
    // down is safe — lower bits can never match again.
    if (ContainsGeneralizationAt(child, lhs_mask, rhs_bit)) return true;
  }
  return false;
}

bool FdTree::ContainsSpecialization(AttrSet lhs, int rhs) const {
  return ContainsSpecializationAt(root_.get(), lhs.mask(),
                                  uint64_t{1} << rhs);
}

bool FdTree::ContainsSpecializationAt(const Node* node, uint64_t remaining,
                                      uint64_t rhs_bit) const {
  if ((node->subtree_rhs & rhs_bit) == 0) return false;
  if (remaining == 0) return true;  // anything below is a superset
  if (node->children.empty()) return false;
  const int need = LowestIndex(remaining);
  // Paths grow in ascending bit order: a child above `need` can never pick
  // the needed bit up later.
  for (int bit = 0; bit <= need; ++bit) {
    const Node* child = node->children[bit].get();
    if (child == nullptr) continue;
    uint64_t rest = bit == need ? (remaining & (remaining - 1)) : remaining;
    if (ContainsSpecializationAt(child, rest, rhs_bit)) return true;
  }
  return false;
}

void FdTree::RemoveGeneralizations(AttrSet lhs, int rhs,
                                   std::vector<AttrSet>* removed) {
  RemoveGeneralizationsAt(root_.get(), AttrSet(), lhs.mask(),
                          uint64_t{1} << rhs, removed);
}

uint64_t FdTree::RemoveGeneralizationsAt(Node* node, AttrSet path,
                                         uint64_t lhs_mask, uint64_t rhs_bit,
                                         std::vector<AttrSet>* removed) {
  if ((node->entry_rhs & rhs_bit) != 0) {
    node->entry_rhs &= ~rhs_bit;
    --num_entries_;
    if (removed != nullptr) removed->push_back(path);
  }
  uint64_t bits = node->entry_rhs;
  if (!node->children.empty()) {
    uint64_t m = lhs_mask;
    while (m != 0) {
      int bit = LowestIndex(m);
      m &= m - 1;
      Node* child = node->children[bit].get();
      if (child == nullptr) continue;
      if ((child->subtree_rhs & rhs_bit) != 0) {
        child->subtree_rhs = RemoveGeneralizationsAt(
            child, path.With(bit), lhs_mask, rhs_bit, removed);
        if (child->subtree_rhs == 0) {
          node->children[bit].reset();
          --num_nodes_;
          continue;
        }
      }
      bits |= child->subtree_rhs;
    }
    // Children outside lhs were not visited; fold their bits back in.
    for (const std::unique_ptr<Node>& c : node->children) {
      if (c != nullptr) bits |= c->subtree_rhs;
    }
  }
  node->subtree_rhs = bits;
  return bits;
}

void FdTree::RemoveSpecializations(AttrSet lhs, int rhs) {
  root_->subtree_rhs = RemoveSpecializationsAt(root_.get(), lhs.mask(),
                                               uint64_t{1} << rhs);
}

uint64_t FdTree::RemoveSpecializationsAt(Node* node, uint64_t remaining,
                                         uint64_t rhs_bit) {
  if ((node->subtree_rhs & rhs_bit) == 0) return node->subtree_rhs;
  if (remaining == 0) return ClearRhsInSubtree(node, rhs_bit);
  if (node->children.empty()) return node->subtree_rhs;
  const int need = LowestIndex(remaining);
  for (int bit = 0; bit <= need; ++bit) {
    Node* child = node->children[bit].get();
    if (child == nullptr) continue;
    uint64_t rest = bit == need ? (remaining & (remaining - 1)) : remaining;
    child->subtree_rhs = RemoveSpecializationsAt(child, rest, rhs_bit);
    if (child->subtree_rhs == 0) {
      node->children[bit].reset();
      --num_nodes_;
    }
  }
  uint64_t bits = node->entry_rhs;
  for (const std::unique_ptr<Node>& c : node->children) {
    if (c != nullptr) bits |= c->subtree_rhs;
  }
  node->subtree_rhs = bits;
  return bits;
}

uint64_t FdTree::ClearRhsInSubtree(Node* node, uint64_t rhs_bit) {
  if ((node->entry_rhs & rhs_bit) != 0) {
    node->entry_rhs &= ~rhs_bit;
    --num_entries_;
  }
  uint64_t bits = node->entry_rhs;
  for (size_t i = 0; i < node->children.size(); ++i) {
    Node* child = node->children[i].get();
    if (child == nullptr) continue;
    if ((child->subtree_rhs & rhs_bit) != 0) {
      child->subtree_rhs = ClearRhsInSubtree(child, rhs_bit);
      if (child->subtree_rhs == 0) {
        node->children[i].reset();
        --num_nodes_;
        continue;
      }
    }
    bits |= child->subtree_rhs;
  }
  node->subtree_rhs = bits;
  return bits;
}

void FdTree::CollectLevel(int level, std::vector<Entry>* out) const {
  size_t start = out->size();
  CollectAt(root_.get(), AttrSet(), level, out);
  std::sort(out->begin() + start, out->end(),
            [](const Entry& a, const Entry& b) {
              return a.lhs.mask() < b.lhs.mask();
            });
}

void FdTree::CollectAll(std::vector<Entry>* out) const {
  CollectLevel(-1, out);
}

void FdTree::CollectAt(const Node* node, AttrSet path, int level,
                       std::vector<Entry>* out) const {
  if (node->entry_rhs != 0 && (level < 0 || path.size() == level)) {
    out->push_back(Entry{path, node->entry_rhs});
  }
  if (level >= 0 && path.size() >= level) return;  // paths only grow
  for (size_t bit = 0; bit < node->children.size(); ++bit) {
    const Node* child = node->children[bit].get();
    if (child == nullptr) continue;
    CollectAt(child, path.With(static_cast<int>(bit)), level, out);
  }
}

int64_t FdTree::CountEntries() const { return num_entries_; }

size_t FdTree::footprint_bytes() const {
  return static_cast<size_t>(num_nodes_) *
         (sizeof(Node) + sizeof(std::unique_ptr<Node>) * num_bits_);
}

}  // namespace famtree
