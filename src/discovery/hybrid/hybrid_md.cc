#include "discovery/hybrid/hybrid_md.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/run_context.h"
#include "common/thread_pool.h"
#include "discovery/discovery_util.h"
#include "discovery/hybrid/cover.h"
#include "discovery/hybrid/fd_tree.h"
#include "engine/evidence.h"
#include "engine/evidence_cache.h"
#include "metric/code_distance.h"
#include "metric/metric.h"

namespace famtree {

Result<std::vector<DiscoveredMd>> DiscoverMdsHybrid(
    const Relation& relation, AttrSet rhs, const MdDiscoveryOptions& options,
    HybridMdStats* stats) {
  int nc = relation.num_columns();
  FAMTREE_RETURN_NOT_OK(CheckAttrCapacity(nc, "MD discovery"));
  if (!AttrSet::Full(nc).ContainsAll(rhs) || rhs.empty()) {
    return Status::Invalid("MD discovery needs a valid RHS attribute set");
  }
  // The cover tree answers exact validity (confidence == 1); approximate
  // confidence bounds — and the evidence-free paths — go to the oracle.
  if (options.min_confidence != 1.0 || !options.use_encoding ||
      !options.use_evidence) {
    return DiscoverMds(relation, rhs, options);
  }
  // Everything below mirrors DiscoverMds' setup move for move (sampling,
  // candidate enumeration, evidence config), so supports, confidences and
  // candidate order come out bit-identical.
  bool sampling =
      options.sample_rows > 0 && options.sample_rows < relation.num_rows();
  Relation sampled;
  if (sampling) {
    std::vector<int> rows(options.sample_rows);
    for (int i = 0; i < options.sample_rows; ++i) rows[i] = i;
    sampled = relation.Select(rows);
  }
  const Relation& sample = sampling ? sampled : relation;
  ThreadPool* pool = options.pool;
  std::unique_ptr<EncodedRelation> local_encoding;
  FAMTREE_ASSIGN_OR_RETURN(
      const EncodedRelation* encoded,
      ResolveEncoding(sample, options.use_encoding,
                      sampling ? nullptr : options.cache, &local_encoding));

  std::vector<SimilarityPredicate> candidates;
  std::vector<MetricPtr> metrics(nc);
  // Per-attribute sorted-unique thresholds: the evidence bucket axes and,
  // below, one predicate bit per (attribute, threshold index).
  std::vector<std::vector<double>> attr_th(nc);
  std::vector<int> pbit_base(nc, -1);
  int pbits = 0;
  bool supported = true;
  for (int a = 0; a < nc; ++a) {
    if (rhs.Contains(a)) continue;
    ValueType t = relation.schema().column(a).type;
    const std::vector<double>& ths =
        (t == ValueType::kInt || t == ValueType::kDouble)
            ? options.numeric_thresholds
            : options.string_thresholds;
    metrics[a] = DefaultMetricFor(t);
    for (double th : ths) {
      candidates.push_back(SimilarityPredicate{a, metrics[a], th});
    }
    if (DictHasNonFiniteDouble(*encoded, a)) supported = false;
    attr_th[a] = ths;
    std::sort(attr_th[a].begin(), attr_th[a].end());
    attr_th[a].erase(std::unique(attr_th[a].begin(), attr_th[a].end()),
                     attr_th[a].end());
    pbit_base[a] = pbits;
    pbits += static_cast<int>(attr_th[a].size());
  }
  if (!supported || pbits > kMaxAttrs) {
    // The cover tree cannot carry more predicate bits than the AttrSet
    // capacity; the oracle handles it with identical output.
    return DiscoverMds(relation, rhs, options);
  }

  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "hybrid_md");
  auto exhausted_early = [&](const Status& stop, int64_t total) {
    RunContext::MarkExhausted(ctx, stop, 0, total);
    return std::vector<DiscoveredMd>{};
  };
  std::vector<std::unique_ptr<CodeDistanceTable>> tables(nc);
  for (int a = 0; a < nc; ++a) {
    if (rhs.Contains(a)) continue;
    Status st = RunContext::Poll(ctx);
    if (RunContext::IsStop(st)) return exhausted_early(st, 0);
    tables[a] =
        std::make_unique<CodeDistanceTable>(*encoded, a, metrics[a], pool);
  }

  std::vector<std::vector<SimilarityPredicate>> lhs_sets;
  for (const auto& p : candidates) lhs_sets.push_back({p});
  if (options.max_lhs_attrs >= 2) {
    for (size_t i = 0; i < candidates.size(); ++i) {
      for (size_t j = i + 1; j < candidates.size(); ++j) {
        if (candidates[i].attr == candidates[j].attr) continue;
        lhs_sets.push_back({candidates[i], candidates[j]});
      }
    }
  }
  int64_t num_candidates = static_cast<int64_t>(lhs_sets.size());

  std::vector<EvidenceColumn> config;
  std::vector<int> cfg_of(nc, -1);
  for (int a = 0; a < nc; ++a) {
    if (rhs.Contains(a)) continue;
    EvidenceColumn col;
    col.attr = a;
    col.cmp = EvidenceColumn::Cmp::kNone;
    col.metric = metrics[a];
    col.thresholds = attr_th[a];
    col.table = tables[a].get();
    cfg_of[a] = static_cast<int>(config.size());
    config.push_back(std::move(col));
  }
  std::vector<int> rhs_cols;
  for (int a = 0; a < nc; ++a) {
    if (!rhs.Contains(a)) continue;
    EvidenceColumn col;
    col.attr = a;
    col.cmp = EvidenceColumn::Cmp::kEquality;
    rhs_cols.push_back(static_cast<int>(config.size()));
    config.push_back(std::move(col));
  }
  if (EvidenceWordBits(config) > 64) {
    return DiscoverMds(relation, rhs, options);
  }
  EvidenceOptions eopts;
  eopts.pool = pool;
  eopts.context = ctx;
  Result<std::shared_ptr<const EvidenceSet>> set_result =
      GetOrBuildEvidence(options.evidence, *encoded, config, eopts);
  if (!set_result.ok() && RunContext::IsStop(set_result.status())) {
    return exhausted_early(set_result.status(), num_candidates);
  }
  FAMTREE_ASSIGN_OR_RETURN(std::shared_ptr<const EvidenceSet> set,
                           std::move(set_result));
  const std::vector<EvidenceSet::Word>& words = set->words();
  std::vector<char> identified(words.size());
  for (size_t wi = 0; wi < words.size(); ++wi) {
    bool id = true;
    for (int col : rhs_cols) {
      if (!set->AgreesOn(words[wi].bits, col)) {
        id = false;
        break;
      }
    }
    identified[wi] = id ? 1 : 0;
  }

  // --- Cover-tree induction over the violating (non-identified) words —
  // the MD analog of the FD engine's sampling stage. A word's satisfied
  // predicate set is upward-closed per attribute (closure of its bucket),
  // so plain subset tests implement MD generalization exactly.
  Status barrier = RunContext::Checkpoint(ctx);
  if (RunContext::IsStop(barrier)) {
    return exhausted_early(barrier, num_candidates);
  }
  FAMTREE_RETURN_NOT_OK(barrier);
  Status charged = RunContext::ChargeAlloc(
      ctx, words.size() * sizeof(AttrSet), "hybrid_sample");
  if (RunContext::IsStop(charged)) {
    return exhausted_early(charged, num_candidates);
  }
  FAMTREE_RETURN_NOT_OK(charged);
  // closure(a, ti): predicate ti of attribute a plus every looser one —
  // bits [pbit_base + ti, pbit_base + #thresholds).
  auto closure = [&](int a, int ti) {
    int nth = static_cast<int>(attr_th[a].size());
    return AttrSet::Range(pbit_base[a] + ti, pbit_base[a] + nth);
  };
  std::vector<AttrSet> attr_pred_mask(nc);
  for (int a = 0; a < nc; ++a) {
    if (cfg_of[a] >= 0 && !attr_th[a].empty()) {
      attr_pred_mask[a] = closure(a, 0);
    }
  }
  int lhs_cap = std::clamp(options.max_lhs_attrs, 1, 2);
  auto keep = [&](AttrSet s) {
    int attrs = 0;
    for (int a = 0; a < nc; ++a) {
      if (s.Intersects(attr_pred_mask[a])) ++attrs;
    }
    return attrs <= lhs_cap;
  };
  FdTree positive(pbits);
  positive.Add(AttrSet(), 0);
  NegativeCover negative(pbits);
  Inductor inductor(&positive);
  std::vector<AttrSet> exts;
  int64_t violating_words = 0;
  for (size_t wi = 0; wi < words.size(); ++wi) {
    if (identified[wi]) continue;
    ++violating_words;
    AttrSet sat;
    exts.clear();
    for (int a = 0; a < nc; ++a) {
      if (cfg_of[a] < 0 || attr_th[a].empty()) continue;
      int bucket = set->BucketOf(words[wi].bits, cfg_of[a]);
      int nth = static_cast<int>(attr_th[a].size());
      if (bucket < nth) sat = sat.Union(closure(a, bucket));
      // The loosest unsatisfied threshold is the minimal way to exclude
      // this word via attribute a.
      if (bucket >= 1) exts.push_back(closure(a, bucket - 1));
    }
    if (!negative.AddMaximal(sat, 0)) continue;
    inductor.SpecializeAgainst(sat, 0, exts, keep);
  }

  // --- Candidate evaluation: validity is one cover-tree lookup; only the
  // support fold still walks the words (identified == similar for valid
  // candidates, and invalid ones are filtered on confidence below).
  std::vector<std::vector<std::pair<int, int>>> lhs_buckets(lhs_sets.size());
  std::vector<AttrSet> cand_bits(lhs_sets.size());
  for (size_t c = 0; c < lhs_sets.size(); ++c) {
    for (const auto& p : lhs_sets[c]) {
      const std::vector<double>& th = attr_th[p.attr];
      int ti = static_cast<int>(std::find(th.begin(), th.end(), p.threshold) -
                                th.begin());
      lhs_buckets[c].push_back({cfg_of[p.attr], ti});
      cand_bits[c] = cand_bits[c].Union(closure(p.attr, ti));
    }
  }
  charged = RunContext::ChargeAlloc(
      ctx, lhs_sets.size() * (sizeof(Md::Stats) + sizeof(char)),
      "hybrid_validate");
  if (RunContext::IsStop(charged)) {
    return exhausted_early(charged, num_candidates);
  }
  FAMTREE_RETURN_NOT_OK(charged);
  std::vector<Md::Stats> cstats(lhs_sets.size());
  std::vector<char> valid(lhs_sets.size());
  int64_t candidates_done = 0;
  FAMTREE_ASSIGN_OR_RETURN(
      candidates_done,
      AnytimeParallelFor(ctx, pool, num_candidates, [&](int64_t c) {
        // The tree is immutable here; concurrent lookups are pure reads.
        valid[c] =
            positive.ContainsGeneralization(cand_bits[c], 0) ? 1 : 0;
        Md::Stats& st = cstats[c];
        st.total_pairs = set->total_pairs();
        for (size_t wi = 0; wi < words.size(); ++wi) {
          bool similar = true;
          for (const auto& [col, ti] : lhs_buckets[c]) {
            if (set->BucketOf(words[wi].bits, col) > ti) {
              similar = false;
              break;
            }
          }
          if (similar) st.similar_pairs += words[wi].count;
        }
        if (valid[c]) st.identified_pairs = st.similar_pairs;
        return Status::OK();
      }));

  if (stats != nullptr) {
    stats->used_cover_tree = true;
    stats->predicate_bits = pbits;
    stats->evidence_words = static_cast<int64_t>(words.size());
    stats->violating_words = violating_words;
    stats->negative_cover_size = negative.size();
    stats->positive_cover_size = positive.CountEntries();
    stats->candidates = num_candidates;
    for (int64_t c = 0; c < candidates_done; ++c) {
      if (valid[c]) ++stats->valid_candidates;
    }
  }

  // --- Replay: verbatim the oracle's support / confidence / RCK filters.
  std::vector<DiscoveredMd> out;
  for (size_t c = 0; c < static_cast<size_t>(candidates_done); ++c) {
    auto& lhs = lhs_sets[c];
    if (cstats[c].support() < options.min_support) continue;
    if (cstats[c].confidence() < options.min_confidence) continue;
    bool redundant = false;
    for (const DiscoveredMd& prev : out) {
      bool covers = true;
      for (const auto& pp : prev.md.lhs()) {
        bool found = false;
        for (const auto& p : lhs) {
          if (p.attr == pp.attr && pp.threshold >= p.threshold) {
            found = true;
            break;
          }
        }
        if (!found) {
          covers = false;
          break;
        }
      }
      if (covers && prev.md.lhs().size() <= lhs.size()) {
        redundant = true;
        break;
      }
    }
    if (redundant) continue;
    out.push_back(DiscoveredMd{Md(std::move(lhs), rhs), cstats[c].support(),
                               cstats[c].confidence()});
    if (static_cast<int>(out.size()) >= options.max_results) {
      RunContext::MarkComplete(ctx, static_cast<int64_t>(c) + 1);
      return out;
    }
  }
  if (candidates_done < num_candidates) {
    RunContext::MarkExhausted(ctx, RunContext::StopStatus(ctx),
                              candidates_done, num_candidates);
  } else {
    RunContext::MarkComplete(ctx, candidates_done);
  }
  return out;
}

}  // namespace famtree
