#include "discovery/hybrid/validator.h"

#include <memory>

namespace famtree {

Status FrontierValidator::ValidateEntry(const FdTree::Entry& entry,
                                        EntryResult* result) const {
  int num_rows = encoded_.num_rows();
  if (entry.lhs.empty()) {
    // Level 0: {} -> a holds iff column a is constant (one class of all
    // rows; trivially valid on an empty relation).
    for (int a : entry.rhs_bits) {
      const std::vector<uint32_t>& codes = encoded_.codes(a);
      int bad = -1;
      for (int row = 1; row < num_rows; ++row) {
        if (codes[row] != codes[0]) {
          bad = row;
          break;
        }
      }
      if (bad < 0) {
        result->valid_rhs.Add(a);
      } else {
        result->violations.push_back(Violation{a, 0, bad});
      }
    }
    return Status::OK();
  }
  std::shared_ptr<const StrippedPartition> owned;
  const StrippedPartition* pli = nullptr;
  if (cache_ != nullptr) {
    owned = cache_->Get(entry.lhs, ctx_);
    if (owned == nullptr) {
      Status stop = RunContext::StopStatus(ctx_);
      return RunContext::IsStop(stop)
                 ? stop
                 : Status::Invalid("frontier PLI unavailable");
    }
    pli = owned.get();
  } else {
    owned = std::make_shared<StrippedPartition>(
        StrippedPartition::ForAttributeSet(encoded_, entry.lhs));
    pli = owned.get();
  }
  for (int a : entry.rhs_bits) {
    const std::vector<uint32_t>& codes = encoded_.codes(a);
    Violation violation;
    bool valid = true;
    for (int c = 0; valid && c < pli->num_classes(); ++c) {
      const int* rows = pli->class_begin(c);
      int size = pli->class_size(c);
      uint32_t head = codes[rows[0]];
      for (int k = 1; k < size; ++k) {
        if (codes[rows[k]] != head) {
          violation = Violation{a, rows[0], rows[k]};
          valid = false;
          break;
        }
      }
    }
    if (valid) {
      result->valid_rhs.Add(a);
    } else {
      result->violations.push_back(violation);
    }
  }
  return Status::OK();
}

Status FrontierValidator::ValidateLevel(const FdTree& tree, int level,
                                        std::vector<FdTree::Entry>* entries,
                                        std::vector<EntryResult>* results,
                                        LevelStats* stats) {
  entries->clear();
  results->clear();
  tree.CollectLevel(level, entries);
  // Driver-thread charge before the fan-out: the level's result slots are
  // the lasting scratch, and charging here keeps the injected-fault site
  // count independent of the thread count.
  FAMTREE_RETURN_NOT_OK(RunContext::ChargeAlloc(
      ctx_,
      entries->size() * (sizeof(FdTree::Entry) + sizeof(EntryResult)),
      "hybrid_validate"));
  results->resize(entries->size());
  FAMTREE_RETURN_NOT_OK(ParallelFor(
      pool_, static_cast<int64_t>(entries->size()), [&](int64_t e) {
        FAMTREE_RETURN_NOT_OK(RunContext::Poll(ctx_));
        return ValidateEntry((*entries)[e], &(*results)[e]);
      }));
  if (stats != nullptr) {
    for (size_t e = 0; e < entries->size(); ++e) {
      stats->checks += (*entries)[e].rhs_bits.size();
      stats->violations +=
          static_cast<int64_t>((*results)[e].violations.size());
    }
  }
  return Status::OK();
}

}  // namespace famtree
