#include "discovery/hybrid/hybrid_fd.h"

#include <memory>
#include <utility>

#include "common/run_context.h"
#include "discovery/discovery_util.h"
#include "discovery/hybrid/cover.h"
#include "discovery/hybrid/fd_tree.h"
#include "discovery/hybrid/sampler.h"
#include "discovery/hybrid/validator.h"
#include "engine/pli_cache.h"

namespace famtree {

namespace {

/// Feeds one violating agree set through the negative cover and, when it is
/// new and maximal there, specializes the positive cover for every rhs the
/// set violates (attributes outside the agree set).
void InductAgreeSet(AttrSet agree, int nc, int max_lhs_size,
                    NegativeCover* negative, Inductor* inductor,
                    std::vector<AttrSet>* ext_scratch) {
  auto keep = [max_lhs_size](AttrSet s) { return s.size() <= max_lhs_size; };
  const AttrSet outside = AttrSet::Full(nc).Minus(agree);
  for (int rhs : outside) {
    if (!negative->AddMaximal(agree, rhs)) continue;
    ext_scratch->clear();
    for (int b : outside) {
      if (b != rhs) ext_scratch->push_back(AttrSet::Single(b));
    }
    inductor->SpecializeAgainst(agree, rhs, *ext_scratch, keep);
  }
}

/// The shared run behind both public entries. `relation` is nullptr for
/// the cache-only (out-of-core) entry, in which case `options.cache` is
/// guaranteed non-null and the encoding comes out of the cache.
///
/// `seed_cover`, when non-null, replaces the sampling stage: the positive
/// cover is planted from a previously discovered minimal cover instead of
/// the top of the lattice, and only the frontier validation runs. Sound
/// exactly when the seed is the complete minimal exact cover (same
/// max_lhs_size) of a *prefix* of the relation: appending rows only breaks
/// exact FDs — every minimal FD of the appended relation specializes some
/// seed FD — so re-validating the seed frontier and feeding violations
/// through the standard inductor repairs the cover to bit-parity with a
/// cold run. (Exact FDs only: approximate g3 validity is not monotone
/// under appends.)
Result<std::vector<DiscoveredFd>> DiscoverFdsHybridImpl(
    const Relation* relation, const HybridFdOptions& options,
    const std::vector<DiscoveredFd>* seed_cover = nullptr) {
  int nc = relation != nullptr ? relation->num_columns()
                               : options.cache->num_columns();
  FAMTREE_RETURN_NOT_OK(CheckAttrCapacity(nc, "hybrid FD discovery"));
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "hybrid_fd");
  // Units: the sampling stage plus one per frontier level; a stop returns
  // the FDs of the fully validated levels.
  int max_lhs_size = options.max_lhs_size < 0 ? 0 : options.max_lhs_size;
  int64_t total_units = 1 + (max_lhs_size + 1);
  std::vector<DiscoveredFd> out;
  if (nc == 0) {
    RunContext::MarkComplete(ctx, total_units);
    return out;
  }

  auto exhausted = [&](const Status& stop, int64_t completed) {
    RunContext::MarkExhausted(ctx, stop, completed, total_units);
    return out;
  };

  std::unique_ptr<EncodedRelation> local_encoding;
  const EncodedRelation* encoded = nullptr;
  if (relation != nullptr) {
    FAMTREE_ASSIGN_OR_RETURN(
        encoded, ResolveEncoding(*relation, /*use_encoding=*/true,
                                 options.cache, &local_encoding));
  } else {
    // Out-of-core: the sampler needs flat code arrays, so materialize them
    // from the shards (charged with shard-spill fallback). A budget stop
    // here is an ordinary anytime exit with zero completed units.
    Status st = options.cache->EnsureEncoded(ctx);
    if (RunContext::IsStop(st)) return exhausted(st, 0);
    FAMTREE_RETURN_NOT_OK(st);
    encoded = options.cache->encoded_or_null();
  }

  // --- Stage 1: sampling into the negative cover. -----------------------
  // A seeded (cover-repair) run skips sampling: the seed already is the
  // induction of every agree set that matters for the prefix, and the
  // frontier's violation feedback supplies the appended rows' agree sets.
  // The sampler is still built — AgreeSetOf/MarkSeen serve the feedback.
  Result<std::unique_ptr<HybridSampler>> sampler_result =
      HybridSampler::Make(*encoded, options.cache, options.pool, ctx);
  if (!sampler_result.ok() && RunContext::IsStop(sampler_result.status())) {
    return exhausted(sampler_result.status(), 0);
  }
  FAMTREE_ASSIGN_OR_RETURN(std::unique_ptr<HybridSampler> sampler,
                           std::move(sampler_result));
  std::vector<AttrSet> agree_sets;
  if (seed_cover == nullptr) {
    HybridSampler::Stats sampling_stats;
    Status sampled = sampler->SampleRounds(options.min_efficiency, &agree_sets,
                                           &sampling_stats);
    if (RunContext::IsStop(sampled)) return exhausted(sampled, 0);
    FAMTREE_RETURN_NOT_OK(sampled);
    if (options.stats != nullptr) {
      options.stats->sampling_passes = sampling_stats.passes;
      options.stats->sampled_pairs = sampling_stats.sampled_pairs;
      options.stats->sampled_agree_sets = sampling_stats.new_agree_sets;
    }
  }

  // --- Stage 2: induct (or plant) the positive cover. -------------------
  FdTree positive(nc);
  NegativeCover negative(nc);
  Inductor inductor(&positive);
  std::vector<AttrSet> ext_scratch;
  if (seed_cover != nullptr) {
    for (const DiscoveredFd& fd : *seed_cover) {
      if (fd.lhs.size() > max_lhs_size || fd.rhs < 0 || fd.rhs >= nc ||
          fd.lhs.Contains(fd.rhs)) {
        return Status::Invalid("cover repair: seed FD outside the lattice");
      }
      positive.Add(fd.lhs, fd.rhs);
    }
  } else {
    for (int a = 0; a < nc; ++a) positive.Add(AttrSet(), a);
    for (AttrSet agree : agree_sets) {
      InductAgreeSet(agree, nc, max_lhs_size, &negative, &inductor,
                     &ext_scratch);
    }
  }

  // --- Stage 3: validate the frontier level by level, feeding violations
  // back until the last level's frontier is clean. -----------------------
  FrontierValidator validator(*encoded, options.cache, options.pool, ctx);
  std::vector<FdTree::Entry> entries;
  std::vector<FrontierValidator::EntryResult> results;
  FrontierValidator::LevelStats level_stats;
  int64_t completed_units = 1;  // the sampling stage
  for (int level = 0; level <= max_lhs_size; ++level) {
    Status barrier = RunContext::Checkpoint(ctx);
    if (RunContext::IsStop(barrier)) return exhausted(barrier, completed_units);
    FAMTREE_RETURN_NOT_OK(barrier);
    Status validated =
        validator.ValidateLevel(positive, level, &entries, &results,
                                &level_stats);
    if (RunContext::IsStop(validated)) {
      return exhausted(validated, completed_units);
    }
    FAMTREE_RETURN_NOT_OK(validated);
    // Serial replay in (lhs.mask, rhs) order: valid entries are emitted
    // (and thereby frozen — a valid lhs can never be the subset of a later
    // violating agree set, so induction never removes it); invalid ones
    // feed their violating pair's agree set back through the inductor,
    // which removes them and plants specializations on deeper levels.
    for (size_t e = 0; e < entries.size(); ++e) {
      for (int a : results[e].valid_rhs) {
        out.push_back(DiscoveredFd{entries[e].lhs, a, 0.0});
        if (static_cast<int>(out.size()) >= options.max_results) {
          RunContext::MarkComplete(ctx, completed_units);
          return out;
        }
      }
      for (const FrontierValidator::Violation& v : results[e].violations) {
        AttrSet agree = sampler->AgreeSetOf(v.row_i, v.row_j);
        if (!sampler->MarkSeen(agree)) continue;  // proven no-op
        if (options.stats != nullptr) ++options.stats->feedback_agree_sets;
        InductAgreeSet(agree, nc, max_lhs_size, &negative, &inductor,
                       &ext_scratch);
      }
    }
    ++completed_units;
  }
  if (options.stats != nullptr) {
    options.stats->frontier_checks = level_stats.checks;
    options.stats->frontier_violations = level_stats.violations;
  }
  RunContext::MarkComplete(ctx, total_units);
  return out;
}

}  // namespace

Result<std::vector<DiscoveredFd>> DiscoverFdsHybrid(
    const Relation& relation, const HybridFdOptions& options) {
  return DiscoverFdsHybridImpl(&relation, options);
}

Result<std::vector<DiscoveredFd>> DiscoverFdsHybrid(
    PliCache* cache, const HybridFdOptions& options) {
  if (cache == nullptr) {
    return Status::Invalid("cache-only hybrid FD discovery requires a PliCache");
  }
  HybridFdOptions opts = options;
  opts.cache = cache;
  return DiscoverFdsHybridImpl(cache->relation_or_null(), opts);
}

Result<std::vector<DiscoveredFd>> RepairFdCover(
    const Relation& relation, const std::vector<DiscoveredFd>& cover,
    const HybridFdOptions& options) {
  return DiscoverFdsHybridImpl(&relation, options, &cover);
}

Result<std::vector<DiscoveredFd>> RepairFdCover(
    PliCache* cache, const std::vector<DiscoveredFd>& cover,
    const HybridFdOptions& options) {
  if (cache == nullptr) {
    return Status::Invalid("cover repair requires a PliCache");
  }
  HybridFdOptions opts = options;
  opts.cache = cache;
  return DiscoverFdsHybridImpl(cache->relation_or_null(), opts, &cover);
}

}  // namespace famtree
