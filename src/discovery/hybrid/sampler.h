#ifndef FAMTREE_DISCOVERY_HYBRID_SAMPLER_H_
#define FAMTREE_DISCOVERY_HYBRID_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/attr_set.h"
#include "common/run_context.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/evidence.h"
#include "engine/pli_cache.h"
#include "relation/encoded_relation.h"
#include "relation/partition.h"

namespace famtree {

/// Tuple-pair sampler of the hybrid FD engine (HyFD's focused sampling):
/// draws candidate violating pairs from single-attribute PLI clusters —
/// rows at window distance w within a cluster — and turns each pair into an
/// agree set through the PR 4 pairwise comparison kernel (one
/// PairComparator word per pair, every column an equality facet).
///
/// Priority-window focusing: each attribute keeps the efficiency of its
/// last pass (new distinct agree sets per compared pair, +inf before the
/// first pass); rounds always run the currently most efficient attribute
/// with its window grown by one, until every attribute's efficiency falls
/// below the configured floor. All sampling runs on the driver thread —
/// pass order, pair order, and therefore the set of sampled agree sets are
/// pure functions of the input, never of the thread count.
///
/// The sampler also owns the global agree-set dedup shared with the
/// validator's violation feedback (MarkSeen), so the induction never
/// reprocesses a set — a proven no-op, skipped for speed.
class HybridSampler {
 public:
  struct Stats {
    int64_t passes = 0;
    int64_t sampled_pairs = 0;
    int64_t new_agree_sets = 0;
  };

  /// Borrows `encoded` (and `cache` when given; single-attribute PLIs are
  /// pinned there, so borrowing them is free). A stopped PLI fetch or
  /// comparator build returns the latched stop Status.
  static Result<std::unique_ptr<HybridSampler>> Make(
      const EncodedRelation& encoded, PliCache* cache, ThreadPool* pool,
      RunContext* ctx);

  /// Runs priority-window passes until the best attribute efficiency drops
  /// below `min_efficiency`, appending newly seen agree sets to `out`.
  /// Checkpoints once per pass (driver thread) and charges the new agree
  /// sets at the "hybrid_sample" site; a stop Status is returned with `out`
  /// holding only fully charged passes.
  Status SampleRounds(double min_efficiency, std::vector<AttrSet>* out,
                      Stats* stats);

  /// Agree set of one explicit row pair — the validator's violation
  /// feedback path.
  AttrSet AgreeSetOf(int i, int j) const;

  /// Global dedup across sampling and feedback; true exactly when the set
  /// was not seen before (and is now recorded).
  bool MarkSeen(AttrSet agree);

  int64_t distinct_agree_sets() const {
    return static_cast<int64_t>(seen_.size());
  }

 private:
  HybridSampler(const EncodedRelation& encoded, RunContext* ctx)
      : encoded_(encoded), ctx_(ctx) {}

  /// One window pass over every cluster of `attr`'s PLI; appends new agree
  /// sets to `out` and returns the number of pairs compared (or a stop
  /// Status from the per-pair Poll).
  Result<int64_t> RunPass(int attr, int window, std::vector<AttrSet>* out);

  /// Unpacks one comparator word into the agree set (comparator path only).
  AttrSet AgreeFromWord(uint64_t word) const;

  const EncodedRelation& encoded_;
  RunContext* ctx_;
  /// Narrow fast path: one packed comparison word per pair. Null for wide
  /// schemas (more equality facets than a 64-bit word holds); AgreeSetOf
  /// then compares the dictionary codes column by column, which produces
  /// the identical agree set.
  std::unique_ptr<PairComparator> comparator_;
  std::vector<std::shared_ptr<const StrippedPartition>> plis_;
  std::vector<int> window_;
  std::vector<double> efficiency_;
  std::unordered_set<AttrSet, AttrSetHash> seen_;
  /// Comparator-path prefilter in front of `seen_`: the packed word
  /// determines the agree set, so a repeated word can never produce a fresh
  /// set. Probing 8-byte words first keeps the multi-word AttrSet hash and
  /// compare off the per-pair path (the overwhelmingly common repeat case).
  std::unordered_set<uint64_t> seen_words_;
};

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_HYBRID_SAMPLER_H_
