#ifndef FAMTREE_DISCOVERY_HYBRID_HYBRID_FD_H_
#define FAMTREE_DISCOVERY_HYBRID_HYBRID_FD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "discovery/tane.h"
#include "relation/relation.h"

namespace famtree {

class PliCache;
class RunContext;
class ThreadPool;

/// Observability counters of one hybrid run (EXPERIMENTS.md records these:
/// sampling efficiency is new_agree_sets / sampled_pairs, and
/// frontier_checks is what the hybrid saves against a full lattice level).
struct HybridFdStats {
  int64_t sampling_passes = 0;
  int64_t sampled_pairs = 0;
  int64_t sampled_agree_sets = 0;   // distinct, from sampling
  int64_t feedback_agree_sets = 0;  // distinct, from validator violations
  int64_t frontier_checks = 0;      // (lhs, rhs) validations across levels
  int64_t frontier_violations = 0;  // invalid ones among them
};

struct HybridFdOptions {
  /// Lattice levels to explore (LHS size cap) — TANE's bound, so the two
  /// engines discover the identical minimal cover.
  int max_lhs_size = 5;
  /// Safety valve on emitted dependencies.
  int max_results = 100000;
  /// Sampling floor: an attribute whose last window pass produced fewer new
  /// agree sets per compared pair stops being focused (HyFD's efficiency
  /// threshold). Lower means more sampling and fewer validator round
  /// trips; the output is identical at any value.
  double min_efficiency = 0.01;
  /// Optional engine hooks (see src/engine/): pool parallelizes frontier
  /// validation, cache serves the PLIs (and lends its encoding).
  ThreadPool* pool = nullptr;
  PliCache* cache = nullptr;
  /// Optional run limits; the driver check-points per sampling pass and per
  /// frontier level, charges at the "hybrid_sample" / "hybrid_validate"
  /// sites, and on a stop returns the FDs of the fully validated levels —
  /// a deterministic prefix at any thread count.
  RunContext* context = nullptr;
  /// Optional run counters.
  HybridFdStats* stats = nullptr;
};

/// Hybrid sampling + induction FD discovery (FDep / HyFD architecture over
/// this repo's cover tree, sampler, and frontier validator): sample tuple
/// pairs into a negative cover of agree sets, induct the minimal positive
/// cover, then validate only the cover frontier level by level against
/// PLIs, feeding each violation back as a new sample until the frontier is
/// clean. Emits exactly the minimal exact FDs with |lhs| <= max_lhs_size —
/// bit-identical, as a set, to DiscoverFdsTane at max_error 0 (the
/// differential suite asserts this; hybrid output comes out sorted by
/// (|lhs|, lhs.mask, rhs)). Always runs on the encoded columnar substrate.
Result<std::vector<DiscoveredFd>> DiscoverFdsHybrid(
    const Relation& relation, const HybridFdOptions& options = {});

/// Cache-only entry: runs the hybrid against whatever backend `cache`
/// serves, including the out-of-core ShardedEncodedRelation backend with
/// no materialized Relation. The sampler's cluster windows read flat code
/// arrays, so the encoding is materialized first when absent
/// (PliCache::EnsureEncoded — charged at "ingest_codes" with shard-spill
/// fallback); the frontier's PLIs still stream out of the spill-merged
/// runs. `options.cache` is overwritten with `cache`; in-memory caches
/// produce output bit-identical to the Relation entry.
Result<std::vector<DiscoveredFd>> DiscoverFdsHybrid(
    PliCache* cache, const HybridFdOptions& options = {});

/// Incremental cover repair after a batch append: re-validates a
/// previously discovered cover against the (delta-maintained or rebuilt)
/// PLIs and specializes only the FDs the appended rows broke, skipping the
/// sampling stage entirely. `cover` must be the complete minimal *exact*
/// cover of a prefix of `relation` at the same max_lhs_size — appends only
/// break exact FDs, so every minimal FD of the grown relation specializes
/// a seed FD and the repair output is bit-identical, as a sorted set, to a
/// cold DiscoverFdsHybrid of the grown relation. (Approximate covers are
/// not repairable this way: g3 validity is not monotone under appends.)
Result<std::vector<DiscoveredFd>> RepairFdCover(
    const Relation& relation, const std::vector<DiscoveredFd>& cover,
    const HybridFdOptions& options = {});

/// Cache-backed repair, including the out-of-core backend: pairs with
/// PliCache::MaintainAppend, which advances the PLIs the frontier
/// validates against.
Result<std::vector<DiscoveredFd>> RepairFdCover(
    PliCache* cache, const std::vector<DiscoveredFd>& cover,
    const HybridFdOptions& options = {});

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_HYBRID_HYBRID_FD_H_
