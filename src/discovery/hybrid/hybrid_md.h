#ifndef FAMTREE_DISCOVERY_HYBRID_HYBRID_MD_H_
#define FAMTREE_DISCOVERY_HYBRID_HYBRID_MD_H_

#include <cstdint>
#include <vector>

#include "common/attr_set.h"
#include "common/status.h"
#include "discovery/md_discovery.h"
#include "relation/relation.h"

namespace famtree {

/// Observability counters of one hybrid MD run. `used_cover_tree` is false
/// when the run fell back to the lattice oracle (approximate confidence
/// bound, evidence kernel ineligible, or more than 63 predicate bits).
struct HybridMdStats {
  bool used_cover_tree = false;
  int64_t predicate_bits = 0;
  int64_t evidence_words = 0;
  int64_t violating_words = 0;
  int64_t negative_cover_size = 0;
  int64_t positive_cover_size = 0;
  int64_t candidates = 0;
  int64_t valid_candidates = 0;
};

/// MD discovery through the shared hybrid cover tree — the second consumer
/// of src/discovery/hybrid/, proving the machinery is generic over what a
/// bit means. Bits here are similarity predicates, one per (attribute,
/// threshold index), upward-closed per attribute: a candidate LHS maps to
/// the closure of its predicate bits, a non-identified evidence word maps
/// to the (upward-closed) set of predicates it satisfies, and plain
/// subset tests on those bitsets answer MD generalization exactly. The
/// negative cover collects the maximal violating sets, induction maintains
/// the minimal positive cover, and a candidate has confidence 1 iff the
/// cover contains one of its generalizations — no per-candidate
/// identification folds needed; the evidence multiset is the complete pair
/// universe, so no PLI validation loop is needed either.
///
/// Semantics: bit-identical output (MDs, supports, confidences, order) to
/// DiscoverMds for runs whose min_confidence is exactly 1.0; any other
/// configuration — and any input the evidence kernel steps aside for —
/// delegates to DiscoverMds wholesale, so this entry point is always safe
/// to call. RunContext-aware at the "hybrid_sample" (evidence-word
/// induction) and "hybrid_validate" (candidate stats) sites; anytime
/// prefixes mirror the oracle's per-candidate units.
Result<std::vector<DiscoveredMd>> DiscoverMdsHybrid(
    const Relation& relation, AttrSet rhs,
    const MdDiscoveryOptions& options = {}, HybridMdStats* stats = nullptr);

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_HYBRID_HYBRID_MD_H_
