#ifndef FAMTREE_DISCOVERY_DD_DISCOVERY_H_
#define FAMTREE_DISCOVERY_DD_DISCOVERY_H_

#include <vector>

#include "common/status.h"
#include "deps/dd.h"
#include "relation/relation.h"

namespace famtree {

class EvidenceCache;
class PliCache;
class RunContext;
class ThreadPool;

struct DdDiscoveryOptions {
  /// Candidate distance thresholds per attribute are taken at these
  /// quantiles of the observed pairwise distance distribution — the
  /// parameter-free determination of [88], [89] in spirit.
  std::vector<double> threshold_quantiles = {0.1, 0.25, 0.5};
  /// Minimum number of tuple pairs the LHS pattern must cover.
  int min_support = 3;
  /// Number of LHS attributes (1 or 2).
  int max_lhs_attrs = 2;
  /// Relations larger than this are uniformly row-sampled down before the
  /// pairwise scans (0 disables sampling and large inputs are rejected).
  int sample_rows = 0;
  uint64_t seed = 42;
  int max_results = 10000;
  /// Run on the dictionary-encoded columnar backend (the default): every
  /// metric distance becomes a lookup in a per-attribute code-pair table
  /// (CodeDistanceTable), so repeated Levenshtein / numeric evaluations
  /// collapse to one per distinct value pair. `false` keeps the Value-based
  /// oracle; the discovered list is bit-identical either way.
  bool use_encoding = true;
  /// Optional engine hooks: when `pool` is set the distance tables, the
  /// per-attribute threshold scans and the per-LHS-candidate pair scans run
  /// in parallel; the min-support / vacuity / subsumption / max_results
  /// filters replay the serial walk's candidate order, so the output is
  /// bit-identical at any thread count. `cache` lends its encoding (ignored
  /// when sampling re-materializes the input).
  ThreadPool* pool = nullptr;
  PliCache* cache = nullptr;
  /// Optional run limits (common/run_context.h): the driver check-points
  /// between deterministic units of work and, when a limit fires, returns
  /// the prefix of its results completed so far with RunReport.exhausted
  /// set. Null means unlimited.
  RunContext* context = nullptr;
  /// Mine from the shared pairwise evidence multiset (engine/evidence.h)
  /// instead of re-scanning all row pairs per LHS candidate: one kernel
  /// build packs every attribute's threshold bucket into a word per pair
  /// and folds per-word distance maxima, so each candidate is a fold over
  /// the deduplicated words. Candidate thresholds and the vacuity bounds
  /// come from code-pair distance histograms (multiplicity-weighted, so
  /// the quantiles are bit-identical to the row-pair scan's). Requires
  /// use_encoding; falls back when the packed word exceeds 64 bits.
  bool use_evidence = true;
  /// Optional shared store for the kernel-built evidence multiset.
  EvidenceCache* evidence = nullptr;
};

struct DiscoveredDd {
  Dd dd;
  int64_t support = 0;
};

/// DD discovery in the spirit of [86]: for each LHS attribute set with
/// candidate "similar" thresholds drawn from the pairwise distance
/// distribution, finds for each RHS attribute the tightest distance bound
/// satisfied by every LHS-compatible pair. A DD is reported when that
/// bound is strictly tighter than the attribute's global pairwise maximum
/// (otherwise the rule is vacuous), with subsumption-based minimality:
/// a DD is dropped when another reported DD has a looser LHS and a
/// tighter-or-equal RHS on the same attributes.
Result<std::vector<DiscoveredDd>> DiscoverDds(
    const Relation& relation, const DdDiscoveryOptions& options = {});

/// The distance threshold candidates the discovery derives for one
/// attribute (exposed for tests and the threshold-determination bench).
std::vector<double> DetermineThresholds(const Relation& relation, int attr,
                                        const std::vector<double>& quantiles);

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_DD_DISCOVERY_H_
