#include "discovery/mvd_discovery.h"

#include <algorithm>
#include <memory>

#include "common/run_context.h"
#include "common/thread_pool.h"
#include "deps/fhd.h"
#include "deps/mvd.h"
#include "discovery/discovery_util.h"

namespace famtree {

Result<std::vector<DiscoveredMvd>> DiscoverMvds(
    const Relation& relation, const MvdDiscoveryOptions& options) {
  int nc = relation.num_columns();
  if (nc > 20) {
    return Status::Invalid(
        "MVD discovery enumerates RHS blocks; limited to 20 attributes");
  }
  if (options.max_spurious_ratio < 0 || options.max_spurious_ratio > 1) {
    return Status::Invalid("max_spurious_ratio must be in [0, 1]");
  }
  ThreadPool* pool = options.pool;
  std::unique_ptr<EncodedRelation> local_encoding;
  FAMTREE_ASSIGN_OR_RETURN(
      const EncodedRelation* encoded,
      ResolveEncoding(relation, options.use_encoding, options.cache,
                      &local_encoding));
  std::vector<DiscoveredMvd> out;
  AttrSet full = AttrSet::Full(nc);
  // Candidates enumerated in the serial walk's order; ratios fill
  // index-addressed slots and the threshold / max_results filters replay
  // that order, so the output is bit-identical at any thread count.
  struct Candidate {
    AttrSet lhs;
    AttrSet rhs;
    double ratio = 0.0;
  };
  std::vector<Candidate> candidates;
  for (int size = 0; size <= options.max_lhs_size; ++size) {
    for (AttrSet lhs : AllSubsetsOfSize(nc, size)) {
      AttrSet rest = full.Minus(lhs);
      if (rest.size() < 2) continue;  // trivial: Y or Z would be empty
      int anchor = rest.ToVector()[0];
      AttrSet others = rest.Without(anchor);
      // Canonical RHS: anchor plus any subset of the remaining attributes,
      // leaving Z non-empty (enumerating both X ->> Y and its complement
      // X ->> Z would double-report the same constraint). Subsets run in
      // increasing mask order — the historical enumeration order — via the
      // width-safe helper instead of a raw shifted-mask loop.
      std::vector<AttrSet> extras = ProperNonEmptySubsets(others);
      std::reverse(extras.begin(), extras.end());
      extras.insert(extras.begin(), AttrSet());
      if (!others.empty()) extras.push_back(others);
      for (const AttrSet& extra : extras) {
        AttrSet rhs = extra.With(anchor);
        if (full.Minus(lhs).Minus(rhs).empty()) continue;  // Z empty
        candidates.push_back(Candidate{lhs, rhs, 0.0});
      }
    }
  }
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "mvds");
  FAMTREE_ASSIGN_OR_RETURN(
      int64_t done,
      AnytimeParallelFor(
          ctx, pool, static_cast<int64_t>(candidates.size()), [&](int64_t i) {
            Candidate& c = candidates[i];
            c.ratio = encoded != nullptr
                          ? Mvd::SpuriousTupleRatio(*encoded, c.lhs, c.rhs)
                          : Mvd::SpuriousTupleRatio(relation, c.lhs, c.rhs);
            return Status::OK();
          }));
  // The threshold filter replays the completed candidate prefix only, so a
  // cut run emits the same MVDs at any thread count.
  for (int64_t i = 0; i < done; ++i) {
    const Candidate& c = candidates[i];
    if (c.ratio <= options.max_spurious_ratio) {
      out.push_back(DiscoveredMvd{c.lhs, c.rhs, c.ratio});
      if (static_cast<int>(out.size()) >= options.max_results) {
        RunContext::MarkComplete(ctx, i + 1);
        return out;
      }
    }
  }
  if (done < static_cast<int64_t>(candidates.size())) {
    RunContext::MarkExhausted(ctx, RunContext::StopStatus(ctx), done,
                              static_cast<int64_t>(candidates.size()));
  } else {
    RunContext::MarkComplete(ctx, done);
  }
  return out;
}


Result<std::vector<DiscoveredFhd>> DiscoverFhds(
    const Relation& relation, const MvdDiscoveryOptions& options) {
  FAMTREE_ASSIGN_OR_RETURN(std::vector<DiscoveredMvd> mvds,
                           DiscoverMvds(relation, options));
  int nc = relation.num_columns();
  AttrSet full = AttrSet::Full(nc);
  std::vector<DiscoveredFhd> out;
  // FHDs assembled from a *partial* MVD set would not be a prefix of the
  // full run's FHDs (missing MVDs change the block partitions), so a run
  // cut during mining returns no FHDs; the per-seed check-points below
  // observe the latched stop immediately.
  RunContext* ctx = options.context;
  int64_t seeds_done = 0;
  // Group the MVDs by LHS; within each group, greedily grow a block
  // partition: start from one MVD's RHS, then split the remainder with
  // further MVD RHSs while the full-product check keeps passing.
  std::vector<AttrSet> lhs_seen;
  for (const DiscoveredMvd& seed : mvds) {
    Status gate = RunContext::Checkpoint(ctx);
    if (RunContext::IsStop(gate)) {
      RunContext::MarkExhausted(ctx, gate, seeds_done,
                                static_cast<int64_t>(mvds.size()));
      return out;
    }
    ++seeds_done;
    bool seen = false;
    for (AttrSet l : lhs_seen) {
      if (l == seed.lhs) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    lhs_seen.push_back(seed.lhs);
    // Candidate blocks: every same-LHS MVD's RHS *and* its complement
    // (X ->> Y implies X ->> Z); the canonical discovery form anchors all
    // RHSs on one attribute, so complements are what make blocks
    // disjoint. Smallest blocks first gives the finest decomposition.
    std::vector<AttrSet> candidates;
    for (const DiscoveredMvd& other : mvds) {
      if (!(other.lhs == seed.lhs)) continue;
      AttrSet complement = full.Minus(other.lhs).Minus(other.rhs);
      for (AttrSet c : {other.rhs, complement}) {
        if (c.empty()) continue;
        bool dup = false;
        for (AttrSet e : candidates) dup |= e == c;
        if (!dup) candidates.push_back(c);
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](AttrSet a, AttrSet b) {
                if (a.size() != b.size()) return a.size() < b.size();
                return a < b;
              });
    std::vector<AttrSet> blocks;
    AttrSet used = seed.lhs;
    for (AttrSet cand : candidates) {
      if (cand.Intersects(used)) continue;
      std::vector<AttrSet> attempt = blocks;
      attempt.push_back(cand);
      Fhd fhd(seed.lhs, attempt);
      if (fhd.Holds(relation)) {
        blocks = std::move(attempt);
        used = used.Union(cand);
      }
    }
    if (blocks.size() >= 2) {
      out.push_back(DiscoveredFhd{seed.lhs, std::move(blocks)});
    }
  }
  RunContext::MarkComplete(ctx, seeds_done);
  return out;
}
}  // namespace famtree
