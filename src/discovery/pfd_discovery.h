#ifndef FAMTREE_DISCOVERY_PFD_DISCOVERY_H_
#define FAMTREE_DISCOVERY_PFD_DISCOVERY_H_

#include <vector>

#include "common/attr_set.h"
#include "common/status.h"
#include "relation/relation.h"

namespace famtree {

class PliCache;
class RunContext;
class ThreadPool;

struct PfdDiscoveryOptions {
  /// Minimum probability for a PFD to be reported.
  double min_probability = 0.9;
  /// LHS size cap for the lattice walk.
  int max_lhs_size = 3;
  int max_results = 100000;
  /// Run on the dictionary-encoded columnar backend (the default): the
  /// per-value plurality fractions are counted over dense row keys instead
  /// of pairwise AgreeOn scans, in the same group order, so probabilities —
  /// and the discovered list — are bit-identical to the Value oracle
  /// (`false`).
  bool use_encoding = true;
  /// Optional engine hooks: when `pool` is set, each lattice level's
  /// candidate probabilities are computed in parallel and the minimality /
  /// threshold filters replayed serially in candidate order (bit-identical
  /// at any thread count); `cache` lends its encoding.
  ThreadPool* pool = nullptr;
  PliCache* cache = nullptr;
  /// Optional run limits (common/run_context.h): the driver check-points
  /// between deterministic units of work and, when a limit fires, returns
  /// the prefix of its results completed so far with RunReport.exhausted
  /// set. Null means unlimited.
  RunContext* context = nullptr;
};

struct DiscoveredPfd {
  AttrSet lhs;
  int rhs = 0;
  double probability = 0.0;
};

/// Per-relation PFD discovery in the style of [104]'s first counting
/// algorithm: a TANE-like levelwise walk whose validity test is
/// P(X -> Y, r) >= p. Reports minimal PFDs (no subset of the LHS already
/// qualified for the same RHS).
Result<std::vector<DiscoveredPfd>> DiscoverPfds(
    const Relation& relation, const PfdDiscoveryOptions& options = {});

/// Multi-source merge in the style of [104]'s second algorithm: per-source
/// PFD probabilities combined as a tuple-count weighted average. Sources
/// must share a schema.
Result<std::vector<DiscoveredPfd>> DiscoverPfdsMultiSource(
    const std::vector<Relation>& sources,
    const PfdDiscoveryOptions& options = {});

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_PFD_DISCOVERY_H_
