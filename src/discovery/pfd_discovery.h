#ifndef FAMTREE_DISCOVERY_PFD_DISCOVERY_H_
#define FAMTREE_DISCOVERY_PFD_DISCOVERY_H_

#include <vector>

#include "common/attr_set.h"
#include "common/status.h"
#include "relation/relation.h"

namespace famtree {

struct PfdDiscoveryOptions {
  /// Minimum probability for a PFD to be reported.
  double min_probability = 0.9;
  /// LHS size cap for the lattice walk.
  int max_lhs_size = 3;
  int max_results = 100000;
};

struct DiscoveredPfd {
  AttrSet lhs;
  int rhs = 0;
  double probability = 0.0;
};

/// Per-relation PFD discovery in the style of [104]'s first counting
/// algorithm: a TANE-like levelwise walk whose validity test is
/// P(X -> Y, r) >= p. Reports minimal PFDs (no subset of the LHS already
/// qualified for the same RHS).
Result<std::vector<DiscoveredPfd>> DiscoverPfds(
    const Relation& relation, const PfdDiscoveryOptions& options = {});

/// Multi-source merge in the style of [104]'s second algorithm: per-source
/// PFD probabilities combined as a tuple-count weighted average. Sources
/// must share a schema.
Result<std::vector<DiscoveredPfd>> DiscoverPfdsMultiSource(
    const std::vector<Relation>& sources,
    const PfdDiscoveryOptions& options = {});

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_PFD_DISCOVERY_H_
