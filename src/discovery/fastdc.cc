#include "discovery/fastdc.h"

#include <algorithm>
#include <bitset>
#include <cmath>
#include <map>
#include <memory>

#include "common/rng.h"
#include "common/run_context.h"
#include "common/thread_pool.h"
#include "engine/evidence.h"
#include "engine/evidence_cache.h"
#include "relation/encoded_relation.h"

namespace famtree {

namespace {

constexpr int kMaxPredicates = 256;
using Bits = std::bitset<kMaxPredicates>;

/// One dictionary entry pre-lowered for order comparisons. `rank` mirrors
/// Value::operator<'s type ranking (null < numeric < string); numeric cells
/// carry both the exact int64 (when integral) and the double image.
struct OrderCell {
  int8_t rank = 0;  // 0 null, 1 numeric, 2 string
  bool is_int = false;
  int64_t i = 0;
  double num = 0.0;
};

/// Exactly Value::operator< for non-string cells: rank order first, then
/// exact int-int, then the double image (how AsNumeric compares).
inline bool CellLess(const OrderCell& x, const OrderCell& y) {
  if (x.rank != y.rank) return x.rank < y.rank;
  if (x.rank != 1) return false;  // null == null; strings never reach here
  if (x.is_int && y.is_int) return x.i < y.i;
  return x.num < y.num;
}

/// A predicate lowered onto the encoded backend. Anything the lowering does
/// not cover exactly keeps the Value evaluator (kFallback).
struct CompiledPred {
  enum class Kind { kSameColEq, kSameColNeq, kOrder, kFallback };
  Kind kind = Kind::kFallback;
  int col_a = 0;  // tuple-a operand's column
  int col_b = 0;  // tuple-b operand's column
  CmpOp op = CmpOp::kEq;
};

CompiledPred CompilePred(const DcPredicate& p) {
  CompiledPred out;
  if (p.lhs.kind != DcOperand::Kind::kTupleA ||
      p.rhs.kind != DcOperand::Kind::kTupleB) {
    return out;  // constants / other shapes: fallback
  }
  out.col_a = p.lhs.attr;
  out.col_b = p.rhs.attr;
  out.op = p.op;
  switch (p.op) {
    case CmpOp::kEq:
      out.kind = p.lhs.attr == p.rhs.attr ? CompiledPred::Kind::kSameColEq
                                          : CompiledPred::Kind::kFallback;
      break;
    case CmpOp::kNeq:
      out.kind = p.lhs.attr == p.rhs.attr ? CompiledPred::Kind::kSameColNeq
                                          : CompiledPred::Kind::kFallback;
      break;
    default:
      out.kind = CompiledPred::Kind::kOrder;
      break;
  }
  return out;
}

/// Is pred `p` the negation of pred `q` (same operands, negated op)?
bool AreNegations(const DcPredicate& p, const DcPredicate& q) {
  auto same_operand = [](const DcOperand& a, const DcOperand& b) {
    if (a.kind != b.kind) return false;
    if (a.kind == DcOperand::Kind::kConst) return a.constant == b.constant;
    return a.attr == b.attr;
  };
  return same_operand(p.lhs, q.lhs) && same_operand(p.rhs, q.rhs) &&
         q.op == NegateOp(p.op);
}

struct Evidence {
  Bits bits;
  int64_t count = 0;
};

/// DFS for minimal predicate sets S such that the total count of evidence
/// sets containing S stays within `budget` (0 = valid DC). Branches on the
/// complement of a maximal still-covering evidence set.
class CoverSearch {
 public:
  CoverSearch(const std::vector<DcPredicate>& preds,
              const std::vector<Evidence>& evidence, int max_size,
              int64_t budget, int max_results, RunContext* ctx)
      : preds_(preds),
        evidence_(evidence),
        max_size_(max_size),
        budget_(budget),
        max_results_(max_results),
        ctx_(ctx) {}

  void Run() { Dfs(Bits(), -1); }

  const std::vector<std::pair<Bits, int64_t>>& results() const {
    return results_;
  }

  /// True when the DFS was cut by a run limit; `results()` then holds the
  /// DFS-order prefix mined before the cut (the search is serial, so the
  /// prefix is deterministic).
  bool stopped() const { return stopped_; }
  int64_t nodes_visited() const { return nodes_; }

 private:
  int64_t ViolationCount(const Bits& chosen) const {
    int64_t total = 0;
    for (const Evidence& e : evidence_) {
      if ((chosen & e.bits) == chosen) total += e.count;
    }
    return total;
  }

  bool IsMinimal(const Bits& chosen) const {
    for (int p = 0; p < static_cast<int>(preds_.size()); ++p) {
      if (!chosen[p]) continue;
      Bits reduced = chosen;
      reduced[p] = false;
      if (reduced.none()) continue;
      if (ViolationCount(reduced) <= budget_) return false;
    }
    return true;
  }

  bool HasNegationPair(const Bits& chosen) const {
    std::vector<int> idx;
    for (int p = 0; p < static_cast<int>(preds_.size()); ++p) {
      if (chosen[p]) idx.push_back(p);
    }
    for (size_t i = 0; i + 1 < idx.size(); ++i) {
      for (size_t j = i + 1; j < idx.size(); ++j) {
        if (AreNegations(preds_[idx[i]], preds_[idx[j]])) return true;
      }
    }
    return false;
  }

  void Dfs(Bits chosen, int last) {
    if (stopped_) return;
    // Check-point on a node-count stride: the DFS is serial, so the stride
    // puts an injected cutoff at the same node at any thread count.
    ++nodes_;
    if ((nodes_ & 63) == 0 &&
        RunContext::IsStop(RunContext::Checkpoint(ctx_))) {
      stopped_ = true;
      return;
    }
    if (RunContext::IsStop(RunContext::Poll(ctx_))) {
      stopped_ = true;
      return;
    }
    if (static_cast<int>(results_.size()) >= max_results_) return;
    if (chosen.any()) {
      int64_t violations = ViolationCount(chosen);
      if (violations <= budget_) {
        if (!HasNegationPair(chosen) && IsMinimal(chosen)) {
          results_.push_back({chosen, violations});
        }
        return;  // adding predicates only makes it less minimal
      }
    }
    if (static_cast<int>(chosen.count()) >= max_size_) return;
    for (int p = last + 1; p < static_cast<int>(preds_.size()); ++p) {
      if (stopped_) return;
      Bits next = chosen;
      next[p] = true;
      Dfs(next, p);
    }
  }

  const std::vector<DcPredicate>& preds_;
  const std::vector<Evidence>& evidence_;
  int max_size_;
  int64_t budget_;
  int max_results_;
  RunContext* ctx_;
  bool stopped_ = false;
  int64_t nodes_ = 0;
  std::vector<std::pair<Bits, int64_t>> results_;
};

/// The back half of FASTDC, shared by both evidence producers: minimal
/// cover search over the evidence multiset, then DC assembly.
std::vector<DiscoveredDc> MineCover(const std::vector<DcPredicate>& preds,
                                    const std::vector<Evidence>& evidence,
                                    int64_t total_pairs,
                                    const FastDcOptions& options) {
  RunContext* ctx = options.context;
  int64_t budget =
      static_cast<int64_t>(options.max_violation_fraction * total_pairs);
  CoverSearch search(preds, evidence, options.max_predicates, budget,
                     options.max_results, ctx);
  search.Run();
  std::vector<DiscoveredDc> out;
  for (const auto& [bits, violations] : search.results()) {
    std::vector<DcPredicate> chosen;
    for (size_t p = 0; p < preds.size(); ++p) {
      if (bits[p]) chosen.push_back(preds[p]);
    }
    double fraction = total_pairs == 0
                          ? 0.0
                          : static_cast<double>(violations) / total_pairs;
    out.push_back(DiscoveredDc{Dc(std::move(chosen)), fraction});
  }
  if (search.stopped()) {
    // DCs are emitted in DFS order, so the cut run's list is a prefix of
    // the full run's. Units are DFS nodes (the total is not known up
    // front).
    RunContext::MarkExhausted(ctx, RunContext::StopStatus(ctx),
                              search.nodes_visited(), 0);
  } else {
    RunContext::MarkComplete(ctx, search.nodes_visited());
  }
  return out;
}

bool IsNumericColumn(const Relation& relation, int a) {
  ValueType t = relation.schema().column(a).type;
  return t == ValueType::kInt || t == ValueType::kDouble;
}

/// NaN order-ties with every numeric under Value's comparison, which the
/// kernel's rank trit cannot represent (distinct codes always read < or >),
/// so a NaN anywhere in an order column's dictionary disables the kernel
/// path.
bool DictHasNan(const EncodedRelation& encoded, int a) {
  for (int code = 0; code < encoded.dict_size(a); ++code) {
    const Value& v = encoded.Decode(a, code);
    if (v.type() == ValueType::kDouble && std::isnan(v.as_double())) {
      return true;
    }
  }
  return false;
}

/// Decodes one packed comparison word into the satisfied-predicate bitset.
/// Each same-column predicate reads its column's facet: equality bit for
/// categorical columns, order trit (0 equal / 1 less / 2 greater) for
/// numeric ones.
Bits WordToBits(const EvidenceSet& set, uint64_t word,
                const std::vector<DcPredicate>& preds) {
  Bits bits;
  for (size_t p = 0; p < preds.size(); ++p) {
    int t = set.CmpOf(word, preds[p].lhs.attr);
    bool sat = false;
    switch (preds[p].op) {
      case CmpOp::kEq: sat = t == 0; break;
      case CmpOp::kNeq: sat = t != 0; break;
      case CmpOp::kLt: sat = t == 1; break;
      case CmpOp::kLe: sat = t != 2; break;
      case CmpOp::kGt: sat = t == 2; break;
      case CmpOp::kGe: sat = t != 1; break;
    }
    if (sat) bits[p] = true;
  }
  return bits;
}

}  // namespace

std::vector<DcPredicate> BuildPredicateSpace(const Relation& relation,
                                             bool cross_column) {
  std::vector<DcPredicate> preds;
  int nc = relation.num_columns();
  auto is_numeric = [&relation](int a) {
    ValueType t = relation.schema().column(a).type;
    return t == ValueType::kInt || t == ValueType::kDouble;
  };
  for (int a = 0; a < nc; ++a) {
    std::vector<CmpOp> ops = {CmpOp::kEq, CmpOp::kNeq};
    if (is_numeric(a)) {
      ops.insert(ops.end(),
                 {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe});
    }
    for (CmpOp op : ops) {
      preds.push_back(
          DcPredicate{DcOperand::TupleA(a), op, DcOperand::TupleB(a)});
    }
  }
  if (cross_column) {
    for (int a = 0; a < nc; ++a) {
      for (int b = a + 1; b < nc; ++b) {
        if (!is_numeric(a) || !is_numeric(b)) continue;
        for (CmpOp op : {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe}) {
          preds.push_back(
              DcPredicate{DcOperand::TupleA(a), op, DcOperand::TupleB(b)});
        }
      }
    }
  }
  return preds;
}

Result<std::vector<DiscoveredDc>> DiscoverDcs(const Relation& relation,
                                              const FastDcOptions& options) {
  std::vector<DcPredicate> preds =
      BuildPredicateSpace(relation, options.cross_column);
  if (static_cast<int>(preds.size()) > kMaxPredicates) {
    return Status::Invalid("predicate space exceeds " +
                           std::to_string(kMaxPredicates) +
                           " predicates; reduce the schema");
  }
  if (options.max_violation_fraction < 0 ||
      options.max_violation_fraction > 1) {
    return Status::Invalid("max_violation_fraction must be in [0, 1]");
  }
  int n = relation.num_rows();
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "fastdc");
  // A stop during evidence construction cuts before the cover search
  // visited any DFS node: the partial result is the empty prefix.
  auto exhausted_early = [&](const Status& stop) {
    RunContext::MarkExhausted(ctx, stop, 0, 0);
    return std::vector<DiscoveredDc>{};
  };
  // Kernel path: one packed word per unordered pair from the shared
  // comparison engine, decoded into predicate bitsets once per distinct
  // word. The ordered-pair evidence FASTDC mines over is the unordered
  // multiset plus its mirror (order trits swapped), so the cover search
  // sees exactly the multiset the per-predicate path would produce.
  if (options.use_encoding && options.use_evidence && !options.cross_column) {
    EncodedRelation enc(relation);
    std::vector<EvidenceColumn> config;
    bool supported = true;
    for (int a = 0; a < relation.num_columns(); ++a) {
      EvidenceColumn c;
      c.attr = a;
      if (IsNumericColumn(relation, a)) {
        c.cmp = EvidenceColumn::Cmp::kOrder;
        if (DictHasNan(enc, a)) {
          supported = false;
          break;
        }
      } else {
        c.cmp = EvidenceColumn::Cmp::kEquality;
      }
      config.push_back(c);
    }
    if (supported && EvidenceWordBits(config) <= 64) {
      EvidenceOptions eopts;
      eopts.pool = options.pool;
      eopts.context = ctx;
      std::shared_ptr<const EvidenceSet> set;
      bool exact = n <= options.max_rows_exact;
      if (exact) {
        Result<std::shared_ptr<const EvidenceSet>> set_result =
            GetOrBuildEvidence(options.evidence, enc, config, eopts);
        if (!set_result.ok() && RunContext::IsStop(set_result.status())) {
          return exhausted_early(set_result.status());
        }
        FAMTREE_ASSIGN_OR_RETURN(set, std::move(set_result));
      } else {
        // The sampled pair stream stays on one serial Rng, so the sample —
        // and everything mined from it — is identical to the fallback
        // path's at any thread count.
        Rng rng(options.seed);
        int64_t samples = static_cast<int64_t>(options.max_rows_exact) *
                          options.max_rows_exact;
        std::vector<std::pair<int, int>> sampled;
        sampled.reserve(samples);
        for (int64_t s = 0; s < samples; ++s) {
          int i = static_cast<int>(rng.Uniform(0, n - 1));
          int j = static_cast<int>(rng.Uniform(0, n - 1));
          if (i != j) sampled.push_back({i, j});
        }
        Result<std::shared_ptr<const EvidenceSet>> set_result =
            BuildEvidenceForPairs(enc, config, sampled, eopts);
        if (!set_result.ok() && RunContext::IsStop(set_result.status())) {
          return exhausted_early(set_result.status());
        }
        FAMTREE_ASSIGN_OR_RETURN(set, std::move(set_result));
      }
      std::vector<Evidence> evidence;
      evidence.reserve(set->words().size() * (exact ? 2 : 1));
      for (const EvidenceSet::Word& w : set->words()) {
        evidence.push_back(Evidence{WordToBits(*set, w.bits, preds), w.count});
        if (exact) {
          // The opposite orientation of every unordered pair; symmetric
          // words simply contribute their count twice, which sums to the
          // ordered-pair total.
          evidence.push_back(
              Evidence{WordToBits(*set, set->MirrorOf(w.bits), preds),
                       w.count});
        }
      }
      int64_t total_pairs =
          exact ? static_cast<int64_t>(n) * std::max(0, n - 1)
                : set->total_pairs();
      return MineCover(preds, evidence, total_pairs, options);
    }
  }
  // Evidence sets, deduplicated with multiplicities. The ordered pairs are
  // listed up front (sampling draws stay on one serial Rng stream), then
  // evaluated in contiguous chunks — in parallel when a pool is given.
  // Each chunk fills a private map; merging sums counts per evidence
  // bitset, which is commutative, so the merged multiset (and everything
  // derived from it) is independent of the chunk count.
  std::vector<std::pair<int, int>> pairs;
  if (n <= options.max_rows_exact) {
    pairs.reserve(static_cast<size_t>(n) * std::max(0, n - 1));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j) pairs.push_back({i, j});
      }
    }
  } else {
    Rng rng(options.seed);
    int64_t samples = static_cast<int64_t>(options.max_rows_exact) *
                      options.max_rows_exact;
    pairs.reserve(samples);
    for (int64_t s = 0; s < samples; ++s) {
      int i = static_cast<int>(rng.Uniform(0, n - 1));
      int j = static_cast<int>(rng.Uniform(0, n - 1));
      if (i != j) pairs.push_back({i, j});
    }
  }
  // Lower the predicate space onto the encoded backend: codes for same-col
  // =/!=, per-dictionary OrderCells for </<=/>/>=. Cells are materialized
  // once per dictionary entry, not per pair, so the quadratic loop touches
  // only flat arrays.
  std::unique_ptr<EncodedRelation> encoded;
  std::vector<CompiledPred> compiled;
  std::vector<std::vector<OrderCell>> cells;
  if (options.use_encoding) {
    encoded = std::make_unique<EncodedRelation>(relation);
    compiled.reserve(preds.size());
    for (const DcPredicate& p : preds) compiled.push_back(CompilePred(p));
    cells.resize(relation.num_columns());
    for (int a = 0; a < relation.num_columns(); ++a) {
      cells[a].resize(encoded->dict_size(a));
      for (int code = 0; code < encoded->dict_size(a); ++code) {
        const Value& v = encoded->Decode(a, code);
        OrderCell& c = cells[a][code];
        switch (v.type()) {
          case ValueType::kNull:
            c.rank = 0;
            break;
          case ValueType::kInt:
            c.rank = 1;
            c.is_int = true;
            c.i = v.as_int();
            c.num = static_cast<double>(v.as_int());
            break;
          case ValueType::kDouble:
            c.rank = 1;
            c.num = v.as_double();
            break;
          case ValueType::kString:
            c.rank = 2;
            break;
        }
      }
    }
  }
  auto eval_pred = [&](size_t p, int i, int j) {
    if (encoded == nullptr) return preds[p].Eval(relation, i, j);
    const CompiledPred& cp = compiled[p];
    switch (cp.kind) {
      case CompiledPred::Kind::kSameColEq:
        return encoded->code(i, cp.col_a) == encoded->code(j, cp.col_a);
      case CompiledPred::Kind::kSameColNeq:
        return encoded->code(i, cp.col_a) != encoded->code(j, cp.col_a);
      case CompiledPred::Kind::kOrder: {
        const OrderCell& x = cells[cp.col_a][encoded->code(i, cp.col_a)];
        const OrderCell& y = cells[cp.col_b][encoded->code(j, cp.col_b)];
        if (x.rank == 2 || y.rank == 2) {
          return preds[p].Eval(relation, i, j);  // string under order op
        }
        switch (cp.op) {
          case CmpOp::kLt: return CellLess(x, y);
          case CmpOp::kLe: return !CellLess(y, x);
          case CmpOp::kGt: return CellLess(y, x);
          case CmpOp::kGe: return !CellLess(x, y);
          default: return preds[p].Eval(relation, i, j);
        }
      }
      case CompiledPred::Kind::kFallback:
        return preds[p].Eval(relation, i, j);
    }
    return preds[p].Eval(relation, i, j);
  };
  auto bits_less = [](const Bits& a, const Bits& b) {
    for (int w = kMaxPredicates - 1; w >= 0; --w) {
      if (a[w] != b[w]) return b[w];
    }
    return false;
  };
  using EvidenceMap = std::map<Bits, int64_t, decltype(bits_less)>;
  int num_chunks = options.pool == nullptr
                       ? 1
                       : std::max(1, options.pool->num_threads() * 4);
  num_chunks = std::min<int64_t>(num_chunks,
                                 std::max<int64_t>(1, pairs.size()));
  std::vector<EvidenceMap> chunk_maps(num_chunks, EvidenceMap(bits_less));
  Status chunk_status = ParallelFor(options.pool, num_chunks, [&](int64_t c) {
    FAMTREE_RETURN_NOT_OK(RunContext::Poll(ctx));
    size_t begin = pairs.size() * c / num_chunks;
    size_t end = pairs.size() * (c + 1) / num_chunks;
    EvidenceMap& local = chunk_maps[c];
    for (size_t s = begin; s < end; ++s) {
      auto [i, j] = pairs[s];
      Bits bits;
      for (size_t p = 0; p < preds.size(); ++p) {
        if (eval_pred(p, i, j)) bits[p] = true;
      }
      ++local[bits];
    }
    return Status::OK();
  });
  if (RunContext::IsStop(chunk_status)) return exhausted_early(chunk_status);
  FAMTREE_RETURN_NOT_OK(chunk_status);
  int64_t total_pairs = static_cast<int64_t>(pairs.size());
  EvidenceMap emap(bits_less);
  for (EvidenceMap& local : chunk_maps) {
    for (const auto& [bits, count] : local) emap[bits] += count;
  }
  std::vector<Evidence> evidence;
  evidence.reserve(emap.size());
  for (const auto& [bits, count] : emap) {
    evidence.push_back(Evidence{bits, count});
  }

  return MineCover(preds, evidence, total_pairs, options);
}

Result<std::vector<DiscoveredDc>> DiscoverConstantDcs(
    const Relation& relation, int min_support) {
  std::vector<DiscoveredDc> out;
  int nc = relation.num_columns();
  FAMTREE_RETURN_NOT_OK(CheckAttrCapacity(nc, "constant DC discovery"));
  auto is_numeric = [&relation](int a) {
    ValueType t = relation.schema().column(a).type;
    return t == ValueType::kInt || t == ValueType::kDouble;
  };
  for (int c = 0; c < nc; ++c) {
    if (is_numeric(c)) continue;  // conditions on categorical columns
    for (const auto& group : relation.GroupBy(AttrSet::Single(c))) {
      if (static_cast<int>(group.size()) < min_support) continue;
      if (relation.Get(group[0], c).is_null()) continue;
      for (int a = 0; a < nc; ++a) {
        if (a == c || !is_numeric(a)) continue;
        double lo = std::numeric_limits<double>::infinity();
        double hi = -lo;
        bool any = false;
        for (int r : group) {
          const Value& v = relation.Get(r, a);
          if (!v.is_numeric()) continue;
          lo = std::min(lo, v.AsNumeric());
          hi = std::max(hi, v.AsNumeric());
          any = true;
        }
        if (!any) continue;
        Value cond = relation.Get(group[0], c);
        // not(ta.C = cond and ta.A < lo)
        out.push_back(DiscoveredDc{
            Dc({DcPredicate{DcOperand::TupleA(c), CmpOp::kEq,
                            DcOperand::Const(cond)},
                DcPredicate{DcOperand::TupleA(a), CmpOp::kLt,
                            DcOperand::Const(Value(lo))}}),
            0.0});
        // not(ta.C = cond and ta.A > hi)
        out.push_back(DiscoveredDc{
            Dc({DcPredicate{DcOperand::TupleA(c), CmpOp::kEq,
                            DcOperand::Const(cond)},
                DcPredicate{DcOperand::TupleA(a), CmpOp::kGt,
                            DcOperand::Const(Value(hi))}}),
            0.0});
      }
    }
  }
  return out;
}

}  // namespace famtree
