#include "discovery/metric_discovery.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/run_context.h"
#include "common/thread_pool.h"
#include "discovery/discovery_util.h"
#include "engine/evidence.h"
#include "engine/evidence_cache.h"
#include "metric/code_distance.h"
#include "metric/metric.h"

namespace famtree {

namespace {

double GlobalDiameter(const Relation& relation, int attr,
                      const Metric& metric, const CodeDistanceTable* table) {
  double diameter = 0.0;
  int n = relation.num_rows();
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double d = table != nullptr
                     ? table->RowDistance(i, j)
                     : metric.Distance(relation.Get(i, attr),
                                       relation.Get(j, attr));
      if (std::isfinite(d)) diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

/// The max finite pairwise distance from the code-count histogram: every
/// cross-code pair with both codes present occurs among the row pairs, and
/// a diagonal pair needs its code on at least two rows — so the fold over
/// occurring code pairs equals the O(n^2) row-pair fold.
double GlobalDiameterFromCodes(const EncodedRelation& encoded, int attr,
                               const CodeDistanceTable& table) {
  const std::vector<uint32_t>& codes = encoded.codes(attr);
  int k = encoded.dict_size(attr);
  std::vector<int64_t> count(k, 0);
  for (uint32_t c : codes) ++count[c];
  double diameter = 0.0;
  for (int c1 = 0; c1 < k; ++c1) {
    if (count[c1] == 0) continue;
    if (count[c1] >= 2) {
      double d = table.Distance(c1, c1);
      if (std::isfinite(d)) diameter = std::max(diameter, d);
    }
    for (int c2 = c1 + 1; c2 < k; ++c2) {
      if (count[c2] == 0) continue;
      double d = table.Distance(c1, c2);
      if (std::isfinite(d)) diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

}  // namespace

Result<std::vector<DiscoveredMfd>> DiscoverMfds(
    const Relation& relation, const MfdDiscoveryOptions& options) {
  int nc = relation.num_columns();
  FAMTREE_RETURN_NOT_OK(CheckAttrCapacity(nc, "MFD discovery"));
  if (options.max_delta_ratio <= 0 || options.max_delta_ratio > 1) {
    return Status::Invalid("max_delta_ratio must be in (0, 1]");
  }
  ThreadPool* pool = options.pool;
  std::unique_ptr<EncodedRelation> local_encoding;
  FAMTREE_ASSIGN_OR_RETURN(
      const EncodedRelation* encoded,
      ResolveEncoding(relation, options.use_encoding, options.cache,
                      &local_encoding));
  std::vector<MetricPtr> metrics(nc);
  for (int a = 0; a < nc; ++a) {
    metrics[a] = DefaultMetricFor(relation.schema().column(a).type);
  }
  // Code-pair distance tables, one per attribute, built before any outer
  // ParallelFor (each fill parallelizes internally on the same pool).
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "mfds");
  // A stop during the shared precomputation cuts before any candidate was
  // evaluated: the partial result is the empty prefix.
  auto exhausted_early = [&](const Status& stop, int64_t total) {
    RunContext::MarkExhausted(ctx, stop, 0, total);
    return std::vector<DiscoveredMfd>{};
  };
  std::vector<std::unique_ptr<CodeDistanceTable>> tables(nc);
  if (encoded != nullptr) {
    for (int a = 0; a < nc; ++a) {
      Status st = RunContext::Poll(ctx);
      if (RunContext::IsStop(st)) return exhausted_early(st, 0);
      tables[a] =
          std::make_unique<CodeDistanceTable>(*encoded, a, metrics[a], pool);
    }
  }
  std::vector<double> global(nc);
  Status global_status = ParallelFor(pool, nc, [&](int64_t a) {
    FAMTREE_RETURN_NOT_OK(RunContext::Poll(ctx));
    global[a] = encoded != nullptr
                    ? GlobalDiameterFromCodes(*encoded, static_cast<int>(a),
                                              *tables[a])
                    : GlobalDiameter(relation, static_cast<int>(a),
                                     *metrics[a], tables[a].get());
    return Status::OK();
  });
  if (RunContext::IsStop(global_status)) {
    return exhausted_early(global_status, 0);
  }
  FAMTREE_RETURN_NOT_OK(global_status);
  // Per-candidate diameters fill index-addressed slots in the serial walk's
  // (LHS, attr) order; the vacuity and max_results filters replay that
  // order below, so the output is bit-identical at any thread count.
  struct Candidate {
    AttrSet lhs;
    int attr = 0;
    double diameter = 0.0;
  };
  std::vector<Candidate> candidates;
  for (int size = 1; size <= options.max_lhs_size; ++size) {
    for (AttrSet lhs : AllSubsetsOfSize(nc, size)) {
      for (int a = 0; a < nc; ++a) {
        if (lhs.Contains(a)) continue;
        candidates.push_back(Candidate{lhs, a, 0.0});
      }
    }
  }
  // Evidence path: one PLI-pruned kernel build (equality bit + tracked
  // distance max per attribute); a candidate's diameter is then the max of
  // its attribute's per-word maxima over the words whose LHS bits all
  // agree. Those words cover exactly the within-group pairs, and a max of
  // group maxes is the group-pair max, so the diameters are bit-identical
  // to the per-candidate GroupBy scans. The synthesized all-unequal word
  // disagrees with every (non-empty) LHS, so its zeroed aggregates are
  // never read.
  bool used_evidence = false;
  int64_t candidates_done = 0;
  if (encoded != nullptr && options.use_evidence) {
    std::vector<EvidenceColumn> config(nc);
    for (int a = 0; a < nc; ++a) {
      config[a].attr = a;
      config[a].cmp = EvidenceColumn::Cmp::kEquality;
      config[a].metric = metrics[a];
      config[a].track_max = true;
      config[a].table = tables[a].get();
    }
    if (EvidenceWordBits(config) <= 64) {
      EvidenceOptions eopts;
      eopts.pool = pool;
      eopts.pli = options.cache;
      eopts.prune_all_unequal = true;
      eopts.context = ctx;
      Result<std::shared_ptr<const EvidenceSet>> set_result =
          GetOrBuildEvidence(options.evidence, *encoded, config, eopts);
      if (!set_result.ok() && RunContext::IsStop(set_result.status())) {
        return exhausted_early(set_result.status(),
                               static_cast<int64_t>(candidates.size()));
      }
      FAMTREE_ASSIGN_OR_RETURN(std::shared_ptr<const EvidenceSet> set,
                               std::move(set_result));
      const std::vector<EvidenceSet::Word>& words = set->words();
      // Per-word attribute-agreement masks, shared by every candidate:
      // the word's pairs lie in one LHS group exactly when the mask covers
      // the LHS.
      std::vector<AttrSet> agree(words.size());
      for (size_t wi = 0; wi < words.size(); ++wi) {
        for (int a = 0; a < nc; ++a) {
          if (set->AgreesOn(words[wi].bits, a)) agree[wi].Add(a);
        }
      }
      FAMTREE_ASSIGN_OR_RETURN(
          candidates_done,
          AnytimeParallelFor(
              ctx, pool, static_cast<int64_t>(candidates.size()),
              [&](int64_t i) {
                Candidate& c = candidates[i];
                double diameter = 0.0;
                for (size_t wi = 0; wi < words.size(); ++wi) {
                  if (!agree[wi].ContainsAll(c.lhs)) continue;
                  diameter = std::max(diameter, set->agg(wi, c.attr).max_all);
                }
                c.diameter = diameter;
                return Status::OK();
              }));
      used_evidence = true;
    }
  }
  if (!used_evidence) {
    FAMTREE_ASSIGN_OR_RETURN(
        candidates_done,
        AnytimeParallelFor(
            ctx, pool, static_cast<int64_t>(candidates.size()),
            [&](int64_t i) {
              Candidate& c = candidates[i];
              c.diameter =
                  encoded != nullptr
                      ? Mfd::MaxGroupDiameter(*encoded, c.lhs, *tables[c.attr])
                      : Mfd::MaxGroupDiameter(relation, c.lhs, c.attr,
                                              *metrics[c.attr]);
              return Status::OK();
            }));
  }
  std::vector<DiscoveredMfd> out;
  // The vacuity / max_results filters replay the completed candidate prefix
  // only, so a cut run emits the same MFDs at any thread count.
  for (int64_t i = 0; i < candidates_done; ++i) {
    const Candidate& c = candidates[i];
    if (!std::isfinite(c.diameter)) continue;
    if (global[c.attr] > 0 &&
        c.diameter > options.max_delta_ratio * global[c.attr]) {
      continue;  // vacuous: the "metric FD" barely constrains
    }
    Mfd mfd(c.lhs, {MetricConstraint{c.attr, metrics[c.attr], c.diameter}});
    out.push_back(DiscoveredMfd{std::move(mfd), c.diameter});
    if (static_cast<int>(out.size()) >= options.max_results) {
      RunContext::MarkComplete(ctx, i + 1);
      return out;
    }
  }
  if (candidates_done < static_cast<int64_t>(candidates.size())) {
    RunContext::MarkExhausted(ctx, RunContext::StopStatus(ctx),
                              candidates_done,
                              static_cast<int64_t>(candidates.size()));
  } else {
    RunContext::MarkComplete(ctx, candidates_done);
  }
  return out;
}

Result<std::vector<DiscoveredFfd>> DiscoverFfds(
    const Relation& relation, std::vector<ResemblancePtr> resemblances,
    const FfdDiscoveryOptions& options) {
  int nc = relation.num_columns();
  if (static_cast<int>(resemblances.size()) != nc) {
    return Status::Invalid("need one resemblance per attribute (or null)");
  }
  for (auto& r : resemblances) {
    if (r == nullptr) r = GetCrispResemblance();
  }
  std::vector<DiscoveredFfd> out;
  std::vector<std::vector<Ffd::FuzzyAttr>> lhs_sets;
  for (int a = 0; a < nc; ++a) {
    lhs_sets.push_back({Ffd::FuzzyAttr{a, resemblances[a]}});
  }
  if (options.max_lhs_attrs >= 2) {
    for (int a = 0; a < nc; ++a) {
      for (int b = a + 1; b < nc; ++b) {
        lhs_sets.push_back({Ffd::FuzzyAttr{a, resemblances[a]},
                            Ffd::FuzzyAttr{b, resemblances[b]}});
      }
    }
  }
  for (const auto& lhs : lhs_sets) {
    AttrSet lhs_attrs;
    for (const auto& fa : lhs) lhs_attrs.Add(fa.attr);
    for (int a = 0; a < nc; ++a) {
      if (lhs_attrs.Contains(a)) continue;
      Ffd ffd(lhs, {Ffd::FuzzyAttr{a, resemblances[a]}});
      FAMTREE_ASSIGN_OR_RETURN(ValidationReport report,
                               ffd.Validate(relation, 0));
      if (!report.holds) continue;
      out.push_back(DiscoveredFfd{std::move(ffd), report.measure});
      if (static_cast<int>(out.size()) >= options.max_results) return out;
    }
  }
  return out;
}

Result<InstantiatedPac> InstantiatePac(const Relation& training,
                                       const PacTemplate& rule_template,
                                       const PacDiscoveryOptions& options) {
  int nc = training.num_columns();
  if (rule_template.lhs_attrs.empty() || rule_template.rhs_attrs.empty()) {
    return Status::Invalid("PAC template needs LHS and RHS attributes");
  }
  for (int a : rule_template.lhs_attrs) {
    if (a < 0 || a >= nc) return Status::Invalid("template attr outside schema");
  }
  for (int a : rule_template.rhs_attrs) {
    if (a < 0 || a >= nc) return Status::Invalid("template attr outside schema");
  }
  auto metric_for = [&training](int a) {
    return DefaultMetricFor(training.schema().column(a).type);
  };
  auto quantile_of = [](std::vector<double> values, double q) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    return values[std::min(values.size() - 1,
                           static_cast<size_t>(q * values.size()))];
  };
  int n = training.num_rows();
  // 1. Delta: per-LHS-attribute distance quantile over all pairs.
  std::vector<Pac::Tolerance> lhs;
  for (int a : rule_template.lhs_attrs) {
    MetricPtr m = metric_for(a);
    std::vector<double> dists;
    for (int i = 0; i + 1 < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        double d = m->Distance(training.Get(i, a), training.Get(j, a));
        if (std::isfinite(d)) dists.push_back(d);
      }
    }
    lhs.push_back(Pac::Tolerance{a, m,
                                 quantile_of(std::move(dists),
                                             options.lhs_quantile)});
  }
  // 2. eps: per-RHS-attribute distance quantile among LHS-close pairs.
  std::vector<Pac::Tolerance> rhs;
  for (int b : rule_template.rhs_attrs) {
    MetricPtr m = metric_for(b);
    std::vector<double> dists;
    for (int i = 0; i + 1 < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        bool close = true;
        for (const auto& t : lhs) {
          if (t.metric->Distance(training.Get(i, t.attr),
                                 training.Get(j, t.attr)) > t.tolerance) {
            close = false;
            break;
          }
        }
        if (!close) continue;
        double d = m->Distance(training.Get(i, b), training.Get(j, b));
        if (std::isfinite(d)) dists.push_back(d);
      }
    }
    rhs.push_back(Pac::Tolerance{b, m,
                                 quantile_of(std::move(dists),
                                             options.rhs_quantile)});
  }
  // 3. delta: the measured confidence on the training data.
  double confidence = Pac::MinRhsProbability(training, lhs, rhs);
  InstantiatedPac out{Pac(lhs, rhs, confidence), confidence};
  return out;
}

}  // namespace famtree
