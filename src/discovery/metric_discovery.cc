#include "discovery/metric_discovery.h"

#include <algorithm>
#include <cmath>

#include "metric/metric.h"

namespace famtree {

namespace {

double GlobalDiameter(const Relation& relation, int attr,
                      const Metric& metric) {
  double diameter = 0.0;
  int n = relation.num_rows();
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double d = metric.Distance(relation.Get(i, attr),
                                 relation.Get(j, attr));
      if (std::isfinite(d)) diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

}  // namespace

Result<std::vector<DiscoveredMfd>> DiscoverMfds(
    const Relation& relation, const MfdDiscoveryOptions& options) {
  int nc = relation.num_columns();
  if (nc > 63) return Status::Invalid("MFD discovery supports up to 63 attributes");
  if (options.max_delta_ratio <= 0 || options.max_delta_ratio > 1) {
    return Status::Invalid("max_delta_ratio must be in (0, 1]");
  }
  std::vector<DiscoveredMfd> out;
  std::vector<MetricPtr> metrics(nc);
  std::vector<double> global(nc);
  for (int a = 0; a < nc; ++a) {
    metrics[a] = DefaultMetricFor(relation.schema().column(a).type);
    global[a] = GlobalDiameter(relation, a, *metrics[a]);
  }
  for (int size = 1; size <= options.max_lhs_size; ++size) {
    for (AttrSet lhs : AllSubsetsOfSize(nc, size)) {
      for (int a = 0; a < nc; ++a) {
        if (lhs.Contains(a)) continue;
        double diameter =
            Mfd::MaxGroupDiameter(relation, lhs, a, *metrics[a]);
        if (!std::isfinite(diameter)) continue;
        if (global[a] > 0 &&
            diameter > options.max_delta_ratio * global[a]) {
          continue;  // vacuous: the "metric FD" barely constrains
        }
        Mfd mfd(lhs, {MetricConstraint{a, metrics[a], diameter}});
        out.push_back(DiscoveredMfd{std::move(mfd), diameter});
        if (static_cast<int>(out.size()) >= options.max_results) return out;
      }
    }
  }
  return out;
}

Result<std::vector<DiscoveredFfd>> DiscoverFfds(
    const Relation& relation, std::vector<ResemblancePtr> resemblances,
    const FfdDiscoveryOptions& options) {
  int nc = relation.num_columns();
  if (static_cast<int>(resemblances.size()) != nc) {
    return Status::Invalid("need one resemblance per attribute (or null)");
  }
  for (auto& r : resemblances) {
    if (r == nullptr) r = GetCrispResemblance();
  }
  std::vector<DiscoveredFfd> out;
  std::vector<std::vector<Ffd::FuzzyAttr>> lhs_sets;
  for (int a = 0; a < nc; ++a) {
    lhs_sets.push_back({Ffd::FuzzyAttr{a, resemblances[a]}});
  }
  if (options.max_lhs_attrs >= 2) {
    for (int a = 0; a < nc; ++a) {
      for (int b = a + 1; b < nc; ++b) {
        lhs_sets.push_back({Ffd::FuzzyAttr{a, resemblances[a]},
                            Ffd::FuzzyAttr{b, resemblances[b]}});
      }
    }
  }
  for (const auto& lhs : lhs_sets) {
    AttrSet lhs_attrs;
    for (const auto& fa : lhs) lhs_attrs.Add(fa.attr);
    for (int a = 0; a < nc; ++a) {
      if (lhs_attrs.Contains(a)) continue;
      Ffd ffd(lhs, {Ffd::FuzzyAttr{a, resemblances[a]}});
      FAMTREE_ASSIGN_OR_RETURN(ValidationReport report,
                               ffd.Validate(relation, 0));
      if (!report.holds) continue;
      out.push_back(DiscoveredFfd{std::move(ffd), report.measure});
      if (static_cast<int>(out.size()) >= options.max_results) return out;
    }
  }
  return out;
}

Result<InstantiatedPac> InstantiatePac(const Relation& training,
                                       const PacTemplate& rule_template,
                                       const PacDiscoveryOptions& options) {
  int nc = training.num_columns();
  if (rule_template.lhs_attrs.empty() || rule_template.rhs_attrs.empty()) {
    return Status::Invalid("PAC template needs LHS and RHS attributes");
  }
  for (int a : rule_template.lhs_attrs) {
    if (a < 0 || a >= nc) return Status::Invalid("template attr outside schema");
  }
  for (int a : rule_template.rhs_attrs) {
    if (a < 0 || a >= nc) return Status::Invalid("template attr outside schema");
  }
  auto metric_for = [&training](int a) {
    return DefaultMetricFor(training.schema().column(a).type);
  };
  auto quantile_of = [](std::vector<double> values, double q) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    return values[std::min(values.size() - 1,
                           static_cast<size_t>(q * values.size()))];
  };
  int n = training.num_rows();
  // 1. Delta: per-LHS-attribute distance quantile over all pairs.
  std::vector<Pac::Tolerance> lhs;
  for (int a : rule_template.lhs_attrs) {
    MetricPtr m = metric_for(a);
    std::vector<double> dists;
    for (int i = 0; i + 1 < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        double d = m->Distance(training.Get(i, a), training.Get(j, a));
        if (std::isfinite(d)) dists.push_back(d);
      }
    }
    lhs.push_back(Pac::Tolerance{a, m,
                                 quantile_of(std::move(dists),
                                             options.lhs_quantile)});
  }
  // 2. eps: per-RHS-attribute distance quantile among LHS-close pairs.
  std::vector<Pac::Tolerance> rhs;
  for (int b : rule_template.rhs_attrs) {
    MetricPtr m = metric_for(b);
    std::vector<double> dists;
    for (int i = 0; i + 1 < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        bool close = true;
        for (const auto& t : lhs) {
          if (t.metric->Distance(training.Get(i, t.attr),
                                 training.Get(j, t.attr)) > t.tolerance) {
            close = false;
            break;
          }
        }
        if (!close) continue;
        double d = m->Distance(training.Get(i, b), training.Get(j, b));
        if (std::isfinite(d)) dists.push_back(d);
      }
    }
    rhs.push_back(Pac::Tolerance{b, m,
                                 quantile_of(std::move(dists),
                                             options.rhs_quantile)});
  }
  // 3. delta: the measured confidence on the training data.
  double confidence = Pac::MinRhsProbability(training, lhs, rhs);
  InstantiatedPac out{Pac(lhs, rhs, confidence), confidence};
  return out;
}

}  // namespace famtree
