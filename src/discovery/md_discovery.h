#ifndef FAMTREE_DISCOVERY_MD_DISCOVERY_H_
#define FAMTREE_DISCOVERY_MD_DISCOVERY_H_

#include <vector>

#include "common/status.h"
#include "deps/md.h"
#include "relation/relation.h"

namespace famtree {

class EvidenceCache;
class PliCache;
class RunContext;
class ThreadPool;

struct MdDiscoveryOptions {
  /// Minimum support: fraction of tuple pairs the LHS similarity covers.
  double min_support = 0.001;
  /// Minimum confidence: fraction of LHS-similar pairs identified on RHS.
  double min_confidence = 0.9;
  /// Candidate similarity thresholds per string attribute (edit distance).
  std::vector<double> string_thresholds = {0, 1, 2, 3};
  /// Candidate tolerances per numeric attribute (absolute difference).
  std::vector<double> numeric_thresholds = {0, 1, 5};
  /// LHS predicate count cap.
  int max_lhs_attrs = 2;
  /// Evaluate on the first `sample_rows` tuples in statistical-distribution
  /// order — the approximation algorithm of [85], [87].
  int sample_rows = 0;  // 0 = all rows
  int max_results = 10000;
  /// Run on the dictionary-encoded columnar backend (the default): LHS
  /// similarity distances become lookups in per-attribute code-pair tables
  /// and the RHS identification check compares dense row keys instead of
  /// Value tuples. `false` keeps the Value-based oracle; the discovered
  /// list is bit-identical either way.
  bool use_encoding = true;
  /// Optional engine hooks: when `pool` is set the per-candidate pair
  /// scans run in parallel and the support / confidence / RCK-minimality
  /// filters replay the serial candidate order (bit-identical at any
  /// thread count); `cache` lends its encoding (ignored when sampling
  /// re-materializes the input).
  ThreadPool* pool = nullptr;
  PliCache* cache = nullptr;
  /// Optional run limits (common/run_context.h): the driver check-points
  /// between deterministic units of work and, when a limit fires, returns
  /// the prefix of its results completed so far with RunReport.exhausted
  /// set. Null means unlimited.
  RunContext* context = nullptr;
  /// Evaluate every candidate against the shared pairwise evidence
  /// multiset (engine/evidence.h): one kernel build packs each LHS
  /// attribute's threshold-bucket index and each RHS attribute's equality
  /// bit into a word per pair, and each candidate's support / confidence
  /// counts become folds over the deduplicated words instead of O(n^2)
  /// row-pair scans. Requires use_encoding; falls back (identical output)
  /// when the word exceeds 64 bits or a dictionary holds a non-finite
  /// double (whose NaN distances the bucket index cannot mirror).
  bool use_evidence = true;
  /// Optional shared store for the kernel-built evidence multiset.
  EvidenceCache* evidence = nullptr;
};

struct DiscoveredMd {
  Md md;
  double support = 0.0;
  double confidence = 0.0;
};

/// MD discovery in the spirit of [85], [87]: enumerates similarity
/// predicates over candidate thresholds, evaluates support/confidence on
/// all (or the first k) tuples, and reports MDs meeting both bounds.
/// Redundant MDs whose LHS predicate set is a superset (with looser or
/// equal thresholds) of an already-reported MD on the same RHS are pruned —
/// the relative-candidate-key minimality of [90].
Result<std::vector<DiscoveredMd>> DiscoverMds(
    const Relation& relation, AttrSet rhs,
    const MdDiscoveryOptions& options = {});

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_MD_DISCOVERY_H_
