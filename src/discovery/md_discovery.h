#ifndef FAMTREE_DISCOVERY_MD_DISCOVERY_H_
#define FAMTREE_DISCOVERY_MD_DISCOVERY_H_

#include <vector>

#include "common/status.h"
#include "deps/md.h"
#include "relation/relation.h"

namespace famtree {

struct MdDiscoveryOptions {
  /// Minimum support: fraction of tuple pairs the LHS similarity covers.
  double min_support = 0.001;
  /// Minimum confidence: fraction of LHS-similar pairs identified on RHS.
  double min_confidence = 0.9;
  /// Candidate similarity thresholds per string attribute (edit distance).
  std::vector<double> string_thresholds = {0, 1, 2, 3};
  /// Candidate tolerances per numeric attribute (absolute difference).
  std::vector<double> numeric_thresholds = {0, 1, 5};
  /// LHS predicate count cap.
  int max_lhs_attrs = 2;
  /// Evaluate on the first `sample_rows` tuples in statistical-distribution
  /// order — the approximation algorithm of [85], [87].
  int sample_rows = 0;  // 0 = all rows
  int max_results = 10000;
};

struct DiscoveredMd {
  Md md;
  double support = 0.0;
  double confidence = 0.0;
};

/// MD discovery in the spirit of [85], [87]: enumerates similarity
/// predicates over candidate thresholds, evaluates support/confidence on
/// all (or the first k) tuples, and reports MDs meeting both bounds.
/// Redundant MDs whose LHS predicate set is a superset (with looser or
/// equal thresholds) of an already-reported MD on the same RHS are pruned —
/// the relative-candidate-key minimality of [90].
Result<std::vector<DiscoveredMd>> DiscoverMds(
    const Relation& relation, AttrSet rhs,
    const MdDiscoveryOptions& options = {});

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_MD_DISCOVERY_H_
