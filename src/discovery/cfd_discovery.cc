#include "discovery/cfd_discovery.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/run_context.h"
#include "common/thread_pool.h"
#include "deps/fd.h"
#include "discovery/discovery_util.h"
#include "engine/evidence.h"
#include "engine/evidence_cache.h"

namespace famtree {

namespace {

/// Builds the pattern "attrs pinned to row's values" over `attrs`.
PatternTuple ConstPatternFromRow(const Relation& relation, int row,
                                 AttrSet attrs) {
  std::vector<PatternItem> items;
  for (int a : attrs.ToVector()) {
    items.push_back(PatternItem::Const(a, relation.Get(row, a)));
  }
  return PatternTuple(std::move(items));
}

/// Row agreement on a projection: integer code comparison on the encoded
/// path (code equality ⇔ Value equality), AgreeOn on the oracle path.
bool RowsAgree(const Relation& relation, const EncodedRelation* encoded,
               int r1, int r2, AttrSet attrs) {
  if (encoded != nullptr) {
    for (int a : attrs.ToVector()) {
      if (encoded->code(r1, a) != encoded->code(r2, a)) return false;
    }
    return true;
  }
  return relation.AgreeOn(r1, r2, attrs);
}

bool CellsEqual(const Relation& relation, const EncodedRelation* encoded,
                int r1, int r2, int attr) {
  if (encoded != nullptr) {
    return encoded->code(r1, attr) == encoded->code(r2, attr);
  }
  return relation.Get(r1, attr) == relation.Get(r2, attr);
}

/// All general-CFD rows mined for one embedded FD X -> A. The subsumption
/// filter of the serial walk only ever matches CFDs with the same LHS and
/// RHS, so each embedded FD's tableau is fully independent of the others —
/// which is what makes the per-candidate parallel fan-out below exact.
std::vector<DiscoveredCfd> MineGeneralCandidate(
    const Relation& relation, const EncodedRelation* encoded, AttrSet lhs,
    int a, const CfdDiscoveryOptions& options) {
  int nc = relation.num_columns();
  std::vector<DiscoveredCfd> mined;
  // Skip embedded FDs that hold globally — the plain FD subsumes every
  // conditional refinement. Exact FD check: distinct(X) == distinct(XA).
  std::vector<uint32_t> lhs_keys;
  bool global;
  if (encoded != nullptr) {
    int kx = encoded->RowKeys(lhs, &lhs_keys);
    std::vector<uint32_t> xa_keys;
    int kxa = encoded->RowKeys(lhs.With(a), &xa_keys);
    global = kx == kxa;
  } else {
    global = Fd(lhs, AttrSet::Single(a)).Holds(relation);
  }
  if (global) return mined;
  // Condition head rows and attribute sets of the already-mined rows, for
  // the pattern-minimality (subsumption) filter.
  struct MinedInfo {
    int head_row;
    AttrSet cond;
  };
  std::vector<MinedInfo> infos;
  int max_cond = std::min(options.max_condition_attrs, lhs.size());
  for (int cond_size = 1; cond_size <= max_cond; ++cond_size) {
    for (AttrSet cond : AllSubsetsOfSize(nc, cond_size)) {
      if (!lhs.ContainsAll(cond)) continue;
      auto groups =
          encoded != nullptr ? encoded->GroupBy(cond) : relation.GroupBy(cond);
      for (const auto& group : groups) {
        if (static_cast<int>(group.size()) < options.min_support) {
          continue;
        }
        // Does the FD hold within the condition group?
        bool local_holds;
        if (encoded != nullptr) {
          // Functional check over the group's rows: each LHS key maps to
          // one A code.
          local_holds = true;
          const std::vector<uint32_t>& a_codes = encoded->codes(a);
          std::unordered_map<uint32_t, uint32_t> image;
          image.reserve(group.size() * 2);
          for (int row : group) {
            auto [it, inserted] = image.try_emplace(lhs_keys[row],
                                                    a_codes[row]);
            if (!inserted && it->second != a_codes[row]) {
              local_holds = false;
              break;
            }
          }
        } else {
          Relation subset = relation.Select(group);
          Fd local(lhs, AttrSet::Single(a));
          local_holds = local.Holds(subset);
        }
        if (!local_holds) continue;
        // Pattern minimality: skip when an already-mined CFD on this
        // embedded FD has a condition subset matching this group (the
        // broader condition subsumes this one).
        bool subsumed = false;
        for (const MinedInfo& prev : infos) {
          if (cond.ContainsAll(prev.cond) && prev.cond != cond &&
              RowsAgree(relation, encoded, prev.head_row, group[0],
                        prev.cond)) {
            subsumed = true;
            break;
          }
        }
        if (subsumed) continue;
        std::vector<PatternItem> items;
        for (int b : lhs.ToVector()) {
          items.push_back(cond.Contains(b)
                              ? PatternItem::Const(
                                    b, relation.Get(group[0], b))
                              : PatternItem::Wildcard(b));
        }
        items.push_back(PatternItem::Wildcard(a));
        Cfd cfd(lhs, AttrSet::Single(a), PatternTuple(std::move(items)));
        mined.push_back(DiscoveredCfd{std::move(cfd),
                                      static_cast<int>(group.size())});
        infos.push_back(MinedInfo{group[0], cond});
      }
    }
  }
  return mined;
}

}  // namespace

Result<std::vector<DiscoveredCfd>> DiscoverConstantCfds(
    const Relation& relation, const CfdDiscoveryOptions& options) {
  int nc = relation.num_columns();
  FAMTREE_RETURN_NOT_OK(CheckAttrCapacity(nc, "CFD discovery"));
  ThreadPool* pool = options.pool;
  std::unique_ptr<EncodedRelation> local_encoding;
  FAMTREE_ASSIGN_OR_RETURN(
      const EncodedRelation* encoded,
      ResolveEncoding(relation, options.use_encoding, options.cache,
                      &local_encoding));
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "constant_cfds");
  const int64_t total_levels = options.max_lhs_size;
  int64_t levels_done = 0;
  std::vector<DiscoveredCfd> out;
  // Pairwise equality evidence: one PLI-pruned kernel build over every
  // attribute gives, per deduplicated comparison word, the set of
  // attributes a row pair agrees on plus the pair count. A
  // support-qualified group of size s >= min_support contributes
  // C(s, 2) >= C(min_support, 2) pairs agreeing on its LHS — and, when
  // RHS-uniform, on LHS + RHS — so any attribute set whose agreeing-pair
  // total falls short can be skipped without changing the output.
  bool have_evidence = false;
  std::vector<AttrSet> word_masks;
  std::vector<int64_t> word_counts;
  int64_t need_pairs = static_cast<int64_t>(options.min_support) *
                       (options.min_support - 1) / 2;
  std::vector<EvidenceColumn> config;
  if (encoded != nullptr && options.use_evidence && need_pairs > 0) {
    for (int a = 0; a < nc; ++a) {
      EvidenceColumn col;
      col.attr = a;
      col.cmp = EvidenceColumn::Cmp::kEquality;
      config.push_back(std::move(col));
    }
  }
  // The packed comparison word carries one equality facet per column, so
  // the evidence fast path only exists for narrow schemas; wide schemas
  // fall through to the unpruned group scans below.
  if (!config.empty() && EvidenceWordBits(config) <= 64) {
    EvidenceOptions eopts;
    eopts.pool = pool;
    eopts.pli = options.cache;
    eopts.prune_all_unequal = true;
    eopts.context = ctx;
    Result<std::shared_ptr<const EvidenceSet>> set_result =
        GetOrBuildEvidence(options.evidence, *encoded, config, eopts);
    if (!set_result.ok() && RunContext::IsStop(set_result.status())) {
      // Cut before any level completed: the partial result is the empty
      // prefix.
      RunContext::MarkExhausted(ctx, set_result.status(), 0, total_levels);
      return out;
    }
    FAMTREE_ASSIGN_OR_RETURN(std::shared_ptr<const EvidenceSet> set,
                             std::move(set_result));
    for (const EvidenceSet::Word& w : set->words()) {
      AttrSet mask;
      for (int a = 0; a < nc; ++a) {
        if (set->AgreesOn(w.bits, a)) mask.Add(a);
      }
      // All-unequal words can never pass a subset test; drop them here.
      if (mask.empty()) continue;
      word_masks.push_back(mask);
      word_counts.push_back(w.count);
    }
    have_evidence = true;
  }
  // Track (rhs attr, lhs attrs, head row) of accepted CFDs for the
  // minimality filter (oracle path).
  struct Accepted {
    int rhs;
    AttrSet lhs;
    int head_row;
  };
  std::vector<Accepted> accepted;
  // Minimality index (encoded path): accepted CFDs keyed by (RHS attr,
  // LHS attr mask), each holding the accepted head rows' code tuples
  // projected on LHS + RHS. An emission is non-minimal exactly when some
  // key with a subset LHS and the same RHS holds the emission head row's
  // projection — a few tuple lookups instead of a scan over every
  // accepted CFD.
  struct IndexEntry {
    std::vector<int> attrs;  // LHS attrs, ascending; RHS appended to tuples
    std::set<std::vector<uint32_t>> tuples;
  };
  std::map<std::pair<int, AttrSet>, IndexEntry> index;
  auto project = [&](const IndexEntry& entry, int rhs, int row) {
    std::vector<uint32_t> tuple;
    tuple.reserve(entry.attrs.size() + 1);
    for (int b : entry.attrs) tuple.push_back(encoded->code(row, b));
    tuple.push_back(encoded->code(row, rhs));
    return tuple;
  };
  // One emission candidate: a support-qualified, RHS-uniform group. The
  // expensive grouping and uniformity scans fan out per LHS; the
  // minimality filter depends on the accepted list, so it replays serially
  // in the walk's (lhs, group, rhs) order — bit-identical at any thread
  // count.
  struct Emission {
    int head_row;
    int size;
    int rhs;
  };
  for (int size = 1; size <= options.max_lhs_size; ++size) {
    Status gate = RunContext::Checkpoint(ctx);
    if (RunContext::IsStop(gate)) {
      RunContext::MarkExhausted(ctx, gate, levels_done, total_levels);
      return out;
    }
    std::vector<AttrSet> level = AllSubsetsOfSize(nc, size);
    std::vector<std::vector<Emission>> emissions(level.size());
    Status level_status = ParallelFor(
        pool, static_cast<int64_t>(level.size()), [&](int64_t li) {
          FAMTREE_RETURN_NOT_OK(RunContext::Poll(ctx));
          AttrSet lhs = level[li];
          // Evidence pruning: fold the agreeing-pair totals for the LHS
          // and for every LHS + attribute extension in one pass over the
          // deduplicated words; sets short of C(min_support, 2) pairs
          // cannot host a qualifying group.
          std::vector<int64_t> agree_with(nc, 0);
          if (have_evidence) {
            int64_t agree_lhs = 0;
            for (size_t wi = 0; wi < word_masks.size(); ++wi) {
              if (!word_masks[wi].ContainsAll(lhs)) continue;
              agree_lhs += word_counts[wi];
              for (int a : word_masks[wi].Minus(lhs)) {
                agree_with[a] += word_counts[wi];
              }
            }
            if (agree_lhs < need_pairs) return Status::OK();
          }
          auto groups = encoded != nullptr ? encoded->GroupBy(lhs)
                                           : relation.GroupBy(lhs);
          for (const auto& group : groups) {
            if (static_cast<int>(group.size()) < options.min_support) {
              continue;
            }
            for (int a = 0; a < nc; ++a) {
              if (lhs.Contains(a)) continue;
              if (have_evidence && agree_with[a] < need_pairs) continue;
              // All group members must agree on a.
              bool uniform = true;
              if (encoded != nullptr) {
                const std::vector<uint32_t>& codes = encoded->codes(a);
                for (size_t i = 1; i < group.size(); ++i) {
                  if (codes[group[i]] != codes[group[0]]) {
                    uniform = false;
                    break;
                  }
                }
              } else {
                for (size_t i = 1; i < group.size(); ++i) {
                  if (!(relation.Get(group[0], a) ==
                        relation.Get(group[i], a))) {
                    uniform = false;
                    break;
                  }
                }
              }
              if (uniform) {
                emissions[li].push_back(Emission{
                    group[0], static_cast<int>(group.size()), a});
              }
            }
          }
          return Status::OK();
        });
    if (RunContext::IsStop(level_status)) {
      // The interrupted level is discarded whole: `out` still holds only
      // CFDs from completed levels, a prefix of the serial emission order.
      RunContext::MarkExhausted(ctx, level_status, levels_done, total_levels);
      return out;
    }
    FAMTREE_RETURN_NOT_OK(level_status);
    for (size_t li = 0; li < level.size(); ++li) {
      AttrSet lhs = level[li];
      for (const Emission& e : emissions[li]) {
        // Minimality: some accepted CFD with lhs' subset of lhs whose
        // pattern values agree with this group pins the same (a, value)?
        bool minimal = true;
        if (encoded != nullptr) {
          for (const auto& [key, entry] : index) {
            if (key.first != e.rhs || !lhs.ContainsAll(key.second)) {
              continue;
            }
            if (entry.tuples.count(project(entry, e.rhs, e.head_row)) > 0) {
              minimal = false;
              break;
            }
          }
        } else {
          for (const Accepted& acc : accepted) {
            if (acc.rhs != e.rhs || !lhs.ContainsAll(acc.lhs)) continue;
            if (RowsAgree(relation, encoded, acc.head_row, e.head_row,
                          acc.lhs) &&
                CellsEqual(relation, encoded, acc.head_row, e.head_row,
                           e.rhs)) {
              minimal = false;
              break;
            }
          }
        }
        if (!minimal) continue;
        PatternTuple pattern = ConstPatternFromRow(relation, e.head_row, lhs);
        std::vector<PatternItem> items = pattern.items();
        items.push_back(
            PatternItem::Const(e.rhs, relation.Get(e.head_row, e.rhs)));
        Cfd cfd(lhs, AttrSet::Single(e.rhs), PatternTuple(std::move(items)));
        out.push_back(DiscoveredCfd{std::move(cfd), e.size});
        if (encoded != nullptr) {
          IndexEntry& entry = index[{e.rhs, lhs}];
          if (entry.attrs.empty()) entry.attrs = lhs.ToVector();
          entry.tuples.insert(project(entry, e.rhs, e.head_row));
        } else {
          accepted.push_back(Accepted{e.rhs, lhs, e.head_row});
        }
        if (static_cast<int>(out.size()) >= options.max_results) {
          RunContext::MarkComplete(ctx, levels_done);
          return out;
        }
      }
    }
    ++levels_done;
  }
  RunContext::MarkComplete(ctx, levels_done);
  return out;
}

Result<std::vector<DiscoveredCfd>> DiscoverGeneralCfds(
    const Relation& relation, const CfdDiscoveryOptions& options) {
  int nc = relation.num_columns();
  FAMTREE_RETURN_NOT_OK(CheckAttrCapacity(nc, "CFD discovery"));
  ThreadPool* pool = options.pool;
  std::unique_ptr<EncodedRelation> local_encoding;
  FAMTREE_ASSIGN_OR_RETURN(
      const EncodedRelation* encoded,
      ResolveEncoding(relation, options.use_encoding, options.cache,
                      &local_encoding));
  // Embedded FD candidates in the serial walk's order; each one's tableau
  // is independent (see MineGeneralCandidate), so the fan-out is per
  // candidate with a serial concatenation.
  struct Candidate {
    AttrSet lhs;
    int rhs;
  };
  std::vector<Candidate> candidates;
  for (int size = 2; size <= options.max_lhs_size; ++size) {
    for (AttrSet lhs : AllSubsetsOfSize(nc, size)) {
      for (int a = 0; a < nc; ++a) {
        if (lhs.Contains(a)) continue;
        candidates.push_back(Candidate{lhs, a});
      }
    }
  }
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "general_cfds");
  std::vector<std::vector<DiscoveredCfd>> mined(candidates.size());
  FAMTREE_ASSIGN_OR_RETURN(
      int64_t done,
      AnytimeParallelFor(
          ctx, pool, static_cast<int64_t>(candidates.size()), [&](int64_t i) {
            mined[i] = MineGeneralCandidate(relation, encoded,
                                            candidates[i].lhs,
                                            candidates[i].rhs, options);
            return Status::OK();
          }));
  std::vector<DiscoveredCfd> out;
  // Replaying only the completed candidate prefix keeps a cut run's output
  // identical at any thread count.
  for (int64_t c = 0; c < done; ++c) {
    for (DiscoveredCfd& cfd : mined[c]) {
      out.push_back(std::move(cfd));
      if (static_cast<int>(out.size()) >= options.max_results) {
        RunContext::MarkComplete(ctx, c + 1);
        return out;
      }
    }
  }
  if (done < static_cast<int64_t>(candidates.size())) {
    RunContext::MarkExhausted(ctx, RunContext::StopStatus(ctx), done,
                              candidates.size());
  } else {
    RunContext::MarkComplete(ctx, done);
  }
  return out;
}

Result<std::vector<DiscoveredCfd>> BuildGreedyTableau(
    const Relation& relation, AttrSet lhs, int rhs, int condition_attr,
    const TableauOptions& options) {
  int nc = relation.num_columns();
  if (!AttrSet::Full(nc).ContainsAll(lhs) || rhs < 0 || rhs >= nc ||
      !lhs.Contains(condition_attr)) {
    return Status::Invalid(
        "tableau construction needs condition_attr inside the LHS and a "
        "valid RHS");
  }
  if (options.target_coverage < 0 || options.target_coverage > 1) {
    return Status::Invalid("target_coverage must be in [0, 1]");
  }
  ThreadPool* pool = options.pool;
  std::unique_ptr<EncodedRelation> local_encoding;
  FAMTREE_ASSIGN_OR_RETURN(
      const EncodedRelation* encoded,
      ResolveEncoding(relation, options.use_encoding, options.cache,
                      &local_encoding));
  // Candidate patterns: the distinct values of condition_attr, scored by
  // group size, violation-free groups only. The per-group embedded-FD
  // checks are independent, so they fan out; the max_patterns cutoff
  // replays group order.
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "greedy_tableau");
  std::vector<uint32_t> lhs_keys;
  if (encoded != nullptr) encoded->RowKeys(lhs, &lhs_keys);
  auto groups = encoded != nullptr
                    ? encoded->GroupBy(AttrSet::Single(condition_attr))
                    : relation.GroupBy(AttrSet::Single(condition_attr));
  std::vector<char> qualifies(groups.size(), 0);
  Status qualify_status = ParallelFor(
      pool, static_cast<int64_t>(groups.size()), [&](int64_t g) {
        FAMTREE_RETURN_NOT_OK(RunContext::Poll(ctx));
        const std::vector<int>& group = groups[g];
        if (encoded != nullptr) {
          bool holds = true;
          const std::vector<uint32_t>& rhs_codes = encoded->codes(rhs);
          std::unordered_map<uint32_t, uint32_t> image;
          image.reserve(group.size() * 2);
          for (int row : group) {
            auto [it, inserted] =
                image.try_emplace(lhs_keys[row], rhs_codes[row]);
            if (!inserted && it->second != rhs_codes[row]) {
              holds = false;
              break;
            }
          }
          qualifies[g] = holds ? 1 : 0;
        } else {
          Relation subset = relation.Select(group);
          Fd local(lhs, AttrSet::Single(rhs));
          qualifies[g] = local.Holds(subset) ? 1 : 0;
        }
        return Status::OK();
      });
  if (RunContext::IsStop(qualify_status)) {
    // Cut before any pattern was selected: the partial tableau is empty.
    RunContext::MarkExhausted(ctx, qualify_status, 0, groups.size());
    return std::vector<DiscoveredCfd>{};
  }
  FAMTREE_RETURN_NOT_OK(qualify_status);
  struct Candidate {
    int head_row;
    std::vector<int> rows;
  };
  std::vector<Candidate> candidates;
  for (size_t g = 0; g < groups.size(); ++g) {
    if (static_cast<int>(candidates.size()) >= options.max_patterns) break;
    if (!qualifies[g]) continue;
    candidates.push_back(Candidate{groups[g][0], groups[g]});
  }
  std::vector<DiscoveredCfd> tableau;
  std::vector<bool> covered(relation.num_rows(), false);
  int covered_count = 0;
  int target = static_cast<int>(options.target_coverage *
                                relation.num_rows());
  std::vector<bool> used(candidates.size(), false);
  while (covered_count < target) {
    // The greedy selection is serial and deterministic, so a cut mid-loop
    // leaves a prefix of the full run's tableau.
    Status gate = RunContext::Checkpoint(ctx);
    if (RunContext::IsStop(gate)) {
      RunContext::MarkExhausted(ctx, gate, tableau.size(), candidates.size());
      return tableau;
    }
    // Greedy: candidate with the largest marginal cover.
    int best = -1, best_gain = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      int gain = 0;
      for (int r : candidates[i].rows) {
        if (!covered[r]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;  // no candidate adds coverage
    used[best] = true;
    for (int r : candidates[best].rows) {
      if (!covered[r]) {
        covered[r] = true;
        ++covered_count;
      }
    }
    std::vector<PatternItem> items;
    for (int b : lhs.ToVector()) {
      items.push_back(
          b == condition_attr
              ? PatternItem::Const(
                    b, relation.Get(candidates[best].head_row, b))
              : PatternItem::Wildcard(b));
    }
    items.push_back(PatternItem::Wildcard(rhs));
    Cfd cfd(lhs, AttrSet::Single(rhs), PatternTuple(std::move(items)));
    tableau.push_back(DiscoveredCfd{
        std::move(cfd), static_cast<int>(candidates[best].rows.size())});
  }
  RunContext::MarkComplete(ctx, tableau.size());
  return tableau;
}

}  // namespace famtree
