#include "discovery/cfd_discovery.h"

#include <algorithm>
#include <map>

#include "deps/fd.h"

namespace famtree {

namespace {

/// Builds the pattern "attrs pinned to row's values" over `attrs`.
PatternTuple ConstPatternFromRow(const Relation& relation, int row,
                                 AttrSet attrs) {
  std::vector<PatternItem> items;
  for (int a : attrs.ToVector()) {
    items.push_back(PatternItem::Const(a, relation.Get(row, a)));
  }
  return PatternTuple(std::move(items));
}

}  // namespace

Result<std::vector<DiscoveredCfd>> DiscoverConstantCfds(
    const Relation& relation, const CfdDiscoveryOptions& options) {
  int nc = relation.num_columns();
  if (nc > 63) return Status::Invalid("CFD discovery supports up to 63 attributes");
  std::vector<DiscoveredCfd> out;
  // Track (rhs attr, rhs value hash, lhs attrs, head row) of accepted
  // CFDs for the minimality filter.
  struct Accepted {
    int rhs;
    AttrSet lhs;
    int head_row;
  };
  std::vector<Accepted> accepted;

  for (int size = 1; size <= options.max_lhs_size; ++size) {
    for (AttrSet lhs : AllSubsetsOfSize(nc, size)) {
      auto groups = relation.GroupBy(lhs);
      for (const auto& group : groups) {
        if (static_cast<int>(group.size()) < options.min_support) continue;
        for (int a = 0; a < nc; ++a) {
          if (lhs.Contains(a)) continue;
          // All group members must agree on a.
          bool uniform = true;
          for (size_t i = 1; i < group.size(); ++i) {
            if (!(relation.Get(group[0], a) == relation.Get(group[i], a))) {
              uniform = false;
              break;
            }
          }
          if (!uniform) continue;
          // Minimality: some accepted CFD with lhs' subset of lhs whose
          // pattern values agree with this group pins the same (a, value)?
          bool minimal = true;
          for (const Accepted& acc : accepted) {
            if (acc.rhs != a || !lhs.ContainsAll(acc.lhs)) continue;
            if (relation.AgreeOn(acc.head_row, group[0], acc.lhs) &&
                relation.Get(acc.head_row, a) == relation.Get(group[0], a)) {
              minimal = false;
              break;
            }
          }
          if (!minimal) continue;
          PatternTuple pattern = ConstPatternFromRow(relation, group[0], lhs);
          std::vector<PatternItem> items = pattern.items();
          items.push_back(PatternItem::Const(a, relation.Get(group[0], a)));
          Cfd cfd(lhs, AttrSet::Single(a), PatternTuple(std::move(items)));
          out.push_back(
              DiscoveredCfd{std::move(cfd), static_cast<int>(group.size())});
          accepted.push_back(Accepted{a, lhs, group[0]});
          if (static_cast<int>(out.size()) >= options.max_results) {
            return out;
          }
        }
      }
    }
  }
  return out;
}

Result<std::vector<DiscoveredCfd>> DiscoverGeneralCfds(
    const Relation& relation, const CfdDiscoveryOptions& options) {
  int nc = relation.num_columns();
  if (nc > 63) return Status::Invalid("CFD discovery supports up to 63 attributes");
  std::vector<DiscoveredCfd> out;
  for (int size = 2; size <= options.max_lhs_size; ++size) {
    for (AttrSet lhs : AllSubsetsOfSize(nc, size)) {
      for (int a = 0; a < nc; ++a) {
        if (lhs.Contains(a)) continue;
        // Skip embedded FDs that hold globally — the plain FD subsumes
        // every conditional refinement.
        Fd fd(lhs, AttrSet::Single(a));
        if (fd.Holds(relation)) continue;
        // Try condition attribute sets C inside lhs (size bounded by
        // max_condition_attrs): bind C to each of its value combinations;
        // remaining lhs attributes stay variable.
        int max_cond = std::min(options.max_condition_attrs, lhs.size());
        for (int cond_size = 1; cond_size <= max_cond; ++cond_size) {
          for (AttrSet cond : AllSubsetsOfSize(nc, cond_size)) {
            if (!lhs.ContainsAll(cond)) continue;
            auto groups = relation.GroupBy(cond);
            for (const auto& group : groups) {
              if (static_cast<int>(group.size()) < options.min_support) {
                continue;
              }
              // Does the FD hold within the condition group?
              Relation subset = relation.Select(group);
              Fd local(lhs, AttrSet::Single(a));
              if (!local.Holds(subset)) continue;
              // Pattern minimality: skip when an already-accepted CFD on
              // the same embedded FD has a condition subset matching this
              // group (the broader condition subsumes this one).
              bool subsumed = false;
              for (const DiscoveredCfd& prev : out) {
                if (prev.cfd.lhs() != lhs || !prev.cfd.rhs().Contains(a)) {
                  continue;
                }
                AttrSet prev_cond;
                for (const auto& it : prev.cfd.pattern().items()) {
                  if (!it.is_wildcard) prev_cond.Add(it.attr);
                }
                if (cond.ContainsAll(prev_cond) && prev_cond != cond &&
                    prev.cfd.pattern().Matches(relation, group[0],
                                               prev_cond)) {
                  subsumed = true;
                  break;
                }
              }
              if (subsumed) continue;
              std::vector<PatternItem> items;
              for (int b : lhs.ToVector()) {
                items.push_back(cond.Contains(b)
                                    ? PatternItem::Const(
                                          b, relation.Get(group[0], b))
                                    : PatternItem::Wildcard(b));
              }
              items.push_back(PatternItem::Wildcard(a));
              Cfd cfd(lhs, AttrSet::Single(a),
                      PatternTuple(std::move(items)));
              out.push_back(DiscoveredCfd{std::move(cfd),
                                          static_cast<int>(group.size())});
              if (static_cast<int>(out.size()) >= options.max_results) {
                return out;
              }
            }
          }
        }
      }
    }
  }
  return out;
}

Result<std::vector<DiscoveredCfd>> BuildGreedyTableau(
    const Relation& relation, AttrSet lhs, int rhs, int condition_attr,
    const TableauOptions& options) {
  int nc = relation.num_columns();
  if (!AttrSet::Full(nc).ContainsAll(lhs) || rhs < 0 || rhs >= nc ||
      !lhs.Contains(condition_attr)) {
    return Status::Invalid(
        "tableau construction needs condition_attr inside the LHS and a "
        "valid RHS");
  }
  if (options.target_coverage < 0 || options.target_coverage > 1) {
    return Status::Invalid("target_coverage must be in [0, 1]");
  }
  // Candidate patterns: the distinct values of condition_attr, scored by
  // group size, violation-free groups only.
  struct Candidate {
    int head_row;
    std::vector<int> rows;
  };
  std::vector<Candidate> candidates;
  for (const auto& group : relation.GroupBy(AttrSet::Single(condition_attr))) {
    if (static_cast<int>(candidates.size()) >= options.max_patterns) break;
    Relation subset = relation.Select(group);
    Fd local(lhs, AttrSet::Single(rhs));
    if (!local.Holds(subset)) continue;
    candidates.push_back(Candidate{group[0], group});
  }
  std::vector<DiscoveredCfd> tableau;
  std::vector<bool> covered(relation.num_rows(), false);
  int covered_count = 0;
  int target = static_cast<int>(options.target_coverage *
                                relation.num_rows());
  std::vector<bool> used(candidates.size(), false);
  while (covered_count < target) {
    // Greedy: candidate with the largest marginal cover.
    int best = -1, best_gain = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      int gain = 0;
      for (int r : candidates[i].rows) {
        if (!covered[r]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;  // no candidate adds coverage
    used[best] = true;
    for (int r : candidates[best].rows) {
      if (!covered[r]) {
        covered[r] = true;
        ++covered_count;
      }
    }
    std::vector<PatternItem> items;
    for (int b : lhs.ToVector()) {
      items.push_back(
          b == condition_attr
              ? PatternItem::Const(
                    b, relation.Get(candidates[best].head_row, b))
              : PatternItem::Wildcard(b));
    }
    items.push_back(PatternItem::Wildcard(rhs));
    Cfd cfd(lhs, AttrSet::Single(rhs), PatternTuple(std::move(items)));
    tableau.push_back(DiscoveredCfd{
        std::move(cfd), static_cast<int>(candidates[best].rows.size())});
  }
  return tableau;
}

}  // namespace famtree
