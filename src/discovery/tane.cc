#include "discovery/tane.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>

#include "common/run_context.h"
#include "common/thread_pool.h"
#include "engine/pli_cache.h"
#include "relation/partition.h"

namespace famtree {

namespace {

/// Translates a cache miss that is really a latched run limit: a PliCache
/// fed a RunContext returns nullptr when the budget (or an injected fault)
/// stopped the build.
Status PliStopStatus(RunContext* ctx) {
  Status stop = RunContext::StopStatus(ctx);
  return stop.ok() ? Status::Internal("PLI unavailable") : stop;
}

/// Partitions are handled by shared pointer so the serial path, the shared
/// cache and the prev-level map can alias one partition without deep copies.
using Pli = std::shared_ptr<const StrippedPartition>;

struct Node {
  Pli pli;
  AttrSet cplus;  // RHS candidates C+(X)
};

using Level = std::map<AttrSet, Node>;

/// e(X) in TANE terms: rows in stripped classes minus class count.
int PartitionCost(const StrippedPartition& p) {
  return p.num_rows_in_classes() - p.num_classes();
}

/// One validity test X \ A -> A, flattened out of the per-node candidate
/// loops so a thread pool can chew on all of a level's tests at once.
struct CandidateTest {
  size_t node_index = 0;
  int rhs = 0;
  AttrSet lhs;
  // Outputs (written by exactly one ParallelFor iteration each).
  bool tested = false;
  double error = 1.0;
};

/// One next-level lattice node whose partition product is still pending.
struct PendingNode {
  AttrSet attrs;
  Pli parent1;  // unused when a cache serves the partition
  Pli parent2;
  AttrSet cplus;
  Pli pli;  // output slot
};

/// The shared walk behind both public entries. `relation` is nullptr for
/// the cache-only (out-of-core) entry, in which case `options.cache` is
/// guaranteed non-null and every partition and row/column count comes from
/// the cache.
Result<std::vector<DiscoveredFd>> DiscoverFdsTaneImpl(
    const Relation* relation, const TaneOptions& options) {
  PliCache* cache = options.cache;
  int nc = relation != nullptr ? relation->num_columns()
                               : cache->num_columns();
  int num_rows = relation != nullptr ? relation->num_rows()
                                     : cache->num_rows();
  FAMTREE_RETURN_NOT_OK(CheckAttrCapacity(nc, "TANE"));
  if (options.max_error < 0 || options.max_error > 1) {
    return Status::Invalid("max_error must be in [0, 1]");
  }
  ThreadPool* pool = options.pool;
  RunContext* ctx = options.context;
  if (cache != nullptr && relation != nullptr &&
      cache->relation_or_null() != relation) {
    return Status::Invalid("PliCache serves a different relation");
  }
  RunContext::BeginRun(ctx, "tane");
  const int64_t total_levels = options.max_lhs_size + 1;
  int64_t levels_done = 0;
  std::vector<DiscoveredFd> out;
  // Per-RHS index over `out` for the key-pruning minimality consult below:
  // scanning the whole output list per emitted FD is quadratic in the
  // output size, which wide schemas (hundreds of key columns emitting
  // nc - 1 FDs each) turn into the dominant cost.
  std::unordered_map<int, std::vector<AttrSet>> lhs_by_rhs;
  auto emit = [&](const AttrSet& lhs, int rhs, double error) {
    out.push_back(DiscoveredFd{lhs, rhs, error});
    lhs_by_rhs[rhs].push_back(lhs);
  };
  const bool exact = options.max_error == 0.0;
  const AttrSet full = AttrSet::Full(nc);

  // The encoded columnar backend is the default substrate: borrowed from
  // the cache when one is attached (it encodes once per relation), built
  // locally otherwise. `encoded == nullptr` is the Value-based oracle walk.
  std::unique_ptr<EncodedRelation> local_encoding;
  const EncodedRelation* encoded = nullptr;
  if (options.use_encoding) {
    if (cache != nullptr) {
      // Null for an out-of-core cache that has not materialized its flat
      // encoding: exact discovery never needs it (the g3-free validity
      // tests below compare partition costs), and the cache-only entry
      // materializes it up front for approximate discovery.
      encoded = cache->encoded_or_null();
    } else {
      local_encoding = std::make_unique<EncodedRelation>(*relation);
      encoded = local_encoding.get();
    }
  }
  if (!exact && encoded == nullptr && relation == nullptr) {
    return Status::Invalid(
        "approximate TANE on an out-of-core cache requires the encoded "
        "columns; call PliCache::EnsureEncoded first");
  }

  // Level 1: one partition per attribute, built (or cache-served) in
  // parallel and assembled into the level map in attribute order.
  std::vector<Pli> singles(nc);
  Status singles_status = ParallelFor(pool, nc, [&](int64_t a) {
    FAMTREE_RETURN_NOT_OK(RunContext::Poll(ctx));
    int attr = static_cast<int>(a);
    if (cache != nullptr) {
      singles[a] = cache->Get(AttrSet::Single(attr), ctx);
      if (singles[a] == nullptr) return PliStopStatus(ctx);
    } else if (encoded != nullptr) {
      singles[a] = std::make_shared<StrippedPartition>(
          StrippedPartition::ForAttribute(*encoded, attr));
    } else {
      singles[a] = std::make_shared<StrippedPartition>(
          StrippedPartition::ForAttribute(*relation, attr));
    }
    return Status::OK();
  });
  if (RunContext::IsStop(singles_status)) {
    RunContext::MarkExhausted(ctx, singles_status, 0, total_levels);
    return out;
  }
  FAMTREE_RETURN_NOT_OK(singles_status);
  Level level;
  for (int a = 0; a < nc; ++a) {
    level.emplace(AttrSet::Single(a), Node{std::move(singles[a]), full});
  }

  // Level 0's C+ is the full set; dependencies {} -> A (constant columns)
  // are reported from level 1 with an empty LHS.
  for (auto& [x, node] : level) {
    int a = x.ToVector()[0];
    // {} -> A holds iff column A is constant; its g3 error is one minus
    // the plurality fraction of the column.
    int largest = std::max(1, node.pli->MaxClassSize());
    double err = num_rows == 0 ? 0.0
                               : 1.0 - static_cast<double>(largest) / num_rows;
    if (err <= options.max_error) {
      emit(AttrSet(), a, err);
      node.cplus.Remove(a);
    }
  }

  // Partitions of the previous level, used by the validity test
  // e(X \ A) == e(X) (exact) / g3 from pi(X \ A) (approximate).
  std::unordered_map<AttrSet, Pli, AttrSetHash> prev_plis;

  // Level `depth` holds attribute sets X with |X| = depth; the FDs tested
  // there have LHS size depth - 1, so the walk runs to max_lhs_size + 1.
  for (int depth = 1; depth <= options.max_lhs_size + 1 && !level.empty();
       ++depth) {
    // One deterministic check-point per lattice level: a limit firing here
    // (or mid-level, below) returns the FDs of the completed levels.
    Status gate = RunContext::Checkpoint(ctx);
    if (RunContext::IsStop(gate)) {
      RunContext::MarkExhausted(ctx, gate, levels_done, total_levels);
      return out;
    }
    FAMTREE_RETURN_NOT_OK(gate);
    // COMPUTE_DEPENDENCIES. The validity tests of a level are mutually
    // independent: each reads only immutable partitions (its node's and the
    // previous level's), so they are flattened into one work list. Their
    // side effects — emitting the FD and shrinking C+ — are replayed
    // serially afterwards in exactly the order the serial walk uses, which
    // keeps the output bit-identical for any thread count.
    std::vector<Node*> nodes;
    nodes.reserve(level.size());
    std::vector<CandidateTest> tests;
    {
      size_t node_index = 0;
      for (auto& [x, node] : level) {
        nodes.push_back(&node);
        for (int a : x.Intersect(node.cplus).ToVector()) {
          AttrSet lhs = x.Without(a);
          // The lhs partition lives in the previous level (empty lhs is
          // the constant-column case handled before the loop).
          if (lhs.empty()) continue;
          tests.push_back(CandidateTest{node_index, a, lhs, false, 1.0});
        }
        ++node_index;
      }
    }
    Status tests_status =
        ParallelFor(pool, static_cast<int64_t>(tests.size()), [&](int64_t t) {
          FAMTREE_RETURN_NOT_OK(RunContext::Poll(ctx));
          CandidateTest& test = tests[t];
          auto prev = prev_plis.find(test.lhs);
          if (prev == prev_plis.end()) return Status::OK();  // lhs pruned
          test.tested = true;
          if (exact) {
            const Pli& node_pli = nodes[test.node_index]->pli;
            test.error = PartitionCost(*prev->second) ==
                                 PartitionCost(*node_pli)
                             ? 0.0
                             : 1.0;
          } else {
            test.error =
                encoded != nullptr
                    ? prev->second->FdError(*encoded,
                                            AttrSet::Single(test.rhs))
                    : prev->second->FdError(*relation,
                                            AttrSet::Single(test.rhs));
          }
          return Status::OK();
        });
    if (RunContext::IsStop(tests_status)) {
      // The interrupted level's tests are discarded whole: `out` holds
      // exactly the completed levels' FDs at any thread count.
      RunContext::MarkExhausted(ctx, tests_status, levels_done, total_levels);
      return out;
    }
    FAMTREE_RETURN_NOT_OK(tests_status);
    for (const CandidateTest& test : tests) {
      if (!test.tested || test.error > options.max_error) continue;
      Node& node = *nodes[test.node_index];
      AttrSet x = test.lhs.With(test.rhs);
      emit(test.lhs, test.rhs, test.error);
      if (static_cast<int>(out.size()) >= options.max_results) {
        RunContext::MarkComplete(ctx, levels_done);
        return out;
      }
      node.cplus.Remove(test.rhs);
      if (exact) {
        node.cplus = node.cplus.Minus(full.Minus(x));
      }
    }
    // PRUNE.
    for (auto it = level.begin(); it != level.end();) {
      const AttrSet& x = it->first;
      Node& node = it->second;
      bool erase = node.cplus.empty();
      if (!erase && exact && node.pli->IsKey() &&
          x.size() <= options.max_lhs_size) {
        for (int a : node.cplus.Minus(x).ToVector()) {
          // Minimality check per TANE: A must be in the intersection of
          // C+(X u {A} \ {B}) over B in X; approximate conservatively by
          // checking no subset of X already determines A.
          bool minimal = true;
          auto prior = lhs_by_rhs.find(a);
          if (prior != lhs_by_rhs.end()) {
            for (const AttrSet& lhs : prior->second) {
              if (x.ContainsAll(lhs)) {
                minimal = false;
                break;
              }
            }
          }
          if (minimal) {
            emit(x, a, 0.0);
          }
        }
        erase = true;
      }
      it = erase ? level.erase(it) : ++it;
    }
    ++levels_done;
    if (depth == options.max_lhs_size + 1) break;
    // Retain this level's partitions for the next level's validity tests.
    prev_plis.clear();
    for (const auto& [attrs, node] : level) {
      prev_plis.emplace(attrs, node.pli);
    }
    // GENERATE next level via prefix join: enumerate the surviving
    // candidate sets serially (cheap bit tricks), then compute the
    // expensive partition products in parallel.
    std::vector<PendingNode> pending;
    std::set<AttrSet> seen;
    for (auto it1 = level.begin(); it1 != level.end(); ++it1) {
      for (auto it2 = std::next(it1); it2 != level.end(); ++it2) {
        AttrSet u = it1->first.Union(it2->first);
        if (u.size() != depth + 1) continue;
        if (!seen.insert(u).second) continue;
        // All depth-size subsets must be alive (Apriori condition).
        bool ok = true;
        AttrSet cplus = it1->second.cplus.Intersect(it2->second.cplus);
        for (int drop : u.ToVector()) {
          AttrSet sub = u.Without(drop);
          auto found = level.find(sub);
          if (found == level.end()) {
            ok = false;
            break;
          }
          cplus = cplus.Intersect(found->second.cplus);
        }
        if (!ok) continue;
        pending.push_back(PendingNode{u, it1->second.pli, it2->second.pli,
                                      cplus, nullptr});
      }
    }
    Status products_status = ParallelFor(
        pool, static_cast<int64_t>(pending.size()), [&](int64_t i) {
          FAMTREE_RETURN_NOT_OK(RunContext::Poll(ctx));
          PendingNode& p = pending[i];
          p.pli = cache != nullptr
                      ? cache->Get(p.attrs, ctx)
                      : std::make_shared<StrippedPartition>(
                            p.parent1->Product(*p.parent2, num_rows));
          if (p.pli == nullptr) return PliStopStatus(ctx);
          return Status::OK();
        });
    if (RunContext::IsStop(products_status)) {
      RunContext::MarkExhausted(ctx, products_status, levels_done,
                                total_levels);
      return out;
    }
    FAMTREE_RETURN_NOT_OK(products_status);
    Level next;
    for (PendingNode& p : pending) {
      next.emplace(p.attrs, Node{std::move(p.pli), p.cplus});
    }
    level = std::move(next);
  }
  RunContext::MarkComplete(ctx, levels_done);
  return out;
}

}  // namespace

Result<std::vector<DiscoveredFd>> DiscoverFdsTane(const Relation& relation,
                                                  const TaneOptions& options) {
  return DiscoverFdsTaneImpl(&relation, options);
}

Result<std::vector<DiscoveredFd>> DiscoverFdsTane(PliCache* cache,
                                                  const TaneOptions& options) {
  if (cache == nullptr) {
    return Status::Invalid("cache-only TANE requires a PliCache");
  }
  TaneOptions opts = options;
  opts.cache = cache;
  // Approximate discovery's g3 tests read flat code arrays; materialize
  // them once up front (charged with shard-spill fallback) so the lattice
  // walk itself never blocks on encoding. Exact discovery stays PLI-only.
  if (opts.max_error > 0.0 && opts.use_encoding && !cache->has_encoded()) {
    FAMTREE_RETURN_NOT_OK(cache->EnsureEncoded(opts.context));
  }
  return DiscoverFdsTaneImpl(cache->relation_or_null(), opts);
}

Result<std::vector<DiscoveredFd>> DiscoverFdsNaive(const Relation& relation,
                                                   const TaneOptions& options) {
  int nc = relation.num_columns();
  FAMTREE_RETURN_NOT_OK(CheckAttrCapacity(nc, "naive FD search"));
  std::vector<DiscoveredFd> out;
  for (int size = 0; size <= options.max_lhs_size; ++size) {
    for (AttrSet lhs : AllSubsetsOfSize(nc, size)) {
      for (int a = 0; a < nc; ++a) {
        if (lhs.Contains(a)) continue;
        // Minimality: skip if a subset of lhs already determines a.
        bool minimal = true;
        for (const DiscoveredFd& fd : out) {
          if (fd.rhs == a && lhs.ContainsAll(fd.lhs)) {
            minimal = false;
            break;
          }
        }
        if (!minimal) continue;
        double err;
        if (lhs.empty()) {
          int largest = 0;
          for (const auto& g : relation.GroupBy(AttrSet::Single(a))) {
            largest = std::max(largest, static_cast<int>(g.size()));
          }
          err = relation.num_rows() == 0
                    ? 0.0
                    : 1.0 - static_cast<double>(largest) /
                                relation.num_rows();
        } else {
          err = StrippedPartition::ForAttributeSet(relation, lhs)
                    .FdError(relation, AttrSet::Single(a));
        }
        if (err <= options.max_error) {
          out.push_back(DiscoveredFd{lhs, a, err});
          if (static_cast<int>(out.size()) >= options.max_results) return out;
        }
      }
    }
  }
  return out;
}

}  // namespace famtree
