#include "discovery/tane.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "relation/partition.h"

namespace famtree {

namespace {

struct Node {
  StrippedPartition pli;
  AttrSet cplus;  // RHS candidates C+(X)
};

using Level = std::map<uint64_t, Node>;

/// e(X) in TANE terms: rows in stripped classes minus class count.
int PartitionCost(const StrippedPartition& p) {
  return p.num_rows_in_classes() - p.num_classes();
}

}  // namespace

Result<std::vector<DiscoveredFd>> DiscoverFdsTane(const Relation& relation,
                                                  const TaneOptions& options) {
  int nc = relation.num_columns();
  if (nc > 63) return Status::Invalid("TANE supports up to 63 attributes");
  if (options.max_error < 0 || options.max_error > 1) {
    return Status::Invalid("max_error must be in [0, 1]");
  }
  std::vector<DiscoveredFd> out;
  const bool exact = options.max_error == 0.0;
  const AttrSet full = AttrSet::Full(nc);

  // Level 1.
  Level level;
  for (int a = 0; a < nc; ++a) {
    Node node;
    node.pli = StrippedPartition::ForAttribute(relation, a);
    node.cplus = full;
    level.emplace(AttrSet::Single(a).mask(), std::move(node));
  }

  // Level 0's C+ is the full set; dependencies {} -> A (constant columns)
  // are reported from level 1 with an empty LHS.
  for (auto& [mask, node] : level) {
    AttrSet x(mask);
    int a = x.ToVector()[0];
    // {} -> A holds iff column A is constant; its g3 error is one minus
    // the plurality fraction of the column.
    int largest = 1;
    for (const auto& cls : node.pli.classes()) {
      largest = std::max(largest, static_cast<int>(cls.size()));
    }
    double err = relation.num_rows() == 0
                     ? 0.0
                     : 1.0 - static_cast<double>(largest) /
                                 relation.num_rows();
    if (err <= options.max_error) {
      out.push_back(DiscoveredFd{AttrSet(), a, err});
      node.cplus.Remove(a);
    }
  }

  // Partitions of the previous level, used by the validity test
  // e(X \ A) == e(X) (exact) / g3 from pi(X \ A) (approximate).
  std::unordered_map<uint64_t, StrippedPartition> prev_plis;

  // Level `depth` holds attribute sets X with |X| = depth; the FDs tested
  // there have LHS size depth - 1, so the walk runs to max_lhs_size + 1.
  for (int depth = 1; depth <= options.max_lhs_size + 1 && !level.empty();
       ++depth) {
    // COMPUTE_DEPENDENCIES.
    for (auto& [mask, node] : level) {
      AttrSet x(mask);
      AttrSet candidates = x.Intersect(node.cplus);
      for (int a : candidates.ToVector()) {
        AttrSet lhs = x.Without(a);
        // The lhs partition lives in the previous level (empty lhs is the
        // constant-column case handled before the loop).
        if (lhs.empty()) continue;
        auto prev = prev_plis.find(lhs.mask());
        if (prev == prev_plis.end()) continue;  // lhs was pruned
        double err;
        if (exact) {
          err = PartitionCost(prev->second) == PartitionCost(node.pli)
                    ? 0.0
                    : 1.0;
        } else {
          err = prev->second.FdError(relation, AttrSet::Single(a));
        }
        bool valid = err <= options.max_error;
        if (valid) {
          out.push_back(DiscoveredFd{lhs, a, err});
          if (static_cast<int>(out.size()) >= options.max_results) {
            return out;
          }
          node.cplus.Remove(a);
          if (exact) {
            node.cplus = node.cplus.Minus(full.Minus(x));
          }
        }
      }
    }
    // PRUNE.
    for (auto it = level.begin(); it != level.end();) {
      AttrSet x(it->first);
      Node& node = it->second;
      bool erase = node.cplus.empty();
      if (!erase && exact && node.pli.IsKey() &&
          x.size() <= options.max_lhs_size) {
        for (int a : node.cplus.Minus(x).ToVector()) {
          // Minimality check per TANE: A must be in the intersection of
          // C+(X u {A} \ {B}) over B in X; approximate conservatively by
          // checking no subset of X already determines A.
          bool minimal = true;
          for (const DiscoveredFd& fd : out) {
            if (fd.rhs == a && x.ContainsAll(fd.lhs)) {
              minimal = false;
              break;
            }
          }
          if (minimal) {
            out.push_back(DiscoveredFd{x, a, 0.0});
          }
        }
        erase = true;
      }
      it = erase ? level.erase(it) : ++it;
    }
    if (depth == options.max_lhs_size + 1) break;
    // Retain this level's partitions for the next level's validity tests.
    prev_plis.clear();
    for (const auto& [mask, node] : level) {
      prev_plis.emplace(mask, node.pli);
    }
    // GENERATE next level via prefix join.
    Level next;
    for (auto it1 = level.begin(); it1 != level.end(); ++it1) {
      for (auto it2 = std::next(it1); it2 != level.end(); ++it2) {
        AttrSet a(it1->first), b(it2->first);
        AttrSet u = a.Union(b);
        if (u.size() != depth + 1) continue;
        if (next.count(u.mask())) continue;
        // All depth-size subsets must be alive (Apriori condition).
        bool ok = true;
        AttrSet cplus = it1->second.cplus.Intersect(it2->second.cplus);
        for (int drop : u.ToVector()) {
          AttrSet sub = u.Without(drop);
          auto found = level.find(sub.mask());
          if (found == level.end()) {
            ok = false;
            break;
          }
          cplus = cplus.Intersect(found->second.cplus);
        }
        if (!ok) continue;
        Node node;
        node.pli = it1->second.pli.Product(it2->second.pli,
                                           relation.num_rows());
        node.cplus = cplus;
        next.emplace(u.mask(), std::move(node));
      }
    }
    level = std::move(next);
  }
  return out;
}

Result<std::vector<DiscoveredFd>> DiscoverFdsNaive(const Relation& relation,
                                                   const TaneOptions& options) {
  int nc = relation.num_columns();
  if (nc > 63) return Status::Invalid("naive FD search supports up to 63 attributes");
  std::vector<DiscoveredFd> out;
  for (int size = 0; size <= options.max_lhs_size; ++size) {
    for (AttrSet lhs : AllSubsetsOfSize(nc, size)) {
      for (int a = 0; a < nc; ++a) {
        if (lhs.Contains(a)) continue;
        // Minimality: skip if a subset of lhs already determines a.
        bool minimal = true;
        for (const DiscoveredFd& fd : out) {
          if (fd.rhs == a && lhs.ContainsAll(fd.lhs)) {
            minimal = false;
            break;
          }
        }
        if (!minimal) continue;
        double err;
        if (lhs.empty()) {
          int largest = 0;
          for (const auto& g : relation.GroupBy(AttrSet::Single(a))) {
            largest = std::max(largest, static_cast<int>(g.size()));
          }
          err = relation.num_rows() == 0
                    ? 0.0
                    : 1.0 - static_cast<double>(largest) /
                                relation.num_rows();
        } else {
          err = StrippedPartition::ForAttributeSet(relation, lhs)
                    .FdError(relation, AttrSet::Single(a));
        }
        if (err <= options.max_error) {
          out.push_back(DiscoveredFd{lhs, a, err});
          if (static_cast<int>(out.size()) >= options.max_results) return out;
        }
      }
    }
  }
  return out;
}

}  // namespace famtree
