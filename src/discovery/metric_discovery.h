#ifndef FAMTREE_DISCOVERY_METRIC_DISCOVERY_H_
#define FAMTREE_DISCOVERY_METRIC_DISCOVERY_H_

#include <vector>

#include "common/status.h"
#include "deps/ffd.h"
#include "deps/mfd.h"
#include "deps/pac.h"
#include "relation/relation.h"

namespace famtree {

class EvidenceCache;
class PliCache;
class RunContext;
class ThreadPool;

// ---------------------------------------------------------------- MFDs

struct MfdDiscoveryOptions {
  /// Report an MFD only when the group diameter is at most this multiple
  /// of the attribute's global pairwise diameter — a loose MFD whose
  /// delta is near the global spread says nothing.
  double max_delta_ratio = 0.25;
  /// LHS size cap.
  int max_lhs_size = 1;
  int max_results = 10000;
  /// Run on the dictionary-encoded columnar backend (the default): groups
  /// come from integer GroupBy and every metric distance is memoized per
  /// code pair. `false` keeps the Value-based oracle; the discovered list
  /// is bit-identical either way.
  bool use_encoding = true;
  /// Optional engine hooks: when `pool` is set the global diameters and the
  /// per-(LHS, attr) group diameters are measured in parallel and merged in
  /// the serial walk's candidate order (bit-identical at any thread count);
  /// `cache` lends its encoding. FFD and PAC instantiation stay serial.
  ThreadPool* pool = nullptr;
  PliCache* cache = nullptr;
  /// Optional run limits (common/run_context.h): the driver check-points
  /// between deterministic units of work and, when a limit fires, returns
  /// the prefix of its results completed so far with RunReport.exhausted
  /// set. Null means unlimited.
  RunContext* context = nullptr;
  /// Measure every candidate from the shared pairwise evidence multiset
  /// (engine/evidence.h): one PLI-pruned kernel build packs an equality
  /// bit per attribute and folds each attribute's per-word distance
  /// maxima, so a candidate's group diameter is a max over the words whose
  /// LHS bits agree — no per-candidate GroupBy or pair scan. Global
  /// diameters come from code-pair histograms. Requires use_encoding;
  /// falls back (identical output) when the word exceeds 64 bits.
  bool use_evidence = true;
  /// Optional shared store for the kernel-built evidence multiset.
  EvidenceCache* evidence = nullptr;
};

struct DiscoveredMfd {
  Mfd mfd;
  /// The measured diameter (the smallest delta for which the MFD holds).
  double delta = 0.0;
};

/// MFD discovery [64]: for each LHS set and each remaining attribute,
/// measures the maximum within-group diameter (verification primitive of
/// S3.1.3) and reports non-vacuous MFDs with delta set to that diameter.
Result<std::vector<DiscoveredMfd>> DiscoverMfds(
    const Relation& relation, const MfdDiscoveryOptions& options = {});

// ---------------------------------------------------------------- FFDs

struct FfdDiscoveryOptions {
  /// LHS attribute count cap (single attribute is [109]'s base case).
  int max_lhs_attrs = 1;
  int max_results = 10000;
};

struct DiscoveredFfd {
  Ffd ffd;
  /// Minimum slack mu_EQ(Y) - mu_EQ(X) over all pairs (>= 0 iff holds).
  double min_slack = 0.0;
};

/// FFD mining in the spirit of Wang et al. [109] (TANE-style, pairwise
/// EQUAL checks): given per-attribute resemblance relations, reports the
/// FFDs X ~> A that hold. `resemblances[a]` supplies mu_EQ for attribute
/// a; null entries default to crisp equality.
Result<std::vector<DiscoveredFfd>> DiscoverFfds(
    const Relation& relation, std::vector<ResemblancePtr> resemblances,
    const FfdDiscoveryOptions& options = {});

// ---------------------------------------------------------------- PACs

struct PacTemplate {
  /// LHS/RHS attributes of the rule template (PAC-Man's user input [63]).
  std::vector<int> lhs_attrs;
  std::vector<int> rhs_attrs;
};

struct PacDiscoveryOptions {
  /// Quantile of pairwise LHS distances used for the tolerances Delta.
  double lhs_quantile = 0.25;
  /// Quantile of RHS distances *among LHS-close pairs* used for eps.
  double rhs_quantile = 0.9;
};

struct InstantiatedPac {
  Pac pac;
  /// The confidence measured on the training data (the PAC's delta).
  double measured_confidence = 0.0;
};

/// PAC-Man-style instantiation [63]: fills in the Delta/eps tolerances of
/// a rule template from the training data's distance distributions and
/// sets the confidence to the measured satisfaction rate, so monitoring
/// alarms only when quality degrades below the training baseline.
Result<InstantiatedPac> InstantiatePac(const Relation& training,
                                       const PacTemplate& rule_template,
                                       const PacDiscoveryOptions& options = {});

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_METRIC_DISCOVERY_H_
