#include "discovery/ned_discovery.h"

#include <memory>
#include <utility>
#include <vector>

#include <algorithm>
#include <string>

#include "common/run_context.h"
#include "common/thread_pool.h"
#include "discovery/discovery_util.h"
#include "engine/evidence.h"
#include "engine/evidence_cache.h"
#include "metric/code_distance.h"
#include "metric/metric.h"

namespace famtree {

namespace {

/// ComputePairStats over code-pair distance tables: the distances are the
/// exact doubles the metrics return, so the counts match the Value path
/// bit for bit (and integer counts are order-insensitive anyway).
Ned::PairStats EncodedPairStats(
    const std::vector<Ned::Predicate>& lhs,
    const std::vector<Ned::Predicate>& rhs, int n,
    const std::vector<std::unique_ptr<CodeDistanceTable>>& tables) {
  Ned::PairStats stats;
  auto agrees = [&](const std::vector<Ned::Predicate>& preds, int i, int j) {
    for (const auto& p : preds) {
      if (tables[p.attr]->RowDistance(i, j) > p.threshold) return false;
    }
    return true;
  };
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      ++stats.total_pairs;
      if (!agrees(lhs, i, j)) continue;
      ++stats.lhs_pairs;
      if (agrees(rhs, i, j)) ++stats.satisfying_pairs;
    }
  }
  return stats;
}

}  // namespace

Result<std::vector<DiscoveredNed>> DiscoverNeds(
    const Relation& relation, const Ned::Predicate& target,
    const NedDiscoveryOptions& options) {
  int nc = relation.num_columns();
  if (target.attr < 0 || target.attr >= nc || target.metric == nullptr) {
    return Status::Invalid("invalid target predicate");
  }
  ThreadPool* pool = options.pool;
  std::unique_ptr<EncodedRelation> local_encoding;
  FAMTREE_ASSIGN_OR_RETURN(
      const EncodedRelation* encoded,
      ResolveEncoding(relation, options.use_encoding, options.cache,
                      &local_encoding));
  std::vector<Ned::Predicate> candidates;
  std::vector<MetricPtr> metrics(nc);
  for (int a = 0; a < nc; ++a) {
    if (a == target.attr) continue;
    metrics[a] = DefaultMetricFor(relation.schema().column(a).type);
    for (double th : options.thresholds) {
      candidates.push_back(Ned::Predicate{a, metrics[a], th});
    }
  }
  // The target attribute uses the caller's metric, not the column default.
  metrics[target.attr] = target.metric;
  // Code-pair distance tables, one per attribute, built before the outer
  // ParallelFor (each fill parallelizes internally on the same pool).
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "neds");
  // A stop during the shared precomputation cuts before any candidate was
  // evaluated: the partial result is the empty prefix.
  auto exhausted_early = [&](const Status& stop, int64_t total) {
    RunContext::MarkExhausted(ctx, stop, 0, total);
    return std::vector<DiscoveredNed>{};
  };
  std::vector<std::unique_ptr<CodeDistanceTable>> tables(nc);
  if (encoded != nullptr) {
    for (int a = 0; a < nc; ++a) {
      Status st = RunContext::Poll(ctx);
      if (RunContext::IsStop(st)) return exhausted_early(st, 0);
      tables[a] =
          std::make_unique<CodeDistanceTable>(*encoded, a, metrics[a], pool);
    }
  }
  std::vector<std::vector<Ned::Predicate>> lhs_sets;
  for (const auto& p : candidates) lhs_sets.push_back({p});
  if (options.max_lhs_attrs >= 2) {
    for (size_t i = 0; i < candidates.size(); ++i) {
      for (size_t j = i + 1; j < candidates.size(); ++j) {
        if (candidates[i].attr == candidates[j].attr) continue;
        lhs_sets.push_back({candidates[i], candidates[j]});
      }
    }
  }
  // Per-candidate pair scans are independent; the support / confidence
  // filters replay the candidate order below, so the output is
  // bit-identical at any thread count.
  std::vector<Ned::PairStats> stats(lhs_sets.size());
  int n = relation.num_rows();
  int64_t candidates_done = 0;
  // Evidence path: one kernel build packs every attribute's
  // threshold-bucket index — the target's single threshold included — into
  // a word per pair; each candidate's counts are folds over the
  // deduplicated words. d <= threshold exactly when the bucket index is at
  // or below the threshold's index, so the stats match the pair scans bit
  // for bit. The target metric is caller-supplied, so the path is gated to
  // the built-in metrics whose NaN behavior the non-finite-dictionary
  // guard covers.
  bool used_evidence = false;
  if (encoded != nullptr && options.use_evidence) {
    const std::string& tname = target.metric->name();
    bool supported =
        tname == "edit" || tname == "absdiff" || tname == "discrete";
    std::vector<double> lhs_th = options.thresholds;
    std::sort(lhs_th.begin(), lhs_th.end());
    lhs_th.erase(std::unique(lhs_th.begin(), lhs_th.end()), lhs_th.end());
    std::vector<EvidenceColumn> config;
    std::vector<int> cfg_of(nc, -1);
    for (int a = 0; a < nc && supported; ++a) {
      if (a != target.attr && DictHasNonFiniteDouble(*encoded, a)) {
        supported = false;
        break;
      }
      EvidenceColumn col;
      col.attr = a;
      col.cmp = EvidenceColumn::Cmp::kNone;
      col.metric = metrics[a];
      col.thresholds =
          a == target.attr ? std::vector<double>{target.threshold} : lhs_th;
      col.table = tables[a].get();
      cfg_of[a] = static_cast<int>(config.size());
      config.push_back(std::move(col));
    }
    if (supported && target.attr < nc &&
        DictHasNonFiniteDouble(*encoded, target.attr)) {
      supported = false;
    }
    if (supported && EvidenceWordBits(config) <= 64) {
      EvidenceOptions eopts;
      eopts.pool = pool;
      eopts.context = ctx;
      Result<std::shared_ptr<const EvidenceSet>> set_result =
          GetOrBuildEvidence(options.evidence, *encoded, config, eopts);
      if (!set_result.ok() && RunContext::IsStop(set_result.status())) {
        return exhausted_early(set_result.status(),
                               static_cast<int64_t>(lhs_sets.size()));
      }
      FAMTREE_ASSIGN_OR_RETURN(std::shared_ptr<const EvidenceSet> set,
                               std::move(set_result));
      const std::vector<EvidenceSet::Word>& words = set->words();
      // Per-word target satisfaction (bucket 0 of the single-threshold
      // facet), shared by every candidate.
      std::vector<char> target_ok(words.size());
      for (size_t wi = 0; wi < words.size(); ++wi) {
        target_ok[wi] =
            set->BucketOf(words[wi].bits, cfg_of[target.attr]) == 0 ? 1 : 0;
      }
      std::vector<std::vector<std::pair<int, int>>> lhs_buckets(
          lhs_sets.size());
      for (size_t c = 0; c < lhs_sets.size(); ++c) {
        for (const auto& p : lhs_sets[c]) {
          int ti = static_cast<int>(
              std::find(lhs_th.begin(), lhs_th.end(), p.threshold) -
              lhs_th.begin());
          lhs_buckets[c].push_back({cfg_of[p.attr], ti});
        }
      }
      FAMTREE_ASSIGN_OR_RETURN(
          candidates_done,
          AnytimeParallelFor(
              ctx, pool, static_cast<int64_t>(lhs_sets.size()),
              [&](int64_t c) {
            Ned::PairStats& st = stats[c];
            st.total_pairs = set->total_pairs();
            for (size_t wi = 0; wi < words.size(); ++wi) {
              bool agrees = true;
              for (const auto& [col, ti] : lhs_buckets[c]) {
                if (set->BucketOf(words[wi].bits, col) > ti) {
                  agrees = false;
                  break;
                }
              }
              if (!agrees) continue;
              st.lhs_pairs += words[wi].count;
              if (target_ok[wi]) st.satisfying_pairs += words[wi].count;
            }
            return Status::OK();
              }));
      used_evidence = true;
    }
  }
  if (!used_evidence) {
    FAMTREE_ASSIGN_OR_RETURN(
        candidates_done,
        AnytimeParallelFor(
            ctx, pool, static_cast<int64_t>(lhs_sets.size()), [&](int64_t c) {
              if (encoded != nullptr) {
                stats[c] = EncodedPairStats(lhs_sets[c], {target}, n, tables);
              } else {
                stats[c] =
                    Ned(lhs_sets[c], {target}).ComputePairStats(relation);
              }
              return Status::OK();
            }));
  }
  std::vector<DiscoveredNed> out;
  // The support / confidence filters replay the completed candidate prefix
  // only, so a cut run emits the same NEDs at any thread count.
  for (size_t c = 0; c < static_cast<size_t>(candidates_done); ++c) {
    if (stats[c].lhs_pairs < options.min_support) continue;
    if (stats[c].confidence() < options.min_confidence) continue;
    out.push_back(DiscoveredNed{Ned(std::move(lhs_sets[c]), {target}),
                                stats[c].lhs_pairs, stats[c].confidence()});
  }
  if (candidates_done < static_cast<int64_t>(lhs_sets.size())) {
    RunContext::MarkExhausted(ctx, RunContext::StopStatus(ctx),
                              candidates_done,
                              static_cast<int64_t>(lhs_sets.size()));
  } else {
    RunContext::MarkComplete(ctx, candidates_done);
  }
  return out;
}

}  // namespace famtree
