#include "discovery/ned_discovery.h"

#include <memory>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "discovery/discovery_util.h"
#include "metric/code_distance.h"
#include "metric/metric.h"

namespace famtree {

namespace {

/// ComputePairStats over code-pair distance tables: the distances are the
/// exact doubles the metrics return, so the counts match the Value path
/// bit for bit (and integer counts are order-insensitive anyway).
Ned::PairStats EncodedPairStats(
    const std::vector<Ned::Predicate>& lhs,
    const std::vector<Ned::Predicate>& rhs, int n,
    const std::vector<std::unique_ptr<CodeDistanceTable>>& tables) {
  Ned::PairStats stats;
  auto agrees = [&](const std::vector<Ned::Predicate>& preds, int i, int j) {
    for (const auto& p : preds) {
      if (tables[p.attr]->RowDistance(i, j) > p.threshold) return false;
    }
    return true;
  };
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      ++stats.total_pairs;
      if (!agrees(lhs, i, j)) continue;
      ++stats.lhs_pairs;
      if (agrees(rhs, i, j)) ++stats.satisfying_pairs;
    }
  }
  return stats;
}

}  // namespace

Result<std::vector<DiscoveredNed>> DiscoverNeds(
    const Relation& relation, const Ned::Predicate& target,
    const NedDiscoveryOptions& options) {
  int nc = relation.num_columns();
  if (target.attr < 0 || target.attr >= nc || target.metric == nullptr) {
    return Status::Invalid("invalid target predicate");
  }
  ThreadPool* pool = options.pool;
  std::unique_ptr<EncodedRelation> local_encoding;
  FAMTREE_ASSIGN_OR_RETURN(
      const EncodedRelation* encoded,
      ResolveEncoding(relation, options.use_encoding, options.cache,
                      &local_encoding));
  std::vector<Ned::Predicate> candidates;
  std::vector<MetricPtr> metrics(nc);
  for (int a = 0; a < nc; ++a) {
    if (a == target.attr) continue;
    metrics[a] = DefaultMetricFor(relation.schema().column(a).type);
    for (double th : options.thresholds) {
      candidates.push_back(Ned::Predicate{a, metrics[a], th});
    }
  }
  // The target attribute uses the caller's metric, not the column default.
  metrics[target.attr] = target.metric;
  // Code-pair distance tables, one per attribute, built before the outer
  // ParallelFor (each fill parallelizes internally on the same pool).
  std::vector<std::unique_ptr<CodeDistanceTable>> tables(nc);
  if (encoded != nullptr) {
    for (int a = 0; a < nc; ++a) {
      tables[a] =
          std::make_unique<CodeDistanceTable>(*encoded, a, metrics[a], pool);
    }
  }
  std::vector<std::vector<Ned::Predicate>> lhs_sets;
  for (const auto& p : candidates) lhs_sets.push_back({p});
  if (options.max_lhs_attrs >= 2) {
    for (size_t i = 0; i < candidates.size(); ++i) {
      for (size_t j = i + 1; j < candidates.size(); ++j) {
        if (candidates[i].attr == candidates[j].attr) continue;
        lhs_sets.push_back({candidates[i], candidates[j]});
      }
    }
  }
  // Per-candidate pair scans are independent; the support / confidence
  // filters replay the candidate order below, so the output is
  // bit-identical at any thread count.
  std::vector<Ned::PairStats> stats(lhs_sets.size());
  int n = relation.num_rows();
  FAMTREE_RETURN_NOT_OK(ParallelFor(
      pool, static_cast<int64_t>(lhs_sets.size()), [&](int64_t c) {
        if (encoded != nullptr) {
          stats[c] = EncodedPairStats(lhs_sets[c], {target}, n, tables);
        } else {
          stats[c] = Ned(lhs_sets[c], {target}).ComputePairStats(relation);
        }
        return Status::OK();
      }));
  std::vector<DiscoveredNed> out;
  for (size_t c = 0; c < lhs_sets.size(); ++c) {
    if (stats[c].lhs_pairs < options.min_support) continue;
    if (stats[c].confidence() < options.min_confidence) continue;
    out.push_back(DiscoveredNed{Ned(std::move(lhs_sets[c]), {target}),
                                stats[c].lhs_pairs, stats[c].confidence()});
  }
  return out;
}

}  // namespace famtree
