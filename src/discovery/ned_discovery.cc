#include "discovery/ned_discovery.h"

#include "metric/metric.h"

namespace famtree {

Result<std::vector<DiscoveredNed>> DiscoverNeds(
    const Relation& relation, const Ned::Predicate& target,
    const NedDiscoveryOptions& options) {
  int nc = relation.num_columns();
  if (target.attr < 0 || target.attr >= nc || target.metric == nullptr) {
    return Status::Invalid("invalid target predicate");
  }
  std::vector<Ned::Predicate> candidates;
  for (int a = 0; a < nc; ++a) {
    if (a == target.attr) continue;
    MetricPtr metric = DefaultMetricFor(relation.schema().column(a).type);
    for (double th : options.thresholds) {
      candidates.push_back(Ned::Predicate{a, metric, th});
    }
  }
  std::vector<std::vector<Ned::Predicate>> lhs_sets;
  for (const auto& p : candidates) lhs_sets.push_back({p});
  if (options.max_lhs_attrs >= 2) {
    for (size_t i = 0; i < candidates.size(); ++i) {
      for (size_t j = i + 1; j < candidates.size(); ++j) {
        if (candidates[i].attr == candidates[j].attr) continue;
        lhs_sets.push_back({candidates[i], candidates[j]});
      }
    }
  }
  std::vector<DiscoveredNed> out;
  for (auto& lhs : lhs_sets) {
    Ned ned(lhs, {target});
    Ned::PairStats stats = ned.ComputePairStats(relation);
    if (stats.lhs_pairs < options.min_support) continue;
    if (stats.confidence() < options.min_confidence) continue;
    out.push_back(DiscoveredNed{std::move(ned), stats.lhs_pairs,
                                stats.confidence()});
  }
  return out;
}

}  // namespace famtree
