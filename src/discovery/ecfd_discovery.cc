#include "discovery/ecfd_discovery.h"

#include <algorithm>

#include "deps/fd.h"

namespace famtree {

namespace {

std::vector<double> Cutpoints(const Relation& relation, int attr,
                              const std::vector<double>& quantiles) {
  std::vector<double> values;
  for (int r = 0; r < relation.num_rows(); ++r) {
    const Value& v = relation.Get(r, attr);
    if (v.is_numeric()) values.push_back(v.AsNumeric());
  }
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  for (double q : quantiles) {
    if (values.empty()) break;
    out.push_back(values[std::min(values.size() - 1,
                                  static_cast<size_t>(q * values.size()))]);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

Result<std::vector<DiscoveredEcfd>> DiscoverEcfds(
    const Relation& relation, const EcfdDiscoveryOptions& options) {
  int nc = relation.num_columns();
  FAMTREE_RETURN_NOT_OK(CheckAttrCapacity(nc, "eCFD discovery"));
  std::vector<DiscoveredEcfd> out;
  auto is_numeric = [&relation](int a) {
    ValueType t = relation.schema().column(a).type;
    return t == ValueType::kInt || t == ValueType::kDouble;
  };
  for (int size = 2; size <= options.max_lhs_size; ++size) {
    for (AttrSet lhs : AllSubsetsOfSize(nc, size)) {
      for (int a = 0; a < nc; ++a) {
        if (lhs.Contains(a)) continue;
        Fd fd(lhs, AttrSet::Single(a));
        if (fd.Holds(relation)) continue;  // the plain FD subsumes
        for (int c : lhs.ToVector()) {
          if (!is_numeric(c)) continue;
          for (double cut : Cutpoints(relation, c, options.cut_quantiles)) {
            for (CmpOp op : {CmpOp::kLe, CmpOp::kGe}) {
              std::vector<PatternItem> items;
              for (int b : lhs.ToVector()) {
                items.push_back(b == c ? PatternItem::Const(
                                             b, Value(cut), op)
                                       : PatternItem::Wildcard(b));
              }
              Ecfd candidate(lhs, AttrSet::Single(a),
                             PatternTuple(std::move(items)));
              int support = candidate.Support(relation);
              if (support < options.min_support) continue;
              if (!candidate.Holds(relation)) continue;
              out.push_back(DiscoveredEcfd{std::move(candidate), support});
              if (static_cast<int>(out.size()) >= options.max_results) {
                return out;
              }
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace famtree
