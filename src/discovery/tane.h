#ifndef FAMTREE_DISCOVERY_TANE_H_
#define FAMTREE_DISCOVERY_TANE_H_

#include <vector>

#include "common/attr_set.h"
#include "common/status.h"
#include "relation/relation.h"

namespace famtree {

class PliCache;
class RunContext;
class ThreadPool;

/// One discovered (approximate) functional dependency X -> A.
struct DiscoveredFd {
  AttrSet lhs;
  int rhs = 0;
  /// g3 error of the dependency on the input (0 for exact FDs).
  double error = 0.0;
};

struct TaneOptions {
  /// Maximum g3 error: 0 discovers exact FDs, > 0 discovers AFDs
  /// (Section 2.3.3 — the validity test swaps to g3 <= max_error).
  double max_error = 0.0;
  /// Lattice levels to explore (LHS size cap). The minimal cover can be
  /// exponential in the attribute count (Section 1.4.2), so production
  /// profiling runs bound the level.
  int max_lhs_size = 5;
  /// Safety valve on emitted dependencies.
  int max_results = 100000;
  /// Run on the dictionary-encoded columnar backend (the default): level-1
  /// partitions are counting-sorted from per-column code arrays and the g3
  /// validity tests count plurality RHS codes instead of hashing Values.
  /// `false` keeps the original Value-based path — the differential-test
  /// oracle, and the baseline bench/bench_engine compares against. The
  /// discovered dependency list is bit-identical either way.
  bool use_encoding = true;
  /// Optional engine hooks (see src/engine/): when `pool` is set, each
  /// lattice level's validity tests and partition products are evaluated in
  /// parallel; when `cache` is set, partitions are served from the shared
  /// per-relation PLI store instead of private copies (and the cache's
  /// encoded backend is reused instead of re-encoding). All hooks are
  /// independent and the discovered dependency list is bit-identical in
  /// every combination (asserted by tests/engine_determinism_test.cc).
  ThreadPool* pool = nullptr;
  PliCache* cache = nullptr;
  /// Optional run limits; the driver check-points once per lattice level.
  /// When a limit fires it returns the FDs of the completed levels — a
  /// deterministic prefix of the full output at any thread count — and
  /// records the cutoff in the context's RunReport.
  RunContext* context = nullptr;
};

/// TANE [53], [54]: levelwise lattice search over attribute sets using
/// stripped partitions, with RHS-candidate (C+) and key pruning. Returns
/// minimal non-trivial dependencies X -> A.
Result<std::vector<DiscoveredFd>> DiscoverFdsTane(const Relation& relation,
                                                  const TaneOptions& options);

/// Cache-only entry: runs TANE against whatever backend `cache` serves,
/// including the out-of-core ShardedEncodedRelation backend that has no
/// materialized Relation at all. Exact discovery (max_error == 0) is
/// PLI-only — partitions stream out of spill-merged runs and no flat code
/// arrays are ever materialized. Approximate discovery needs the encoded
/// columns for its g3 tests, so it materializes them first
/// (PliCache::EnsureEncoded, charged against the run's budget with
/// shard-spill fallback). `options.cache` is overwritten with `cache`;
/// in-memory caches produce output bit-identical to the Relation entry.
Result<std::vector<DiscoveredFd>> DiscoverFdsTane(PliCache* cache,
                                                  const TaneOptions& options);

/// Naive pairwise baseline used by the PLI ablation bench: checks every
/// candidate LHS by grouping rows per candidate instead of partition
/// products. Semantics match DiscoverFdsTane on exact FDs.
Result<std::vector<DiscoveredFd>> DiscoverFdsNaive(const Relation& relation,
                                                   const TaneOptions& options);

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_TANE_H_
