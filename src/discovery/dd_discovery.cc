#include "discovery/dd_discovery.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/rng.h"
#include "common/run_context.h"
#include "common/thread_pool.h"
#include "discovery/discovery_util.h"
#include "engine/evidence.h"
#include "engine/evidence_cache.h"
#include "metric/code_distance.h"
#include "metric/metric.h"

namespace famtree {

namespace {

MetricPtr MetricForColumn(const Relation& relation, int attr) {
  return DefaultMetricFor(relation.schema().column(attr).type);
}

/// All pairwise distances on one attribute (n <= a few thousand). When a
/// distance table is given the metric runs once per distinct code pair;
/// the returned doubles are bit-identical to the Value-path ones.
std::vector<double> PairwiseDistances(const Relation& relation, int attr,
                                      const Metric& metric,
                                      const CodeDistanceTable* table) {
  std::vector<double> out;
  int n = relation.num_rows();
  out.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double d = table != nullptr
                     ? table->RowDistance(i, j)
                     : metric.Distance(relation.Get(i, attr),
                                       relation.Get(j, attr));
      if (std::isfinite(d)) out.push_back(d);
    }
  }
  return out;
}

std::vector<double> ThresholdsFromDistances(std::vector<double> dists,
                                            const std::vector<double>& quantiles) {
  std::sort(dists.begin(), dists.end());
  std::vector<double> out;
  for (double q : quantiles) {
    if (dists.empty()) break;
    size_t idx = std::min(dists.size() - 1,
                          static_cast<size_t>(q * dists.size()));
    out.push_back(dists[idx]);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// The pairwise distance distribution of one attribute as a code-pair
/// histogram: every unordered row pair falls into one code pair, so the
/// sorted (distance, multiplicity) list is the sorted row-pair distance
/// multiset — quantile picks and the finite max read off it bit-identically
/// in O(k^2) instead of O(n^2) metric evaluations.
void HistogramThresholds(const EncodedRelation& encoded, int a,
                         const CodeDistanceTable& table,
                         const std::vector<double>& quantiles,
                         std::vector<double>* thresholds_out,
                         double* global_max_out) {
  const std::vector<uint32_t>& codes = encoded.codes(a);
  int k = encoded.dict_size(a);
  std::vector<int64_t> count(k, 0);
  for (uint32_t c : codes) ++count[c];
  std::vector<std::pair<double, int64_t>> hist;
  hist.reserve(static_cast<size_t>(k) * (k + 1) / 2);
  int64_t total = 0;
  for (int c1 = 0; c1 < k; ++c1) {
    int64_t diag = count[c1] * (count[c1] - 1) / 2;
    if (diag > 0) {
      double d = table.Distance(c1, c1);
      if (std::isfinite(d)) {
        hist.push_back({d, diag});
        total += diag;
      }
    }
    for (int c2 = c1 + 1; c2 < k; ++c2) {
      int64_t mult = count[c1] * count[c2];
      double d = table.Distance(c1, c2);
      if (std::isfinite(d)) {
        hist.push_back({d, mult});
        total += mult;
      }
    }
  }
  std::sort(hist.begin(), hist.end(),
            [](const std::pair<double, int64_t>& x,
               const std::pair<double, int64_t>& y) {
              return x.first < y.first;
            });
  *global_max_out = 0.0;
  if (!hist.empty()) {
    *global_max_out = std::max(0.0, hist.back().first);
  }
  std::vector<double> picked;
  for (double q : quantiles) {
    if (total == 0) break;
    int64_t idx = std::min(
        total - 1, static_cast<int64_t>(q * static_cast<double>(total)));
    int64_t cum = 0;
    for (const auto& [d, mult] : hist) {
      cum += mult;
      if (idx < cum) {
        picked.push_back(d);
        break;
      }
    }
  }
  std::sort(picked.begin(), picked.end());
  picked.erase(std::unique(picked.begin(), picked.end()), picked.end());
  *thresholds_out = std::move(picked);
}

}  // namespace

std::vector<double> DetermineThresholds(const Relation& relation, int attr,
                                        const std::vector<double>& quantiles) {
  MetricPtr metric = MetricForColumn(relation, attr);
  return ThresholdsFromDistances(
      PairwiseDistances(relation, attr, *metric, nullptr), quantiles);
}

Result<std::vector<DiscoveredDd>> DiscoverDds(
    const Relation& input, const DdDiscoveryOptions& options) {
  Relation sampled;
  const Relation* source = &input;
  if (options.sample_rows > 0 && input.num_rows() > options.sample_rows) {
    Rng rng(options.seed);
    sampled = input.Select(
        rng.SampleWithoutReplacement(input.num_rows(), options.sample_rows));
    source = &sampled;
  }
  const Relation& relation = *source;
  int nc = relation.num_columns();
  FAMTREE_RETURN_NOT_OK(CheckAttrCapacity(nc, "DD discovery"));
  int n = relation.num_rows();
  if (n > 3000) {
    return Status::Invalid(
        "DD discovery is pairwise; set sample_rows to bound the input");
  }
  if (options.max_lhs_attrs < 1 || options.max_lhs_attrs > 2) {
    return Status::Invalid("max_lhs_attrs must be 1 or 2");
  }
  ThreadPool* pool = options.pool;
  // A sampled run re-materializes the input, so the cache's encoding (keyed
  // to the original relation) cannot be borrowed.
  std::unique_ptr<EncodedRelation> local_encoding;
  FAMTREE_ASSIGN_OR_RETURN(
      const EncodedRelation* encoded,
      ResolveEncoding(relation, options.use_encoding,
                      source == &input ? options.cache : nullptr,
                      &local_encoding));
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "dds");
  // A stop during the shared precomputation (distance tables, thresholds,
  // evidence) cuts before any candidate was evaluated: the partial result
  // is the empty prefix.
  auto exhausted_early = [&](const Status& stop, int64_t total) {
    RunContext::MarkExhausted(ctx, stop, 0, total);
    return std::vector<DiscoveredDd>{};
  };
  std::vector<MetricPtr> metrics(nc);
  for (int a = 0; a < nc; ++a) metrics[a] = MetricForColumn(relation, a);
  // Code-pair distance tables, one per attribute. Built before any outer
  // ParallelFor (each fill parallelizes internally on the same pool).
  std::vector<std::unique_ptr<CodeDistanceTable>> tables(nc);
  if (encoded != nullptr) {
    for (int a = 0; a < nc; ++a) {
      Status st = RunContext::Poll(ctx);
      if (RunContext::IsStop(st)) return exhausted_early(st, 0);
      tables[a] =
          std::make_unique<CodeDistanceTable>(*encoded, a, metrics[a], pool);
    }
  }
  // Per-attribute threshold candidates and global max pairwise distance
  // (the vacuity bound): code-pair histograms on the encoded path, one
  // O(n^2) scan per attribute on the oracle path — same sorted multiset,
  // same picks.
  std::vector<std::vector<double>> thresholds(nc);
  std::vector<double> global_max(nc, 0.0);
  Status threshold_status = ParallelFor(pool, nc, [&](int64_t a) {
    FAMTREE_RETURN_NOT_OK(RunContext::Poll(ctx));
    if (encoded != nullptr) {
      HistogramThresholds(*encoded, static_cast<int>(a), *tables[a],
                          options.threshold_quantiles, &thresholds[a],
                          &global_max[a]);
      return Status::OK();
    }
    std::vector<double> dists =
        PairwiseDistances(relation, static_cast<int>(a), *metrics[a],
                          tables[a].get());
    for (double d : dists) global_max[a] = std::max(global_max[a], d);
    thresholds[a] =
        ThresholdsFromDistances(std::move(dists), options.threshold_quantiles);
    return Status::OK();
  });
  if (RunContext::IsStop(threshold_status)) {
    return exhausted_early(threshold_status, 0);
  }
  FAMTREE_RETURN_NOT_OK(threshold_status);

  // Candidate LHS: one or two attributes, each with one threshold.
  std::vector<std::vector<DifferentialFunction>> lhs_candidates;
  for (int a = 0; a < nc; ++a) {
    for (double t : thresholds[a]) {
      lhs_candidates.push_back(
          {DifferentialFunction(a, metrics[a], DistRange::AtMost(t))});
    }
  }
  if (options.max_lhs_attrs >= 2) {
    size_t singles = lhs_candidates.size();
    for (size_t i = 0; i < singles; ++i) {
      for (size_t j = i + 1; j < singles; ++j) {
        if (lhs_candidates[i][0].attr == lhs_candidates[j][0].attr) continue;
        lhs_candidates.push_back(
            {lhs_candidates[i][0], lhs_candidates[j][0]});
      }
    }
  }

  // Each candidate's pair scan is independent: one pass over all row pairs
  // accumulates the LHS support and, for every RHS attribute, the running
  // max distance (max and the all-finite flag are order-insensitive). The
  // support / vacuity / subsumption / max_results filters replay serially
  // below in candidate order, so the output is bit-identical at any thread
  // count.
  struct CandidateStats {
    int64_t support = 0;
    std::vector<double> bound;
    std::vector<char> finite;
  };
  std::vector<CandidateStats> stats(lhs_candidates.size());
  // Evidence path: one kernel build packs every attribute's bucket index
  // (against its candidate threshold list) into a word per pair and tracks
  // per-word distance maxima; each candidate then folds over the
  // deduplicated words instead of all row pairs. d <= thresholds[a][ti]
  // exactly when the bucket index is <= ti, and max/or folds over word
  // groups equal the pairwise folds, so the stats are bit-identical.
  bool used_evidence = false;
  int64_t candidates_done = 0;
  if (encoded != nullptr && options.use_evidence) {
    std::vector<EvidenceColumn> config(nc);
    for (int a = 0; a < nc; ++a) {
      config[a].attr = a;
      config[a].cmp = EvidenceColumn::Cmp::kNone;
      config[a].metric = metrics[a];
      config[a].thresholds = thresholds[a];
      config[a].track_max = true;
      config[a].table = tables[a].get();
    }
    if (EvidenceWordBits(config) <= 64) {
      EvidenceOptions eopts;
      eopts.pool = pool;
      eopts.context = ctx;
      Result<std::shared_ptr<const EvidenceSet>> set_result =
          GetOrBuildEvidence(options.evidence, *encoded, config, eopts);
      if (!set_result.ok() && RunContext::IsStop(set_result.status())) {
        return exhausted_early(
            set_result.status(),
            static_cast<int64_t>(lhs_candidates.size()));
      }
      FAMTREE_ASSIGN_OR_RETURN(std::shared_ptr<const EvidenceSet> set,
                               std::move(set_result));
      // Each LHS function's threshold as its index in the attribute's
      // sorted list (the exact doubles the config was built from).
      std::vector<std::vector<std::pair<int, int>>> lhs_buckets(
          lhs_candidates.size());
      for (size_t c = 0; c < lhs_candidates.size(); ++c) {
        for (const auto& fn : lhs_candidates[c]) {
          const std::vector<double>& th = thresholds[fn.attr];
          int ti = static_cast<int>(
              std::find(th.begin(), th.end(), fn.range.max) - th.begin());
          lhs_buckets[c].push_back({fn.attr, ti});
        }
      }
      const std::vector<EvidenceSet::Word>& words = set->words();
      FAMTREE_ASSIGN_OR_RETURN(
          candidates_done,
          AnytimeParallelFor(
              ctx, pool, static_cast<int64_t>(lhs_candidates.size()),
              [&](int64_t c) {
            CandidateStats& st = stats[c];
            st.bound.assign(nc, 0.0);
            st.finite.assign(nc, 1);
            for (size_t wi = 0; wi < words.size(); ++wi) {
              bool ok = true;
              for (const auto& [a, ti] : lhs_buckets[c]) {
                if (set->BucketOf(words[wi].bits, a) > ti) {
                  ok = false;
                  break;
                }
              }
              if (!ok) continue;
              st.support += words[wi].count;
              for (int b = 0; b < nc; ++b) {
                const EvidenceSet::Aggregate& agg = set->agg(wi, b);
                if (agg.saw_nonfinite) st.finite[b] = 0;
                st.bound[b] = std::max(st.bound[b], agg.max_finite);
              }
            }
            return Status::OK();
              }));
      used_evidence = true;
    }
  }
  if (!used_evidence) {
  FAMTREE_ASSIGN_OR_RETURN(
      candidates_done,
      AnytimeParallelFor(
          ctx, pool, static_cast<int64_t>(lhs_candidates.size()),
          [&](int64_t c) {
        const auto& lhs = lhs_candidates[c];
        CandidateStats& st = stats[c];
        st.bound.assign(nc, 0.0);
        st.finite.assign(nc, 1);
        for (int i = 0; i + 1 < n; ++i) {
          for (int j = i + 1; j < n; ++j) {
            bool ok = true;
            for (const auto& fn : lhs) {
              double d = encoded != nullptr
                             ? tables[fn.attr]->RowDistance(i, j)
                             : fn.DistanceBetween(relation, i, j);
              if (!fn.range.Contains(d)) {
                ok = false;
                break;
              }
            }
            if (!ok) continue;
            ++st.support;
            for (int b = 0; b < nc; ++b) {
              if (!st.finite[b]) continue;
              double d = encoded != nullptr
                             ? tables[b]->RowDistance(i, j)
                             : metrics[b]->Distance(relation.Get(i, b),
                                                    relation.Get(j, b));
              if (!std::isfinite(d)) {
                st.finite[b] = 0;
              } else {
                st.bound[b] = std::max(st.bound[b], d);
              }
            }
          }
        }
        return Status::OK();
          }));
  }

  std::vector<DiscoveredDd> out;
  // The support / vacuity / subsumption filters replay the completed
  // candidate prefix only — subsumption checks earlier candidates alone, so
  // the prefix output matches the full run's first candidates_done entries.
  for (size_t c = 0; c < static_cast<size_t>(candidates_done); ++c) {
    const auto& lhs = lhs_candidates[c];
    const CandidateStats& st = stats[c];
    if (st.support < options.min_support) continue;
    AttrSet lhs_attrs;
    for (const auto& fn : lhs) lhs_attrs.Add(fn.attr);
    for (int b = 0; b < nc; ++b) {
      if (lhs_attrs.Contains(b)) continue;
      if (!st.finite[b]) continue;
      double bound = st.bound[b];
      if (bound >= global_max[b]) continue;  // vacuous rule
      Dd dd(lhs, {DifferentialFunction(b, metrics[b],
                                       DistRange::AtMost(bound))});
      // Subsumption: drop if an already-reported DD on the same attribute
      // sets has looser-or-equal LHS thresholds and tighter-or-equal RHS.
      bool subsumed = false;
      for (const DiscoveredDd& prev : out) {
        if (prev.dd.rhs()[0].attr != b) continue;
        if (prev.dd.lhs().size() != lhs.size()) continue;
        bool same_attrs = true, looser_lhs = true;
        for (size_t k = 0; k < lhs.size(); ++k) {
          if (prev.dd.lhs()[k].attr != lhs[k].attr) {
            same_attrs = false;
            break;
          }
          if (prev.dd.lhs()[k].range.max < lhs[k].range.max) {
            looser_lhs = false;
          }
        }
        if (same_attrs && looser_lhs &&
            prev.dd.rhs()[0].range.max <= bound) {
          subsumed = true;
          break;
        }
      }
      if (subsumed) continue;
      out.push_back(DiscoveredDd{std::move(dd), st.support});
      if (static_cast<int>(out.size()) >= options.max_results) {
        RunContext::MarkComplete(ctx, static_cast<int64_t>(c) + 1);
        return out;
      }
    }
  }
  if (candidates_done < static_cast<int64_t>(lhs_candidates.size())) {
    RunContext::MarkExhausted(ctx, RunContext::StopStatus(ctx),
                              candidates_done,
                              static_cast<int64_t>(lhs_candidates.size()));
  } else {
    RunContext::MarkComplete(ctx, candidates_done);
  }
  return out;
}

}  // namespace famtree
