#include "discovery/dd_discovery.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "metric/metric.h"

namespace famtree {

namespace {

MetricPtr MetricForColumn(const Relation& relation, int attr) {
  return DefaultMetricFor(relation.schema().column(attr).type);
}

/// All pairwise distances on one attribute (n <= a few thousand).
std::vector<double> PairwiseDistances(const Relation& relation, int attr,
                                      const Metric& metric) {
  std::vector<double> out;
  int n = relation.num_rows();
  out.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double d = metric.Distance(relation.Get(i, attr), relation.Get(j, attr));
      if (std::isfinite(d)) out.push_back(d);
    }
  }
  return out;
}

}  // namespace

std::vector<double> DetermineThresholds(const Relation& relation, int attr,
                                        const std::vector<double>& quantiles) {
  MetricPtr metric = MetricForColumn(relation, attr);
  std::vector<double> dists = PairwiseDistances(relation, attr, *metric);
  std::sort(dists.begin(), dists.end());
  std::vector<double> out;
  for (double q : quantiles) {
    if (dists.empty()) break;
    size_t idx = std::min(dists.size() - 1,
                          static_cast<size_t>(q * dists.size()));
    out.push_back(dists[idx]);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<std::vector<DiscoveredDd>> DiscoverDds(
    const Relation& input, const DdDiscoveryOptions& options) {
  Relation sampled;
  const Relation* source = &input;
  if (options.sample_rows > 0 && input.num_rows() > options.sample_rows) {
    Rng rng(options.seed);
    sampled = input.Select(
        rng.SampleWithoutReplacement(input.num_rows(), options.sample_rows));
    source = &sampled;
  }
  const Relation& relation = *source;
  int nc = relation.num_columns();
  int n = relation.num_rows();
  if (n > 3000) {
    return Status::Invalid(
        "DD discovery is pairwise; set sample_rows to bound the input");
  }
  if (options.max_lhs_attrs < 1 || options.max_lhs_attrs > 2) {
    return Status::Invalid("max_lhs_attrs must be 1 or 2");
  }
  std::vector<MetricPtr> metrics(nc);
  std::vector<std::vector<double>> thresholds(nc);
  for (int a = 0; a < nc; ++a) {
    metrics[a] = MetricForColumn(relation, a);
    thresholds[a] =
        DetermineThresholds(relation, a, options.threshold_quantiles);
  }
  // Global per-attribute max pairwise distance (vacuity bound).
  std::vector<double> global_max(nc, 0.0);
  for (int a = 0; a < nc; ++a) {
    for (double d : PairwiseDistances(relation, a, *metrics[a])) {
      global_max[a] = std::max(global_max[a], d);
    }
  }

  std::vector<DiscoveredDd> out;
  // Candidate LHS: one or two attributes, each with one threshold.
  std::vector<std::vector<DifferentialFunction>> lhs_candidates;
  for (int a = 0; a < nc; ++a) {
    for (double t : thresholds[a]) {
      lhs_candidates.push_back(
          {DifferentialFunction(a, metrics[a], DistRange::AtMost(t))});
    }
  }
  if (options.max_lhs_attrs >= 2) {
    size_t singles = lhs_candidates.size();
    for (size_t i = 0; i < singles; ++i) {
      for (size_t j = i + 1; j < singles; ++j) {
        if (lhs_candidates[i][0].attr == lhs_candidates[j][0].attr) continue;
        lhs_candidates.push_back(
            {lhs_candidates[i][0], lhs_candidates[j][0]});
      }
    }
  }

  for (const auto& lhs : lhs_candidates) {
    // Pairs satisfying the LHS.
    std::vector<std::pair<int, int>> pairs;
    for (int i = 0; i + 1 < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (AllSatisfied(lhs, relation, i, j)) pairs.push_back({i, j});
      }
    }
    if (static_cast<int>(pairs.size()) < options.min_support) continue;
    AttrSet lhs_attrs;
    for (const auto& fn : lhs) lhs_attrs.Add(fn.attr);
    for (int b = 0; b < nc; ++b) {
      if (lhs_attrs.Contains(b)) continue;
      // Tightest RHS bound over LHS-compatible pairs.
      double bound = 0.0;
      bool finite = true;
      for (const auto& [i, j] : pairs) {
        double d =
            metrics[b]->Distance(relation.Get(i, b), relation.Get(j, b));
        if (!std::isfinite(d)) {
          finite = false;
          break;
        }
        bound = std::max(bound, d);
      }
      if (!finite) continue;
      if (bound >= global_max[b]) continue;  // vacuous rule
      Dd dd(lhs, {DifferentialFunction(b, metrics[b],
                                       DistRange::AtMost(bound))});
      // Subsumption: drop if an already-reported DD on the same attribute
      // sets has looser-or-equal LHS thresholds and tighter-or-equal RHS.
      bool subsumed = false;
      for (const DiscoveredDd& prev : out) {
        if (prev.dd.rhs()[0].attr != b) continue;
        if (prev.dd.lhs().size() != lhs.size()) continue;
        bool same_attrs = true, looser_lhs = true;
        for (size_t k = 0; k < lhs.size(); ++k) {
          if (prev.dd.lhs()[k].attr != lhs[k].attr) {
            same_attrs = false;
            break;
          }
          if (prev.dd.lhs()[k].range.max < lhs[k].range.max) {
            looser_lhs = false;
          }
        }
        if (same_attrs && looser_lhs &&
            prev.dd.rhs()[0].range.max <= bound) {
          subsumed = true;
          break;
        }
      }
      if (subsumed) continue;
      out.push_back(
          DiscoveredDd{std::move(dd), static_cast<int64_t>(pairs.size())});
      if (static_cast<int>(out.size()) >= options.max_results) return out;
    }
  }
  return out;
}

}  // namespace famtree
