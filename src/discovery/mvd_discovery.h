#ifndef FAMTREE_DISCOVERY_MVD_DISCOVERY_H_
#define FAMTREE_DISCOVERY_MVD_DISCOVERY_H_

#include <vector>

#include "common/attr_set.h"
#include "common/status.h"
#include "relation/relation.h"

namespace famtree {

class PliCache;
class RunContext;
class ThreadPool;

struct MvdDiscoveryOptions {
  /// LHS size cap for the hypothesis-space walk.
  int max_lhs_size = 2;
  /// AMVD tolerance: maximum spurious-tuple ratio (0 = exact MVDs).
  double max_spurious_ratio = 0.0;
  int max_results = 100000;
  /// Run on the dictionary-encoded columnar backend (the default): the
  /// spurious-tuple ratios are counted over dense row keys instead of
  /// quadratic AgreeOn scans. `false` keeps the Value-based oracle; the
  /// discovered list is bit-identical either way.
  bool use_encoding = true;
  /// Optional engine hooks: when `pool` is set the candidate (LHS, RHS)
  /// ratios are computed in parallel and merged in candidate order
  /// (bit-identical at any thread count); `cache` lends its encoding. The
  /// FHD assembly on top of the discovered MVDs stays serial (each greedy
  /// step depends on the previous acceptance).
  ThreadPool* pool = nullptr;
  PliCache* cache = nullptr;
  /// Optional run limits (common/run_context.h): the driver check-points
  /// between deterministic units of work and, when a limit fires, returns
  /// the prefix of its results completed so far with RunReport.exhausted
  /// set. Null means unlimited.
  RunContext* context = nullptr;
};

struct DiscoveredMvd {
  AttrSet lhs;
  AttrSet rhs;
  /// Measured spurious-tuple ratio (0 for exact).
  double spurious_ratio = 0.0;
};

/// Levelwise MVD discovery in the spirit of [82]: walks LHS sets from most
/// general to more specific; for each LHS enumerates candidate RHS blocks
/// (non-trivial, canonical: RHS contains the lowest non-LHS attribute to
/// avoid reporting both X ->> Y and the complementary X ->> Z). With
/// max_spurious_ratio > 0 this discovers AMVDs [59].
Result<std::vector<DiscoveredMvd>> DiscoverMvds(
    const Relation& relation, const MvdDiscoveryOptions& options = {});

struct DiscoveredFhd {
  AttrSet lhs;
  std::vector<AttrSet> blocks;
};

/// FHD discovery (Section 2.6.5, [27]): assembles hierarchical
/// decompositions X : {Y1; ...; Yk} by growing block partitions from the
/// discovered MVDs sharing a LHS, keeping candidates the full product
/// check (Fhd::Holds) confirms. Reports maximal-k FHDs per LHS.
Result<std::vector<DiscoveredFhd>> DiscoverFhds(
    const Relation& relation, const MvdDiscoveryOptions& options = {});

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_MVD_DISCOVERY_H_
