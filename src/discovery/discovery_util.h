#ifndef FAMTREE_DISCOVERY_DISCOVERY_UTIL_H_
#define FAMTREE_DISCOVERY_DISCOVERY_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "engine/pli_cache.h"
#include "relation/encoded_relation.h"
#include "relation/relation.h"

namespace famtree {

/// Resolves the encoded columnar substrate for a miner per the PR-2
/// fast-path convention shared by every ported algorithm: borrowed from the
/// attached PliCache when one is present (it encodes once per relation),
/// built locally when `use_encoding` is set without a cache, and nullptr
/// for the Value-based oracle walk (`use_encoding == false`). `*local`
/// keeps a locally built encoding alive for the caller's scope. Errors when
/// the cache serves a different relation.
inline Result<const EncodedRelation*> ResolveEncoding(
    const Relation& relation, bool use_encoding, PliCache* cache,
    std::unique_ptr<EncodedRelation>* local) {
  if (cache != nullptr && cache->relation_or_null() != &relation) {
    return Status::Invalid("PliCache serves a different relation");
  }
  if (!use_encoding) return static_cast<const EncodedRelation*>(nullptr);
  if (cache != nullptr) return &cache->encoded();
  *local = std::make_unique<EncodedRelation>(relation);
  return static_cast<const EncodedRelation*>(local->get());
}

/// Rank of each dictionary code under Value's total order. `<` is total
/// and consistent with `==`, and distinct codes hold distinct values, so
/// distinct codes get distinct ranks and rank comparisons reproduce Value
/// comparisons exactly (the order-sensitive miners — OD, SD — rely on
/// this).
inline std::vector<uint32_t> CodeRanks(const EncodedRelation& enc, int col) {
  int k = enc.dict_size(col);
  std::vector<uint32_t> by_value(k);
  for (int i = 0; i < k; ++i) by_value[i] = static_cast<uint32_t>(i);
  std::sort(by_value.begin(), by_value.end(), [&](uint32_t x, uint32_t y) {
    return enc.Decode(col, x) < enc.Decode(col, y);
  });
  std::vector<uint32_t> rank(k);
  for (int i = 0; i < k; ++i) rank[by_value[i]] = static_cast<uint32_t>(i);
  return rank;
}

/// True when any dictionary entry of `attr` is a non-finite double. The
/// similarity miners' `d > threshold` tests treat a NaN distance as
/// similar while a threshold-bucket index treats it as beyond every
/// threshold, so the evidence-kernel paths step aside for the (pathological)
/// inputs that can produce one: NaN cells (absdiff of NaN operands) and
/// +/-inf cells (|inf - inf| on a same-code diagonal).
inline bool DictHasNonFiniteDouble(const EncodedRelation& enc, int attr) {
  for (int code = 0; code < enc.dict_size(attr); ++code) {
    const Value& v = enc.Decode(attr, code);
    if (v.type() == ValueType::kDouble && !std::isfinite(v.as_double())) {
      return true;
    }
  }
  return false;
}

/// Counting sort of the rows by a column's rank — stable, so it matches
/// the oracle's std::stable_sort by Value.
inline std::vector<int> SortedRowOrder(const EncodedRelation& enc, int col,
                                       const std::vector<uint32_t>& rank) {
  const std::vector<uint32_t>& codes = enc.codes(col);
  int k = enc.dict_size(col);
  std::vector<int> offset(k + 1, 0);
  for (uint32_t c : codes) ++offset[rank[c] + 1];
  for (int i = 0; i < k; ++i) offset[i + 1] += offset[i];
  std::vector<int> order(codes.size());
  for (size_t row = 0; row < codes.size(); ++row) {
    order[offset[rank[codes[row]]]++] = static_cast<int>(row);
  }
  return order;
}

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_DISCOVERY_UTIL_H_
