#include "discovery/pfd_discovery.h"

#include <map>

#include "deps/pfd.h"

namespace famtree {

Result<std::vector<DiscoveredPfd>> DiscoverPfds(
    const Relation& relation, const PfdDiscoveryOptions& options) {
  int nc = relation.num_columns();
  if (nc > 63) return Status::Invalid("PFD discovery supports up to 63 attributes");
  if (options.min_probability < 0 || options.min_probability > 1) {
    return Status::Invalid("min_probability must be in [0, 1]");
  }
  std::vector<DiscoveredPfd> out;
  for (int size = 1; size <= options.max_lhs_size; ++size) {
    for (AttrSet lhs : AllSubsetsOfSize(nc, size)) {
      for (int a = 0; a < nc; ++a) {
        if (lhs.Contains(a)) continue;
        bool minimal = true;
        for (const DiscoveredPfd& p : out) {
          if (p.rhs == a && lhs.ContainsAll(p.lhs)) {
            minimal = false;
            break;
          }
        }
        if (!minimal) continue;
        double prob = Pfd::Probability(relation, lhs, AttrSet::Single(a));
        if (prob >= options.min_probability) {
          out.push_back(DiscoveredPfd{lhs, a, prob});
          if (static_cast<int>(out.size()) >= options.max_results) {
            return out;
          }
        }
      }
    }
  }
  return out;
}

Result<std::vector<DiscoveredPfd>> DiscoverPfdsMultiSource(
    const std::vector<Relation>& sources,
    const PfdDiscoveryOptions& options) {
  if (sources.empty()) return Status::Invalid("no sources given");
  int nc = sources[0].num_columns();
  for (const Relation& s : sources) {
    if (s.num_columns() != nc) {
      return Status::Invalid("sources must share a schema");
    }
  }
  // Probability of each candidate per source, merged by tuple count.
  std::vector<DiscoveredPfd> out;
  long long total_rows = 0;
  for (const Relation& s : sources) total_rows += s.num_rows();
  if (total_rows == 0) return out;
  for (int size = 1; size <= options.max_lhs_size; ++size) {
    for (AttrSet lhs : AllSubsetsOfSize(nc, size)) {
      for (int a = 0; a < nc; ++a) {
        if (lhs.Contains(a)) continue;
        bool minimal = true;
        for (const DiscoveredPfd& p : out) {
          if (p.rhs == a && lhs.ContainsAll(p.lhs)) {
            minimal = false;
            break;
          }
        }
        if (!minimal) continue;
        double merged = 0.0;
        for (const Relation& s : sources) {
          if (s.num_rows() == 0) continue;
          merged += Pfd::Probability(s, lhs, AttrSet::Single(a)) *
                    s.num_rows() / total_rows;
        }
        if (merged >= options.min_probability) {
          out.push_back(DiscoveredPfd{lhs, a, merged});
          if (static_cast<int>(out.size()) >= options.max_results) {
            return out;
          }
        }
      }
    }
  }
  return out;
}

}  // namespace famtree
