#include "discovery/pfd_discovery.h"

#include <memory>

#include "common/run_context.h"
#include "common/thread_pool.h"
#include "deps/pfd.h"
#include "discovery/discovery_util.h"

namespace famtree {

namespace {

/// One lattice candidate X -> A with its probability slot (written by
/// exactly one ParallelFor iteration).
struct PfdCandidate {
  AttrSet lhs;
  int rhs = 0;
  double probability = 0.0;
};

/// Enumerates one level's candidates in the serial walk's order.
std::vector<PfdCandidate> LevelCandidates(int nc, int size) {
  std::vector<PfdCandidate> candidates;
  for (AttrSet lhs : AllSubsetsOfSize(nc, size)) {
    for (int a = 0; a < nc; ++a) {
      if (lhs.Contains(a)) continue;
      candidates.push_back(PfdCandidate{lhs, a, 0.0});
    }
  }
  return candidates;
}

bool IsMinimal(const std::vector<DiscoveredPfd>& out, AttrSet lhs, int rhs) {
  for (const DiscoveredPfd& p : out) {
    if (p.rhs == rhs && lhs.ContainsAll(p.lhs)) return false;
  }
  return true;
}

}  // namespace

Result<std::vector<DiscoveredPfd>> DiscoverPfds(
    const Relation& relation, const PfdDiscoveryOptions& options) {
  int nc = relation.num_columns();
  FAMTREE_RETURN_NOT_OK(CheckAttrCapacity(nc, "PFD discovery"));
  if (options.min_probability < 0 || options.min_probability > 1) {
    return Status::Invalid("min_probability must be in [0, 1]");
  }
  ThreadPool* pool = options.pool;
  std::unique_ptr<EncodedRelation> local_encoding;
  FAMTREE_ASSIGN_OR_RETURN(
      const EncodedRelation* encoded,
      ResolveEncoding(relation, options.use_encoding, options.cache,
                      &local_encoding));
  auto probability = [&](AttrSet lhs, int a) {
    return encoded != nullptr
               ? Pfd::Probability(*encoded, lhs, AttrSet::Single(a))
               : Pfd::Probability(relation, lhs, AttrSet::Single(a));
  };
  std::vector<DiscoveredPfd> out;
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "pfds");
  const int64_t total_levels = options.max_lhs_size;
  int64_t levels_done = 0;
  for (int size = 1; size <= options.max_lhs_size; ++size) {
    Status gate = RunContext::Checkpoint(ctx);
    if (RunContext::IsStop(gate)) {
      RunContext::MarkExhausted(ctx, gate, levels_done, total_levels);
      return out;
    }
    // An interrupted level is discarded whole (truncated back to
    // level_start) so a cut run always returns the PFDs of its completed
    // levels — the same prefix at any thread count.
    size_t level_start = out.size();
    if (pool == nullptr) {
      // Serial walk: the minimality filter prunes a candidate before its
      // probability is ever computed.
      for (AttrSet lhs : AllSubsetsOfSize(nc, size)) {
        for (int a = 0; a < nc; ++a) {
          if (lhs.Contains(a)) continue;
          Status st = RunContext::Poll(ctx);
          if (RunContext::IsStop(st)) {
            out.resize(level_start);
            RunContext::MarkExhausted(ctx, st, levels_done, total_levels);
            return out;
          }
          if (!IsMinimal(out, lhs, a)) continue;
          double prob = probability(lhs, a);
          if (prob >= options.min_probability) {
            out.push_back(DiscoveredPfd{lhs, a, prob});
            if (static_cast<int>(out.size()) >= options.max_results) {
              RunContext::MarkComplete(ctx, levels_done);
              return out;
            }
          }
        }
      }
    } else {
      // Parallel walk: compute every candidate probability of the level up
      // front (some are wasted on non-minimal candidates), then replay the
      // serial walk's filters in candidate order — bit-identical output at
      // any thread count.
      std::vector<PfdCandidate> candidates = LevelCandidates(nc, size);
      Status level_status = ParallelFor(
          pool, static_cast<int64_t>(candidates.size()), [&](int64_t i) {
            FAMTREE_RETURN_NOT_OK(RunContext::Poll(ctx));
            candidates[i].probability =
                probability(candidates[i].lhs, candidates[i].rhs);
            return Status::OK();
          });
      if (RunContext::IsStop(level_status)) {
        RunContext::MarkExhausted(ctx, level_status, levels_done,
                                  total_levels);
        return out;
      }
      FAMTREE_RETURN_NOT_OK(level_status);
      for (const PfdCandidate& c : candidates) {
        if (!IsMinimal(out, c.lhs, c.rhs)) continue;
        if (c.probability >= options.min_probability) {
          out.push_back(DiscoveredPfd{c.lhs, c.rhs, c.probability});
          if (static_cast<int>(out.size()) >= options.max_results) {
            RunContext::MarkComplete(ctx, levels_done);
            return out;
          }
        }
      }
    }
    ++levels_done;
  }
  RunContext::MarkComplete(ctx, levels_done);
  return out;
}

Result<std::vector<DiscoveredPfd>> DiscoverPfdsMultiSource(
    const std::vector<Relation>& sources,
    const PfdDiscoveryOptions& options) {
  if (sources.empty()) return Status::Invalid("no sources given");
  int nc = sources[0].num_columns();
  for (const Relation& s : sources) {
    if (s.num_columns() != nc) {
      return Status::Invalid("sources must share a schema");
    }
  }
  ThreadPool* pool = options.pool;
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "pfds_multi_source");
  const int64_t total_levels = options.max_lhs_size;
  // The PliCache is keyed to a single relation, so the multi-source merge
  // only uses per-source local encodings.
  std::vector<std::unique_ptr<EncodedRelation>> encodings;
  if (options.use_encoding) {
    encodings.resize(sources.size());
    Status encode_status = ParallelFor(
        pool, static_cast<int64_t>(sources.size()), [&](int64_t i) {
          FAMTREE_RETURN_NOT_OK(RunContext::Poll(ctx));
          encodings[i] = std::make_unique<EncodedRelation>(sources[i]);
          return Status::OK();
        });
    if (RunContext::IsStop(encode_status)) {
      RunContext::MarkExhausted(ctx, encode_status, 0, total_levels);
      return std::vector<DiscoveredPfd>{};
    }
    FAMTREE_RETURN_NOT_OK(encode_status);
  }
  long long total_rows = 0;
  for (const Relation& s : sources) total_rows += s.num_rows();
  std::vector<DiscoveredPfd> out;
  if (total_rows == 0) return out;
  // Tuple-count weighted average across sources, accumulated in source
  // order on both paths.
  auto merged_probability = [&](AttrSet lhs, int a) {
    double merged = 0.0;
    for (size_t s = 0; s < sources.size(); ++s) {
      if (sources[s].num_rows() == 0) continue;
      double prob =
          options.use_encoding
              ? Pfd::Probability(*encodings[s], lhs, AttrSet::Single(a))
              : Pfd::Probability(sources[s], lhs, AttrSet::Single(a));
      merged += prob * sources[s].num_rows() / total_rows;
    }
    return merged;
  };
  int64_t levels_done = 0;
  for (int size = 1; size <= options.max_lhs_size; ++size) {
    Status gate = RunContext::Checkpoint(ctx);
    if (RunContext::IsStop(gate)) {
      RunContext::MarkExhausted(ctx, gate, levels_done, total_levels);
      return out;
    }
    size_t level_start = out.size();
    if (pool == nullptr) {
      for (AttrSet lhs : AllSubsetsOfSize(nc, size)) {
        for (int a = 0; a < nc; ++a) {
          if (lhs.Contains(a)) continue;
          Status st = RunContext::Poll(ctx);
          if (RunContext::IsStop(st)) {
            out.resize(level_start);
            RunContext::MarkExhausted(ctx, st, levels_done, total_levels);
            return out;
          }
          if (!IsMinimal(out, lhs, a)) continue;
          double merged = merged_probability(lhs, a);
          if (merged >= options.min_probability) {
            out.push_back(DiscoveredPfd{lhs, a, merged});
            if (static_cast<int>(out.size()) >= options.max_results) {
              RunContext::MarkComplete(ctx, levels_done);
              return out;
            }
          }
        }
      }
    } else {
      std::vector<PfdCandidate> candidates = LevelCandidates(nc, size);
      Status level_status = ParallelFor(
          pool, static_cast<int64_t>(candidates.size()), [&](int64_t i) {
            FAMTREE_RETURN_NOT_OK(RunContext::Poll(ctx));
            candidates[i].probability =
                merged_probability(candidates[i].lhs, candidates[i].rhs);
            return Status::OK();
          });
      if (RunContext::IsStop(level_status)) {
        RunContext::MarkExhausted(ctx, level_status, levels_done,
                                  total_levels);
        return out;
      }
      FAMTREE_RETURN_NOT_OK(level_status);
      for (const PfdCandidate& c : candidates) {
        if (!IsMinimal(out, c.lhs, c.rhs)) continue;
        if (c.probability >= options.min_probability) {
          out.push_back(DiscoveredPfd{c.lhs, c.rhs, c.probability});
          if (static_cast<int>(out.size()) >= options.max_results) {
            RunContext::MarkComplete(ctx, levels_done);
            return out;
          }
        }
      }
    }
    ++levels_done;
  }
  RunContext::MarkComplete(ctx, levels_done);
  return out;
}

}  // namespace famtree
