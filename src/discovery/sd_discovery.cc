#include "discovery/sd_discovery.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/run_context.h"
#include "common/thread_pool.h"
#include "discovery/discovery_util.h"

namespace famtree {

namespace {

/// Per-row numerics of one column, decoded once per dictionary code (pure,
/// so the parallel fill order cannot affect the result).
Result<std::vector<double>> RowNumerics(const EncodedRelation& enc, int col,
                                        ThreadPool* pool) {
  std::vector<double> per_code(enc.dict_size(col));
  FAMTREE_RETURN_NOT_OK(
      ParallelFor(pool, static_cast<int64_t>(per_code.size()), [&](int64_t c) {
        per_code[c] = enc.Decode(col, static_cast<uint32_t>(c)).AsNumeric();
        return Status::OK();
      }));
  const std::vector<uint32_t>& codes = enc.codes(col);
  std::vector<double> out(codes.size());
  for (size_t row = 0; row < codes.size(); ++row) {
    out[row] = per_code[codes[row]];
  }
  return out;
}

/// Sd::Confidence with the sort and the numerics precomputed — the same
/// O(n^2) DP in the same order, so the result is bit-identical.
double ConfidenceFromSorted(const std::vector<int>& order,
                            const std::vector<double>& target_num,
                            const Interval& gap) {
  int n = static_cast<int>(order.size());
  if (n <= 1) return 1.0;
  std::vector<int> best(n, 1);
  int longest = 1;
  for (int i = 1; i < n; ++i) {
    double yi = target_num[order[i]];
    for (int j = 0; j < i; ++j) {
      if (gap.Contains(yi - target_num[order[j]])) {
        best[i] = std::max(best[i], best[j] + 1);
      }
    }
    longest = std::max(longest, best[i]);
  }
  return static_cast<double>(longest) / n;
}

}  // namespace

Result<DiscoveredSd> DiscoverSd(const Relation& relation, int order_attr,
                                int target_attr,
                                const SdDiscoveryOptions& options) {
  int nc = relation.num_columns();
  if (order_attr < 0 || order_attr >= nc || target_attr < 0 ||
      target_attr >= nc) {
    return Status::Invalid("attributes outside the schema");
  }
  if (relation.num_rows() < 2) {
    return Status::Invalid("need at least two rows");
  }
  std::unique_ptr<EncodedRelation> local_encoding;
  FAMTREE_ASSIGN_OR_RETURN(
      const EncodedRelation* encoded,
      ResolveEncoding(relation, options.use_encoding, options.cache,
                      &local_encoding));
  // A single-result driver has no partial prefix to return: a fired limit
  // surfaces as the stop status itself, with the report marked exhausted.
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "sd");
  Status gate = RunContext::Checkpoint(ctx);
  if (RunContext::IsStop(gate)) {
    RunContext::MarkExhausted(ctx, gate, 0, 2);
    return gate;
  }
  int n = relation.num_rows();
  std::vector<int> order;
  std::vector<double> target_num(n);
  if (encoded != nullptr) {
    order = SortedRowOrder(*encoded, order_attr,
                           CodeRanks(*encoded, order_attr));
    FAMTREE_ASSIGN_OR_RETURN(
        target_num, RowNumerics(*encoded, target_attr, options.pool));
  } else {
    order = Sd::SortedOrder(relation, order_attr);
    for (int i = 0; i < n; ++i) {
      target_num[i] = relation.Get(i, target_attr).AsNumeric();
    }
  }
  std::vector<double> gaps;
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    double d = target_num[order[i + 1]] - target_num[order[i]];
    if (std::isfinite(d)) gaps.push_back(d);
  }
  if (gaps.empty()) return Status::NotFound("no numeric gaps to fit");
  std::vector<double> sorted_gaps = gaps;
  std::sort(sorted_gaps.begin(), sorted_gaps.end());
  auto at = [&sorted_gaps](double q) {
    size_t idx = std::min(sorted_gaps.size() - 1,
                          static_cast<size_t>(q * sorted_gaps.size()));
    return sorted_gaps[idx];
  };
  Interval g = Interval::Between(at(options.lo_quantile),
                                 at(options.hi_quantile));
  gate = RunContext::Checkpoint(ctx);
  if (RunContext::IsStop(gate)) {
    RunContext::MarkExhausted(ctx, gate, 1, 2);
    return gate;
  }
  Sd sd(order_attr, target_attr, g);
  double conf = ConfidenceFromSorted(order, target_num, g);
  RunContext::MarkComplete(ctx, 2);
  if (conf < options.min_confidence) {
    return Status::NotFound("no SD meets the confidence bound");
  }
  return DiscoveredSd{std::move(sd), conf};
}

Result<DiscoveredCsd> DiscoverCsdTableau(const Relation& relation,
                                         int order_attr, int target_attr,
                                         const CsdDiscoveryOptions& options) {
  int nc = relation.num_columns();
  if (order_attr < 0 || order_attr >= nc || target_attr < 0 ||
      target_attr >= nc) {
    return Status::Invalid("attributes outside the schema");
  }
  int n = relation.num_rows();
  if (n < 2) return Status::Invalid("need at least two rows");

  std::unique_ptr<EncodedRelation> local_encoding;
  FAMTREE_ASSIGN_OR_RETURN(
      const EncodedRelation* encoded,
      ResolveEncoding(relation, options.use_encoding, options.cache,
                      &local_encoding));
  // Single tableau result; limits stop the run, they cannot shrink it.
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "csd_tableau");
  Status gate = RunContext::Checkpoint(ctx);
  if (RunContext::IsStop(gate)) {
    RunContext::MarkExhausted(ctx, gate, 0, 0);
    return gate;
  }
  std::vector<int> order;
  std::vector<double> order_num(n), target_num(n);
  if (encoded != nullptr) {
    order = SortedRowOrder(*encoded, order_attr,
                           CodeRanks(*encoded, order_attr));
    FAMTREE_ASSIGN_OR_RETURN(
        order_num, RowNumerics(*encoded, order_attr, options.pool));
    FAMTREE_ASSIGN_OR_RETURN(
        target_num, RowNumerics(*encoded, target_attr, options.pool));
  } else {
    order = Sd::SortedOrder(relation, order_attr);
    for (int i = 0; i < n; ++i) {
      order_num[i] = relation.Get(i, order_attr).AsNumeric();
      target_num[i] = relation.Get(i, target_attr).AsNumeric();
    }
  }
  // Distinct order-attribute groups along the sorted sequence.
  std::vector<int> group_start;  // position of each group's first row
  std::vector<double> group_value;
  for (int i = 0; i < n; ++i) {
    double x = order_num[order[i]];
    if (!std::isfinite(x)) {
      return Status::Invalid("CSD discovery needs a numeric order attribute");
    }
    if (group_start.empty() || x != group_value.back()) {
      group_start.push_back(i);
      group_value.push_back(x);
    }
  }
  int k = static_cast<int>(group_start.size());
  auto group_end = [&](int g) {  // one past last sorted position of group g
    return g + 1 < k ? group_start[g + 1] : n;
  };

  // Prefix sums of satisfied consecutive gaps: sat[i] = 1 iff the gap
  // between sorted positions i and i+1 lies in the required interval.
  std::vector<int> sat_prefix(n, 0);
  for (int i = 0; i + 1 < n; ++i) {
    double d = target_num[order[i + 1]] - target_num[order[i]];
    int ok = (std::isfinite(d) && options.gap.Contains(d)) ? 1 : 0;
    sat_prefix[i + 1] = sat_prefix[i] + ok;
  }

  // Candidate interval [a, b] over distinct groups: sorted positions
  // [group_start[a], group_end(b)); gaps inside: count = span - 1.
  auto interval_rows = [&](int a, int b) {
    return group_end(b) - group_start[a];
  };
  auto interval_conf = [&](int a, int b) {
    int lo = group_start[a], hi = group_end(b) - 1;  // gap positions lo..hi-1
    int gaps = hi - lo;
    if (gaps <= 0) return 1.0;
    int satisfied = sat_prefix[hi] - sat_prefix[lo];
    return static_cast<double>(satisfied) / gaps;
  };

  // DP over groups: best[g] = (covered rows, chosen intervals) using
  // groups 0..g-1. Quadratic in k — the Fig. 3 polynomial case.
  std::vector<int> best(k + 1, 0);
  std::vector<std::pair<int, int>> choice(k + 1, {-1, -1});  // interval a..b
  std::vector<int> back(k + 1, 0);
  for (int g = 1; g <= k; ++g) {
    Status poll = RunContext::Poll(ctx);
    if (RunContext::IsStop(poll)) {
      RunContext::MarkExhausted(ctx, poll, g - 1, k);
      return poll;
    }
    best[g] = best[g - 1];
    back[g] = g - 1;
    choice[g] = {-1, -1};
    for (int a = 0; a < g; ++a) {
      int b = g - 1;
      if (interval_rows(a, b) < options.min_interval_rows) continue;
      if (interval_conf(a, b) < options.min_confidence) continue;
      int covered = best[a] + interval_rows(a, b);
      if (covered > best[g]) {
        best[g] = covered;
        back[g] = a;
        choice[g] = {a, b};
      }
    }
  }
  // Reconstruct tableau.
  std::vector<Csd::TableauRow> tableau;
  int g = k;
  while (g > 0) {
    if (choice[g].first >= 0) {
      auto [a, b] = choice[g];
      tableau.push_back(Csd::TableauRow{group_value[a], group_value[b],
                                        options.gap});
      g = back[g];
    } else {
      g = back[g];
    }
  }
  std::reverse(tableau.begin(), tableau.end());
  RunContext::MarkComplete(ctx, k);
  if (tableau.empty()) {
    return Status::NotFound("no qualifying condition interval");
  }
  Csd csd(order_attr, target_attr, std::move(tableau));
  return DiscoveredCsd{std::move(csd), best[k]};
}

}  // namespace famtree
