#ifndef FAMTREE_DISCOVERY_OD_DISCOVERY_H_
#define FAMTREE_DISCOVERY_OD_DISCOVERY_H_

#include <vector>

#include "common/status.h"
#include "deps/od.h"
#include "relation/relation.h"

namespace famtree {

struct OdDiscoveryOptions {
  /// Only consider numeric columns (order on strings is rarely meaningful
  /// for the paper's workloads, but can be enabled).
  bool numeric_only = true;
  int max_results = 10000;
};

struct DiscoveredOd {
  Od od;
};

/// Unary OD discovery in the spirit of ORDER [67] / FASTOD [99] restricted
/// to the bidirectional unary case: for every ordered column pair (A, B)
/// reports A^<= -> B^<= (B sorts with A) or A^<= -> B^>= (B sorts against
/// A) when valid. Unary ODs are the workhorse case (index reuse, Table 7's
/// nights/avg-night rule); the validity test sorts once per column pair.
Result<std::vector<DiscoveredOd>> DiscoverUnaryOds(
    const Relation& relation, const OdDiscoveryOptions& options = {});

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_OD_DISCOVERY_H_
