#ifndef FAMTREE_DISCOVERY_OD_DISCOVERY_H_
#define FAMTREE_DISCOVERY_OD_DISCOVERY_H_

#include <vector>

#include "common/status.h"
#include "deps/od.h"
#include "relation/relation.h"

namespace famtree {

class PliCache;
class RunContext;
class ThreadPool;

struct OdDiscoveryOptions {
  /// Only consider numeric columns (order on strings is rarely meaningful
  /// for the paper's workloads, but can be enabled).
  bool numeric_only = true;
  int max_results = 10000;
  /// Run on the dictionary-encoded columnar backend (the default): each
  /// column is counting-sorted once by dictionary-code rank and every
  /// validity scan compares integer ranks instead of Values. `false` keeps
  /// the original sort-per-pair Value path — the differential-test oracle.
  /// The discovered OD list is bit-identical either way.
  bool use_encoding = true;
  /// Optional engine hooks: when `pool` is set the per-column-pair validity
  /// scans run in parallel (results merged in pair order, so the output is
  /// bit-identical at any thread count); `cache` lends its encoding (ODs
  /// sort rather than build partitions).
  ThreadPool* pool = nullptr;
  PliCache* cache = nullptr;
  /// Optional run limits (common/run_context.h): the driver check-points
  /// between deterministic units of work and, when a limit fires, returns
  /// the prefix of its results completed so far with RunReport.exhausted
  /// set. Null means unlimited.
  RunContext* context = nullptr;
};

struct DiscoveredOd {
  Od od;
};

/// Unary OD discovery in the spirit of ORDER [67] / FASTOD [99] restricted
/// to the bidirectional unary case: for every ordered column pair (A, B)
/// reports A^<= -> B^<= (B sorts with A) or A^<= -> B^>= (B sorts against
/// A) when valid. Unary ODs are the workhorse case (index reuse, Table 7's
/// nights/avg-night rule); the validity test sorts once per column pair.
Result<std::vector<DiscoveredOd>> DiscoverUnaryOds(
    const Relation& relation, const OdDiscoveryOptions& options = {});

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_OD_DISCOVERY_H_
