#include "discovery/od_discovery.h"

#include <algorithm>

namespace famtree {

namespace {

/// Checks A^<= -> B^mark over all ordered pairs in O(n log n) by sorting:
/// after sorting by (A, B-adjusted), the OD holds iff B is monotone in the
/// required direction across *every* pair with a_i <= a_j — equivalently,
/// max-so-far (or min-so-far) of B never conflicts, with ties on A
/// requiring equal... see Od::Validate for the exact pairwise semantics;
/// here we exploit that the unary check reduces to a scan.
bool UnaryOdHolds(const Relation& relation, int a, int b, bool increasing) {
  int n = relation.num_rows();
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
    return relation.Get(x, a) < relation.Get(y, a);
  });
  // For pairs with equal A values, A^<= holds in both directions, so B
  // must be equal within an A-tie under either mark direction? No: for a
  // tie (a_i == a_j) both (i,j) and (j,i) satisfy the LHS, forcing
  // b_i <= b_j and b_j <= b_i (increasing), i.e. equality. The scan below
  // tracks (1) the running extreme over *strictly smaller* A values and
  // (2) uniformity of B within each A-tie group.
  size_t i = 0;
  bool has_prev = false;
  Value extreme;  // B value of the previous A-tie group
  while (i < order.size()) {
    size_t j = i;
    while (j < order.size() &&
           relation.Get(order[j], a) == relation.Get(order[i], a)) {
      ++j;
    }
    // Tie group [i, j): B must be uniform.
    for (size_t k = i + 1; k < j; ++k) {
      if (!(relation.Get(order[k], b) == relation.Get(order[i], b))) {
        return false;
      }
    }
    const Value& bv = relation.Get(order[i], b);
    if (has_prev) {
      if (increasing && bv < extreme) return false;
      if (!increasing && extreme < bv) return false;
    }
    extreme = bv;
    has_prev = true;
    i = j;
  }
  return true;
}

}  // namespace

Result<std::vector<DiscoveredOd>> DiscoverUnaryOds(
    const Relation& relation, const OdDiscoveryOptions& options) {
  std::vector<DiscoveredOd> out;
  int nc = relation.num_columns();
  auto eligible = [&](int c) {
    if (!options.numeric_only) return true;
    ValueType t = relation.schema().column(c).type;
    return t == ValueType::kInt || t == ValueType::kDouble;
  };
  for (int a = 0; a < nc; ++a) {
    if (!eligible(a)) continue;
    for (int b = 0; b < nc; ++b) {
      if (a == b || !eligible(b)) continue;
      if (UnaryOdHolds(relation, a, b, /*increasing=*/true)) {
        out.push_back(DiscoveredOd{
            Od({MarkedAttr{a, OrderMark::kLeq}},
               {MarkedAttr{b, OrderMark::kLeq}})});
      } else if (UnaryOdHolds(relation, a, b, /*increasing=*/false)) {
        out.push_back(DiscoveredOd{
            Od({MarkedAttr{a, OrderMark::kLeq}},
               {MarkedAttr{b, OrderMark::kGeq}})});
      }
      if (static_cast<int>(out.size()) >= options.max_results) return out;
    }
  }
  return out;
}

}  // namespace famtree
