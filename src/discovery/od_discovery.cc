#include "discovery/od_discovery.h"

#include <algorithm>
#include <memory>

#include "common/run_context.h"
#include "common/thread_pool.h"
#include "discovery/discovery_util.h"

namespace famtree {

namespace {

/// Checks A^<= -> B^mark over all ordered pairs in O(n log n) by sorting:
/// after sorting by (A, B-adjusted), the OD holds iff B is monotone in the
/// required direction across *every* pair with a_i <= a_j — equivalently,
/// max-so-far (or min-so-far) of B never conflicts, with ties on A
/// requiring equal... see Od::Validate for the exact pairwise semantics;
/// here we exploit that the unary check reduces to a scan.
bool UnaryOdHolds(const Relation& relation, int a, int b, bool increasing) {
  int n = relation.num_rows();
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
    return relation.Get(x, a) < relation.Get(y, a);
  });
  // For pairs with equal A values, A^<= holds in both directions, so B
  // must be equal within an A-tie under either mark direction? No: for a
  // tie (a_i == a_j) both (i,j) and (j,i) satisfy the LHS, forcing
  // b_i <= b_j and b_j <= b_i (increasing), i.e. equality. The scan below
  // tracks (1) the running extreme over *strictly smaller* A values and
  // (2) uniformity of B within each A-tie group.
  size_t i = 0;
  bool has_prev = false;
  Value extreme;  // B value of the previous A-tie group
  while (i < order.size()) {
    size_t j = i;
    while (j < order.size() &&
           relation.Get(order[j], a) == relation.Get(order[i], a)) {
      ++j;
    }
    // Tie group [i, j): B must be uniform.
    for (size_t k = i + 1; k < j; ++k) {
      if (!(relation.Get(order[k], b) == relation.Get(order[i], b))) {
        return false;
      }
    }
    const Value& bv = relation.Get(order[i], b);
    if (has_prev) {
      if (increasing && bv < extreme) return false;
      if (!increasing && extreme < bv) return false;
    }
    extreme = bv;
    has_prev = true;
    i = j;
  }
  return true;
}

struct PairScan {
  bool leq = true;
  bool geq = true;
};

/// Checks A^<= -> B^<= and A^<= -> B^>= in one scan over the rows sorted
/// by A: equal Values share one code, so tie-group uniformity is a code
/// comparison and cross-group monotonicity is a rank comparison. Matches
/// UnaryOdHolds(increasing) / UnaryOdHolds(decreasing) exactly.
PairScan CheckPairEncoded(const EncodedRelation& enc,
                          const std::vector<int>& order, int a, int b,
                          const std::vector<uint32_t>& rank_b) {
  const std::vector<uint32_t>& ca = enc.codes(a);
  const std::vector<uint32_t>& cb = enc.codes(b);
  PairScan r;
  size_t n = order.size();
  size_t i = 0;
  bool has_prev = false;
  uint32_t prev_rank = 0;
  while (i < n && (r.leq || r.geq)) {
    size_t j = i;
    uint32_t group_a = ca[order[i]];
    uint32_t group_b = cb[order[i]];
    for (; j < n && ca[order[j]] == group_a; ++j) {
      if (cb[order[j]] != group_b) return PairScan{false, false};
    }
    uint32_t rb = rank_b[group_b];
    if (has_prev) {
      if (rb < prev_rank) r.leq = false;
      if (rb > prev_rank) r.geq = false;
    }
    prev_rank = rb;
    has_prev = true;
    i = j;
  }
  return r;
}

}  // namespace

Result<std::vector<DiscoveredOd>> DiscoverUnaryOds(
    const Relation& relation, const OdDiscoveryOptions& options) {
  std::vector<DiscoveredOd> out;
  int nc = relation.num_columns();
  FAMTREE_RETURN_NOT_OK(CheckAttrCapacity(nc, "OD discovery"));
  ThreadPool* pool = options.pool;
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "unary_ods");
  auto eligible = [&](int c) {
    if (!options.numeric_only) return true;
    ValueType t = relation.schema().column(c).type;
    return t == ValueType::kInt || t == ValueType::kDouble;
  };
  std::vector<int> cols;
  AttrSet col_set;
  for (int c = 0; c < nc; ++c) {
    if (eligible(c)) {
      cols.push_back(c);
      col_set = col_set.With(c);
    }
  }
  // Like ResolveEncoding, but a locally built encoding covers only the
  // eligible columns — the miner never reads the others, and skipping
  // their dictionary builds is what keeps the encoded serial path ahead of
  // the oracle on wide mixed-type relations.
  if (options.cache != nullptr && options.cache->relation_or_null() != &relation) {
    return Status::Invalid("PliCache serves a different relation");
  }
  std::unique_ptr<EncodedRelation> local_encoding;
  const EncodedRelation* encoded = nullptr;
  if (options.use_encoding) {
    if (options.cache != nullptr) {
      encoded = &options.cache->encoded();
    } else {
      local_encoding = std::make_unique<EncodedRelation>(relation, col_set);
      encoded = local_encoding.get();
    }
  }
  // Encoded precomputation, once per column instead of one sort per
  // ordered pair and direction: the rank table and the sorted row order.
  std::vector<std::vector<uint32_t>> ranks(nc);
  std::vector<std::vector<int>> orders(nc);
  if (encoded != nullptr) {
    Status precompute = ParallelFor(
        pool, static_cast<int64_t>(cols.size()), [&](int64_t i) {
          FAMTREE_RETURN_NOT_OK(RunContext::Poll(ctx));
          int c = cols[i];
          ranks[c] = CodeRanks(*encoded, c);
          orders[c] = SortedRowOrder(*encoded, c, ranks[c]);
          return Status::OK();
        });
    if (RunContext::IsStop(precompute)) {
      // Cut before any candidate was evaluated: the partial result is the
      // empty prefix.
      int64_t total = static_cast<int64_t>(cols.size()) *
                      (static_cast<int64_t>(cols.size()) - 1);
      RunContext::MarkExhausted(ctx, precompute, 0, total);
      return out;
    }
    FAMTREE_RETURN_NOT_OK(precompute);
  }
  // Candidate pairs in the serial walk's order; each slot is written by
  // exactly one ParallelFor iteration and the merge replays pair order, so
  // the output is bit-identical at any thread count.
  struct Candidate {
    int a;
    int b;
    uint8_t result = 0;  // 0 = none, 1 = B^<=, 2 = B^>=
  };
  std::vector<Candidate> candidates;
  for (int a : cols) {
    for (int b : cols) {
      if (a != b) candidates.push_back(Candidate{a, b, 0});
    }
  }
  FAMTREE_ASSIGN_OR_RETURN(
      int64_t done,
      AnytimeParallelFor(
          ctx, pool, static_cast<int64_t>(candidates.size()), [&](int64_t t) {
        Candidate& cd = candidates[t];
        if (encoded != nullptr) {
          PairScan r =
              CheckPairEncoded(*encoded, orders[cd.a], cd.a, cd.b,
                               ranks[cd.b]);
          cd.result = r.leq ? 1 : (r.geq ? 2 : 0);
        } else {
          cd.result =
              UnaryOdHolds(relation, cd.a, cd.b, /*increasing=*/true)
                  ? 1
                  : (UnaryOdHolds(relation, cd.a, cd.b,
                                  /*increasing=*/false)
                         ? 2
                         : 0);
        }
        return Status::OK();
          }));
  // The serial merge replays the completed candidate prefix only, so a cut
  // run emits the same ODs at any thread count.
  for (int64_t t = 0; t < done; ++t) {
    const Candidate& cd = candidates[t];
    if (cd.result == 1) {
      out.push_back(DiscoveredOd{Od({MarkedAttr{cd.a, OrderMark::kLeq}},
                                    {MarkedAttr{cd.b, OrderMark::kLeq}})});
    } else if (cd.result == 2) {
      out.push_back(DiscoveredOd{Od({MarkedAttr{cd.a, OrderMark::kLeq}},
                                    {MarkedAttr{cd.b, OrderMark::kGeq}})});
    }
    if (static_cast<int>(out.size()) >= options.max_results) {
      RunContext::MarkComplete(ctx, t + 1);
      return out;
    }
  }
  if (done < static_cast<int64_t>(candidates.size())) {
    RunContext::MarkExhausted(ctx, RunContext::StopStatus(ctx), done,
                              static_cast<int64_t>(candidates.size()));
  } else {
    RunContext::MarkComplete(ctx, done);
  }
  return out;
}

}  // namespace famtree
