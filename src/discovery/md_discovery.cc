#include "discovery/md_discovery.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/thread_pool.h"
#include "discovery/discovery_util.h"
#include "metric/code_distance.h"
#include "metric/metric.h"

namespace famtree {

namespace {

/// ComputeStats over code-pair distance tables + dense RHS row keys: the
/// LHS distances are the exact doubles the metrics return and key equality
/// is value-tuple equality, so the counts match the Value path exactly.
Md::Stats EncodedStats(
    const std::vector<SimilarityPredicate>& lhs, int n,
    const std::vector<std::unique_ptr<CodeDistanceTable>>& tables,
    const std::vector<uint32_t>& rhs_keys) {
  Md::Stats stats;
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      ++stats.total_pairs;
      bool similar = true;
      for (const auto& p : lhs) {
        if (tables[p.attr]->RowDistance(i, j) > p.threshold) {
          similar = false;
          break;
        }
      }
      if (!similar) continue;
      ++stats.similar_pairs;
      if (rhs_keys[i] == rhs_keys[j]) ++stats.identified_pairs;
    }
  }
  return stats;
}

}  // namespace

Result<std::vector<DiscoveredMd>> DiscoverMds(
    const Relation& relation, AttrSet rhs,
    const MdDiscoveryOptions& options) {
  int nc = relation.num_columns();
  if (!AttrSet::Full(nc).ContainsAll(rhs) || rhs.empty()) {
    return Status::Invalid("MD discovery needs a valid RHS attribute set");
  }
  bool sampling =
      options.sample_rows > 0 && options.sample_rows < relation.num_rows();
  Relation sampled;
  if (sampling) {
    std::vector<int> rows(options.sample_rows);
    for (int i = 0; i < options.sample_rows; ++i) rows[i] = i;
    sampled = relation.Select(rows);
  }
  const Relation& sample = sampling ? sampled : relation;
  ThreadPool* pool = options.pool;
  // A sampled run re-materializes the input, so the cache's encoding (keyed
  // to the original relation) cannot be borrowed.
  std::unique_ptr<EncodedRelation> local_encoding;
  FAMTREE_ASSIGN_OR_RETURN(
      const EncodedRelation* encoded,
      ResolveEncoding(sample, options.use_encoding,
                      sampling ? nullptr : options.cache, &local_encoding));

  // Candidate predicates per non-RHS attribute.
  std::vector<SimilarityPredicate> candidates;
  std::vector<MetricPtr> metrics(nc);
  for (int a = 0; a < nc; ++a) {
    if (rhs.Contains(a)) continue;
    ValueType t = relation.schema().column(a).type;
    const std::vector<double>& ths =
        (t == ValueType::kInt || t == ValueType::kDouble)
            ? options.numeric_thresholds
            : options.string_thresholds;
    metrics[a] = DefaultMetricFor(t);
    for (double th : ths) {
      candidates.push_back(SimilarityPredicate{a, metrics[a], th});
    }
  }
  // Code-pair distance tables for the LHS attributes and dense row keys for
  // the RHS identification check, built before the outer ParallelFor.
  std::vector<std::unique_ptr<CodeDistanceTable>> tables(nc);
  std::vector<uint32_t> rhs_keys;
  if (encoded != nullptr) {
    for (int a = 0; a < nc; ++a) {
      if (rhs.Contains(a)) continue;
      tables[a] =
          std::make_unique<CodeDistanceTable>(*encoded, a, metrics[a], pool);
    }
    encoded->RowKeys(rhs, &rhs_keys);
  }

  // LHS candidate sets: one or two predicates on distinct attributes.
  std::vector<std::vector<SimilarityPredicate>> lhs_sets;
  for (const auto& p : candidates) lhs_sets.push_back({p});
  if (options.max_lhs_attrs >= 2) {
    for (size_t i = 0; i < candidates.size(); ++i) {
      for (size_t j = i + 1; j < candidates.size(); ++j) {
        if (candidates[i].attr == candidates[j].attr) continue;
        lhs_sets.push_back({candidates[i], candidates[j]});
      }
    }
  }

  // Per-candidate pair scans are independent; the support / confidence /
  // RCK-minimality filters replay the candidate order below, so the output
  // is bit-identical at any thread count.
  std::vector<Md::Stats> stats(lhs_sets.size());
  int n = sample.num_rows();
  FAMTREE_RETURN_NOT_OK(ParallelFor(
      pool, static_cast<int64_t>(lhs_sets.size()), [&](int64_t c) {
        if (encoded != nullptr) {
          stats[c] = EncodedStats(lhs_sets[c], n, tables, rhs_keys);
        } else {
          stats[c] = Md(lhs_sets[c], rhs).ComputeStats(sample);
        }
        return Status::OK();
      }));

  std::vector<DiscoveredMd> out;
  for (size_t c = 0; c < lhs_sets.size(); ++c) {
    auto& lhs = lhs_sets[c];
    if (stats[c].support() < options.min_support) continue;
    if (stats[c].confidence() < options.min_confidence) continue;
    // RCK-style minimality: skip when a reported MD's predicates are a
    // subset with looser-or-equal thresholds (the reported one already
    // matches at least the pairs this one matches).
    bool redundant = false;
    for (const DiscoveredMd& prev : out) {
      bool covers = true;
      for (const auto& pp : prev.md.lhs()) {
        bool found = false;
        for (const auto& p : lhs) {
          if (p.attr == pp.attr && pp.threshold >= p.threshold) {
            found = true;
            break;
          }
        }
        if (!found) {
          covers = false;
          break;
        }
      }
      if (covers && prev.md.lhs().size() <= lhs.size()) {
        redundant = true;
        break;
      }
    }
    if (redundant) continue;
    out.push_back(DiscoveredMd{Md(std::move(lhs), rhs), stats[c].support(),
                               stats[c].confidence()});
    if (static_cast<int>(out.size()) >= options.max_results) return out;
  }
  return out;
}

}  // namespace famtree
