#include "discovery/md_discovery.h"

#include <algorithm>

#include "metric/metric.h"

namespace famtree {

Result<std::vector<DiscoveredMd>> DiscoverMds(
    const Relation& relation, AttrSet rhs,
    const MdDiscoveryOptions& options) {
  int nc = relation.num_columns();
  if (!AttrSet::Full(nc).ContainsAll(rhs) || rhs.empty()) {
    return Status::Invalid("MD discovery needs a valid RHS attribute set");
  }
  Relation sample =
      options.sample_rows > 0 && options.sample_rows < relation.num_rows()
          ? [&] {
              std::vector<int> rows(options.sample_rows);
              for (int i = 0; i < options.sample_rows; ++i) rows[i] = i;
              return relation.Select(rows);
            }()
          : relation;

  // Candidate predicates per non-RHS attribute.
  std::vector<SimilarityPredicate> candidates;
  for (int a = 0; a < nc; ++a) {
    if (rhs.Contains(a)) continue;
    ValueType t = relation.schema().column(a).type;
    const std::vector<double>& ths =
        (t == ValueType::kInt || t == ValueType::kDouble)
            ? options.numeric_thresholds
            : options.string_thresholds;
    MetricPtr metric = DefaultMetricFor(t);
    for (double th : ths) {
      candidates.push_back(SimilarityPredicate{a, metric, th});
    }
  }

  // LHS candidate sets: one or two predicates on distinct attributes.
  std::vector<std::vector<SimilarityPredicate>> lhs_sets;
  for (const auto& p : candidates) lhs_sets.push_back({p});
  if (options.max_lhs_attrs >= 2) {
    for (size_t i = 0; i < candidates.size(); ++i) {
      for (size_t j = i + 1; j < candidates.size(); ++j) {
        if (candidates[i].attr == candidates[j].attr) continue;
        lhs_sets.push_back({candidates[i], candidates[j]});
      }
    }
  }

  std::vector<DiscoveredMd> out;
  for (auto& lhs : lhs_sets) {
    Md md(lhs, rhs);
    Md::Stats stats = md.ComputeStats(sample);
    if (stats.support() < options.min_support) continue;
    if (stats.confidence() < options.min_confidence) continue;
    // RCK-style minimality: skip when a reported MD's predicates are a
    // subset with looser-or-equal thresholds (the reported one already
    // matches at least the pairs this one matches).
    bool redundant = false;
    for (const DiscoveredMd& prev : out) {
      bool covers = true;
      for (const auto& pp : prev.md.lhs()) {
        bool found = false;
        for (const auto& p : lhs) {
          if (p.attr == pp.attr && pp.threshold >= p.threshold) {
            found = true;
            break;
          }
        }
        if (!found) {
          covers = false;
          break;
        }
      }
      if (covers && prev.md.lhs().size() <= lhs.size()) {
        redundant = true;
        break;
      }
    }
    if (redundant) continue;
    out.push_back(
        DiscoveredMd{std::move(md), stats.support(), stats.confidence()});
    if (static_cast<int>(out.size()) >= options.max_results) return out;
  }
  return out;
}

}  // namespace famtree
