#include "discovery/md_discovery.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/run_context.h"
#include "common/thread_pool.h"
#include "discovery/discovery_util.h"
#include "engine/evidence.h"
#include "engine/evidence_cache.h"
#include "metric/code_distance.h"
#include "metric/metric.h"

namespace famtree {

namespace {

/// ComputeStats over code-pair distance tables + dense RHS row keys: the
/// LHS distances are the exact doubles the metrics return and key equality
/// is value-tuple equality, so the counts match the Value path exactly.
Md::Stats EncodedStats(
    const std::vector<SimilarityPredicate>& lhs, int n,
    const std::vector<std::unique_ptr<CodeDistanceTable>>& tables,
    const std::vector<uint32_t>& rhs_keys) {
  Md::Stats stats;
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      ++stats.total_pairs;
      bool similar = true;
      for (const auto& p : lhs) {
        if (tables[p.attr]->RowDistance(i, j) > p.threshold) {
          similar = false;
          break;
        }
      }
      if (!similar) continue;
      ++stats.similar_pairs;
      if (rhs_keys[i] == rhs_keys[j]) ++stats.identified_pairs;
    }
  }
  return stats;
}

}  // namespace

Result<std::vector<DiscoveredMd>> DiscoverMds(
    const Relation& relation, AttrSet rhs,
    const MdDiscoveryOptions& options) {
  int nc = relation.num_columns();
  FAMTREE_RETURN_NOT_OK(CheckAttrCapacity(nc, "MD discovery"));
  if (!AttrSet::Full(nc).ContainsAll(rhs) || rhs.empty()) {
    return Status::Invalid("MD discovery needs a valid RHS attribute set");
  }
  bool sampling =
      options.sample_rows > 0 && options.sample_rows < relation.num_rows();
  Relation sampled;
  if (sampling) {
    std::vector<int> rows(options.sample_rows);
    for (int i = 0; i < options.sample_rows; ++i) rows[i] = i;
    sampled = relation.Select(rows);
  }
  const Relation& sample = sampling ? sampled : relation;
  ThreadPool* pool = options.pool;
  // A sampled run re-materializes the input, so the cache's encoding (keyed
  // to the original relation) cannot be borrowed.
  std::unique_ptr<EncodedRelation> local_encoding;
  FAMTREE_ASSIGN_OR_RETURN(
      const EncodedRelation* encoded,
      ResolveEncoding(sample, options.use_encoding,
                      sampling ? nullptr : options.cache, &local_encoding));

  // Candidate predicates per non-RHS attribute.
  std::vector<SimilarityPredicate> candidates;
  std::vector<MetricPtr> metrics(nc);
  for (int a = 0; a < nc; ++a) {
    if (rhs.Contains(a)) continue;
    ValueType t = relation.schema().column(a).type;
    const std::vector<double>& ths =
        (t == ValueType::kInt || t == ValueType::kDouble)
            ? options.numeric_thresholds
            : options.string_thresholds;
    metrics[a] = DefaultMetricFor(t);
    for (double th : ths) {
      candidates.push_back(SimilarityPredicate{a, metrics[a], th});
    }
  }
  // Code-pair distance tables for the LHS attributes and dense row keys for
  // the RHS identification check, built before the outer ParallelFor.
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "mds");
  // A stop during the shared precomputation cuts before any candidate was
  // evaluated: the partial result is the empty prefix.
  auto exhausted_early = [&](const Status& stop, int64_t total) {
    RunContext::MarkExhausted(ctx, stop, 0, total);
    return std::vector<DiscoveredMd>{};
  };
  std::vector<std::unique_ptr<CodeDistanceTable>> tables(nc);
  std::vector<uint32_t> rhs_keys;
  if (encoded != nullptr) {
    for (int a = 0; a < nc; ++a) {
      if (rhs.Contains(a)) continue;
      Status st = RunContext::Poll(ctx);
      if (RunContext::IsStop(st)) return exhausted_early(st, 0);
      tables[a] =
          std::make_unique<CodeDistanceTable>(*encoded, a, metrics[a], pool);
    }
    encoded->RowKeys(rhs, &rhs_keys);
  }

  // LHS candidate sets: one or two predicates on distinct attributes.
  std::vector<std::vector<SimilarityPredicate>> lhs_sets;
  for (const auto& p : candidates) lhs_sets.push_back({p});
  if (options.max_lhs_attrs >= 2) {
    for (size_t i = 0; i < candidates.size(); ++i) {
      for (size_t j = i + 1; j < candidates.size(); ++j) {
        if (candidates[i].attr == candidates[j].attr) continue;
        lhs_sets.push_back({candidates[i], candidates[j]});
      }
    }
  }

  // Per-candidate pair scans are independent; the support / confidence /
  // RCK-minimality filters replay the candidate order below, so the output
  // is bit-identical at any thread count.
  std::vector<Md::Stats> stats(lhs_sets.size());
  int n = sample.num_rows();
  int64_t candidates_done = 0;
  // Evidence path: one kernel build packs, per pair, each LHS attribute's
  // threshold-bucket index and each RHS attribute's equality bit; a
  // candidate's counts are then folds over the deduplicated words.
  // d <= threshold exactly when the bucket index is at or below the
  // threshold's index, and the RHS row keys agree exactly when every RHS
  // attribute's codes do, so the stats match the pair scans bit for bit.
  bool used_evidence = false;
  if (encoded != nullptr && options.use_evidence) {
    std::vector<EvidenceColumn> config;
    std::vector<int> cfg_of(nc, -1);
    std::vector<std::vector<double>> attr_th(nc);
    bool supported = true;
    for (int a = 0; a < nc && supported; ++a) {
      if (rhs.Contains(a)) continue;
      if (DictHasNonFiniteDouble(*encoded, a)) {
        supported = false;
        break;
      }
      ValueType t = relation.schema().column(a).type;
      attr_th[a] = (t == ValueType::kInt || t == ValueType::kDouble)
                       ? options.numeric_thresholds
                       : options.string_thresholds;
      std::sort(attr_th[a].begin(), attr_th[a].end());
      attr_th[a].erase(std::unique(attr_th[a].begin(), attr_th[a].end()),
                       attr_th[a].end());
      EvidenceColumn col;
      col.attr = a;
      col.cmp = EvidenceColumn::Cmp::kNone;
      col.metric = metrics[a];
      col.thresholds = attr_th[a];
      col.table = tables[a].get();
      cfg_of[a] = static_cast<int>(config.size());
      config.push_back(std::move(col));
    }
    std::vector<int> rhs_cols;
    for (int a = 0; a < nc; ++a) {
      if (!rhs.Contains(a)) continue;
      EvidenceColumn col;
      col.attr = a;
      col.cmp = EvidenceColumn::Cmp::kEquality;
      rhs_cols.push_back(static_cast<int>(config.size()));
      config.push_back(std::move(col));
    }
    if (supported && EvidenceWordBits(config) <= 64) {
      EvidenceOptions eopts;
      eopts.pool = pool;
      eopts.context = ctx;
      Result<std::shared_ptr<const EvidenceSet>> set_result =
          GetOrBuildEvidence(options.evidence, *encoded, config, eopts);
      if (!set_result.ok() && RunContext::IsStop(set_result.status())) {
        return exhausted_early(set_result.status(),
                               static_cast<int64_t>(lhs_sets.size()));
      }
      FAMTREE_ASSIGN_OR_RETURN(std::shared_ptr<const EvidenceSet> set,
                               std::move(set_result));
      const std::vector<EvidenceSet::Word>& words = set->words();
      // Per-word RHS identification, shared by every candidate.
      std::vector<char> identified(words.size());
      for (size_t wi = 0; wi < words.size(); ++wi) {
        bool id = true;
        for (int col : rhs_cols) {
          if (!set->AgreesOn(words[wi].bits, col)) {
            id = false;
            break;
          }
        }
        identified[wi] = id ? 1 : 0;
      }
      // Each candidate predicate's threshold as its bucket index.
      std::vector<std::vector<std::pair<int, int>>> lhs_buckets(
          lhs_sets.size());
      for (size_t c = 0; c < lhs_sets.size(); ++c) {
        for (const auto& p : lhs_sets[c]) {
          const std::vector<double>& th = attr_th[p.attr];
          int ti = static_cast<int>(
              std::find(th.begin(), th.end(), p.threshold) - th.begin());
          lhs_buckets[c].push_back({cfg_of[p.attr], ti});
        }
      }
      FAMTREE_ASSIGN_OR_RETURN(
          candidates_done,
          AnytimeParallelFor(
              ctx, pool, static_cast<int64_t>(lhs_sets.size()),
              [&](int64_t c) {
                Md::Stats& st = stats[c];
                st.total_pairs = set->total_pairs();
                for (size_t wi = 0; wi < words.size(); ++wi) {
                  bool similar = true;
                  for (const auto& [col, ti] : lhs_buckets[c]) {
                    if (set->BucketOf(words[wi].bits, col) > ti) {
                      similar = false;
                      break;
                    }
                  }
                  if (!similar) continue;
                  st.similar_pairs += words[wi].count;
                  if (identified[wi]) st.identified_pairs += words[wi].count;
                }
                return Status::OK();
              }));
      used_evidence = true;
    }
  }
  if (!used_evidence) {
    FAMTREE_ASSIGN_OR_RETURN(
        candidates_done,
        AnytimeParallelFor(
            ctx, pool, static_cast<int64_t>(lhs_sets.size()), [&](int64_t c) {
              if (encoded != nullptr) {
                stats[c] = EncodedStats(lhs_sets[c], n, tables, rhs_keys);
              } else {
                stats[c] = Md(lhs_sets[c], rhs).ComputeStats(sample);
              }
              return Status::OK();
            }));
  }

  std::vector<DiscoveredMd> out;
  // The support / confidence / minimality filters replay the completed
  // candidate prefix only; minimality checks earlier candidates alone, so
  // the prefix output matches the full run's first candidates_done entries.
  for (size_t c = 0; c < static_cast<size_t>(candidates_done); ++c) {
    auto& lhs = lhs_sets[c];
    if (stats[c].support() < options.min_support) continue;
    if (stats[c].confidence() < options.min_confidence) continue;
    // RCK-style minimality: skip when a reported MD's predicates are a
    // subset with looser-or-equal thresholds (the reported one already
    // matches at least the pairs this one matches).
    bool redundant = false;
    for (const DiscoveredMd& prev : out) {
      bool covers = true;
      for (const auto& pp : prev.md.lhs()) {
        bool found = false;
        for (const auto& p : lhs) {
          if (p.attr == pp.attr && pp.threshold >= p.threshold) {
            found = true;
            break;
          }
        }
        if (!found) {
          covers = false;
          break;
        }
      }
      if (covers && prev.md.lhs().size() <= lhs.size()) {
        redundant = true;
        break;
      }
    }
    if (redundant) continue;
    out.push_back(DiscoveredMd{Md(std::move(lhs), rhs), stats[c].support(),
                               stats[c].confidence()});
    if (static_cast<int>(out.size()) >= options.max_results) {
      RunContext::MarkComplete(ctx, static_cast<int64_t>(c) + 1);
      return out;
    }
  }
  if (candidates_done < static_cast<int64_t>(lhs_sets.size())) {
    RunContext::MarkExhausted(ctx, RunContext::StopStatus(ctx),
                              candidates_done,
                              static_cast<int64_t>(lhs_sets.size()));
  } else {
    RunContext::MarkComplete(ctx, candidates_done);
  }
  return out;
}

}  // namespace famtree
