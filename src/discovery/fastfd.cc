#include "discovery/fastfd.h"

#include <algorithm>
#include <memory>
#include <set>

#include "common/run_context.h"
#include "common/thread_pool.h"
#include "relation/encoded_relation.h"

namespace famtree {

namespace {

/// DFS for minimal hitting sets ("covers" in FastFDs terms) of the
/// difference sets in `diffs`, extending `chosen` with attributes > `last`
/// (the ordering makes each cover generated once).
void FindMinimalCovers(const std::vector<AttrSet>& diffs, AttrSet universe,
                       AttrSet chosen, int last, int max_size,
                       std::vector<AttrSet>* covers, int max_results) {
  if (static_cast<int>(covers->size()) >= max_results) return;
  // Is every difference set hit?
  bool all_hit = true;
  for (const AttrSet& d : diffs) {
    if (!d.Intersects(chosen)) {
      all_hit = false;
      break;
    }
  }
  if (all_hit) {
    // Minimality: removing any chosen attribute must leave some set unhit.
    for (int a : chosen.ToVector()) {
      AttrSet reduced = chosen.Without(a);
      bool still_hits = true;
      for (const AttrSet& d : diffs) {
        if (!d.Intersects(reduced)) {
          still_hits = false;
          break;
        }
      }
      if (still_hits) return;  // non-minimal; a smaller cover exists
    }
    covers->push_back(chosen);
    return;
  }
  if (chosen.size() >= max_size) return;
  // Branch on attributes of the first unhit difference set (classic
  // hitting-set DFS keeps the search focused).
  AttrSet first_unhit;
  for (const AttrSet& d : diffs) {
    if (!d.Intersects(chosen)) {
      first_unhit = d;
      break;
    }
  }
  for (int a : first_unhit.Intersect(universe).ToVector()) {
    if (a <= last && chosen.Contains(a)) continue;
    FindMinimalCovers(diffs, universe, chosen.With(a), a, max_size, covers,
                      max_results);
  }
}

}  // namespace

Result<std::vector<DiscoveredFd>> DiscoverFdsFastFd(
    const Relation& relation, const FastFdOptions& options) {
  int nc = relation.num_columns();
  FAMTREE_RETURN_NOT_OK(CheckAttrCapacity(nc, "FastFDs"));
  int n = relation.num_rows();
  // Difference sets of all tuple pairs, deduplicated and reduced to the
  // minimal ones (a superset of a difference set is redundant for covers).
  // The pair loop is chunked over leading rows; each chunk collects a
  // private mask set and the union of sets is order-independent, so the
  // chunk count cannot change the result. With the encoded backend the
  // per-cell comparison is one uint32 compare over flat code arrays; code
  // equality is exactly Value equality, so both paths produce the same
  // difference sets.
  std::unique_ptr<EncodedRelation> encoded;
  std::vector<const std::vector<uint32_t>*> codes;
  if (options.use_encoding) {
    encoded = std::make_unique<EncodedRelation>(relation);
    for (int a = 0; a < nc; ++a) codes.push_back(&encoded->codes(a));
  }
  int num_chunks = options.pool == nullptr
                       ? 1
                       : std::max(1, options.pool->num_threads() * 4);
  num_chunks = std::min(num_chunks, std::max(1, n));
  RunContext* ctx = options.context;
  RunContext::BeginRun(ctx, "fastfd");
  std::vector<std::set<AttrSet>> chunk_masks(num_chunks);
  Status diff_status = ParallelFor(options.pool, num_chunks, [&](int64_t c) {
    FAMTREE_RETURN_NOT_OK(RunContext::Poll(ctx));
    int begin = static_cast<int>(static_cast<int64_t>(n) * c / num_chunks);
    int end = static_cast<int>(static_cast<int64_t>(n) * (c + 1) / num_chunks);
    std::set<AttrSet>& local = chunk_masks[c];
    for (int i = begin; i < end; ++i) {
      for (int j = i + 1; j < n; ++j) {
        AttrSet d;
        if (encoded != nullptr) {
          for (int a = 0; a < nc; ++a) {
            if ((*codes[a])[i] != (*codes[a])[j]) d.Add(a);
          }
        } else {
          for (int a = 0; a < nc; ++a) {
            if (!(relation.Get(i, a) == relation.Get(j, a))) d.Add(a);
          }
        }
        if (!d.empty()) local.insert(d);
      }
    }
    return Status::OK();
  });
  if (RunContext::IsStop(diff_status)) {
    // Cut during difference-set construction: no RHS was searched, so the
    // partial result is the empty prefix.
    RunContext::MarkExhausted(ctx, diff_status, 0, nc);
    return std::vector<DiscoveredFd>{};
  }
  FAMTREE_RETURN_NOT_OK(diff_status);
  std::set<AttrSet> diff_masks;
  for (const std::set<AttrSet>& local : chunk_masks) {
    diff_masks.insert(local.begin(), local.end());
  }
  std::vector<AttrSet> all_diffs(diff_masks.begin(), diff_masks.end());

  // Per-RHS cover searches are independent; run them concurrently into
  // per-attribute slots, then concatenate in attribute order (the serial
  // emission order) with the same result cap.
  std::vector<std::vector<DiscoveredFd>> per_rhs(nc);
  FAMTREE_ASSIGN_OR_RETURN(
      int64_t rhs_done,
      AnytimeParallelFor(ctx, options.pool, nc, [&](int64_t ai) {
    int a = static_cast<int>(ai);
    // Difference sets relevant for RHS a: those containing a, minus a.
    std::vector<AttrSet> diffs;
    for (const AttrSet& d : all_diffs) {
      if (d.Contains(a)) {
        AttrSet rest = d.Without(a);
        diffs.push_back(rest);
      }
    }
    // If some pair differs *only* on a, no FD X -> a exists (the empty
    // difference set cannot be hit).
    bool impossible = false;
    for (const AttrSet& d : diffs) {
      if (d.empty()) {
        impossible = true;
        break;
      }
    }
    if (impossible) return Status::OK();
    if (diffs.empty()) {
      // No pair ever disagrees on a: the column is constant, {} -> a.
      per_rhs[a].push_back(DiscoveredFd{AttrSet(), a, 0.0});
      return Status::OK();
    }
    // Keep only minimal difference sets (supersets are hit automatically).
    std::vector<AttrSet> minimal;
    for (const AttrSet& d : diffs) {
      bool has_subset = false;
      for (const AttrSet& e : diffs) {
        if (e != d && d.ContainsAll(e)) {
          has_subset = true;
          break;
        }
      }
      if (!has_subset) minimal.push_back(d);
    }
    std::sort(minimal.begin(), minimal.end());
    minimal.erase(std::unique(minimal.begin(), minimal.end()), minimal.end());

    std::vector<AttrSet> covers;
    FindMinimalCovers(minimal, AttrSet::Full(nc).Without(a), AttrSet(), -1,
                      options.max_lhs_size, &covers, options.max_results);
    std::sort(covers.begin(), covers.end());
    covers.erase(std::unique(covers.begin(), covers.end()), covers.end());
    for (const AttrSet& x : covers) {
      per_rhs[a].push_back(DiscoveredFd{x, a, 0.0});
    }
    return Status::OK();
      }));
  std::vector<DiscoveredFd> out;
  // The concatenation replays the completed RHS prefix only, so a cut run
  // emits the same FDs at any thread count.
  for (int a = 0; a < static_cast<int>(rhs_done); ++a) {
    for (const DiscoveredFd& fd : per_rhs[a]) {
      out.push_back(fd);
      // The cap applies to cover-derived FDs; constant columns (empty LHS)
      // bypass it, mirroring the serial emission exactly.
      if (!fd.lhs.empty() &&
          static_cast<int>(out.size()) >= options.max_results) {
        RunContext::MarkComplete(ctx, a + 1);
        return out;
      }
    }
  }
  if (rhs_done < nc) {
    RunContext::MarkExhausted(ctx, RunContext::StopStatus(ctx), rhs_done, nc);
  } else {
    RunContext::MarkComplete(ctx, rhs_done);
  }
  return out;
}

}  // namespace famtree
