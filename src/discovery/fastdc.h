#ifndef FAMTREE_DISCOVERY_FASTDC_H_
#define FAMTREE_DISCOVERY_FASTDC_H_

#include <vector>

#include "common/status.h"
#include "deps/dc.h"
#include "relation/relation.h"

namespace famtree {

class EvidenceCache;
class RunContext;
class ThreadPool;

struct FastDcOptions {
  /// Cap on predicates per DC (search depth).
  int max_predicates = 4;
  /// Cap on emitted DCs.
  int max_results = 10000;
  /// Approximation: a DC may be violated by at most this fraction of
  /// ordered tuple pairs (A-FASTDC [19]); 0 = exact.
  double max_violation_fraction = 0.0;
  /// Also build cross-column predicates between numeric columns of the
  /// same type (joinable columns in FASTDC terms).
  bool cross_column = false;
  /// Evidence sets are built from all ordered pairs when the row count is
  /// at most this; beyond it, a random sample of pairs is used.
  int max_rows_exact = 2000;
  uint64_t seed = 42;
  /// Evaluate tuple-pair predicates on the dictionary-encoded backend:
  /// same-column =/!= are single code compares, and order predicates read
  /// per-dictionary numeric cells that replicate Value's comparison
  /// semantics exactly (null rank, exact int-int, cross-type via the
  /// double image). String cells under an order predicate and any operand
  /// shape outside the generated predicate space fall back to the Value
  /// evaluator, so evidence sets are bit-identical to the `false` (oracle)
  /// setting.
  bool use_encoding = true;
  /// When set, the evidence set — FASTDC's quadratic hotspot — is built in
  /// parallel: tuple pairs are split into contiguous chunks, each chunk
  /// accumulates a private evidence multiset, and the chunks are merged by
  /// commutative addition, so the result is bit-identical to the serial
  /// build for any thread count (tests/engine_determinism_test.cc).
  ThreadPool* pool = nullptr;
  /// Optional run limits (common/run_context.h): the driver check-points
  /// between deterministic units of work and, when a limit fires, returns
  /// the prefix of its results completed so far with RunReport.exhausted
  /// set. Null means unlimited.
  RunContext* context = nullptr;
  /// Build the evidence set through the shared pairwise kernel
  /// (engine/evidence.h): one packed comparison word per unordered pair —
  /// an equality bit per categorical column, an order trit per numeric
  /// column — deduplicated into a multiset, and each of the six predicate
  /// outcomes decoded from the word once per distinct word instead of once
  /// per pair. Ordered-pair evidence is the unordered multiset plus its
  /// mirror. Falls back to the per-predicate path (identical output) when
  /// cross-column predicates are requested, the word exceeds 64 bits, or a
  /// numeric dictionary holds NaN (whose Value order ties are not
  /// representable as a rank trit). Requires use_encoding.
  bool use_evidence = true;
  /// Optional shared store for kernel-built evidence multisets, keyed by
  /// relation content + column config; only the exact (all-pairs) build is
  /// cacheable.
  EvidenceCache* evidence = nullptr;
};

struct DiscoveredDc {
  Dc dc;
  /// Fraction of ordered pairs violating the DC (0 for exact results).
  double violation_fraction = 0.0;
};

/// The predicate space FASTDC builds over a schema: equality/inequality
/// for every column, the full order operator set for numeric columns.
/// Exposed for tests and the complexity bench.
std::vector<DcPredicate> BuildPredicateSpace(const Relation& relation,
                                             bool cross_column);

/// FASTDC [19]: computes the evidence set (satisfied predicates) of every
/// ordered tuple pair, then finds minimal predicate sets that no evidence
/// set contains — equivalently minimal hitting sets of the complemented
/// evidence — each yielding a valid minimal DC. The options select the
/// approximate (A-FASTDC) variant.
Result<std::vector<DiscoveredDc>> DiscoverDcs(const Relation& relation,
                                              const FastDcOptions& options = {});

/// C-FASTDC-style constant DCs: for each categorical value group with
/// sufficient support and each numeric column, emits the range constraints
/// that hold within the group, e.g. not(region = 'Chicago' and
/// price < 200) — the paper's Section 1.6 example.
Result<std::vector<DiscoveredDc>> DiscoverConstantDcs(
    const Relation& relation, int min_support = 3);

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_FASTDC_H_
