#ifndef FAMTREE_DISCOVERY_NED_DISCOVERY_H_
#define FAMTREE_DISCOVERY_NED_DISCOVERY_H_

#include <vector>

#include "common/status.h"
#include "deps/ned.h"
#include "relation/relation.h"

namespace famtree {

struct NedDiscoveryOptions {
  /// Candidate thresholds per LHS attribute.
  std::vector<double> thresholds = {0, 1, 2, 5};
  /// Minimum number of pairs agreeing on the LHS.
  int min_support = 3;
  /// Minimum fraction of LHS pairs satisfying the target.
  double min_confidence = 0.95;
  /// LHS predicate count cap.
  int max_lhs_attrs = 2;
};

struct DiscoveredNed {
  Ned ned;
  int64_t support = 0;
  double confidence = 0.0;
};

/// NED discovery [4]: given the target RHS predicate, searches LHS
/// neighborhood predicates with sufficient support and confidence. The
/// full problem is NP-hard in the attribute count (Section 3.2.3); this
/// enumerates LHS sets of bounded size, which is the practical regime.
Result<std::vector<DiscoveredNed>> DiscoverNeds(
    const Relation& relation, const Ned::Predicate& target,
    const NedDiscoveryOptions& options = {});

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_NED_DISCOVERY_H_
