#ifndef FAMTREE_DISCOVERY_NED_DISCOVERY_H_
#define FAMTREE_DISCOVERY_NED_DISCOVERY_H_

#include <vector>

#include "common/status.h"
#include "deps/ned.h"
#include "relation/relation.h"

namespace famtree {

class EvidenceCache;
class PliCache;
class RunContext;
class ThreadPool;

struct NedDiscoveryOptions {
  /// Candidate thresholds per LHS attribute.
  std::vector<double> thresholds = {0, 1, 2, 5};
  /// Minimum number of pairs agreeing on the LHS.
  int min_support = 3;
  /// Minimum fraction of LHS pairs satisfying the target.
  double min_confidence = 0.95;
  /// LHS predicate count cap.
  int max_lhs_attrs = 2;
  /// Run on the dictionary-encoded columnar backend (the default): metric
  /// distances become lookups in per-attribute code-pair tables, evaluated
  /// once per distinct value pair instead of once per row pair per
  /// candidate. `false` keeps the Value-based oracle; the discovered list
  /// is bit-identical either way.
  bool use_encoding = true;
  /// Optional engine hooks: when `pool` is set the per-candidate pair
  /// scans run in parallel and the support / confidence filters replay the
  /// serial candidate order (bit-identical at any thread count); `cache`
  /// lends its encoding.
  ThreadPool* pool = nullptr;
  PliCache* cache = nullptr;
  /// Optional run limits (common/run_context.h): the driver check-points
  /// between deterministic units of work and, when a limit fires, returns
  /// the prefix of its results completed so far with RunReport.exhausted
  /// set. Null means unlimited.
  RunContext* context = nullptr;
  /// Evaluate every candidate against the shared pairwise evidence
  /// multiset (engine/evidence.h): one kernel build packs each attribute's
  /// threshold-bucket index (the target's single threshold included) into
  /// a word per pair, and each candidate's support / confidence counts
  /// become folds over the deduplicated words instead of O(n^2) row-pair
  /// scans. Requires use_encoding; falls back (identical output) when the
  /// word exceeds 64 bits, a dictionary holds a non-finite double, or the
  /// target metric is not one of the built-ins (whose NaN behavior the
  /// bucket index mirrors under that guard).
  bool use_evidence = true;
  /// Optional shared store for the kernel-built evidence multiset.
  EvidenceCache* evidence = nullptr;
};

struct DiscoveredNed {
  Ned ned;
  int64_t support = 0;
  double confidence = 0.0;
};

/// NED discovery [4]: given the target RHS predicate, searches LHS
/// neighborhood predicates with sufficient support and confidence. The
/// full problem is NP-hard in the attribute count (Section 3.2.3); this
/// enumerates LHS sets of bounded size, which is the practical regime.
Result<std::vector<DiscoveredNed>> DiscoverNeds(
    const Relation& relation, const Ned::Predicate& target,
    const NedDiscoveryOptions& options = {});

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_NED_DISCOVERY_H_
