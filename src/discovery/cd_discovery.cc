#include "discovery/cd_discovery.h"

namespace famtree {

namespace {

Status CheckFunctions(const Relation& relation,
                      const std::vector<SimilarityFunction>& functions) {
  int nc = relation.num_columns();
  for (const auto& f : functions) {
    if (f.attr_i < 0 || f.attr_i >= nc || f.attr_j < 0 || f.attr_j >= nc) {
      return Status::Invalid("similarity function outside the schema");
    }
    if (f.metric == nullptr) {
      return Status::Invalid("similarity function without a metric");
    }
  }
  return Status::OK();
}

/// Evaluates one candidate (lhs indices into `functions`, rhs index).
void Evaluate(const Relation& relation,
              const std::vector<SimilarityFunction>& functions,
              const std::vector<int>& lhs, int rhs,
              const CdDiscoveryOptions& options,
              std::vector<DiscoveredCd>* out) {
  int n = relation.num_rows();
  int64_t support = 0, satisfied = 0;
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      bool all = true;
      for (int f : lhs) {
        if (!functions[f].Similar(relation, i, j)) {
          all = false;
          break;
        }
      }
      if (!all) continue;
      ++support;
      if (functions[rhs].Similar(relation, i, j)) ++satisfied;
    }
  }
  if (support < options.min_support) return;
  double confidence = static_cast<double>(satisfied) / support;
  if (confidence < options.min_confidence) return;
  std::vector<SimilarityFunction> lhs_fns;
  for (int f : lhs) lhs_fns.push_back(functions[f]);
  out->push_back(DiscoveredCd{Cd(std::move(lhs_fns), functions[rhs]),
                              support, confidence});
}

}  // namespace

Result<std::vector<DiscoveredCd>> DiscoverCds(
    const Relation& relation,
    const std::vector<SimilarityFunction>& functions,
    const CdDiscoveryOptions& options) {
  FAMTREE_RETURN_NOT_OK(CheckFunctions(relation, functions));
  std::vector<DiscoveredCd> out;
  int k = static_cast<int>(functions.size());
  for (int rhs = 0; rhs < k; ++rhs) {
    for (int a = 0; a < k; ++a) {
      if (a == rhs) continue;
      Evaluate(relation, functions, {a}, rhs, options, &out);
      if (static_cast<int>(out.size()) >= options.max_results) return out;
      if (options.max_lhs_functions < 2) continue;
      for (int b = a + 1; b < k; ++b) {
        if (b == rhs) continue;
        Evaluate(relation, functions, {a, b}, rhs, options, &out);
        if (static_cast<int>(out.size()) >= options.max_results) return out;
      }
    }
  }
  return out;
}

Result<std::vector<DiscoveredCd>> ExtendCdsWithFunction(
    const Relation& relation,
    const std::vector<SimilarityFunction>& known,
    const SimilarityFunction& fresh, const CdDiscoveryOptions& options) {
  FAMTREE_RETURN_NOT_OK(CheckFunctions(relation, known));
  FAMTREE_RETURN_NOT_OK(CheckFunctions(relation, {fresh}));
  std::vector<SimilarityFunction> all = known;
  all.push_back(fresh);
  int fresh_idx = static_cast<int>(all.size()) - 1;
  int k = static_cast<int>(all.size());
  std::vector<DiscoveredCd> out;
  // fresh as RHS.
  for (int a = 0; a < fresh_idx; ++a) {
    Evaluate(relation, all, {a}, fresh_idx, options, &out);
    for (int b = a + 1; b < fresh_idx && options.max_lhs_functions >= 2;
         ++b) {
      Evaluate(relation, all, {a, b}, fresh_idx, options, &out);
    }
  }
  // fresh as an LHS conjunct.
  for (int rhs = 0; rhs < fresh_idx; ++rhs) {
    Evaluate(relation, all, {fresh_idx}, rhs, options, &out);
    for (int b = 0; b < k && options.max_lhs_functions >= 2; ++b) {
      if (b == rhs || b == fresh_idx) continue;
      Evaluate(relation, all, {std::min(b, fresh_idx), std::max(b, fresh_idx)},
               rhs, options, &out);
    }
  }
  return out;
}

}  // namespace famtree
