#ifndef FAMTREE_DISCOVERY_ECFD_DISCOVERY_H_
#define FAMTREE_DISCOVERY_ECFD_DISCOVERY_H_

#include <vector>

#include "common/status.h"
#include "deps/ecfd.h"
#include "relation/relation.h"

namespace famtree {

struct EcfdDiscoveryOptions {
  /// Candidate range-condition cutpoints per numeric attribute are taken
  /// at these quantiles of the column's values.
  std::vector<double> cut_quantiles = {0.25, 0.5, 0.75};
  /// Minimum tuples the condition must cover.
  int min_support = 5;
  /// Embedded-FD LHS size cap (the condition attribute included).
  int max_lhs_size = 2;
  int max_results = 10000;
};

struct DiscoveredEcfd {
  Ecfd ecfd;
  int support = 0;
};

/// eCFD discovery with built-in predicates in the spirit of Zanzi &
/// Trombetta [114]: for each embedded FD X -> A that fails globally, and
/// each numeric attribute C in X, finds range conditions C <= c / C >= c
/// (cutpoints from the value distribution) under which the FD holds with
/// sufficient support — e.g. the paper's "rate <= 200, name -> address".
Result<std::vector<DiscoveredEcfd>> DiscoverEcfds(
    const Relation& relation, const EcfdDiscoveryOptions& options = {});

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_ECFD_DISCOVERY_H_
