#ifndef FAMTREE_DISCOVERY_CFD_DISCOVERY_H_
#define FAMTREE_DISCOVERY_CFD_DISCOVERY_H_

#include <vector>

#include "common/status.h"
#include "deps/cfd.h"
#include "relation/relation.h"

namespace famtree {

class EvidenceCache;
class PliCache;
class RunContext;
class ThreadPool;

struct CfdDiscoveryOptions {
  /// Minimum number of tuples a pattern must cover.
  int min_support = 3;
  /// LHS size cap.
  int max_lhs_size = 3;
  /// Constant condition attributes per general CFD (1 = single-condition
  /// CTANE-lite, 2 = pairs of constants).
  int max_condition_attrs = 1;
  int max_results = 100000;
  /// Run on the dictionary-encoded columnar backend (the default):
  /// grouping, uniformity and embedded-FD checks become integer code
  /// scans. `false` keeps the Value-based oracle walk; the discovered list
  /// is bit-identical either way.
  bool use_encoding = true;
  /// Optional engine hooks: when `pool` is set the per-LHS grouping scans
  /// (constant mining) / per-embedded-FD tableaus (general mining) are
  /// computed in parallel, with the minimality and subsumption filters
  /// replayed serially in the walk's order — bit-identical output at any
  /// thread count. `cache` lends its encoding.
  ThreadPool* pool = nullptr;
  PliCache* cache = nullptr;
  /// Optional run limits (common/run_context.h): the driver check-points
  /// between deterministic units of work and, when a limit fires, returns
  /// the prefix of its results completed so far with RunReport.exhausted
  /// set. Null means unlimited.
  RunContext* context = nullptr;
  /// Prune constant mining with the shared pairwise evidence multiset
  /// (engine/evidence.h): one PLI-pruned equality-evidence build counts,
  /// per attribute set, how many row pairs agree on it — an LHS (or an
  /// LHS + RHS attribute) whose agreeing-pair count cannot reach
  /// C(min_support, 2) can never produce a support-qualified pattern, so
  /// its grouping / uniformity scans are skipped. Pure pruning: the
  /// discovered list is bit-identical with the flag off. Opt-in (unlike
  /// the pairwise miners, whose work is inherently quadratic): the
  /// evidence build scans O(n^2) candidate pairs while the levelwise
  /// lattice is linear per attribute set, so the pruning pays off only
  /// when high min_support kills most of a large lattice — on big
  /// relations with small schemas the build costs more than it saves.
  /// Requires use_encoding.
  bool use_evidence = false;
  /// Optional shared store for the kernel-built evidence multiset.
  EvidenceCache* evidence = nullptr;
};

/// A discovered CFD plus its measured support.
struct DiscoveredCfd {
  Cfd cfd;
  int support = 0;
};

/// Constant CFD mining in the spirit of CFDMiner [35], [36]: finds
/// minimal constant patterns (X = x-values -> A = a) holding with the
/// given support. A constant CFD is reported only when no subset of its
/// LHS pattern already pins the same RHS constant.
Result<std::vector<DiscoveredCfd>> DiscoverConstantCfds(
    const Relation& relation, const CfdDiscoveryOptions& options = {});

/// General CFD discovery in the spirit of CTANE [35], [36], restricted to
/// patterns with at most `max_condition_attrs` constant conditions: for
/// each embedded FD X -> A that does *not* hold globally, finds the
/// conditions under which it holds with sufficient support. Multi-constant
/// patterns are reported only when no single-constant restriction of them
/// already qualifies (pattern minimality).
Result<std::vector<DiscoveredCfd>> DiscoverGeneralCfds(
    const Relation& relation, const CfdDiscoveryOptions& options = {});

struct TableauOptions {
  /// Stop once this fraction of tuples is covered by the tableau.
  double target_coverage = 0.8;
  /// Patterns considered per condition attribute.
  int max_patterns = 64;
  /// Fast-path knobs, same convention as CfdDiscoveryOptions: the
  /// per-group violation checks run encoded and/or in parallel, the
  /// greedy cover itself stays serial (each pick depends on the last).
  bool use_encoding = true;
  ThreadPool* pool = nullptr;
  PliCache* cache = nullptr;
  /// Optional run limits (common/run_context.h): the driver check-points
  /// between deterministic units of work and, when a limit fires, returns
  /// the prefix of its results completed so far with RunReport.exhausted
  /// set. Null means unlimited.
  RunContext* context = nullptr;
};

/// Greedy near-optimal tableau construction for a given embedded FD
/// (Golab et al. [49]): repeatedly picks the constant pattern on
/// `condition_attr` with the largest marginal cover among those keeping
/// the embedded FD violation-free, until the coverage target is met or no
/// pattern qualifies. Returns one CFD per tableau row.
Result<std::vector<DiscoveredCfd>> BuildGreedyTableau(
    const Relation& relation, AttrSet lhs, int rhs, int condition_attr,
    const TableauOptions& options = {});

}  // namespace famtree

#endif  // FAMTREE_DISCOVERY_CFD_DISCOVERY_H_
