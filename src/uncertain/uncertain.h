#ifndef FAMTREE_UNCERTAIN_UNCERTAIN_H_
#define FAMTREE_UNCERTAIN_UNCERTAIN_H_

#include <vector>

#include "common/status.h"
#include "deps/fd.h"
#include "relation/relation.h"

namespace famtree {

/// An uncertain relation in the spirit of Sarma et al. [81] (the
/// Section 5.1 outlook): each cell holds a non-empty set of possible
/// values (an or-set); a *possible world* picks one value per cell.
class UncertainRelation {
 public:
  explicit UncertainRelation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  int num_rows() const { return static_cast<int>(rows_.size()); }

  /// Appends a row of or-sets; every cell needs >= 1 alternative.
  Status AppendRow(std::vector<std::vector<Value>> row);

  const std::vector<Value>& Cell(int row, int col) const {
    return rows_[row][col];
  }

  /// Number of possible worlds (product of cell alternative counts);
  /// saturates at INT64_MAX.
  int64_t NumWorlds() const;

  /// Materializes one world by alternative indices (for tests).
  Result<Relation> World(const std::vector<std::vector<int>>& choice) const;

 private:
  Schema schema_;
  std::vector<std::vector<std::vector<Value>>> rows_;
};

/// Sarma et al. distinguish FDs that hold in *every* world (the analogue
/// of certain answers) from those holding in *some* world. On or-set
/// relations both checks reduce to pairwise set reasoning — no world
/// enumeration:
///   - a pair can violate (possibly) iff the LHS or-sets can overlap
///     while some RHS alternative pair differs;
///   - a pair must violate (certainly) iff the LHS sets *must* agree
///     (both singletons, equal) and the RHS sets must disagree (disjoint
///     singleton... generally: no choice makes them equal).
enum class UncertainVerdict {
  /// The FD holds in every possible world.
  kCertainlyHolds,
  /// Holds in some worlds, violated in others.
  kPossiblyHolds,
  /// Violated in every possible world.
  kCertainlyViolated,
};

const char* UncertainVerdictName(UncertainVerdict v);

Result<UncertainVerdict> CheckFdUnderUncertainty(
    const UncertainRelation& relation, const Fd& fd);

}  // namespace famtree

#endif  // FAMTREE_UNCERTAIN_UNCERTAIN_H_
