#include "uncertain/uncertain.h"

#include <limits>

namespace famtree {

Status UncertainRelation::AppendRow(std::vector<std::vector<Value>> row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::Invalid("row arity does not match the schema");
  }
  for (const auto& cell : row) {
    if (cell.empty()) {
      return Status::Invalid("every cell needs at least one alternative");
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

int64_t UncertainRelation::NumWorlds() const {
  int64_t worlds = 1;
  for (const auto& row : rows_) {
    for (const auto& cell : row) {
      if (worlds > std::numeric_limits<int64_t>::max() /
                       static_cast<int64_t>(cell.size())) {
        return std::numeric_limits<int64_t>::max();
      }
      worlds *= static_cast<int64_t>(cell.size());
    }
  }
  return worlds;
}

Result<Relation> UncertainRelation::World(
    const std::vector<std::vector<int>>& choice) const {
  if (static_cast<int>(choice.size()) != num_rows()) {
    return Status::Invalid("choice shape mismatch");
  }
  RelationBuilder builder{schema_};
  for (int r = 0; r < num_rows(); ++r) {
    if (static_cast<int>(choice[r].size()) != schema_.num_columns()) {
      return Status::Invalid("choice shape mismatch");
    }
    std::vector<Value> row;
    for (int c = 0; c < schema_.num_columns(); ++c) {
      int idx = choice[r][c];
      if (idx < 0 || idx >= static_cast<int>(rows_[r][c].size())) {
        return Status::OutOfRange("alternative index out of range");
      }
      row.push_back(rows_[r][c][idx]);
    }
    builder.AddRow(std::move(row));
  }
  return builder.Build();
}

const char* UncertainVerdictName(UncertainVerdict v) {
  switch (v) {
    case UncertainVerdict::kCertainlyHolds: return "certainly holds";
    case UncertainVerdict::kPossiblyHolds: return "possibly holds";
    case UncertainVerdict::kCertainlyViolated: return "certainly violated";
  }
  return "?";
}

namespace {

bool SetsIntersect(const std::vector<Value>& a, const std::vector<Value>& b) {
  for (const Value& x : a) {
    for (const Value& y : b) {
      if (x == y) return true;
    }
  }
  return false;
}

bool ForcedEqual(const std::vector<Value>& a, const std::vector<Value>& b) {
  return a.size() == 1 && b.size() == 1 && a[0] == b[0];
}

}  // namespace

Result<UncertainVerdict> CheckFdUnderUncertainty(
    const UncertainRelation& relation, const Fd& fd) {
  int nc = relation.schema().num_columns();
  if (!AttrSet::Full(nc).ContainsAll(fd.lhs().Union(fd.rhs()))) {
    return Status::Invalid("FD refers to attributes outside the schema");
  }
  if (fd.lhs().Intersects(fd.rhs())) {
    return Status::Invalid(
        "uncertain checking needs disjoint LHS/RHS (shared cells couple "
        "the value choices)");
  }
  int n = relation.num_rows();
  bool can_violate = false;
  bool certainly_violated_witness = false;
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      // Can the pair agree on every LHS attribute in some world?
      bool lhs_can_agree = true;
      bool lhs_must_agree = true;
      for (int a : fd.lhs().ToVector()) {
        const auto& si = relation.Cell(i, a);
        const auto& sj = relation.Cell(j, a);
        lhs_can_agree &= SetsIntersect(si, sj);
        lhs_must_agree &= ForcedEqual(si, sj);
      }
      if (!lhs_can_agree) continue;
      // Can / must the RHS differ?
      bool rhs_can_differ = false;
      bool rhs_must_differ = false;
      for (int b : fd.rhs().ToVector()) {
        const auto& si = relation.Cell(i, b);
        const auto& sj = relation.Cell(j, b);
        if (!ForcedEqual(si, sj)) {
          // More than one combined alternative, or distinct singletons:
          // some choice differs unless both are the same singleton.
          if (si.size() > 1 || sj.size() > 1 || !(si[0] == sj[0])) {
            rhs_can_differ = true;
          }
        }
        if (!SetsIntersect(si, sj)) rhs_must_differ = true;
      }
      if (lhs_can_agree && rhs_can_differ) can_violate = true;
      if (lhs_must_agree && rhs_must_differ) {
        certainly_violated_witness = true;
      }
    }
  }
  if (certainly_violated_witness) {
    return UncertainVerdict::kCertainlyViolated;
  }
  if (can_violate) return UncertainVerdict::kPossiblyHolds;
  return UncertainVerdict::kCertainlyHolds;
}

}  // namespace famtree
