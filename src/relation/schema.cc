#include "relation/schema.h"

#include "common/strings.h"

namespace famtree {

Schema Schema::FromNames(const std::vector<std::string>& names) {
  std::vector<Column> cols;
  cols.reserve(names.size());
  for (const auto& n : names) cols.push_back(Column{n, ValueType::kNull});
  return Schema(std::move(cols));
}

Result<int> Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

Result<AttrSet> Schema::SetOf(const std::vector<std::string>& names) const {
  AttrSet s;
  for (const auto& n : names) {
    FAMTREE_ASSIGN_OR_RETURN(int idx, IndexOf(n));
    s.Add(idx);
  }
  return s;
}

std::string Schema::NamesOf(AttrSet attrs) const {
  std::vector<std::string> names;
  for (int a : attrs.ToVector()) {
    names.push_back(a < num_columns() ? columns_[a].name
                                      : "#" + std::to_string(a));
  }
  return Join(names, ", ");
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  for (const auto& c : columns_) {
    parts.push_back(c.name + ":" + ValueTypeName(c.type));
  }
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace famtree
