#ifndef FAMTREE_RELATION_PLI_DELTA_H_
#define FAMTREE_RELATION_PLI_DELTA_H_

#include <cstdint>
#include <vector>

#include "relation/partition.h"

namespace famtree {

/// Per-column side index that makes single-attribute PLIs maintainable
/// under batch appends. A stripped partition drops singleton classes, so
/// the CSR alone cannot answer "which row held code k before the append"
/// when k occurred exactly once — this index keeps, per code, the
/// occurrence count and (for count == 1) that lone row. Built lazily with
/// one scan of the pre-append code array, then updated in O(batch) by
/// every merge, so a long append stream pays the full scan once.
struct PliDeltaIndex {
  /// count[code] over rows [0, rows_indexed).
  std::vector<int> count;
  /// single_row[code] is the unique row when count[code] == 1, else -1.
  std::vector<int> single_row;
  int rows_indexed = 0;

  bool built() const { return rows_indexed > 0 || !count.empty(); }
};

/// Builds the index from a column's code array over rows [0, num_rows).
void BuildPliDeltaIndex(const uint32_t* codes, int num_rows, int dict_size,
                        PliDeltaIndex* index);

/// Merges the appended rows [old_rows, old_rows + delta_rows) of one
/// column into that column's single-attribute PLI and updates `index` in
/// place. `codes` is delta-local — entry r is the code of relation row
/// old_rows + r (an append never touches prefix codes, so callers pass
/// either the tail of the full array or a freshly copied delta column);
/// `new_dict_size` the post-append dictionary size; `old` the pre-append
/// partition; `index` must cover exactly old_rows rows.
///
/// Bit-identical by construction to a cold rebuild: codes are assigned in
/// first-occurrence row order, so both the counting-sort builder
/// (StrippedPartition::FromRowKeys) and the out-of-core k-way merge emit
/// classes in code-ascending order with rows ascending inside each class.
/// The merge walks codes 0..new_dict_size-1, splicing each code's old rows
/// (CSR class, or the index's singleton) ahead of its appended rows —
/// reproducing exactly that order in one linear pass over
/// O(old CSR + dict + batch) work instead of O(rows).
StrippedPartition MergeAttributePliDelta(const StrippedPartition& old,
                                         const uint32_t* codes, int old_rows,
                                         int delta_rows, int new_dict_size,
                                         PliDeltaIndex* index);

}  // namespace famtree

#endif  // FAMTREE_RELATION_PLI_DELTA_H_
