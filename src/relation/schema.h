#ifndef FAMTREE_RELATION_SCHEMA_H_
#define FAMTREE_RELATION_SCHEMA_H_

#include <string>
#include <vector>

#include "common/attr_set.h"
#include "common/status.h"
#include "relation/value.h"

namespace famtree {

/// One attribute of a relation schema.
struct Column {
  std::string name;
  /// Declared type; kNull means "untyped / mixed" (CSV inference may leave a
  /// column untyped when values disagree).
  ValueType type = ValueType::kNull;
};

/// An ordered list of named attributes. Attribute indices are the public
/// currency throughout the library (AttrSet bitmasks refer to them).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  /// Convenience: untyped columns from names.
  static Schema FromNames(const std::vector<std::string>& names);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[i]; }
  const std::string& name(int i) const { return columns_[i].name; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the attribute named `name`, or error.
  Result<int> IndexOf(const std::string& name) const;

  /// Indices for several names at once.
  Result<AttrSet> SetOf(const std::vector<std::string>& names) const;

  /// Comma-separated names of the members of `attrs`.
  std::string NamesOf(AttrSet attrs) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace famtree

#endif  // FAMTREE_RELATION_SCHEMA_H_
