#ifndef FAMTREE_RELATION_RELATION_H_
#define FAMTREE_RELATION_RELATION_H_

#include <string>
#include <vector>

#include "common/attr_set.h"
#include "common/status.h"
#include "relation/schema.h"
#include "relation/value.h"

namespace famtree {

/// A relation instance: a schema plus column-major cell storage. Columns are
/// stored as vectors of Value so the library can mix categorical,
/// heterogeneous (string) and numerical data in one table — exactly the
/// setting the paper's DCs and CDDs address.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema);

  const Schema& schema() const { return schema_; }
  int num_columns() const { return schema_.num_columns(); }
  int num_rows() const { return num_rows_; }

  const Value& Get(int row, int col) const { return columns_[col][row]; }
  void Set(int row, int col, Value v) { columns_[col][row] = std::move(v); }

  const std::vector<Value>& column(int col) const { return columns_[col]; }

  /// Appends a row; the row must have exactly num_columns() values.
  Status AppendRow(std::vector<Value> row);

  /// Batch append: validates every row's arity up front, then appends all
  /// of them (all-or-nothing — a bad row leaves the relation untouched).
  /// Column types are NOT re-inferred; appended cells are expected to fit
  /// the existing schema, as in a monitoring stream. Use
  /// DiscoveryEngine::AppendRows instead when the relation is registered
  /// with an engine, so cached PLIs/evidence are maintained rather than
  /// silently staled.
  Status AppendRows(std::vector<std::vector<Value>> rows);

  /// Materializes one row (used by pretty-printing and tests).
  std::vector<Value> Row(int row) const;

  /// Row restricted to `attrs` in increasing attribute order.
  std::vector<Value> Project(int row, AttrSet attrs) const;

  /// True when rows i and j agree (are equal) on every attribute in `attrs`.
  bool AgreeOn(int i, int j, AttrSet attrs) const;

  /// Number of distinct values in the projection onto `attrs`
  /// (the |dom(X)|_r of the paper's SFD strength measure).
  int CountDistinct(AttrSet attrs) const;

  /// Groups row indices by equal projection onto `attrs`. Each group holds
  /// at least one row; groups are in first-occurrence order.
  std::vector<std::vector<int>> GroupBy(AttrSet attrs) const;

  /// New relation containing only `rows` (in the given order).
  Relation Select(const std::vector<int>& rows) const;

  /// New relation containing only the attributes in `attrs`.
  Relation ProjectColumns(AttrSet attrs) const;

  /// Infers per-column types: kInt/kDouble/kString when uniform (ignoring
  /// nulls), kNull otherwise. Updates the schema in place.
  void InferTypes();

  /// ASCII table rendering (for examples and benches).
  std::string ToPrettyString(int max_rows = 50) const;

 private:
  Schema schema_;
  std::vector<std::vector<Value>> columns_;
  int num_rows_ = 0;
};

/// Content fingerprint over the schema (names and types) and every cell.
/// Two relations with the same fingerprint are, for caching purposes, the
/// same data; DiscoveryEngine uses it to detect a relation freed and
/// reallocated at the address of one it still serves.
///
/// The fingerprint is *append-chainable*: cell hashes fold row-major into a
/// running chain (RelationRowChain), and the schema + shape fold in last
/// (FinalizeRelationFingerprint). A holder of the chain over rows [0, n)
/// can extend it with only the appended rows' cells and refinalize —
/// producing the exact fingerprint a cold full pass over the grown
/// relation would, which is how PliCache recognizes "same base + delta".
uint64_t RelationFingerprint(const Relation& relation);

/// Seed for the row-major cell chain of RelationFingerprint.
inline constexpr uint64_t kRelationChainSeed = 0x72656c66;

/// Folds the cell hashes of rows [from_row, to_row), row-major, into
/// `chain`. RelationRowChain(r, 0, n, kRelationChainSeed) is the full
/// chain; appending extends it from the previous value.
uint64_t RelationRowChain(const Relation& relation, int from_row, int to_row,
                          uint64_t chain);

/// Folds schema names/types and the shape into a finished chain. Schema
/// folds *after* the cells so an append that widens an inferred column
/// type (int -> double on the sharded path) can refinalize the same cell
/// chain under the refreshed schema.
uint64_t FinalizeRelationFingerprint(uint64_t chain, const Schema& schema,
                                     int num_rows);

/// Builder with a fluent row API:
///   RelationBuilder b({"name", "price"});
///   b.AddRow({Value("Hyatt"), Value(230)});
class RelationBuilder {
 public:
  explicit RelationBuilder(const std::vector<std::string>& names)
      : relation_(Schema::FromNames(names)) {}
  explicit RelationBuilder(Schema schema) : relation_(std::move(schema)) {}

  RelationBuilder& AddRow(std::vector<Value> row);

  /// Finalizes: infers column types and returns the relation. The builder
  /// reports the first row-arity error, if any, here.
  Result<Relation> Build();

 private:
  Relation relation_;
  Status first_error_;
};

}  // namespace famtree

#endif  // FAMTREE_RELATION_RELATION_H_
