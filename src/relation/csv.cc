#include "relation/csv.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace famtree {

namespace {

/// One raw field plus whether any part of it was quoted in the source; the
/// reader needs that distinction because quoting suppresses null detection
/// and type inference.
struct RawField {
  std::string text;
  bool quoted = false;
};

/// Splits one CSV record honoring quotes. `pos` advances past the record's
/// trailing newline. Sets *got_record to false at end of input. An opening
/// quote with no closing quote before end of input is a parse error.
Status NextRecord(const std::string& text, size_t* pos, char sep,
                  std::vector<RawField>* fields, bool* got_record) {
  *got_record = false;
  if (*pos >= text.size()) return Status::OK();
  fields->clear();
  RawField field;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.text += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.text += c;
      }
    } else if (c == '"') {
      in_quotes = true;
      field.quoted = true;
    } else if (c == sep) {
      fields->push_back(std::move(field));
      field = RawField();
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
      ++i;
      break;
    } else {
      field.text += c;
    }
  }
  if (in_quotes) {
    return Status::Invalid("unterminated quoted field at end of CSV input");
  }
  fields->push_back(std::move(field));
  *pos = i;
  *got_record = true;
  return Status::OK();
}

/// Null detection and type inference apply only to unquoted fields: "" is
/// the empty string, and "NULL" / "123" are literal text. This is the
/// contract EscapeField relies on for lossless round-trips.
Value ParseField(const RawField& field, const CsvOptions& options) {
  if (field.quoted) return Value(field.text);
  if (field.text.empty() || field.text == options.null_literal) {
    return Value::Null();
  }
  if (options.infer_types) {
    long long iv;
    if (ParseInt64(field.text, &iv)) return Value(static_cast<int64_t>(iv));
    double dv;
    if (ParseDouble(field.text, &dv)) return Value(dv);
  }
  return Value(field.text);
}

/// Quotes any text a reader could misinterpret: separators, quotes, either
/// newline byte (a bare \r also terminates a record on read), the empty
/// field and the null literal (which would read back as null), and — for
/// string-typed cells — text that type inference would turn into a number.
std::string EscapeField(const std::string& field, const CsvOptions& options,
                        bool from_string_value) {
  bool needs_quotes = field.empty() || field == options.null_literal ||
                      field.find(options.separator) != std::string::npos ||
                      field.find('"') != std::string::npos ||
                      field.find('\n') != std::string::npos ||
                      field.find('\r') != std::string::npos;
  if (!needs_quotes && from_string_value && options.infer_types) {
    long long iv;
    double dv;
    needs_quotes = ParseInt64(field, &iv) || ParseDouble(field, &dv);
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<Relation> ReadCsvString(const std::string& text,
                               const CsvOptions& options) {
  size_t pos = 0;
  std::vector<RawField> fields;
  bool got_record = false;
  std::vector<std::string> names;
  if (options.has_header) {
    FAMTREE_RETURN_NOT_OK(
        NextRecord(text, &pos, options.separator, &fields, &got_record));
    if (!got_record) return Status::Invalid("empty CSV input");
    for (auto& f : fields) names.push_back(std::string(Trim(f.text)));
  }
  std::vector<std::vector<Value>> rows;
  size_t charged_to = pos;
  for (;;) {
    if ((rows.size() & 255) == 0) {
      FAMTREE_RETURN_NOT_OK(RunContext::Poll(options.context));
      FAMTREE_RETURN_NOT_OK(RunContext::ChargeAlloc(
          options.context, pos - charged_to, "csv_rows"));
      charged_to = pos;
    }
    FAMTREE_RETURN_NOT_OK(
        NextRecord(text, &pos, options.separator, &fields, &got_record));
    if (!got_record) break;
    // A record that is a single unquoted empty field is a blank line; a
    // quoted "" is a real one-cell record holding the empty string.
    if (fields.size() == 1 && !fields[0].quoted && Trim(fields[0].text).empty()) {
      continue;
    }
    std::vector<Value> row;
    row.reserve(fields.size());
    for (const auto& f : fields) row.push_back(ParseField(f, options));
    rows.push_back(std::move(row));
  }
  FAMTREE_RETURN_NOT_OK(
      RunContext::ChargeAlloc(options.context, pos - charged_to, "csv_rows"));
  if (names.empty()) {
    size_t width = rows.empty() ? 0 : rows[0].size();
    for (size_t i = 0; i < width; ++i) names.push_back("c" + std::to_string(i));
  }
  RelationBuilder builder(names);
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != names.size()) {
      return Status::Invalid("row " + std::to_string(i + 1) + " has " +
                             std::to_string(rows[i].size()) +
                             " fields, expected " +
                             std::to_string(names.size()));
    }
    builder.AddRow(std::move(rows[i]));
  }
  return builder.Build();
}

Result<Relation> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ReadCsvString(ss.str(), options);
}

std::string WriteCsvString(const Relation& relation,
                           const CsvOptions& options) {
  std::string out;
  for (int c = 0; c < relation.num_columns(); ++c) {
    if (c) out += options.separator;
    // Header cells are never null-detected or type-inferred on read, so
    // they only need structural quoting.
    out += EscapeField(relation.schema().name(c), options,
                       /*from_string_value=*/false);
  }
  out += '\n';
  for (int r = 0; r < relation.num_rows(); ++r) {
    for (int c = 0; c < relation.num_columns(); ++c) {
      if (c) out += options.separator;
      const Value& v = relation.Get(r, c);
      if (v.is_null()) {
        out += options.null_literal;
      } else {
        out += EscapeField(v.ToString(), options, v.is_string());
      }
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Relation& relation, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << WriteCsvString(relation, options);
  return out.good() ? Status::OK() : Status::IoError("write failed: " + path);
}

}  // namespace famtree
