#include "relation/csv.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace famtree {

namespace {

/// Splits one CSV record honoring quotes. `pos` advances past the record's
/// trailing newline. Returns false at end of input.
bool NextRecord(const std::string& text, size_t* pos, char sep,
                std::vector<std::string>* fields) {
  if (*pos >= text.size()) return false;
  fields->clear();
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == sep) {
      fields->push_back(std::move(field));
      field.clear();
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
      ++i;
      break;
    } else {
      field += c;
    }
  }
  fields->push_back(std::move(field));
  *pos = i;
  return true;
}

Value ParseField(const std::string& field, const CsvOptions& options) {
  if (field.empty() || field == options.null_literal) return Value::Null();
  if (options.infer_types) {
    long long iv;
    if (ParseInt64(field, &iv)) return Value(static_cast<int64_t>(iv));
    double dv;
    if (ParseDouble(field, &dv)) return Value(dv);
  }
  return Value(field);
}

std::string EscapeField(const std::string& field, char sep) {
  bool needs_quotes = field.find(sep) != std::string::npos ||
                      field.find('"') != std::string::npos ||
                      field.find('\n') != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<Relation> ReadCsvString(const std::string& text,
                               const CsvOptions& options) {
  size_t pos = 0;
  std::vector<std::string> fields;
  std::vector<std::string> names;
  if (options.has_header) {
    if (!NextRecord(text, &pos, options.separator, &fields)) {
      return Status::Invalid("empty CSV input");
    }
    for (auto& f : fields) names.push_back(std::string(Trim(f)));
  }
  std::vector<std::vector<Value>> rows;
  while (NextRecord(text, &pos, options.separator, &fields)) {
    if (fields.size() == 1 && Trim(fields[0]).empty()) continue;  // blank line
    std::vector<Value> row;
    row.reserve(fields.size());
    for (const auto& f : fields) row.push_back(ParseField(f, options));
    rows.push_back(std::move(row));
  }
  if (names.empty()) {
    size_t width = rows.empty() ? 0 : rows[0].size();
    for (size_t i = 0; i < width; ++i) names.push_back("c" + std::to_string(i));
  }
  RelationBuilder builder(names);
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != names.size()) {
      return Status::Invalid("row " + std::to_string(i + 1) + " has " +
                             std::to_string(rows[i].size()) +
                             " fields, expected " +
                             std::to_string(names.size()));
    }
    builder.AddRow(std::move(rows[i]));
  }
  return builder.Build();
}

Result<Relation> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ReadCsvString(ss.str(), options);
}

std::string WriteCsvString(const Relation& relation,
                           const CsvOptions& options) {
  std::string out;
  for (int c = 0; c < relation.num_columns(); ++c) {
    if (c) out += options.separator;
    out += EscapeField(relation.schema().name(c), options.separator);
  }
  out += '\n';
  for (int r = 0; r < relation.num_rows(); ++r) {
    for (int c = 0; c < relation.num_columns(); ++c) {
      if (c) out += options.separator;
      const Value& v = relation.Get(r, c);
      if (v.is_null()) {
        out += options.null_literal;
      } else {
        out += EscapeField(v.ToString(), options.separator);
      }
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Relation& relation, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << WriteCsvString(relation, options);
  return out.good() ? Status::OK() : Status::IoError("write failed: " + path);
}

}  // namespace famtree
