#include "relation/csv.h"

#include <algorithm>
#include <fstream>

#include "common/strings.h"

namespace famtree {

namespace {

/// Tracks the bytes charged at "csv_rows" for one read so a failed parse
/// releases them: the charge pays for the relation under construction, and a
/// failed read constructs nothing.
class ScopedCsvCharge {
 public:
  explicit ScopedCsvCharge(RunContext* ctx) : ctx_(ctx) {}
  ScopedCsvCharge(const ScopedCsvCharge&) = delete;
  ScopedCsvCharge& operator=(const ScopedCsvCharge&) = delete;

  Status Charge(size_t bytes) {
    Status st = RunContext::ChargeAlloc(ctx_, bytes, "csv_rows");
    if (st.ok()) charged_ += bytes;
    return st;
  }

  void Commit() { committed_ = true; }

  ~ScopedCsvCharge() {
    if (!committed_ && ctx_ != nullptr && ctx_->memory_budget() != nullptr) {
      ctx_->memory_budget()->Release(charged_);
    }
  }

 private:
  RunContext* ctx_;
  size_t charged_ = 0;
  bool committed_ = false;
};

/// Pulls chunks from `next` (empty view = end of input), charging each chunk
/// before it is parsed, and assembles the decoded rows into a Relation.
Result<Relation> ReadCsvChunks(
    const std::function<Result<std::string_view>()>& next,
    const CsvOptions& options) {
  ScopedCsvCharge charge(options.context);
  std::vector<std::vector<Value>> rows;
  CsvRowDecoder decoder(options, [&rows](std::vector<Value>&& row) {
    rows.push_back(std::move(row));
    return Status::OK();
  });
  CsvStreamParser parser(options.separator);
  auto emit = [&decoder](std::vector<CsvField>* fields) {
    return decoder.OnRecord(fields);
  };
  for (;;) {
    FAMTREE_ASSIGN_OR_RETURN(std::string_view chunk, next());
    if (chunk.empty()) break;
    FAMTREE_RETURN_NOT_OK(charge.Charge(chunk.size()));
    FAMTREE_RETURN_NOT_OK(parser.Feed(chunk, emit));
  }
  FAMTREE_RETURN_NOT_OK(parser.Finish(emit));
  FAMTREE_RETURN_NOT_OK(decoder.Finish());
  RelationBuilder builder(decoder.names());
  for (auto& row : rows) builder.AddRow(std::move(row));
  charge.Commit();
  return builder.Build();
}

}  // namespace

CsvStreamParser::CsvStreamParser(char separator) : separator_(separator) {
  specials_[0] = separator_;
  specials_[1] = '"';
  specials_[2] = '\r';
  specials_[3] = '\n';
}

Status CsvStreamParser::Emit(const RecordFn& emit) {
  fields_.push_back(std::move(field_));
  field_ = CsvField();
  record_open_ = false;
  Status st = emit(&fields_);
  fields_.clear();
  return st;
}

Status CsvStreamParser::Feed(std::string_view chunk, const RecordFn& emit) {
  while (!chunk.empty()) {
    if (skip_lf_) {
      skip_lf_ = false;
      if (chunk.front() == '\n') {
        chunk.remove_prefix(1);
        continue;
      }
    }
    if (quote_pending_) {
      quote_pending_ = false;
      if (chunk.front() == '"') {
        field_.text += '"';
        record_open_ = true;
        chunk.remove_prefix(1);
        continue;
      }
      in_quotes_ = false;  // the pending quote closed the region
    }
    if (in_quotes_) {
      size_t stop = chunk.find('"');
      size_t take = stop == std::string_view::npos ? chunk.size() : stop;
      if (take > 0) {
        field_.text.append(chunk.substr(0, take));
        record_open_ = true;
      }
      if (stop == std::string_view::npos) break;  // chunk consumed
      // A quote inside quotes is ambiguous until the next byte, which may
      // live in the next chunk.
      quote_pending_ = true;
      record_open_ = true;
      chunk.remove_prefix(take + 1);
      continue;
    }
    size_t stop = chunk.find_first_of(specials_, 0, 4);
    size_t take = stop == std::string_view::npos ? chunk.size() : stop;
    if (take > 0) {
      field_.text.append(chunk.substr(0, take));
      record_open_ = true;
    }
    if (stop == std::string_view::npos) break;  // chunk consumed
    char c = chunk[take];
    chunk.remove_prefix(take + 1);
    if (c == separator_) {
      fields_.push_back(std::move(field_));
      field_ = CsvField();
      record_open_ = true;
    } else if (c == '"') {
      in_quotes_ = true;
      field_.quoted = true;
      record_open_ = true;
    } else {
      if (c == '\r') skip_lf_ = true;
      FAMTREE_RETURN_NOT_OK(Emit(emit));
    }
  }
  return Status::OK();
}

Status CsvStreamParser::Finish(const RecordFn& emit) {
  if (quote_pending_) {
    // A quote at end of input closes its region.
    quote_pending_ = false;
    in_quotes_ = false;
  }
  if (in_quotes_) {
    return Status::Invalid("unterminated quoted field at end of CSV input");
  }
  skip_lf_ = false;
  if (record_open_) return Emit(emit);
  return Status::OK();
}

Value ParseCsvField(const CsvField& field, const CsvOptions& options) {
  if (field.quoted) return Value(field.text);
  if (field.text.empty() || field.text == options.null_literal) {
    return Value::Null();
  }
  if (options.infer_types) {
    long long iv;
    if (ParseInt64(field.text, &iv)) return Value(static_cast<int64_t>(iv));
    double dv;
    if (ParseDouble(field.text, &dv)) return Value(dv);
  }
  return Value(field.text);
}

std::string EscapeCsvField(const std::string& field, const CsvOptions& options,
                           bool from_string_value) {
  bool needs_quotes = field.empty() || field == options.null_literal ||
                      field.find(options.separator) != std::string::npos ||
                      field.find('"') != std::string::npos ||
                      field.find('\n') != std::string::npos ||
                      field.find('\r') != std::string::npos;
  if (!needs_quotes && from_string_value && options.infer_types) {
    long long iv;
    double dv;
    needs_quotes = ParseInt64(field, &iv) || ParseDouble(field, &dv);
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

CsvRowDecoder::CsvRowDecoder(const CsvOptions& options, RowFn on_row)
    : options_(options), on_row_(std::move(on_row)) {}

Status CsvRowDecoder::OnRecord(std::vector<CsvField>* fields) {
  if (options_.has_header && !saw_header_) {
    saw_header_ = true;
    for (auto& f : *fields) names_.push_back(std::string(Trim(f.text)));
    return Status::OK();
  }
  // A record that is a single unquoted empty field is a blank line; a quoted
  // "" is a real one-cell record holding the empty string.
  if (fields->size() == 1 && !(*fields)[0].quoted &&
      Trim((*fields)[0].text).empty()) {
    return Status::OK();
  }
  if ((rows_ & 255) == 0) {
    FAMTREE_RETURN_NOT_OK(RunContext::Poll(options_.context));
  }
  if (names_.empty()) {
    // No header: the first data row fixes the width.
    for (size_t i = 0; i < fields->size(); ++i) {
      names_.push_back("c" + std::to_string(i));
    }
  }
  if (fields->size() != names_.size()) {
    return Status::Invalid("row " + std::to_string(rows_ + 1) + " has " +
                           std::to_string(fields->size()) +
                           " fields, expected " +
                           std::to_string(names_.size()));
  }
  std::vector<Value> row;
  row.reserve(fields->size());
  for (const auto& f : *fields) row.push_back(ParseCsvField(f, options_));
  ++rows_;
  return on_row_(std::move(row));
}

Status CsvRowDecoder::Finish() {
  if (options_.has_header && !saw_header_) {
    return Status::Invalid("empty CSV input");
  }
  return Status::OK();
}

Result<Relation> ReadCsvString(const std::string& text,
                               const CsvOptions& options) {
  size_t pos = 0;
  return ReadCsvChunks(
      [&text, &pos]() -> Result<std::string_view> {
        size_t take = std::min(text.size() - pos, kCsvIoChunkBytes);
        std::string_view chunk(text.data() + pos, take);
        pos += take;
        return chunk;
      },
      options);
}

Result<Relation> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::vector<char> buf(kCsvIoChunkBytes);
  return ReadCsvChunks(
      [&in, &buf]() -> Result<std::string_view> {
        in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
        if (in.bad()) return Status::IoError("read failed");
        return std::string_view(buf.data(),
                                static_cast<size_t>(in.gcount()));
      },
      options);
}

std::string WriteCsvString(const Relation& relation,
                           const CsvOptions& options) {
  std::string out;
  for (int c = 0; c < relation.num_columns(); ++c) {
    if (c) out += options.separator;
    // Header cells are never null-detected or type-inferred on read, so
    // they only need structural quoting.
    out += EscapeCsvField(relation.schema().name(c), options,
                          /*from_string_value=*/false);
  }
  out += '\n';
  for (int r = 0; r < relation.num_rows(); ++r) {
    for (int c = 0; c < relation.num_columns(); ++c) {
      if (c) out += options.separator;
      const Value& v = relation.Get(r, c);
      if (v.is_null()) {
        out += options.null_literal;
      } else {
        out += EscapeCsvField(v.ToString(), options, v.is_string());
      }
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Relation& relation, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << WriteCsvString(relation, options);
  return out.good() ? Status::OK() : Status::IoError("write failed: " + path);
}

}  // namespace famtree
