#include "relation/relation.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/strings.h"

namespace famtree {

namespace {

/// Hash of a row's projection onto `attrs`.
size_t ProjectionHash(const Relation& r, int row, const std::vector<int>& attrs) {
  size_t h = 0x12345;
  for (int a : attrs) h = HashCombine(h, r.Get(row, a).Hash());
  return h;
}

}  // namespace

Relation::Relation(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_columns());
}

Status Relation::AppendRow(std::vector<Value> row) {
  if (static_cast<int>(row.size()) != num_columns()) {
    return Status::Invalid("row has " + std::to_string(row.size()) +
                           " values, schema has " +
                           std::to_string(num_columns()));
  }
  for (int c = 0; c < num_columns(); ++c) {
    columns_[c].push_back(std::move(row[c]));
  }
  ++num_rows_;
  return Status::OK();
}

Status Relation::AppendRows(std::vector<std::vector<Value>> rows) {
  for (size_t i = 0; i < rows.size(); ++i) {
    if (static_cast<int>(rows[i].size()) != num_columns()) {
      return Status::Invalid("append row " + std::to_string(i) + " has " +
                             std::to_string(rows[i].size()) +
                             " values, schema has " +
                             std::to_string(num_columns()));
    }
  }
  for (auto& row : rows) {
    for (int c = 0; c < num_columns(); ++c) {
      columns_[c].push_back(std::move(row[c]));
    }
    ++num_rows_;
  }
  return Status::OK();
}

std::vector<Value> Relation::Row(int row) const {
  std::vector<Value> out;
  out.reserve(num_columns());
  for (int c = 0; c < num_columns(); ++c) out.push_back(Get(row, c));
  return out;
}

std::vector<Value> Relation::Project(int row, AttrSet attrs) const {
  std::vector<Value> out;
  for (int a : attrs.ToVector()) out.push_back(Get(row, a));
  return out;
}

bool Relation::AgreeOn(int i, int j, AttrSet attrs) const {
  for (int a : attrs.ToVector()) {
    if (!(Get(i, a) == Get(j, a))) return false;
  }
  return true;
}

int Relation::CountDistinct(AttrSet attrs) const {
  // Count groups without materializing them: buckets hold only one head
  // row per distinct projection (collision-safe via full comparison).
  std::vector<int> av = attrs.ToVector();
  std::unordered_map<size_t, std::vector<int>> heads;
  heads.reserve(static_cast<size_t>(num_rows_) * 2);
  int distinct = 0;
  for (int row = 0; row < num_rows_; ++row) {
    std::vector<int>& candidates = heads[ProjectionHash(*this, row, av)];
    bool seen = false;
    for (int head : candidates) {
      if (AgreeOn(head, row, attrs)) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      candidates.push_back(row);
      ++distinct;
    }
  }
  return distinct;
}

std::vector<std::vector<int>> Relation::GroupBy(AttrSet attrs) const {
  std::vector<int> av = attrs.ToVector();
  std::vector<std::vector<int>> groups;
  // Hash rows by projection; resolve collisions by full comparison.
  std::unordered_map<size_t, std::vector<int>> buckets;  // hash -> group ids
  buckets.reserve(static_cast<size_t>(num_rows_) * 2);
  for (int row = 0; row < num_rows_; ++row) {
    size_t h = ProjectionHash(*this, row, av);
    auto& candidates = buckets[h];
    bool placed = false;
    for (int gid : candidates) {
      if (AgreeOn(groups[gid][0], row, attrs)) {
        groups[gid].push_back(row);
        placed = true;
        break;
      }
    }
    if (!placed) {
      candidates.push_back(static_cast<int>(groups.size()));
      groups.push_back({row});
    }
  }
  return groups;
}

Relation Relation::Select(const std::vector<int>& rows) const {
  Relation out(schema_);
  for (int r : rows) {
    std::vector<Value> row = Row(r);
    // AppendRow cannot fail here: the arity matches by construction.
    out.AppendRow(std::move(row)).ok();
  }
  return out;
}

Relation Relation::ProjectColumns(AttrSet attrs) const {
  std::vector<int> av = attrs.ToVector();
  std::vector<Column> cols;
  for (int a : av) cols.push_back(schema_.column(a));
  Relation out{Schema(std::move(cols))};
  for (int r = 0; r < num_rows_; ++r) {
    std::vector<Value> row;
    row.reserve(av.size());
    for (int a : av) row.push_back(Get(r, a));
    out.AppendRow(std::move(row)).ok();
  }
  return out;
}

void Relation::InferTypes() {
  std::vector<Column> cols = schema_.columns();
  for (int c = 0; c < num_columns(); ++c) {
    ValueType t = ValueType::kNull;
    bool mixed = false;
    for (const Value& v : columns_[c]) {
      if (v.is_null()) continue;
      ValueType vt = v.type();
      // int and double merge to double.
      if (t == ValueType::kNull) {
        t = vt;
      } else if (t != vt) {
        if ((t == ValueType::kInt && vt == ValueType::kDouble) ||
            (t == ValueType::kDouble && vt == ValueType::kInt)) {
          t = ValueType::kDouble;
        } else {
          mixed = true;
          break;
        }
      }
    }
    cols[c].type = mixed ? ValueType::kNull : t;
  }
  schema_ = Schema(std::move(cols));
}

std::string Relation::ToPrettyString(int max_rows) const {
  std::vector<size_t> widths(num_columns());
  for (int c = 0; c < num_columns(); ++c) {
    widths[c] = schema_.name(c).size();
  }
  int shown = std::min(num_rows_, max_rows);
  for (int r = 0; r < shown; ++r) {
    for (int c = 0; c < num_columns(); ++c) {
      widths[c] = std::max(widths[c], Get(r, c).ToString().size());
    }
  }
  std::string out;
  for (int c = 0; c < num_columns(); ++c) {
    out += (c ? " | " : "| ") + PadRight(schema_.name(c), widths[c]);
  }
  out += " |\n";
  for (int c = 0; c < num_columns(); ++c) {
    out += (c ? "-+-" : "+-") + std::string(widths[c], '-');
  }
  out += "-+\n";
  for (int r = 0; r < shown; ++r) {
    for (int c = 0; c < num_columns(); ++c) {
      out += (c ? " | " : "| ") + PadRight(Get(r, c).ToString(), widths[c]);
    }
    out += " |\n";
  }
  if (shown < num_rows_) {
    out += "... (" + std::to_string(num_rows_ - shown) + " more rows)\n";
  }
  return out;
}

uint64_t RelationRowChain(const Relation& relation, int from_row, int to_row,
                          uint64_t chain) {
  size_t h = static_cast<size_t>(chain);
  for (int r = from_row; r < to_row; ++r) {
    for (int c = 0; c < relation.num_columns(); ++c) {
      h = HashCombine(h, relation.Get(r, c).Hash());
    }
  }
  return static_cast<uint64_t>(h);
}

uint64_t FinalizeRelationFingerprint(uint64_t chain, const Schema& schema,
                                     int num_rows) {
  size_t h = HashCombine(static_cast<size_t>(chain),
                         static_cast<size_t>(num_rows));
  h = HashCombine(h, static_cast<size_t>(schema.num_columns()));
  for (int c = 0; c < schema.num_columns(); ++c) {
    for (char ch : schema.name(c)) {
      h = HashCombine(h, static_cast<size_t>(ch));
    }
    h = HashCombine(h, static_cast<size_t>(schema.column(c).type));
  }
  return static_cast<uint64_t>(h);
}

uint64_t RelationFingerprint(const Relation& relation) {
  uint64_t chain = RelationRowChain(relation, 0, relation.num_rows(),
                                    kRelationChainSeed);
  return FinalizeRelationFingerprint(chain, relation.schema(),
                                     relation.num_rows());
}

RelationBuilder& RelationBuilder::AddRow(std::vector<Value> row) {
  if (first_error_.ok()) {
    Status st = relation_.AppendRow(std::move(row));
    if (!st.ok()) first_error_ = st;
  }
  return *this;
}

Result<Relation> RelationBuilder::Build() {
  if (!first_error_.ok()) return first_error_;
  relation_.InferTypes();
  return std::move(relation_);
}

}  // namespace famtree
