#include "relation/dataspace.h"

#include <map>

namespace famtree {

Result<Dataspace> AssembleDataspace(
    const std::vector<Relation>& sources,
    const std::vector<AttributeMatch>& matches) {
  if (sources.empty()) return Status::Invalid("no sources given");
  // Union schema: "source" first, then attributes in first-seen order.
  std::vector<std::string> names{"source"};
  std::map<std::string, int> index;
  for (const Relation& src : sources) {
    for (int c = 0; c < src.num_columns(); ++c) {
      const std::string& name = src.schema().name(c);
      if (name == "source") {
        return Status::Invalid(
            "source relations must not already have a 'source' column");
      }
      if (!index.count(name)) {
        index[name] = static_cast<int>(names.size());
        names.push_back(name);
      }
    }
  }
  RelationBuilder builder(names);
  for (size_t s = 0; s < sources.size(); ++s) {
    const Relation& src = sources[s];
    for (int r = 0; r < src.num_rows(); ++r) {
      std::vector<Value> row(names.size());
      row[0] = Value("s" + std::to_string(s));
      for (int c = 0; c < src.num_columns(); ++c) {
        row[index[src.schema().name(c)]] = src.Get(r, c);
      }
      builder.AddRow(std::move(row));
    }
  }
  Dataspace out;
  FAMTREE_ASSIGN_OR_RETURN(out.relation, builder.Build());
  for (const AttributeMatch& m : matches) {
    auto a = index.find(m.name_a);
    auto b = index.find(m.name_b);
    if (a == index.end() || b == index.end()) {
      return Status::NotFound("matched attribute '" + m.name_a + "'/'" +
                              m.name_b + "' missing from every source");
    }
    out.matched_columns.push_back({a->second, b->second});
  }
  return out;
}

}  // namespace famtree
