#include "relation/partition.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"

namespace famtree {

StrippedPartition::StrippedPartition(std::vector<std::vector<int>> classes)
    : classes_(std::move(classes)) {
  for (const auto& c : classes_) rows_in_classes_ += static_cast<int>(c.size());
}

StrippedPartition StrippedPartition::ForAttribute(const Relation& relation,
                                                  int attr) {
  return ForAttributeSet(relation, AttrSet::Single(attr));
}

StrippedPartition StrippedPartition::ForAttributeSet(const Relation& relation,
                                                     AttrSet attrs) {
  std::vector<std::vector<int>> groups = relation.GroupBy(attrs);
  std::vector<std::vector<int>> stripped;
  for (auto& g : groups) {
    if (g.size() >= 2) stripped.push_back(std::move(g));
  }
  return StrippedPartition(std::move(stripped));
}

StrippedPartition StrippedPartition::Product(const StrippedPartition& other,
                                             int num_rows) const {
  // TANE's linear-time partition product. `owner[row]` maps a row to its
  // class id in *this; rows outside any stripped class map to -1.
  std::vector<int> owner(num_rows, -1);
  for (size_t cid = 0; cid < classes_.size(); ++cid) {
    for (int row : classes_[cid]) owner[row] = static_cast<int>(cid);
  }
  // For each class of `other`, split it by owner id.
  std::vector<std::vector<int>> result;
  std::unordered_map<int, std::vector<int>> split;
  for (const auto& cls : other.classes_) {
    split.clear();
    for (int row : cls) {
      int o = owner[row];
      if (o >= 0) split[o].push_back(row);
    }
    for (auto& [o, rows] : split) {
      if (rows.size() >= 2) result.push_back(std::move(rows));
    }
  }
  return StrippedPartition(std::move(result));
}

bool StrippedPartition::FdHolds(const StrippedPartition& x,
                                const StrippedPartition& xy) {
  // X -> Y holds iff refining X's classes by Y does not break any class,
  // i.e. |classes| and covered rows coincide in cost terms:
  // e(X) == e(XY) with e = rows_in_classes - num_classes.
  return (x.rows_in_classes_ - x.num_classes()) ==
         (xy.rows_in_classes_ - xy.num_classes());
}

double StrippedPartition::FdError(const Relation& relation,
                                  AttrSet rhs) const {
  // g3(X -> Y): within each X-class, keep the plurality Y-value; all other
  // rows must be removed. Singleton X-classes never violate.
  int to_remove = 0;
  std::unordered_map<size_t, std::vector<std::pair<int, int>>> buckets;
  for (const auto& cls : classes_) {
    buckets.clear();  // hash -> list of (head row, count), collision-safe
    int best = 0;
    for (int row : cls) {
      size_t h = 0x9e3779b9;
      for (int a : rhs.ToVector()) {
        h = HashCombine(h, relation.Get(row, a).Hash());
      }
      auto& bucket = buckets[h];
      bool placed = false;
      for (auto& [head, count] : bucket) {
        if (relation.AgreeOn(head, row, rhs)) {
          best = std::max(best, ++count);
          placed = true;
          break;
        }
      }
      if (!placed) {
        bucket.push_back({row, 1});
        best = std::max(best, 1);
      }
    }
    to_remove += static_cast<int>(cls.size()) - best;
  }
  int n = relation.num_rows();
  return n == 0 ? 0.0 : static_cast<double>(to_remove) / n;
}

}  // namespace famtree
