#include "relation/partition.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"

namespace famtree {

namespace {

/// Reusable per-thread scratch for Product and the encoded FdError. All
/// arrays grow monotonically and are restored to their neutral state before
/// a call returns (owner validity via epoch stamps, counters via the
/// touched list), so no call ever pays a full-size zeroing pass and results
/// are independent of which pool thread runs the call.
struct PartitionScratch {
  /// owner[row] is valid iff owner_epoch[row] == epoch.
  std::vector<int> owner;
  std::vector<uint32_t> owner_epoch;
  uint32_t epoch = 0;

  /// Probe table over the left partition's class ids (Product) or over RHS
  /// codes (FdError). Zero outside calls; reset via `touched`.
  std::vector<int> count;
  std::vector<int> cursor;
  std::vector<int> touched;

  void StampOwners(int num_rows) {
    if (static_cast<int>(owner.size()) < num_rows) {
      owner.resize(num_rows);
      owner_epoch.resize(num_rows, 0);
    }
    if (++epoch == 0) {  // epoch wrapped: invalidate all stamps at once
      std::fill(owner_epoch.begin(), owner_epoch.end(), 0u);
      epoch = 1;
    }
  }

  void EnsureCounters(int n) {
    if (static_cast<int>(count.size()) < n) {
      count.resize(n, 0);
      cursor.resize(n);
    }
  }
};

thread_local PartitionScratch g_scratch;

}  // namespace

StrippedPartition::StrippedPartition(
    const std::vector<std::vector<int>>& classes) {
  class_offsets_.reserve(classes.size() + 1);
  class_offsets_.push_back(0);
  size_t total = 0;
  for (const auto& c : classes) total += c.size();
  row_indices_.reserve(total);
  for (const auto& c : classes) {
    row_indices_.insert(row_indices_.end(), c.begin(), c.end());
    class_offsets_.push_back(static_cast<int>(row_indices_.size()));
  }
}

StrippedPartition StrippedPartition::FromRowKeys(
    const std::vector<uint32_t>& keys, int num_keys) {
  std::vector<int> count(num_keys, 0);
  for (uint32_t k : keys) ++count[k];
  // Keys are dense ids in first-occurrence order, so emitting surviving
  // keys in id order reproduces the Value-based grouping's class order.
  std::vector<int> class_of_key(num_keys, -1);
  std::vector<int> offsets;
  offsets.push_back(0);
  int total = 0;
  for (int k = 0; k < num_keys; ++k) {
    if (count[k] >= 2) {
      class_of_key[k] = static_cast<int>(offsets.size()) - 1;
      total += count[k];
      offsets.push_back(total);
    }
  }
  std::vector<int> rows(total);
  std::vector<int> cursor(offsets.begin(), offsets.end() - 1);
  for (int row = 0; row < static_cast<int>(keys.size()); ++row) {
    int c = class_of_key[keys[row]];
    if (c >= 0) rows[cursor[c]++] = row;
  }
  return StrippedPartition(std::move(rows), std::move(offsets));
}

StrippedPartition StrippedPartition::ForAttribute(const Relation& relation,
                                                  int attr) {
  return ForAttributeSet(relation, AttrSet::Single(attr));
}

StrippedPartition StrippedPartition::ForAttributeSet(const Relation& relation,
                                                     AttrSet attrs) {
  std::vector<std::vector<int>> groups = relation.GroupBy(attrs);
  std::vector<std::vector<int>> stripped;
  for (auto& g : groups) {
    if (g.size() >= 2) stripped.push_back(std::move(g));
  }
  return StrippedPartition(stripped);
}

StrippedPartition StrippedPartition::ForAttribute(
    const EncodedRelation& encoded, int attr) {
  return FromRowKeys(encoded.codes(attr), encoded.dict_size(attr));
}

StrippedPartition StrippedPartition::ForAttributeSet(
    const EncodedRelation& encoded, AttrSet attrs) {
  std::vector<int> av = attrs.ToVector();
  if (av.size() == 1) return ForAttribute(encoded, av[0]);
  std::vector<uint32_t> keys;
  int num_keys = encoded.RowKeys(attrs, &keys);
  return FromRowKeys(keys, num_keys);
}

StrippedPartition StrippedPartition::Product(const StrippedPartition& other,
                                             int num_rows) const {
  // TANE's linear-time partition product over the flat layout. Rows of
  // *this are stamped with their class id ("owner"); each class of `other`
  // is then split by owner through the scratch probe table. Surviving
  // sub-classes are emitted in first-touch order — deterministic for any
  // thread count because the scratch state never leaks between calls.
  PartitionScratch& s = g_scratch;
  s.StampOwners(num_rows);
  int nc = num_classes();
  for (int c = 0; c < nc; ++c) {
    const int* begin = class_begin(c);
    const int* end = begin + class_size(c);
    for (const int* it = begin; it != end; ++it) {
      s.owner[*it] = c;
      s.owner_epoch[*it] = s.epoch;
    }
  }
  s.EnsureCounters(nc);
  std::vector<int> out_rows;
  out_rows.reserve(std::min(num_rows_in_classes(),
                            other.num_rows_in_classes()));
  std::vector<int> out_offsets;
  out_offsets.push_back(0);
  for (int oc = 0; oc < other.num_classes(); ++oc) {
    const int* begin = other.class_begin(oc);
    const int* end = begin + other.class_size(oc);
    s.touched.clear();
    for (const int* it = begin; it != end; ++it) {
      if (s.owner_epoch[*it] != s.epoch) continue;
      int o = s.owner[*it];
      if (s.count[o]++ == 0) s.touched.push_back(o);
    }
    // Reserve one output slot range per surviving owner, in first-touch
    // order, then place the rows through per-owner cursors.
    for (int o : s.touched) {
      if (s.count[o] >= 2) {
        s.cursor[o] = static_cast<int>(out_rows.size());
        out_rows.resize(out_rows.size() + s.count[o]);
        out_offsets.push_back(static_cast<int>(out_rows.size()));
      } else {
        s.cursor[o] = -1;
      }
    }
    for (const int* it = begin; it != end; ++it) {
      if (s.owner_epoch[*it] != s.epoch) continue;
      int o = s.owner[*it];
      if (s.cursor[o] >= 0) out_rows[s.cursor[o]++] = *it;
    }
    for (int o : s.touched) s.count[o] = 0;
  }
  return StrippedPartition(std::move(out_rows), std::move(out_offsets));
}

int StrippedPartition::MaxClassSize() const {
  int largest = 0;
  for (int c = 0; c < num_classes(); ++c) {
    largest = std::max(largest, class_size(c));
  }
  return largest;
}

std::vector<std::vector<int>> StrippedPartition::classes() const {
  std::vector<std::vector<int>> out(num_classes());
  for (int c = 0; c < num_classes(); ++c) {
    out[c].assign(class_begin(c), class_begin(c) + class_size(c));
  }
  return out;
}

bool StrippedPartition::FdHolds(const StrippedPartition& x,
                                const StrippedPartition& xy) {
  // X -> Y holds iff refining X's classes by Y does not break any class,
  // i.e. |classes| and covered rows coincide in cost terms:
  // e(X) == e(XY) with e = rows_in_classes - num_classes.
  return (x.num_rows_in_classes() - x.num_classes()) ==
         (xy.num_rows_in_classes() - xy.num_classes());
}

double StrippedPartition::FdError(const Relation& relation,
                                  AttrSet rhs) const {
  // g3(X -> Y): within each X-class, keep the plurality Y-value; all other
  // rows must be removed. Singleton X-classes never violate.
  int to_remove = 0;
  std::unordered_map<size_t, std::vector<std::pair<int, int>>> buckets;
  for (int c = 0; c < num_classes(); ++c) {
    const int* begin = class_begin(c);
    const int* end = begin + class_size(c);
    buckets.clear();  // hash -> list of (head row, count), collision-safe
    int best = 0;
    for (const int* it = begin; it != end; ++it) {
      int row = *it;
      size_t h = 0x9e3779b9;
      for (int a : rhs.ToVector()) {
        h = HashCombine(h, relation.Get(row, a).Hash());
      }
      auto& bucket = buckets[h];
      bool placed = false;
      for (auto& [head, count] : bucket) {
        if (relation.AgreeOn(head, row, rhs)) {
          best = std::max(best, ++count);
          placed = true;
          break;
        }
      }
      if (!placed) {
        bucket.push_back({row, 1});
        best = std::max(best, 1);
      }
    }
    to_remove += class_size(c) - best;
  }
  int n = relation.num_rows();
  return n == 0 ? 0.0 : static_cast<double>(to_remove) / n;
}

double StrippedPartition::FdError(const EncodedRelation& encoded,
                                  AttrSet rhs) const {
  // Same g3 computation over dictionary codes: the plurality count per
  // X-class comes out of a scratch counter array indexed by RHS code — no
  // hashing, no Value comparisons, no per-class map allocation. Equal
  // codes are exactly equal Values, so the removal count (and the returned
  // error) is bit-identical to the Value-based overload.
  std::vector<int> av = rhs.ToVector();
  const std::vector<uint32_t>* codes;
  std::vector<uint32_t> combined;
  int num_codes;
  if (av.size() == 1) {
    codes = &encoded.codes(av[0]);
    num_codes = encoded.dict_size(av[0]);
  } else {
    num_codes = encoded.RowKeys(rhs, &combined);
    codes = &combined;
  }
  PartitionScratch& s = g_scratch;
  s.EnsureCounters(num_codes);
  int to_remove = 0;
  for (int c = 0; c < num_classes(); ++c) {
    const int* begin = class_begin(c);
    const int* end = begin + class_size(c);
    s.touched.clear();
    int best = 0;
    for (const int* it = begin; it != end; ++it) {
      uint32_t code = (*codes)[*it];
      if (s.count[code]++ == 0) s.touched.push_back(static_cast<int>(code));
      best = std::max(best, s.count[code]);
    }
    for (int code : s.touched) s.count[code] = 0;
    to_remove += class_size(c) - best;
  }
  int n = encoded.num_rows();
  return n == 0 ? 0.0 : static_cast<double>(to_remove) / n;
}

}  // namespace famtree
