#ifndef FAMTREE_RELATION_ENCODED_RELATION_H_
#define FAMTREE_RELATION_ENCODED_RELATION_H_

#include <cstdint>
#include <vector>

#include "common/attr_set.h"
#include "relation/relation.h"
#include "relation/value.h"

namespace famtree {

/// Dictionary-encoded columnar view of a Relation: per column, a flat
/// std::vector<uint32_t> of codes plus a code -> Value dictionary. Built
/// once per relation, it turns every equality-driven primitive of the
/// discovery hot path (grouping, partition building, difference sets,
/// evidence sets) into integer array scans instead of std::variant walks
/// and heap-string comparisons.
///
/// Encoding contract: two cells of a column receive the same code iff their
/// Values compare equal under Value::operator== — including the
/// cross-representation numeric rule (Value(1) and Value(1.0) share one
/// code) and null semantics (all nulls of a column share one code). Codes
/// are dense, 0-based, and assigned in first-occurrence row order, so
/// grouping by code reproduces Relation::GroupBy's group order exactly.
/// The Value-based primitives on Relation remain the differential-test
/// oracle for every encoded path (tests/encoded_property_test.cc).
class EncodedRelation {
 public:
  /// Encodes every column of `relation`. The encoding is self-contained
  /// (dictionaries copy the representative Values); `relation` does not
  /// need to outlive the encoding.
  explicit EncodedRelation(const Relation& relation);

  /// Encodes only the columns in `attrs`; the rest get empty code arrays
  /// and dictionaries and must not be touched. For miners that restrict
  /// themselves to a column subset up front (e.g. numeric-only OD
  /// discovery), a local subset encoding skips the dictionary hashing of
  /// every ignored column — the dominant cost for wide mixed-type
  /// relations.
  EncodedRelation(const Relation& relation, AttrSet attrs);

  /// Assembles an encoding from already-built parts (the out-of-core
  /// ingester's shard merge). The caller guarantees the encoding contract:
  /// per column, codes dense and in first-occurrence row order, same code
  /// iff the Values compare equal, dictionaries holding the first
  /// occurrence's representative.
  EncodedRelation(int num_rows, std::vector<std::vector<uint32_t>> columns,
                  std::vector<std::vector<Value>> dicts);

  /// Incremental re-encode after a batch append: `base` must be the full
  /// encoding of `relation`'s first base.num_rows() rows, and `relation`
  /// must have grown by pure row appends since. Copies base's code arrays
  /// and dictionaries, rebuilds the per-column hash buckets from the
  /// dictionaries (O(distinct values), not O(rows)), and encodes only the
  /// appended rows under the same dictionary discipline — bit-identical to
  /// EncodedRelation(relation) built cold. Fails on a subset or mutated
  /// (SetCode) base, where the dense first-occurrence invariant needed for
  /// the splice no longer holds.
  static Result<EncodedRelation> Appended(const EncodedRelation& base,
                                          const Relation& relation);

  int num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  /// The flat code array of one column (size num_rows()).
  const std::vector<uint32_t>& codes(int col) const { return columns_[col]; }
  uint32_t code(int row, int col) const { return columns_[col][row]; }

  /// Number of distinct values (== codes) in a column.
  int dict_size(int col) const {
    return static_cast<int>(dicts_[col].size());
  }

  /// The representative Value of a code (the first occurrence's Value).
  const Value& Decode(int col, uint32_t code) const {
    return dicts_[col][code];
  }

  /// Dense per-row keys for the projection onto `attrs`: fills
  /// keys[row] in [0, k) where equal keys correspond exactly to equal
  /// projections, ids assigned in first-occurrence row order. Returns k.
  /// This is the shared primitive behind GroupBy, CountDistinct and the
  /// encoded partition builders. An empty `attrs` puts every row in one
  /// group (mirroring Relation::GroupBy); attributes must be in-schema.
  int RowKeys(AttrSet attrs, std::vector<uint32_t>* keys) const;

  /// Groups row indices by equal projection onto `attrs`; identical output
  /// (content and order) to Relation::GroupBy on the source relation.
  std::vector<std::vector<int>> GroupBy(AttrSet attrs) const;

  /// Number of distinct projections onto `attrs`; identical to
  /// Relation::CountDistinct on the source relation.
  int CountDistinct(AttrSet attrs) const;

  /// Rebinds cell (row, col) to another code that already exists in the
  /// column's dictionary. Repair-style writes copy values that already
  /// occur in the column, so their codes are maintainable in place — no
  /// re-encode of the working copy. After the first rebind the column's
  /// codes are no longer dense in first-occurrence order, so RowKeys /
  /// CountDistinct re-densify that column instead of trusting the
  /// invariant (tracked per column: untouched columns keep the fast
  /// path); the equality contract (same code iff equal Value) is
  /// untouched.
  void SetCode(int row, int col, uint32_t code) {
    columns_[col][row] = code;
    mutated_.Add(col);
  }

 private:
  bool IsMutated(int col) const { return mutated_.Contains(col); }

  int num_rows_ = 0;
  std::vector<std::vector<uint32_t>> columns_;
  std::vector<std::vector<Value>> dicts_;
  AttrSet mutated_;  // one bit per rebound column
};

}  // namespace famtree

#endif  // FAMTREE_RELATION_ENCODED_RELATION_H_
