#ifndef FAMTREE_RELATION_DATASPACE_H_
#define FAMTREE_RELATION_DATASPACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relation/relation.h"

namespace famtree {

/// A pair of attributes from two sources treated as synonyms when the
/// dataspace is assembled ("region" in s1 matches "city" in s2).
struct AttributeMatch {
  std::string name_a;
  std::string name_b;
};

/// Dataspace assembly (Section 3.4 [43], [51]): co-locates tuples from
/// heterogeneous sources in one relation over the union of their schemas,
/// leaving absent attributes null. Synonym attributes stay *separate*
/// columns (CDs compare across them via similarity functions); the
/// `matches` list is returned alongside so callers can build
/// SimilarityFunction pairs. A "source" column records provenance.
struct Dataspace {
  Relation relation;
  /// Column index pairs corresponding to the requested matches.
  std::vector<std::pair<int, int>> matched_columns;
};

/// Merges `sources` into a dataspace. Attribute identity is by name;
/// `matches` declares cross-source synonyms to surface as column pairs.
/// Source relations keep their row order; rows are tagged s0, s1, ... in
/// the prepended "source" column.
Result<Dataspace> AssembleDataspace(
    const std::vector<Relation>& sources,
    const std::vector<AttributeMatch>& matches = {});

}  // namespace famtree

#endif  // FAMTREE_RELATION_DATASPACE_H_
