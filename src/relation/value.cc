#include "relation/value.h"

#include <cmath>
#include <functional>
#include <limits>

#include "common/strings.h"

namespace famtree {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "?";
}

double Value::AsNumeric() const {
  switch (type()) {
    case ValueType::kInt: return static_cast<double>(as_int());
    case ValueType::kDouble: return as_double();
    default: return std::numeric_limits<double>::quiet_NaN();
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "∅";
    case ValueType::kInt: return std::to_string(as_int());
    case ValueType::kDouble: return FormatDouble(as_double());
    case ValueType::kString: return as_string();
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x6e756c6cULL;
    case ValueType::kInt:
      // Hash ints through their double image unconditionally: operator==
      // compares int-vs-double through AsNumeric(), so an int64 above 2^53
      // whose double image loses precision can still compare equal to that
      // double and must hash identically (distinct giant ints may collide
      // here, which equality-checking consumers resolve by comparison).
      return std::hash<double>()(static_cast<double>(as_int()));
    case ValueType::kDouble:
      return std::hash<double>()(as_double());
    case ValueType::kString:
      return HashCombine(0x73747221ULL, std::hash<std::string>()(as_string()));
  }
  return 0;
}

bool operator==(const Value& a, const Value& b) {
  ValueType ta = a.type(), tb = b.type();
  if (ta == tb) {
    switch (ta) {
      case ValueType::kNull: return true;
      case ValueType::kInt: return a.as_int() == b.as_int();
      case ValueType::kDouble: return a.as_double() == b.as_double();
      case ValueType::kString: return a.as_string() == b.as_string();
    }
  }
  if (a.is_numeric() && b.is_numeric()) return a.AsNumeric() == b.AsNumeric();
  return false;
}

bool operator<(const Value& a, const Value& b) {
  auto rank = [](const Value& v) {
    switch (v.type()) {
      case ValueType::kNull: return 0;
      case ValueType::kInt:
      case ValueType::kDouble: return 1;
      case ValueType::kString: return 2;
    }
    return 3;
  };
  int ra = rank(a), rb = rank(b);
  if (ra != rb) return ra < rb;
  switch (ra) {
    case 0: return false;  // null == null
    case 1: {
      // Cross-type numeric comparison; exact for the magnitudes we use.
      if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
        return a.as_int() < b.as_int();
      }
      return a.AsNumeric() < b.AsNumeric();
    }
    default: return a.as_string() < b.as_string();
  }
}

}  // namespace famtree
