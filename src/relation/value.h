#ifndef FAMTREE_RELATION_VALUE_H_
#define FAMTREE_RELATION_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/hash.h"

namespace famtree {

/// Runtime type of a Value.
enum class ValueType { kNull = 0, kInt, kDouble, kString };

const char* ValueTypeName(ValueType t);

/// A dynamically typed cell value. Relations in this library are small,
/// dynamically-typed tables in the style of data-profiling tools (Metanome,
/// etc.): each cell holds null, a 64-bit integer, a double or a string.
///
/// Ordering: null sorts before everything; numerics (int/double) compare
/// numerically across the two representations; strings compare
/// lexicographically; numerics sort before strings. This gives Value a total
/// order so it can key ordered containers and drive order dependencies.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(int v) : v_(static_cast<int64_t>(v)) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(const char* v) : v_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (v_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt;
      case 2: return ValueType::kDouble;
      default: return ValueType::kString;
    }
  }

  bool is_null() const { return v_.index() == 0; }
  bool is_numeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }
  bool is_string() const { return type() == ValueType::kString; }

  int64_t as_int() const { return std::get<int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  /// Numeric view of the value: ints widen to double. Returns NaN for null
  /// and for strings (callers that care use is_numeric() first).
  double AsNumeric() const;

  /// Display form: "∅" for null, otherwise the literal.
  std::string ToString() const;

  size_t Hash() const;

  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b);
  friend bool operator<=(const Value& a, const Value& b) {
    return a < b || a == b;
  }
  friend bool operator>(const Value& a, const Value& b) { return b < a; }
  friend bool operator>=(const Value& a, const Value& b) { return b <= a; }

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace famtree

#endif  // FAMTREE_RELATION_VALUE_H_
