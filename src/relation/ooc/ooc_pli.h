#ifndef FAMTREE_RELATION_OOC_OOC_PLI_H_
#define FAMTREE_RELATION_OOC_OOC_PLI_H_

#include <cstdint>

#include "common/run_context.h"
#include "common/status.h"
#include "relation/partition.h"
#include "relation/ooc/sharded_relation.h"

namespace famtree {

/// Builds the stripped partition of one attribute out of core: each shard
/// becomes a (code, row)-sorted run that stays resident while the budget
/// has headroom and spills to an unlinked temp file otherwise (always, when
/// the relation was ingested with force_spill), and the runs are k-way
/// merged into the flat-CSR StrippedPartition layout. The output is
/// bit-identical — row for row, offset for offset — to
/// StrippedPartition::ForAttribute on the materialized encoding, whatever
/// the budget, chunking, or spill pattern was.
///
/// Run residency is charged to the context's budget with plain TryCharge
/// (spill-instead-of-fail, never latching) and released after the merge;
/// the final partition's footprint is charged by PliCache at "pli_build"
/// as usual. Spill writes pass the "ooc_spill" fault point. `spill_bytes`
/// (nullable) accumulates the run bytes written.
Result<StrippedPartition> BuildAttributePliOoc(
    const ShardedEncodedRelation& sharded, int attr, RunContext* ctx,
    int64_t* spill_bytes = nullptr);

}  // namespace famtree

#endif  // FAMTREE_RELATION_OOC_OOC_PLI_H_
