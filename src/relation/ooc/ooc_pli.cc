#include "relation/ooc/ooc_pli.h"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "relation/ooc/spill.h"

namespace famtree {

namespace {

/// Entries a spilled run's buffered reader refills at a time (64 KiB).
constexpr size_t kRunReadEntries = 8 * 1024;

/// One sorted (code, row) run, packed as (code << 32) | row so the merge
/// orders by code first and by global row within a code.
struct Run {
  std::vector<uint64_t> resident;  // empty when spilled
  uint64_t offset = 0;             // spill-file offset when spilled
  size_t count = 0;
  size_t charged = 0;  // budget bytes held for residency
};

/// Sequential reader over a run, buffered for the spilled case.
class RunReader {
 public:
  RunReader(const Run& run, const SpillFile& file) : run_(run), file_(file) {
    if (run_.resident.empty() && run_.count > 0) {
      buffer_.reserve(std::min(run_.count, kRunReadEntries));
    }
  }

  bool Done() const { return next_ == run_.count; }

  Result<uint64_t> Next() {
    size_t i = next_++;
    if (!run_.resident.empty()) return run_.resident[i];
    size_t rel = i - buffer_base_;
    if (i < buffer_base_ || rel >= buffer_.size()) {
      buffer_base_ = i;
      size_t n = std::min(run_.count - i, kRunReadEntries);
      buffer_.resize(n);
      FAMTREE_RETURN_NOT_OK(file_.ReadAt(run_.offset + i * sizeof(uint64_t),
                                         buffer_.data(),
                                         n * sizeof(uint64_t)));
      rel = 0;
    }
    return buffer_[rel];
  }

 private:
  const Run& run_;
  const SpillFile& file_;
  size_t next_ = 0;
  size_t buffer_base_ = 0;
  std::vector<uint64_t> buffer_;
};

}  // namespace

Result<StrippedPartition> BuildAttributePliOoc(
    const ShardedEncodedRelation& sharded, int attr, RunContext* ctx,
    int64_t* spill_bytes) {
  MemoryBudget* budget = ctx != nullptr ? ctx->memory_budget() : nullptr;
  std::vector<Run> runs(sharded.num_shards());
  SpillFile run_file;  // created on first spill; unlinked, so self-cleaning
  size_t charged_total = 0;
  auto release_runs = [&]() {
    if (budget != nullptr && charged_total > 0) budget->Release(charged_total);
  };

  // Phase 1: one sorted run per shard, spilled under pressure.
  std::vector<uint32_t> codes;
  for (int s = 0; s < sharded.num_shards(); ++s) {
    Status st = sharded.LoadShardColumn(s, attr, &codes);
    if (!st.ok()) {
      release_runs();
      return RunContext::Fail(ctx, st);
    }
    Run& run = runs[s];
    run.count = codes.size();
    uint64_t base = static_cast<uint64_t>(sharded.shard_row_begin(s));
    std::vector<uint64_t> packed(codes.size());
    for (size_t i = 0; i < codes.size(); ++i) {
      packed[i] = (static_cast<uint64_t>(codes[i]) << 32) | (base + i);
    }
    std::sort(packed.begin(), packed.end());
    size_t bytes = packed.size() * sizeof(uint64_t);
    bool keep = !sharded.force_spill() &&
                (budget == nullptr || budget->TryCharge(bytes));
    if (keep) {
      run.charged = budget != nullptr ? bytes : 0;
      charged_total += run.charged;
      run.resident = std::move(packed);
      continue;
    }
    // Spill the run: the budget (or the force_spill knob) says this slice
    // of the sort must not stay resident.
    Status fault = RunContext::FaultPoint(ctx, "ooc_spill");
    if (!fault.ok()) {
      release_runs();
      return fault;
    }
    if (!run_file.is_open()) {
      Result<SpillFile> created = SpillFile::Create(sharded.spill_dir());
      if (!created.ok()) {
        release_runs();
        return RunContext::Fail(ctx, created.status());
      }
      run_file = std::move(created).value();
    }
    Result<uint64_t> off = run_file.Append(packed.data(), bytes);
    if (!off.ok()) {
      release_runs();
      return RunContext::Fail(ctx, off.status());
    }
    run.offset = *off;
    if (spill_bytes != nullptr) *spill_bytes += static_cast<int64_t>(bytes);
  }

  // Phase 2: k-way merge in global (code, row) order, stripping singleton
  // classes, into the same CSR arrays FromRowKeys would emit.
  std::vector<RunReader> readers;
  readers.reserve(runs.size());
  for (const Run& run : runs) readers.emplace_back(run, run_file);
  using HeapItem = std::pair<uint64_t, int>;  // (packed, run index)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>>
      heap;
  for (size_t r = 0; r < readers.size(); ++r) {
    if (readers[r].Done()) continue;
    Result<uint64_t> head = readers[r].Next();
    if (!head.ok()) {
      release_runs();
      return RunContext::Fail(ctx, head.status());
    }
    heap.emplace(*head, static_cast<int>(r));
  }
  std::vector<int> row_indices;
  std::vector<int> class_offsets;
  class_offsets.push_back(0);
  uint32_t cur_code = 0;
  bool have_class = false;
  size_t class_start = 0;
  auto close_class = [&]() {
    if (!have_class) return;
    if (row_indices.size() - class_start >= 2) {
      class_offsets.push_back(static_cast<int>(row_indices.size()));
    } else {
      row_indices.resize(class_start);  // singletons are stripped
    }
  };
  while (!heap.empty()) {
    auto [packed, r] = heap.top();
    heap.pop();
    uint32_t code = static_cast<uint32_t>(packed >> 32);
    int row = static_cast<int>(packed & 0xffffffffu);
    if (!have_class || code != cur_code) {
      close_class();
      cur_code = code;
      have_class = true;
      class_start = row_indices.size();
    }
    row_indices.push_back(row);
    if (!readers[r].Done()) {
      Result<uint64_t> next = readers[r].Next();
      if (!next.ok()) {
        release_runs();
        return RunContext::Fail(ctx, next.status());
      }
      heap.emplace(*next, r);
    }
  }
  close_class();
  release_runs();
  row_indices.shrink_to_fit();
  return StrippedPartition::FromCsr(std::move(row_indices),
                                    std::move(class_offsets));
}

}  // namespace famtree
