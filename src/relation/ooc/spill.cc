#include "relation/ooc/spill.h"

#include <errno.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>

#include <utility>
#include <vector>

namespace famtree {

std::string DefaultSpillDir() {
  const char* tmpdir = getenv("TMPDIR");
  if (tmpdir != nullptr && tmpdir[0] != '\0') return tmpdir;
#ifdef FAMTREE_SPILL_DIR
  return FAMTREE_SPILL_DIR;
#else
  return "/tmp";
#endif
}

Result<SpillFile> SpillFile::Create(const std::string& dir) {
  std::string base = dir.empty() ? DefaultSpillDir() : dir;
  std::string tmpl = base + "/famtree-spill-XXXXXX";
  std::vector<char> path(tmpl.begin(), tmpl.end());
  path.push_back('\0');
  int fd = mkstemp(path.data());
  if (fd < 0) {
    return Status::IoError("cannot create spill file in '" + base +
                           "': " + strerror(errno));
  }
  // Unlink right away: the file lives as long as the descriptor.
  unlink(path.data());
  SpillFile out;
  out.fd_ = fd;
  return out;
}

SpillFile::SpillFile(SpillFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), size_(std::exchange(other.size_, 0)) {}

SpillFile& SpillFile::operator=(SpillFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

SpillFile::~SpillFile() {
  if (fd_ >= 0) close(fd_);
}

Result<uint64_t> SpillFile::Append(const void* data, size_t bytes) {
  if (fd_ < 0) return Status::IoError("spill file not open");
  uint64_t offset = size_;
  const char* p = static_cast<const char*>(data);
  size_t left = bytes;
  uint64_t at = offset;
  while (left > 0) {
    ssize_t n = pwrite(fd_, p, left, static_cast<off_t>(at));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("spill write failed: ") +
                             strerror(errno));
    }
    p += n;
    at += static_cast<uint64_t>(n);
    left -= static_cast<size_t>(n);
  }
  size_ += bytes;
  return offset;
}

Status SpillFile::ReadAt(uint64_t offset, void* data, size_t bytes) const {
  if (fd_ < 0) return Status::IoError("spill file not open");
  char* p = static_cast<char*>(data);
  size_t left = bytes;
  uint64_t at = offset;
  while (left > 0) {
    ssize_t n = pread(fd_, p, left, static_cast<off_t>(at));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("spill read failed: ") +
                             strerror(errno));
    }
    if (n == 0) return Status::IoError("spill read past end of file");
    p += n;
    at += static_cast<uint64_t>(n);
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace famtree
