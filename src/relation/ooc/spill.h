#ifndef FAMTREE_RELATION_OOC_SPILL_H_
#define FAMTREE_RELATION_OOC_SPILL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace famtree {

/// Directory spill files are created in, resolved in precedence order: the
/// caller's explicit override (IngestOptions::spill_dir), the TMPDIR
/// environment variable, the FAMTREE_SPILL_DIR compile-time default (the
/// CMake cache option of the same name), then "/tmp".
std::string DefaultSpillDir();

/// An anonymous temporary file for encoded-shard and PLI-run spills:
/// created with mkstemp and unlinked immediately, so the kernel reclaims
/// the bytes when the descriptor closes no matter how the process exits —
/// a failed run never leaves spill files behind. Appends go to the end;
/// reads are positional (pread), so concurrent readers share no cursor.
class SpillFile {
 public:
  /// Creates an unlinked temp file in `dir` (empty = DefaultSpillDir()).
  static Result<SpillFile> Create(const std::string& dir);

  SpillFile() = default;
  SpillFile(SpillFile&& other) noexcept;
  SpillFile& operator=(SpillFile&& other) noexcept;
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  ~SpillFile();

  bool is_open() const { return fd_ >= 0; }
  /// Bytes appended so far.
  uint64_t size() const { return size_; }

  /// Appends `bytes` bytes; returns the offset they start at.
  Result<uint64_t> Append(const void* data, size_t bytes);

  /// Reads exactly `bytes` bytes starting at `offset`.
  Status ReadAt(uint64_t offset, void* data, size_t bytes) const;

 private:
  int fd_ = -1;
  uint64_t size_ = 0;
};

}  // namespace famtree

#endif  // FAMTREE_RELATION_OOC_SPILL_H_
