#include "relation/ooc/sharded_relation.h"

#include <string.h>

#include <algorithm>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "common/strings.h"

namespace famtree {

namespace {

/// Approximate resident bytes of one new dictionary entry (the budget is an
/// accrual account, not an allocator; close is good enough).
size_t DictEntryBytes(const Value& v) {
  return sizeof(Value) + (v.is_string() ? v.as_string().size() : 0);
}

}  // namespace

/// Streaming builder: drives the incremental CSV parser, encodes each row
/// against growing per-column dictionaries with exactly EncodedRelation's
/// hash-bucket + full-comparison discipline, and closes fixed-size shards
/// that stay resident under the budget or spill.
class ShardedEncodedRelation::Ingester {
 public:
  explicit Ingester(IngestOptions options)
      : options_(std::move(options)),
        owned_(new ShardedEncodedRelation()),
        rel_(owned_.get()),
        decoder_(MakeCsvOptions(),
                 [this](std::vector<Value>&& row) {
                   return OnRow(std::move(row));
                 }) {
    rel_->force_spill_ = options_.force_spill;
    rel_->spill_dir_ =
        options_.spill_dir.empty() ? DefaultSpillDir() : options_.spill_dir;
    MemoryBudget* budget =
        options_.context ? options_.context->memory_budget() : nullptr;
    rel_->ingest_budget_ = budget;
    if (options_.shard_rows < 1) options_.shard_rows = 1;
  }

  /// Append-resume mode: continues an existing relation's encoder state —
  /// dictionaries (hash buckets rebuilt from the dictionaries themselves),
  /// type fold, row counter, and fingerprint chain — so the delta rows get
  /// codes exactly as they would have in one uninterrupted ingest.
  Ingester(ShardedEncodedRelation* existing, IngestOptions options)
      : options_(std::move(options)),
        rel_(existing),
        decoder_(MakeCsvOptions(),
                 [this](std::vector<Value>&& row) {
                   return OnRow(std::move(row));
                 }) {
    if (options_.shard_rows < 1) options_.shard_rows = 1;
    // Spill settings stay the relation's own. Adopt the append context's
    // budget as the residency account only if ingest never had one;
    // otherwise the append must run under the original budget.
    if (rel_->ingest_budget_ == nullptr && options_.context != nullptr) {
      rel_->ingest_budget_ = options_.context->memory_budget();
    }
    int nc = rel_->num_columns();
    num_rows_ = rel_->num_rows_;
    chain_ = rel_->chain_;
    if (nc > 0) {
      initialized_ = true;
      types_ = rel_->fold_types_;
      mixed_ = rel_->fold_mixed_;
      buckets_.resize(nc);
      for (int c = 0; c < nc; ++c) {
        const std::vector<Value>& dict = rel_->dicts_[c];
        buckets_[c].reserve(dict.size() * 2);
        for (uint32_t code = 0; code < dict.size(); ++code) {
          buckets_[c][dict[code].Hash()].push_back(code);
        }
      }
      cur_cols_.resize(nc);
      for (auto& col : cur_cols_) col.reserve(options_.shard_rows);
    }
  }

  Status Run(const std::function<Result<std::string_view>()>& next) {
    CsvStreamParser parser(options_.csv.separator);
    auto emit = [this](std::vector<CsvField>* fields) {
      return decoder_.OnRecord(fields);
    };
    MemoryBudget* budget =
        options_.context ? options_.context->memory_budget() : nullptr;
    for (;;) {
      FAMTREE_ASSIGN_OR_RETURN(std::string_view chunk, next());
      if (chunk.empty()) break;
      // The raw input is transient: charged while the chunk is being
      // parsed/encoded, then released — only the encoded shards and
      // dictionaries stay on the books. This is what lets a file larger
      // than the whole budget stream through. Resident shards yield
      // (spill) when the chunk needs the headroom they occupy.
      FAMTREE_RETURN_NOT_OK(
          rel_->ChargeWithSpill(options_.context, chunk.size(), "csv_rows"));
      Status st = parser.Feed(chunk, emit);
      if (budget != nullptr) budget->Release(chunk.size());
      FAMTREE_RETURN_NOT_OK(st);
      rel_->stats_.bytes_read += static_cast<int64_t>(chunk.size());
    }
    FAMTREE_RETURN_NOT_OK(parser.Finish(emit));
    FAMTREE_RETURN_NOT_OK(decoder_.Finish());
    return Status::OK();
  }

  Result<std::shared_ptr<ShardedEncodedRelation>> Finish() {
    FAMTREE_RETURN_NOT_OK(CloseShard());
    if (!initialized_ && !decoder_.names().empty()) {
      // Header but zero data rows: the schema is still known.
      InitColumns(static_cast<int>(decoder_.names().size()));
    }
    FAMTREE_RETURN_NOT_OK(FlushDictCharge());
    int nc = initialized_ ? static_cast<int>(types_.size()) : 0;
    std::vector<Column> cols(nc);
    for (int c = 0; c < nc; ++c) {
      cols[c].name = decoder_.names()[c];
      cols[c].type = mixed_[c] ? ValueType::kNull : types_[c];
    }
    rel_->schema_ = Schema(std::move(cols));
    Seal();
    return std::move(owned_);
  }

  /// Append-mode finish: validates the delta's header against the existing
  /// schema, refreshes the inferred column types (an append can widen
  /// int -> double or break uniformity), and refinalizes the fingerprint
  /// from the extended cell chain.
  Status FinishAppend() {
    FAMTREE_RETURN_NOT_OK(CloseShard());
    FAMTREE_RETURN_NOT_OK(FlushDictCharge());
    int nc = rel_->num_columns();
    if (nc > 0 && options_.csv.has_header && !decoder_.names().empty()) {
      if (static_cast<int>(decoder_.names().size()) != nc) {
        return Status::Invalid("append header has " +
                               std::to_string(decoder_.names().size()) +
                               " columns, relation has " + std::to_string(nc));
      }
      for (int c = 0; c < nc; ++c) {
        if (decoder_.names()[c] != rel_->schema_.name(c)) {
          return Status::Invalid("append header column " + std::to_string(c) +
                                 " is '" + decoder_.names()[c] +
                                 "', relation has '" + rel_->schema_.name(c) +
                                 "'");
        }
      }
    }
    if (nc == 0 && initialized_) {
      // Appending onto an empty, schema-less relation is a plain ingest.
      std::vector<Column> cols(types_.size());
      for (size_t c = 0; c < types_.size(); ++c) {
        cols[c].name = decoder_.names()[c];
      }
      rel_->schema_ = Schema(std::move(cols));
      nc = rel_->num_columns();
    }
    if (initialized_) {
      std::vector<Column> cols = rel_->schema_.columns();
      for (int c = 0; c < nc; ++c) {
        cols[c].type = mixed_[c] ? ValueType::kNull : types_[c];
      }
      rel_->schema_ = Schema(std::move(cols));
    }
    Seal();
    return Status::OK();
  }

 private:
  CsvOptions MakeCsvOptions() {
    CsvOptions csv = options_.csv;
    csv.context = options_.context;
    return csv;
  }

  void InitColumns(int nc) {
    initialized_ = true;
    rel_->dicts_.resize(nc);
    buckets_.resize(nc);
    types_.assign(nc, ValueType::kNull);
    mixed_.assign(nc, 0);
    cur_cols_.resize(nc);
    for (auto& col : cur_cols_) col.reserve(options_.shard_rows);
  }

  Status OnRow(std::vector<Value>&& row) {
    if (!initialized_) InitColumns(static_cast<int>(row.size()));
    if (num_rows_ == std::numeric_limits<int>::max()) {
      return Status::Invalid("relation exceeds 2^31 - 1 rows");
    }
    int nc = static_cast<int>(row.size());
    if (nc != static_cast<int>(types_.size())) {
      // Only reachable in append mode: the decoder keeps each parse
      // internally uniform, but the delta's width must also match the
      // existing relation.
      return Status::Invalid("append row has " + std::to_string(nc) +
                             " values, relation has " +
                             std::to_string(types_.size()) + " columns");
    }
    for (int c = 0; c < nc; ++c) {
      const Value& v = row[c];
      // Incremental Relation::InferTypes fold (order-independent: uniform
      // type wins, int+double merge to double, anything else is mixed).
      if (!v.is_null() && !mixed_[c]) {
        ValueType vt = v.type();
        if (types_[c] == ValueType::kNull) {
          types_[c] = vt;
        } else if (types_[c] != vt) {
          if ((types_[c] == ValueType::kInt && vt == ValueType::kDouble) ||
              (types_[c] == ValueType::kDouble && vt == ValueType::kInt)) {
            types_[c] = ValueType::kDouble;
          } else {
            mixed_[c] = 1;
          }
        }
      }
      std::vector<Value>& dict = rel_->dicts_[c];
      size_t cell_hash = v.Hash();
      // Row-major fingerprint chain (see RelationRowChain): equal Values
      // hash equally, so the parsed cell stands in for the dictionary
      // representative the materialized relation would hold.
      chain_ = HashCombine(static_cast<size_t>(chain_), cell_hash);
      std::vector<uint32_t>& candidates = buckets_[c][cell_hash];
      uint32_t code = 0;
      bool found = false;
      for (uint32_t cand : candidates) {
        if (dict[cand] == v) {
          code = cand;
          found = true;
          break;
        }
      }
      if (!found) {
        code = static_cast<uint32_t>(dict.size());
        dict_pending_bytes_ += DictEntryBytes(v);
        dict.push_back(std::move(row[c]));
        candidates.push_back(code);
      }
      cur_cols_[c].push_back(code);
    }
    ++num_rows_;
    if (static_cast<int>(cur_cols_.empty() ? 0 : cur_cols_[0].size()) >=
        options_.shard_rows) {
      FAMTREE_RETURN_NOT_OK(CloseShard());
    }
    if (dict_pending_bytes_ >= kDictChargeStride) {
      FAMTREE_RETURN_NOT_OK(FlushDictCharge());
    }
    return Status::OK();
  }

  Status FlushDictCharge() {
    if (dict_pending_bytes_ == 0) return Status::OK();
    size_t bytes = dict_pending_bytes_;
    dict_pending_bytes_ = 0;
    // Dictionaries must stay resident, but shard residency can still make
    // room for them.
    return rel_->ChargeWithSpill(options_.context, bytes, "ingest_dict");
  }

  Status CloseShard() {
    int rows =
        cur_cols_.empty() ? 0 : static_cast<int>(cur_cols_[0].size());
    if (rows == 0) return Status::OK();
    int nc = static_cast<int>(cur_cols_.size());
    Shard shard;
    shard.row_begin = num_rows_ - rows;
    shard.rows = rows;
    shard.cols = std::move(cur_cols_);
    cur_cols_.clear();
    cur_cols_.resize(nc);
    for (auto& col : cur_cols_) col.reserve(options_.shard_rows);
    rel_->shards_.push_back(std::move(shard));
    Shard* s = &rel_->shards_.back();
    size_t bytes = static_cast<size_t>(rows) * nc * sizeof(uint32_t);
    MemoryBudget* budget =
        options_.context ? options_.context->memory_budget() : nullptr;
    std::lock_guard<std::mutex> lock(rel_->mu_);
    if (rel_->force_spill_ || (budget != nullptr && !budget->TryCharge(bytes))) {
      // Over budget (or forced): this shard goes to disk instead of
      // latching kResourceExhausted.
      return rel_->SpillShardLocked(options_.context, s);
    }
    s->charged = budget != nullptr ? bytes : 0;
    return Status::OK();
  }

  /// Shared tail of Finish/FinishAppend: commits counters, persists the
  /// append-resume state (cell chain + type fold), and finalizes the
  /// fingerprint. The cell hashes were folded row-major during OnRow, so
  /// the result matches RelationFingerprint of the relation the whole-file
  /// reader would materialize — with no shard rescan.
  void Seal() {
    rel_->num_rows_ = num_rows_;
    rel_->stats_.rows = num_rows_;
    rel_->stats_.shards = rel_->num_shards();
    rel_->chain_ = chain_;
    rel_->fold_types_ = types_;
    rel_->fold_mixed_ = mixed_;
    rel_->fingerprint_ =
        FinalizeRelationFingerprint(chain_, rel_->schema_, num_rows_);
  }

  static constexpr size_t kDictChargeStride = 256 * 1024;

  IngestOptions options_;
  /// Fresh-ingest mode owns the relation being built; append mode borrows
  /// the existing one through rel_ and leaves owned_ empty.
  std::shared_ptr<ShardedEncodedRelation> owned_;
  ShardedEncodedRelation* rel_;
  CsvRowDecoder decoder_;
  bool initialized_ = false;
  int num_rows_ = 0;
  uint64_t chain_ = kRelationChainSeed;
  std::vector<std::unordered_map<size_t, std::vector<uint32_t>>> buckets_;
  std::vector<ValueType> types_;
  std::vector<char> mixed_;
  std::vector<std::vector<uint32_t>> cur_cols_;
  size_t dict_pending_bytes_ = 0;
};

Result<std::shared_ptr<ShardedEncodedRelation>>
ShardedEncodedRelation::IngestCsvString(const std::string& text,
                                        IngestOptions options) {
  size_t stride = options.io_chunk_bytes < 1 ? 1 : options.io_chunk_bytes;
  Ingester ingester(std::move(options));
  size_t pos = 0;
  FAMTREE_RETURN_NOT_OK(
      ingester.Run([&text, &pos, stride]() -> Result<std::string_view> {
        size_t take = std::min(text.size() - pos, stride);
        std::string_view chunk(text.data() + pos, take);
        pos += take;
        return chunk;
      }));
  return ingester.Finish();
}

Result<std::shared_ptr<ShardedEncodedRelation>>
ShardedEncodedRelation::IngestCsvFile(const std::string& path,
                                      IngestOptions options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  size_t stride = options.io_chunk_bytes < 1 ? 1 : options.io_chunk_bytes;
  Ingester ingester(std::move(options));
  std::vector<char> buf(stride);
  FAMTREE_RETURN_NOT_OK(
      ingester.Run([&in, &buf]() -> Result<std::string_view> {
        in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
        if (in.bad()) return Status::IoError("read failed");
        return std::string_view(buf.data(), static_cast<size_t>(in.gcount()));
      }));
  return ingester.Finish();
}

Status ShardedEncodedRelation::AppendCsv(const std::string& text,
                                         IngestOptions options) {
  size_t stride = options.io_chunk_bytes < 1 ? 1 : options.io_chunk_bytes;
  Ingester ingester(this, std::move(options));
  size_t pos = 0;
  FAMTREE_RETURN_NOT_OK(
      ingester.Run([&text, &pos, stride]() -> Result<std::string_view> {
        size_t take = std::min(text.size() - pos, stride);
        std::string_view chunk(text.data() + pos, take);
        pos += take;
        return chunk;
      }));
  return ingester.FinishAppend();
}

Status ShardedEncodedRelation::SpillShardLocked(RunContext* ctx,
                                                Shard* shard) const {
  if (shard->spilled) return Status::OK();
  // The spill-write fault point: an injected failure here leaves the shard
  // resident and latches the stop, so callers back out cleanly.
  FAMTREE_RETURN_NOT_OK(RunContext::FaultPoint(ctx, "ooc_spill"));
  if (!spill_.is_open()) {
    Result<SpillFile> created = SpillFile::Create(spill_dir_);
    if (!created.ok()) return RunContext::Fail(ctx, created.status());
    spill_ = std::move(created).value();
  }
  int nc = static_cast<int>(shard->cols.size());
  shard->offsets.resize(nc);
  int64_t written = 0;
  for (int c = 0; c < nc; ++c) {
    size_t bytes = shard->cols[c].size() * sizeof(uint32_t);
    Result<uint64_t> off = spill_.Append(shard->cols[c].data(), bytes);
    if (!off.ok()) return RunContext::Fail(ctx, off.status());
    shard->offsets[c] = *off;
    written += static_cast<int64_t>(bytes);
  }
  shard->spilled = true;
  shard->cols.clear();
  shard->cols.shrink_to_fit();
  if (shard->charged > 0 && ingest_budget_ != nullptr) {
    ingest_budget_->Release(shard->charged);
  }
  shard->charged = 0;
  ++shards_spilled_after_ingest_;
  spill_bytes_after_ingest_ += written;
  return Status::OK();
}

Result<size_t> ShardedEncodedRelation::TrySpillResident(
    RunContext* ctx, size_t bytes_needed) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t freed = 0;
  for (Shard& shard : shards_) {
    if (freed >= bytes_needed) break;
    // Only charged residents can create budget headroom.
    if (shard.spilled || shard.charged == 0) continue;
    size_t charge = shard.charged;
    FAMTREE_RETURN_NOT_OK(SpillShardLocked(ctx, &shard));
    freed += charge;
  }
  return freed;
}

Status ShardedEncodedRelation::ChargeWithSpill(RunContext* ctx, size_t bytes,
                                               const char* site) const {
  MemoryBudget* budget = ctx != nullptr ? ctx->memory_budget() : nullptr;
  if (budget != nullptr && bytes > 0 && budget->remaining() < bytes) {
    size_t need = bytes - budget->remaining();
    FAMTREE_ASSIGN_OR_RETURN(size_t freed, TrySpillResident(ctx, need));
    (void)freed;  // ChargeAlloc below gives the authoritative answer
  }
  return RunContext::ChargeAlloc(ctx, bytes, site);
}

Status ShardedEncodedRelation::CopyShardColumn(int shard, int col,
                                               uint32_t* dst) const {
  std::unique_lock<std::mutex> lock(mu_);
  const Shard& s = shards_[shard];
  if (!s.spilled) {
    memcpy(dst, s.cols[col].data(), s.cols[col].size() * sizeof(uint32_t));
    return Status::OK();
  }
  uint64_t offset = s.offsets[col];
  size_t bytes = static_cast<size_t>(s.rows) * sizeof(uint32_t);
  // pread outside the lock: the spill file is append-only and this shard's
  // bytes were durable before `spilled` was set.
  lock.unlock();
  return spill_.ReadAt(offset, dst, bytes);
}

Status ShardedEncodedRelation::LoadShardColumn(
    int shard, int col, std::vector<uint32_t>* out) const {
  out->resize(shards_[shard].rows);
  return CopyShardColumn(shard, col, out->data());
}

Result<std::shared_ptr<const EncodedRelation>>
ShardedEncodedRelation::MaterializeEncoded(RunContext* ctx) const {
  int nc = num_columns();
  size_t bytes =
      static_cast<size_t>(num_rows_) * nc * sizeof(uint32_t);
  FAMTREE_RETURN_NOT_OK(ChargeWithSpill(ctx, bytes, "ingest_codes"));
  MemoryBudget* budget = ctx != nullptr ? ctx->memory_budget() : nullptr;
  auto back_out = [&](const Status& st) -> Status {
    if (budget != nullptr) budget->Release(bytes);
    return st;
  };
  std::vector<std::vector<uint32_t>> columns(nc);
  for (int c = 0; c < nc; ++c) {
    columns[c].resize(num_rows_);
    for (int s = 0; s < num_shards(); ++s) {
      Status st =
          CopyShardColumn(s, c, columns[c].data() + shard_row_begin(s));
      if (!st.ok()) return back_out(st);
    }
  }
  return std::make_shared<const EncodedRelation>(num_rows_, std::move(columns),
                                                 dicts_);
}

Result<Relation> ShardedEncodedRelation::MaterializeRelation() const {
  RelationBuilder builder(Schema(schema_.columns()));
  int nc = num_columns();
  std::vector<std::vector<uint32_t>> cols(nc);
  for (int s = 0; s < num_shards(); ++s) {
    for (int c = 0; c < nc; ++c) {
      FAMTREE_RETURN_NOT_OK(LoadShardColumn(s, c, &cols[c]));
    }
    for (int r = 0; r < shard_num_rows(s); ++r) {
      std::vector<Value> row;
      row.reserve(nc);
      for (int c = 0; c < nc; ++c) row.push_back(Decode(c, cols[c][r]));
      builder.AddRow(std::move(row));
    }
  }
  return builder.Build();
}

Status ShardedEncodedRelation::WriteCsv(std::ostream& out,
                                        const CsvOptions& options) const {
  std::string line;
  int nc = num_columns();
  for (int c = 0; c < nc; ++c) {
    if (c) line += options.separator;
    line += EscapeCsvField(schema_.name(c), options,
                           /*from_string_value=*/false);
  }
  line += '\n';
  out.write(line.data(), static_cast<std::streamsize>(line.size()));
  std::vector<std::vector<uint32_t>> cols(nc);
  for (int s = 0; s < num_shards(); ++s) {
    for (int c = 0; c < nc; ++c) {
      FAMTREE_RETURN_NOT_OK(LoadShardColumn(s, c, &cols[c]));
    }
    line.clear();
    for (int r = 0; r < shard_num_rows(s); ++r) {
      for (int c = 0; c < nc; ++c) {
        if (c) line += options.separator;
        const Value& v = Decode(c, cols[c][r]);
        if (v.is_null()) {
          line += options.null_literal;
        } else {
          line += EscapeCsvField(v.ToString(), options, v.is_string());
        }
      }
      line += '\n';
    }
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
  }
  if (!out.good()) return Status::IoError("CSV write failed");
  return Status::OK();
}

Result<std::string> ShardedEncodedRelation::ToCsvString(
    const CsvOptions& options) const {
  std::ostringstream out;
  FAMTREE_RETURN_NOT_OK(WriteCsv(out, options));
  return std::move(out).str();
}

Status ShardedEncodedRelation::WriteCsvToFile(const std::string& path,
                                              const CsvOptions& options) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  return WriteCsv(out, options);
}

IngestStats ShardedEncodedRelation::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  IngestStats out = stats_;
  out.shards_spilled = shards_spilled_after_ingest_;
  out.spill_bytes = spill_bytes_after_ingest_;
  return out;
}

}  // namespace famtree
