#ifndef FAMTREE_RELATION_OOC_SHARDED_RELATION_H_
#define FAMTREE_RELATION_OOC_SHARDED_RELATION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "relation/csv.h"
#include "relation/encoded_relation.h"
#include "relation/relation.h"
#include "relation/ooc/spill.h"

namespace famtree {

/// Controls one out-of-core ingest.
struct IngestOptions {
  /// Dialect and limits shared with the whole-file readers. The context
  /// field here (not csv.context) carries the run limits; the csv copy's
  /// context is overwritten during ingest.
  CsvOptions csv;
  /// Rows per encoded shard (the spill/merge granule).
  int shard_rows = 64 * 1024;
  /// Bytes of raw input fed to the stream parser per charge/poll stride.
  size_t io_chunk_bytes = kCsvIoChunkBytes;
  /// Spill directory override; empty = DefaultSpillDir().
  std::string spill_dir;
  /// Spills every shard (and every PLI run built from this relation) as it
  /// closes, regardless of budget headroom — the deterministic full
  /// out-of-core coverage knob for tests and benches.
  bool force_spill = false;
  /// Optional run limits. The MemoryBudget here is remembered as the
  /// accounting home of shard residency: later spills release their charges
  /// back to it, so using the same budget for ingest and discovery lets
  /// discovery-time pressure reclaim ingest-resident shards. Must outlive
  /// the relation if set.
  RunContext* context = nullptr;
};

/// What one ingest did (ShardedEncodedRelation::stats()).
struct IngestStats {
  int64_t rows = 0;
  int64_t bytes_read = 0;
  int shards = 0;
  int shards_spilled = 0;
  int64_t spill_bytes = 0;
};

/// A dictionary-encoded relation ingested in fixed-size row morsels and
/// stored as row shards of per-column code arrays, each shard either
/// memory-resident or spilled to an unlinked temp file. Dictionaries are
/// built incrementally during the streaming parse with exactly
/// EncodedRelation's discipline (bucket by Value::Hash, resolve by full
/// comparison), so the codes — and therefore every partition and every
/// discovered dependency — are bit-identical to encoding the materialized
/// relation. The whole raw input is never resident: each parsed chunk is
/// charged at "csv_rows", encoded, and released.
///
/// The RunContext MemoryBudget acts as a *spill trigger*, not a kill
/// switch: when a charge lacks headroom, resident shards spill (releasing
/// their charges) before the charge is retried; only when spilling cannot
/// make room does the run latch kResourceExhausted as usual.
///
/// After ingest the relation is logically immutable. Shard loads and
/// spill-under-pressure are thread-safe; values, dictionaries, schema and
/// fingerprint never change.
class ShardedEncodedRelation {
 public:
  static Result<std::shared_ptr<ShardedEncodedRelation>> IngestCsvFile(
      const std::string& path, IngestOptions options = {});
  static Result<std::shared_ptr<ShardedEncodedRelation>> IngestCsvString(
      const std::string& text, IngestOptions options = {});

  /// Batch append: streams more CSV through the same incremental encoder,
  /// extending the per-column dictionaries, shard list, and type fold
  /// exactly as if the delta had been part of the original input — the
  /// refreshed fingerprint() equals a cold ingest of base + delta. The
  /// delta text follows the same dialect as the original ingest; with
  /// `csv.has_header` set (the default) it must repeat the header, which
  /// is verified against the existing schema. Use
  /// DiscoveryEngine::AppendCsv instead when the relation is registered
  /// with an engine so cached PLIs and evidence are maintained.
  ///
  /// Not thread-safe against concurrent readers: callers must quiesce
  /// discovery on this relation for the duration (the same contract as
  /// mutating a Relation mid-run). Appends should run under the same
  /// memory budget as the original ingest; a failed append leaves the
  /// relation partially extended and it should be discarded, like a
  /// failed ingest.
  Status AppendCsv(const std::string& text, IngestOptions options = {});

  ShardedEncodedRelation(const ShardedEncodedRelation&) = delete;
  ShardedEncodedRelation& operator=(const ShardedEncodedRelation&) = delete;

  const Schema& schema() const { return schema_; }
  int num_columns() const { return schema_.num_columns(); }
  int num_rows() const { return num_rows_; }

  int dict_size(int col) const { return static_cast<int>(dicts_[col].size()); }
  const Value& Decode(int col, uint32_t code) const {
    return dicts_[col][code];
  }

  /// Content fingerprint, identical to RelationFingerprint of the relation
  /// the whole-file reader would have materialized from the same input —
  /// the key DiscoveryEngine's caches use across both paths.
  uint64_t fingerprint() const { return fingerprint_; }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int shard_num_rows(int shard) const { return shards_[shard].rows; }
  /// Global index of the shard's first row.
  int shard_row_begin(int shard) const { return shards_[shard].row_begin; }
  bool force_spill() const { return force_spill_; }
  const std::string& spill_dir() const { return spill_dir_; }
  /// Ingest-time stats plus any spills triggered after ingest by
  /// ChargeWithSpill pressure.
  IngestStats stats() const;

  /// Copies shard `shard`'s codes for column `col` into dst[0..rows).
  /// Thread-safe with concurrent loads and with TrySpillResident.
  Status CopyShardColumn(int shard, int col, uint32_t* dst) const;
  Status LoadShardColumn(int shard, int col, std::vector<uint32_t>* out) const;

  /// Spills resident shards (oldest first) until at least `bytes_needed`
  /// of budget charge has been released or none remain; returns the bytes
  /// released. Each shard write passes the "ooc_spill" fault point; a
  /// failed write latches its IoError on the context and the shard stays
  /// resident. Logically const: residency moves, content does not.
  Result<size_t> TrySpillResident(RunContext* ctx, size_t bytes_needed) const;

  /// Charges `bytes` at `site`, first spilling resident shards when the
  /// context's budget lacks headroom. Falls through to the ordinary
  /// latching ChargeAlloc, so injected faults and genuine exhaustion
  /// behave exactly as everywhere else.
  Status ChargeWithSpill(RunContext* ctx, size_t bytes,
                         const char* site) const;

  /// Assembles the full flat encoding (every column's codes), charging
  /// num_rows * num_columns * 4 bytes at the "ingest_codes" site with
  /// spill fallback. The sampling-based discovery paths need this; the
  /// PLI-only paths (exact TANE) never call it.
  Result<std::shared_ptr<const EncodedRelation>> MaterializeEncoded(
      RunContext* ctx) const;

  /// Rebuilds a row-major Relation from the dictionaries (tests and small
  /// inputs only). Cells are the dictionary representatives: a column
  /// holding both 1 and 1.0 decodes every occurrence as its first form.
  Result<Relation> MaterializeRelation() const;

  /// Streams the relation back to CSV shard by shard, byte-identical to
  /// WriteCsvString on the materialized relation.
  Status WriteCsv(std::ostream& out, const CsvOptions& options = {}) const;
  Result<std::string> ToCsvString(const CsvOptions& options = {}) const;
  Status WriteCsvToFile(const std::string& path,
                        const CsvOptions& options = {}) const;

 private:
  struct Shard {
    int row_begin = 0;
    int rows = 0;
    /// Resident code arrays, one per column; cleared once spilled.
    std::vector<std::vector<uint32_t>> cols;
    /// Spill-file offset of each column's codes; valid when spilled.
    std::vector<uint64_t> offsets;
    bool spilled = false;
    /// Budget bytes charged for residency; released on spill.
    size_t charged = 0;
  };

  ShardedEncodedRelation() = default;

  class Ingester;  // builds instances; defined in the .cc

  /// Spills one shard under mu_. On success releases the shard's charge to
  /// the remembered ingest budget and frees the resident arrays.
  Status SpillShardLocked(RunContext* ctx, Shard* shard) const;

  Schema schema_;
  int num_rows_ = 0;
  std::vector<std::vector<Value>> dicts_;
  bool force_spill_ = false;
  std::string spill_dir_;
  uint64_t fingerprint_ = 0;
  /// Append-resume state: the row-major cell chain behind fingerprint_
  /// (see RelationRowChain) and the raw per-column type-inference fold,
  /// kept so AppendCsv can continue both instead of rescanning shards.
  uint64_t chain_ = 0;
  std::vector<ValueType> fold_types_;
  std::vector<char> fold_mixed_;
  IngestStats stats_;
  /// The budget shard residency was charged to (may be null); spills
  /// release to it no matter which context triggers them.
  MemoryBudget* ingest_budget_ = nullptr;

  mutable std::mutex mu_;  // guards shard residency and the spill file
  mutable std::vector<Shard> shards_;
  mutable SpillFile spill_;
  mutable int shards_spilled_after_ingest_ = 0;
  mutable int64_t spill_bytes_after_ingest_ = 0;
};

}  // namespace famtree

#endif  // FAMTREE_RELATION_OOC_SHARDED_RELATION_H_
