#ifndef FAMTREE_RELATION_PARTITION_H_
#define FAMTREE_RELATION_PARTITION_H_

#include <vector>

#include "common/attr_set.h"
#include "relation/relation.h"

namespace famtree {

/// A stripped partition (position list index, PLI) in the style of TANE
/// [Huhtala et al. 1999]: the equivalence classes of rows that agree on an
/// attribute set, with singleton classes removed. Stripped partitions are
/// the workhorse of lattice-based dependency discovery — FD validity,
/// the g3 error of AFDs and key detection all read off them directly.
class StrippedPartition {
 public:
  StrippedPartition() = default;

  /// Builds the partition of `relation` by the single attribute `attr`.
  static StrippedPartition ForAttribute(const Relation& relation, int attr);

  /// Builds the partition by an attribute set (grouping once; used for
  /// ground truth in tests — lattice searches should use Product instead).
  static StrippedPartition ForAttributeSet(const Relation& relation,
                                           AttrSet attrs);

  /// Partition product: rows equivalent under (X ∪ Y) given the partitions
  /// for X and Y. Linear in the represented rows (TANE's core operation).
  StrippedPartition Product(const StrippedPartition& other,
                            int num_rows) const;

  /// Number of equivalence classes of size >= 2.
  int num_classes() const { return static_cast<int>(classes_.size()); }

  /// Sum of the sizes of the stripped classes.
  int num_rows_in_classes() const { return rows_in_classes_; }

  /// Total number of equivalence classes including singletons
  /// (== CountDistinct of the underlying attribute set).
  int NumDistinct(int num_rows) const {
    return num_rows - rows_in_classes_ + num_classes();
  }

  /// TANE's e(X) measure scaled to g3: the minimum fraction of rows to
  /// remove so X becomes a key, i.e. (rows_in_classes - num_classes)/n.
  double KeyError(int num_rows) const {
    if (num_rows == 0) return 0.0;
    return static_cast<double>(rows_in_classes_ - num_classes()) / num_rows;
  }

  /// True iff every class is a singleton (X is a key).
  bool IsKey() const { return classes_.empty(); }

  const std::vector<std::vector<int>>& classes() const { return classes_; }

  /// Checks whether the FD X -> Y holds given this partition for X and the
  /// partition for X ∪ Y: they must have identical refinement cost.
  /// (TANE: e(X) == e(X ∪ Y) iff X -> Y.)
  static bool FdHolds(const StrippedPartition& x,
                      const StrippedPartition& xy);

  /// The g3 error of the FD X -> Y (fraction of rows to delete so the FD
  /// holds), computed from this partition (for X) against the `rhs` column
  /// grouping. Matches the paper's Section 2.3.1 definition.
  double FdError(const Relation& relation, AttrSet rhs) const;

 private:
  explicit StrippedPartition(std::vector<std::vector<int>> classes);

  std::vector<std::vector<int>> classes_;
  int rows_in_classes_ = 0;
};

}  // namespace famtree

#endif  // FAMTREE_RELATION_PARTITION_H_
