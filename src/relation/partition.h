#ifndef FAMTREE_RELATION_PARTITION_H_
#define FAMTREE_RELATION_PARTITION_H_

#include <vector>

#include "common/attr_set.h"
#include "relation/encoded_relation.h"
#include "relation/relation.h"

namespace famtree {

/// A stripped partition (position list index, PLI) in the style of TANE
/// [Huhtala et al. 1999]: the equivalence classes of rows that agree on an
/// attribute set, with singleton classes removed. Stripped partitions are
/// the workhorse of lattice-based dependency discovery — FD validity,
/// the g3 error of AFDs and key detection all read off them directly.
///
/// Storage is a flat CSR layout: one contiguous `row_indices` array holding
/// every class's rows back to back, plus a `class_offsets` array with one
/// offset per class boundary (size num_classes + 1). Compared to the
/// earlier vector<vector<int>> layout this is one allocation instead of one
/// per class, and Product walks it with a reusable per-thread scratch probe
/// table instead of a freshly allocated hash map per class — the two moves
/// the discovery hot path needs to run at memory speed.
class StrippedPartition {
 public:
  StrippedPartition() = default;

  /// Builds the partition by a single attribute / an attribute set from the
  /// Value-based grouping on the relation. These are the differential-test
  /// oracle paths; the engine uses the EncodedRelation overloads below.
  static StrippedPartition ForAttribute(const Relation& relation, int attr);
  static StrippedPartition ForAttributeSet(const Relation& relation,
                                           AttrSet attrs);

  /// Encoded fast paths: counting-sort over the dictionary codes (single
  /// attribute) or over dense row keys (attribute set). Classes come out in
  /// first-occurrence order — identical, class for class and row for row,
  /// to the Value-based builders above.
  static StrippedPartition ForAttribute(const EncodedRelation& encoded,
                                        int attr);
  static StrippedPartition ForAttributeSet(const EncodedRelation& encoded,
                                           AttrSet attrs);

  /// Assembles a partition from already-stripped CSR arrays (the
  /// out-of-core run merge). The caller guarantees the invariants: classes
  /// in first-occurrence order, rows ascending within a class, every class
  /// size >= 2, and `class_offsets` of size num_classes + 1 (or empty when
  /// there are no classes).
  static StrippedPartition FromCsr(std::vector<int> row_indices,
                                   std::vector<int> class_offsets) {
    return StrippedPartition(std::move(row_indices),
                             std::move(class_offsets));
  }

  /// Partition product: rows equivalent under (X ∪ Y) given the partitions
  /// for X and Y. Linear in the represented rows (TANE's core operation).
  /// Uses a per-thread scratch probe table, so concurrent Products never
  /// contend and repeated calls never re-zero full-size arrays.
  StrippedPartition Product(const StrippedPartition& other,
                            int num_rows) const;

  /// Number of equivalence classes of size >= 2.
  int num_classes() const {
    return class_offsets_.empty()
               ? 0
               : static_cast<int>(class_offsets_.size()) - 1;
  }

  /// Sum of the sizes of the stripped classes.
  int num_rows_in_classes() const {
    return static_cast<int>(row_indices_.size());
  }

  /// Total number of equivalence classes including singletons
  /// (== CountDistinct of the underlying attribute set).
  int NumDistinct(int num_rows) const {
    return num_rows - num_rows_in_classes() + num_classes();
  }

  /// TANE's e(X) measure scaled to g3: the minimum fraction of rows to
  /// remove so X becomes a key, i.e. (rows_in_classes - num_classes)/n.
  double KeyError(int num_rows) const {
    if (num_rows == 0) return 0.0;
    return static_cast<double>(num_rows_in_classes() - num_classes()) /
           num_rows;
  }

  /// True iff every class is a singleton (X is a key).
  bool IsKey() const { return row_indices_.empty(); }

  /// Flat CSR access: rows of class `c` are
  /// row_indices()[class_offsets()[c] .. class_offsets()[c+1]).
  const std::vector<int>& row_indices() const { return row_indices_; }
  const std::vector<int>& class_offsets() const { return class_offsets_; }
  int class_size(int c) const {
    return class_offsets_[c + 1] - class_offsets_[c];
  }
  const int* class_begin(int c) const {
    return row_indices_.data() + class_offsets_[c];
  }

  /// Size of the largest stripped class (0 when the set is a key).
  int MaxClassSize() const;

  /// Materialized nested view (one vector per class). For tests and
  /// pretty-printing only — hot paths use the flat accessors.
  std::vector<std::vector<int>> classes() const;

  /// Checks whether the FD X -> Y holds given this partition for X and the
  /// partition for X ∪ Y: they must have identical refinement cost.
  /// (TANE: e(X) == e(X ∪ Y) iff X -> Y.)
  static bool FdHolds(const StrippedPartition& x,
                      const StrippedPartition& xy);

  /// The g3 error of the FD X -> Y (fraction of rows to delete so the FD
  /// holds), computed from this partition (for X) against the `rhs` column
  /// grouping. Matches the paper's Section 2.3.1 definition. The Relation
  /// overload is the Value-based oracle; the EncodedRelation overload
  /// counts plurality RHS codes through a scratch array and returns the
  /// identical value.
  double FdError(const Relation& relation, AttrSet rhs) const;
  double FdError(const EncodedRelation& encoded, AttrSet rhs) const;

 private:
  StrippedPartition(std::vector<int> row_indices,
                    std::vector<int> class_offsets)
      : row_indices_(std::move(row_indices)),
        class_offsets_(std::move(class_offsets)) {}

  explicit StrippedPartition(const std::vector<std::vector<int>>& classes);

  /// Shared counting-sort core: builds the stripped CSR arrays from dense
  /// per-row keys (key order == first-occurrence order).
  static StrippedPartition FromRowKeys(const std::vector<uint32_t>& keys,
                                       int num_keys);

  std::vector<int> row_indices_;
  /// Class boundaries; size num_classes + 1 when classes exist, empty for a
  /// default-constructed or classless partition.
  std::vector<int> class_offsets_;
};

}  // namespace famtree

#endif  // FAMTREE_RELATION_PARTITION_H_
