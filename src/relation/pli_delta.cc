#include "relation/pli_delta.h"

namespace famtree {

void BuildPliDeltaIndex(const uint32_t* codes, int num_rows, int dict_size,
                        PliDeltaIndex* index) {
  index->count.assign(dict_size, 0);
  index->single_row.assign(dict_size, -1);
  for (int r = 0; r < num_rows; ++r) ++index->count[codes[r]];
  for (int r = 0; r < num_rows; ++r) {
    if (index->count[codes[r]] == 1) index->single_row[codes[r]] = r;
  }
  index->rows_indexed = num_rows;
}

StrippedPartition MergeAttributePliDelta(const StrippedPartition& old,
                                         const uint32_t* codes, int old_rows,
                                         int delta_rows, int new_dict_size,
                                         PliDeltaIndex* index) {
  index->count.resize(new_dict_size, 0);
  index->single_row.resize(new_dict_size, -1);

  // Counting sort of the appended rows by code; scan order keeps rows
  // ascending inside each code's run. `codes` is delta-local (entry r is
  // relation row old_rows + r).
  std::vector<int> delta_count(new_dict_size, 0);
  for (int r = 0; r < delta_rows; ++r) {
    ++delta_count[codes[r]];
  }
  std::vector<int> delta_off(new_dict_size + 1, 0);
  for (int code = 0; code < new_dict_size; ++code) {
    delta_off[code + 1] = delta_off[code] + delta_count[code];
  }
  std::vector<int> delta_rows_by_code(delta_rows);
  {
    std::vector<int> cursor(delta_off.begin(), delta_off.end() - 1);
    for (int r = 0; r < delta_rows; ++r) {
      delta_rows_by_code[cursor[codes[r]]++] = old_rows + r;
    }
  }

  std::vector<int> rows;
  rows.reserve(old.num_rows_in_classes() + delta_rows);
  std::vector<int> offsets;
  offsets.push_back(0);
  // Old classes appear in code-ascending order (one per code with old
  // count >= 2), so a single cursor pairs each surviving class with its
  // code as the walk passes it.
  int old_class = 0;
  for (int code = 0; code < new_dict_size; ++code) {
    int old_count = index->count[code];
    int added = delta_count[code];
    int merged = old_count + added;
    int matched_class = (old_count >= 2) ? old_class++ : -1;
    if (merged >= 2) {
      if (matched_class >= 0) {
        const int* begin = old.class_begin(matched_class);
        rows.insert(rows.end(), begin, begin + old.class_size(matched_class));
      } else if (old_count == 1) {
        rows.push_back(index->single_row[code]);
      }
      for (int k = delta_off[code]; k < delta_off[code + 1]; ++k) {
        rows.push_back(delta_rows_by_code[k]);
      }
      offsets.push_back(static_cast<int>(rows.size()));
    }
    index->count[code] = merged;
    if (merged == 1 && old_count == 0) {
      index->single_row[code] = delta_rows_by_code[delta_off[code]];
    } else if (merged != 1) {
      index->single_row[code] = -1;
    }
  }
  index->rows_indexed = old_rows + delta_rows;
  if (rows.empty()) return StrippedPartition();
  return StrippedPartition::FromCsr(std::move(rows), std::move(offsets));
}

}  // namespace famtree
