#ifndef FAMTREE_RELATION_CSV_H_
#define FAMTREE_RELATION_CSV_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "relation/relation.h"

namespace famtree {

/// CSV parsing options. The dialect supported is RFC-4180-ish: quoted fields
/// with doubled-quote escaping, configurable separator.
struct CsvOptions {
  char separator = ',';
  /// First line holds column names.
  bool has_header = true;
  /// Parse numeric-looking fields into int64/double Values.
  bool infer_types = true;
  /// Fields equal to this literal become null (in addition to empty fields).
  std::string null_literal = "NULL";
  /// Optional run limits: the readers poll as rows stream in and charge each
  /// consumed input chunk at the "csv_rows" site *before* parsing it, so a
  /// file larger than the budget fails at the first over-budget chunk
  /// instead of after materializing everything. A failed read releases its
  /// charges — there are no partial relations.
  RunContext* context = nullptr;
};

/// Bytes fed to the stream parser per charge/poll stride by the whole-file
/// readers and the default out-of-core ingest morsel size.
inline constexpr size_t kCsvIoChunkBytes = 256 * 1024;

/// One raw field plus whether any part of it was quoted in the source; the
/// readers need that distinction because quoting suppresses null detection
/// and type inference.
struct CsvField {
  std::string text;
  bool quoted = false;
};

/// Incremental CSV record scanner: accepts the input as arbitrary chunks and
/// invokes `emit` once per record, so a quoted field, a doubled quote, or a
/// CRLF pair may span any chunk boundary. Feed() consumes a chunk; Finish()
/// flushes a final record with no trailing newline and rejects an
/// unterminated quoted field. The fields vector passed to `emit` is reused
/// between records; the callback may move the texts out.
class CsvStreamParser {
 public:
  using RecordFn = std::function<Status(std::vector<CsvField>*)>;

  explicit CsvStreamParser(char separator);

  Status Feed(std::string_view chunk, const RecordFn& emit);
  Status Finish(const RecordFn& emit);

 private:
  Status Emit(const RecordFn& emit);

  char separator_;
  char specials_[4];  // separator, quote, CR, LF — the bulk-scan stop set
  std::vector<CsvField> fields_;
  CsvField field_;
  bool in_quotes_ = false;
  /// Saw a quote inside a quoted region at a chunk boundary: a following
  /// quote is an escaped literal, anything else closes the region.
  bool quote_pending_ = false;
  /// Saw a bare CR record terminator at a chunk boundary: a following LF
  /// belongs to it.
  bool skip_lf_ = false;
  /// Any byte consumed since the last record: gates the Finish() flush so
  /// input without a trailing newline yields its last record but a trailing
  /// newline does not yield a phantom empty one.
  bool record_open_ = false;
};

/// Null detection and type inference for one raw field. Both apply only to
/// unquoted fields: a quoted "" is the empty string and quoted "NULL" /
/// "123" stay literal text — the contract EscapeCsvField relies on for
/// lossless round-trips.
Value ParseCsvField(const CsvField& field, const CsvOptions& options);

/// Quotes any text a reader could misinterpret: separators, quotes, either
/// newline byte (a bare \r also terminates a record on read), the empty
/// field and the null literal (which would read back as null), and — for
/// string-typed cells — text that type inference would turn into a number.
std::string EscapeCsvField(const std::string& field, const CsvOptions& options,
                           bool from_string_value);

/// Streams parsed records into typed rows with the exact dialect the
/// whole-file reader applies: captures the header (or synthesizes c0..cN
/// names from the first data row), skips blank lines, applies ParseCsvField,
/// enforces a uniform field count, and polls the context once per 256 data
/// rows. Shared by ReadCsvString/ReadCsvFile and the out-of-core ingester so
/// every ingest path accepts the identical format.
class CsvRowDecoder {
 public:
  using RowFn = std::function<Status(std::vector<Value>&&)>;

  CsvRowDecoder(const CsvOptions& options, RowFn on_row);

  /// The CsvStreamParser record callback.
  Status OnRecord(std::vector<CsvField>* fields);

  /// Rejects input that never produced the expected header.
  Status Finish();

  /// Column names seen so far (header, synthesized, or empty when no data
  /// row has fixed the width yet).
  const std::vector<std::string>& names() const { return names_; }
  int64_t rows() const { return rows_; }

 private:
  CsvOptions options_;
  RowFn on_row_;
  std::vector<std::string> names_;
  bool saw_header_ = false;
  int64_t rows_ = 0;
};

/// Parses CSV text into a Relation.
Result<Relation> ReadCsvString(const std::string& text,
                               const CsvOptions& options = {});

/// Reads and parses a CSV file, streaming fixed-size chunks through the
/// incremental parser (the file is never slurped whole).
Result<Relation> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = {});

/// Serializes a relation as CSV (always writes a header).
std::string WriteCsvString(const Relation& relation,
                           const CsvOptions& options = {});

/// Writes a relation to a CSV file.
Status WriteCsvFile(const Relation& relation, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace famtree

#endif  // FAMTREE_RELATION_CSV_H_
