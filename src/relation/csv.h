#ifndef FAMTREE_RELATION_CSV_H_
#define FAMTREE_RELATION_CSV_H_

#include <string>

#include "common/run_context.h"
#include "common/status.h"
#include "relation/relation.h"

namespace famtree {

/// CSV parsing options. The dialect supported is RFC-4180-ish: quoted fields
/// with doubled-quote escaping, configurable separator.
struct CsvOptions {
  char separator = ',';
  /// First line holds column names.
  bool has_header = true;
  /// Parse numeric-looking fields into int64/double Values.
  bool infer_types = true;
  /// Fields equal to this literal become null (in addition to empty fields).
  std::string null_literal = "NULL";
  /// Optional run limits: the reader polls and charges the consumed input
  /// bytes at the "csv_rows" site once per 256 records. A stopped read
  /// returns the stop Status — there are no partial relations.
  RunContext* context = nullptr;
};

/// Parses CSV text into a Relation.
Result<Relation> ReadCsvString(const std::string& text,
                               const CsvOptions& options = {});

/// Reads and parses a CSV file.
Result<Relation> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = {});

/// Serializes a relation as CSV (always writes a header).
std::string WriteCsvString(const Relation& relation,
                           const CsvOptions& options = {});

/// Writes a relation to a CSV file.
Status WriteCsvFile(const Relation& relation, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace famtree

#endif  // FAMTREE_RELATION_CSV_H_
