#include "relation/encoded_relation.h"

#include <unordered_map>

namespace famtree {

EncodedRelation::EncodedRelation(const Relation& relation)
    : EncodedRelation(relation, AttrSet::Full(relation.num_columns())) {}

EncodedRelation::EncodedRelation(int num_rows,
                                 std::vector<std::vector<uint32_t>> columns,
                                 std::vector<std::vector<Value>> dicts)
    : num_rows_(num_rows),
      columns_(std::move(columns)),
      dicts_(std::move(dicts)) {}

EncodedRelation::EncodedRelation(const Relation& relation, AttrSet attrs)
    : num_rows_(relation.num_rows()) {
  int nc = relation.num_columns();
  columns_.resize(nc);
  dicts_.resize(nc);
  // Dictionary build per column: bucket by Value::Hash, resolve collisions
  // by full Value comparison so distinct-but-colliding values never share a
  // code, while cross-representation equal numerics (1 vs 1.0) always do.
  std::unordered_map<size_t, std::vector<uint32_t>> buckets;
  for (int c = 0; c < nc; ++c) {
    if (!attrs.Contains(c)) continue;
    const std::vector<Value>& cells = relation.column(c);
    std::vector<uint32_t>& codes = columns_[c];
    std::vector<Value>& dict = dicts_[c];
    codes.resize(cells.size());
    buckets.clear();
    buckets.reserve(cells.size() * 2);
    for (size_t row = 0; row < cells.size(); ++row) {
      const Value& v = cells[row];
      std::vector<uint32_t>& candidates = buckets[v.Hash()];
      uint32_t code = 0;
      bool found = false;
      for (uint32_t cand : candidates) {
        if (dict[cand] == v) {
          code = cand;
          found = true;
          break;
        }
      }
      if (!found) {
        code = static_cast<uint32_t>(dict.size());
        dict.push_back(v);
        candidates.push_back(code);
      }
      codes[row] = code;
    }
  }
}

Result<EncodedRelation> EncodedRelation::Appended(const EncodedRelation& base,
                                                  const Relation& relation) {
  int nc = relation.num_columns();
  int old_rows = base.num_rows();
  int new_rows = relation.num_rows();
  if (base.num_columns() != nc) {
    return Status::Invalid("appended encoding: column count changed");
  }
  if (new_rows < old_rows) {
    return Status::Invalid("appended encoding: relation shrank");
  }
  if (!base.mutated_.empty()) {
    return Status::Invalid("appended encoding: base was mutated via SetCode");
  }
  EncodedRelation out(new_rows, base.columns_, base.dicts_);
  std::unordered_map<size_t, std::vector<uint32_t>> buckets;
  for (int c = 0; c < nc; ++c) {
    std::vector<uint32_t>& codes = out.columns_[c];
    std::vector<Value>& dict = out.dicts_[c];
    if (static_cast<int>(codes.size()) != old_rows) {
      return Status::Invalid(
          "appended encoding: base is a subset encoding");
    }
    // Rebuild the hash buckets from the dictionary: every existing code is
    // reachable under its representative's hash, exactly as the cold
    // encoder left them.
    buckets.clear();
    buckets.reserve(dict.size() * 2);
    for (uint32_t code = 0; code < dict.size(); ++code) {
      buckets[dict[code].Hash()].push_back(code);
    }
    codes.resize(new_rows);
    const std::vector<Value>& cells = relation.column(c);
    for (int row = old_rows; row < new_rows; ++row) {
      const Value& v = cells[row];
      std::vector<uint32_t>& candidates = buckets[v.Hash()];
      uint32_t code = 0;
      bool found = false;
      for (uint32_t cand : candidates) {
        if (dict[cand] == v) {
          code = cand;
          found = true;
          break;
        }
      }
      if (!found) {
        code = static_cast<uint32_t>(dict.size());
        dict.push_back(v);
        candidates.push_back(code);
      }
      codes[row] = code;
    }
  }
  return out;
}

int EncodedRelation::RowKeys(AttrSet attrs, std::vector<uint32_t>* keys) const {
  std::vector<int> av = attrs.ToVector();
  if (av.empty()) {
    // Empty projection: every row agrees, mirroring Relation::GroupBy.
    keys->assign(num_rows_, 0);
    return num_rows_ > 0 ? 1 : 0;
  }
  // Start from the first column's codes (already dense ids in
  // first-occurrence order), then fold in one column at a time: each pass
  // re-densifies (prev_key, code) pairs, assigning new ids in row-scan
  // order, which preserves first-occurrence order end to end.
  std::unordered_map<uint64_t, uint32_t> remap;
  int num_keys;
  if (!IsMutated(av[0])) {
    keys->assign(columns_[av[0]].begin(), columns_[av[0]].end());
    num_keys = dict_size(av[0]);
  } else {
    // SetCode broke the dense first-occurrence order, so the first column
    // gets the same densifying fold as every later one.
    const std::vector<uint32_t>& codes = columns_[av[0]];
    keys->resize(num_rows_);
    remap.reserve(dicts_[av[0]].size() * 2);
    uint32_t next = 0;
    for (int row = 0; row < num_rows_; ++row) {
      auto [it, inserted] = remap.try_emplace(codes[row], next);
      if (inserted) ++next;
      (*keys)[row] = it->second;
    }
    num_keys = static_cast<int>(next);
  }
  for (size_t k = 1; k < av.size(); ++k) {
    const std::vector<uint32_t>& codes = columns_[av[k]];
    uint64_t stride = static_cast<uint64_t>(dict_size(av[k]));
    remap.clear();
    remap.reserve(static_cast<size_t>(num_keys) * 2);
    uint32_t next = 0;
    for (int row = 0; row < num_rows_; ++row) {
      uint64_t combined = static_cast<uint64_t>((*keys)[row]) * stride +
                          codes[row];
      auto [it, inserted] = remap.try_emplace(combined, next);
      if (inserted) ++next;
      (*keys)[row] = it->second;
    }
    num_keys = static_cast<int>(next);
  }
  return num_keys;
}

std::vector<std::vector<int>> EncodedRelation::GroupBy(AttrSet attrs) const {
  std::vector<uint32_t> keys;
  int num_keys = RowKeys(attrs, &keys);
  std::vector<std::vector<int>> groups(num_keys);
  // Counting pass so each group vector is allocated exactly once.
  std::vector<int> counts(num_keys, 0);
  for (uint32_t k : keys) ++counts[k];
  for (int k = 0; k < num_keys; ++k) groups[k].reserve(counts[k]);
  for (int row = 0; row < num_rows_; ++row) {
    groups[keys[row]].push_back(row);
  }
  return groups;
}

int EncodedRelation::CountDistinct(AttrSet attrs) const {
  if (attrs.size() == 1 && !IsMutated(attrs.ToVector()[0])) {
    return dict_size(attrs.ToVector()[0]);
  }
  std::vector<uint32_t> keys;
  return RowKeys(attrs, &keys);
}

}  // namespace famtree
