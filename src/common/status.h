#ifndef FAMTREE_COMMON_STATUS_H_
#define FAMTREE_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace famtree {

/// Error codes for operations that can fail. The library does not throw
/// exceptions from its public API; fallible operations return Status or
/// Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kUnimplemented,
  kInternal,
  kIoError,
  // Run-control codes (common/run_context.h). Drivers treat these three as
  // "stop signals": the run halts at the next check-point with a partial,
  // deterministic prefix of its results instead of a hard failure.
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
};

/// Returns a short human-readable name such as "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: either OK or a code plus message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a programming error (checked in debug builds).
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional, mirrors
  // absl::StatusOr so `return value;` and `return status;` both work.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace famtree

/// Propagates a non-OK Status from an expression, absl-style.
#define FAMTREE_RETURN_NOT_OK(expr)                  \
  do {                                               \
    ::famtree::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// moves the value into `lhs`.
#define FAMTREE_ASSIGN_OR_RETURN(lhs, expr)          \
  auto FAMTREE_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!FAMTREE_CONCAT_(_res_, __LINE__).ok())        \
    return FAMTREE_CONCAT_(_res_, __LINE__).status();\
  lhs = std::move(FAMTREE_CONCAT_(_res_, __LINE__)).value()

#define FAMTREE_CONCAT_INNER_(a, b) a##b
#define FAMTREE_CONCAT_(a, b) FAMTREE_CONCAT_INNER_(a, b)

#endif  // FAMTREE_COMMON_STATUS_H_
