#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace famtree {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseInt64(std::string_view s, long long* out) {
  s = Trim(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars<double> is not universally available; strtod on a copy.
  std::string buf(s);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string PadRight(std::string_view s, size_t width) {
  std::string out(s.substr(0, width));
  while (out.size() < width) out += ' ';
  return out;
}

std::string PadLeft(std::string_view s, size_t width) {
  std::string out(s.substr(0, width));
  while (out.size() < width) out.insert(out.begin(), ' ');
  return out;
}

}  // namespace famtree
