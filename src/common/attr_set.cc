#include "common/attr_set.h"

#include <string>

namespace famtree {

Status CheckAttrCapacity(int num_attrs, const char* what) {
  if (num_attrs <= kMaxAttrs) return Status::OK();
  return Status::Invalid(std::string(what) + ": relation has " +
                         std::to_string(num_attrs) +
                         " attributes but the AttrSet capacity is " +
                         std::to_string(kMaxAttrs) + " (kMaxAttrs)");
}

namespace {

/// Gosper's hack over a single word: k-subsets of an n-bit universe in
/// increasing mask order. Only entered for 1 <= k < n <= 64; the k == n
/// case is handled by the caller, so `t` saturating to all-ones is the
/// only wrap to guard (and guarding it keeps every shift width < 64).
void SubsetsOfSizeNarrow(int n, int k, std::vector<AttrSet>* out) {
  uint64_t v = (uint64_t{1} << k) - 1;  // k < 64
  while (true) {
    out->push_back(AttrSet(v));
    uint64_t t = v | (v - 1);
    if (t == ~uint64_t{0}) break;  // v holds the top bits: last combination
    uint64_t next = (t + 1) | (((~t & -(~t)) - 1) >> (__builtin_ctzll(v) + 1));
    if (n < 64 && next >= (uint64_t{1} << n)) break;
    v = next;
  }
}

/// Colexicographic successor of the ascending index combination `c` over
/// {0..n-1}: increments the lowest index that can move up, resetting the
/// ones below it. Colex order on index sets is exactly increasing
/// multi-word mask order, so the wide path enumerates in the same order
/// Gosper's hack does for narrow universes.
bool NextCombinationColex(std::vector<int>* c, int n) {
  const int k = static_cast<int>(c->size());
  for (int i = 0; i < k; ++i) {
    int cap = (i + 1 < k) ? (*c)[i + 1] : n;
    if ((*c)[i] + 1 < cap) {
      ++(*c)[i];
      for (int j = 0; j < i; ++j) (*c)[j] = j;
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<AttrSet> AllSubsetsOfSize(int n, int k) {
  std::vector<AttrSet> out;
  assert(n <= AttrSet::kCapacity);
  if (n > AttrSet::kCapacity) n = AttrSet::kCapacity;
  if (k < 0 || k > n) return out;
  if (k == 0) {
    out.push_back(AttrSet());
    return out;
  }
  if (k == n) {
    out.push_back(AttrSet::Full(n));
    return out;
  }
  if (n <= 64) {
    SubsetsOfSizeNarrow(n, k, &out);
    return out;
  }
  std::vector<int> c(k);
  for (int i = 0; i < k; ++i) c[i] = i;
  do {
    out.push_back(AttrSet::Of(c));
  } while (NextCombinationColex(&c, n));
  return out;
}

namespace {

/// The multi-word analog of `(sub - 1) & m`: the next-smaller subset of
/// `m` below `sub` in numeric mask order. `sub` must be non-empty.
AttrSet SubsetPredecessor(AttrSet sub, const AttrSet& m) {
  // sub - 1: clear the lowest set bit and saturate everything below it.
  int low = sub.PopLowestBit();
  return sub.Union(AttrSet::Range(0, low)).Intersect(m);
}

}  // namespace

std::vector<AttrSet> ProperNonEmptySubsets(AttrSet s) {
  std::vector<AttrSet> out;
  if (s.empty()) return out;
  for (AttrSet sub = SubsetPredecessor(s, s); !sub.empty();
       sub = SubsetPredecessor(sub, s)) {
    out.push_back(sub);
  }
  return out;
}

}  // namespace famtree
