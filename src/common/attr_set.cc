#include "common/attr_set.h"

namespace famtree {

std::vector<AttrSet> AllSubsetsOfSize(int n, int k) {
  std::vector<AttrSet> out;
  if (k < 0 || k > n) return out;
  if (k == 0) {
    out.push_back(AttrSet());
    return out;
  }
  // Gosper's hack: iterate k-subsets of an n-bit universe in increasing
  // mask order.
  uint64_t v = (1ULL << k) - 1;
  uint64_t limit = (n >= 64) ? ~0ULL : (1ULL << n);
  while (n >= 64 || v < limit) {
    out.push_back(AttrSet(v));
    uint64_t t = v | (v - 1);
    uint64_t next = (t + 1) | (((~t & -(~t)) - 1) >> (__builtin_ctzll(v) + 1));
    if (next <= v) break;  // overflow wrapped
    v = next;
    if (n < 64 && v >= limit) break;
  }
  return out;
}

std::vector<AttrSet> ProperNonEmptySubsets(AttrSet s) {
  std::vector<AttrSet> out;
  uint64_t m = s.mask();
  // Standard subset-of-mask enumeration.
  for (uint64_t sub = (m - 1) & m; sub != 0; sub = (sub - 1) & m) {
    out.push_back(AttrSet(sub));
  }
  return out;
}

}  // namespace famtree
