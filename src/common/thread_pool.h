#ifndef FAMTREE_COMMON_THREAD_POOL_H_
#define FAMTREE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace famtree {

/// A small work-stealing thread pool for the discovery engine. Tasks are
/// plain std::function<void()> callables distributed round-robin over
/// per-worker deques; an idle worker steals from the back of its siblings'
/// deques before sleeping. The pool never throws across its API — fallible
/// parallel work goes through ParallelFor, which collects Status values.
///
/// Determinism contract: the pool schedules work in an arbitrary order, so
/// callers that need reproducible output must write results into
/// pre-allocated, index-addressed slots and merge them in index order
/// afterwards. Every parallel algorithm in famtree follows that pattern,
/// which is what the differential tests in tests/engine_determinism_test.cc
/// lock down.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(i) for every i in [0, n), spreading iterations over the
  /// workers (the calling thread participates). Returns the Status of the
  /// lowest failing index, or OK. Remaining iterations are skipped after
  /// the first failure is observed, but the reported Status is
  /// deterministic: it is always the failure with the smallest index among
  /// those that ran. Run-control failures (RunContext::IsStop) short-circuit
  /// harder: every worker drops out at its next claim regardless of index,
  /// so a cancelled run drains within one in-flight iteration per worker.
  Status ParallelFor(int64_t n, const std::function<Status(int64_t)>& fn);

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(int self);
  /// Pops one task, preferring worker `self`'s own deque, else stealing.
  bool TryPop(int self, std::function<void()>* task);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;                  // guards sleeping workers + bookkeeping
  std::condition_variable wake_;   // signalled on Submit and shutdown
  std::condition_variable idle_;   // signalled when outstanding_ hits zero
  int64_t outstanding_ = 0;        // submitted but not finished tasks
  size_t next_queue_ = 0;          // round-robin submission cursor
  bool shutdown_ = false;
};

/// Convenience wrapper used by the discovery algorithms: serial fallback
/// when `pool` is null (or the range is trivial), pooled otherwise.
Status ParallelFor(ThreadPool* pool, int64_t n,
                   const std::function<Status(int64_t)>& fn);

}  // namespace famtree

#endif  // FAMTREE_COMMON_THREAD_POOL_H_
