#include "common/thread_pool.h"

#include <atomic>

#include "common/run_context.h"

namespace famtree {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  queues_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  wake_.notify_one();
}

bool ThreadPool::TryPop(int self, std::function<void()>* task) {
  // Own queue first (front: most recently local work)...
  {
    Queue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      *task = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  // ... then steal from the back of the siblings' queues.
  int n = static_cast<int>(queues_.size());
  for (int d = 1; d < n; ++d) {
    Queue& q = *queues_[(self + d) % n];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      *task = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(int self) {
  for (;;) {
    std::function<void()> task;
    if (TryPop(self, &task)) {
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        --outstanding_;
        if (outstanding_ == 0) idle_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return;
    // Re-check under the lock: a task may have been submitted between the
    // failed TryPop and acquiring mu_.
    wake_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return outstanding_ == 0; });
}

Status ThreadPool::ParallelFor(int64_t n,
                               const std::function<Status(int64_t)>& fn) {
  if (n <= 0) return Status::OK();
  // Shared iteration cursor: workers (and the calling thread) claim indices
  // until the range is exhausted or a failure is seen. The failure with the
  // smallest index wins so the reported Status does not depend on timing.
  struct Shared {
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> first_error_index{-1};
    /// Set on the first run-control failure (kCancelled, kDeadlineExceeded,
    /// kResourceExhausted): every worker drops out at its next claim, even
    /// at indices below the failure. Callers discard the whole batch on a
    /// stop, so losing the lowest-index guarantee there costs nothing,
    /// while the prompt halt is what bounds cancellation latency.
    std::atomic<bool> hard_stop{false};
    std::mutex mu;
    Status status;
  };
  auto shared = std::make_shared<Shared>();
  auto run = [shared, n, &fn] {
    for (;;) {
      if (shared->hard_stop.load(std::memory_order_acquire)) return;
      int64_t i = shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      int64_t err = shared->first_error_index.load(std::memory_order_acquire);
      if (err >= 0 && err < i) return;  // already failed earlier in the range
      Status st = fn(i);
      if (!st.ok()) {
        bool stop = RunContext::IsStop(st);
        {
          std::lock_guard<std::mutex> lock(shared->mu);
          int64_t cur = shared->first_error_index.load();
          if (cur < 0 || i < cur) {
            shared->first_error_index.store(i, std::memory_order_release);
            shared->status = std::move(st);
          }
        }
        if (stop) shared->hard_stop.store(true, std::memory_order_release);
      }
    }
  };
  int helpers = std::min<int64_t>(num_threads(), n);
  for (int t = 0; t < helpers; ++t) Submit(run);
  run();  // the caller participates instead of blocking idle
  Wait();
  std::lock_guard<std::mutex> lock(shared->mu);
  return shared->status;
}

Status ParallelFor(ThreadPool* pool, int64_t n,
                   const std::function<Status(int64_t)>& fn) {
  if (pool != nullptr && n > 1 && pool->num_threads() > 1) {
    return pool->ParallelFor(n, fn);
  }
  for (int64_t i = 0; i < n; ++i) FAMTREE_RETURN_NOT_OK(fn(i));
  return Status::OK();
}

}  // namespace famtree
