#ifndef FAMTREE_COMMON_RUN_CONTEXT_H_
#define FAMTREE_COMMON_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/status.h"
#include "common/thread_pool.h"

namespace famtree {

/// Cooperative cancellation flag. One token can be shared by many runs; a
/// caller on any thread flips it and every run polling it stops at its next
/// check-point. The token owns no resources and never blocks.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Byte-accounting budget shared by everything a run allocates: PLI builds,
/// evidence multisets, per-algorithm scratch. Charges accrue — cache-resident
/// structures are paid for when built and never refunded on eviction, so the
/// budget bounds what a run *constructs*, not the instantaneous heap. That
/// keeps the accounting one atomic add with no back-references from
/// long-lived caches to a short-lived budget.
class MemoryBudget {
 public:
  explicit MemoryBudget(size_t limit_bytes) : limit_(limit_bytes) {}

  /// Adds `bytes` to the accrued total; false when that would cross the
  /// limit (the charge is not recorded on failure).
  bool TryCharge(size_t bytes) {
    size_t used = used_.load(std::memory_order_relaxed);
    do {
      if (used + bytes > limit_) return false;
    } while (!used_.compare_exchange_weak(used, used + bytes,
                                          std::memory_order_relaxed));
    return true;
  }

  /// Refunds scratch that was charged and then freed within the run.
  void Release(size_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t limit() const { return limit_; }

  /// Bytes still chargeable before the limit. Advisory under concurrency;
  /// the out-of-core layer reads it to decide how much to spill before a
  /// charge, then still goes through TryCharge for the real answer.
  size_t remaining() const {
    size_t u = used();
    return u >= limit_ ? 0 : limit_ - u;
  }

 private:
  const size_t limit_;
  std::atomic<size_t> used_{0};
};

/// Deterministic fault injection for the robustness tests: fail the Nth
/// driver check-point (as if a deadline or budget had expired there), fail
/// the Nth charge at a named allocation site, or stretch every check-point
/// by a fixed latency. Check-points are counted only on the driver thread,
/// so an injected cutoff reproduces the identical partial result at any
/// thread count — that is what the differential tests replay.
class FaultInjector {
 public:
  struct Options {
    /// 1-based: the Nth RunContext::Checkpoint call fails; <= 0 disables.
    int64_t fail_at_checkpoint = -1;
    /// Code the injected check-point failure carries.
    StatusCode checkpoint_code = StatusCode::kDeadlineExceeded;
    /// 1-based over charges whose site matches `alloc_site`; <= 0 disables.
    int64_t fail_at_alloc = -1;
    /// Allocation-site filter; empty matches every site.
    std::string alloc_site;
    /// Latency added to every check-point (cancellation-latency harnesses).
    std::chrono::milliseconds checkpoint_delay{0};
  };

  explicit FaultInjector(Options options) : options_(std::move(options)) {}

  /// Counts one driver check-point; true exactly when the configured one is
  /// reached.
  bool ShouldFailCheckpoint() {
    int64_t seen = checkpoints_.fetch_add(1, std::memory_order_relaxed) + 1;
    return options_.fail_at_checkpoint > 0 &&
           seen == options_.fail_at_checkpoint;
  }

  /// Counts one charge at `site`; true exactly when the configured matching
  /// charge is reached.
  bool ShouldFailAlloc(const char* site) {
    if (!options_.alloc_site.empty() && options_.alloc_site != site) {
      return false;
    }
    int64_t seen = allocs_.fetch_add(1, std::memory_order_relaxed) + 1;
    return options_.fail_at_alloc > 0 && seen == options_.fail_at_alloc;
  }

  int64_t checkpoints_seen() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }
  int64_t allocs_seen() const {
    return allocs_.load(std::memory_order_relaxed);
  }
  const Options& options() const { return options_; }

 private:
  const Options options_;
  std::atomic<int64_t> checkpoints_{0};
  std::atomic<int64_t> allocs_{0};
};

/// What a limited run accomplished before it returned. Drivers fill this on
/// the RunContext: `exhausted` is set when any limit cut the run short, and
/// the partial results returned alongside are a deterministic prefix of the
/// full run's serial order.
struct RunReport {
  /// Name of the driver that owns the report (last BeginRun).
  std::string driver;
  /// True when a deadline/cancel/budget/injected fault stopped the run.
  bool exhausted = false;
  /// Stop reason: kCancelled, kDeadlineExceeded, or kResourceExhausted
  /// (kOk when the run completed).
  StatusCode stop_code = StatusCode::kOk;
  std::string stop_detail;
  /// Units of work fully finished / total scheduled. The unit is the
  /// driver's natural granularity: lattice levels for levelwise miners,
  /// candidates for sweep miners, passes for the repair applications.
  int64_t completed_units = 0;
  int64_t total_units = 0;
  /// Driver check-points passed (the granularity cancellation reacts at).
  int64_t checkpoints = 0;
};

/// Run-scoped control block threaded through every engine driver: a
/// deadline, a cooperative CancelToken, a MemoryBudget, and a FaultInjector,
/// plus the RunReport the driver leaves behind. All limits are optional; a
/// default RunContext (or a null pointer — every entry point below is
/// null-tolerant) changes nothing about a run.
///
/// Two probes with distinct contracts keep partial results deterministic:
///
///  - Checkpoint() is the *deterministic barrier*. Drivers call it on the
///    driver thread only, between units of work whose order does not depend
///    on the thread count (lattice levels, candidate batches, repair
///    passes). It is the only probe the FaultInjector's check-point counter
///    sees, so an injected cutoff lands at the same unit boundary at any
///    thread count.
///  - Poll() is the *cheap worker probe*. Workers call it per tile or per
///    candidate; it reads the latched stop flag, the cancel token, and
///    (strided) the clock — never the injector — so its call count may vary
///    with scheduling without perturbing the injected cutoff.
///
/// Once any probe observes a limit, the stop is latched: every subsequent
/// probe on any thread returns the same Status, which is how an in-flight
/// parallel batch drains promptly (ThreadPool::ParallelFor hard-stops on
/// latched codes).
class RunContext {
 public:
  using Clock = std::chrono::steady_clock;

  RunContext() = default;
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void set_timeout(std::chrono::nanoseconds timeout) {
    set_deadline(Clock::now() + timeout);
  }
  void clear_deadline() { has_deadline_ = false; }

  /// Borrowed; must outlive every run using this context.
  void set_cancel_token(CancelToken* token) { cancel_ = token; }
  void set_memory_budget(MemoryBudget* budget) { budget_ = budget; }
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  /// Units per anytime batch: AnytimeParallelFor places one Checkpoint
  /// between consecutive batches of this many units, which bounds both the
  /// cancellation latency and the rounding of a partial prefix.
  void set_unit_batch(int64_t units) { unit_batch_ = units < 1 ? 1 : units; }
  int64_t unit_batch() const { return unit_batch_; }

  CancelToken* cancel_token() const { return cancel_; }
  MemoryBudget* memory_budget() const { return budget_; }
  FaultInjector* fault_injector() const { return faults_; }

  /// Copy of the report of the most recent run.
  RunReport report() const {
    std::lock_guard<std::mutex> lock(mu_);
    return report_;
  }

  /// True for the three run-control codes a driver downgrades to a partial
  /// result (anything else stays a hard error).
  static bool IsStop(const Status& st) { return IsStopCode(st.code()); }
  static bool IsStopCode(StatusCode code) {
    return code == StatusCode::kCancelled ||
           code == StatusCode::kDeadlineExceeded ||
           code == StatusCode::kResourceExhausted;
  }

  // ------------------------------------------------- null-tolerant probes

  /// Starts a run: names the report and re-arms the stop latch (a still-set
  /// CancelToken or an expired deadline re-latches at the first probe, so
  /// reuse across runs is safe).
  static void BeginRun(RunContext* ctx, const char* driver);

  /// Deterministic barrier (driver thread only): consults the injector, the
  /// deadline, the cancel token, and the latched state, in that order.
  static Status Checkpoint(RunContext* ctx);

  /// Cheap worker-side probe: latched state, cancel token, and a strided
  /// deadline read. Never consults the injector.
  static Status Poll(RunContext* ctx);

  /// Charges `bytes` of scratch/cache construction against the budget and
  /// counts one allocation at `site` for the injector. On either failure the
  /// run latches kResourceExhausted and the stop Status is returned; the
  /// caller must back out without publishing partially built state.
  static Status ChargeAlloc(RunContext* ctx, size_t bytes, const char* site);

  /// Injector-only probe for fault points that model an allocation without
  /// a meaningful byte count (see FAMTREE_FAULT_POINT).
  static Status FaultPoint(RunContext* ctx, const char* site);

  /// The latched stop Status, or OK when the run is still live. Lets a
  /// caller that only sees a sentinel (e.g. PliCache::Get's nullptr)
  /// recover the reason.
  static Status StopStatus(RunContext* ctx);

  /// Latches an arbitrary hard failure (e.g. a spill-file write error) so
  /// every subsequent probe returns it and in-flight parallel work drains.
  /// Unlike the three run-control codes this does not read as a stop, so
  /// drivers surface it as an error instead of a partial result. Returns
  /// `st` unchanged (also with a null ctx or an OK status).
  static Status Fail(RunContext* ctx, const Status& st);

  /// Records that a limit cut the run short after `completed` of `total`
  /// units; the results returned alongside are the prefix those units
  /// produced.
  static void MarkExhausted(RunContext* ctx, const Status& stop,
                            int64_t completed, int64_t total);

  /// Records a run that finished every unit.
  static void MarkComplete(RunContext* ctx, int64_t units);

 private:
  Status CheckpointImpl();
  Status PollImpl();
  /// Latches the first stop; later calls return the original. Thread-safe.
  Status LatchStop(StatusCode code, const std::string& detail);
  Status LatchedStatus() const;

  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  int64_t unit_batch_ = 64;
  CancelToken* cancel_ = nullptr;
  MemoryBudget* budget_ = nullptr;
  FaultInjector* faults_ = nullptr;

  /// Latched stop code (StatusCode as int; kOk while live).
  std::atomic<int> stop_code_{0};
  std::atomic<int64_t> checkpoints_{0};
  std::atomic<uint32_t> polls_{0};  // strides the deadline clock reads

  mutable std::mutex mu_;  // guards stop_detail_ and report_
  std::string stop_detail_;
  RunReport report_;
};

/// Anytime fan-out: runs fn(i) for i in [0, n) in consecutive batches of
/// ctx->unit_batch() units with a deterministic Checkpoint between batches,
/// and a Poll in front of every unit. Returns the number of leading units
/// whose batches completed entirely — the caller consumes exactly the slots
/// [0, result) and discards the rest, which makes the partial output a
/// prefix of the serial order at any thread count. Non-stop errors from fn
/// propagate unchanged. A null ctx degenerates to one plain ParallelFor
/// over the whole range (returning n).
Result<int64_t> AnytimeParallelFor(RunContext* ctx, ThreadPool* pool,
                                   int64_t n,
                                   const std::function<Status(int64_t)>& fn);

}  // namespace famtree

/// Fine-grained fault points compiled in by -DFAMTREE_FAULTS (the CMake
/// option of the same name; defaults ON for Debug builds). The coarse sites
/// — "pli_build", "evidence_set", "evidence_tile", "csv_rows" — are always
/// compiled; this macro is for hot-loop sites too costly for release
/// builds.
#ifdef FAMTREE_FAULTS
#define FAMTREE_FAULT_POINT(ctx, site) \
  FAMTREE_RETURN_NOT_OK(::famtree::RunContext::FaultPoint((ctx), (site)))
#else
#define FAMTREE_FAULT_POINT(ctx, site) \
  do {                                 \
  } while (0)
#endif

#endif  // FAMTREE_COMMON_RUN_CONTEXT_H_
