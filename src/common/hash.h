#ifndef FAMTREE_COMMON_HASH_H_
#define FAMTREE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace famtree {

/// Mixes `v` into `seed` (boost::hash_combine recipe, 64-bit constants).
inline size_t HashCombine(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace famtree

#endif  // FAMTREE_COMMON_HASH_H_
