#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace famtree {

int64_t Rng::Zipf(int64_t n, double theta) {
  if (n <= 1) return 0;
  // Inverse-CDF sampling over the (unnormalized) harmonic weights. For the
  // sizes used by our generators (n up to ~1e6) a per-call linear scan would
  // be too slow, so use the standard rejection-free approximation by
  // partial-sum bisection over precomputed boundaries is overkill; a simple
  // iterative approach over a capped number of ranks suffices because the
  // head of a Zipf distribution carries almost all the mass.
  double u = NextDouble();
  double norm = 0.0;
  const int64_t cap = std::min<int64_t>(n, 10000);
  for (int64_t k = 0; k < cap; ++k) norm += 1.0 / std::pow(k + 1, theta);
  double target = u * norm;
  double acc = 0.0;
  for (int64_t k = 0; k < cap; ++k) {
    acc += 1.0 / std::pow(k + 1, theta);
    if (acc >= target) return k;
  }
  return cap - 1;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  std::vector<int> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  // Partial Fisher-Yates: only the first k positions need shuffling.
  for (int i = 0; i < k && i < n; ++i) {
    int j = static_cast<int>(Uniform(i, n - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(std::min(n, k));
  return idx;
}

}  // namespace famtree
