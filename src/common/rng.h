#ifndef FAMTREE_COMMON_RNG_H_
#define FAMTREE_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace famtree {

/// Deterministic random source used by generators, sampling-based discovery
/// algorithms and property tests. All randomized behaviour in the library is
/// seeded explicitly so experiments are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    std::uniform_real_distribution<double> d(0.0, 1.0);
    return d(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Gaussian sample.
  double Normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Zipf-distributed rank in [0, n): probability of rank k proportional to
  /// 1/(k+1)^theta. Used for skewed categorical domains.
  int64_t Zipf(int64_t n, double theta);

  /// Samples k distinct indices from [0, n) (k <= n), in arbitrary order.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace famtree

#endif  // FAMTREE_COMMON_RNG_H_
