#include "common/run_context.h"

#include <algorithm>
#include <thread>

namespace famtree {

void RunContext::BeginRun(RunContext* ctx, const char* driver) {
  if (ctx == nullptr) return;
  // Re-arm the latch: a still-cancelled token or an already-expired deadline
  // re-latches at the first probe of the new run.
  ctx->stop_code_.store(0, std::memory_order_release);
  ctx->checkpoints_.store(0, std::memory_order_relaxed);
  ctx->polls_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(ctx->mu_);
  ctx->stop_detail_.clear();
  ctx->report_ = RunReport{};
  ctx->report_.driver = driver;
}

Status RunContext::Checkpoint(RunContext* ctx) {
  if (ctx == nullptr) return Status::OK();
  return ctx->CheckpointImpl();
}

Status RunContext::Poll(RunContext* ctx) {
  if (ctx == nullptr) return Status::OK();
  return ctx->PollImpl();
}

Status RunContext::CheckpointImpl() {
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  if (faults_ != nullptr) {
    if (faults_->options().checkpoint_delay.count() > 0) {
      std::this_thread::sleep_for(faults_->options().checkpoint_delay);
    }
    // The injector is consulted first and unconditionally: its check-point
    // counter must advance identically at every thread count, even if a
    // racing worker latched a real limit in the meantime.
    if (faults_->ShouldFailCheckpoint()) {
      return LatchStop(faults_->options().checkpoint_code,
                       "injected fault at check-point " +
                           std::to_string(faults_->checkpoints_seen()));
    }
  }
  int latched = stop_code_.load(std::memory_order_acquire);
  if (latched != 0) return LatchedStatus();
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return LatchStop(StatusCode::kCancelled, "run cancelled via CancelToken");
  }
  if (has_deadline_ && Clock::now() >= deadline_) {
    return LatchStop(StatusCode::kDeadlineExceeded, "run deadline exceeded");
  }
  return Status::OK();
}

Status RunContext::PollImpl() {
  int latched = stop_code_.load(std::memory_order_acquire);
  if (latched != 0) return LatchedStatus();
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return LatchStop(StatusCode::kCancelled, "run cancelled via CancelToken");
  }
  if (has_deadline_) {
    // One clock read per 64 polls keeps the probe cheap enough for
    // per-candidate use while still bounding deadline latency.
    uint32_t p = polls_.fetch_add(1, std::memory_order_relaxed);
    if ((p & 63u) == 0 && Clock::now() >= deadline_) {
      return LatchStop(StatusCode::kDeadlineExceeded,
                       "run deadline exceeded");
    }
  }
  return Status::OK();
}

Status RunContext::ChargeAlloc(RunContext* ctx, size_t bytes,
                               const char* site) {
  if (ctx == nullptr) return Status::OK();
  int latched = ctx->stop_code_.load(std::memory_order_acquire);
  if (latched != 0) return ctx->LatchedStatus();
  if (ctx->faults_ != nullptr && ctx->faults_->ShouldFailAlloc(site)) {
    return ctx->LatchStop(
        StatusCode::kResourceExhausted,
        std::string("injected allocation failure at site '") + site + "'");
  }
  if (ctx->budget_ != nullptr && bytes > 0 &&
      !ctx->budget_->TryCharge(bytes)) {
    return ctx->LatchStop(
        StatusCode::kResourceExhausted,
        std::string("memory budget exhausted at site '") + site + "' (" +
            std::to_string(ctx->budget_->used()) + " of " +
            std::to_string(ctx->budget_->limit()) + " bytes accrued)");
  }
  return Status::OK();
}

Status RunContext::FaultPoint(RunContext* ctx, const char* site) {
  return ChargeAlloc(ctx, 0, site);
}

Status RunContext::StopStatus(RunContext* ctx) {
  if (ctx == nullptr) return Status::OK();
  return ctx->LatchedStatus();
}

Status RunContext::Fail(RunContext* ctx, const Status& st) {
  if (ctx == nullptr || st.ok()) return st;
  ctx->LatchStop(st.code(), st.message());
  return st;
}

Status RunContext::LatchStop(StatusCode code, const std::string& detail) {
  int expected = 0;
  if (stop_code_.compare_exchange_strong(expected, static_cast<int>(code),
                                         std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(mu_);
    stop_detail_ = detail;
    return Status(code, detail);
  }
  return LatchedStatus();
}

Status RunContext::LatchedStatus() const {
  StatusCode code =
      static_cast<StatusCode>(stop_code_.load(std::memory_order_acquire));
  if (code == StatusCode::kOk) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  return Status(code, stop_detail_);
}

void RunContext::MarkExhausted(RunContext* ctx, const Status& stop,
                               int64_t completed, int64_t total) {
  if (ctx == nullptr) return;
  // Keep StopStatus consistent with the report even when the driver
  // synthesized the stop itself.
  if (!stop.ok()) ctx->LatchStop(stop.code(), stop.message());
  std::lock_guard<std::mutex> lock(ctx->mu_);
  ctx->report_.exhausted = true;
  ctx->report_.stop_code = stop.code();
  ctx->report_.stop_detail = stop.message();
  ctx->report_.completed_units = completed;
  ctx->report_.total_units = total;
  ctx->report_.checkpoints = ctx->checkpoints_.load(std::memory_order_relaxed);
}

void RunContext::MarkComplete(RunContext* ctx, int64_t units) {
  if (ctx == nullptr) return;
  std::lock_guard<std::mutex> lock(ctx->mu_);
  ctx->report_.exhausted = false;
  ctx->report_.stop_code = StatusCode::kOk;
  ctx->report_.stop_detail.clear();
  ctx->report_.completed_units = units;
  ctx->report_.total_units = units;
  ctx->report_.checkpoints = ctx->checkpoints_.load(std::memory_order_relaxed);
}

Result<int64_t> AnytimeParallelFor(RunContext* ctx, ThreadPool* pool,
                                   int64_t n,
                                   const std::function<Status(int64_t)>& fn) {
  if (ctx == nullptr) {
    // No limits: one plain fan-out over the whole range, zero overhead.
    FAMTREE_RETURN_NOT_OK(ParallelFor(pool, n, fn));
    return n;
  }
  int64_t batch = ctx->unit_batch();
  int64_t done = 0;
  while (done < n) {
    Status gate = RunContext::Checkpoint(ctx);
    if (RunContext::IsStop(gate)) return done;
    FAMTREE_RETURN_NOT_OK(gate);
    int64_t end = std::min(n, done + batch);
    Status st = ParallelFor(pool, end - done, [&](int64_t k) -> Status {
      FAMTREE_RETURN_NOT_OK(RunContext::Poll(ctx));
      return fn(done + k);
    });
    // A stop mid-batch discards the whole batch: only fully completed
    // batches count, so the consumed prefix is a multiple of the batch size
    // and identical at any thread count under an injected cutoff.
    if (RunContext::IsStop(st)) return done;
    FAMTREE_RETURN_NOT_OK(st);
    done = end;
  }
  return done;
}

}  // namespace famtree
