#ifndef FAMTREE_COMMON_STRINGS_H_
#define FAMTREE_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace famtree {

/// Splits `s` on `sep`; keeps empty fields. Split("a,,b", ',') == {a,"",b}.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a full string as int64/double. Returns false on trailing garbage.
bool ParseInt64(std::string_view s, long long* out);
bool ParseDouble(std::string_view s, double* out);

/// Formats a double trimming trailing zeros ("3" not "3.000000").
std::string FormatDouble(double v);

/// Pads/truncates to exactly `width` columns, left-aligned.
std::string PadRight(std::string_view s, size_t width);
/// Right-aligned variant.
std::string PadLeft(std::string_view s, size_t width);

}  // namespace famtree

#endif  // FAMTREE_COMMON_STRINGS_H_
