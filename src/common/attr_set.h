#ifndef FAMTREE_COMMON_ATTR_SET_H_
#define FAMTREE_COMMON_ATTR_SET_H_

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace famtree {

/// A fixed-capacity set of non-negative indices stored as a multi-word bit
/// mask. `BasicAttrSet<kNumBits>` holds indices 0..kNumBits-1 in
/// kNumBits/64 words; the library-wide alias AttrSet below fixes the one
/// capacity every relation, driver and cover structure shares (kMaxAttrs).
///
/// Word 0 carries bits 0..63, so a set confined to the first 64 indices
/// behaves exactly like the historical single-uint64 mask: the comparison
/// order, the subset-enumeration order and mask() are all unchanged, which
/// is what keeps the engine's bit-identical determinism suites green across
/// the widening. Sets wider than one word pay a short fixed-length word
/// loop per operation; the hot single-word operations (Contains, With,
/// lowest-bit iteration) stay branch-free on the word that matters.
///
/// Every index-taking operation debug-asserts its bound: passing an index
/// at or above capacity() was silent UB with the old `1ULL << a` mask
/// arithmetic and now aborts in debug/sanitizer builds. In release builds
/// the word index is masked, so an out-of-range index can never corrupt
/// neighboring memory.
template <int kNumBits>
class BasicAttrSet {
  static_assert(kNumBits > 0 && kNumBits % 64 == 0,
                "capacity must be a positive multiple of 64");

 public:
  static constexpr int kCapacity = kNumBits;
  static constexpr int kWords = kNumBits / 64;

  constexpr BasicAttrSet() : w_{} {}
  /// Bits 0..63 from a single-word mask (the historical representation);
  /// higher words start empty.
  explicit constexpr BasicAttrSet(uint64_t mask) : w_{} { w_[0] = mask; }

  /// Builds a set from explicit indices, e.g. AttrSet::Of({0, 2}).
  static BasicAttrSet Of(std::initializer_list<int> attrs) {
    BasicAttrSet s;
    for (int a : attrs) s.Add(a);
    return s;
  }
  static BasicAttrSet Of(const std::vector<int>& attrs) {
    BasicAttrSet s;
    for (int a : attrs) s.Add(a);
    return s;
  }

  /// The full set {0, ..., n-1}. Width-safe: n is clamped to the capacity
  /// (and debug-asserted in range).
  static BasicAttrSet Full(int n) {
    assert(n >= 0 && n <= kCapacity);
    if (n < 0) n = 0;
    if (n > kCapacity) n = kCapacity;
    BasicAttrSet s;
    int whole = n / 64;
    for (int i = 0; i < whole; ++i) s.w_[i] = ~uint64_t{0};
    if (int rem = n % 64; rem != 0) s.w_[whole] = (uint64_t{1} << rem) - 1;
    return s;
  }

  static BasicAttrSet Single(int a) {
    BasicAttrSet s;
    s.Add(a);
    return s;
  }

  /// The half-open index range [lo, hi) as a set; both ends clamped to the
  /// capacity (and debug-asserted in range). Empty when lo >= hi.
  static BasicAttrSet Range(int lo, int hi) {
    assert(lo >= 0 && hi <= kCapacity);
    if (lo < 0) lo = 0;
    if (hi > kCapacity) hi = kCapacity;
    if (lo >= hi) return BasicAttrSet();
    return Full(hi).Minus(Full(lo));
  }

  void Add(int a) {
    assert(InRange(a));
    w_[WordOf(a)] |= BitOf(a);
  }
  void Remove(int a) {
    assert(InRange(a));
    w_[WordOf(a)] &= ~BitOf(a);
  }
  bool Contains(int a) const {
    assert(InRange(a));
    return (w_[WordOf(a)] & BitOf(a)) != 0;
  }
  bool ContainsAll(const BasicAttrSet& other) const {
    for (int i = 0; i < kWords; ++i) {
      if ((w_[i] & other.w_[i]) != other.w_[i]) return false;
    }
    return true;
  }
  bool Intersects(const BasicAttrSet& other) const {
    for (int i = 0; i < kWords; ++i) {
      if ((w_[i] & other.w_[i]) != 0) return true;
    }
    return false;
  }
  bool empty() const {
    for (int i = 0; i < kWords; ++i) {
      if (w_[i] != 0) return false;
    }
    return true;
  }
  int size() const {
    int n = 0;
    for (int i = 0; i < kWords; ++i) n += __builtin_popcountll(w_[i]);
    return n;
  }

  /// The historical single-word view. Only meaningful while the set is
  /// confined to indices 0..63; debug-asserts exactly that, so narrow-era
  /// callers (tests, logs) keep working and wide sets fail loudly instead
  /// of truncating.
  uint64_t mask() const {
    for (int i = 1; i < kWords; ++i) assert(w_[i] == 0);
    return w_[0];
  }
  /// Raw 64-bit word `i` (bits 64*i .. 64*i+63).
  uint64_t word(int i) const {
    assert(i >= 0 && i < kWords);
    return w_[i & (kWords - 1)];
  }

  BasicAttrSet Union(const BasicAttrSet& o) const {
    BasicAttrSet r;
    for (int i = 0; i < kWords; ++i) r.w_[i] = w_[i] | o.w_[i];
    return r;
  }
  BasicAttrSet Intersect(const BasicAttrSet& o) const {
    BasicAttrSet r;
    for (int i = 0; i < kWords; ++i) r.w_[i] = w_[i] & o.w_[i];
    return r;
  }
  BasicAttrSet Minus(const BasicAttrSet& o) const {
    BasicAttrSet r;
    for (int i = 0; i < kWords; ++i) r.w_[i] = w_[i] & ~o.w_[i];
    return r;
  }
  BasicAttrSet With(int a) const {
    BasicAttrSet r = *this;
    r.Add(a);
    return r;
  }
  BasicAttrSet Without(int a) const {
    BasicAttrSet r = *this;
    r.Remove(a);
    return r;
  }

  /// Lowest member index, or -1 when empty.
  int LowestBit() const {
    for (int i = 0; i < kWords; ++i) {
      if (w_[i] != 0) return i * 64 + __builtin_ctzll(w_[i]);
    }
    return -1;
  }
  /// Removes and returns the lowest member; -1 when empty. The workhorse of
  /// the trie walks: `while ((bit = s.PopLowestBit()) >= 0) ...`.
  int PopLowestBit() {
    for (int i = 0; i < kWords; ++i) {
      if (w_[i] != 0) {
        int bit = __builtin_ctzll(w_[i]);
        w_[i] &= w_[i] - 1;
        return i * 64 + bit;
      }
    }
    return -1;
  }

  /// Member indices in increasing order.
  std::vector<int> ToVector() const {
    std::vector<int> out;
    out.reserve(size());
    for (int i = 0; i < kWords; ++i) {
      uint64_t m = w_[i];
      while (m) {
        out.push_back(i * 64 + __builtin_ctzll(m));
        m &= m - 1;
      }
    }
    return out;
  }

  /// Forward iteration over member indices in increasing order, enabling
  /// `for (int a : set)` without materializing a vector.
  class const_iterator {
   public:
    using value_type = int;
    int operator*() const { return bit_; }
    const_iterator& operator++() {
      bit_ = set_->NextBit(bit_ + 1);
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.bit_ == b.bit_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.bit_ != b.bit_;
    }

   private:
    friend class BasicAttrSet;
    const_iterator(const BasicAttrSet* set, int bit) : set_(set), bit_(bit) {}
    const BasicAttrSet* set_;
    int bit_;
  };
  const_iterator begin() const { return const_iterator(this, NextBit(0)); }
  const_iterator end() const { return const_iterator(this, kCapacity); }

  /// Stable mixing hash over all words, for the unordered lattice / cache /
  /// dedup containers previously keyed by the raw mask.
  size_t Hash() const {
    uint64_t h = uint64_t{0xcbf29ce484222325};
    for (int i = 0; i < kWords; ++i) {
      h ^= w_[i] + uint64_t{0x9e3779b97f4a7c15} + (h << 6) + (h >> 2);
      h *= uint64_t{0x100000001b3};
    }
    return static_cast<size_t>(h);
  }

  /// "{0, 2, 5}", for test failure messages and logs.
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (int a : *this) {
      if (!first) out += ", ";
      out += std::to_string(a);
      first = false;
    }
    out += "}";
    return out;
  }

  friend bool operator==(const BasicAttrSet& a, const BasicAttrSet& b) {
    for (int i = 0; i < kWords; ++i) {
      if (a.w_[i] != b.w_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const BasicAttrSet& a, const BasicAttrSet& b) {
    return !(a == b);
  }
  friend std::ostream& operator<<(std::ostream& os, const BasicAttrSet& s) {
    return os << s.ToString();
  }
  /// Numeric order of the full multi-word mask (highest word first), which
  /// coincides with the historical uint64 mask order for narrow sets — the
  /// order every deterministic collect/replay in the engine sorts by.
  friend bool operator<(const BasicAttrSet& a, const BasicAttrSet& b) {
    for (int i = kWords - 1; i >= 0; --i) {
      if (a.w_[i] != b.w_[i]) return a.w_[i] < b.w_[i];
    }
    return false;
  }

 private:
  static constexpr bool InRange(int a) { return a >= 0 && a < kCapacity; }
  static constexpr int WordOf(int a) {
    return (a >> 6) & (kWords - 1);  // masked: never out of bounds
  }
  static constexpr uint64_t BitOf(int a) { return uint64_t{1} << (a & 63); }

  /// Lowest member index >= from, or kCapacity when none.
  int NextBit(int from) const {
    if (from >= kCapacity) return kCapacity;
    int wi = from >> 6;
    uint64_t m = w_[wi] & (~uint64_t{0} << (from & 63));
    while (true) {
      if (m != 0) return wi * 64 + __builtin_ctzll(m);
      if (++wi == kWords) return kCapacity;
      m = w_[wi];
    }
  }

  uint64_t w_[kWords];
};

/// The single real capacity constant: the maximum number of attributes a
/// relation (and any attribute/predicate bit set) may have. Every driver
/// guard quotes this via CheckAttrCapacity — no per-file magic numbers.
inline constexpr int kMaxAttrs = 256;

/// The library-wide attribute set. 256 bits = 4 words covers the paper's
/// dataspace-assembly setting (100+ synonym attributes) and the set-based
/// wide-OD workloads with room to spare; widen the alias to widen the
/// whole engine.
using AttrSet = BasicAttrSet<kMaxAttrs>;

/// Hash functor for unordered containers keyed by attribute sets.
struct AttrSetHash {
  template <int kNumBits>
  size_t operator()(const BasicAttrSet<kNumBits>& s) const {
    return s.Hash();
  }
};

/// The shared driver capacity guard: OK when a relation with `num_attrs`
/// columns fits the AttrSet capacity, Status::Invalid quoting kMaxAttrs
/// (and `what`, e.g. "TANE") otherwise. Replaces the per-driver
/// `nc > 63` checks that each quoted their own magic limit.
Status CheckAttrCapacity(int num_attrs, const char* what);

/// Enumerates all subsets of {0,..,n-1} with exactly `k` elements in
/// increasing mask order (colexicographic on the index sets). Used by
/// levelwise lattice searches. Width-safe for any n up to kMaxAttrs.
std::vector<AttrSet> AllSubsetsOfSize(int n, int k);

/// All non-empty proper subsets of `s` (2^|s| - 2 of them), in decreasing
/// mask order. The caller is responsible for keeping |s| small enough that
/// the enumeration is tractable.
std::vector<AttrSet> ProperNonEmptySubsets(AttrSet s);

}  // namespace famtree

#endif  // FAMTREE_COMMON_ATTR_SET_H_
