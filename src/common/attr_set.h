#ifndef FAMTREE_COMMON_ATTR_SET_H_
#define FAMTREE_COMMON_ATTR_SET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace famtree {

/// A set of attribute indices represented as a 64-bit mask. Relations in this
/// library are limited to 64 attributes, which comfortably covers the data
/// profiling workloads the paper considers (lattice searches are exponential
/// in the attribute count anyway).
class AttrSet {
 public:
  AttrSet() : mask_(0) {}
  explicit AttrSet(uint64_t mask) : mask_(mask) {}
  /// Builds a set from explicit indices, e.g. AttrSet::Of({0, 2}).
  static AttrSet Of(std::initializer_list<int> attrs) {
    AttrSet s;
    for (int a : attrs) s.Add(a);
    return s;
  }
  static AttrSet Of(const std::vector<int>& attrs) {
    AttrSet s;
    for (int a : attrs) s.Add(a);
    return s;
  }
  /// The full set {0, ..., n-1}.
  static AttrSet Full(int n) {
    return n >= 64 ? AttrSet(~0ULL) : AttrSet((1ULL << n) - 1);
  }
  static AttrSet Single(int a) { return AttrSet(1ULL << a); }

  void Add(int a) { mask_ |= (1ULL << a); }
  void Remove(int a) { mask_ &= ~(1ULL << a); }
  bool Contains(int a) const { return (mask_ >> a) & 1ULL; }
  bool ContainsAll(AttrSet other) const {
    return (mask_ & other.mask_) == other.mask_;
  }
  bool Intersects(AttrSet other) const { return (mask_ & other.mask_) != 0; }
  bool empty() const { return mask_ == 0; }
  int size() const { return __builtin_popcountll(mask_); }
  uint64_t mask() const { return mask_; }

  AttrSet Union(AttrSet o) const { return AttrSet(mask_ | o.mask_); }
  AttrSet Intersect(AttrSet o) const { return AttrSet(mask_ & o.mask_); }
  AttrSet Minus(AttrSet o) const { return AttrSet(mask_ & ~o.mask_); }
  AttrSet With(int a) const { return AttrSet(mask_ | (1ULL << a)); }
  AttrSet Without(int a) const { return AttrSet(mask_ & ~(1ULL << a)); }

  /// Member indices in increasing order.
  std::vector<int> ToVector() const {
    std::vector<int> out;
    uint64_t m = mask_;
    while (m) {
      int a = __builtin_ctzll(m);
      out.push_back(a);
      m &= m - 1;
    }
    return out;
  }

  friend bool operator==(AttrSet a, AttrSet b) { return a.mask_ == b.mask_; }
  friend bool operator!=(AttrSet a, AttrSet b) { return a.mask_ != b.mask_; }
  friend bool operator<(AttrSet a, AttrSet b) { return a.mask_ < b.mask_; }

 private:
  uint64_t mask_;
};

/// Enumerates all non-empty subsets of {0,..,n-1} of exactly `k` elements in
/// lexicographic mask order. Used by levelwise lattice searches.
std::vector<AttrSet> AllSubsetsOfSize(int n, int k);

/// All non-empty proper subsets of `s` (2^|s| - 2 of them).
std::vector<AttrSet> ProperNonEmptySubsets(AttrSet s);

}  // namespace famtree

#endif  // FAMTREE_COMMON_ATTR_SET_H_
