#ifndef FAMTREE_ENGINE_EVIDENCE_CACHE_H_
#define FAMTREE_ENGINE_EVIDENCE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "engine/evidence.h"
#include "relation/encoded_relation.h"

namespace famtree {

/// Content fingerprint of an encoding: hashes the shape, the per-column
/// dictionary sizes and every code array. Two encodings with the same
/// fingerprint hold the same code matrix, so any evidence set built from
/// one is valid for the other — which keys the cache by data, not by
/// address, and keeps entries correct across re-encodings and distinct
/// relations with identical content.
uint64_t EncodingFingerprint(const EncodedRelation& encoded);

/// A shared, thread-safe, size-bounded LRU store of evidence multisets,
/// keyed by (relation fingerprint, column set, distance config) — the
/// sibling of PliCache one level up: PliCache memoizes partitions, this
/// memoizes the pairwise comparison structure every evidence consumer
/// (FASTDC, DD/MD/NED/MFD, constant-CFD pruning) starts from.
///
/// Entries are shared_ptr<const EvidenceSet>, so an evicted set stays alive
/// for callers still holding it. A miss is computed outside the lock; two
/// racing threads build the same (bit-identical) set and the first insert
/// wins.
class EvidenceCache {
 public:
  struct Options {
    size_t max_bytes = 32ull << 20;
  };

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t builds = 0;
    size_t bytes = 0;
  };

  EvidenceCache() : EvidenceCache(Options()) {}
  explicit EvidenceCache(Options options) : options_(options) {}

  /// Canonical cache key of a build request: the encoding fingerprint plus
  /// an exact serialization of the column config (attributes, comparison
  /// modes, metric names, threshold bit patterns, track flags). The
  /// enumeration strategy (dense / pruned / thread count) is deliberately
  /// not part of the key — every strategy produces the identical multiset.
  static std::string KeyFor(const EncodedRelation& encoded,
                            const std::vector<EvidenceColumn>& columns);

  std::shared_ptr<const EvidenceSet> Lookup(const std::string& key);

  /// Inserts under the lock, evicting LRU entries over budget. Returns the
  /// winning entry (an earlier racing insert keeps priority).
  std::shared_ptr<const EvidenceSet> Insert(
      const std::string& key, std::shared_ptr<const EvidenceSet> set);

  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const EvidenceSet> set;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_pos;
  };

  const Options options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // most recently used first
  Stats stats_;
};

/// The consumer-facing entry point: serves the evidence set from `cache`
/// when one is attached (building and inserting on a miss), or builds
/// directly when `cache` is null. Only all-pairs builds are cacheable;
/// explicit pair lists (FASTDC sampling) bypass the cache.
Result<std::shared_ptr<const EvidenceSet>> GetOrBuildEvidence(
    EvidenceCache* cache, const EncodedRelation& encoded,
    const std::vector<EvidenceColumn>& columns,
    const EvidenceOptions& options);

}  // namespace famtree

#endif  // FAMTREE_ENGINE_EVIDENCE_CACHE_H_
