#ifndef FAMTREE_ENGINE_EVIDENCE_CACHE_H_
#define FAMTREE_ENGINE_EVIDENCE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "engine/evidence.h"
#include "relation/encoded_relation.h"

namespace famtree {

/// Content fingerprint of an encoding: hashes the shape, the per-column
/// dictionary sizes and every code array. Two encodings with the same
/// fingerprint hold the same code matrix, so any evidence set built from
/// one is valid for the other — which keys the cache by data, not by
/// address, and keeps entries correct across re-encodings and distinct
/// relations with identical content.
uint64_t EncodingFingerprint(const EncodedRelation& encoded);

/// A shared, thread-safe, size-bounded LRU store of evidence multisets,
/// keyed by (relation fingerprint, column set, distance config) — the
/// sibling of PliCache one level up: PliCache memoizes partitions, this
/// memoizes the pairwise comparison structure every evidence consumer
/// (FASTDC, DD/MD/NED/MFD, constant-CFD pruning) starts from.
///
/// Entries are shared_ptr<const EvidenceSet>, so an evicted set stays alive
/// for callers still holding it. A miss is computed outside the lock; two
/// racing threads build the same (bit-identical) set and the first insert
/// wins.
class EvidenceCache {
 public:
  struct Options {
    size_t max_bytes = 32ull << 20;
  };

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t builds = 0;
    size_t bytes = 0;
  };

  EvidenceCache() : EvidenceCache(Options()) {}
  explicit EvidenceCache(Options options) : options_(options) {}

  /// Canonical cache key of a build request: the encoding fingerprint plus
  /// an exact serialization of the column config (attributes, comparison
  /// modes, metric names, threshold bit patterns, track flags). The
  /// enumeration strategy (dense / pruned / thread count) is deliberately
  /// not part of the key — every strategy produces the identical multiset.
  static std::string KeyFor(const EncodedRelation& encoded,
                            const std::vector<EvidenceColumn>& columns);

  /// Same key with a precomputed fingerprint. The fingerprint is always the
  /// first 16 hex characters of the key — EraseFingerprint and
  /// MaintainAppend select entries by that prefix.
  static std::string KeyForFingerprint(
      uint64_t fingerprint, const std::vector<EvidenceColumn>& columns);

  std::shared_ptr<const EvidenceSet> Lookup(const std::string& key);

  /// Inserts under the lock, evicting LRU entries over budget. Returns the
  /// winning entry (an earlier racing insert keeps priority). `config`,
  /// when non-empty, records the column set the entry was built from
  /// (borrowed table pointers sanitized to null) and makes the entry
  /// maintainable across appends; `num_rows` is the relation size the set
  /// ranges over.
  std::shared_ptr<const EvidenceSet> Insert(
      const std::string& key, std::shared_ptr<const EvidenceSet> set,
      std::vector<EvidenceColumn> config = {}, int num_rows = 0);

  /// Advances every maintainable entry of the pre-append encoding to the
  /// appended one: builds the new-pair delta per stored config
  /// (BuildEvidenceDelta), merges it into the cached multiset, re-inserts
  /// under the appended fingerprint, and finally drops everything still
  /// keyed by the old fingerprint (including non-maintainable legacy
  /// entries — stale sets must not survive under a dead key). Bit-identical
  /// to evicting and cold-rebuilding, at new-pairs cost.
  Status MaintainAppend(const EncodedRelation& encoded,
                        uint64_t old_fingerprint, int old_rows,
                        const EvidenceOptions& options);

  /// Drops every entry keyed by `fingerprint` (the 16-hex key prefix).
  /// DiscoveryEngine's forget paths call this so a forgotten relation's
  /// evidence cannot be served to an unrelated relation that later hashes
  /// to the same address.
  void EraseFingerprint(uint64_t fingerprint);

  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const EvidenceSet> set;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_pos;
    /// Rebuild recipe for MaintainAppend; empty for entries inserted
    /// without one (then maintainable is false and appends evict instead).
    std::vector<EvidenceColumn> config;
    int num_rows = 0;
    bool maintainable = false;
  };

  /// Erases one entry by iterator, adjusting stats; returns the next
  /// iterator. Caller holds mu_.
  std::unordered_map<std::string, Entry>::iterator EraseLocked(
      std::unordered_map<std::string, Entry>::iterator it);

  const Options options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // most recently used first
  Stats stats_;
};

/// The consumer-facing entry point: serves the evidence set from `cache`
/// when one is attached (building and inserting on a miss), or builds
/// directly when `cache` is null. Only all-pairs builds are cacheable;
/// explicit pair lists (FASTDC sampling) bypass the cache.
Result<std::shared_ptr<const EvidenceSet>> GetOrBuildEvidence(
    EvidenceCache* cache, const EncodedRelation& encoded,
    const std::vector<EvidenceColumn>& columns,
    const EvidenceOptions& options);

}  // namespace famtree

#endif  // FAMTREE_ENGINE_EVIDENCE_CACHE_H_
