#include "engine/evidence_cache.h"

#include <cstdio>
#include <cstring>
#include <utility>

#include "common/hash.h"

namespace famtree {

uint64_t EncodingFingerprint(const EncodedRelation& encoded) {
  size_t h = HashCombine(0x66616d74, static_cast<size_t>(encoded.num_rows()));
  h = HashCombine(h, static_cast<size_t>(encoded.num_columns()));
  for (int c = 0; c < encoded.num_columns(); ++c) {
    h = HashCombine(h, static_cast<size_t>(encoded.dict_size(c)));
    // The code arrays determine every equality relationship; dictionaries
    // are representatives of the same classes, so codes alone suffice.
    for (uint32_t code : encoded.codes(c)) {
      h = HashCombine(h, static_cast<size_t>(code));
    }
  }
  return static_cast<uint64_t>(h);
}

std::string EvidenceCache::KeyFor(const EncodedRelation& encoded,
                                  const std::vector<EvidenceColumn>& columns) {
  return KeyForFingerprint(EncodingFingerprint(encoded), columns);
}

std::string EvidenceCache::KeyForFingerprint(
    uint64_t fp, const std::vector<EvidenceColumn>& columns) {
  std::string key;
  key.reserve(32 + columns.size() * 32);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  key += buf;
  for (const EvidenceColumn& c : columns) {
    std::snprintf(buf, sizeof(buf), "|%d:%d:%d:", c.attr,
                  static_cast<int>(c.cmp), c.track_max ? 1 : 0);
    key += buf;
    if (c.metric != nullptr) key += c.metric->name();
    for (double t : c.thresholds) {
      // Thresholds compare by exact double, so the key uses the bit
      // pattern, not a rounded decimal print.
      uint64_t bits;
      std::memcpy(&bits, &t, sizeof(bits));
      std::snprintf(buf, sizeof(buf), ",%016llx",
                    static_cast<unsigned long long>(bits));
      key += buf;
    }
  }
  return key;
}

std::shared_ptr<const EvidenceSet> EvidenceCache::Lookup(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.set;
}

std::shared_ptr<const EvidenceSet> EvidenceCache::Insert(
    const std::string& key, std::shared_ptr<const EvidenceSet> set,
    std::vector<EvidenceColumn> config, int num_rows) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.builds;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A racing build got here first; its (bit-identical) set wins.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.set;
  }
  Entry entry;
  entry.set = std::move(set);
  entry.bytes = entry.set->footprint_bytes();
  entry.maintainable = !config.empty();
  entry.config = std::move(config);
  entry.num_rows = num_rows;
  // The stored config must not borrow caller-owned distance tables: the
  // entry outlives the build call, and MaintainAppend rebuilds from it.
  for (EvidenceColumn& c : entry.config) c.table = nullptr;
  lru_.push_front(key);
  entry.lru_pos = lru_.begin();
  stats_.bytes += entry.bytes;
  auto result = entries_.emplace(key, std::move(entry)).first->second.set;
  while (stats_.bytes > options_.max_bytes && lru_.size() > 1) {
    const std::string& victim = lru_.back();
    auto vit = entries_.find(victim);
    stats_.bytes -= vit->second.bytes;
    ++stats_.evictions;
    entries_.erase(vit);
    lru_.pop_back();
  }
  return result;
}

std::unordered_map<std::string, EvidenceCache::Entry>::iterator
EvidenceCache::EraseLocked(
    std::unordered_map<std::string, Entry>::iterator it) {
  stats_.bytes -= it->second.bytes;
  ++stats_.evictions;
  lru_.erase(it->second.lru_pos);
  return entries_.erase(it);
}

namespace {

std::string FingerprintPrefix(uint64_t fingerprint) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return std::string(buf);
}

}  // namespace

void EvidenceCache::EraseFingerprint(uint64_t fingerprint) {
  const std::string prefix = FingerprintPrefix(fingerprint);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      it = EraseLocked(it);
    } else {
      ++it;
    }
  }
}

Status EvidenceCache::MaintainAppend(const EncodedRelation& encoded,
                                     uint64_t old_fingerprint, int old_rows,
                                     const EvidenceOptions& options) {
  const uint64_t new_fingerprint = EncodingFingerprint(encoded);
  if (new_fingerprint == old_fingerprint) return Status::OK();
  const std::string old_prefix = FingerprintPrefix(old_fingerprint);

  // Snapshot the maintainable entries outside the build work: delta builds
  // can be expensive and must not hold the cache lock.
  struct Work {
    std::string suffix;  // key minus the fingerprint prefix
    std::vector<EvidenceColumn> config;
    std::shared_ptr<const EvidenceSet> base;
  };
  std::vector<Work> work;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, entry] : entries_) {
      if (key.compare(0, old_prefix.size(), old_prefix) != 0) continue;
      if (!entry.maintainable || entry.num_rows != old_rows) continue;
      work.push_back({key.substr(old_prefix.size()), entry.config, entry.set});
    }
  }

  Status status = Status::OK();
  for (Work& w : work) {
    auto delta = BuildEvidenceDelta(encoded, w.config, old_rows, options);
    if (!delta.ok()) {
      status = delta.status();
      break;
    }
    auto merged = MergeEvidenceSets(*w.base, *delta.value(), options);
    if (!merged.ok()) {
      status = merged.status();
      break;
    }
    Insert(FingerprintPrefix(new_fingerprint) + w.suffix,
           std::move(merged).value(), std::move(w.config),
           encoded.num_rows());
  }

  // Whatever happened, nothing may stay keyed by the dead fingerprint —
  // a later relation hashing to the same content as the *old* state would
  // otherwise be served sets missing the appended rows' pairs. (It can't:
  // the fingerprint covers the code matrix. But non-maintainable leftovers
  // would still be unreachable garbage.)
  EraseFingerprint(old_fingerprint);
  return status;
}

EvidenceCache::Stats EvidenceCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Result<std::shared_ptr<const EvidenceSet>> GetOrBuildEvidence(
    EvidenceCache* cache, const EncodedRelation& encoded,
    const std::vector<EvidenceColumn>& columns,
    const EvidenceOptions& options) {
  std::string key;
  if (cache != nullptr) {
    key = EvidenceCache::KeyFor(encoded, columns);
    if (auto hit = cache->Lookup(key)) return hit;
  }
  FAMTREE_ASSIGN_OR_RETURN(std::shared_ptr<const EvidenceSet> set,
                           BuildEvidence(encoded, columns, options));
  if (cache != nullptr) {
    return cache->Insert(key, std::move(set), columns, encoded.num_rows());
  }
  return set;
}

}  // namespace famtree
