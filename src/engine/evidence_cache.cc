#include "engine/evidence_cache.h"

#include <cstdio>
#include <cstring>
#include <utility>

#include "common/hash.h"

namespace famtree {

uint64_t EncodingFingerprint(const EncodedRelation& encoded) {
  size_t h = HashCombine(0x66616d74, static_cast<size_t>(encoded.num_rows()));
  h = HashCombine(h, static_cast<size_t>(encoded.num_columns()));
  for (int c = 0; c < encoded.num_columns(); ++c) {
    h = HashCombine(h, static_cast<size_t>(encoded.dict_size(c)));
    // The code arrays determine every equality relationship; dictionaries
    // are representatives of the same classes, so codes alone suffice.
    for (uint32_t code : encoded.codes(c)) {
      h = HashCombine(h, static_cast<size_t>(code));
    }
  }
  return static_cast<uint64_t>(h);
}

std::string EvidenceCache::KeyFor(const EncodedRelation& encoded,
                                  const std::vector<EvidenceColumn>& columns) {
  std::string key;
  key.reserve(32 + columns.size() * 32);
  char buf[32];
  uint64_t fp = EncodingFingerprint(encoded);
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  key += buf;
  for (const EvidenceColumn& c : columns) {
    std::snprintf(buf, sizeof(buf), "|%d:%d:%d:", c.attr,
                  static_cast<int>(c.cmp), c.track_max ? 1 : 0);
    key += buf;
    if (c.metric != nullptr) key += c.metric->name();
    for (double t : c.thresholds) {
      // Thresholds compare by exact double, so the key uses the bit
      // pattern, not a rounded decimal print.
      uint64_t bits;
      std::memcpy(&bits, &t, sizeof(bits));
      std::snprintf(buf, sizeof(buf), ",%016llx",
                    static_cast<unsigned long long>(bits));
      key += buf;
    }
  }
  return key;
}

std::shared_ptr<const EvidenceSet> EvidenceCache::Lookup(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.set;
}

std::shared_ptr<const EvidenceSet> EvidenceCache::Insert(
    const std::string& key, std::shared_ptr<const EvidenceSet> set) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.builds;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A racing build got here first; its (bit-identical) set wins.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.set;
  }
  Entry entry;
  entry.set = std::move(set);
  entry.bytes = entry.set->footprint_bytes();
  lru_.push_front(key);
  entry.lru_pos = lru_.begin();
  stats_.bytes += entry.bytes;
  auto result = entries_.emplace(key, std::move(entry)).first->second.set;
  while (stats_.bytes > options_.max_bytes && lru_.size() > 1) {
    const std::string& victim = lru_.back();
    auto vit = entries_.find(victim);
    stats_.bytes -= vit->second.bytes;
    ++stats_.evictions;
    entries_.erase(vit);
    lru_.pop_back();
  }
  return result;
}

EvidenceCache::Stats EvidenceCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Result<std::shared_ptr<const EvidenceSet>> GetOrBuildEvidence(
    EvidenceCache* cache, const EncodedRelation& encoded,
    const std::vector<EvidenceColumn>& columns,
    const EvidenceOptions& options) {
  std::string key;
  if (cache != nullptr) {
    key = EvidenceCache::KeyFor(encoded, columns);
    if (auto hit = cache->Lookup(key)) return hit;
  }
  FAMTREE_ASSIGN_OR_RETURN(std::shared_ptr<const EvidenceSet> set,
                           BuildEvidence(encoded, columns, options));
  if (cache != nullptr) return cache->Insert(key, std::move(set));
  return set;
}

}  // namespace famtree
