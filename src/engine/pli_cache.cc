#include "engine/pli_cache.h"

#include <algorithm>

#include "relation/ooc/ooc_pli.h"

namespace famtree {

namespace {

/// Streaming PliDeltaIndex build for the out-of-core backend: one pass
/// over the pre-append shards' column, one shard resident at a time.
Status BuildDeltaIndexOoc(const ShardedEncodedRelation& sharded, int col,
                          int old_rows, int dict_size, PliDeltaIndex* index) {
  index->count.assign(dict_size, 0);
  index->single_row.assign(dict_size, -1);
  std::vector<uint32_t> scratch;
  for (int s = 0; s < sharded.num_shards(); ++s) {
    int begin = sharded.shard_row_begin(s);
    if (begin >= old_rows) break;  // shards are in row order
    FAMTREE_RETURN_NOT_OK(sharded.LoadShardColumn(s, col, &scratch));
    for (int i = 0; i < sharded.shard_num_rows(s); ++i) {
      uint32_t code = scratch[i];
      ++index->count[code];
      // Last occurrence; demoted to -1 below unless the count stayed 1.
      index->single_row[code] = begin + i;
    }
  }
  for (int code = 0; code < dict_size; ++code) {
    if (index->count[code] != 1) index->single_row[code] = -1;
  }
  index->rows_indexed = old_rows;
  return Status::OK();
}

}  // namespace

PliCache::PliCache(const Relation& relation, Options options)
    : relation_(&relation),
      num_rows_(relation.num_rows()),
      num_columns_(relation.num_columns()),
      fingerprint_(0),
      options_(options),
      encoded_(std::make_shared<const EncodedRelation>(relation)) {
  chain_ = RelationRowChain(relation, 0, num_rows_, kRelationChainSeed);
  fingerprint_ =
      FinalizeRelationFingerprint(chain_, relation.schema(), num_rows_);
}

PliCache::PliCache(const ShardedEncodedRelation& sharded, Options options)
    : sharded_(&sharded),
      num_rows_(sharded.num_rows()),
      num_columns_(sharded.num_columns()),
      fingerprint_(sharded.fingerprint()),
      options_(options) {}

size_t PliCache::FootprintOf(const StrippedPartition& pli) {
  // Flat CSR arrays (row indices + class offsets) plus the object itself.
  return sizeof(StrippedPartition) +
         static_cast<size_t>(pli.num_rows_in_classes()) * sizeof(int) +
         (static_cast<size_t>(pli.num_classes()) + 1) * sizeof(int);
}

const EncodedRelation* PliCache::encoded_or_null() const {
  std::lock_guard<std::mutex> lock(mu_);
  return encoded_.get();
}

Status PliCache::EnsureEncoded(RunContext* ctx) {
  if (sharded_ == nullptr) return Status::OK();  // built in the constructor
  std::lock_guard<std::mutex> serialize(encode_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (encoded_ != nullptr) return Status::OK();
  }
  FAMTREE_ASSIGN_OR_RETURN(std::shared_ptr<const EncodedRelation> enc,
                           sharded_->MaterializeEncoded(ctx));
  std::lock_guard<std::mutex> lock(mu_);
  encoded_ = std::move(enc);
  return Status::OK();
}

std::shared_ptr<const StrippedPartition> PliCache::Get(AttrSet attrs,
                                                       RunContext* ctx) {
  if (attrs.empty() || !AttrSet::Full(num_columns_).ContainsAll(attrs)) {
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(attrs);
    if (it != entries_.end()) {
      ++stats_.hits;
      if (!it->second.pinned) {  // touch: move to the front of the LRU list
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      }
      return it->second.pli;
    }
    ++stats_.misses;
  }
  // Compute outside the lock so other lookups (and the recursive halves)
  // proceed concurrently.
  std::shared_ptr<const StrippedPartition> pli = Compute(attrs, ctx);
  if (pli == nullptr) return nullptr;  // recursive build hit a limit
  // Charge before publishing: on a failed charge the entry is never
  // inserted, so an aborted run leaves no partially accounted state behind.
  // The out-of-core backend spills resident shards to make room first.
  size_t footprint = FootprintOf(*pli);
  Status charged =
      sharded_ != nullptr
          ? sharded_->ChargeWithSpill(ctx, footprint, "pli_build")
          : RunContext::ChargeAlloc(ctx, footprint, "pli_build");
  if (!charged.ok()) {
    return nullptr;
  }
  return Insert(attrs, std::move(pli));
}

std::shared_ptr<const StrippedPartition> PliCache::Compute(AttrSet attrs,
                                                           RunContext* ctx) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.builds;
  }
  if (attrs.size() == 1) {
    if (sharded_ != nullptr) {
      // Out-of-core leaf: per-shard sorted runs, spilled under pressure,
      // k-way merged — bit-identical to the counting sort below.
      int64_t spilled = 0;
      Result<StrippedPartition> pli =
          BuildAttributePliOoc(*sharded_, attrs.ToVector()[0], ctx, &spilled);
      if (spilled > 0) {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.ooc_spill_bytes += spilled;
      }
      if (!pli.ok()) return nullptr;  // reason latched on the context
      return std::make_shared<StrippedPartition>(std::move(pli).value());
    }
    // Leaves come out of the encoded backend: a counting sort over the
    // column's dictionary codes, class-for-class identical to the
    // Value-based grouping.
    return std::make_shared<StrippedPartition>(
        StrippedPartition::ForAttribute(*encoded_, attrs.ToVector()[0]));
  }
  // Deterministic split: lowest attribute off, product with the rest. The
  // rest is usually the already-cached prefix of a lattice walk.
  int lowest = attrs.ToVector()[0];
  std::shared_ptr<const StrippedPartition> rest =
      Get(attrs.Without(lowest), ctx);
  if (rest == nullptr) return nullptr;
  std::shared_ptr<const StrippedPartition> single =
      Get(AttrSet::Single(lowest), ctx);
  if (single == nullptr) return nullptr;
  return std::make_shared<StrippedPartition>(
      rest->Product(*single, num_rows_));
}

std::shared_ptr<const StrippedPartition> PliCache::Insert(
    AttrSet attrs, std::shared_ptr<const StrippedPartition> pli) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(attrs);
  if (it != entries_.end()) return it->second.pli;  // lost a benign race
  Entry entry;
  entry.bytes = FootprintOf(*pli);
  entry.pinned = attrs.size() == 1;
  entry.pli = std::move(pli);
  stats_.bytes += entry.bytes;
  if (!entry.pinned) {
    lru_.push_front(attrs);
    entry.lru_pos = lru_.begin();
    // Evict least-recently-used unpinned partitions beyond the budget, but
    // never the entry just inserted.
    while (stats_.bytes > options_.max_bytes && lru_.size() > 1) {
      AttrSet victim = lru_.back();
      lru_.pop_back();
      auto vit = entries_.find(victim);
      stats_.bytes -= vit->second.bytes;
      entries_.erase(vit);
      ++stats_.evictions;
    }
  }
  auto result = entry.pli;
  entries_.emplace(attrs, std::move(entry));
  return result;
}

Status PliCache::MaintainAppend(RunContext* ctx, MaintainStats* stats) {
  MaintainStats local;
  int new_rows =
      sharded_ != nullptr ? sharded_->num_rows() : relation_->num_rows();
  int old_rows = num_rows_;
  int delta_rows = new_rows - old_rows;
  if (delta_rows == 0) {
    if (stats != nullptr) *stats = local;
    return Status::OK();
  }
  if (delta_rows < 0) {
    return Status::Invalid(
        "relation shrank under maintenance; forget it and re-register");
  }
  int nc_now = sharded_ != nullptr ? sharded_->num_columns()
                                   : relation_->num_columns();
  if (nc_now != num_columns_) {
    return Status::Invalid("column count changed under maintenance");
  }
  local.appended_rows = delta_rows;

  // --- Advance the encoding view. The appended encoding is built before
  // any entry changes (a new object, never an in-place mutation: drivers
  // from before the append may still hold the old shared_ptr).
  std::shared_ptr<const EncodedRelation> new_encoded;
  // Out-of-core without a materialized encoding: the appended rows' codes
  // come straight from the new shards instead.
  std::vector<std::vector<uint32_t>> ooc_delta;
  if (sharded_ == nullptr) {
    FAMTREE_ASSIGN_OR_RETURN(
        EncodedRelation appended,
        EncodedRelation::Appended(*encoded_, *relation_));
    new_encoded =
        std::make_shared<const EncodedRelation>(std::move(appended));
  } else {
    ooc_delta.resize(num_columns_);
    for (int c = 0; c < num_columns_; ++c) ooc_delta[c].resize(delta_rows);
    for (int s = 0; s < sharded_->num_shards(); ++s) {
      int begin = sharded_->shard_row_begin(s);
      if (begin < old_rows) continue;
      for (int c = 0; c < num_columns_; ++c) {
        FAMTREE_RETURN_NOT_OK(sharded_->CopyShardColumn(
            s, c, ooc_delta[c].data() + (begin - old_rows)));
      }
    }
    std::shared_ptr<const EncodedRelation> old_enc;
    {
      std::lock_guard<std::mutex> lock(mu_);
      old_enc = encoded_;
    }
    if (old_enc != nullptr) {
      // A sampling driver materialized the flat encoding; extend it so the
      // next EnsureEncoded stays a no-op.
      size_t bytes =
          static_cast<size_t>(delta_rows) * num_columns_ * sizeof(uint32_t);
      FAMTREE_RETURN_NOT_OK(
          sharded_->ChargeWithSpill(ctx, bytes, "ingest_codes"));
      std::vector<std::vector<uint32_t>> cols(num_columns_);
      std::vector<std::vector<Value>> dicts(num_columns_);
      for (int c = 0; c < num_columns_; ++c) {
        cols[c] = old_enc->codes(c);
        cols[c].insert(cols[c].end(), ooc_delta[c].begin(),
                       ooc_delta[c].end());
        dicts[c].reserve(sharded_->dict_size(c));
        for (int code = 0; code < sharded_->dict_size(c); ++code) {
          dicts[c].push_back(sharded_->Decode(c, code));
        }
      }
      new_encoded = std::make_shared<const EncodedRelation>(
          new_rows, std::move(cols), std::move(dicts));
    }
  }
  auto dict_size_now = [&](int c) {
    return sharded_ != nullptr ? sharded_->dict_size(c)
                               : new_encoded->dict_size(c);
  };
  auto delta_codes = [&](int c) -> const uint32_t* {
    return sharded_ != nullptr ? ooc_delta[c].data()
                               : new_encoded->codes(c).data() + old_rows;
  };

  // --- Merge the pinned single-attribute leaves in place.
  delta_index_.resize(num_columns_);
  for (int c = 0; c < num_columns_; ++c) {
    std::shared_ptr<const StrippedPartition> old_pli;
    size_t old_bytes = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(AttrSet::Single(c));
      if (it == entries_.end()) continue;  // never requested; built on
                                           // demand from the new encoding
      old_pli = it->second.pli;
      old_bytes = it->second.bytes;
    }
    PliDeltaIndex& index = delta_index_[c];
    if (!index.built() || index.rows_indexed != old_rows) {
      if (sharded_ != nullptr) {
        FAMTREE_RETURN_NOT_OK(BuildDeltaIndexOoc(*sharded_, c, old_rows,
                                                 dict_size_now(c), &index));
      } else {
        BuildPliDeltaIndex(new_encoded->codes(c).data(), old_rows,
                           dict_size_now(c), &index);
      }
    }
    StrippedPartition merged =
        MergeAttributePliDelta(*old_pli, delta_codes(c), old_rows, delta_rows,
                               dict_size_now(c), &index);
    size_t new_bytes = FootprintOf(merged);
    if (new_bytes > old_bytes) {
      size_t grow = new_bytes - old_bytes;
      Status charged =
          sharded_ != nullptr
              ? sharded_->ChargeWithSpill(ctx, grow, "pli_build")
              : RunContext::ChargeAlloc(ctx, grow, "pli_build");
      FAMTREE_RETURN_NOT_OK(charged);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      Entry& entry = entries_[AttrSet::Single(c)];
      entry.pli = std::make_shared<StrippedPartition>(std::move(merged));
      stats_.bytes += new_bytes;
      stats_.bytes -= entry.bytes;
      entry.bytes = new_bytes;
    }
    ++local.leaves_merged;
  }

  // --- Commit the new shape and invalidate multi-attribute products.
  // They are NOT rebuilt here: the next Get recomputes each one on demand
  // through the ordinary deterministic recipe (lowest-attribute split of
  // the merged leaves), so only products a consumer actually touches pay
  // the O(rows) rebuild — cover repair visits a handful of frontier nodes,
  // while a discovery run may have left dozens cached. A maintained cache
  // therefore stays bit-identical to a cold one serving the same request
  // stream.
  std::vector<AttrSet> products;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (new_encoded != nullptr) encoded_ = new_encoded;
    num_rows_ = new_rows;
    if (sharded_ != nullptr) {
      fingerprint_ = sharded_->fingerprint();
    } else {
      chain_ = RelationRowChain(*relation_, old_rows, new_rows, chain_);
      fingerprint_ = FinalizeRelationFingerprint(chain_, relation_->schema(),
                                                 new_rows);
    }
    for (const auto& [attrs, entry] : entries_) {
      if (attrs.size() > 1) products.push_back(attrs);
    }
    for (const AttrSet& attrs : products) {
      auto it = entries_.find(attrs);
      if (!it->second.pinned) lru_.erase(it->second.lru_pos);
      stats_.bytes -= it->second.bytes;
      entries_.erase(it);
      ++local.products_invalidated;
    }
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

PliCache::Stats PliCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace famtree
