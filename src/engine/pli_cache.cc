#include "engine/pli_cache.h"

#include "relation/ooc/ooc_pli.h"

namespace famtree {

PliCache::PliCache(const Relation& relation, Options options)
    : relation_(&relation),
      num_rows_(relation.num_rows()),
      num_columns_(relation.num_columns()),
      fingerprint_(RelationFingerprint(relation)),
      options_(options),
      encoded_(std::make_shared<const EncodedRelation>(relation)) {}

PliCache::PliCache(const ShardedEncodedRelation& sharded, Options options)
    : sharded_(&sharded),
      num_rows_(sharded.num_rows()),
      num_columns_(sharded.num_columns()),
      fingerprint_(sharded.fingerprint()),
      options_(options) {}

size_t PliCache::FootprintOf(const StrippedPartition& pli) {
  // Flat CSR arrays (row indices + class offsets) plus the object itself.
  return sizeof(StrippedPartition) +
         static_cast<size_t>(pli.num_rows_in_classes()) * sizeof(int) +
         (static_cast<size_t>(pli.num_classes()) + 1) * sizeof(int);
}

const EncodedRelation* PliCache::encoded_or_null() const {
  std::lock_guard<std::mutex> lock(mu_);
  return encoded_.get();
}

Status PliCache::EnsureEncoded(RunContext* ctx) {
  if (sharded_ == nullptr) return Status::OK();  // built in the constructor
  std::lock_guard<std::mutex> serialize(encode_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (encoded_ != nullptr) return Status::OK();
  }
  FAMTREE_ASSIGN_OR_RETURN(std::shared_ptr<const EncodedRelation> enc,
                           sharded_->MaterializeEncoded(ctx));
  std::lock_guard<std::mutex> lock(mu_);
  encoded_ = std::move(enc);
  return Status::OK();
}

std::shared_ptr<const StrippedPartition> PliCache::Get(AttrSet attrs,
                                                       RunContext* ctx) {
  if (attrs.empty() || !AttrSet::Full(num_columns_).ContainsAll(attrs)) {
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(attrs);
    if (it != entries_.end()) {
      ++stats_.hits;
      if (!it->second.pinned) {  // touch: move to the front of the LRU list
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      }
      return it->second.pli;
    }
    ++stats_.misses;
  }
  // Compute outside the lock so other lookups (and the recursive halves)
  // proceed concurrently.
  std::shared_ptr<const StrippedPartition> pli = Compute(attrs, ctx);
  if (pli == nullptr) return nullptr;  // recursive build hit a limit
  // Charge before publishing: on a failed charge the entry is never
  // inserted, so an aborted run leaves no partially accounted state behind.
  // The out-of-core backend spills resident shards to make room first.
  size_t footprint = FootprintOf(*pli);
  Status charged =
      sharded_ != nullptr
          ? sharded_->ChargeWithSpill(ctx, footprint, "pli_build")
          : RunContext::ChargeAlloc(ctx, footprint, "pli_build");
  if (!charged.ok()) {
    return nullptr;
  }
  return Insert(attrs, std::move(pli));
}

std::shared_ptr<const StrippedPartition> PliCache::Compute(AttrSet attrs,
                                                           RunContext* ctx) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.builds;
  }
  if (attrs.size() == 1) {
    if (sharded_ != nullptr) {
      // Out-of-core leaf: per-shard sorted runs, spilled under pressure,
      // k-way merged — bit-identical to the counting sort below.
      int64_t spilled = 0;
      Result<StrippedPartition> pli =
          BuildAttributePliOoc(*sharded_, attrs.ToVector()[0], ctx, &spilled);
      if (spilled > 0) {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.ooc_spill_bytes += spilled;
      }
      if (!pli.ok()) return nullptr;  // reason latched on the context
      return std::make_shared<StrippedPartition>(std::move(pli).value());
    }
    // Leaves come out of the encoded backend: a counting sort over the
    // column's dictionary codes, class-for-class identical to the
    // Value-based grouping.
    return std::make_shared<StrippedPartition>(
        StrippedPartition::ForAttribute(*encoded_, attrs.ToVector()[0]));
  }
  // Deterministic split: lowest attribute off, product with the rest. The
  // rest is usually the already-cached prefix of a lattice walk.
  int lowest = attrs.ToVector()[0];
  std::shared_ptr<const StrippedPartition> rest =
      Get(attrs.Without(lowest), ctx);
  if (rest == nullptr) return nullptr;
  std::shared_ptr<const StrippedPartition> single =
      Get(AttrSet::Single(lowest), ctx);
  if (single == nullptr) return nullptr;
  return std::make_shared<StrippedPartition>(
      rest->Product(*single, num_rows_));
}

std::shared_ptr<const StrippedPartition> PliCache::Insert(
    AttrSet attrs, std::shared_ptr<const StrippedPartition> pli) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(attrs);
  if (it != entries_.end()) return it->second.pli;  // lost a benign race
  Entry entry;
  entry.bytes = FootprintOf(*pli);
  entry.pinned = attrs.size() == 1;
  entry.pli = std::move(pli);
  stats_.bytes += entry.bytes;
  if (!entry.pinned) {
    lru_.push_front(attrs);
    entry.lru_pos = lru_.begin();
    // Evict least-recently-used unpinned partitions beyond the budget, but
    // never the entry just inserted.
    while (stats_.bytes > options_.max_bytes && lru_.size() > 1) {
      AttrSet victim = lru_.back();
      lru_.pop_back();
      auto vit = entries_.find(victim);
      stats_.bytes -= vit->second.bytes;
      entries_.erase(vit);
      ++stats_.evictions;
    }
  }
  auto result = entry.pli;
  entries_.emplace(attrs, std::move(entry));
  return result;
}

PliCache::Stats PliCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace famtree
