#include "engine/pli_cache.h"

namespace famtree {

PliCache::PliCache(const Relation& relation, Options options)
    : relation_(relation),
      encoded_(relation),
      fingerprint_(RelationFingerprint(relation)),
      options_(options) {}

size_t PliCache::FootprintOf(const StrippedPartition& pli) {
  // Flat CSR arrays (row indices + class offsets) plus the object itself.
  return sizeof(StrippedPartition) +
         static_cast<size_t>(pli.num_rows_in_classes()) * sizeof(int) +
         (static_cast<size_t>(pli.num_classes()) + 1) * sizeof(int);
}

std::shared_ptr<const StrippedPartition> PliCache::Get(AttrSet attrs,
                                                       RunContext* ctx) {
  if (attrs.empty() ||
      !AttrSet::Full(relation_.num_columns()).ContainsAll(attrs)) {
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(attrs.mask());
    if (it != entries_.end()) {
      ++stats_.hits;
      if (!it->second.pinned) {  // touch: move to the front of the LRU list
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      }
      return it->second.pli;
    }
    ++stats_.misses;
  }
  // Compute outside the lock so other lookups (and the recursive halves)
  // proceed concurrently.
  std::shared_ptr<const StrippedPartition> pli = Compute(attrs, ctx);
  if (pli == nullptr) return nullptr;  // recursive build hit a limit
  // Charge before publishing: on a failed charge the entry is never
  // inserted, so an aborted run leaves no partially accounted state behind.
  if (!RunContext::ChargeAlloc(ctx, FootprintOf(*pli), "pli_build").ok()) {
    return nullptr;
  }
  return Insert(attrs, std::move(pli));
}

std::shared_ptr<const StrippedPartition> PliCache::Compute(AttrSet attrs,
                                                           RunContext* ctx) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.builds;
  }
  if (attrs.size() == 1) {
    // Leaves come out of the encoded backend: a counting sort over the
    // column's dictionary codes, class-for-class identical to the
    // Value-based grouping.
    return std::make_shared<StrippedPartition>(
        StrippedPartition::ForAttribute(encoded_, attrs.ToVector()[0]));
  }
  // Deterministic split: lowest attribute off, product with the rest. The
  // rest is usually the already-cached prefix of a lattice walk.
  int lowest = attrs.ToVector()[0];
  std::shared_ptr<const StrippedPartition> rest =
      Get(attrs.Without(lowest), ctx);
  if (rest == nullptr) return nullptr;
  std::shared_ptr<const StrippedPartition> single =
      Get(AttrSet::Single(lowest), ctx);
  if (single == nullptr) return nullptr;
  return std::make_shared<StrippedPartition>(
      rest->Product(*single, relation_.num_rows()));
}

std::shared_ptr<const StrippedPartition> PliCache::Insert(
    AttrSet attrs, std::shared_ptr<const StrippedPartition> pli) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(attrs.mask());
  if (it != entries_.end()) return it->second.pli;  // lost a benign race
  Entry entry;
  entry.bytes = FootprintOf(*pli);
  entry.pinned = attrs.size() == 1;
  entry.pli = std::move(pli);
  stats_.bytes += entry.bytes;
  if (!entry.pinned) {
    lru_.push_front(attrs.mask());
    entry.lru_pos = lru_.begin();
    // Evict least-recently-used unpinned partitions beyond the budget, but
    // never the entry just inserted.
    while (stats_.bytes > options_.max_bytes && lru_.size() > 1) {
      uint64_t victim = lru_.back();
      lru_.pop_back();
      auto vit = entries_.find(victim);
      stats_.bytes -= vit->second.bytes;
      entries_.erase(vit);
      ++stats_.evictions;
    }
  }
  auto result = entry.pli;
  entries_.emplace(attrs.mask(), std::move(entry));
  return result;
}

PliCache::Stats PliCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace famtree
