#ifndef FAMTREE_ENGINE_EVIDENCE_H_
#define FAMTREE_ENGINE_EVIDENCE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/pli_cache.h"
#include "metric/code_distance.h"
#include "metric/metric.h"
#include "relation/encoded_relation.h"

namespace famtree {

/// How one column participates in the pairwise comparison word.
///
/// Every pairwise miner asks, per row pair, a small set of per-column
/// questions: equal or not (FASTDC Eq/Neq, MD/MFD grouping, CFD support),
/// how the values order (FASTDC Lt/Gt), and which threshold band the metric
/// distance falls in (DD/MD/NED similarity predicates). An EvidenceColumn
/// declares which facets a consumer needs; the kernel packs the answers
/// into contiguous bit fields of a single uint64 word per pair.
struct EvidenceColumn {
  enum class Cmp {
    kNone,      // no comparison facet (distance facets only)
    kEquality,  // 1 bit: 0 = equal, 1 = unequal
    kOrder,     // 2 bits: 0 = equal, 1 = i's value < j's, 2 = >
  };

  int attr = 0;
  Cmp cmp = Cmp::kEquality;

  /// Distance facet: with a metric and a sorted-ascending threshold list,
  /// the word carries the bucket index (smallest j with d <= thresholds[j],
  /// or thresholds.size() when none match). With a metric, `track_max`
  /// additionally folds per-word distance maxima (see
  /// EvidenceSet::Aggregate).
  MetricPtr metric;
  std::vector<double> thresholds;
  bool track_max = false;

  /// Optional borrowed exact-distance table for this (attr, metric); when
  /// null the kernel builds what it needs itself (an exact table when
  /// track_max is set, a byte-wide CodeBucketTable otherwise). Must outlive
  /// the build call (the EvidenceSet itself never references it).
  const CodeDistanceTable* table = nullptr;
};

/// Total bits the packed comparison word needs; must be <= 64 to build
/// (consumers with wider configs keep their pre-kernel paths).
int EvidenceWordBits(const std::vector<EvidenceColumn>& columns);

struct EvidenceOptions {
  ThreadPool* pool = nullptr;
  /// Optional run limits: the walks poll per tile / work item, the final
  /// multiset charges its footprint at the "evidence_set" site, and each
  /// tile strip probes the "evidence_tile" fault site. A stopped build
  /// returns the latched stop Status — never a partial multiset.
  RunContext* context = nullptr;
  /// Cluster source for the pruned enumeration; single-attribute leaves are
  /// pinned in the PLI store, so borrowing them is free. When null the
  /// kernel counting-sorts clusters from the code arrays.
  PliCache* pli = nullptr;
  /// PLI-based pair pruning: enumerate only pairs that agree on at least
  /// one column (via per-column cluster products, deduplicated at the first
  /// agreeing column) and synthesize the all-unequal word's count by
  /// subtraction. Requires every column to be Cmp::kEquality with no
  /// bucket thresholds (the synthesized word has no well-defined order or
  /// bucket facets); ineligible configs silently use the dense tiled walk,
  /// which produces the identical multiset. The synthesized word carries
  /// zero aggregates — consumers must only read aggregates of words with at
  /// least one equal facet (MFD candidates always have one).
  bool prune_all_unequal = false;
  /// Rows per tile of the dense walk; tiles keep each column's code slices
  /// L2-resident while the pair loop sweeps them.
  int tile_rows = 128;
};

/// Deduplicated pairwise evidence multiset (Hydra/DCFinder style): one
/// entry per distinct comparison word with the number of row pairs that
/// produced it, plus optional per-word distance maxima for the
/// threshold-mining consumers. Self-contained — safe to cache beyond the
/// lifetime of the EncodedRelation it was built from.
///
/// The multiset ranges over unordered pairs {i, j}; order facets are
/// evaluated at the canonical orientation i < j, and MirrorOf converts a
/// word to the opposite orientation for consumers (FASTDC) that mine over
/// ordered pairs. Words are sorted ascending by bit pattern, and both the
/// tiled and the pruned builds produce bit-identical sets at any thread
/// count: every per-word fold (count sum, max, flag or) is commutative, so
/// chunk merge order cannot show.
class EvidenceSet {
 public:
  struct Word {
    uint64_t bits = 0;
    int64_t count = 0;
  };

  /// Distance fold over one tracked column within one word's pairs,
  /// mirroring the oracle folds exactly: max_finite starts at 0.0 and
  /// folds only finite distances (DD bound semantics), max_all is a plain
  /// std::max fold (MFD diameter semantics — +inf is sticky, NaN never
  /// replaces the accumulator), saw_nonfinite flags any non-finite
  /// distance.
  struct Aggregate {
    double max_all = 0.0;
    double max_finite = 0.0;
    bool saw_nonfinite = false;
  };

  struct ColumnLayout {
    int attr = 0;
    EvidenceColumn::Cmp cmp = EvidenceColumn::Cmp::kNone;
    int cmp_shift = 0;
    int bucket_shift = 0;
    int bucket_bits = 0;
    int num_thresholds = 0;
    int track_slot = -1;
  };

  const std::vector<Word>& words() const { return words_; }
  int64_t total_pairs() const { return total_pairs_; }
  int num_columns() const { return static_cast<int>(layout_.size()); }
  int num_tracked() const { return num_tracked_; }
  const std::vector<ColumnLayout>& layout() const { return layout_; }

  const Aggregate& agg(size_t word_index, int track_slot) const {
    return aggs_[word_index * num_tracked_ + track_slot];
  }

  /// Comparison facet of config column `col`: 0 equal, 1 unequal/less,
  /// 2 greater. Columns without a facet read as 0.
  int CmpOf(uint64_t word, size_t col) const {
    const ColumnLayout& c = layout_[col];
    if (c.cmp == EvidenceColumn::Cmp::kEquality) {
      return static_cast<int>((word >> c.cmp_shift) & 1u);
    }
    if (c.cmp == EvidenceColumn::Cmp::kOrder) {
      return static_cast<int>((word >> c.cmp_shift) & 3u);
    }
    return 0;
  }

  bool AgreesOn(uint64_t word, size_t col) const {
    return CmpOf(word, col) == 0;
  }

  int BucketOf(uint64_t word, size_t col) const {
    const ColumnLayout& c = layout_[col];
    return static_cast<int>((word >> c.bucket_shift) &
                            ((uint64_t{1} << c.bucket_bits) - 1));
  }

  /// The same pair seen from the opposite orientation: order facets swap
  /// less and greater, everything else is symmetric.
  uint64_t MirrorOf(uint64_t word) const;

  /// The word of a pair disagreeing on every equality facet (the pruned
  /// build's synthesized word).
  uint64_t AllUnequalWord() const;

  size_t footprint_bytes() const;

 private:
  friend class EvidenceBuilder;

  std::vector<ColumnLayout> layout_;
  std::vector<Word> words_;
  std::vector<Aggregate> aggs_;  // words_.size() x num_tracked_
  int64_t total_pairs_ = 0;
  int num_tracked_ = 0;
};

/// Compiled per-pair word evaluator — the kernel's inner layer, exposed for
/// consumers that need pair identities (dedup's union-find) rather than the
/// aggregated multiset. Borrows the encoding and any tables it compiles;
/// keep both alive while using it.
class PairComparator {
 public:
  static Result<std::unique_ptr<PairComparator>> Make(
      const EncodedRelation& encoded, std::vector<EvidenceColumn> columns,
      ThreadPool* pool);

  /// The comparison word of the ordered pair (i, j); `tracked_dists`, when
  /// non-null, receives num_tracked() distances indexed by track slot.
  uint64_t Word(int i, int j, double* tracked_dists = nullptr) const;

  int num_bits() const { return num_bits_; }
  int num_tracked() const { return num_tracked_; }
  const std::vector<EvidenceSet::ColumnLayout>& layout() const {
    return layout_;
  }

 private:
  friend class EvidenceBuilder;

  struct Col {
    const uint32_t* codes = nullptr;
    EvidenceColumn::Cmp cmp = EvidenceColumn::Cmp::kNone;
    int cmp_shift = 0;
    bool const_unequal = false;  // all-distinct column: facet is constant
    std::vector<uint32_t> ranks;  // order facet (Value's total order)
    const CodeDistanceTable* dist = nullptr;
    std::unique_ptr<CodeDistanceTable> owned_dist;
    std::unique_ptr<CodeBucketTable> owned_bucket;
    const CodeBucketTable* bucket = nullptr;
    std::vector<double> thresholds;  // bucket-from-exact-distance path
    int bucket_shift = 0;
    int track_slot = -1;
  };

  PairComparator() = default;

  std::vector<Col> cols_;
  std::vector<EvidenceSet::ColumnLayout> layout_;
  uint64_t base_word_ = 0;  // constant facet bits
  int num_bits_ = 0;
  int num_tracked_ = 0;
};

/// Builds the evidence multiset over all unordered row pairs of `encoded`,
/// tiled and parallelized per EvidenceOptions.
Result<std::shared_ptr<const EvidenceSet>> BuildEvidence(
    const EncodedRelation& encoded, const std::vector<EvidenceColumn>& columns,
    const EvidenceOptions& options);

/// Builds the evidence multiset over an explicit list of ordered pairs
/// (FASTDC's sampling path). Order facets use the given orientation; no
/// mirror words are added.
Result<std::shared_ptr<const EvidenceSet>> BuildEvidenceForPairs(
    const EncodedRelation& encoded, const std::vector<EvidenceColumn>& columns,
    const std::vector<std::pair<int, int>>& pairs,
    const EvidenceOptions& options);

/// Builds the evidence multiset over only the pairs an append created:
/// {i < j : j >= old_rows} — new-vs-all tiles of the dense walk, or the
/// cluster tails of the pruned walk. `encoded` is the *appended* encoding;
/// appends never change prefix codes or the relative Value order of
/// existing codes, so MergeEvidenceSets(base, delta) is bit-identical to a
/// cold BuildEvidence over the appended relation (the old and new pairs
/// partition all pairs, and every per-word fold is commutative).
Result<std::shared_ptr<const EvidenceSet>> BuildEvidenceDelta(
    const EncodedRelation& encoded, const std::vector<EvidenceColumn>& columns,
    int old_rows, const EvidenceOptions& options);

/// Merges two evidence multisets built from disjoint pair populations
/// under the same column config: counts sum, aggregates fold (max / max /
/// or), total_pairs sum, words re-sorted ascending. Fails on mismatched
/// layouts. Charges the merged footprint at "evidence_set".
Result<std::shared_ptr<const EvidenceSet>> MergeEvidenceSets(
    const EvidenceSet& base, const EvidenceSet& delta,
    const EvidenceOptions& options);

}  // namespace famtree

#endif  // FAMTREE_ENGINE_EVIDENCE_H_
